#!/usr/bin/env python3
"""Tolerance-band comparison of a fresh BENCH_*.json against a committed one.

Matches result rows between two exp_scale/exp_live JSON artifacts by their
configuration key and flags metric movements outside a tolerance band:

  * events_per_sec      — lower is a regression
  * bytes_per_query     — higher is a regression
  * wire_bytes_per_query — higher is a regression (true wire cost: framing,
                           retransmits and ACKs included)
  * detection_mean_s    — higher is a regression
  * detection_p50_s     — higher is a regression
  * detection_p99_s     — higher is a regression
  * round_rtt_p50_ms    — higher is a regression
  * round_rtt_p99_ms    — higher is a regression
  * pacing_mean_ms      — higher is a regression (detection-latency share
  * resend_wait_mean_ms   spent waiting for the round to open, on resend
  * wire_mean_ms          waves, and on the wire — from the assembled
                          cross-node trace; the three sum to the latency)

The key includes the engine/shards columns exp_scale emits, so a serial and
a sharded run of the same (n, f, seed) never get compared to each other.

Warn-only by default (always exits 0): bench hardware — CI runners above
all — is far too noisy to gate merges on, so the output is a trend signal
for humans. Pass --strict to exit 1 on any regression once a quieter rig
exists.

Usage:
  scripts/check_bench.py BENCH_scale.json fresh.json [--tolerance 0.5]
"""

import argparse
import json
import sys

# metric -> direction ("up" = larger is better, "down" = smaller is better)
METRICS = {
    "events_per_sec": "up",
    "bytes_per_query": "down",
    "wire_bytes_per_query": "down",
    "detection_mean_s": "down",
    "detection_p50_s": "down",
    "detection_p99_s": "down",
    "round_rtt_p50_ms": "down",
    "round_rtt_p99_ms": "down",
    "pacing_mean_ms": "down",
    "resend_wait_mean_ms": "down",
    "wire_mean_ms": "down",
}
KEY_FIELDS = ("n", "f", "seed", "delta", "reliable", "engine", "shards")


def load_rows(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_bench: cannot read {path}: {e}")
    rows = doc.get("results", [])
    if not isinstance(rows, list):
        sys.exit(f"check_bench: {path}: 'results' is not a list")
    return rows


def row_key(row):
    return tuple((k, row[k]) for k in KEY_FIELDS if k in row)


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed artifact (the reference)")
    parser.add_argument("fresh", help="artifact from the current run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed relative slack, e.g. 0.5 = flag a metric worse than "
        "the baseline by more than 50%% (default: %(default)s)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any regression instead of warn-only",
    )
    args = parser.parse_args()

    baseline = {row_key(r): r for r in load_rows(args.baseline)}
    fresh_rows = load_rows(args.fresh)

    regressions = 0
    compared = 0
    unmatched = 0
    for row in fresh_rows:
        key = row_key(row)
        base = baseline.get(key)
        if base is None:
            unmatched += 1
            print(f"[skip] {fmt_key(key)}: no baseline row")
            continue
        for metric, direction in METRICS.items():
            if metric not in row or metric not in base:
                continue
            old, new = float(base[metric]), float(row[metric])
            if old <= 0:
                continue
            compared += 1
            ratio = new / old
            worse = (
                ratio < 1 - args.tolerance
                if direction == "up"
                else ratio > 1 + args.tolerance
            )
            tag = "REGRESSION" if worse else "ok"
            if worse:
                regressions += 1
            print(
                f"[{tag}] {fmt_key(key)} {metric}: "
                f"{old:.4g} -> {new:.4g} ({ratio:.0%} of baseline)"
            )

    print(
        f"\ncheck_bench: {compared} metric(s) compared, "
        f"{regressions} regression(s), {unmatched} fresh row(s) without a "
        f"baseline (tolerance {args.tolerance:.0%})"
    )
    if regressions and not args.strict:
        print("check_bench: warn-only mode — not failing the build")
    return 1 if (regressions and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
