// simulate — the general-purpose CLI runner: one command line = one fully
// reproducible simulated deployment, with tables or machine-readable traces.
//
//   ./build/examples/simulate --n=30 --f=7 --crashes=3 --delays=pareto
//       --mean_delay_ms=10 --pacing_ms=250 --horizon=60 --seed=42
//       --export=events.csv --jsonl=trace.jsonl          (one line)
//
// Prints the detection summary, accuracy metrics and the MP verdict; with
// --export/--jsonl also writes the raw traces for external analysis.
#include <fstream>
#include <iostream>

#include "common/argparse.h"
#include "core/properties.h"
#include "metrics/analysis.h"
#include "metrics/export.h"
#include "metrics/table.h"
#include "runtime/cluster.h"

using namespace mmrfd;
using metrics::Table;

int main(int argc, char** argv) {
  ArgParser args("simulate: run the asynchronous failure detector under a "
                 "configurable workload");
  args.flag("n", "20", "system size")
      .flag("f", "5", "max crashes tolerated (quorum = n - f)")
      .flag("seed", "1", "master seed (runs are pure functions of it)")
      .flag("crashes", "2", "actual crashes injected (capped at f)")
      .flag("delays", "exponential",
            "constant|uniform|exponential|lognormal|pareto")
      .flag("mean_delay_ms", "2", "mean one-way delay")
      .flag("pacing_ms", "500", "inter-query pacing Delta")
      .flag("pacing_jitter", "0", "relative pacing jitter in [0,1)")
      .flag("fast", "", "comma-separated ids biased fast (MP witnesses)")
      .flag("horizon", "30", "simulated seconds")
      .flag("spike_at", "-1", "spike start (s); -1 = no spike")
      .flag("spike_len", "5", "spike duration (s)")
      .flag("spike_factor", "100", "spike delay multiplier")
      .flag("export", "", "write suspicion events CSV to this path")
      .flag("jsonl", "", "write a JSONL trace to this path");
  if (!args.parse(argc, argv)) return 0;

  runtime::MmrClusterConfig cfg;
  cfg.n = static_cast<std::uint32_t>(args.get_int("n"));
  cfg.f = static_cast<std::uint32_t>(args.get_int("f"));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  cfg.pacing = from_millis(static_cast<double>(args.get_int("pacing_ms")));
  cfg.pacing_jitter = args.get_double("pacing_jitter");
  cfg.mean_delay =
      from_millis(static_cast<double>(args.get_int("mean_delay_ms")));
  cfg.delay_preset = net::parse_preset(args.get("delays"));
  {
    const std::string fast = args.get("fast");
    for (std::size_t pos = 0; pos < fast.size();) {
      const auto comma = fast.find(',', pos);
      cfg.fast_set.push_back(ProcessId{static_cast<std::uint32_t>(
          std::stoul(fast.substr(pos, comma - pos)))});
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (args.get_int("spike_at") >= 0) {
    runtime::SpikeSpec spike;
    spike.start = from_seconds(static_cast<double>(args.get_int("spike_at")));
    spike.end = spike.start +
                from_seconds(static_cast<double>(args.get_int("spike_len")));
    spike.factor = static_cast<double>(args.get_int("spike_factor"));
    cfg.spike = spike;
  }

  const auto horizon =
      from_seconds(static_cast<double>(args.get_int("horizon")));
  runtime::MmrCluster cluster(cfg);
  const auto plan = runtime::CrashPlan::uniform(
      std::min<std::size_t>(static_cast<std::size_t>(args.get_int("crashes")),
                            cfg.f),
      cfg.n, horizon / 4, horizon / 2, cfg.seed, cfg.fast_set);
  cluster.start(plan);
  cluster.run_for(horizon);

  // --- report -----------------------------------------------------------
  metrics::Analysis analysis(cluster.log(), cfg.n, horizon);
  std::cout << "workload: n=" << cfg.n << " f=" << cfg.f << " delays="
            << args.get("delays") << " mean=" << args.get_int("mean_delay_ms")
            << "ms Delta=" << args.get_int("pacing_ms") << "ms seed="
            << cfg.seed << "\n\n";

  Table crashes({"crashed", "at_s", "detected_by", "mean_latency_s",
                 "max_latency_s"});
  for (const auto& s : analysis.crash_summaries()) {
    crashes.add_row({"p" + std::to_string(s.subject.value),
                     Table::num(to_seconds(s.crash_at), 2),
                     Table::num(std::uint64_t{s.detected_by}) + "/" +
                         Table::num(std::uint64_t{s.observers}),
                     Table::num(s.latencies.mean()),
                     Table::num(s.latencies.max())});
  }
  if (crashes.rows() > 0) {
    crashes.print(std::cout);
  } else {
    std::cout << "(no crashes injected)\n";
  }

  std::cout << "\nstrong completeness: "
            << (analysis.strong_completeness() ? "satisfied" : "VIOLATED")
            << "\nfalse suspicions:    " << analysis.false_suspicions().size()
            << "\n";
  if (auto t = analysis.accuracy_stabilization()) {
    std::cout << "weak accuracy from:  " << to_seconds(*t) << " s\n";
  }
  if (auto t = analysis.full_accuracy_stabilization()) {
    std::cout << "globally clean from: " << to_seconds(*t) << " s\n";
  }

  const auto correct = analysis.correct();
  core::MpChecker checker(cluster.recorder(), cfg.f, correct);
  const auto verdict = checker.check();
  std::cout << "MP verdict:          "
            << (verdict.holds
                    ? (verdict.holds_perpetually ? "held perpetually (class S)"
                                                 : "held eventually (<>S)")
                    : "did not hold");
  if (verdict.holds) {
    std::cout << ", witness p" << verdict.witness.value << " from "
              << to_seconds(verdict.holds_from) << " s";
  }
  std::cout << "\nmessages sent:       "
            << cluster.network().stats().messages_sent << "\n";

  // --- optional trace files ---------------------------------------------
  if (const auto path = args.get("export"); !path.empty()) {
    std::ofstream out(path);
    metrics::export_events_csv(cluster.log(), out);
    std::cout << "wrote " << path << "\n";
  }
  if (const auto path = args.get("jsonl"); !path.empty()) {
    std::ofstream out(path);
    metrics::export_jsonl(cluster.log(), &cluster.recorder(), out);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
