// replicated_kv — a tiny replicated key-value store: the full stack the
// paper enables, assembled end to end.
//
//   time-free failure detector (<>S)        src/core + src/runtime
//        -> Chandra-Toueg consensus          src/consensus
//        -> replicated log (total order)     src/consensus/replicated_log
//        -> deterministic KV state machine   (this file)
//
// Five replicas accept `put` commands from different clients; two replicas
// crash mid-run; the survivors' stores must converge to identical contents.
// Commands are encoded into the log's 64-bit values as (key << 16 | value).
//
// Build & run:   ./build/examples/replicated_kv
#include <iostream>
#include <map>

#include "consensus/replicated_log.h"
#include "runtime/cluster.h"

using namespace mmrfd;
using namespace mmrfd::consensus;

namespace {

// A put: key in [0, 255], value in [0, 65535], submitter in the high bits so
// commands stay globally unique (required by the log).
Value encode_put(ProcessId submitter, std::uint8_t key, std::uint16_t value) {
  return (static_cast<Value>(submitter.value + 1) << 32) |
         (static_cast<Value>(key) << 16) | value;
}

struct KvStore {
  std::map<std::uint8_t, std::uint16_t> data;

  void apply(Value cmd) {
    if (cmd == kNoop) return;
    const auto key = static_cast<std::uint8_t>((cmd >> 16) & 0xFF);
    const auto value = static_cast<std::uint16_t>(cmd & 0xFFFF);
    data[key] = value;
  }
  std::string render() const {
    std::string out = "{";
    for (const auto& [k, v] : data) {
      out += " " + std::to_string(k) + ":" + std::to_string(v);
    }
    return out + " }";
  }
};

}  // namespace

int main() {
  constexpr std::uint32_t kN = 5;

  // One simulation hosting both layers: the MMR failure detectors and the
  // replicated log (separate networks, same virtual time).
  sim::Simulation sim;

  runtime::MmrNetwork fd_net(sim, net::Topology::full(kN),
                             net::make_preset(net::DelayPreset::kExponential,
                                              from_millis(2)),
                             derive_seed(77, "kv.fd"));
  std::vector<std::unique_ptr<runtime::MmrHost>> fd_hosts;
  for (std::uint32_t i = 0; i < kN; ++i) {
    runtime::MmrHostConfig hc;
    hc.detector.self = ProcessId{i};
    hc.detector.n = kN;
    hc.detector.f = 2;
    hc.pacing = from_millis(50);
    hc.initial_delay = from_millis(3 * i);
    fd_hosts.push_back(std::make_unique<runtime::MmrHost>(sim, fd_net, hc));
  }

  LogNetwork log_net(sim, net::Topology::full(kN),
                     net::make_preset(net::DelayPreset::kExponential,
                                      from_millis(2)),
                     derive_seed(77, "kv.log"));
  std::vector<std::unique_ptr<ReplicatedLog>> replicas;
  for (std::uint32_t i = 0; i < kN; ++i) {
    ReplicatedLogConfig cfg;
    cfg.self = ProcessId{i};
    cfg.n = kN;
    replicas.push_back(std::make_unique<ReplicatedLog>(
        sim, log_net, cfg, fd_hosts[i]->detector()));
  }

  for (auto& h : fd_hosts) h->start();
  for (auto& r : replicas) r->start();

  // Clients: each replica's user issues puts at staggered times.
  auto submit_at = [&](double t, std::uint32_t replica, std::uint8_t key,
                       std::uint16_t value) {
    sim.schedule_at(from_seconds(t), [&, replica, key, value] {
      if (!replicas[replica]->crashed()) {
        replicas[replica]->submit(
            encode_put(ProcessId{replica}, key, value));
      }
    });
  };
  submit_at(0.1, 0, 1, 100);
  submit_at(0.2, 1, 2, 200);
  submit_at(0.3, 2, 3, 300);
  submit_at(0.9, 3, 1, 150);  // overwrites key 1 (total order decides!)
  submit_at(1.1, 4, 4, 400);
  submit_at(2.5, 2, 5, 500);  // after the crashes below

  // Crash-stop two replicas (a minority — the log must keep going).
  sim.schedule_at(from_seconds(1.5), [&] {
    replicas[0]->crash();
    fd_hosts[0]->crash();
    std::cout << "t=1.5s  replica 0 crashed\n";
  });
  sim.schedule_at(from_seconds(2.0), [&] {
    replicas[4]->crash();
    fd_hosts[4]->crash();
    std::cout << "t=2.0s  replica 4 crashed\n";
  });

  sim.run_until(from_seconds(10));

  std::cout << "\nafter 10 s (simulated):\n";
  std::vector<KvStore> stores(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (replicas[i]->crashed()) {
      std::cout << "  replica " << i << ": (crashed)\n";
      continue;
    }
    for (Value v : replicas[i]->log()) stores[i].apply(v);
    std::cout << "  replica " << i << ": " << stores[i].render() << "  ("
              << replicas[i]->log().size() << " slots)\n";
  }

  // Survivors must agree exactly.
  bool converged = true;
  for (std::uint32_t i = 2; i < 4; ++i) {
    converged = converged && stores[1].data == stores[i].data;
  }
  std::cout << (converged ? "\nsurvivors converged ✓\n"
                          : "\nDIVERGED ✗\n");
  // Key 1 must hold the *later* put (150), key 5 the post-crash put.
  const bool semantics = stores[1].data.at(1) == 150 &&
                         stores[1].data.at(5) == 500;
  std::cout << (semantics ? "total-order semantics verified ✓\n"
                          : "semantics broken ✗\n");
  return converged && semantics ? 0 : 1;
}
