// udp_live — the detector over real UDP sockets on loopback, in real time.
//
// Five detector instances run inside this one binary (each with its own
// socket and threads — architecturally identical to five separate daemons).
// After a second of steady state we crash-stop p4 and watch the survivors
// converge on suspecting it, each at its first unanswered query round.
//
// Build & run:   ./build/examples/udp_live
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "transport/realtime_detector.h"
#include "transport/typed_transport.h"
#include "transport/udp_transport.h"

using namespace mmrfd;
using namespace std::chrono_literals;

int main() {
  constexpr std::uint32_t kN = 5;
  constexpr std::uint16_t kBasePort = 39400;

  std::vector<std::unique_ptr<transport::UdpTransport>> sockets;
  std::vector<std::unique_ptr<transport::TypedTransport>> transports;
  std::vector<std::unique_ptr<transport::RealTimeDetector>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) {
    sockets.push_back(std::make_unique<transport::UdpTransport>(
        transport::UdpConfig{ProcessId{i}, kN, kBasePort}));
    transports.push_back(
        std::make_unique<transport::TypedTransport>(*sockets[i]));
    transport::RealTimeConfig cfg;
    cfg.detector.self = ProcessId{i};
    cfg.detector.n = kN;
    cfg.detector.f = 1;
    cfg.pacing = from_millis(50);
    nodes.push_back(std::make_unique<transport::RealTimeDetector>(
        *transports[i], cfg));
  }

  try {
    for (auto& n : nodes) n->start();
  } catch (const std::exception& e) {
    std::cerr << "cannot bind loopback UDP ports " << kBasePort << ".."
              << kBasePort + kN - 1 << ": " << e.what() << "\n";
    return 1;
  }

  auto print_state = [&](const std::string& label, std::uint32_t alive) {
    std::cout << label << "\n";
    for (std::uint32_t i = 0; i < alive; ++i) {
      std::cout << "  p" << i << ": " << nodes[i]->rounds_completed()
                << " rounds, suspects {";
      for (ProcessId s : nodes[i]->suspected()) std::cout << " p" << s.value;
      std::cout << " }\n";
    }
  };

  std::this_thread::sleep_for(1s);
  print_state("after 1 s, all 5 alive:", kN);

  std::cout << "\nstopping p4 (crash-stop)...\n";
  nodes[4]->stop();

  // Survivors need one unanswered query round each to suspect p4.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  auto all_suspect = [&] {
    for (std::uint32_t i = 0; i < kN - 1; ++i) {
      if (!nodes[i]->is_suspected(ProcessId{4})) return false;
    }
    return true;
  };
  while (!all_suspect() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  print_state(all_suspect() ? "\np4 suspected by all survivors:"
                            : "\ntimed out waiting (loaded machine?):",
              kN - 1);

  for (std::uint32_t i = 0; i < kN - 1; ++i) nodes[i]->stop();
  std::cout << "\ndone — not a single timeout was configured.\n";
  return all_suspect() ? 0 : 1;
}
