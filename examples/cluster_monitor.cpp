// cluster_monitor — the workload the paper's introduction motivates: a
// membership/monitoring service for a system whose communication delays are
// unpredictable, built on the time-free detector.
//
// A 30-node cluster experiences (a) two crashes and (b) a 10-second
// congestion spike on three nodes' links. Once a second the monitor prints
// the global view: how many (observer, subject) suspicion pairs exist, how
// many are wrong, and what the current Omega leader is. At the end it
// reports whether the behavioral property MP held (the condition under
// which the run was guaranteed to converge) and the detection latency for
// each crash.
//
// Build & run:   ./build/examples/cluster_monitor
#include <iostream>

#include "core/omega.h"
#include "core/properties.h"
#include "metrics/analysis.h"
#include "runtime/cluster.h"

using namespace mmrfd;

int main() {
  constexpr std::uint32_t kN = 30;
  constexpr std::uint32_t kF = 7;
  constexpr double kHorizonS = 60.0;

  runtime::MmrClusterConfig config;
  config.n = kN;
  config.f = kF;
  config.seed = 2024;
  config.pacing = from_millis(500);
  config.mean_delay = from_millis(5);
  config.delay_preset = net::DelayPreset::kLogNormal;
  // Engineer the MP witness: p0 answers fast, so accuracy is guaranteed.
  config.fast_set = {ProcessId{0}};
  config.fast_factor = 0.1;
  // Congestion spike: p10..p12 slow down 100x during [20 s, 30 s).
  runtime::SpikeSpec spike;
  spike.start = from_seconds(20);
  spike.end = from_seconds(30);
  spike.factor = 100.0;
  spike.affected = {ProcessId{10}, ProcessId{11}, ProcessId{12}};
  config.spike = spike;

  runtime::MmrCluster cluster(config);

  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{5}, from_seconds(12)});
  plan.entries.push_back({ProcessId{17}, from_seconds(40)});
  cluster.start(plan);

  std::cout << "t_s | suspicion_pairs wrong_pairs | leader(p1's view)\n";
  std::cout << "----+-----------------------------+------------------\n";
  for (double t = 1.0; t <= kHorizonS; t += 1.0) {
    cluster.run_until(from_seconds(t));
    std::size_t pairs = 0;
    std::size_t wrong = 0;
    for (std::uint32_t i = 0; i < kN; ++i) {
      const auto& host = cluster.host(ProcessId{i});
      if (host.crashed()) continue;
      for (ProcessId s : host.detector().suspected()) {
        ++pairs;
        if (!cluster.host(s).crashed()) ++wrong;
      }
    }
    const ProcessId leader =
        core::extract_leader(cluster.host(ProcessId{1}).detector(), kN);
    if (pairs != 0 || static_cast<int>(t) % 10 == 0) {
      std::cout << (t < 10 ? " " : "") << t << "  | " << pairs
                << " pairs, " << wrong << " wrong | p" << leader.value
                << "\n";
    }
  }

  // Post-mortem: did the run satisfy the paper's assumptions, and how fast
  // were the real crashes detected?
  metrics::Analysis analysis(cluster.log(), kN, from_seconds(kHorizonS));
  std::cout << "\ncrash detection summary:\n";
  for (const auto& s : analysis.crash_summaries()) {
    std::cout << "  p" << s.subject.value << " crashed at "
              << to_seconds(s.crash_at) << " s: detected by " << s.detected_by
              << "/" << s.observers << " correct nodes, mean latency "
              << s.latencies.mean() << " s\n";
  }

  const auto correct = analysis.correct();
  core::MpChecker checker(cluster.recorder(), kF, correct);
  const auto verdict = checker.check();
  std::cout << "\nbehavioral property MP: "
            << (verdict.holds ? "held" : "did NOT hold");
  if (verdict.holds) {
    std::cout << " (witness p" << verdict.witness.value << ", from t = "
              << to_seconds(verdict.holds_from) << " s)";
  }
  std::cout << "\nstrong completeness: "
            << (analysis.strong_completeness() ? "satisfied" : "VIOLATED")
            << "\n";
  return 0;
}
