// Quickstart: the asynchronous failure detector in ~60 lines.
//
//   1. Simulated cluster: 5 processes, one crashes, everyone notices —
//      without a single timeout anywhere in the stack.
//   2. The same protocol core driven by hand, to show the sans-I/O API.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "core/detector_core.h"
#include "runtime/cluster.h"

using namespace mmrfd;

namespace {

void simulated_cluster() {
  std::cout << "--- simulated cluster: n = 5, f = 1, p3 crashes at t = 2 s\n";

  runtime::MmrClusterConfig config;
  config.n = 5;
  config.f = 1;
  config.seed = 7;
  config.pacing = from_millis(500);   // query round cadence Delta
  config.mean_delay = from_millis(2); // network mean one-way delay

  runtime::MmrCluster cluster(config);

  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{3}, from_seconds(2)});
  cluster.start(plan);

  cluster.run_for(from_seconds(10));

  for (std::uint32_t i = 0; i < config.n; ++i) {
    const auto& host = cluster.host(ProcessId{i});
    std::cout << "p" << i << (host.crashed() ? " (crashed)" : "          ")
              << " suspects: {";
    for (ProcessId s : host.detector().suspected()) {
      std::cout << ' ' << 'p' << s.value;
    }
    std::cout << " }\n";
  }
}

void sans_io_core() {
  std::cout << "\n--- the sans-I/O core, driven by hand (n = 3, f = 1)\n";

  core::DetectorConfig cfg;
  cfg.self = ProcessId{0};
  cfg.n = 3;
  cfg.f = 1;
  core::DetectorCore detector(cfg);

  // T1: issue a query; the message carries our suspicion state.
  const core::QueryMessage query = detector.start_query();
  std::cout << "broadcast QUERY seq=" << query.seq << "\n";

  // Deliver one remote RESPONSE: with n - f = 2 (self included), that
  // terminates the query; p2 never answered.
  const bool terminated =
      detector.on_response(ProcessId{1}, core::ResponseMessage{query.seq});
  std::cout << "response from p1 -> query terminated: " << std::boolalpha
            << terminated << "\n";
  detector.finish_round();
  std::cout << "p2 suspected now: " << detector.is_suspected(ProcessId{2})
            << "\n";

  // p2 was alive after all: its query arrives telling us it suspects no one,
  // but crucially *our* next query will carry <p2, tag>; when p2 sees itself
  // suspected it answers with a mistake. Simulate receiving that mistake:
  core::QueryMessage from_p2;
  from_p2.seq = 1;
  from_p2.push_mistake({ProcessId{2}, detector.counter() + 1});
  (void)detector.on_query(ProcessId{2}, from_p2);
  std::cout << "after p2's self-defence, p2 suspected: "
            << detector.is_suspected(ProcessId{2}) << "\n";
}

}  // namespace

int main() {
  simulated_cluster();
  sans_io_core();
  return 0;
}
