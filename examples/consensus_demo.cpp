// consensus_demo — what the failure detector is *for*: Chandra-Toueg
// consensus deciding a value among 7 replicas despite crashes, on top of
// the asynchronous detector (and, for contrast, on top of a timer-based
// one in a hostile network where the timeout is wrong).
//
// Build & run:   ./build/examples/consensus_demo
#include <iostream>

#include "consensus/harness.h"

using namespace mmrfd;
using namespace mmrfd::consensus;

namespace {

void run_scenario(const std::string& title, FdKind fd, bool crash_coord,
                  Duration mean_delay, Duration hb_timeout) {
  std::cout << "--- " << title << " (detector: " << fd_kind_name(fd)
            << ")\n";
  HarnessConfig cfg;
  cfg.n = 7;
  cfg.f = 3;
  cfg.seed = 99;
  cfg.fd = fd;
  cfg.mean_delay = mean_delay;
  cfg.mmr_pacing = from_millis(50);
  cfg.hb_period = from_millis(50);
  cfg.hb_timeout = hb_timeout;
  ConsensusHarness harness(cfg);

  std::vector<Value> proposals;
  for (std::uint32_t i = 0; i < cfg.n; ++i) proposals.push_back(1000 + i);

  runtime::CrashPlan plan;
  if (crash_coord) {
    plan.entries.push_back({ProcessId{0}, from_millis(1) / 4});
  }
  harness.start(proposals, plan);

  if (harness.run_until_decided(from_seconds(60))) {
    std::cout << "  decided value " << *harness.agreed_value() << " at t = "
              << to_seconds(*harness.last_decision_at()) * 1000.0
              << " ms, max round " << harness.max_round() << "\n";
  } else {
    std::cout << "  did NOT decide within 60 s (max round "
              << harness.max_round() << ")\n";
  }
}

}  // namespace

int main() {
  run_scenario("failure-free", FdKind::kMmr, false, from_millis(2),
               from_millis(200));
  run_scenario("round-1 coordinator crashes before proposing", FdKind::kMmr,
               true, from_millis(2), from_millis(200));
  run_scenario("round-1 coordinator crashes before proposing",
               FdKind::kHeartbeat, true, from_millis(2), from_millis(200));
  // Hostile network: real delays dwarf the heartbeat timeout. The timer
  // detector suspects everyone constantly; consensus crawls through nacked
  // rounds. The async detector has no timeout to get wrong.
  run_scenario("hostile delays (20 ms mean) with an 8 ms timeout",
               FdKind::kHeartbeat, false, from_millis(20), from_millis(8));
  run_scenario("hostile delays (20 ms mean), async detector", FdKind::kMmr,
               false, from_millis(20), from_millis(8));
  return 0;
}
