// leader_election — Omega (eventual leader) on top of the <>S detector.
//
// The classic reduction: every process trusts the smallest-id process it
// does not suspect. We crash the current leader three times in a row and
// watch every correct process converge to the same next leader — the
// building block that Paxos-style replication needs, obtained here without
// any timeout.
//
// Build & run:   ./build/examples/leader_election
#include <iostream>
#include <map>

#include "core/omega.h"
#include "runtime/cluster.h"

using namespace mmrfd;

namespace {

// The leader according to each correct process; "~" marks disagreement.
std::string leader_census(runtime::MmrCluster& cluster, std::uint32_t n) {
  std::map<std::uint32_t, int> votes;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& host = cluster.host(ProcessId{i});
    if (host.crashed()) continue;
    ++votes[core::extract_leader(host.detector(), n).value];
  }
  std::string out;
  for (const auto& [leader, count] : votes) {
    if (!out.empty()) out += ", ";
    out += "p" + std::to_string(leader) + " x" + std::to_string(count);
  }
  return votes.size() == 1 ? out : out + "  (diverged)";
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 10;

  runtime::MmrClusterConfig config;
  config.n = kN;
  config.f = 3;
  config.seed = 11;
  config.pacing = from_millis(250);
  config.mean_delay = from_millis(2);

  runtime::MmrCluster cluster(config);

  // Assassinate the first three leaders-by-rank.
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{0}, from_seconds(5)});
  plan.entries.push_back({ProcessId{1}, from_seconds(10)});
  plan.entries.push_back({ProcessId{2}, from_seconds(15)});
  cluster.start(plan);

  for (double t = 1.0; t <= 20.0; t += 1.0) {
    cluster.run_until(from_seconds(t));
    std::cout << "t = " << (t < 10 ? " " : "") << t
              << " s  leader votes: " << leader_census(cluster, kN) << "\n";
  }

  std::cout << "\nAfter three leader crashes every correct process should "
               "trust p3.\n";
  bool unanimous = true;
  for (std::uint32_t i = 3; i < kN; ++i) {
    unanimous = unanimous &&
                core::extract_leader(cluster.host(ProcessId{i}).detector(),
                                     kN) == ProcessId{3};
  }
  std::cout << (unanimous ? "Unanimous: leader = p3."
                          : "Not yet unanimous (run longer).")
            << "\n";
  return unanimous ? 0 : 1;
}
