// mmrfd-trace — offline cross-node trace assembly.
//
// Operates on a report directory left behind by a traced supervisor run
// (live::SupervisorConfig::trace): per-node `.trace` / `.crash.trace`
// flight-ring dumps plus trace_manifest.txt. Subcommands:
//
//   assemble  <dir>   assembly summary: record/pair counts, causal-violation
//                     count, per-node clock-skew estimates (--json: the full
//                     assembled document, same shape the supervisor writes
//                     to trace_assembled.json)
//   breakdown <dir>   per-crash detection tables: every observer's latency
//                     split into round-pacing / resend-wait / wire
//   timeline  <dir>   the merged, skew-aligned, chronological event stream
//
// --no-skew skips clock-skew estimation (all rings assumed to share one
// clock frame); --out=FILE writes to a file instead of stdout.
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "obs/trace_assembler.h"

namespace {

using mmrfd::obs::AssembledTrace;
using mmrfd::obs::SkewEstimate;

void write_summary(std::ostream& out, const AssembledTrace& trace) {
  out << "records:          " << trace.records << "\n"
      << "matched pairs:    " << trace.matched_pairs << "\n"
      << "causal violations:" << (trace.causal_violations == 0 ? " " : " !")
      << trace.causal_violations << "\n"
      << "crashes:          " << trace.crashes.size() << "\n";
  if (!trace.skew.empty()) {
    out << "\nclock skew (vs node " << trace.skew.front().node << "):\n";
    char line[160];
    for (const SkewEstimate& s : trace.skew) {
      if (!s.reachable) {
        std::snprintf(line, sizeof(line),
                      "  node %-4" PRIu32 " unreachable (no matched pairs)\n",
                      s.node);
      } else {
        std::snprintf(line, sizeof(line),
                      "  node %-4" PRIu32 " offset %+10.3f us  rtt %8.3f us  "
                      "samples %zu\n",
                      s.node, static_cast<double>(s.offset_ns) / 1e3,
                      static_cast<double>(s.min_rtt_ns) / 1e3, s.samples);
      }
      out << line;
    }
  }
}

int usage() {
  std::cerr
      << "usage: mmrfd-trace <assemble|breakdown|timeline> <report_dir>\n"
         "                   [--json] [--no-skew] [--out=FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];
  if (command != "assemble" && command != "breakdown" &&
      command != "timeline") {
    return usage();
  }

  mmrfd::ArgParser args("mmrfd-trace " + command);
  args.flag("json", "false", "emit the full assembled document as JSON")
      .flag("no-skew", "false",
            "skip clock-skew estimation (rings share one clock)")
      .flag("out", "", "write output to this file instead of stdout");
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 3; i < argc; ++i) rest.push_back(argv[i]);
  if (!args.parse(static_cast<int>(rest.size()), rest.data())) return 2;

  const bool estimate_skew = !args.get_bool("no-skew");
  const bool keep_timeline = command == "timeline";
  const auto trace =
      mmrfd::obs::assemble_from_dir(dir, estimate_skew, keep_timeline);
  if (!trace) {
    std::cerr << "mmrfd-trace: cannot assemble " << dir << " (missing "
              << mmrfd::obs::kTraceManifestName << "?)\n";
    return 1;
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (const std::string path = args.get("out"); !path.empty()) {
    file.open(path, std::ios::trunc);
    if (!file) {
      std::cerr << "mmrfd-trace: cannot write " << path << "\n";
      return 1;
    }
    out = &file;
  }

  if (args.get_bool("json")) {
    *out << mmrfd::obs::to_json(*trace) << "\n";
  } else if (command == "assemble") {
    write_summary(*out, *trace);
  } else if (command == "breakdown") {
    mmrfd::obs::write_text(*out, *trace);
  } else {
    mmrfd::obs::write_timeline(*out, *trace);
  }
  return 0;
}
