// E9 — Why the tags and mistakes exist: full protocol vs the tag-free
// variant under an unstable prefix.
//
// Both detectors run the identical query-response exchange; the tag-free
// SimpleDetectorCore merely suspects known \ rec_from and clears a suspicion
// on direct contact, and must IGNORE the piggybacked suspicion sets — with
// no tags there is no way to order relayed information, so adopting it
// would poison the detector with uncorrectable stale suspicions (unit test:
// SimpleDetector.ThirdPartySuspicionsAreNotAdopted).
//
// Honest expected shape: in the fully connected model, where every process
// observes every other *directly* each round, the tag-free variant shows
// FEWER wrongful-suspicion events — flooding amplifies every local miss to
// all n observers, while tag-free suspicions stay local and are repaired at
// the next direct contact. What the tags buy is not full-mesh churn but the
// ability to circulate suspicion state at all: FD outputs that include
// remotely-learned suspicions with a sound freshness order (the property
// any multi-hop or gossip-style deployment needs), self-defence that
// travels (a witness's mistake reaches processes it never responds to
// quickly), and the class-S/eventual distinction measured here via the
// clean-lag column.
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"
#include "runtime/simple_host.h"

using namespace mmrfd;
using metrics::Table;

namespace {

bench::RunMetrics run_simple(const bench::Workload& w) {
  auto delays = net::make_preset(w.preset, w.mean_delay);
  if (w.spike) {
    delays = std::make_unique<net::SpikeDelay>(std::move(delays),
                                               w.spike->start, w.spike->end,
                                               w.spike->factor,
                                               w.spike->affected);
  }
  runtime::SimpleCluster cluster(
      w.n, net::Topology::full(w.n), std::move(delays),
      derive_seed(w.seed, "bench.simple"), [&](ProcessId self) {
        runtime::SimpleHostConfig c;
        c.detector.self = self;
        c.detector.n = w.n;
        c.detector.f = w.f;
        c.pacing = w.period;
        Xoshiro256 rng(derive_seed(w.seed, "bench.stagger", self.value));
        c.initial_delay = Duration(static_cast<Duration::rep>(
            rng.next_double() * static_cast<double>(w.period.count())));
        return c;
      });
  cluster.start(runtime::CrashPlan::none());
  cluster.run_for(w.horizon);
  return bench::summarize(cluster.log(), w.n, w.horizon);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("E9: tagged mistake flooding vs tag-free suspicion");
  args.flag("n", "20", "system size")
      .flag("f", "5", "fault tolerance")
      .flag("seeds", "5", "seeds per cell")
      .flag("storm_len", "15", "unstable prefix length (s)")
      .flag("factor", "2000", "storm delay multiplier")
      .flag("horizon", "60", "simulated seconds")
      .flag("period", "500", "pacing Delta (ms)")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const double storm_len = static_cast<double>(args.get_int("storm_len"));
  std::cout << "# E9: full (tagged) protocol vs tag-free variant; network "
               "unstable for the first "
            << storm_len << " s\n\n";

  Table table({"variant", "false_susp", "runs_clean", "mean_clean_lag_s",
               "max_clean_lag_s"});
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds"));
  for (const bool tagged : {true, false}) {
    std::size_t fs = 0;
    std::size_t clean = 0;
    SampleSet lags;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      bench::Workload w;
      w.n = static_cast<std::uint32_t>(args.get_int("n"));
      w.f = static_cast<std::uint32_t>(args.get_int("f"));
      w.seed = seed;
      w.crashes = 0;
      w.horizon = from_seconds(static_cast<double>(args.get_int("horizon")));
      w.preset = net::DelayPreset::kExponential;
      w.period = from_millis(static_cast<double>(args.get_int("period")));
      runtime::SpikeSpec storm;
      storm.start = kTimeZero;
      storm.end = from_seconds(storm_len);
      storm.factor = static_cast<double>(args.get_int("factor"));
      w.spike = storm;
      const auto m = tagged ? bench::run_mmr(w) : run_simple(w);
      fs += m.false_suspicions;
      if (m.clean_at) {
        ++clean;
        lags.add(std::max(0.0, *m.clean_at - storm_len));
      }
    }
    table.add_row({tagged ? "full (tags+mistakes)" : "tag-free (class S only)",
                   Table::num(std::uint64_t{fs}),
                   Table::num(std::uint64_t{clean}) + "/" +
                       Table::num(std::uint64_t{seeds}),
                   Table::num(lags.mean()), Table::num(lags.max())});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
