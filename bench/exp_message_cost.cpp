// E4 — Message cost vs system size.
//
// All-to-all query-response is a 2(n-1)-messages-per-round exchange versus
// (n-1) for plain heartbeat: the asynchrony is bought with one extra message
// phase. Gossip's counter vectors make its *bytes* quadratic-ish per tick
// even though its message count matches heartbeat. The table reports
// messages and bytes per process per second (failure-free run, equal 1 s
// cadence for every detector).
//
// Expected shape: msgs/proc/s — mmr ~ 2(n-1), heartbeat ~ (n-1), gossip
// ~ (n-1); bytes/proc/s — mmr close to heartbeat when suspicion sets are
// empty (13-byte responses, 25-byte queries), gossip grows with 8n payload.
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

int main(int argc, char** argv) {
  ArgParser args("E4: message and byte cost vs n (failure-free)");
  args.flag("sizes", "10,20,40,60,100", "comma-separated n values")
      .flag("horizon", "30", "simulated seconds")
      .flag("period", "1000", "cadence (ms) for every detector")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const auto horizon = static_cast<double>(args.get_int("horizon"));
  std::cout << "# E4: message cost per process per second vs n "
            << "(no failures, 1 s cadence)\n\n";

  Table table({"n", "detector", "msgs_total", "msgs_per_proc_s",
               "bytes_per_proc_s", "bytes_per_msg"});

  std::vector<std::uint32_t> sizes;
  {
    std::string s = args.get("sizes");
    for (std::size_t pos = 0; pos < s.size();) {
      const auto comma = s.find(',', pos);
      sizes.push_back(static_cast<std::uint32_t>(
          std::stoul(s.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  for (const std::uint32_t n : sizes) {
    for (const std::string detector : {"mmr", "heartbeat", "gossip"}) {
      bench::Workload w;
      w.n = n;
      w.f = (n + 3) / 4;
      w.seed = 1;
      w.crashes = 0;
      w.horizon = from_seconds(horizon);
      w.period = from_millis(static_cast<double>(args.get_int("period")));
      w.timeout = 2 * w.period;
      const auto m = bench::run_detector(detector, w);
      const double per_proc_s =
          static_cast<double>(m.messages_sent) / n / horizon;
      const double bytes_per_proc_s =
          static_cast<double>(m.bytes_sent) / n / horizon;
      table.add_row(
          {Table::num(std::uint64_t{n}), detector,
           Table::num(m.messages_sent), Table::num(per_proc_s, 1),
           Table::num(bytes_per_proc_s, 1),
           Table::num(m.messages_sent
                          ? static_cast<double>(m.bytes_sent) /
                                static_cast<double>(m.messages_sent)
                          : 0.0,
                      1)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
