// SCALE — large-n stress sweep of the simulation substrate.
//
// The DSN'03 evaluation stopped at tens of processes; this driver pushes the
// same protocol to n = 1000 and beyond, with crash plans and mid-run delay
// spikes, and reports *simulator* throughput (events/sec of wall clock)
// alongside the protocol metrics. It is the perf-trajectory anchor: each run
// appends a machine-readable snapshot to BENCH_scale.json so the
// events/sec trend across PRs is one `git log -p BENCH_scale.json` away.
//
// The n=1000 default sweep exercises ~2 million messages per simulated
// second (every host broadcasts an n-1-recipient query plus collects n-1
// responses per pacing period), which is exactly the workload the
// shared-payload broadcast, the pooled event heap and the delta-encoded
// query path exist for.
//
// --mode both (the default) runs every (n, seed) config under the delta
// wire encoding AND the canonical full encoding: the `delta` column is the
// sweep's own differential check (state metrics must match row for row) and
// `B_per_query` shows what the encoding buys. --jobs N forks one process
// per config so seed-averaged sweeps use the whole machine.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define MMRFD_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define MMRFD_HAVE_FORK 0
#endif

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"
#include "obs/metrics_registry.h"
#include "runtime/sharded_cluster.h"

using namespace mmrfd;
using metrics::Table;

namespace {

struct ScaleConfig {
  std::uint32_t n{0};
  std::uint64_t seed{0};
  bool delta{true};
  std::uint32_t shards{0};  ///< 0 = serial Simulation, >0 = ShardedEngine
  bool rollup_log{false};   ///< serial path only; sharded is always rollup
};

struct ScaleResult {
  std::uint32_t n{0};
  std::uint32_t f{0};
  std::uint64_t seed{0};
  bool delta{true};
  std::uint32_t shards{0};  ///< 0 = serial engine
  double horizon_s{0};
  double wall_s{0};
  std::uint64_t events_fired{0};
  double events_per_sec{0};
  std::uint64_t messages_sent{0};
  std::uint64_t bytes_sent{0};
  double bytes_per_query{0};
  std::size_t crashes{0};
  bool strong_completeness{false};
  double detection_mean_s{0};
  double detection_p50_s{0};
  double detection_p99_s{0};
  double detection_max_s{0};
  std::size_t false_suspicions{0};
  // Round RTT (query start -> quorum) percentiles from the sim.round_rtt_ns
  // registry histogram — serial runs use one shared registry, sharded runs
  // merge the per-shard ones.
  double round_rtt_p50_ms{0};
  double round_rtt_p99_ms{0};
};
// The --jobs path ships results from child to parent as raw bytes.
static_assert(std::is_trivially_copyable_v<ScaleResult>);

runtime::MmrClusterConfig cluster_config(const ScaleConfig& c,
                                         Duration horizon, Duration pacing,
                                         bool with_spike) {
  const std::uint32_t n = c.n;
  runtime::MmrClusterConfig cfg;
  cfg.n = n;
  cfg.f = (n + 3) / 4;
  cfg.seed = c.seed;
  cfg.pacing = pacing;
  cfg.pacing_jitter = 0.1;  // arbitrary inter-query times, as the model allows
  cfg.mean_delay = from_millis(1);
  cfg.delay_preset = net::DelayPreset::kExponential;
  cfg.delta_queries = c.delta;
  if (c.rollup_log) cfg.log_mode = metrics::LogMode::kRollup;
  if (with_spike) {
    // A transient slowdown on ~1% of the nodes in the back half of the run.
    // The factor pushes their mean delay (1ms) past the pacing period (1s),
    // so affected responses miss whole rounds: the sweep exercises false
    // suspicions and their self-defence repairs at scale, not just the
    // happy path.
    runtime::SpikeSpec spike;
    spike.start = from_seconds(to_seconds(horizon) * 0.65);
    spike.end = from_seconds(to_seconds(horizon) * 0.75);
    spike.factor = 2000.0;
    for (std::uint32_t i = 0; i < std::max<std::uint32_t>(1, n / 100); ++i) {
      spike.affected.push_back(ProcessId{i});
    }
    cfg.spike = spike;
  }
  return cfg;
}

runtime::CrashPlan crash_plan(const ScaleConfig& c, Duration horizon,
                              std::size_t crashes) {
  return runtime::CrashPlan::uniform(
      crashes, c.n, from_seconds(to_seconds(horizon) * 0.2),
      from_seconds(to_seconds(horizon) * 0.6), c.seed);
}

// Per-query byte accounting rides the size_fn: wire_size is exact for both
// encodings, so bytes/query is the sweep's full-vs-delta column.
struct WireTally {
  std::uint64_t query_bytes{0};
  std::uint64_t queries{0};
};

template <typename Net>
void install_tally(Net& net, std::shared_ptr<WireTally> tally) {
  net.set_size_fn([tally = std::move(tally)](const runtime::MmrMessage& m) {
    const std::size_t size = std::visit(
        [](const auto& msg) { return transport::wire_size(msg); }, m);
    if (std::holds_alternative<core::QueryMessage>(m)) {
      tally->query_bytes += size;
      ++tally->queries;
    }
    return size;
  });
}

void fill_result(ScaleResult& r, const ScaleConfig& c, std::uint32_t f,
                 Duration horizon, double wall_s, const WireTally& tally,
                 std::size_t crashes, const bench::RunMetrics& m) {
  r.n = c.n;
  r.f = f;
  r.seed = c.seed;
  r.delta = c.delta;
  r.shards = c.shards;
  r.horizon_s = to_seconds(horizon);
  r.wall_s = wall_s;
  r.events_per_sec =
      wall_s > 0 ? static_cast<double>(r.events_fired) / wall_s : 0;
  r.bytes_per_query =
      tally.queries > 0 ? static_cast<double>(tally.query_bytes) /
                              static_cast<double>(tally.queries)
                        : 0;
  r.crashes = crashes;
  r.strong_completeness = m.strong_completeness;
  r.detection_mean_s = m.detection_latencies.mean();
  r.detection_p50_s = m.detection_latencies.percentile(50.0);
  r.detection_p99_s = m.detection_latencies.percentile(99.0);
  r.detection_max_s = m.detection_latencies.max();
  r.false_suspicions = m.false_suspicions;
}

void fill_round_rtt(ScaleResult& r, const obs::RegistrySnapshot& snap) {
  if (const obs::HistogramSnapshot* h =
          snap.find_histogram("sim.round_rtt_ns")) {
    r.round_rtt_p50_ms = h->percentile(0.50) / 1e6;
    r.round_rtt_p99_ms = h->percentile(0.99) / 1e6;
  }
}

ScaleResult run_serial(const ScaleConfig& c, Duration horizon, Duration pacing,
                       bool with_spike) {
  runtime::MmrClusterConfig cfg =
      cluster_config(c, horizon, pacing, with_spike);
  obs::MetricsRegistry registry;  // sim.* instruments for every host
  cfg.registry = &registry;
  runtime::MmrCluster cluster(cfg);
  auto tally = std::make_shared<WireTally>();
  install_tally(cluster.network(), tally);

  const std::size_t crashes = cfg.f / 2;
  const auto plan = crash_plan(c, horizon, crashes);

  std::cerr << "[exp_scale] n=" << c.n << " seed=" << c.seed
            << (c.delta ? " delta" : " full") << " serial simulating...\n";
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.start(plan);
  cluster.run_for(horizon);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cerr << "[exp_scale]   sim " << wall.count() << "s, "
            << cluster.simulation().events_fired() << " events, "
            << cluster.log().entries() << " log entries; analysing...\n";

  const bench::RunMetrics m =
      cfg.log_mode == metrics::LogMode::kRollup
          ? bench::summarize_rollup_metrics(cluster.log().rollup(),
                                            cluster.log().crashes(), c.n)
          : bench::summarize(cluster.log(), c.n, horizon);
  std::cerr << "[exp_scale]   analysis "
            << std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count() -
                   wall.count()
            << "s\n";

  ScaleResult r;
  r.events_fired = cluster.simulation().events_fired();
  r.messages_sent = cluster.network().stats().messages_sent;
  r.bytes_sent = cluster.network().stats().bytes_sent;
  fill_result(r, c, cfg.f, horizon, wall.count(), *tally, crashes, m);
  fill_round_rtt(r, registry.snapshot());
  return r;
}

ScaleResult run_sharded(const ScaleConfig& c, Duration horizon, Duration pacing,
                        bool with_spike) {
  const runtime::MmrClusterConfig cfg =
      cluster_config(c, horizon, pacing, with_spike);
  runtime::ShardedMmrCluster cluster(cfg, c.shards);
  // One tally per shard: each network's size_fn runs on that shard's worker
  // thread, so the counters must not be shared across shards.
  std::vector<std::shared_ptr<WireTally>> tallies;
  for (std::uint32_t s = 0; s < c.shards; ++s) {
    tallies.push_back(std::make_shared<WireTally>());
    install_tally(cluster.network(s), tallies.back());
  }

  const std::size_t crashes = cfg.f / 2;
  const auto plan = crash_plan(c, horizon, crashes);

  std::cerr << "[exp_scale] n=" << c.n << " seed=" << c.seed
            << (c.delta ? " delta" : " full") << " sharded x" << c.shards
            << " (window " << to_seconds(cluster.engine().window()) * 1e6
            << "us) simulating...\n";
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.start(plan);
  cluster.run_for(horizon);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  std::cerr << "[exp_scale]   sim " << wall.count() << "s, "
            << cluster.engine().events_fired() << " events, "
            << cluster.engine().windows_run() << " windows, "
            << cluster.engine().cross_shard_posts() << " exchanged, "
            << (cluster.log_retained_bytes() >> 20)
            << " MiB log; analysing...\n";

  const bench::RunMetrics m = bench::summarize_rollup_metrics(
      cluster.rollup(), cluster.crashes(), c.n);

  WireTally tally;
  for (const auto& t : tallies) {
    tally.query_bytes += t->query_bytes;
    tally.queries += t->queries;
  }
  const net::NetworkStats stats = cluster.stats();
  ScaleResult r;
  r.events_fired = cluster.engine().events_fired();
  r.messages_sent = stats.messages_sent;
  r.bytes_sent = stats.bytes_sent;
  fill_result(r, c, cfg.f, horizon, wall.count(), tally, crashes, m);
  fill_round_rtt(r, cluster.telemetry());
  return r;
}

ScaleResult run_config(const ScaleConfig& c, Duration horizon, Duration pacing,
                       bool with_spike) {
  return c.shards > 0 ? run_sharded(c, horizon, pacing, with_spike)
                      : run_serial(c, horizon, pacing, with_spike);
}

#if MMRFD_HAVE_FORK
/// Runs every config in its own forked process, at most `jobs` at a time
/// (the configs are embarrassingly parallel; one process per config also
/// returns each run's slab/log memory to the OS the moment it finishes).
/// Results arrive over per-child pipes and land at their config's index, so
/// the output order is identical to the serial path. Returns 0 when every
/// child succeeded; otherwise the first failing child's exit status (or
/// 128 + signal for a signalled child), so the sweep's exit code carries
/// the real failure instead of a generic 1.
int run_forked(const std::vector<ScaleConfig>& configs, Duration horizon,
               Duration pacing, bool with_spike, std::size_t jobs,
               std::vector<ScaleResult>& results) {
  struct Child {
    pid_t pid{-1};
    int fd{-1};
    std::size_t index{0};
  };
  std::vector<Child> active;
  std::size_t next = 0;
  int rc = 0;

  auto spawn = [&](std::size_t index) {
    int fds[2];
    if (pipe(fds) != 0) {
      std::cerr << "exp_scale: pipe failed: " << std::strerror(errno) << "\n";
      return false;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "exp_scale: fork failed: " << std::strerror(errno) << "\n";
      close(fds[0]);
      close(fds[1]);
      return false;
    }
    if (pid == 0) {
      close(fds[0]);
      const ScaleResult r =
          run_config(configs[index], horizon, pacing, with_spike);
      const char* p = reinterpret_cast<const char*>(&r);
      std::size_t left = sizeof r;
      while (left > 0) {
        const ssize_t w = write(fds[1], p, left);
        if (w <= 0) _exit(2);
        p += w;
        left -= static_cast<std::size_t>(w);
      }
      _exit(0);
    }
    close(fds[1]);
    active.push_back(Child{pid, fds[0], index});
    return true;
  };

  while (next < configs.size() || !active.empty()) {
    while (rc == 0 && next < configs.size() && active.size() < jobs) {
      if (!spawn(next)) {
        rc = 1;
        break;
      }
      ++next;
    }
    if (active.empty()) break;
    int status = 0;
    const pid_t done = waitpid(-1, &status, 0);
    auto it = active.begin();
    while (it != active.end() && it->pid != done) ++it;
    if (it == active.end()) continue;  // not one of ours
    ScaleResult r;
    char* p = reinterpret_cast<char*>(&r);
    std::size_t got = 0;
    while (got < sizeof r) {
      const ssize_t n_read = read(it->fd, p + got, sizeof(r) - got);
      if (n_read <= 0) break;
      got += static_cast<std::size_t>(n_read);
    }
    close(it->fd);
    const bool child_ok =
        WIFEXITED(status) && WEXITSTATUS(status) == 0 && got == sizeof r;
    if (child_ok) {
      results[it->index] = r;
    } else {
      // Propagate what actually happened: the child's own exit status, a
      // signal death as 128 + signo (shell convention), or 1 for a clean
      // exit that still short-wrote its result. First failure wins.
      int child_rc = 1;
      if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        child_rc = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        child_rc = 128 + WTERMSIG(status);
      }
      std::cerr << "exp_scale: worker for n=" << configs[it->index].n
                << " seed=" << configs[it->index].seed << " failed ("
                << (WIFSIGNALED(status)
                        ? "signal " + std::to_string(WTERMSIG(status))
                        : "exit " + std::to_string(WEXITSTATUS(status)))
                << ")\n";
      if (rc == 0) rc = child_rc;
    }
    active.erase(it);
  }
  return rc;
}
#endif  // MMRFD_HAVE_FORK

[[nodiscard]] bool write_json(const std::vector<ScaleResult>& results,
                              const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "exp_scale: cannot open " << path << " for writing\n";
    return false;
  }
  os << "{\n  \"experiment\": \"exp_scale\",\n  \"unit\": {\"events_per_sec\": "
        "\"simulator events fired per wall-clock second\"},\n  \"results\": [";
  bool first = true;
  for (const auto& r : results) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"n\": " << r.n << ", \"f\": " << r.f
       << ", \"seed\": " << r.seed
       << ", \"delta\": " << (r.delta ? "true" : "false")
       << ", \"engine\": \"" << (r.shards > 0 ? "sharded" : "serial")
       << "\", \"shards\": " << r.shards
       << ", \"horizon_s\": " << r.horizon_s << ", \"wall_s\": " << r.wall_s
       << ", \"events_fired\": " << r.events_fired
       << ", \"events_per_sec\": " << r.events_per_sec
       << ", \"messages_sent\": " << r.messages_sent
       << ", \"bytes_sent\": " << r.bytes_sent
       << ", \"bytes_per_query\": " << r.bytes_per_query
       << ", \"crashes\": " << r.crashes << ", \"strong_completeness\": "
       << (r.strong_completeness ? "true" : "false")
       << ", \"detection_mean_s\": " << r.detection_mean_s
       << ", \"detection_p50_s\": " << r.detection_p50_s
       << ", \"detection_p99_s\": " << r.detection_p99_s
       << ", \"detection_max_s\": " << r.detection_max_s
       << ", \"round_rtt_p50_ms\": " << r.round_rtt_p50_ms
       << ", \"round_rtt_p99_ms\": " << r.round_rtt_p99_ms
       << ", \"false_suspicions\": " << r.false_suspicions << "}";
  }
  os << "\n  ]\n}\n";
  os.flush();
  if (!os) {
    std::cerr << "exp_scale: short write to " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("SCALE: large-n simulator stress sweep (events/sec trajectory)");
  args.flag("sizes", "100,300,1000", "comma-separated n values")
      .flag("seeds", "1", "seeds per configuration")
      .flag("horizon", "20", "simulated seconds per run")
      .flag("period", "1000", "query pacing Delta (ms)")
      .flag("spike", "true", "inject a mid-run delay spike on ~1% of nodes")
      .flag("mode", "both", "query encoding: delta, full, or both")
      .flag("engine", "serial", "simulation engine: serial, sharded, or both")
      .flag("shards", "4", "worker shards for the sharded engine")
      .flag("log", "full", "serial event-log retention: full or rollup")
      .flag("jobs", "1", "fork one worker process per config, N at a time")
      .flag("out", "BENCH_scale.json", "JSON output path")
      .flag("csv", "false", "emit CSV instead of an aligned table");
  if (!args.parse(argc, argv)) return 0;

  std::vector<std::uint32_t> sizes;
  {
    const std::string s = args.get("sizes");
    for (std::size_t pos = 0; pos < s.size();) {
      const auto comma = s.find(',', pos);
      const std::string tok = s.substr(pos, comma - pos);
      // Digits only: stoul would accept "-5" by wrapping it to a huge
      // unsigned value, which the < 2 guard below cannot catch.
      if (tok.empty() ||
          tok.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "exp_scale: bad --sizes entry '" << tok << "'\n";
        return 1;
      }
      unsigned long value = 0;
      try {
        value = std::stoul(tok);
      } catch (const std::exception&) {  // out-of-range
        std::cerr << "exp_scale: bad --sizes entry '" << tok << "'\n";
        return 1;
      }
      // n = 1 would make f = (n+3)/4 >= n, which DetectorCore (correctly)
      // rejects by throwing; the upper bound keeps a typo'd size from
      // silently truncating through uint32 and allocating a "cluster" of
      // billions of hosts.
      if (value < 2 || value > 1000000) {
        std::cerr << "exp_scale: --sizes entries must be in [2, 1000000] "
                     "(got " << tok << ")\n";
        return 1;
      }
      sizes.push_back(static_cast<std::uint32_t>(value));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (sizes.empty()) {
      std::cerr << "exp_scale: --sizes must name at least one size\n";
      return 1;
    }
  }
  const std::string mode = args.get("mode");
  if (mode != "delta" && mode != "full" && mode != "both") {
    std::cerr << "exp_scale: --mode must be delta, full or both (got '"
              << mode << "')\n";
    return 1;
  }
  const std::string engine = args.get("engine");
  if (engine != "serial" && engine != "sharded" && engine != "both") {
    std::cerr << "exp_scale: --engine must be serial, sharded or both (got '"
              << engine << "')\n";
    return 1;
  }
  const int shards_arg = args.get_int("shards");
  if (shards_arg < 1 || shards_arg > 256) {
    std::cerr << "exp_scale: --shards must be in [1, 256]\n";
    return 1;
  }
  const auto shards = static_cast<std::uint32_t>(shards_arg);
  const std::string log_mode = args.get("log");
  if (log_mode != "full" && log_mode != "rollup") {
    std::cerr << "exp_scale: --log must be full or rollup (got '" << log_mode
              << "')\n";
    return 1;
  }
  const int jobs_arg = args.get_int("jobs");
  if (jobs_arg < 1) {
    std::cerr << "exp_scale: --jobs must be >= 1\n";
    return 1;
  }
  auto jobs = static_cast<std::size_t>(jobs_arg);
  if (engine != "serial" && jobs > 1) {
    // --jobs forks whole processes and --shards threads each sharded run:
    // multiplied, they oversubscribe the machine and the per-run wall-clock
    // numbers stop meaning anything. Cap the process count so
    // jobs * shards <= hardware threads (but always allow one job).
    const std::size_t hc = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t cap = std::max<std::size_t>(1, hc / shards);
    if (jobs > cap) {
      std::cerr << "exp_scale: --jobs " << jobs << " x --shards " << shards
                << " oversubscribes " << hc
                << " hardware threads; capping --jobs to " << cap << "\n";
      jobs = cap;
    }
  }
#if !MMRFD_HAVE_FORK
  if (jobs > 1) {
    std::cerr << "exp_scale: --jobs needs fork(); running serially\n";
  }
#endif
  const auto horizon =
      from_seconds(static_cast<double>(args.get_int("horizon")));
  const auto pacing = from_millis(static_cast<double>(args.get_int("period")));

  std::cout << "# SCALE: simulator stress sweep  (f = n/4, f/2 crashes, "
            << (args.get_bool("spike") ? "spike on" : "spike off")
            << ", horizon " << args.get_int("horizon") << "s, mode " << mode
            << ")\n\n";

  // Build the config list up front (the unit of work for --jobs). Encoding
  // varies fastest so full-vs-delta rows for one (n, seed) sit adjacent.
  std::vector<ScaleConfig> configs;
  const bool rollup = log_mode == "rollup";
  for (const std::uint32_t n : sizes) {
    for (std::uint64_t seed = 1;
         seed <= static_cast<std::uint64_t>(args.get_int("seeds")); ++seed) {
      for (const bool delta : {false, true}) {
        if (delta ? mode == "full" : mode == "delta") continue;
        if (engine != "sharded") configs.push_back({n, seed, delta, 0, rollup});
        if (engine != "serial") {
          configs.push_back({n, seed, delta, shards, rollup});
        }
      }
    }
  }

  std::vector<ScaleResult> results(configs.size());
  const bool spike = args.get_bool("spike");
#if MMRFD_HAVE_FORK
  if (jobs > 1) {
    if (const int rc = run_forked(configs, horizon, pacing, spike, jobs, results);
        rc != 0) {
      return rc;
    }
  } else
#endif
  {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = run_config(configs[i], horizon, pacing, spike);
    }
  }

  Table table({"n", "f", "seed", "delta", "engine", "wall_s", "events",
               "events_per_sec", "msgs_sent", "B_per_query", "mean_det_s",
               "p99_det_s", "rtt_p50_ms", "complete", "false_susp"});
  for (const auto& r : results) {
    table.add_row({Table::num(std::uint64_t{r.n}),
                   Table::num(std::uint64_t{r.f}), Table::num(r.seed),
                   r.delta ? "yes" : "no",
                   r.shards > 0 ? "shard" + std::to_string(r.shards)
                                : std::string("serial"),
                   Table::num(r.wall_s),
                   Table::num(r.events_fired), Table::num(r.events_per_sec),
                   Table::num(r.messages_sent), Table::num(r.bytes_per_query),
                   Table::num(r.detection_mean_s),
                   Table::num(r.detection_p99_s),
                   Table::num(r.round_rtt_p50_ms),
                   r.strong_completeness ? "yes" : "no",
                   Table::num(std::uint64_t{r.false_suspicions})});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return write_json(results, args.get("out")) ? 0 : 1;
}
