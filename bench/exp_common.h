// Shared scaffolding for the experiment binaries (E1-E8): uniform workload
// description, per-detector runners, and a uniform metrics summary, so every
// table in EXPERIMENTS.md is produced by the same measurement code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "baselines/adaptive.h"
#include "baselines/gossip.h"
#include "baselines/heartbeat.h"
#include "baselines/phi_accrual.h"
#include "common/stats.h"
#include "metrics/analysis.h"
#include "net/delay_model.h"
#include "runtime/baseline_cluster.h"
#include "runtime/cluster.h"
#include "runtime/crash_plan.h"
#include "transport/codec.h"

namespace mmrfd::bench {

/// One simulated run's workload, shared by every detector under test.
struct Workload {
  std::uint32_t n{20};
  std::uint32_t f{5};
  std::uint64_t seed{1};
  std::size_t crashes{5};
  Duration horizon{from_seconds(60)};
  Duration crash_window_start{from_seconds(10)};
  Duration crash_window_end{from_seconds(40)};

  net::DelayPreset preset{net::DelayPreset::kExponential};
  Duration mean_delay{from_millis(1)};

  /// Detector cadence: MMR pacing Delta and baseline heartbeat period.
  Duration period{from_millis(1000)};
  /// Baseline fixed timeout Theta.
  Duration timeout{from_millis(2000)};
  /// Phi-accrual threshold.
  double phi_threshold{8.0};

  /// Processes sped up to engineer MP (empty = none).
  std::vector<ProcessId> fast_set;
  double fast_factor{0.1};
  std::optional<runtime::SpikeSpec> spike;

  // MMR ablation knobs.
  bool accept_late_responses{true};
  std::uint32_t extra_quorum{0};
};

/// Uniform result summary extracted from a run's event log.
struct RunMetrics {
  SampleSet detection_latencies;  ///< seconds, per (crash, observer)
  /// Worst per-crash strong-completeness latency (seconds); unset if some
  /// crash went undetected by some observer within the horizon.
  std::optional<double> completeness_latency;
  bool strong_completeness{false};
  std::size_t false_suspicions{0};
  /// Wrongful-suspicion repair times (seconds), for suspicions that cleared.
  SampleSet mistake_durations;
  std::uint64_t messages_sent{0};
  std::uint64_t bytes_sent{0};
  /// Step series of concurrently active wrongful suspicions.
  std::vector<metrics::FalseSuspicionPoint> false_series;
  /// MP verdict (MMR runs only).
  std::optional<core::MpVerdict> mp;
  /// Weak-accuracy stabilization instant (seconds), if reached: some correct
  /// process is never wrongly suspected after it.
  std::optional<double> accuracy_stable_at;
  /// Global cleanliness instant (seconds), if reached: the last wrongful
  /// suspicion anywhere was repaired by then.
  std::optional<double> clean_at;
};

RunMetrics summarize(const metrics::EventLog& log, std::uint32_t n,
                     Duration horizon);

/// Rollup-mode counterpart of summarize(): fills the fields computable from
/// per-pair rollups (detection latencies, completeness, false-suspicion
/// count, clean_at) and leaves the stream-only ones (mistake durations,
/// false series, accuracy_stable_at) empty.
RunMetrics summarize_rollup_metrics(const std::vector<metrics::PairRollup>& pairs,
                                    const std::vector<metrics::CrashRecord>& crashes,
                                    std::uint32_t n);

/// The paper's detector.
RunMetrics run_mmr(const Workload& w);
/// Fixed-timeout heartbeat baseline.
RunMetrics run_heartbeat(const Workload& w);
/// Phi-accrual baseline.
RunMetrics run_phi(const Workload& w);
/// Adaptive-timeout baseline (timeout field = safety margin).
RunMetrics run_adaptive(const Workload& w);
/// Gossip-counter baseline.
RunMetrics run_gossip(const Workload& w);

/// Dispatch by name: "mmr" | "heartbeat" | "phi" | "adaptive" | "gossip".
RunMetrics run_detector(const std::string& name, const Workload& w);

/// Merges per-seed SampleSets: convenience for seed-averaged tables.
void append_samples(SampleSet& into, const SampleSet& from);

}  // namespace mmrfd::bench
