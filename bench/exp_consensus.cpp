// E6 — End-to-end value of the detector: Chandra-Toueg consensus latency.
//
// Same consensus protocol, same workload, four detectors: the perfect
// oracle (lower bound), the asynchronous query-response detector, and two
// timer-based baselines. Scenarios: failure-free, coordinator crash, and a
// delay spike during the run.
//
// Expected shape: failure-free, everyone ties (round 1). With the round-1
// coordinator crashed, decision time = (time to suspect p0) + round 2; the
// async detector's suspicion time ~ Delta beats the padded Theta. Under a
// spike, timer-based detectors false-suspect coordinators and burn extra
// rounds; the async detector stays on the fast path once MP re-asserts.
#include <iostream>

#include "common/argparse.h"
#include "common/stats.h"
#include "consensus/harness.h"
#include "metrics/table.h"

using namespace mmrfd;
using namespace mmrfd::consensus;
using metrics::Table;

namespace {

struct Scenario {
  std::string name;
  bool crash_coordinator{false};
};

struct Outcome {
  double decide_s{0.0};
  Round rounds{0};
  bool ok{false};
};

Outcome run_one(FdKind kind, const Scenario& sc, std::uint64_t seed,
                std::uint32_t n, std::uint32_t f) {
  HarnessConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.fd = kind;
  cfg.seed = seed;
  cfg.mean_delay = from_millis(2);
  cfg.mmr_pacing = from_millis(50);
  cfg.hb_period = from_millis(50);
  cfg.hb_timeout = from_millis(200);
  ConsensusHarness h(cfg);
  std::vector<Value> proposals;
  for (std::uint32_t i = 0; i < n; ++i) proposals.push_back(100 + i);
  runtime::CrashPlan plan;
  if (sc.crash_coordinator) {
    // Round-1 coordinator p0 dies before any phase-1 estimate can reach it
    // (mean delay 2 ms), so it never proposes: every participant must wait
    // for its failure detector to suspect p0 before round 2 can start —
    // the scenario where detector latency is the decision latency.
    plan.entries.push_back({ProcessId{0}, from_millis(1) / 2});
  }
  h.start(proposals, plan);
  Outcome out;
  out.ok = h.run_until_decided(from_seconds(120));
  if (out.ok) {
    out.decide_s = to_seconds(*h.last_decision_at());
    out.rounds = h.max_round();
    if (!h.agreed_value().has_value()) out.ok = false;  // agreement violated
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("E6: consensus decision latency per failure detector");
  args.flag("n", "7", "system size")
      .flag("f", "3", "fault tolerance (< n/2)")
      .flag("seeds", "5", "seeds per cell")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(args.get_int("n"));
  const auto f = static_cast<std::uint32_t>(args.get_int("f"));
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds"));

  std::cout << "# E6: Chandra-Toueg consensus on top of each detector "
            << "(n = " << n << ", f = " << f << ", " << seeds << " seeds)\n\n";

  Table table({"scenario", "detector", "decided", "mean_decide_s",
               "max_decide_s", "mean_rounds"});

  const Scenario scenarios[] = {{"failure-free", false},
                                {"coordinator-crash", true}};
  for (const auto& sc : scenarios) {
    for (FdKind kind : {FdKind::kPerfect, FdKind::kMmr, FdKind::kHeartbeat,
                        FdKind::kPhiAccrual}) {
      SampleSet decide;
      SampleSet rounds;
      std::size_t ok = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto out = run_one(kind, sc, seed, n, f);
        if (out.ok) {
          ++ok;
          decide.add(out.decide_s);
          rounds.add(static_cast<double>(out.rounds));
        }
      }
      table.add_row({sc.name, fd_kind_name(kind),
                     Table::num(std::uint64_t{ok}) + "/" +
                         Table::num(std::uint64_t{seeds}),
                     Table::num(decide.mean()), Table::num(decide.max()),
                     Table::num(rounds.mean(), 1)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
