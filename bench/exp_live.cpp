// LIVE — real-process loopback deployment sweep.
//
// Where exp_scale stresses the simulator, this driver stresses the kernel:
// every configuration fork/execs n mmrfd-node processes (one detector, one
// UDP socket, three threads each), injects SIGKILL crash-stops from a
// runtime::CrashPlan-derived schedule at real wall-clock offsets, and
// aggregates the nodes' binary reports through live::Supervisor into the
// same detection/accuracy/cost metrics the simulated experiments report.
// This is the first place the delta encoding, the shared-full fallback and
// the need_full resync run over a real network stack, with real scheduling
// jitter the simulator cannot represent.
//
// Each run appends a machine-readable snapshot to BENCH_live.json alongside
// exp_scale's BENCH_scale.json, so the live trajectory accrues per PR too.
//
//   ./build/bench/exp_live --sizes 8,32,64 --run 10
//   ./build/bench/exp_live --sizes 128 --period 200 --mode delta
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "live/supervisor.h"
#include "metrics/table.h"
#include "runtime/crash_plan.h"

using namespace mmrfd;
using metrics::Table;

namespace {

struct LiveConfig {
  std::uint32_t n{0};
  std::uint64_t seed{0};
  bool delta{true};
  std::uint16_t base_port{0};
};

struct LiveResult {
  std::uint32_t n{0};
  std::uint32_t f{0};
  std::uint64_t seed{0};
  bool delta{true};
  bool reliable{false};
  double run_s{0};
  std::size_t crashes{0};
  std::size_t restarts{0};
  bool strong_completeness{false};
  double detection_mean_s{0};
  double detection_p50_s{0};
  double detection_p99_s{0};
  double detection_max_s{0};
  std::size_t false_suspicions{0};
  std::uint64_t rounds{0};
  std::uint64_t full_queries{0};
  std::uint64_t delta_queries{0};
  std::uint64_t need_full_sent{0};
  std::uint64_t need_full_received{0};
  double bytes_per_query{0};
  std::uint64_t datagrams_received{0};
  std::uint64_t truncated{0};
  std::uint64_t recv_errors{0};
  std::uint64_t malformed{0};
  std::size_t unexpected_exits{0};
  std::size_t missing_reports{0};
  // Ground-truth wire cost: bytes handed to sendto(), reliability framing,
  // retransmits and ACKs included (v2 reports close the old gap where
  // bytes_per_query counted only codec payloads).
  std::uint64_t datagrams_sent{0};
  std::uint64_t wire_bytes_sent{0};
  double wire_bytes_per_query{0};
  // Round RTT percentiles from the cluster-merged rt.round_rtt_ns histogram.
  double round_rtt_p50_ms{0};
  double round_rtt_p99_ms{0};
  // Detection-latency attribution from the assembled cross-node trace: each
  // observer's latency split into round-pacing, resend-wait and wire time
  // (the three sum to the latency exactly). Per crash below; the flat means
  // average over every (crash, observer) pair.
  struct CrashBreakdown {
    std::uint32_t victim{0};
    std::size_t observers{0};
    std::uint32_t undetected{0};
    double latency_mean_ms{0};
    double pacing_mean_ms{0};
    double resend_wait_mean_ms{0};
    double wire_mean_ms{0};
  };
  std::vector<CrashBreakdown> breakdowns;
  double pacing_mean_ms{0};
  double resend_wait_mean_ms{0};
  double wire_mean_ms{0};
  std::size_t trace_causal_violations{0};
};

[[nodiscard]] bool write_json(const std::vector<LiveResult>& results,
                              const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "exp_live: cannot open " << path << " for writing\n";
    return false;
  }
  os << "{\n  \"experiment\": \"exp_live\",\n  \"unit\": {\"processes\": "
        "\"real OS processes over loopback UDP\"},\n  \"results\": [";
  bool first = true;
  for (const auto& r : results) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"n\": " << r.n << ", \"f\": " << r.f
       << ", \"seed\": " << r.seed
       << ", \"delta\": " << (r.delta ? "true" : "false")
       << ", \"reliable\": " << (r.reliable ? "true" : "false")
       << ", \"run_s\": " << r.run_s << ", \"crashes\": " << r.crashes
       << ", \"restarts\": " << r.restarts << ", \"strong_completeness\": "
       << (r.strong_completeness ? "true" : "false")
       << ", \"detection_mean_s\": " << r.detection_mean_s
       << ", \"detection_p50_s\": " << r.detection_p50_s
       << ", \"detection_p99_s\": " << r.detection_p99_s
       << ", \"detection_max_s\": " << r.detection_max_s
       << ", \"round_rtt_p50_ms\": " << r.round_rtt_p50_ms
       << ", \"round_rtt_p99_ms\": " << r.round_rtt_p99_ms
       << ", \"false_suspicions\": " << r.false_suspicions
       << ", \"rounds\": " << r.rounds
       << ", \"full_queries\": " << r.full_queries
       << ", \"delta_queries\": " << r.delta_queries
       << ", \"need_full_sent\": " << r.need_full_sent
       << ", \"need_full_received\": " << r.need_full_received
       << ", \"bytes_per_query\": " << r.bytes_per_query
       << ", \"datagrams_sent\": " << r.datagrams_sent
       << ", \"wire_bytes_sent\": " << r.wire_bytes_sent
       << ", \"wire_bytes_per_query\": " << r.wire_bytes_per_query
       << ", \"datagrams_received\": " << r.datagrams_received
       << ", \"truncated\": " << r.truncated
       << ", \"recv_errors\": " << r.recv_errors
       << ", \"malformed\": " << r.malformed
       << ", \"unexpected_exits\": " << r.unexpected_exits
       << ", \"missing_reports\": " << r.missing_reports
       << ", \"pacing_mean_ms\": " << r.pacing_mean_ms
       << ", \"resend_wait_mean_ms\": " << r.resend_wait_mean_ms
       << ", \"wire_mean_ms\": " << r.wire_mean_ms
       << ", \"trace_causal_violations\": " << r.trace_causal_violations
       << ", \"crash_breakdowns\": [";
    bool first_crash = true;
    for (const auto& b : r.breakdowns) {
      os << (first_crash ? "" : ", ") << "{\"victim\": " << b.victim
         << ", \"observers\": " << b.observers
         << ", \"undetected\": " << b.undetected
         << ", \"latency_mean_ms\": " << b.latency_mean_ms
         << ", \"pacing_mean_ms\": " << b.pacing_mean_ms
         << ", \"resend_wait_mean_ms\": " << b.resend_wait_mean_ms
         << ", \"wire_mean_ms\": " << b.wire_mean_ms << "}";
      first_crash = false;
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
  os.flush();
  if (!os) {
    std::cerr << "exp_live: short write to " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "LIVE: multi-process loopback UDP sweep with SIGKILL crash injection");
  args.flag("sizes", "8,32,64", "comma-separated process counts")
      .flag("seeds", "1", "seeds per configuration (crash-plan draws)")
      .flag("run", "10", "wall-clock seconds per configuration")
      .flag("period", "100", "query pacing Delta (ms)")
      .flag("crashes", "0", "SIGKILLs per run (0 = f/2, at least 1)")
      .flag("restart", "false", "restart each victim ~2s after its kill")
      .flag("mode", "both", "query encoding: delta, full, or both")
      .flag("reliable", "false", "stack ReliableDatagram under the codec")
      .flag("base-port", "41000", "first UDP port (configs stride upward)")
      .flag("node-bin", "", "mmrfd-node path (empty = auto-discover)")
      .flag("report-dir", "", "node report directory (empty = <out>.reports)")
      .flag("flush-ms", "200", "node report snapshot interval (ms)")
      .flag("out", "BENCH_live.json", "JSON output path")
      .flag("csv", "false", "emit CSV instead of an aligned table")
      .flag("trace", "true",
            "harvest flight rings and attribute detection latency "
            "(pacing/resend-wait/wire) from the assembled cross-node trace");
  if (!args.parse(argc, argv)) return 0;

  std::vector<std::uint32_t> sizes;
  {
    const std::string s = args.get("sizes");
    for (std::size_t pos = 0; pos < s.size();) {
      const auto comma = s.find(',', pos);
      const std::string tok = s.substr(pos, comma - pos);
      if (tok.empty() ||
          tok.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "exp_live: bad --sizes entry '" << tok << "'\n";
        return 1;
      }
      unsigned long value = 0;
      try {
        value = std::stoul(tok);
      } catch (const std::exception&) {  // out-of-range
        std::cerr << "exp_live: bad --sizes entry '" << tok << "'\n";
        return 1;
      }
      // These are real OS processes: cap where a workstation stops being a
      // sane host for the experiment (file descriptors, scheduler load).
      if (value < 2 || value > 512) {
        std::cerr << "exp_live: --sizes entries must be in [2, 512] (got "
                  << tok << ")\n";
        return 1;
      }
      sizes.push_back(static_cast<std::uint32_t>(value));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (sizes.empty()) {
      std::cerr << "exp_live: --sizes must name at least one size\n";
      return 1;
    }
  }
  const std::string mode = args.get("mode");
  if (mode != "delta" && mode != "full" && mode != "both") {
    std::cerr << "exp_live: --mode must be delta, full or both (got '" << mode
              << "')\n";
    return 1;
  }
  const double run_s = static_cast<double>(args.get_int("run"));
  if (run_s < 2) {
    std::cerr << "exp_live: --run must be >= 2 seconds\n";
    return 1;
  }
  const bool restart = args.get_bool("restart");
  const bool reliable = args.get_bool("reliable");
  const std::string report_root = args.get("report-dir").empty()
                                      ? args.get("out") + ".reports"
                                      : args.get("report-dir");

  std::cout << "# LIVE: real-process loopback sweep  (f = n/4, "
            << (restart ? "crash+restart" : "crash-stop") << ", run "
            << run_s << "s, mode " << mode << ")\n\n";

  std::vector<LiveConfig> configs;
  {
    auto port = static_cast<std::uint32_t>(args.get_int("base-port"));
    for (const std::uint32_t n : sizes) {
      for (std::uint64_t seed = 1;
           seed <= static_cast<std::uint64_t>(args.get_int("seeds")); ++seed) {
        // Every run gets a fresh port range: nothing to collide with even
        // if a straggler from the previous config lingers for a moment.
        if (mode != "delta") {
          configs.push_back({n, seed, false, static_cast<std::uint16_t>(port)});
          port += n + 32;
        }
        if (mode != "full") {
          configs.push_back({n, seed, true, static_cast<std::uint16_t>(port)});
          port += n + 32;
        }
        if (port > 60000) port = static_cast<std::uint32_t>(args.get_int("base-port"));
      }
    }
  }

  std::vector<LiveResult> results;
  for (const LiveConfig& c : configs) {
    const std::uint32_t f = (c.n + 3) / 4;
    auto crashes = static_cast<std::size_t>(args.get_int("crashes"));
    if (crashes == 0) crashes = std::max<std::size_t>(1, f / 2);
    crashes = std::min<std::size_t>(crashes, f);

    // Kills land in the [30%, 60%] window of the run — late enough for the
    // cluster to reach steady state, early enough to observe detection.
    const auto plan = runtime::CrashPlan::uniform(
        crashes, c.n, from_seconds(run_s * 0.3), from_seconds(run_s * 0.6),
        c.seed);
    std::vector<live::CrashEvent> schedule;
    std::size_t restarts = 0;
    for (const auto& entry : plan.entries) {
      live::CrashEvent ev;
      ev.victim = entry.victim;
      ev.at = entry.when;
      if (restart) {
        ev.restart_at = entry.when + from_seconds(2.0);
        ++restarts;
      }
      schedule.push_back(ev);
    }

    live::SupervisorConfig scfg;
    scfg.n = c.n;
    scfg.f = f;
    scfg.base_port = c.base_port;
    scfg.pacing = from_millis(static_cast<double>(args.get_int("period")));
    scfg.delta = c.delta;
    scfg.reliable = reliable;
    scfg.flush = from_millis(static_cast<double>(args.get_int("flush-ms")));
    scfg.trace = args.get_bool("trace");
    // The causal kinds cost O(n) records per round, so a fixed-size ring
    // wraps past early crashes at n=64 and their suspect_add events vanish
    // before the end-of-run harvest. Scale the ring so it spans the whole
    // sweep: ~2n records per round per node, `run_s / pacing` rounds.
    scfg.trace_capacity =
        std::max<std::uint32_t>(16384, c.n * 1024);
    scfg.node_binary = args.get("node-bin");
    scfg.report_dir = report_root + "/n" + std::to_string(c.n) + "_s" +
                      std::to_string(c.seed) +
                      (c.delta ? "_delta" : "_full");

    std::cerr << "[exp_live] n=" << c.n << " seed=" << c.seed
              << (c.delta ? " delta" : " full") << " — " << c.n
              << " processes, " << crashes << " kill(s), " << run_s
              << "s...\n";
    live::LiveRunResult run;
    try {
      live::Supervisor supervisor(scfg);
      run = supervisor.run(schedule, from_seconds(run_s));
    } catch (const std::exception& e) {
      std::cerr << "exp_live: n=" << c.n << " run failed: " << e.what()
                << "\n";
      return 1;
    }

    LiveResult r;
    r.n = c.n;
    r.f = f;
    r.seed = c.seed;
    r.delta = c.delta;
    r.reliable = reliable;
    r.run_s = run_s;
    r.crashes = crashes;
    r.restarts = restarts;
    r.strong_completeness = run.strong_completeness;
    if (!run.detection_latencies.empty()) {
      r.detection_mean_s = run.detection_latencies.mean();
      r.detection_p50_s = run.detection_latencies.percentile(50.0);
      r.detection_p99_s = run.detection_latencies.percentile(99.0);
      r.detection_max_s = run.detection_latencies.max();
    }
    if (const obs::HistogramSnapshot* h =
            run.metrics.find_histogram("rt.round_rtt_ns")) {
      r.round_rtt_p50_ms = h->percentile(0.50) / 1e6;
      r.round_rtt_p99_ms = h->percentile(0.99) / 1e6;
    }
    r.datagrams_sent = run.datagrams_sent;
    r.wire_bytes_sent = run.wire_bytes_sent;
    r.wire_bytes_per_query = run.wire_bytes_per_query();
    r.false_suspicions = run.false_suspicions;
    r.rounds = run.rounds;
    r.full_queries = run.full_queries_sent;
    r.delta_queries = run.delta_queries_sent;
    r.need_full_sent = run.need_full_sent;
    r.need_full_received = run.need_full_received;
    r.bytes_per_query = run.bytes_per_query();
    r.datagrams_received = run.datagrams_received;
    r.truncated = run.truncated;
    r.recv_errors = run.recv_errors;
    r.malformed = run.malformed;
    r.unexpected_exits = run.unexpected_exits;
    r.missing_reports = run.missing_reports;
    if (run.trace) {
      r.trace_causal_violations = run.trace->causal_violations;
      double pacing_sum = 0, resend_sum = 0, wire_sum = 0;
      std::size_t observers_total = 0;
      for (const obs::CrashTimeline& ct : run.trace->crashes) {
        LiveResult::CrashBreakdown b;
        b.victim = ct.victim;
        b.observers = ct.observers.size();
        b.undetected = ct.undetected;
        double lat = 0, pace = 0, resend = 0, wire = 0;
        for (const obs::ObserverBreakdown& ob : ct.observers) {
          lat += static_cast<double>(ob.latency_ns);
          pace += static_cast<double>(ob.pacing_ns);
          resend += static_cast<double>(ob.resend_wait_ns);
          wire += static_cast<double>(ob.wire_ns);
        }
        if (!ct.observers.empty()) {
          const auto k = static_cast<double>(ct.observers.size());
          b.latency_mean_ms = lat / k / 1e6;
          b.pacing_mean_ms = pace / k / 1e6;
          b.resend_wait_mean_ms = resend / k / 1e6;
          b.wire_mean_ms = wire / k / 1e6;
        }
        pacing_sum += pace;
        resend_sum += resend;
        wire_sum += wire;
        observers_total += ct.observers.size();
        r.breakdowns.push_back(b);
      }
      if (observers_total > 0) {
        const auto k = static_cast<double>(observers_total);
        r.pacing_mean_ms = pacing_sum / k / 1e6;
        r.resend_wait_mean_ms = resend_sum / k / 1e6;
        r.wire_mean_ms = wire_sum / k / 1e6;
      }
    }
    results.push_back(r);

    std::cerr << "[exp_live]   " << run.rounds << " rounds total, "
              << run.detection_latencies.count() << " detections, complete="
              << (run.strong_completeness ? "yes" : "no") << "\n";
  }

  Table table({"n", "f", "seed", "delta", "kills", "det_mean_s", "det_p99_s",
               "pace_ms", "resend_ms", "wire_ms", "rtt_p50_ms", "complete",
               "false_susp", "B_per_query", "wire_B_per_q", "delta_q",
               "full_q", "need_full", "trunc", "errs"});
  for (const auto& r : results) {
    table.add_row({Table::num(std::uint64_t{r.n}),
                   Table::num(std::uint64_t{r.f}), Table::num(r.seed),
                   r.delta ? "yes" : "no",
                   Table::num(std::uint64_t{r.crashes}),
                   Table::num(r.detection_mean_s),
                   Table::num(r.detection_p99_s),
                   Table::num(r.pacing_mean_ms),
                   Table::num(r.resend_wait_mean_ms),
                   Table::num(r.wire_mean_ms),
                   Table::num(r.round_rtt_p50_ms),
                   r.strong_completeness ? "yes" : "no",
                   Table::num(std::uint64_t{r.false_suspicions}),
                   Table::num(r.bytes_per_query),
                   Table::num(r.wire_bytes_per_query),
                   Table::num(r.delta_queries),
                   Table::num(r.full_queries),
                   Table::num(r.need_full_sent + r.need_full_received),
                   Table::num(r.truncated), Table::num(r.recv_errors)});
  }
  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return write_json(results, args.get("out")) ? 0 : 1;
}
