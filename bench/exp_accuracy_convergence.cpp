// E8 — Accuracy convergence: how long after the network stabilizes does the
// detector stop wrongly suspecting anyone?
//
// The run starts inside a network-wide delay storm (everything `factor`x
// slower) that ends at `calm_at`; MP can only hold after that. We measure
// the lag between calm_at and the last wrongful-suspicion repair — the
// constructive content of "eventual" weak accuracy.
//
// Expected shape: the timer-based detectors recover within ~Theta once real
// heartbeats flow again. The async detector needs a few Delta-long query
// rounds: stale tagged suspicions keep circulating until each victim's
// mistake floods, so its *clean* lag is a small multiple of Delta and can
// exceed a well-tuned Theta — mirroring the paper's mobility figure, where
// false suspicions transiently rise after reconnection before the mistakes
// propagate. The async detector's win is on the way *into* the storm (far
// fewer wrongful suspicions; exactly zero under a uniform slowdown), not on
// raw post-storm repair speed.
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

int main(int argc, char** argv) {
  ArgParser args("E8: accuracy convergence lag after a network-wide storm");
  args.flag("n", "20", "system size")
      .flag("f", "5", "fault tolerance")
      .flag("seeds", "5", "seeds per detector")
      .flag("calm_at", "20", "storm end (s)")
      .flag("factor", "5000", "storm delay multiplier (storm delays must "
                              "dwarf every timeout for the contrast to show)")
      .flag("horizon", "80", "simulated seconds")
      .flag("period", "1000", "Delta / heartbeat period (ms)")
      .flag("timeout", "2000", "baseline Theta (ms)")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const double calm_at = static_cast<double>(args.get_int("calm_at"));
  std::cout << "# E8: time from network calm (t = " << calm_at
            << " s) to last wrongful-suspicion repair\n\n";

  Table table({"detector", "runs_clean", "mean_clean_lag_s",
               "max_clean_lag_s", "mean_weak_lag_s", "false_susp_total"});
  for (const std::string detector : {"mmr", "heartbeat", "phi", "adaptive"}) {
    SampleSet clean_lags;
    SampleSet weak_lags;
    std::size_t clean = 0;
    std::size_t fs_total = 0;
    const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds"));
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      bench::Workload w;
      w.n = static_cast<std::uint32_t>(args.get_int("n"));
      w.f = static_cast<std::uint32_t>(args.get_int("f"));
      w.seed = seed;
      w.crashes = 0;
      w.horizon = from_seconds(static_cast<double>(args.get_int("horizon")));
      // Randomized delays: under a *constant*-delay storm the async detector
      // sees zero false suspicions (a uniform slowdown just stretches its
      // rounds), which is striking but degenerate for a convergence plot.
      w.preset = net::DelayPreset::kExponential;
      w.period = from_millis(static_cast<double>(args.get_int("period")));
      w.timeout = from_millis(static_cast<double>(args.get_int("timeout")));
      runtime::SpikeSpec storm;
      storm.start = kTimeZero;
      storm.end = from_seconds(calm_at);
      storm.factor = static_cast<double>(args.get_int("factor"));
      w.spike = storm;  // affects everyone: affected empty
      const auto m = bench::run_detector(detector, w);
      fs_total += m.false_suspicions;
      if (m.clean_at) {
        ++clean;
        clean_lags.add(std::max(0.0, *m.clean_at - calm_at));
      }
      if (m.accuracy_stable_at) {
        weak_lags.add(std::max(0.0, *m.accuracy_stable_at - calm_at));
      }
    }
    table.add_row({detector,
                   Table::num(std::uint64_t{clean}) + "/" +
                       Table::num(std::uint64_t{seeds}),
                   Table::num(clean_lags.mean()), Table::num(clean_lags.max()),
                   Table::num(weak_lags.mean()),
                   Table::num(std::uint64_t{fs_total})});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
