// E5 — Sensitivity of the behavioral property MP (and of timeout choices)
// to the delay distribution.
//
// The paper's central trade: instead of assuming timing bounds, the async
// detector assumes a *pattern* — some process is a winning responder for
// f+1 processes, eventually. This experiment sweeps delay distributions and
// the engineered fast-set bias and reports (a) how often MP actually holds
// (checker verdict over seeds), (b) resulting accuracy, and — for contrast —
// (c) the false-suspicion count of a fixed-timeout detector whose Theta was
// tuned for the *constant* distribution and never re-tuned.
//
// Expected shape: with a (bidirectional) fast-set bias MP holds on every
// distribution — the pattern is engineerable — and weak accuracy always
// stabilizes (the witness is eventually trusted by everyone). Without the
// bias MP only survives on near-deterministic delays: under iid randomness
// *no* process wins every suffix, which is exactly the paper's point that
// the assumption is behavioral, not free. Two honest footnotes the table
// also shows: (a) non-witness processes still churn suspicions under heavy
// tails (flooding amplifies every local miss n-fold) even while weak
// accuracy holds via the witness; (b) a generously over-provisioned Theta
// (here 30x the mean delay) keeps the heartbeat quiet on these
// distributions — its cost is detection latency (E1), not false alarms.
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

int main(int argc, char** argv) {
  ArgParser args("E5: MP verdicts and accuracy vs delay distribution");
  args.flag("n", "20", "system size")
      .flag("f", "5", "fault tolerance")
      .flag("seeds", "5", "seeds per configuration")
      .flag("horizon", "60", "simulated seconds")
      .flag("mean_delay", "20", "mean one-way delay (ms)")
      .flag("period", "200", "Delta / heartbeat period (ms)")
      .flag("timeout", "600", "untuned baseline Theta (ms)")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds"));
  std::cout << "# E5: does MP hold, and what does accuracy cost, per delay "
               "distribution?\n"
            << "# (n = " << args.get_int("n") << ", f = " << args.get_int("f")
            << ", mean delay " << args.get_int("mean_delay") << " ms, "
            << seeds << " seeds; baseline Theta fixed at "
            << args.get_int("timeout") << " ms)\n\n";

  Table table({"delays", "fast_bias", "mp_holds", "mp_perpetual",
               "async_false_susp", "async_stable", "hb_false_susp"});

  for (auto preset :
       {net::DelayPreset::kConstant, net::DelayPreset::kUniform,
        net::DelayPreset::kExponential, net::DelayPreset::kLogNormal,
        net::DelayPreset::kPareto}) {
    for (const bool bias : {true, false}) {
      std::size_t mp_holds = 0;
      std::size_t mp_perpetual = 0;
      std::size_t async_fs = 0;
      std::size_t stable_runs = 0;
      std::size_t hb_fs = 0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        bench::Workload w;
        w.n = static_cast<std::uint32_t>(args.get_int("n"));
        w.f = static_cast<std::uint32_t>(args.get_int("f"));
        w.seed = seed;
        w.crashes = 0;
        w.horizon = from_seconds(static_cast<double>(args.get_int("horizon")));
        w.preset = preset;
        w.mean_delay =
            from_millis(static_cast<double>(args.get_int("mean_delay")));
        w.period = from_millis(static_cast<double>(args.get_int("period")));
        w.timeout = from_millis(static_cast<double>(args.get_int("timeout")));
        if (bias) {
          w.fast_set = {ProcessId{0}};
          w.fast_factor = 0.05;
        }
        const auto m = bench::run_mmr(w);
        if (m.mp && m.mp->holds) ++mp_holds;
        if (m.mp && m.mp->holds_perpetually) ++mp_perpetual;
        async_fs += m.false_suspicions;
        if (m.accuracy_stable_at) ++stable_runs;
        const auto h = bench::run_heartbeat(w);
        hb_fs += h.false_suspicions;
      }
      table.add_row({net::preset_name(preset), bias ? "yes" : "no",
                     Table::num(std::uint64_t{mp_holds}) + "/" +
                         Table::num(std::uint64_t{seeds}),
                     Table::num(std::uint64_t{mp_perpetual}) + "/" +
                         Table::num(std::uint64_t{seeds}),
                     Table::num(std::uint64_t{async_fs}),
                     Table::num(std::uint64_t{stable_runs}) + "/" +
                         Table::num(std::uint64_t{seeds}),
                     Table::num(std::uint64_t{hb_fs})});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
