// Micro-benchmarks of the simulation substrate: event throughput bounds how
// large an experiment the harness can run per wall-clock second.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "sim/simulation.h"

using namespace mmrfd;

namespace {

void BM_ScheduleFire(benchmark::State& state) {
  // Steady-state schedule+fire pairs through the heap.
  sim::Simulation sim;
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule(from_millis(1), [] {});
    }
    sim.run_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleFire)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ScheduleCancel(benchmark::State& state) {
  // The baseline detectors' timer pattern: arm, then cancel on heartbeat.
  sim::Simulation sim;
  for (auto _ : state) {
    const auto id = sim.schedule(from_seconds(3600), [] {});
    sim.cancel(id);
    if (sim.events_pending() > 100000) sim.run_all();  // drain tombstones
  }
  sim.run_all();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScheduleCancel);

void BM_NetworkDelivery(benchmark::State& state) {
  // Full path: send -> delay sample -> heap -> handler.
  using Msg = std::uint64_t;
  sim::Simulation sim;
  net::Network<Msg> network(sim, net::Topology::full(2),
                            std::make_unique<net::ExponentialDelay>(
                                from_millis(1), from_millis(1)),
                            1);
  std::uint64_t sink = 0;
  network.set_handler(ProcessId{1},
                      [&](ProcessId, const Msg& m) { sink += m; });
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      network.send(ProcessId{0}, ProcessId{1}, i);
    }
    sim.run_all();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_NetworkDelivery)->Arg(256)->Arg(4096);

void BM_Broadcast(benchmark::State& state) {
  // The per-round hot path at scale: one n-node broadcast of a vector-heavy
  // message. The shared-payload fan-out copies the message once, not n-1
  // times, so per-item cost should stay flat as the payload grows.
  struct FatMsg {
    std::vector<std::uint64_t> suspected;
    std::vector<std::uint64_t> mistakes;
  };
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::Simulation sim;
  net::Network<FatMsg> network(sim, net::Topology::full(n),
                               std::make_unique<net::ExponentialDelay>(
                                   from_millis(1), from_millis(1)),
                               1);
  std::uint64_t sink = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    network.set_handler(ProcessId{i}, [&](ProcessId, const FatMsg& m) {
      sink += m.suspected.size();
    });
  }
  FatMsg msg;
  msg.suspected.assign(32, 7);
  msg.mistakes.assign(32, 9);
  for (auto _ : state) {
    network.broadcast(ProcessId{0}, msg);
    sim.run_all();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (n - 1));
}
BENCHMARK(BM_Broadcast)->Arg(16)->Arg(100)->Arg(1000);

void BM_RngExponential(benchmark::State& state) {
  Xoshiro256 rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.exponential(1.0);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngExponential);

void BM_RngNextBelow(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng.next_below(12345);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngNextBelow);

}  // namespace

BENCHMARK_MAIN();
