// E11 — Replicated-log (state-machine replication) end-to-end cost.
//
// Every replica submits a batch of commands; one replica (a frequent
// coordinator) crashes mid-run. We measure the time until every command
// from correct replicas is decided at every correct replica, the number of
// log slots consumed, and the no-op overhead — per failure detector.
//
// Expected shape: completion time ≈ batch drain time + (detector's
// suspicion latency whenever a crashed coordinator blocks a slot). As in
// E6, the async detector's latency advantage over padded timeouts
// multiplies: the crashed replica coordinates every n-th slot, so every
// n-th slot pays the detection latency until the crash is known.
#include <iostream>
#include <set>

#include "baselines/heartbeat.h"
#include "common/argparse.h"
#include "common/stats.h"
#include "consensus/replicated_log.h"
#include "metrics/table.h"
#include "net/delay_model.h"
#include "runtime/mmr_host.h"

using namespace mmrfd;
using namespace mmrfd::consensus;
using metrics::Table;

namespace {

class OracleFd final : public core::FailureDetector {
 public:
  explicit OracleFd(const std::vector<bool>& crashed) : crashed_(crashed) {}
  std::vector<ProcessId> suspected() const override {
    std::vector<ProcessId> out;
    for (std::uint32_t i = 0; i < crashed_.size(); ++i) {
      if (crashed_[i]) out.push_back(ProcessId{i});
    }
    return out;
  }
  bool is_suspected(ProcessId id) const override {
    return crashed_.at(id.value);
  }

 private:
  const std::vector<bool>& crashed_;
};

struct Outcome {
  bool done{false};
  double finish_s{0.0};
  std::uint64_t slots{0};
  double noop_fraction{0.0};
};

Outcome run_one(const std::string& detector, std::uint32_t n,
                std::uint32_t cmds_per_replica, std::uint64_t seed,
                Duration horizon) {
  sim::Simulation sim;
  std::vector<bool> crashed(n, false);

  // Failure-detector substrate.
  std::vector<std::unique_ptr<OracleFd>> oracles;
  std::unique_ptr<runtime::MmrNetwork> fd_net;
  std::vector<std::unique_ptr<runtime::MmrHost>> mmr_hosts;
  std::unique_ptr<baselines::HeartbeatNetwork> hb_net;
  std::vector<std::unique_ptr<baselines::HeartbeatDetector>> hb_detectors;
  auto fd_for = [&](ProcessId id) -> const core::FailureDetector& {
    if (detector == "perfect") return *oracles[id.value];
    if (detector == "mmr") return mmr_hosts[id.value]->detector();
    return *hb_detectors[id.value];
  };
  if (detector == "perfect") {
    for (std::uint32_t i = 0; i < n; ++i) {
      oracles.push_back(std::make_unique<OracleFd>(crashed));
    }
  } else if (detector == "mmr") {
    fd_net = std::make_unique<runtime::MmrNetwork>(
        sim, net::Topology::full(n),
        net::make_preset(net::DelayPreset::kExponential, from_millis(2)),
        derive_seed(seed, "e11.fd"));
    for (std::uint32_t i = 0; i < n; ++i) {
      runtime::MmrHostConfig hc;
      hc.detector.self = ProcessId{i};
      hc.detector.n = n;
      hc.detector.f = n / 3;
      hc.pacing = from_millis(50);
      hc.initial_delay = from_millis(3 * i);
      mmr_hosts.push_back(
          std::make_unique<runtime::MmrHost>(sim, *fd_net, hc));
    }
  } else {
    hb_net = std::make_unique<baselines::HeartbeatNetwork>(
        sim, net::Topology::full(n),
        net::make_preset(net::DelayPreset::kExponential, from_millis(2)),
        derive_seed(seed, "e11.hb"));
    for (std::uint32_t i = 0; i < n; ++i) {
      baselines::HeartbeatConfig hc;
      hc.self = ProcessId{i};
      hc.n = n;
      hc.period = from_millis(50);
      hc.timeout = from_millis(200);
      hc.initial_delay = from_millis(3 * i);
      hb_detectors.push_back(std::make_unique<baselines::HeartbeatDetector>(
          sim, *hb_net, hc));
    }
  }

  LogNetwork log_net(
      sim, net::Topology::full(n),
      net::make_preset(net::DelayPreset::kExponential, from_millis(2)),
      derive_seed(seed, "e11.log"));
  std::vector<std::unique_ptr<ReplicatedLog>> replicas;
  for (std::uint32_t i = 0; i < n; ++i) {
    ReplicatedLogConfig cfg;
    cfg.self = ProcessId{i};
    cfg.n = n;
    replicas.push_back(std::make_unique<ReplicatedLog>(
        sim, log_net, cfg, fd_for(ProcessId{i})));
  }

  for (auto& h : mmr_hosts) h->start();
  for (auto& d : hb_detectors) d->start();
  for (auto& r : replicas) r->start();

  // Workload: every replica submits its batch immediately; p0 crashes at
  // 200 ms (it coordinates slots 1, n+1, 2n+1, ... — a worst-ish case).
  std::set<Value> expected;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t k = 0; k < cmds_per_replica; ++k) {
      const Value cmd = make_command(ProcessId{r}, k);
      replicas[r]->submit(cmd);
      if (r != 0) expected.insert(cmd);  // p0's unchosen commands may die
    }
  }
  sim.schedule_at(from_millis(200), [&] {
    crashed[0] = true;
    replicas[0]->crash();
    if (!mmr_hosts.empty()) mmr_hosts[0]->crash();
    if (!hb_detectors.empty()) hb_detectors[0]->crash();
  });

  // Run until every correct replica's log covers `expected`.
  auto covered = [&] {
    for (std::uint32_t i = 1; i < n; ++i) {
      std::set<Value> got;
      for (Value v : replicas[i]->log()) {
        if (v != kNoop) got.insert(v);
      }
      for (Value v : expected) {
        if (got.find(v) == got.end()) return false;
      }
    }
    return true;
  };
  Outcome out;
  while (sim.now() < horizon) {
    sim.run_for(from_millis(50));
    if (covered()) {
      out.done = true;
      break;
    }
  }
  out.finish_s = to_seconds(sim.now());
  out.slots = replicas[1]->log().size();
  std::uint64_t noops = 0;
  for (Value v : replicas[1]->log()) {
    if (v == kNoop) ++noops;
  }
  out.noop_fraction = out.slots == 0 ? 0.0
                                     : static_cast<double>(noops) /
                                           static_cast<double>(out.slots);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("E11: replicated-log completion time per failure detector");
  args.flag("n", "5", "replicas")
      .flag("cmds", "10", "commands per replica")
      .flag("seeds", "3", "seeds per cell")
      .flag("horizon", "120", "simulated seconds cap")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(args.get_int("n"));
  const auto cmds = static_cast<std::uint32_t>(args.get_int("cmds"));
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds"));
  const auto horizon =
      from_seconds(static_cast<double>(args.get_int("horizon")));

  std::cout << "# E11: time to replicate " << cmds << " cmds x " << n
            << " replicas with p0 (a rotating coordinator) crashing at "
               "200 ms\n\n";

  Table table({"detector", "done", "mean_finish_s", "max_finish_s",
               "mean_slots", "noop_frac"});
  for (const std::string detector : {"perfect", "mmr", "heartbeat"}) {
    SampleSet finish;
    SampleSet slots;
    SampleSet noop;
    std::size_t done = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const auto out = run_one(detector, n, cmds, seed, horizon);
      if (out.done) {
        ++done;
        finish.add(out.finish_s);
        slots.add(static_cast<double>(out.slots));
        noop.add(out.noop_fraction);
      }
    }
    table.add_row({detector,
                   Table::num(std::uint64_t{done}) + "/" +
                       Table::num(std::uint64_t{seeds}),
                   Table::num(finish.mean()), Table::num(finish.max()),
                   Table::num(slots.mean(), 0), Table::num(noop.mean(), 2)});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
