// E2 — Detection time vs the fault-tolerance parameter f (fixed n).
//
// f shapes the protocol directly: a query terminates on n - f responses, so
// larger f means earlier termination (fewer responders awaited) and *faster*
// suspicion of silent processes — but also fewer witnesses per round. The
// timer-based baseline has no f dependence at all (flat reference line).
//
// Expected shape: async detection latency decreases gently as f grows
// (quorum shrinks => a round is not held back by stragglers), while the
// heartbeat line stays flat at ~Theta.
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

int main(int argc, char** argv) {
  ArgParser args("E2: detection time vs f (n fixed)");
  args.flag("n", "60", "system size")
      .flag("seeds", "3", "seeds per configuration")
      .flag("crashes", "5", "crashes per run")
      .flag("horizon", "60", "simulated seconds per run")
      .flag("period", "1000", "Delta / heartbeat period (ms)")
      .flag("timeout", "2000", "baseline timeout Theta (ms)")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(args.get_int("n"));
  std::cout << "# E2: failure detection time vs f  (n = " << n
            << ", exponential delays)\n\n";

  Table table({"f", "quorum", "detector", "mean_s", "max_s", "false_susp"});
  const std::vector<std::uint32_t> fs = {1, 5, 10, 15, 20, 25, n / 2 - 1};

  for (const std::uint32_t f : fs) {
    for (const std::string detector : {"mmr", "heartbeat"}) {
      SampleSet latencies;
      std::size_t false_susp = 0;
      for (std::uint64_t seed = 1;
           seed <= static_cast<std::uint64_t>(args.get_int("seeds")); ++seed) {
        bench::Workload w;
        w.n = n;
        w.f = f;
        w.seed = seed;
        w.crashes =
            std::min<std::size_t>(static_cast<std::size_t>(args.get_int("crashes")), f);
        w.horizon = from_seconds(static_cast<double>(args.get_int("horizon")));
        w.crash_window_end = w.horizon - from_seconds(20);
        w.period = from_millis(static_cast<double>(args.get_int("period")));
        w.timeout = from_millis(static_cast<double>(args.get_int("timeout")));
        const auto m = bench::run_detector(detector, w);
        bench::append_samples(latencies, m.detection_latencies);
        false_susp += m.false_suspicions;
      }
      table.add_row({Table::num(std::uint64_t{f}),
                     Table::num(std::uint64_t{n - f}), detector,
                     Table::num(latencies.mean()),
                     Table::num(latencies.max()),
                     Table::num(std::uint64_t{false_susp})});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
