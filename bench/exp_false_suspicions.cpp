// E3 — False-suspicion dynamics under a transient delay spike.
//
// One process's links slow down by `factor` for `spike_len` seconds (a
// congested region / overloaded host — the failure-free disturbance every
// timeout-based detector hates). The table is a time series: concurrently
// active wrongful (observer, subject) suspicions, sampled once a second.
//
// Expected shape: all detectors false-suspect the slowed process during the
// spike (its responses/heartbeats stop landing in time). Afterwards the
// async detector repairs via the mistake mechanism within ~Delta + delivery
// time and returns to exactly zero; fixed-timeout heartbeat also recovers
// (bounded by Theta) but shows a taller plateau; an aggressive Theta would
// never recover on heavy-tailed links (see E5).
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

namespace {

// Value of a step series at time t (last step at or before t).
std::int64_t series_at(const std::vector<metrics::FalseSuspicionPoint>& s,
                       TimePoint t) {
  std::int64_t v = 0;
  for (const auto& p : s) {
    if (p.when > t) break;
    v = p.active;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("E3: active false suspicions over time under a delay spike");
  args.flag("n", "20", "system size")
      .flag("f", "5", "fault tolerance")
      .flag("seed", "1", "workload seed")
      .flag("spike_at", "20", "spike start (s)")
      .flag("spike_len", "10", "spike duration (s)")
      .flag("factor", "5000", "delay multiplier during the spike (large "
                              "enough that the node is effectively absent, "
                              "like the paper's moving node)")
      .flag("horizon", "60", "simulated seconds")
      .flag("period", "1000", "Delta / heartbeat period (ms)")
      .flag("timeout", "2000", "baseline timeout Theta (ms)")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const double spike_at = static_cast<double>(args.get_int("spike_at"));
  const double spike_len = static_cast<double>(args.get_int("spike_len"));
  const auto horizon = static_cast<double>(args.get_int("horizon"));

  std::cout << "# E3: false suspicions over time (p" << args.get_int("n") - 1
            << "'s links x" << args.get_int("factor") << " slower during ["
            << spike_at << "s, " << spike_at + spike_len << "s))\n\n";

  auto make_workload = [&] {
    bench::Workload w;
    w.n = static_cast<std::uint32_t>(args.get_int("n"));
    w.f = static_cast<std::uint32_t>(args.get_int("f"));
    w.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    w.crashes = 0;
    w.horizon = from_seconds(horizon);
    w.preset = net::DelayPreset::kConstant;
    w.period = from_millis(static_cast<double>(args.get_int("period")));
    w.timeout = from_millis(static_cast<double>(args.get_int("timeout")));
    runtime::SpikeSpec spike;
    spike.start = from_seconds(spike_at);
    spike.end = from_seconds(spike_at + spike_len);
    spike.factor = static_cast<double>(args.get_int("factor"));
    spike.affected = {ProcessId{w.n - 1}};
    w.spike = spike;
    return w;
  };

  const auto mmr = bench::run_mmr(make_workload());
  const auto hb = bench::run_heartbeat(make_workload());
  const auto phi = bench::run_phi(make_workload());

  Table table({"t_s", "mmr_active", "heartbeat_active", "phi_active"});
  for (double t = 0.0; t <= horizon; t += 1.0) {
    table.add_row({Table::num(t, 0),
                   Table::num(series_at(mmr.false_series, from_seconds(t))),
                   Table::num(series_at(hb.false_series, from_seconds(t))),
                   Table::num(series_at(phi.false_series, from_seconds(t)))});
  }
  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::cout << "\nrepair summary (wrongful suspicion durations, s):\n";
  Table rep({"detector", "events", "repaired", "mean_repair_s",
             "max_repair_s"});
  auto add = [&](const std::string& name, const bench::RunMetrics& m) {
    rep.add_row({name, Table::num(std::uint64_t{m.false_suspicions}),
                 Table::num(std::uint64_t{m.mistake_durations.count()}),
                 Table::num(m.mistake_durations.mean()),
                 Table::num(m.mistake_durations.max())});
  };
  add("mmr", mmr);
  add("heartbeat", hb);
  add("phi", phi);
  rep.print(std::cout);
  return 0;
}
