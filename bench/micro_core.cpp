// Micro-benchmarks of the protocol core's hot paths: per-event costs of the
// sans-I/O state machine (what a deployment pays per received message).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/detector_core.h"

using namespace mmrfd;
using core::DetectorConfig;
using core::DetectorCore;
using core::QueryMessage;
using core::ResponseMessage;

namespace {

DetectorConfig cfg(std::uint32_t n, std::uint32_t f) {
  DetectorConfig c;
  c.self = ProcessId{0};
  c.n = n;
  c.f = f;
  return c;
}

QueryMessage query_with_entries(std::uint32_t n, std::size_t entries,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  QueryMessage q;
  q.seq = 1;
  for (std::size_t i = 0; i < entries; ++i) {
    const TaggedEntry e{
        ProcessId{static_cast<std::uint32_t>(1 + rng.next_below(n - 1))},
        rng.next_below(1000)};
    if (rng.bernoulli(0.5)) {
      q.push_suspected(e);
    } else {
      q.push_mistake(e);
    }
  }
  return q;
}

void BM_OnQueryMerge(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto entries = static_cast<std::size_t>(state.range(1));
  DetectorCore d(cfg(n, n / 4));
  const auto q = query_with_entries(n, entries, 42);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto copy = q;
    copy.seq = ++seq;
    benchmark::DoNotOptimize(d.on_query(ProcessId{1}, copy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OnQueryMerge)
    ->Args({16, 0})
    ->Args({16, 8})
    ->Args({64, 16})
    ->Args({256, 64})
    ->Args({1024, 256});

void BM_FullRound(benchmark::State& state) {
  // One complete query round at the issuer: start, n - f responses, finish.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  DetectorCore d(cfg(n, n / 4));
  for (auto _ : state) {
    const auto q = d.start_query();
    benchmark::DoNotOptimize(q);
    for (std::uint32_t i = 1; i < d.config().quorum(); ++i) {
      d.on_response(ProcessId{i}, ResponseMessage{q.seq});
    }
    d.finish_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullRound)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_StartQuerySnapshot(benchmark::State& state) {
  // Cost of snapshotting suspicion sets into a query, with a loaded state.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  DetectorCore d(cfg(n, 1));
  // Load ~n/2 suspicions via a merge.
  (void)d.on_query(ProcessId{1}, query_with_entries(n, n / 2, 7));
  for (auto _ : state) {
    auto q = d.start_query();
    benchmark::DoNotOptimize(q);
    for (std::uint32_t i = 1; i < d.config().quorum(); ++i) {
      d.on_response(ProcessId{i}, ResponseMessage{q.seq});
    }
    d.finish_round();
  }
}
BENCHMARK(BM_StartQuerySnapshot)->Arg(64)->Arg(512);

void BM_TaggedSetAdd(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  TaggedSet s;
  Xoshiro256 rng(3);
  for (std::uint32_t i = 0; i < size; ++i) s.add(ProcessId{i}, i);
  std::uint32_t i = 0;
  for (auto _ : state) {
    s.add(ProcessId{i % size}, i);
    ++i;
  }
}
BENCHMARK(BM_TaggedSetAdd)->Arg(16)->Arg(256)->Arg(4096);

void BM_TaggedSetLookup(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  TaggedSet s;
  for (std::uint32_t i = 0; i < size; ++i) s.add(ProcessId{2 * i}, i);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.tag_of(ProcessId{i % (2 * size)}));
    ++i;
  }
}
BENCHMARK(BM_TaggedSetLookup)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
