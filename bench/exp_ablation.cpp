// E7 — Ablations of the protocol's knobs (DESIGN.md design-choice index).
//
//   (a) winning quorum n - f + extra: waiting for more than n - f responses
//       trades detection latency for fewer false suspicions;
//   (b) pacing Delta: faster cadence = faster detection, more messages;
//   (c) accept_late_responses: the Section-6 improvement — counting
//       responses that arrive during the pacing window slashes false
//       suspicions at zero protocol cost.
//
// Expected shape: (a) latency grows with extra quorum, false suspicions
// fall; (b) detection ~ Delta + delay, messages ~ 1/Delta; (c) late-response
// acceptance strictly reduces false suspicions.
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

namespace {

bench::Workload base_workload(const ArgParser& args, std::uint64_t seed) {
  bench::Workload w;
  w.n = static_cast<std::uint32_t>(args.get_int("n"));
  w.f = static_cast<std::uint32_t>(args.get_int("f"));
  w.seed = seed;
  w.crashes = 3;
  w.horizon = from_seconds(static_cast<double>(args.get_int("horizon")));
  w.crash_window_end = w.horizon - from_seconds(20);
  w.preset = net::DelayPreset::kPareto;  // stressful tails
  w.mean_delay = from_millis(20);
  w.period = from_millis(500);
  return w;
}

struct Agg {
  SampleSet latency;
  std::size_t false_susp{0};
  std::uint64_t msgs{0};
  bool complete{true};
};

template <typename Mutator>
Agg sweep(const ArgParser& args, std::uint64_t seeds, Mutator mutate) {
  Agg a;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    auto w = base_workload(args, seed);
    mutate(w);
    const auto m = bench::run_mmr(w);
    bench::append_samples(a.latency, m.detection_latencies);
    a.false_susp += m.false_suspicions;
    a.msgs += m.messages_sent;
    a.complete = a.complete && m.strong_completeness;
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("E7: protocol ablations (quorum slack, pacing, late responses)");
  args.flag("n", "20", "system size")
      .flag("f", "5", "fault tolerance")
      .flag("seeds", "3", "seeds per cell")
      .flag("horizon", "60", "simulated seconds")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds"));
  std::cout << "# E7a: winning-quorum slack (wait for n - f + extra)\n\n";
  Table qa({"extra_quorum", "mean_detect_s", "max_detect_s", "false_susp",
            "complete"});
  for (const std::uint32_t extra : {0u, 1u, 2u, 4u}) {
    const auto a =
        sweep(args, seeds, [&](bench::Workload& w) { w.extra_quorum = extra; });
    qa.add_row({Table::num(std::uint64_t{extra}), Table::num(a.latency.mean()),
                Table::num(a.latency.max()),
                Table::num(std::uint64_t{a.false_susp}),
                a.complete ? "yes" : "NO"});
  }
  qa.print(std::cout);

  std::cout << "\n# E7b: pacing Delta\n\n";
  Table pa({"pacing_ms", "mean_detect_s", "false_susp", "msgs_total"});
  for (const int ms : {100, 250, 500, 1000, 2000}) {
    const auto a = sweep(args, seeds, [&](bench::Workload& w) {
      w.period = from_millis(ms);
    });
    pa.add_row({Table::num(std::int64_t{ms}), Table::num(a.latency.mean()),
                Table::num(std::uint64_t{a.false_susp}), Table::num(a.msgs)});
  }
  pa.print(std::cout);

  std::cout << "\n# E7c: late-response acceptance (the Section-6 tweak)\n\n";
  Table la({"accept_late", "mean_detect_s", "false_susp"});
  for (const bool accept : {true, false}) {
    const auto a = sweep(args, seeds, [&](bench::Workload& w) {
      w.accept_late_responses = accept;
    });
    la.add_row({accept ? "yes" : "no", Table::num(a.latency.mean()),
                Table::num(std::uint64_t{a.false_susp})});
  }
  la.print(std::cout);
  return 0;
}
