#include "exp_common.h"

#include <stdexcept>
#include <variant>

namespace mmrfd::bench {

namespace {

runtime::CrashPlan plan_for(const Workload& w) {
  if (w.crashes == 0) return runtime::CrashPlan::none();
  // The engineered-fast processes are the MP witnesses; crashing them is
  // legal but makes accuracy comparisons meaningless, so protect them.
  return runtime::CrashPlan::uniform(w.crashes, w.n, w.crash_window_start,
                                     w.crash_window_end, w.seed, w.fast_set);
}

std::unique_ptr<net::DelayModel> delays_for(const Workload& w,
                                            bool with_bias) {
  auto model = net::make_preset(w.preset, w.mean_delay);
  if (with_bias && !w.fast_set.empty()) {
    model = std::make_unique<net::FastSetDelay>(std::move(model), w.fast_set,
                                                w.fast_factor);
  }
  if (w.spike) {
    model = std::make_unique<net::SpikeDelay>(std::move(model),
                                              w.spike->start, w.spike->end,
                                              w.spike->factor,
                                              w.spike->affected);
  }
  return model;
}

Duration stagger(std::uint64_t seed, ProcessId id, Duration period) {
  Xoshiro256 rng(derive_seed(seed, "bench.stagger", id.value));
  return Duration(static_cast<Duration::rep>(
      rng.next_double() * static_cast<double>(period.count())));
}

}  // namespace

RunMetrics summarize(const metrics::EventLog& log, std::uint32_t n,
                     Duration horizon) {
  RunMetrics out;
  metrics::Analysis analysis(log, n, horizon);
  // One crash_summaries() pass feeds latencies, completeness and the worst
  // per-crash instant (each call re-derives detections from the log).
  const auto summaries = analysis.crash_summaries();
  out.strong_completeness = true;
  double worst = 0.0;
  for (const auto& s : summaries) {
    for (double lat : s.latencies.samples()) out.detection_latencies.add(lat);
    if (s.completeness_latency) {
      worst = std::max(worst, to_seconds(*s.completeness_latency));
    } else {
      out.strong_completeness = false;
    }
  }
  if (out.strong_completeness) out.completeness_latency = worst;
  const auto fs = analysis.false_suspicions();
  out.false_suspicions = fs.size();
  for (const auto& f : fs) {
    if (f.cleared_at) {
      out.mistake_durations.add(to_seconds(*f.cleared_at - f.suspected_at));
    }
  }
  out.false_series = analysis.false_suspicion_series();
  if (auto t = analysis.accuracy_stabilization()) {
    out.accuracy_stable_at = to_seconds(*t);
  }
  if (auto t = analysis.full_accuracy_stabilization()) {
    out.clean_at = to_seconds(*t);
  }
  return out;
}

RunMetrics summarize_rollup_metrics(const std::vector<metrics::PairRollup>& pairs,
                                    const std::vector<metrics::CrashRecord>& crashes,
                                    std::uint32_t n) {
  RunMetrics out;
  const metrics::RollupSummary s = metrics::summarize_rollup(pairs, crashes, n);
  out.detection_latencies = s.detection_latencies;
  out.completeness_latency = s.completeness_latency;
  out.strong_completeness = s.strong_completeness;
  out.false_suspicions = s.false_suspicions;
  out.clean_at = s.clean_at;
  return out;
}

RunMetrics run_mmr(const Workload& w) {
  runtime::MmrClusterConfig cfg;
  cfg.n = w.n;
  cfg.f = w.f;
  cfg.seed = w.seed;
  cfg.pacing = w.period;
  cfg.mean_delay = w.mean_delay;
  cfg.delay_preset = w.preset;
  cfg.fast_set = w.fast_set;
  cfg.fast_factor = w.fast_factor;
  cfg.spike = w.spike;
  cfg.accept_late_responses = w.accept_late_responses;
  cfg.extra_quorum = w.extra_quorum;
  runtime::MmrCluster cluster(cfg);
  cluster.network().set_size_fn([](const runtime::MmrMessage& m) {
    return std::visit([](const auto& msg) { return transport::wire_size(msg); },
                      m);
  });
  cluster.start(plan_for(w));
  cluster.run_for(w.horizon);

  RunMetrics out = summarize(cluster.log(), w.n, w.horizon);
  out.messages_sent = cluster.network().stats().messages_sent;
  out.bytes_sent = cluster.network().stats().bytes_sent;
  std::vector<ProcessId> correct;
  for (std::uint32_t i = 0; i < w.n; ++i) {
    if (!cluster.host(ProcessId{i}).crashed()) correct.push_back(ProcessId{i});
  }
  core::MpChecker checker(cluster.recorder(), w.f, correct);
  out.mp = checker.check();
  return out;
}

namespace {

template <typename DetectorT, typename ConfigT, typename MsgT,
          typename MakeConfig, typename SizeFn>
RunMetrics run_baseline(const Workload& w, MakeConfig make_config,
                        SizeFn size_fn) {
  runtime::BaselineCluster<DetectorT, ConfigT, MsgT> cluster(
      w.n, net::Topology::full(w.n), delays_for(w, /*with_bias=*/false),
      derive_seed(w.seed, "bench.baseline"), make_config);
  cluster.network().set_size_fn(size_fn);
  cluster.start(plan_for(w));
  cluster.run_for(w.horizon);
  RunMetrics out = summarize(cluster.log(), w.n, w.horizon);
  out.messages_sent = cluster.network().stats().messages_sent;
  out.bytes_sent = cluster.network().stats().bytes_sent;
  return out;
}

constexpr std::size_t kHeaderBytes = 5;  // sender + type, as in the codec

}  // namespace

RunMetrics run_heartbeat(const Workload& w) {
  return run_baseline<baselines::HeartbeatDetector, baselines::HeartbeatConfig,
                      baselines::HeartbeatMessage>(
      w,
      [&](ProcessId self) {
        baselines::HeartbeatConfig c;
        c.self = self;
        c.n = w.n;
        c.period = w.period;
        c.timeout = w.timeout;
        c.initial_delay = stagger(w.seed, self, w.period);
        return c;
      },
      [](const baselines::HeartbeatMessage&) { return kHeaderBytes + 8; });
}

RunMetrics run_phi(const Workload& w) {
  return run_baseline<baselines::PhiAccrualDetector,
                      baselines::PhiAccrualConfig, baselines::HeartbeatMessage>(
      w,
      [&](ProcessId self) {
        baselines::PhiAccrualConfig c;
        c.self = self;
        c.n = w.n;
        c.period = w.period;
        c.threshold = w.phi_threshold;
        c.poll = w.period / 10;
        c.initial_delay = stagger(w.seed, self, w.period);
        return c;
      },
      [](const baselines::HeartbeatMessage&) { return kHeaderBytes + 8; });
}

RunMetrics run_adaptive(const Workload& w) {
  return run_baseline<baselines::AdaptiveDetector, baselines::AdaptiveConfig,
                      baselines::HeartbeatMessage>(
      w,
      [&](ProcessId self) {
        baselines::AdaptiveConfig c;
        c.self = self;
        c.n = w.n;
        c.period = w.period;
        c.safety_margin = w.timeout;  // reinterpreted as alpha
        c.initial_delay = stagger(w.seed, self, w.period);
        return c;
      },
      [](const baselines::HeartbeatMessage&) { return kHeaderBytes + 8; });
}

RunMetrics run_gossip(const Workload& w) {
  return run_baseline<baselines::GossipDetector, baselines::GossipConfig,
                      baselines::GossipMessage>(
      w,
      [&](ProcessId self) {
        baselines::GossipConfig c;
        c.self = self;
        c.n = w.n;
        c.period = w.period;
        c.timeout = w.timeout;
        c.fanout = 0;
        c.seed = w.seed;
        c.initial_delay = stagger(w.seed, self, w.period);
        return c;
      },
      [&](const baselines::GossipMessage& m) {
        return kHeaderBytes + 4 + 8 * m.counters.size();
      });
}

RunMetrics run_detector(const std::string& name, const Workload& w) {
  if (name == "mmr") return run_mmr(w);
  if (name == "heartbeat") return run_heartbeat(w);
  if (name == "phi") return run_phi(w);
  if (name == "adaptive") return run_adaptive(w);
  if (name == "gossip") return run_gossip(w);
  throw std::invalid_argument("unknown detector: " + name);
}

void append_samples(SampleSet& into, const SampleSet& from) {
  for (double x : from.samples()) into.add(x);
}

}  // namespace mmrfd::bench
