// E1 — Crash detection time vs system size.
//
// Workload: f = ceil(n/4) tolerated crashes, `crashes` actual crashes spread
// uniformly over the run, exponential link delays. For each detector the
// table reports mean / p99 / max detection latency over every
// (crash, correct observer) pair, plus the strong-completeness instant.
//
// Expected shape (paper lineage): the time-free detector's latency tracks
// its query cadence Delta + network delay and *drops below* fixed-timeout
// detection (bounded by Theta ~ 2*Delta) because a crash is noticed at the
// first unanswered query rather than after a conservatively-padded timer;
// the timer-based latency is flat in n, the async latency mildly improves
// with density of responders.
#include <iostream>

#include "common/argparse.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

int main(int argc, char** argv) {
  ArgParser args("E1: detection time vs system size (n)");
  args.flag("sizes", "10,20,40,60,100", "comma-separated n values")
      .flag("seeds", "3", "seeds per configuration")
      .flag("crashes", "5", "crashes per run")
      .flag("horizon", "60", "simulated seconds per run")
      .flag("period", "1000", "Delta / heartbeat period (ms)")
      .flag("timeout", "2000", "baseline timeout Theta (ms)")
      .flag("csv", "false", "emit CSV instead of an aligned table");
  if (!args.parse(argc, argv)) return 0;

  std::cout << "# E1: failure detection time vs n  (f = n/4, "
            << args.get_int("crashes") << " crashes, exponential delays, "
            << args.get_int("seeds") << " seeds)\n\n";

  Table table({"n", "f", "detector", "mean_s", "p99_s", "max_s",
               "completeness_s", "false_susp"});

  std::vector<std::uint32_t> sizes;
  {
    std::string s = args.get("sizes");
    for (std::size_t pos = 0; pos < s.size();) {
      const auto comma = s.find(',', pos);
      sizes.push_back(static_cast<std::uint32_t>(
          std::stoul(s.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  for (const std::uint32_t n : sizes) {
    for (const std::string detector : {"mmr", "heartbeat", "phi"}) {
      SampleSet latencies;
      double worst_completeness = 0.0;
      bool complete = true;
      std::size_t false_susp = 0;
      for (std::uint64_t seed = 1;
           seed <= static_cast<std::uint64_t>(args.get_int("seeds")); ++seed) {
        bench::Workload w;
        w.n = n;
        w.f = (n + 3) / 4;
        w.seed = seed;
        // The model tolerates at most f crashes; a workload exceeding f
        // would (legitimately) stall the quorum.
        w.crashes = std::min<std::size_t>(
            static_cast<std::size_t>(args.get_int("crashes")), w.f);
        w.horizon = from_seconds(static_cast<double>(args.get_int("horizon")));
        w.crash_window_end = w.horizon - from_seconds(20);
        w.period = from_millis(static_cast<double>(args.get_int("period")));
        w.timeout = from_millis(static_cast<double>(args.get_int("timeout")));
        const auto m = bench::run_detector(detector, w);
        bench::append_samples(latencies, m.detection_latencies);
        complete = complete && m.strong_completeness;
        if (m.completeness_latency) {
          worst_completeness =
              std::max(worst_completeness, *m.completeness_latency);
        }
        false_susp += m.false_suspicions;
      }
      table.add_row({Table::num(std::uint64_t{n}),
                     Table::num(std::uint64_t{(n + 3) / 4}), detector,
                     Table::num(latencies.mean()),
                     Table::num(latencies.percentile(99.0)),
                     Table::num(latencies.max()),
                     complete ? Table::num(worst_completeness) : "incomplete",
                     Table::num(std::uint64_t{false_susp})});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
