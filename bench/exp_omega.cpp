// E10 — Omega on top of the detectors: leader stability under churn.
//
// Leader = smallest-id unsuspected process (the classic <>S -> Omega
// reduction; the DSN'03 conclusion names "other classes" as the follow-up).
// A good detector yields a leader that (a) converges to the same correct
// process everywhere, (b) changes rarely. We count per-process leader
// changes and the time of the last change, under three scenarios: stable,
// leaders assassinated, and a delay spike on the leader.
//
// Expected shape: all detectors converge in all scenarios (they are all
// <>S-grade here); the async detector's changes track its round cadence
// (crash noticed in ~Delta), timer detectors lag by Theta; under the
// *spike* (leader alive but slow) timer detectors dethrone the leader
// spuriously and re-elect it afterwards (2 extra changes per observer),
// while the async detector with late-response acceptance mostly keeps it.
#include <iostream>

#include "common/argparse.h"
#include "core/omega.h"
#include "exp_common.h"
#include "metrics/table.h"

using namespace mmrfd;
using metrics::Table;

namespace {

struct OmegaOutcome {
  double mean_changes_per_proc{0.0};
  bool unanimous{false};
  double last_change_s{0.0};
  ProcessId final_leader{kNoProcess};
};

// Polls OmegaViews every 100 ms of virtual time until `horizon`.
template <typename GetFd>
OmegaOutcome poll_omega(sim::Simulation& sim, std::uint32_t n,
                        const std::vector<ProcessId>& correct, GetFd get_fd,
                        Duration horizon) {
  std::vector<core::OmegaView> views;
  views.reserve(correct.size());
  for (ProcessId id : correct) views.emplace_back(get_fd(id), n);
  std::vector<TimePoint> last_change(correct.size(), kTimeZero);

  std::function<void()> tick = [&] {
    for (std::size_t i = 0; i < views.size(); ++i) {
      const auto before = views[i].changes();
      views[i].poll();
      if (views[i].changes() != before) last_change[i] = sim.now();
    }
    if (sim.now() < horizon) sim.schedule(from_millis(100), tick);
  };
  sim.schedule(from_millis(100), tick);
  sim.run_until(horizon);

  OmegaOutcome out;
  double total = 0.0;
  out.unanimous = true;
  out.final_leader = views.empty() ? kNoProcess : views[0].current();
  for (std::size_t i = 0; i < views.size(); ++i) {
    total += static_cast<double>(views[i].changes());
    out.last_change_s =
        std::max(out.last_change_s, to_seconds(last_change[i]));
    if (views[i].current() != out.final_leader) out.unanimous = false;
  }
  out.mean_changes_per_proc = total / static_cast<double>(views.size());
  return out;
}

struct Scenario {
  std::string name;
  std::vector<std::uint32_t> crash_leaders;  // crash these ids in sequence
  bool spike_leader{false};
};

OmegaOutcome run_mmr_omega(const Scenario& sc, std::uint64_t seed,
                           std::uint32_t n, Duration horizon) {
  runtime::MmrClusterConfig cfg;
  cfg.n = n;
  cfg.f = n / 3;
  cfg.seed = seed;
  cfg.pacing = from_millis(250);
  cfg.mean_delay = from_millis(2);
  if (sc.spike_leader) {
    runtime::SpikeSpec spike;
    spike.start = from_seconds(10);
    spike.end = from_seconds(15);
    spike.factor = 3000.0;
    spike.affected = {ProcessId{0}};
    cfg.spike = spike;
  }
  runtime::MmrCluster cluster(cfg);
  runtime::CrashPlan plan;
  std::vector<ProcessId> correct;
  for (std::uint32_t i = 0; i < n; ++i) correct.push_back(ProcessId{i});
  double when = 5.0;
  for (std::uint32_t victim : sc.crash_leaders) {
    plan.entries.push_back({ProcessId{victim}, from_seconds(when)});
    when += 5.0;
    std::erase(correct, ProcessId{victim});
  }
  cluster.start(plan);
  return poll_omega(
      cluster.simulation(), n, correct,
      [&](ProcessId id) -> const core::FailureDetector& {
        return cluster.host(id).detector();
      },
      horizon);
}

template <typename DetectorT, typename ConfigT>
OmegaOutcome run_baseline_omega(const Scenario& sc, std::uint64_t seed,
                                std::uint32_t n, Duration horizon,
                                std::function<ConfigT(ProcessId)> make_config) {
  auto delays = net::make_preset(net::DelayPreset::kExponential,
                                 from_millis(2));
  if (sc.spike_leader) {
    delays = std::make_unique<net::SpikeDelay>(
        std::move(delays), from_seconds(10), from_seconds(15), 3000.0,
        std::vector<ProcessId>{ProcessId{0}});
  }
  runtime::BaselineCluster<DetectorT, ConfigT, baselines::HeartbeatMessage>
      cluster(n, net::Topology::full(n), std::move(delays), seed,
              make_config);
  runtime::CrashPlan plan;
  std::vector<ProcessId> correct;
  for (std::uint32_t i = 0; i < n; ++i) correct.push_back(ProcessId{i});
  double when = 5.0;
  for (std::uint32_t victim : sc.crash_leaders) {
    plan.entries.push_back({ProcessId{victim}, from_seconds(when)});
    when += 5.0;
    std::erase(correct, ProcessId{victim});
  }
  cluster.start(plan);
  return poll_omega(
      cluster.simulation(), n, correct,
      [&](ProcessId id) -> const core::FailureDetector& {
        return cluster.detector(id);
      },
      horizon);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("E10: Omega leader stability per detector");
  args.flag("n", "12", "system size")
      .flag("horizon", "30", "simulated seconds")
      .flag("seed", "1", "seed")
      .flag("csv", "false", "emit CSV");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(args.get_int("n"));
  const auto horizon =
      from_seconds(static_cast<double>(args.get_int("horizon")));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "# E10: Omega (leader = min unsuspected) stability "
            << "(n = " << n << ", poll 100 ms)\n\n";

  const Scenario scenarios[] = {
      {"stable", {}, false},
      {"assassinate-p0-p1", {0, 1}, false},
      {"leader-spike", {}, true},
  };

  Table table({"scenario", "detector", "final_leader", "unanimous",
               "mean_changes", "last_change_s"});
  for (const auto& sc : scenarios) {
    for (const std::string detector : {"mmr", "heartbeat", "phi"}) {
      OmegaOutcome out;
      if (detector == "mmr") {
        out = run_mmr_omega(sc, seed, n, horizon);
      } else if (detector == "heartbeat") {
        out = run_baseline_omega<baselines::HeartbeatDetector,
                                 baselines::HeartbeatConfig>(
            sc, seed, n, horizon, [&](ProcessId self) {
              baselines::HeartbeatConfig c;
              c.self = self;
              c.n = n;
              c.period = from_millis(250);
              c.timeout = from_millis(1000);
              c.initial_delay = from_millis(self.value * 3);
              return c;
            });
      } else {
        out = run_baseline_omega<baselines::PhiAccrualDetector,
                                 baselines::PhiAccrualConfig>(
            sc, seed, n, horizon, [&](ProcessId self) {
              baselines::PhiAccrualConfig c;
              c.self = self;
              c.n = n;
              c.period = from_millis(250);
              c.threshold = 8.0;
              c.poll = from_millis(50);
              c.initial_delay = from_millis(self.value * 3);
              return c;
            });
      }
      table.add_row({sc.name, detector,
                     out.final_leader == kNoProcess
                         ? std::string("none")
                         : "p" + std::to_string(out.final_leader.value),
                     out.unanimous ? "yes" : "NO",
                     Table::num(out.mean_changes_per_proc, 2),
                     Table::num(out.last_change_s, 2)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
