// Micro-benchmarks of the wire codec: per-datagram serialization cost on the
// real-transport path.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "transport/codec.h"

using namespace mmrfd;
using namespace mmrfd::transport;

namespace {

core::QueryMessage query_with(std::size_t entries) {
  Xoshiro256 rng(9);
  core::QueryMessage q;
  q.seq = 123456789;
  for (std::size_t i = 0; i < entries; ++i) {
    const TaggedEntry e{
        ProcessId{static_cast<std::uint32_t>(rng.next_below(100000))},
        rng.next()};
    if (i % 2 == 0) {
      q.push_suspected(e);
    } else {
      q.push_mistake(e);
    }
  }
  return q;
}

void BM_EncodeQuery(benchmark::State& state) {
  const auto q = query_with(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = encode_envelope(ProcessId{1}, q);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_size(q)));
}
BENCHMARK(BM_EncodeQuery)->Arg(0)->Arg(16)->Arg(128)->Arg(1024);

void BM_DecodeQuery(benchmark::State& state) {
  const auto q = query_with(static_cast<std::size_t>(state.range(0)));
  const auto bytes = encode_envelope(ProcessId{1}, q);
  for (auto _ : state) {
    auto out = decode_envelope(bytes);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DecodeQuery)->Arg(0)->Arg(16)->Arg(128)->Arg(1024);

void BM_EncodeResponse(benchmark::State& state) {
  const core::ResponseMessage r{42};
  for (auto _ : state) {
    auto bytes = encode_envelope(ProcessId{1}, r);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_EncodeResponse);

}  // namespace

BENCHMARK_MAIN();
