#include "baselines/adaptive.h"

#include <gtest/gtest.h>

#include "metrics/analysis.h"
#include "runtime/baseline_cluster.h"

namespace mmrfd::baselines {
namespace {

TEST(ArrivalPredictor, DefaultsToPeriodBeforeSamples) {
  ArrivalPredictor p(8, from_millis(100));
  EXPECT_FALSE(p.predicted_next().has_value());
  p.observe(from_seconds(1));
  ASSERT_TRUE(p.predicted_next().has_value());
  EXPECT_EQ(*p.predicted_next(), from_seconds(1) + from_millis(100));
}

TEST(ArrivalPredictor, LearnsMeanInterval) {
  ArrivalPredictor p(8, from_millis(100));
  // Actual cadence is 250 ms, not the nominal 100 ms.
  for (int i = 0; i <= 8; ++i) p.observe(from_millis(250 * i));
  ASSERT_TRUE(p.predicted_next().has_value());
  EXPECT_EQ(*p.predicted_next(), from_millis(250 * 8 + 250));
}

TEST(ArrivalPredictor, WindowEvictsOldIntervals) {
  ArrivalPredictor p(2, from_millis(100));
  p.observe(from_millis(0));
  p.observe(from_millis(1000));  // interval 1000
  p.observe(from_millis(1100));  // interval 100
  p.observe(from_millis(1200));  // interval 100 -> window {100, 100}
  EXPECT_EQ(*p.predicted_next(), from_millis(1300));
}

using Cluster =
    runtime::BaselineCluster<AdaptiveDetector, AdaptiveConfig,
                             HeartbeatMessage>;

Cluster make_cluster(std::uint32_t n, Duration margin,
                     std::unique_ptr<net::DelayModel> delays,
                     std::uint64_t seed = 1) {
  return Cluster(n, net::Topology::full(n), std::move(delays), seed,
                 [=](ProcessId self) {
                   AdaptiveConfig c;
                   c.self = self;
                   c.n = n;
                   c.period = from_millis(100);
                   c.safety_margin = margin;
                   c.initial_delay = from_millis(self.value);
                   return c;
                 });
}

TEST(AdaptiveDetector, StableClusterStaysClean) {
  auto c = make_cluster(4, from_millis(50),
                        std::make_unique<net::ConstantDelay>(from_millis(2)));
  c.start();
  c.run_for(from_seconds(10));
  metrics::Analysis a(c.log(), 4, from_seconds(10));
  EXPECT_TRUE(a.false_suspicions().empty());
}

TEST(AdaptiveDetector, DetectsCrashQuickly) {
  auto c = make_cluster(4, from_millis(50),
                        std::make_unique<net::ConstantDelay>(from_millis(2)));
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{2}, from_seconds(5)});
  c.start(plan);
  c.run_for(from_seconds(15));
  metrics::Analysis a(c.log(), 4, from_seconds(15));
  EXPECT_TRUE(a.strong_completeness());
  const auto ss = a.crash_summaries();
  ASSERT_EQ(ss.size(), 1u);
  // Prediction + margin: detection within ~period + margin + slack.
  EXPECT_LT(ss[0].latencies.max(), 0.5);
}

TEST(AdaptiveDetector, AdaptsToSlowerCadenceThanNominal) {
  // Mean delay grows after t=5 s; the adaptive margin keeps pace once the
  // window fills with slow intervals, so late false suspicions stop.
  auto inner = std::make_unique<net::ConstantDelay>(from_millis(2));
  auto delays = std::make_unique<net::SpikeDelay>(
      std::move(inner), from_seconds(5), from_seconds(100), 40.0);
  auto c = make_cluster(4, from_millis(120), std::move(delays), 3);
  c.start();
  c.run_for(from_seconds(40));
  metrics::Analysis a(c.log(), 4, from_seconds(40));
  // Transient false suspicions right after the shift are expected, but each
  // must be cleared once the predictor adapts.
  for (const auto& f : a.false_suspicions()) {
    EXPECT_TRUE(f.cleared_at.has_value() ||
                f.suspected_at > from_seconds(4));
  }
}

}  // namespace
}  // namespace mmrfd::baselines
