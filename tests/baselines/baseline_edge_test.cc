// Edge-case coverage for the baseline detectors that the main suites skim:
// minimal cluster sizes, detector restarts of suspicion, timer semantics
// around exact boundaries, gossip on sparse topologies with failures.
#include <gtest/gtest.h>

#include "baselines/adaptive.h"
#include "baselines/gossip.h"
#include "baselines/heartbeat.h"
#include "baselines/phi_accrual.h"
#include "metrics/analysis.h"
#include "runtime/baseline_cluster.h"

namespace mmrfd::baselines {
namespace {

TEST(HeartbeatEdge, TwoProcessMutualMonitoring) {
  using Cluster = runtime::BaselineCluster<HeartbeatDetector, HeartbeatConfig,
                                           HeartbeatMessage>;
  Cluster c(2, net::Topology::full(2),
            std::make_unique<net::ConstantDelay>(from_millis(1)), 1,
            [](ProcessId self) {
              HeartbeatConfig cfg;
              cfg.self = self;
              cfg.n = 2;
              cfg.period = from_millis(50);
              cfg.timeout = from_millis(150);
              cfg.initial_delay = from_millis(self.value);
              return cfg;
            });
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{1}, from_seconds(1)});
  c.start(plan);
  c.run_for(from_seconds(3));
  EXPECT_TRUE(c.detector(ProcessId{0}).is_suspected(ProcessId{1}));
  EXPECT_FALSE(c.detector(ProcessId{0}).is_suspected(ProcessId{0}));
}

TEST(HeartbeatEdge, NeverStartedPeerTimesOutToo) {
  // A peer that never sends a single heartbeat must still be suspected:
  // timers are armed at start for every peer, not on first contact.
  sim::Simulation sim;
  HeartbeatNetwork net(sim, net::Topology::full(3),
                       std::make_unique<net::ConstantDelay>(from_millis(1)),
                       1);
  HeartbeatConfig cfg;
  cfg.self = ProcessId{0};
  cfg.n = 3;
  cfg.period = from_millis(50);
  cfg.timeout = from_millis(200);
  HeartbeatDetector d(sim, net, cfg);
  // p1 chats, p2 stays silent forever.
  net.set_handler(ProcessId{1}, [](ProcessId, const HeartbeatMessage&) {});
  net.set_handler(ProcessId{2}, [](ProcessId, const HeartbeatMessage&) {});
  d.start();
  sim.schedule(from_millis(100), [&] {
    net.send(ProcessId{1}, ProcessId{0}, HeartbeatMessage{1});
  });
  sim.run_for(from_millis(260));
  EXPECT_FALSE(d.is_suspected(ProcessId{1}));
  EXPECT_TRUE(d.is_suspected(ProcessId{2}));
}

TEST(PhiAccrualEdge, BootstrapSuspectsBornDeadPeer) {
  // The Akka-style first-heartbeat estimate: a peer that crashes before its
  // first heartbeat must still accrue suspicion (the cold-start hole that
  // broke consensus termination before the fix — see E6 notes).
  sim::Simulation sim;
  HeartbeatNetwork net(sim, net::Topology::full(2),
                       std::make_unique<net::ConstantDelay>(from_millis(1)),
                       1);
  PhiAccrualConfig cfg;
  cfg.self = ProcessId{0};
  cfg.n = 2;
  cfg.period = from_millis(100);
  cfg.threshold = 8.0;
  cfg.poll = from_millis(20);
  PhiAccrualDetector d(sim, net, cfg);
  net.set_handler(ProcessId{1}, [](ProcessId, const HeartbeatMessage&) {});
  d.start();  // p1 never sends anything
  sim.run_for(from_seconds(3));
  EXPECT_TRUE(d.is_suspected(ProcessId{1}));
}

TEST(PhiAccrualEdge, PhiAccessorTracksSilence) {
  sim::Simulation sim;
  HeartbeatNetwork net(sim, net::Topology::full(2),
                       std::make_unique<net::ConstantDelay>(from_millis(1)),
                       1);
  PhiAccrualConfig cfg;
  cfg.self = ProcessId{0};
  cfg.n = 2;
  cfg.period = from_millis(100);
  PhiAccrualDetector d(sim, net, cfg);
  net.set_handler(ProcessId{1}, [](ProcessId, const HeartbeatMessage&) {});
  d.start();
  for (int i = 1; i <= 5; ++i) {
    net.send(ProcessId{1}, ProcessId{0},
             HeartbeatMessage{static_cast<std::uint64_t>(i)});
    sim.run_for(from_millis(100));
  }
  const double phi_fresh = d.phi(ProcessId{1});
  sim.run_for(from_seconds(2));  // silence
  EXPECT_GT(d.phi(ProcessId{1}), phi_fresh);
}

TEST(GossipEdge, StarTopologyLeafDetectsRemoteLeafCrash) {
  // Leaves only talk to the hub; a leaf's crash must reach the other leaves
  // transitively through the hub's merged counter vector.
  using Cluster =
      runtime::BaselineCluster<GossipDetector, GossipConfig, GossipMessage>;
  Cluster c(5, net::Topology::star(5),
            std::make_unique<net::ConstantDelay>(from_millis(2)), 3,
            [](ProcessId self) {
              GossipConfig cfg;
              cfg.self = self;
              cfg.n = 5;
              cfg.period = from_millis(100);
              cfg.timeout = from_seconds(1);
              cfg.initial_delay = from_millis(self.value);
              return cfg;
            });
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{4}, from_seconds(2)});
  c.start(plan);
  c.run_for(from_seconds(10));
  EXPECT_TRUE(c.detector(ProcessId{1}).is_suspected(ProcessId{4}));
  EXPECT_FALSE(c.detector(ProcessId{1}).is_suspected(ProcessId{2}));
}

TEST(GossipEdge, HubCrashOnStarSuspectsEverythingBeyondIt) {
  // When the star's hub dies, leaves lose all transitive information: every
  // other leaf times out too (they are genuinely unreachable). Documents
  // the topology-sensitivity that the full mesh hides.
  using Cluster =
      runtime::BaselineCluster<GossipDetector, GossipConfig, GossipMessage>;
  Cluster c(4, net::Topology::star(4),
            std::make_unique<net::ConstantDelay>(from_millis(2)), 5,
            [](ProcessId self) {
              GossipConfig cfg;
              cfg.self = self;
              cfg.n = 4;
              cfg.period = from_millis(100);
              cfg.timeout = from_millis(800);
              cfg.initial_delay = from_millis(self.value);
              return cfg;
            });
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{0}, from_seconds(2)});  // the hub
  c.start(plan);
  c.run_for(from_seconds(6));
  for (std::uint32_t leaf = 1; leaf < 4; ++leaf) {
    EXPECT_TRUE(c.detector(ProcessId{leaf}).is_suspected(ProcessId{0}));
    // And (unavoidably) the other leaves as well.
    EXPECT_TRUE(c.detector(ProcessId{leaf})
                    .is_suspected(ProcessId{leaf == 1 ? 2u : 1u}));
  }
}

TEST(AdaptiveEdge, MarginZeroIsHairTrigger) {
  // alpha = 0: any delay beyond the learned mean causes suspicion. With
  // exponential jitter this must produce false suspicions — the knob's
  // lower extreme, complementing E7's sweep.
  using Cluster = runtime::BaselineCluster<AdaptiveDetector, AdaptiveConfig,
                                           HeartbeatMessage>;
  Cluster c(3, net::Topology::full(3),
            std::make_unique<net::ExponentialDelay>(from_millis(1),
                                                    from_millis(20)),
            7, [](ProcessId self) {
              AdaptiveConfig cfg;
              cfg.self = self;
              cfg.n = 3;
              cfg.period = from_millis(100);
              cfg.safety_margin = Duration::zero();
              cfg.initial_delay = from_millis(self.value);
              return cfg;
            });
  c.start();
  c.run_for(from_seconds(10));
  metrics::Analysis a(c.log(), 3, from_seconds(10));
  EXPECT_GT(a.false_suspicions().size(), 0u);
}

}  // namespace
}  // namespace mmrfd::baselines
