#include "baselines/heartbeat.h"

#include <gtest/gtest.h>

#include "metrics/analysis.h"
#include "runtime/baseline_cluster.h"

namespace mmrfd::baselines {
namespace {

using Cluster = runtime::BaselineCluster<HeartbeatDetector, HeartbeatConfig,
                                         HeartbeatMessage>;

Cluster make_cluster(std::uint32_t n, Duration period, Duration timeout,
                     std::unique_ptr<net::DelayModel> delays,
                     std::uint64_t seed = 1) {
  return Cluster(n, net::Topology::full(n), std::move(delays), seed,
                 [=](ProcessId self) {
                   HeartbeatConfig c;
                   c.self = self;
                   c.n = n;
                   c.period = period;
                   c.timeout = timeout;
                   c.initial_delay = from_millis(self.value);  // stagger
                   return c;
                 });
}

TEST(HeartbeatDetector, NoSuspicionsWhenDelaysFitTimeout) {
  auto c = make_cluster(5, from_millis(100), from_millis(300),
                        std::make_unique<net::ConstantDelay>(from_millis(5)));
  c.start();
  c.run_for(from_seconds(10));
  EXPECT_TRUE(c.log().events().empty());
}

TEST(HeartbeatDetector, CrashDetectedWithinTheta) {
  auto c = make_cluster(5, from_millis(100), from_millis(300),
                        std::make_unique<net::ConstantDelay>(from_millis(5)));
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{2}, from_seconds(3)});
  c.start(plan);
  c.run_for(from_seconds(10));
  metrics::Analysis a(c.log(), 5, from_seconds(10));
  const auto ss = a.crash_summaries();
  ASSERT_EQ(ss.size(), 1u);
  EXPECT_EQ(ss[0].detected_by, 4u);
  ASSERT_TRUE(ss[0].completeness_latency.has_value());
  // Detection bounded by Theta (+ one delivery delay).
  EXPECT_LE(*ss[0].completeness_latency, from_millis(310));
  EXPECT_GE(*ss[0].completeness_latency, from_millis(195));  // >= Theta-Delta
}

TEST(HeartbeatDetector, SlowLinksCauseFalseSuspicionsUnlikeTimeFree) {
  // Delays frequently exceeding Theta make the fixed-timeout detector
  // false-suspect correct processes.
  auto c = make_cluster(
      4, from_millis(100), from_millis(150),
      std::make_unique<net::ExponentialDelay>(from_millis(50), from_millis(150)),
      7);
  c.start();
  c.run_for(from_seconds(20));
  metrics::Analysis a(c.log(), 4, from_seconds(20));
  EXPECT_GT(a.false_suspicions().size(), 0u);
}

TEST(HeartbeatDetector, RecoversWhenHeartbeatArrives) {
  // A single long-delayed heartbeat causes suspicion, the next one clears it.
  auto c = make_cluster(
      2, from_millis(100), from_millis(150),
      std::make_unique<net::SpikeDelay>(
          std::make_unique<net::ConstantDelay>(from_millis(1)),
          from_seconds(2), from_millis(2300), 400.0));
  c.start();
  c.run_for(from_seconds(10));
  metrics::Analysis a(c.log(), 2, from_seconds(10));
  const auto fs = a.false_suspicions();
  ASSERT_FALSE(fs.empty());
  for (const auto& f : fs) EXPECT_TRUE(f.cleared_at.has_value());
}

TEST(HeartbeatDetector, StaleHeartbeatIgnored) {
  // Out-of-order delivery: an older seq must not clear a suspicion.
  sim::Simulation sim;
  HeartbeatNetwork net(sim, net::Topology::full(2),
                       std::make_unique<net::ConstantDelay>(from_millis(1)),
                       1);
  HeartbeatConfig cfg;
  cfg.self = ProcessId{0};
  cfg.n = 2;
  cfg.period = from_millis(100);
  cfg.timeout = from_millis(200);
  HeartbeatDetector d(sim, net, cfg);
  d.start();
  // Inject heartbeats by hand via the network from p1's address.
  net.set_handler(ProcessId{1}, [](ProcessId, const HeartbeatMessage&) {});
  sim.run_for(from_millis(50));
  net.send(ProcessId{1}, ProcessId{0}, HeartbeatMessage{5});
  sim.run_for(from_millis(100));
  EXPECT_FALSE(d.is_suspected(ProcessId{1}));
  sim.run_for(from_millis(500));  // no further heartbeats: timeout
  EXPECT_TRUE(d.is_suspected(ProcessId{1}));
  net.send(ProcessId{1}, ProcessId{0}, HeartbeatMessage{4});  // stale
  sim.run_for(from_millis(50));
  EXPECT_TRUE(d.is_suspected(ProcessId{1}));
  net.send(ProcessId{1}, ProcessId{0}, HeartbeatMessage{6});  // fresh
  sim.run_for(from_millis(50));
  EXPECT_FALSE(d.is_suspected(ProcessId{1}));
}

}  // namespace
}  // namespace mmrfd::baselines
