#include "baselines/gossip.h"

#include <gtest/gtest.h>

#include "metrics/analysis.h"
#include "runtime/baseline_cluster.h"

namespace mmrfd::baselines {
namespace {

using Cluster =
    runtime::BaselineCluster<GossipDetector, GossipConfig, GossipMessage>;

Cluster make_cluster(std::uint32_t n, net::Topology topo,
                     std::uint32_t fanout, Duration timeout,
                     std::uint64_t seed = 1) {
  return Cluster(n, std::move(topo),
                 std::make_unique<net::ConstantDelay>(from_millis(2)), seed,
                 [=](ProcessId self) {
                   GossipConfig c;
                   c.self = self;
                   c.n = n;
                   c.period = from_millis(100);
                   c.timeout = timeout;
                   c.fanout = fanout;
                   c.seed = seed;
                   c.initial_delay = from_millis(self.value);
                   return c;
                 });
}

TEST(GossipDetector, StableFullMeshStaysClean) {
  auto c = make_cluster(5, net::Topology::full(5), 0, from_millis(400));
  c.start();
  c.run_for(from_seconds(10));
  EXPECT_TRUE(c.log().events().empty());
}

TEST(GossipDetector, DetectsCrashOnFullMesh) {
  auto c = make_cluster(5, net::Topology::full(5), 0, from_millis(400));
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{3}, from_seconds(3)});
  c.start(plan);
  c.run_for(from_seconds(10));
  metrics::Analysis a(c.log(), 5, from_seconds(10));
  EXPECT_TRUE(a.strong_completeness());
}

TEST(GossipDetector, CountersPropagateTransitivelyOnRing) {
  // On a ring, p0 and p2 are not neighbors; p0's counter still reaches p2
  // through p1 — the transitive propagation plain heartbeat lacks.
  auto c = make_cluster(5, net::Topology::ring(5), 0, from_seconds(1));
  c.start();
  c.run_for(from_seconds(5));
  EXPECT_GT(c.detector(ProcessId{2}).counters()[0], 30u);
  metrics::Analysis a(c.log(), 5, from_seconds(5));
  EXPECT_TRUE(a.false_suspicions().empty());
}

TEST(GossipDetector, RingCrashEventuallyDetectedByAll) {
  auto c = make_cluster(6, net::Topology::ring(6), 0, from_seconds(1));
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{2}, from_seconds(3)});
  c.start(plan);
  c.run_for(from_seconds(15));
  metrics::Analysis a(c.log(), 6, from_seconds(15));
  EXPECT_TRUE(a.strong_completeness());
}

TEST(GossipDetector, FanoutLimitsPerTickSends) {
  auto c = make_cluster(8, net::Topology::full(8), 2, from_seconds(2), 5);
  c.start();
  c.run_for(from_seconds(4));
  // ~40 ticks per process, 2 sends each: far fewer than full broadcast (7).
  const auto sent = c.network().stats().messages_sent;
  EXPECT_GT(sent, 8u * 30u * 2u / 2u);
  EXPECT_LT(sent, 8u * 45u * 3u);
}

TEST(GossipDetector, RandomizedFanoutStillDetectsCrash) {
  auto c = make_cluster(8, net::Topology::full(8), 2, from_millis(1500), 5);
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{4}, from_seconds(3)});
  c.start(plan);
  c.run_for(from_seconds(20));
  metrics::Analysis a(c.log(), 8, from_seconds(20));
  EXPECT_TRUE(a.strong_completeness());
}

}  // namespace
}  // namespace mmrfd::baselines
