#include "baselines/phi_accrual.h"

#include <gtest/gtest.h>

#include "metrics/analysis.h"
#include "runtime/baseline_cluster.h"

namespace mmrfd::baselines {
namespace {

TEST(PhiWindow, PhiZeroWithoutSamples) {
  PhiWindow w(10, from_millis(10));
  EXPECT_EQ(w.phi(from_seconds(100)), 0.0);
  w.observe_arrival(from_seconds(1));
  EXPECT_EQ(w.phi(from_seconds(100)), 0.0);  // one arrival, no interval yet
}

TEST(PhiWindow, PhiGrowsWithSilence) {
  PhiWindow w(10, from_millis(10));
  for (int i = 1; i <= 6; ++i) w.observe_arrival(from_seconds(i));
  const double phi_early = w.phi(from_seconds(6.5));
  const double phi_late = w.phi(from_seconds(9.0));
  EXPECT_LT(phi_early, phi_late);
  EXPECT_GT(phi_late, 8.0);  // 2 s overdue on a tight 1 s cadence
}

TEST(PhiWindow, PhiLowRightAfterArrival) {
  PhiWindow w(10, from_millis(10));
  for (int i = 1; i <= 6; ++i) w.observe_arrival(from_seconds(i));
  EXPECT_LT(w.phi(from_seconds(6.1)), 1.0);
}

TEST(PhiWindow, WindowEvictsOldSamples) {
  PhiWindow w(4, from_millis(10));
  // Jittery start, then rock-steady cadence; after eviction the stddev
  // reflects only the steady samples.
  w.observe_arrival(from_seconds(0));
  w.observe_arrival(from_seconds(3));
  for (int i = 1; i <= 8; ++i) {
    w.observe_arrival(from_seconds(3) + from_seconds(i));
  }
  EXPECT_EQ(w.samples(), 4u);
  EXPECT_GT(w.phi(from_seconds(11) + from_seconds(3)), 5.0);
}

TEST(PhiWindow, MinStddevGuardsDegenerateWindows) {
  // Perfectly regular arrivals would give stddev 0 and an instant-suspect
  // cliff; the floor keeps phi finite near the expected arrival.
  PhiWindow w(8, from_millis(100));
  for (int i = 1; i <= 8; ++i) w.observe_arrival(from_seconds(i));
  const double phi = w.phi(from_seconds(9.05));
  EXPECT_GT(phi, 0.0);
  EXPECT_LT(phi, 3.0);
}

using Cluster =
    runtime::BaselineCluster<PhiAccrualDetector, PhiAccrualConfig,
                             HeartbeatMessage>;

Cluster make_cluster(std::uint32_t n, double threshold,
                     std::unique_ptr<net::DelayModel> delays,
                     std::uint64_t seed = 1) {
  return Cluster(n, net::Topology::full(n), std::move(delays), seed,
                 [=](ProcessId self) {
                   PhiAccrualConfig c;
                   c.self = self;
                   c.n = n;
                   c.period = from_millis(100);
                   c.threshold = threshold;
                   c.window = 32;
                   c.poll = from_millis(20);
                   c.initial_delay = from_millis(self.value);
                   return c;
                 });
}

TEST(PhiAccrualDetector, StableClusterStaysClean) {
  auto c = make_cluster(4, 8.0,
                        std::make_unique<net::ConstantDelay>(from_millis(2)));
  c.start();
  c.run_for(from_seconds(15));
  metrics::Analysis a(c.log(), 4, from_seconds(15));
  EXPECT_TRUE(a.false_suspicions().empty());
}

TEST(PhiAccrualDetector, DetectsCrash) {
  auto c = make_cluster(4, 8.0,
                        std::make_unique<net::ConstantDelay>(from_millis(2)));
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{1}, from_seconds(5)});
  c.start(plan);
  c.run_for(from_seconds(20));
  metrics::Analysis a(c.log(), 4, from_seconds(20));
  EXPECT_TRUE(a.strong_completeness());
  const auto ss = a.crash_summaries();
  ASSERT_EQ(ss.size(), 1u);
  // Accrual reacts within a few periods on a tight distribution.
  EXPECT_LT(ss[0].latencies.max(), 5.0);
}

TEST(PhiAccrualDetector, LowerThresholdDetectsFasterButFalseSuspects) {
  auto run = [](double threshold) {
    auto c = make_cluster(
        4, threshold,
        std::make_unique<net::ExponentialDelay>(from_millis(5),
                                                from_millis(60)),
        11);
    runtime::CrashPlan plan;
    plan.entries.push_back({ProcessId{1}, from_seconds(10)});
    c.start(plan);
    c.run_for(from_seconds(30));
    metrics::Analysis a(c.log(), 4, from_seconds(30));
    const auto ss = a.crash_summaries();
    const double latency =
        ss.empty() || ss[0].latencies.empty() ? 1e9 : ss[0].latencies.mean();
    return std::make_pair(latency, a.false_suspicions().size());
  };
  const auto [lat_low, fs_low] = run(1.0);
  const auto [lat_high, fs_high] = run(10.0);
  EXPECT_LT(lat_low, lat_high);   // aggressive threshold detects sooner
  EXPECT_GE(fs_low, fs_high);     // ...at the cost of more false suspicions
  EXPECT_GT(fs_low, 0u);
}

}  // namespace
}  // namespace mmrfd::baselines
