// Unit tests for the flight recorder: ring wraparound order, pluggable
// clock stamping, and the text/file dump format.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

namespace mmrfd::obs {
namespace {

std::uint64_t fake_now(const void* ctx) {
  return *static_cast<const std::uint64_t*>(ctx);
}

TEST(FlightRecorder, RecordsArriveOldestFirstWithMonotoneSeq) {
  std::uint64_t now = 100;
  FlightRecorder rec(8, TraceClock{&fake_now, &now});
  rec.record(TraceKind::kRoundOpen, 1);
  now = 200;
  rec.record(TraceKind::kQueryTx, 2, 64);
  now = 300;
  rec.record(TraceKind::kRoundClose, 1, 0);

  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0],
            (TraceRecord{100, 0, 1, 0, TraceKind::kRoundOpen}));
  EXPECT_EQ(records[1], (TraceRecord{200, 1, 2, 64, TraceKind::kQueryTx}));
  EXPECT_EQ(records[2], (TraceRecord{300, 2, 1, 0, TraceKind::kRoundClose}));
  EXPECT_EQ(rec.recorded(), 3u);
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestRecords) {
  std::uint64_t now = 0;
  FlightRecorder rec(4, TraceClock{&fake_now, &now});
  for (std::uint32_t i = 0; i < 10; ++i) {
    now = i;
    rec.record(TraceKind::kSuspectAdd, i);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.capacity(), 4u);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // The survivors are the last four writes, oldest first.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 6 + i);
    EXPECT_EQ(records[i].a, 6 + i);
    EXPECT_EQ(records[i].t_ns, 6 + i);
  }
}

TEST(FlightRecorder, ZeroCapacityStillHoldsTheLatestRecord) {
  FlightRecorder rec(0, TraceClock{});
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(TraceKind::kResync, 1);
  rec.record(TraceKind::kResync, 2);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].a, 2u);
  EXPECT_EQ(records[0].seq, 1u);
}

TEST(FlightRecorder, NullClockStampsZero) {
  FlightRecorder rec(2, TraceClock{});
  rec.record(TraceKind::kRoundOpen);
  EXPECT_EQ(rec.snapshot().at(0).t_ns, 0u);
}

TEST(FlightRecorder, SetClockAffectsSubsequentRecords) {
  std::uint64_t now = 42;
  FlightRecorder rec(4, TraceClock{});
  rec.record(TraceKind::kRoundOpen);
  rec.set_clock(TraceClock{&fake_now, &now});
  rec.record(TraceKind::kRoundClose);
  const auto records = rec.snapshot();
  EXPECT_EQ(records.at(0).t_ns, 0u);
  EXPECT_EQ(records.at(1).t_ns, 42u);
}

TEST(TraceKindName, CoversEveryKind) {
  EXPECT_EQ(trace_kind_name(TraceKind::kRoundOpen), "round_open");
  EXPECT_EQ(trace_kind_name(TraceKind::kRoundClose), "round_close");
  EXPECT_EQ(trace_kind_name(TraceKind::kQueryTx), "query_tx");
  EXPECT_EQ(trace_kind_name(TraceKind::kQueryRx), "query_rx");
  EXPECT_EQ(trace_kind_name(TraceKind::kResponseTx), "response_tx");
  EXPECT_EQ(trace_kind_name(TraceKind::kResponseRx), "response_rx");
  EXPECT_EQ(trace_kind_name(TraceKind::kSuspectAdd), "suspect_add");
  EXPECT_EQ(trace_kind_name(TraceKind::kSuspectDrop), "suspect_drop");
  EXPECT_EQ(trace_kind_name(TraceKind::kNeedFullTx), "need_full_tx");
  EXPECT_EQ(trace_kind_name(TraceKind::kNeedFullRx), "need_full_rx");
  EXPECT_EQ(trace_kind_name(TraceKind::kResync), "resync");
  EXPECT_EQ(trace_kind_name(TraceKind::kGiveUpSkip), "giveup_skip");
  EXPECT_EQ(trace_kind_name(TraceKind::kResendWave), "resend_wave");
  EXPECT_EQ(trace_kind_name(TraceKind::kQuorum), "quorum");
  EXPECT_EQ(trace_kind_name(TraceKind::kQueryTxSeq), "query_tx_seq");
  EXPECT_EQ(trace_kind_name(TraceKind::kResponseTxSeq), "response_tx_seq");
  EXPECT_EQ(trace_kind_name(TraceKind::kResponseRxSeq), "response_rx_seq");
  EXPECT_EQ(trace_kind_name(TraceKind::kPeerRound), "peer_round");
  EXPECT_EQ(trace_kind_name(TraceKind::kRelRetransmit), "rel_retransmit");
  EXPECT_EQ(trace_kind_name(TraceKind::kRelDuplicate), "rel_duplicate");
  // Every valid kind value maps to a distinct name, and the parser inverts
  // the mapping — the text-dump loader depends on this round trip.
  for (std::uint8_t k = 1; k <= kMaxTraceKind; ++k) {
    const auto kind = static_cast<TraceKind>(k);
    const std::string_view name = trace_kind_name(kind);
    EXPECT_NE(name, "unknown") << "kind " << int{k} << " has no name";
    EXPECT_EQ(trace_kind_from_name(name), kind) << "kind " << int{k};
  }
  EXPECT_EQ(static_cast<std::uint8_t>(trace_kind_from_name("bogus")), 0);
}

TEST(FlightRecorder, DumpTextFormat) {
  std::uint64_t now = 1234;
  FlightRecorder rec(4, TraceClock{&fake_now, &now});
  rec.record(TraceKind::kQueryTx, 3, 57);
  std::ostringstream os;
  rec.dump_text(os);
  EXPECT_EQ(os.str(), "1234 #0 query_tx a=3 b=57\n");
}

TEST(FlightRecorder, DumpToFileRoundTrips) {
  std::uint64_t now = 7;
  FlightRecorder rec(4, TraceClock{&fake_now, &now});
  rec.record(TraceKind::kRoundOpen, 11);
  rec.record(TraceKind::kRoundClose, 11, 2);

  const std::string path =
      testing::TempDir() + "/mmrfd_flight_recorder_test.trace";
  ASSERT_TRUE(rec.dump_to_file(path));
  std::ifstream is(path);
  std::stringstream content;
  content << is.rdbuf();
  std::ostringstream expected;
  rec.dump_text(expected);
  EXPECT_EQ(content.str(), expected.str());
  std::remove(path.c_str());

  EXPECT_FALSE(rec.dump_to_file("/nonexistent-dir-zz/x.trace"));
}

}  // namespace
}  // namespace mmrfd::obs
