// Unit tests for the obs metrics registry: histogram bucket math at every
// boundary, exact totals under concurrent writers, snapshot/merge algebra
// and the text/JSON emitters.
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace mmrfd::obs {
namespace {

// --- Histogram bucket layout -------------------------------------------------

TEST(HistogramBuckets, ValuesBelowLinearMaxAreExact) {
  for (std::uint64_t v = 0; v < Histogram::kLinearMax; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(Histogram::bucket_width(static_cast<std::uint32_t>(v)), 1u);
  }
}

TEST(HistogramBuckets, LowerBoundRoundTripsForEveryBucket) {
  for (std::uint32_t idx = 0; idx < Histogram::kBuckets; ++idx) {
    const std::uint64_t lower = Histogram::bucket_lower(idx);
    const std::uint64_t width = Histogram::bucket_width(idx);
    // Both edges of the bucket map back to it: [lower, lower + width - 1].
    EXPECT_EQ(Histogram::bucket_index(lower), idx) << "lower of " << idx;
    EXPECT_EQ(Histogram::bucket_index(lower + width - 1), idx)
        << "upper of " << idx;
  }
}

TEST(HistogramBuckets, BucketsTileTheRangeWithoutGaps) {
  // Each bucket ends exactly where the next begins (the last bucket's upper
  // edge is 2^64 - 1, checked via the round-trip test above).
  for (std::uint32_t idx = 0; idx + 1 < Histogram::kBuckets; ++idx) {
    EXPECT_EQ(Histogram::bucket_lower(idx) + Histogram::bucket_width(idx),
              Histogram::bucket_lower(idx + 1))
        << "gap after bucket " << idx;
  }
}

TEST(HistogramBuckets, IndexIsMonotoneAcrossOctaveEdges) {
  std::uint32_t prev = Histogram::bucket_index(0);
  for (std::uint32_t shift = 0; shift < 64; ++shift) {
    const std::uint64_t pow2 = std::uint64_t{1} << shift;
    for (const std::uint64_t v : {pow2 - 1, pow2, pow2 + 1}) {
      const std::uint32_t idx = Histogram::bucket_index(v);
      EXPECT_LT(idx, Histogram::kBuckets);
      EXPECT_GE(idx, Histogram::bucket_index(v == 0 ? 0 : v - 1));
      prev = std::max(prev, idx);
    }
  }
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(HistogramBuckets, RelativeWidthIsBoundedAboveLinearRange) {
  for (std::uint32_t idx = Histogram::kLinearMax; idx < Histogram::kBuckets;
       ++idx) {
    const std::uint64_t lower = Histogram::bucket_lower(idx);
    const std::uint64_t width = Histogram::bucket_width(idx);
    // 4 sub-buckets per octave: width is exactly lower/4 rounded to the
    // octave's granularity, so relative error is <= 25% of the lower bound.
    EXPECT_LE(width * 4, lower + 3) << "bucket " << idx;
  }
}

// --- Histogram observation ---------------------------------------------------

TEST(Histogram, ObserveTracksCountSumAndBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(5);
  h.observe(5);
  h.observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(5), 2u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(1000)), 1u);
}

TEST(HistogramSnapshot, PercentileInterpolatesWithinExactBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t");
  for (std::uint64_t v = 0; v < 16; ++v) h.observe(v);
  const RegistrySnapshot snap = reg.snapshot();
  const HistogramSnapshot* hs = snap.find_histogram("t");
  ASSERT_NE(hs, nullptr);
  EXPECT_DOUBLE_EQ(hs->percentile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(hs->percentile(0.0), 0.0);
  EXPECT_NEAR(hs->percentile(0.99), 15.84, 1e-9);
  EXPECT_DOUBLE_EQ(hs->percentile(1.0), 16.0);  // top of the last bucket
  EXPECT_DOUBLE_EQ(hs->mean(), 7.5);
}

TEST(HistogramSnapshot, PercentileOfEmptyIsZero) {
  HistogramSnapshot hs;
  EXPECT_DOUBLE_EQ(hs.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hs.mean(), 0.0);
}

// --- Registry ---------------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&reg.counter("y"), &a);
  EXPECT_EQ(&reg.gauge("x"), &reg.gauge("x"));  // separate namespace
  EXPECT_EQ(&reg.histogram("x"), &reg.histogram("x"));
}

TEST(MetricsRegistry, SnapshotIsSortedAndFindable) {
  MetricsRegistry reg;
  reg.counter("zeta").add(3);
  reg.counter("alpha").add(1);
  reg.gauge("mid").set(-7);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  EXPECT_EQ(snap.counter_value("zeta"), 3u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
  ASSERT_NE(snap.find_gauge("mid"), nullptr);
  EXPECT_EQ(snap.find_gauge("mid")->value, -7);
  EXPECT_EQ(snap.find_counter("mid"), nullptr);
}

TEST(MetricsRegistry, ConcurrentWritersProduceExactTotals) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Mix pre-resolved and by-name access: the registry lock only guards
      // name resolution, the instruments themselves are relaxed atomics.
      Counter& hot = reg.counter("hot");
      Histogram& lat = reg.histogram("lat");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hot.add(1);
        lat.observe(i % 64);
        if (i % 1024 == 0) reg.counter("cold." + std::to_string(t)).add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("hot"), kThreads * kPerThread);
  const HistogramSnapshot* lat = snap.find_histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto& [idx, c] : lat->buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, lat->count);
}

// --- Snapshot merge ----------------------------------------------------------

TEST(RegistrySnapshot, MergeSumsOverlappingAndKeepsDisjoint) {
  MetricsRegistry a;
  a.counter("shared").add(10);
  a.counter("only_a").add(1);
  a.gauge("g").set(5);
  a.histogram("h").observe(3);
  a.histogram("h").observe(100);

  MetricsRegistry b;
  b.counter("shared").add(32);
  b.counter("only_b").add(2);
  b.gauge("g").set(7);
  b.histogram("h").observe(3);

  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  EXPECT_EQ(merged.counter_value("shared"), 42u);
  EXPECT_EQ(merged.counter_value("only_a"), 1u);
  EXPECT_EQ(merged.counter_value("only_b"), 2u);
  EXPECT_EQ(merged.find_gauge("g")->value, 12);
  const HistogramSnapshot* h = merged.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum, 106u);
  ASSERT_EQ(h->buckets.size(), 2u);
  EXPECT_EQ(h->buckets[0].first, Histogram::bucket_index(3));
  EXPECT_EQ(h->buckets[0].second, 2u);  // one from each registry
}

TEST(RegistrySnapshot, MergeIntoEmptyIsIdentity) {
  MetricsRegistry reg;
  reg.counter("c").add(4);
  reg.histogram("h").observe(9);
  RegistrySnapshot empty;
  empty.merge(reg.snapshot());
  EXPECT_EQ(empty, reg.snapshot());
}

// --- serialization -----------------------------------------------------------

TEST(RegistrySnapshot, TextAndJsonCarryEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("rt.rounds").add(17);
  reg.gauge("udp.rcvbuf_bytes").set(4096);
  reg.histogram("rt.round_rtt_ns").observe(1500);
  const RegistrySnapshot snap = reg.snapshot();

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("rt.rounds 17"), std::string::npos);
  EXPECT_NE(text.find("udp.rcvbuf_bytes 4096"), std::string::npos);
  EXPECT_NE(text.find("rt.round_rtt_ns count=1"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"rt.rounds\":17"), std::string::npos);
  EXPECT_NE(json.find("\"udp.rcvbuf_bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RegistrySnapshot, JsonEscapesHostileNames) {
  MetricsRegistry reg;
  reg.counter("we\"ird\\name\n").add(1);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("we\\\"ird\\\\name\\u000a"), std::string::npos);
}

}  // namespace
}  // namespace mmrfd::obs
