// TraceAssembler unit suite: clock-skew recovery from synthetic rings with
// injected offsets, causal-order preservation, incarnation merging, the
// text/binary dump loaders (including torn fatal-signal dumps), filename
// parsing and the manifest round-trip.
#include "obs/trace_assembler.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/flight_recorder.h"

namespace mmrfd::obs {
namespace {

// Builds per-node synthetic rings for a cluster where node i's clock reads
// true_time + offset[i]. Each exchange(a, b, seq, t1, d_out, proc, d_back)
// plants the full causal quadruple: A's query tx, B's rx, B's response tx,
// A's response rx — all stamped through the nodes' skewed clocks.
class SyntheticCluster {
 public:
  explicit SyntheticCluster(std::vector<std::int64_t> offsets)
      : offsets_(std::move(offsets)), seqs_(offsets_.size(), 0) {}

  void exchange(std::uint32_t a, std::uint32_t b, std::uint32_t seq,
                std::uint64_t t1, std::uint64_t d_out, std::uint64_t proc,
                std::uint64_t d_back) {
    add(a, TraceKind::kQueryTxSeq, b, seq, t1);
    add(b, TraceKind::kQueryRx, a, seq, t1 + d_out);
    add(b, TraceKind::kResponseTxSeq, a, seq, t1 + d_out + proc);
    add(a, TraceKind::kResponseRxSeq, b, seq, t1 + d_out + proc + d_back);
  }

  void add(std::uint32_t node, TraceKind kind, std::uint32_t a,
           std::uint32_t b, std::uint64_t true_t) {
    TraceRecord r;
    r.t_ns = static_cast<std::uint64_t>(static_cast<std::int64_t>(true_t) +
                                        offsets_[node]);
    r.seq = seqs_[node]++;
    r.a = a;
    r.b = b;
    r.kind = kind;
    records_[node].push_back(r);
  }

  [[nodiscard]] TraceAssembler assembler(bool estimate_skew = true) const {
    AssemblerOptions options;
    options.n = static_cast<std::uint32_t>(offsets_.size());
    options.estimate_skew = estimate_skew;
    TraceAssembler out(options);
    for (std::uint32_t i = 0; i < offsets_.size(); ++i) {
      auto it = records_.find(i);
      out.add_node(TraceNodeInput{
          i, 0,
          it == records_.end() ? std::vector<TraceRecord>{} : it->second});
    }
    return out;
  }

 private:
  std::vector<std::int64_t> offsets_;
  std::vector<std::uint64_t> seqs_;
  std::map<std::uint32_t, std::vector<TraceRecord>> records_;
};

constexpr std::uint64_t kBase = 1'000'000'000;  // keep skewed stamps positive

TEST(TraceAssembler, RecoversInjectedOffsetsExactlyUnderSymmetricDelays) {
  // Symmetric one-way delays make the NTP midpoint estimate exact: the
  // recovered offsets must match the injected ones to the nanosecond.
  const std::vector<std::int64_t> offsets = {0, 5'000'000, -3'000'000};
  SyntheticCluster cluster(offsets);
  for (std::uint32_t s = 1; s <= 4; ++s) {
    const std::uint64_t t = kBase + s * 10'000'000ull;
    cluster.exchange(0, 1, s, t, 400'000, 50'000, 400'000);
    cluster.exchange(0, 2, s, t + 1000, 300'000, 50'000, 300'000);
    cluster.exchange(1, 2, s, t + 2000, 500'000, 50'000, 500'000);
  }
  const AssembledTrace trace = cluster.assembler().assemble();
  ASSERT_EQ(trace.skew.size(), 3u);
  EXPECT_EQ(trace.matched_pairs, 12u);
  EXPECT_EQ(trace.causal_violations, 0u);
  for (const SkewEstimate& s : trace.skew) {
    EXPECT_TRUE(s.reachable) << "node " << s.node;
    EXPECT_EQ(s.offset_ns, offsets[s.node]) << "node " << s.node;
  }
}

TEST(TraceAssembler, RecoversOffsetsWithinJitterUnderAsymmetricDelays) {
  // Asymmetric per-sample jitter bounds the midpoint error by half the
  // asymmetry; the min-RTT sample keeps the estimate inside that band, and
  // alignment must never reorder a matched tx -> rx pair (the error stays
  // far below the one-way delay floor).
  const std::vector<std::int64_t> offsets = {-2'000'000, 0, 7'000'000,
                                             -500'000};
  constexpr std::uint64_t kFloor = 500'000;   // one-way delay floor (ns)
  constexpr std::uint64_t kJitter = 200'000;  // worst per-leg extra delay
  SyntheticCluster cluster(offsets);
  Xoshiro256 rng(42);
  for (std::uint32_t s = 1; s <= 32; ++s) {
    const std::uint64_t t = kBase + s * 5'000'000ull;
    for (std::uint32_t a = 0; a < 4; ++a) {
      for (std::uint32_t b = 0; b < 4; ++b) {
        if (a == b) continue;
        const auto jit = [&] {
          return static_cast<std::uint64_t>(rng.next_double() *
                                            static_cast<double>(kJitter));
        };
        cluster.exchange(a, b, s, t + a * 1000 + b, kFloor + jit(), 20'000,
                         kFloor + jit());
      }
    }
  }
  const AssembledTrace trace = cluster.assembler().assemble();
  ASSERT_EQ(trace.skew.size(), 4u);
  EXPECT_EQ(trace.causal_violations, 0u);
  for (const SkewEstimate& s : trace.skew) {
    EXPECT_TRUE(s.reachable);
    // Estimates are relative to the reference (lowest-id) node's clock.
    EXPECT_NEAR(static_cast<double>(s.offset_ns),
                static_cast<double>(offsets[s.node] - offsets[0]),
                static_cast<double>(kJitter) / 2.0)
        << "node " << s.node;
  }
}

TEST(TraceAssembler, SlowDriftStaysWithinToleranceAndCausallyOrdered) {
  // A 50 ppm relative drift over a 2 s window moves the true offset by
  // 100 us end to end; the single recovered offset must land inside the
  // swept range and alignment must still respect every matched pair.
  SyntheticCluster cluster({0, 0});
  for (std::uint32_t s = 1; s <= 40; ++s) {
    const std::uint64_t t = kBase + s * 50'000'000ull;
    // Node 1's clock gains 50 ppm: its stamps carry a drift that grows with
    // true time, applied by hand to its two legs of each quadruple.
    const auto drift = static_cast<std::int64_t>((t - kBase) / 20'000);
    cluster.add(0, TraceKind::kQueryTxSeq, 1, s, t);
    cluster.add(1, TraceKind::kQueryRx, 0, s,
                t + 400'000 + static_cast<std::uint64_t>(drift));
    cluster.add(1, TraceKind::kResponseTxSeq, 0, s,
                t + 420'000 + static_cast<std::uint64_t>(drift));
    cluster.add(0, TraceKind::kResponseRxSeq, 1, s, t + 820'000);
  }
  const AssembledTrace trace = cluster.assembler().assemble();
  ASSERT_EQ(trace.skew.size(), 2u);
  EXPECT_EQ(trace.causal_violations, 0u);
  const std::int64_t recovered = trace.skew[1].offset_ns;
  EXPECT_GE(recovered, 0);
  EXPECT_LE(recovered, 100'000);  // within the swept drift range
}

TEST(TraceAssembler, ResentExchangesAreExcludedFromSkewMatching) {
  SyntheticCluster cluster({0, 0});
  cluster.exchange(0, 1, 1, kBase, 400'000, 50'000, 400'000);
  cluster.exchange(0, 1, 2, kBase + 10'000'000, 400'000, 50'000, 400'000);
  // Round 2's query was retransmitted: a second kQueryTxSeq with the same
  // (peer, seq) disqualifies the whole quadruple — which of the two sends
  // the rx answered is unknowable.
  cluster.add(0, TraceKind::kQueryTxSeq, 1, 2, kBase + 11'000'000);
  const AssembledTrace trace = cluster.assembler().assemble();
  EXPECT_EQ(trace.matched_pairs, 1u);
}

TEST(TraceAssembler, IncarnationsMergeInOrderNotBySeq) {
  // A re-exec'd node restarts its recorder: incarnation 1's sequence
  // numbers start over at 0. The merged stream must still put incarnation
  // 0 first — here g0 suspects the victim and g1 (fresh state) drops the
  // suspicion, so the node's final verdict is "not suspected". Merging by
  // seq alone would invert that.
  AssemblerOptions options;
  options.n = 2;
  options.estimate_skew = false;
  TraceAssembler assembler(options);
  TraceRecord add;
  add.t_ns = kBase;
  add.seq = 500;  // deep into incarnation 0's life
  add.a = 1;
  add.kind = TraceKind::kSuspectAdd;
  TraceRecord drop;
  drop.t_ns = kBase + 1'000'000;
  drop.seq = 3;  // early in incarnation 1's life
  drop.a = 1;
  drop.kind = TraceKind::kSuspectDrop;
  assembler.add_node(TraceNodeInput{0, 0, {add}});
  assembler.add_node(TraceNodeInput{0, 1, {drop}});
  assembler.add_crash(1, static_cast<std::int64_t>(kBase) - 1000);
  const AssembledTrace trace = assembler.assemble();
  ASSERT_EQ(trace.crashes.size(), 1u);
  EXPECT_EQ(trace.crashes[0].undetected, 1u);
  EXPECT_TRUE(trace.crashes[0].observers.empty());
}

TEST(TraceAssembler, BreakdownComponentsSumToLatencyExactly) {
  // Full detecting-round shape: round open after the crash, one resend
  // wave, quorum, then the suspicion. pacing + resend_wait + wire must
  // reproduce the latency to the nanosecond.
  SyntheticCluster cluster({0, 0});
  const std::int64_t crash = static_cast<std::int64_t>(kBase);
  cluster.add(0, TraceKind::kRoundOpen, 7, 0, kBase + 40'000'000);
  cluster.add(0, TraceKind::kResendWave, 1, 1, kBase + 90'000'000);
  cluster.add(0, TraceKind::kQuorum, 7, 3, kBase + 95'000'000);
  cluster.add(0, TraceKind::kSuspectAdd, 1, 0, kBase + 96'000'000);
  TraceAssembler assembler = cluster.assembler(false);
  assembler.add_crash(1, crash);
  const AssembledTrace trace = assembler.assemble();
  ASSERT_EQ(trace.crashes.size(), 1u);
  ASSERT_EQ(trace.crashes[0].observers.size(), 1u);
  const ObserverBreakdown& ob = trace.crashes[0].observers[0];
  EXPECT_EQ(ob.latency_ns, 96'000'000);
  EXPECT_EQ(ob.pacing_ns, 40'000'000 + 1'000'000);  // pre-open + post-quorum
  EXPECT_EQ(ob.resend_wait_ns, 50'000'000);
  EXPECT_EQ(ob.wire_ns, 5'000'000);
  EXPECT_EQ(ob.pacing_ns + ob.resend_wait_ns + ob.wire_ns, ob.latency_ns);
  EXPECT_EQ(ob.round_seq, 7u);
  EXPECT_EQ(ob.resend_waves, 1u);
}

// --- dump loaders ------------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("mmrfd_trace_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

std::uint64_t fixed_clock(const void*) { return 123'456'789; }

TEST(TraceLoader, TextAndBinaryDumpsRoundTrip) {
  TempDir dir;
  FlightRecorder recorder(16, TraceClock{&fixed_clock, nullptr});
  recorder.record(TraceKind::kRoundOpen, 1);
  recorder.record(TraceKind::kQueryTxSeq, 2, 1);
  recorder.record(TraceKind::kQuorum, 1, 5);
  recorder.record(TraceKind::kPeerRound, 3, 9);
  const auto expected = recorder.snapshot();

  ASSERT_TRUE(recorder.dump_to_file(dir.path("dump.trace")));
  ASSERT_TRUE(recorder.dump_binary_to_file(dir.path("dump.bin.trace")));
  const auto text = load_trace_records(dir.path("dump.trace"));
  const auto binary = load_trace_records(dir.path("dump.bin.trace"));
  ASSERT_TRUE(text.has_value());
  ASSERT_TRUE(binary.has_value());
  EXPECT_EQ(*text, expected);
  EXPECT_EQ(*binary, expected);
}

TEST(TraceLoader, BinaryLoaderDropsTornRecordsAndTruncatedTails) {
  TempDir dir;
  FlightRecorder recorder(8, TraceClock{&fixed_clock, nullptr});
  for (int i = 0; i < 6; ++i) recorder.record(TraceKind::kRoundOpen, i);
  ASSERT_TRUE(recorder.dump_binary_to_file(dir.path("full.trace")));

  // Truncate mid-record: the loader keeps every complete record.
  std::ifstream in(dir.path("full.trace"), std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::size_t cut = 24 + 3 * 29 + 11;  // header + 3 records + partial
  ASSERT_LT(cut, data.size());
  {
    std::ofstream out(dir.path("torn.trace"), std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(cut));
  }
  const auto torn = load_trace_records(dir.path("torn.trace"));
  ASSERT_TRUE(torn.has_value());
  EXPECT_EQ(torn->size(), 3u);

  // Corrupt one record's kind byte past kMaxTraceKind: dropped, not fatal.
  data[24 + 29 + 28] = static_cast<char>(200);
  {
    std::ofstream out(dir.path("corrupt.trace"), std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  const auto corrupt = load_trace_records(dir.path("corrupt.trace"));
  ASSERT_TRUE(corrupt.has_value());
  EXPECT_EQ(corrupt->size(), 5u);
}

TEST(TraceLoader, ParseTraceFilename) {
  const auto a = parse_trace_filename("node3.g2.bin.trace");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, 3u);
  EXPECT_EQ(a->second, 2u);
  const auto b = parse_trace_filename("node12.g0.bin.crash.trace");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 12u);
  EXPECT_EQ(b->second, 0u);
  EXPECT_FALSE(parse_trace_filename("foo.trace").has_value());
  EXPECT_FALSE(parse_trace_filename("node.g1.trace").has_value());
  EXPECT_FALSE(parse_trace_filename("node1g2.trace").has_value());
}

TEST(TraceManifestIo, RoundTrips) {
  TempDir dir;
  TraceManifest manifest;
  manifest.n = 8;
  manifest.origin_ns = 1'700'000'000'000'000'000ull;
  manifest.pacing_ns = 100'000'000;
  manifest.resend_ns = 500'000'000;
  manifest.crashes.push_back({7, 1'900'000'000, true});
  manifest.crashes.push_back({2, 2'500'000'000, false});
  manifest.traces.push_back({0, 0, "node0.g0.bin.trace"});
  manifest.traces.push_back({7, 1, "node7.g1.bin.crash.trace"});

  const std::string path = dir.path(std::string(kTraceManifestName));
  ASSERT_TRUE(write_manifest(path, manifest));
  const auto loaded = load_manifest(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->n, manifest.n);
  EXPECT_EQ(loaded->origin_ns, manifest.origin_ns);
  EXPECT_EQ(loaded->pacing_ns, manifest.pacing_ns);
  EXPECT_EQ(loaded->resend_ns, manifest.resend_ns);
  ASSERT_EQ(loaded->crashes.size(), 2u);
  EXPECT_EQ(loaded->crashes[0].victim, 7u);
  EXPECT_EQ(loaded->crashes[0].at_ns, 1'900'000'000);
  EXPECT_TRUE(loaded->crashes[0].restarted);
  EXPECT_FALSE(loaded->crashes[1].restarted);
  ASSERT_EQ(loaded->traces.size(), 2u);
  EXPECT_EQ(loaded->traces[1].node, 7u);
  EXPECT_EQ(loaded->traces[1].incarnation, 1u);
  EXPECT_EQ(loaded->traces[1].file, "node7.g1.bin.crash.trace");

  EXPECT_FALSE(load_manifest(dir.path("missing.txt")).has_value());
}

TEST(TraceAssemblerDir, AssemblesFromManifestAndToleratesMissingDumps) {
  TempDir dir;
  FlightRecorder recorder(16, TraceClock{&fixed_clock, nullptr});
  recorder.record(TraceKind::kSuspectAdd, 1);
  ASSERT_TRUE(recorder.dump_to_file(dir.path("node0.g0.bin.trace")));

  TraceManifest manifest;
  manifest.n = 2;
  manifest.traces.push_back({0, 0, "node0.g0.bin.trace"});
  manifest.traces.push_back({1, 0, "node1.g0.bin.trace"});  // never written
  manifest.crashes.push_back({1, 1000, false});
  ASSERT_TRUE(write_manifest(dir.path(std::string(kTraceManifestName)),
                             manifest));

  const auto trace = assemble_from_dir(dir.path(""), false);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->records, 1u);
  ASSERT_EQ(trace->crashes.size(), 1u);
  ASSERT_EQ(trace->crashes[0].observers.size(), 1u);
  EXPECT_EQ(trace->crashes[0].observers[0].observer, 0u);

  EXPECT_FALSE(assemble_from_dir(dir.path("nope")).has_value());
}

}  // namespace
}  // namespace mmrfd::obs
