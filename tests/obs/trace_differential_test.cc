// Differential certificate for the TraceAssembler: on fixed-seed simulated
// schedules, detection latencies reconstructed from the per-host flight
// rings must equal metrics::Analysis — the ground truth every experiment
// reports — EXACTLY, per (observer, crash). The simulator is the one place
// both pipelines see the same instants through the same clock, so any
// disagreement is an assembler bug, not noise. Only after passing this is
// the assembler trusted to attribute latency on live UDP dumps.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>

#include "metrics/analysis.h"
#include "obs/trace_assembler.h"
#include "runtime/cluster.h"
#include "runtime/crash_plan.h"

namespace mmrfd::runtime {
namespace {

struct Scenario {
  std::uint32_t n;
  std::uint32_t f;
  std::uint64_t seed;
  std::size_t crashes;
  bool delta;
};

void run_differential(const Scenario& sc) {
  MmrClusterConfig cfg;
  cfg.n = sc.n;
  cfg.f = sc.f;
  cfg.seed = sc.seed;
  cfg.pacing = from_millis(100);
  cfg.mean_delay = from_millis(1);
  cfg.delta_queries = sc.delta;
  // Large enough that nothing relevant is evicted within the horizon: the
  // ring is the assembler's only source.
  cfg.trace_capacity = 1u << 16;
  MmrCluster cluster(cfg);

  const Duration horizon = from_seconds(30);
  const auto plan = CrashPlan::uniform(sc.crashes, sc.n, from_seconds(3),
                                       from_seconds(12), sc.seed);
  cluster.start(plan);
  cluster.run_for(horizon);

  const metrics::Analysis analysis(cluster.log(), sc.n, horizon);

  obs::AssemblerOptions options;
  options.n = sc.n;
  options.estimate_skew = false;  // sim rings share the sim clock: identity
  obs::TraceAssembler assembler(options);
  for (std::uint32_t i = 0; i < sc.n; ++i) {
    obs::FlightRecorder* rec = cluster.trace(ProcessId{i});
    ASSERT_NE(rec, nullptr);
    assembler.add_node(obs::TraceNodeInput{i, 0, rec->snapshot()});
  }
  for (const metrics::CrashRecord& c : cluster.log().crashes()) {
    assembler.add_crash(c.subject.value, c.when.count());
  }
  const obs::AssembledTrace trace = assembler.assemble();

  // Identity alignment of one shared clock can never invert a causal pair.
  EXPECT_EQ(trace.causal_violations, 0u);
  EXPECT_GT(trace.matched_pairs, 0u);

  // Ground truth: (observer, subject) -> latency from Analysis.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> expected;
  std::map<std::uint32_t, std::size_t> expected_undetected;
  for (const metrics::Detection& d : analysis.detections()) {
    if (const auto latency = d.latency()) {
      expected[{d.observer.value, d.subject.value}] = latency->count();
    } else {
      ++expected_undetected[d.subject.value];
    }
  }

  ASSERT_EQ(trace.crashes.size(), cluster.log().crashes().size());
  std::size_t compared = 0;
  for (const obs::CrashTimeline& ct : trace.crashes) {
    for (const obs::ObserverBreakdown& ob : ct.observers) {
      const auto it = expected.find({ob.observer, ct.victim});
      ASSERT_NE(it, expected.end())
          << "assembler invented a detection: observer " << ob.observer
          << " of victim " << ct.victim;
      // THE property: trace-reconstructed latency equals Analysis exactly.
      EXPECT_EQ(ob.latency_ns, it->second)
          << "observer " << ob.observer << " victim " << ct.victim;
      // And the attribution is a true decomposition, not an approximation.
      EXPECT_EQ(ob.pacing_ns + ob.resend_wait_ns + ob.wire_ns, ob.latency_ns)
          << "observer " << ob.observer << " victim " << ct.victim;
      ++compared;
    }
    const auto und = expected_undetected.find(ct.victim);
    EXPECT_EQ(ct.undetected,
              und == expected_undetected.end() ? 0u : und->second)
        << "victim " << ct.victim;
    // stable_ns must be the max detect instant when everyone detected.
    if (ct.undetected == 0 && !ct.observers.empty()) {
      ASSERT_TRUE(ct.stable_ns.has_value());
      std::int64_t max_detect = ct.observers.front().detect_ns;
      for (const auto& ob : ct.observers) {
        max_detect = std::max(max_detect, ob.detect_ns);
      }
      EXPECT_EQ(*ct.stable_ns, max_detect);
    }
  }
  EXPECT_EQ(compared, expected.size() - [&] {
    std::size_t undetected = 0;
    for (const auto& [victim, count] : expected_undetected) {
      undetected += count;
    }
    return undetected;
  }());
}

TEST(TraceDifferential, MatchesAnalysisExactlyDeltaEncoding) {
  run_differential({10, 3, 7, 2, true});
}

TEST(TraceDifferential, MatchesAnalysisExactlyFullEncoding) {
  run_differential({10, 3, 7, 2, false});
}

TEST(TraceDifferential, MatchesAnalysisAcrossSeedsAndSizes) {
  for (const Scenario& sc : {Scenario{8, 2, 11, 1, true},
                             Scenario{12, 4, 23, 4, true},
                             Scenario{16, 5, 31, 3, false}}) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << sc.n << " f=" << sc.f << " seed=" << sc.seed
                 << " crashes=" << sc.crashes << " delta=" << sc.delta);
    run_differential(sc);
  }
}

TEST(TraceDifferential, SkewEstimationOnSharedClockStaysNearIdentity) {
  // Sanity for the estimator itself: run it ON over sim rings (true offsets
  // all zero). Whatever it estimates must stay tiny next to the pacing
  // period, and must not create causal inversions.
  MmrClusterConfig cfg;
  cfg.n = 8;
  cfg.f = 2;
  cfg.seed = 13;
  cfg.pacing = from_millis(100);
  cfg.mean_delay = from_millis(1);
  cfg.trace_capacity = 1u << 16;
  MmrCluster cluster(cfg);
  cluster.start();
  cluster.run_for(from_seconds(20));

  obs::AssemblerOptions options;
  options.n = 8;
  options.estimate_skew = true;
  obs::TraceAssembler assembler(options);
  for (std::uint32_t i = 0; i < 8; ++i) {
    assembler.add_node(
        obs::TraceNodeInput{i, 0, cluster.trace(ProcessId{i})->snapshot()});
  }
  const obs::AssembledTrace trace = assembler.assemble();
  EXPECT_EQ(trace.causal_violations, 0u);
  for (const obs::SkewEstimate& s : trace.skew) {
    EXPECT_TRUE(s.reachable) << "node " << s.node;
    // The midpoint error is bounded by the delay asymmetry of the min-RTT
    // sample — far under the 100 ms pacing period on a ~1 ms-delay network.
    EXPECT_LT(std::abs(s.offset_ns), 10'000'000) << "node " << s.node;
  }
}

}  // namespace
}  // namespace mmrfd::runtime
