// White-box tests of ConsensusProcess: each phase's send/receive behaviour,
// driven through a scripted transport with no network at all.
#include "consensus/chandra_toueg.h"

#include <gtest/gtest.h>

#include <deque>

namespace mmrfd::consensus {
namespace {

/// Records everything the process sends.
class ScriptedTransport final : public ConsensusTransport {
 public:
  struct Sent {
    bool broadcast{false};
    ProcessId to;  // valid when !broadcast
    ConsensusMessage msg;
  };
  std::vector<Sent> sent;

  void send(ProcessId to, ConsensusMessage msg) override {
    sent.push_back({false, to, std::move(msg)});
  }
  void broadcast(const ConsensusMessage& msg) override {
    sent.push_back({true, kNoProcess, msg});
  }

  /// Sent messages of type M, optionally filtered by unicast target.
  template <typename M>
  std::vector<M> of_type() const {
    std::vector<M> out;
    for (const auto& s : sent) {
      if (const auto* m = std::get_if<M>(&s.msg)) out.push_back(*m);
    }
    return out;
  }
};

class ScriptedFd final : public core::FailureDetector {
 public:
  std::vector<ProcessId> susp;
  std::vector<ProcessId> suspected() const override { return susp; }
  bool is_suspected(ProcessId id) const override {
    return std::find(susp.begin(), susp.end(), id) != susp.end();
  }
};

struct Fixture {
  sim::Simulation sim;
  ScriptedTransport transport;
  ScriptedFd fd;
  std::unique_ptr<ConsensusProcess> proc;

  Fixture(std::uint32_t self, std::uint32_t n, std::uint32_t offset = 0) {
    ConsensusConfig cfg;
    cfg.self = ProcessId{self};
    cfg.n = n;
    cfg.coordinator_offset = offset;
    proc = std::make_unique<ConsensusProcess>(sim, transport, cfg, fd);
  }
};

TEST(ConsensusUnit, ProposeSendsEstimateToRound1Coordinator) {
  Fixture f(/*self=*/2, /*n=*/5);
  f.proc->propose(42);
  const auto estimates = f.transport.of_type<EstimateMessage>();
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].round, 1u);
  EXPECT_EQ(estimates[0].value, 42u);
  EXPECT_EQ(estimates[0].ts, 0u);
  ASSERT_FALSE(f.transport.sent.empty());
  EXPECT_EQ(f.transport.sent[0].to, ProcessId{0});  // coordinator of round 1
}

TEST(ConsensusUnit, CoordinatorOffsetRotatesRound1Coordinator) {
  Fixture f(/*self=*/2, /*n=*/5, /*offset=*/3);
  f.proc->propose(42);
  ASSERT_FALSE(f.transport.sent.empty());
  EXPECT_EQ(f.transport.sent[0].to, ProcessId{3});
}

TEST(ConsensusUnit, CoordinatorProposesHighestTsEstimate) {
  // p0 is round-1 coordinator of a 5-process run; majority = 3 estimates.
  Fixture f(/*self=*/0, /*n=*/5);
  f.proc->propose(10);  // own estimate ts 0 (counts as one of the three)
  f.proc->deliver(ProcessId{1}, EstimateMessage{1, 77, 5});   // locked later
  EXPECT_TRUE(f.transport.of_type<ProposalMessage>().empty());
  f.proc->deliver(ProcessId{2}, EstimateMessage{1, 20, 2});
  const auto proposals = f.transport.of_type<ProposalMessage>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0].round, 1u);
  EXPECT_EQ(proposals[0].value, 77u);  // the ts-5 estimate wins
}

TEST(ConsensusUnit, ParticipantAcksProposalAndAdvances) {
  Fixture f(/*self=*/2, /*n=*/5);
  f.proc->propose(42);
  f.transport.sent.clear();
  f.proc->deliver(ProcessId{0}, ProposalMessage{1, 99});
  const auto acks = f.transport.of_type<AckMessage>();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].ack);
  EXPECT_EQ(acks[0].round, 1u);
  // Advanced to round 2: a fresh estimate goes to p1, carrying the adopted
  // value with ts = 1 (the lock).
  const auto estimates = f.transport.of_type<EstimateMessage>();
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].round, 2u);
  EXPECT_EQ(estimates[0].value, 99u);
  EXPECT_EQ(estimates[0].ts, 1u);
  EXPECT_EQ(f.proc->round(), 2u);
}

TEST(ConsensusUnit, SuspicionOfCoordinatorNacksAndAdvances) {
  Fixture f(/*self=*/2, /*n=*/5);
  f.proc->propose(42);
  f.transport.sent.clear();
  f.fd.susp = {ProcessId{0}};
  f.sim.run_for(from_millis(50));  // the FD poll notices
  const auto acks = f.transport.of_type<AckMessage>();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].ack);
  EXPECT_EQ(f.proc->round(), 2u);
  // Estimate for round 2 keeps the original value (nothing adopted).
  const auto estimates = f.transport.of_type<EstimateMessage>();
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].value, 42u);
  EXPECT_EQ(estimates[0].ts, 0u);
}

TEST(ConsensusUnit, CoordinatorDecidesOnMajorityAcks) {
  Fixture f(/*self=*/0, /*n=*/5);
  f.proc->propose(10);
  f.proc->deliver(ProcessId{1}, EstimateMessage{1, 10, 0});
  f.proc->deliver(ProcessId{2}, EstimateMessage{1, 10, 0});
  // Proposal broadcast; own ack is internal. Two remote acks = majority 3.
  f.proc->deliver(ProcessId{1}, AckMessage{1, true});
  EXPECT_FALSE(f.proc->decided());
  f.proc->deliver(ProcessId{2}, AckMessage{1, true});
  ASSERT_TRUE(f.proc->decided());
  EXPECT_EQ(f.proc->decision(), 10u);
  // DECIDE was broadcast (at least once; the decide() echo re-broadcasts).
  EXPECT_FALSE(f.transport.of_type<DecideMessage>().empty());
}

TEST(ConsensusUnit, NackMajorityMovesCoordinatorOn) {
  Fixture f(/*self=*/0, /*n=*/5);
  f.proc->propose(10);
  f.proc->deliver(ProcessId{1}, EstimateMessage{1, 10, 0});
  f.proc->deliver(ProcessId{2}, EstimateMessage{1, 10, 0});
  f.proc->deliver(ProcessId{1}, AckMessage{1, false});
  f.proc->deliver(ProcessId{2}, AckMessage{1, false});
  EXPECT_FALSE(f.proc->decided());
  EXPECT_EQ(f.proc->round(), 2u);  // gave up on round 1
}

TEST(ConsensusUnit, DecideMessageShortCircuits) {
  Fixture f(/*self=*/3, /*n=*/5);
  f.proc->propose(42);
  f.proc->deliver(ProcessId{4}, DecideMessage{123});
  ASSERT_TRUE(f.proc->decided());
  EXPECT_EQ(f.proc->decision(), 123u);
  // Reliable-broadcast echo.
  EXPECT_EQ(f.transport.of_type<DecideMessage>().size(), 1u);
  // Further messages are ignored.
  f.proc->deliver(ProcessId{0}, ProposalMessage{1, 7});
  EXPECT_EQ(f.proc->decision(), 123u);
}

TEST(ConsensusUnit, MessagesBeforeProposeAreBuffered) {
  Fixture f(/*self=*/0, /*n=*/5);
  // Estimates arrive before this process proposes (it lags behind peers).
  f.proc->deliver(ProcessId{1}, EstimateMessage{1, 50, 0});
  f.proc->deliver(ProcessId{2}, EstimateMessage{1, 50, 0});
  EXPECT_TRUE(f.transport.of_type<ProposalMessage>().empty());
  f.proc->propose(10);  // own estimate completes the majority
  const auto proposals = f.transport.of_type<ProposalMessage>();
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0].value, 50u);  // ts tie: first-max wins (p1's)
}

TEST(ConsensusUnit, CrashStopsAllActivity) {
  Fixture f(/*self=*/2, /*n=*/5);
  f.proc->propose(42);
  f.proc->crash();
  f.transport.sent.clear();
  f.proc->deliver(ProcessId{0}, ProposalMessage{1, 99});
  f.sim.run_for(from_millis(100));
  EXPECT_TRUE(f.transport.sent.empty());
  EXPECT_FALSE(f.proc->decided());
}

TEST(ConsensusUnit, DecidedAtTimestampRecorded) {
  Fixture f(/*self=*/3, /*n=*/5);
  f.proc->propose(42);
  f.sim.run_for(from_millis(30));
  f.proc->deliver(ProcessId{4}, DecideMessage{1});
  ASSERT_TRUE(f.proc->decided_at().has_value());
  EXPECT_EQ(*f.proc->decided_at(), from_millis(30));
}

}  // namespace
}  // namespace mmrfd::consensus
