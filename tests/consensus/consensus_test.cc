// Consensus tests: safety (validity, agreement) must hold on every seed and
// every detector quality; termination needs a <>S-quality detector.
#include "consensus/chandra_toueg.h"

#include <gtest/gtest.h>

#include "consensus/harness.h"

namespace mmrfd::consensus {
namespace {

std::vector<Value> iota_proposals(std::uint32_t n) {
  std::vector<Value> out;
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(100 + i);
  return out;
}

HarnessConfig base(std::uint32_t n, std::uint32_t f, FdKind fd,
                   std::uint64_t seed) {
  HarnessConfig c;
  c.n = n;
  c.f = f;
  c.fd = fd;
  c.seed = seed;
  return c;
}

TEST(Consensus, FailureFreePerfectFdDecidesRoundOne) {
  ConsensusHarness h(base(5, 2, FdKind::kPerfect, 1));
  h.start(iota_proposals(5));
  ASSERT_TRUE(h.run_until_decided(from_seconds(10)));
  const auto v = h.agreed_value();
  ASSERT_TRUE(v.has_value());
  // Round 1's coordinator is p0; with max-ts tie it picks some proposal.
  EXPECT_GE(*v, 100u);
  EXPECT_LE(*v, 104u);
  // The decision happens in round 1; participants may already have stepped
  // into round 2's wait while the DECIDE broadcast was in flight.
  EXPECT_LE(h.max_round(), 2u);
}

TEST(Consensus, ValidityDecidedValueWasProposed) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ConsensusHarness h(base(5, 2, FdKind::kMmr, seed));
    h.start(iota_proposals(5));
    ASSERT_TRUE(h.run_until_decided(from_seconds(30))) << "seed " << seed;
    const auto v = h.agreed_value();
    ASSERT_TRUE(v.has_value()) << "seed " << seed;
    EXPECT_GE(*v, 100u);
    EXPECT_LE(*v, 104u);
  }
}

TEST(Consensus, AgreementWithMmrFdAndCrashes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = base(7, 3, FdKind::kMmr, seed);
    ConsensusHarness h(cfg);
    // Crash f processes (never p0: the engineered MP witness keeps the FD
    // accurate; crashing it is legal but slows termination).
    const auto plan = runtime::CrashPlan::uniform(
        3, 7, from_millis(20), from_seconds(2), seed,
        std::vector<ProcessId>{ProcessId{0}});
    h.start(iota_proposals(7), plan);
    ASSERT_TRUE(h.run_until_decided(from_seconds(60))) << "seed " << seed;
    EXPECT_TRUE(h.agreed_value().has_value()) << "seed " << seed;
  }
}

TEST(Consensus, CoordinatorCrashForcesLaterRound) {
  // p0 (round-1 coordinator) crashes immediately: decision needs round >= 2.
  auto cfg = base(5, 1, FdKind::kPerfect, 3);
  ConsensusHarness h(cfg);
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{0}, from_millis(1)});
  h.start(iota_proposals(5), plan);
  ASSERT_TRUE(h.run_until_decided(from_seconds(10)));
  EXPECT_TRUE(h.agreed_value().has_value());
  EXPECT_GE(h.max_round(), 2u);
}

TEST(Consensus, TerminatesWithHeartbeatFd) {
  ConsensusHarness h(base(5, 2, FdKind::kHeartbeat, 4));
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{1}, from_millis(10)});
  h.start(iota_proposals(5), plan);
  ASSERT_TRUE(h.run_until_decided(from_seconds(30)));
  EXPECT_TRUE(h.agreed_value().has_value());
}

TEST(Consensus, TerminatesWithPhiAccrualFd) {
  ConsensusHarness h(base(5, 2, FdKind::kPhiAccrual, 5));
  h.start(iota_proposals(5));
  ASSERT_TRUE(h.run_until_decided(from_seconds(30)));
  EXPECT_TRUE(h.agreed_value().has_value());
}

TEST(Consensus, SafetyHoldsEvenWithWildlyWrongTimeouts) {
  // A pathologically tight heartbeat timeout produces constant false
  // suspicions. Termination may take many rounds — but any decisions made
  // must still agree (the FD can delay consensus, never corrupt it).
  auto cfg = base(5, 2, FdKind::kHeartbeat, 6);
  cfg.hb_timeout = from_millis(8);  // ~ mean one-way delay: mostly expired
  cfg.mean_delay = from_millis(5);
  ConsensusHarness h(cfg);
  h.start(iota_proposals(5));
  (void)h.run_until_decided(from_seconds(20));
  std::optional<Value> seen;
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto& p = h.process(ProcessId{i});
    if (!p.decided()) continue;
    if (seen) {
      EXPECT_EQ(*seen, p.decision());
    }
    seen = p.decision();
    EXPECT_GE(p.decision(), 100u);
    EXPECT_LE(p.decision(), 104u);
  }
}

TEST(Consensus, AllSameProposalDecidesThatValue) {
  ConsensusHarness h(base(5, 2, FdKind::kMmr, 7));
  const std::vector<Value> proposals(5, 42);
  h.start(proposals);
  ASSERT_TRUE(h.run_until_decided(from_seconds(30)));
  const auto v = h.agreed_value();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);
}

TEST(Consensus, DecisionTimesRecorded) {
  ConsensusHarness h(base(5, 2, FdKind::kPerfect, 8));
  h.start(iota_proposals(5));
  ASSERT_TRUE(h.run_until_decided(from_seconds(10)));
  const auto t = h.last_decision_at();
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, kTimeZero);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(h.process(ProcessId{i}).decided_at().has_value());
  }
}

TEST(Consensus, ParameterizedSeedsNeverViolateAgreement) {
  // Property sweep across seeds and detector kinds.
  for (FdKind kind : {FdKind::kPerfect, FdKind::kMmr, FdKind::kHeartbeat}) {
    for (std::uint64_t seed = 10; seed < 16; ++seed) {
      auto cfg = base(5, 2, kind, seed);
      ConsensusHarness h(cfg);
      const auto plan = runtime::CrashPlan::uniform(
          1, 5, from_millis(10), from_seconds(1), seed,
          std::vector<ProcessId>{ProcessId{0}});
      h.start(iota_proposals(5), plan);
      (void)h.run_until_decided(from_seconds(30));
      std::optional<Value> seen;
      for (std::uint32_t i = 0; i < 5; ++i) {
        const auto& p = h.process(ProcessId{i});
        if (!p.decided()) continue;
        if (seen) {
          EXPECT_EQ(*seen, p.decision())
              << fd_kind_name(kind) << " seed " << seed;
        }
        seen = p.decision();
      }
    }
  }
}

}  // namespace
}  // namespace mmrfd::consensus
