// Replicated-log (repeated consensus) properties: total order, integrity,
// liveness — across seeds, crashes and detector qualities.
#include "consensus/replicated_log.h"

#include <gtest/gtest.h>

#include <set>

#include "net/delay_model.h"

namespace mmrfd::consensus {
namespace {

/// Ground-truth failure detector shared by all replicas in these tests (the
/// detector itself is exercised by the consensus/FD suites; here the object
/// under test is the log machinery).
class OracleFd final : public core::FailureDetector {
 public:
  std::vector<bool> crashed;
  explicit OracleFd(std::uint32_t n) : crashed(n, false) {}
  std::vector<ProcessId> suspected() const override {
    std::vector<ProcessId> out;
    for (std::uint32_t i = 0; i < crashed.size(); ++i) {
      if (crashed[i]) out.push_back(ProcessId{i});
    }
    return out;
  }
  bool is_suspected(ProcessId id) const override {
    return crashed.at(id.value);
  }
};

struct LogFixture {
  sim::Simulation sim;
  LogNetwork net;
  OracleFd fd;
  std::vector<std::unique_ptr<ReplicatedLog>> replicas;

  explicit LogFixture(std::uint32_t n, std::uint64_t seed = 1)
      : net(sim, net::Topology::full(n),
            std::make_unique<net::ExponentialDelay>(from_millis(1),
                                                    from_millis(2)),
            seed),
        fd(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      ReplicatedLogConfig cfg;
      cfg.self = ProcessId{i};
      cfg.n = n;
      replicas.push_back(
          std::make_unique<ReplicatedLog>(sim, net, cfg, fd));
    }
  }

  void start_all() {
    for (auto& r : replicas) r->start();
  }

  void crash(std::uint32_t i) {
    replicas[i]->crash();
    fd.crashed[i] = true;
  }

  /// Non-noop entries of replica i's log.
  std::vector<Value> commands(std::uint32_t i) const {
    std::vector<Value> out;
    for (Value v : replicas[i]->log()) {
      if (v != kNoop) out.push_back(v);
    }
    return out;
  }
};

TEST(ReplicatedLog, SingleCommandReachesEveryLog) {
  LogFixture f(5);
  f.start_all();
  const Value cmd = make_command(ProcessId{2}, 0);
  f.replicas[2]->submit(cmd);
  f.sim.run_for(from_seconds(2));
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto cmds = f.commands(i);
    ASSERT_EQ(cmds.size(), 1u) << "replica " << i;
    EXPECT_EQ(cmds[0], cmd);
  }
}

TEST(ReplicatedLog, LogsAreIdenticalAcrossReplicas) {
  LogFixture f(5);
  f.start_all();
  for (std::uint32_t r = 0; r < 5; ++r) {
    for (std::uint32_t k = 0; k < 4; ++k) {
      f.replicas[r]->submit(make_command(ProcessId{r}, k));
    }
  }
  f.sim.run_for(from_seconds(10));
  // All replicas progressed through the same slots with identical values
  // over the common prefix.
  const auto& log0 = f.replicas[0]->log();
  EXPECT_GE(log0.size(), 20u);  // 20 commands somewhere in the slots
  for (std::uint32_t i = 1; i < 5; ++i) {
    const auto& logi = f.replicas[i]->log();
    const std::size_t common = std::min(log0.size(), logi.size());
    for (std::size_t s = 0; s < common; ++s) {
      ASSERT_EQ(log0[s], logi[s]) << "slot " << s << " replica " << i;
    }
  }
}

TEST(ReplicatedLog, NoCommandDecidedTwice) {
  LogFixture f(5, 7);
  f.start_all();
  for (std::uint32_t r = 0; r < 5; ++r) {
    for (std::uint32_t k = 0; k < 5; ++k) {
      f.replicas[r]->submit(make_command(ProcessId{r}, k));
    }
  }
  f.sim.run_for(from_seconds(15));
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto cmds = f.commands(i);
    const std::set<Value> uniq(cmds.begin(), cmds.end());
    EXPECT_EQ(uniq.size(), cmds.size()) << "duplicate command at replica " << i;
  }
}

TEST(ReplicatedLog, AllSubmittedCommandsEventuallyDecided) {
  LogFixture f(5, 3);
  f.start_all();
  std::set<Value> submitted;
  for (std::uint32_t r = 0; r < 5; ++r) {
    for (std::uint32_t k = 0; k < 3; ++k) {
      const Value cmd = make_command(ProcessId{r}, k);
      submitted.insert(cmd);
      f.replicas[r]->submit(cmd);
    }
  }
  f.sim.run_for(from_seconds(20));
  const auto cmds = f.commands(0);
  const std::set<Value> decided(cmds.begin(), cmds.end());
  EXPECT_EQ(decided, submitted);
  for (std::uint32_t r = 0; r < 5; ++r) {
    EXPECT_EQ(f.replicas[r]->pending(), 0u) << "replica " << r;
  }
}

TEST(ReplicatedLog, SurvivesMinorityCrashes) {
  LogFixture f(5, 9);
  f.start_all();
  for (std::uint32_t r = 0; r < 5; ++r) {
    f.replicas[r]->submit(make_command(ProcessId{r}, 0));
  }
  f.sim.run_for(from_seconds(1));
  f.crash(0);  // includes the slot coordinator role for many rounds
  f.crash(4);
  for (std::uint32_t k = 1; k < 4; ++k) {
    f.replicas[2]->submit(make_command(ProcessId{2}, k));
  }
  f.sim.run_for(from_seconds(20));
  // The three survivors agree and include p2's later commands.
  const auto c1 = f.commands(1);
  const auto c2 = f.commands(2);
  const auto c3 = f.commands(3);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c2, c3);
  for (std::uint32_t k = 1; k < 4; ++k) {
    EXPECT_NE(std::find(c2.begin(), c2.end(), make_command(ProcessId{2}, k)),
              c2.end());
  }
}

TEST(ReplicatedLog, CommandsSubmittedMidRunAreAppended) {
  LogFixture f(4, 11);
  f.start_all();
  f.sim.run_for(from_seconds(2));  // no-op slots accumulate
  const Value late = make_command(ProcessId{3}, 0);
  f.replicas[3]->submit(late);
  f.sim.run_for(from_seconds(5));
  const auto cmds = f.commands(0);
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0], late);
}

TEST(ReplicatedLog, SlotsAdvanceWithoutTraffic) {
  // Idle replicas still seal no-op slots (lock-step instances keep
  // turning); next_slot grows on every replica.
  LogFixture f(3, 13);
  f.start_all();
  f.sim.run_for(from_seconds(3));
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_GT(f.replicas[i]->next_slot(), 10u);
  }
}

}  // namespace
}  // namespace mmrfd::consensus
