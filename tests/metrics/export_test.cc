#include "metrics/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/analysis.h"
#include "runtime/cluster.h"

namespace mmrfd::metrics {
namespace {

runtime::MmrCluster make_run() {
  runtime::MmrClusterConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  cfg.seed = 3;
  cfg.pacing = from_millis(100);
  return runtime::MmrCluster(cfg);
}

TEST(Export, EventsCsvHasHeaderAndRows) {
  auto cluster = make_run();
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{2}, from_seconds(1)});
  cluster.start(plan);
  cluster.run_for(from_seconds(5));
  std::ostringstream os;
  export_events_csv(cluster.log(), os);
  const auto text = os.str();
  EXPECT_EQ(text.rfind("when_s,observer,subject,kind,tag\n", 0), 0u);
  EXPECT_NE(text.find(",suspected,"), std::string::npos);
  // One CSV line per event plus header.
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines),
            cluster.log().events().size() + 1);
}

TEST(Export, CrashesCsv) {
  auto cluster = make_run();
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{2}, from_seconds(1)});
  cluster.start(plan);
  cluster.run_for(from_seconds(3));
  std::ostringstream os;
  export_crashes_csv(cluster.log(), os);
  EXPECT_EQ(os.str(), "subject,when_s\n2,1\n");
}

TEST(Export, QueriesCsvListsWinningSets) {
  auto cluster = make_run();
  cluster.start();
  cluster.run_for(from_seconds(2));
  std::ostringstream os;
  export_queries_csv(cluster.recorder(), os);
  const auto text = os.str();
  EXPECT_EQ(text.rfind("issuer,seq,terminated_s,winning\n", 0), 0u);
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines),
            cluster.recorder().records().size() + 1);
  // Winning sets are ';'-joined: quorum 4 -> three separators on some row.
  EXPECT_NE(text.find(';'), std::string::npos);
}

TEST(Export, JsonlIsOneObjectPerLine) {
  auto cluster = make_run();
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{1}, from_seconds(1)});
  cluster.start(plan);
  cluster.run_for(from_seconds(4));
  std::ostringstream os;
  export_jsonl(cluster.log(), &cluster.recorder(), os);
  const auto text = os.str();
  std::istringstream in(text);
  std::string line;
  std::size_t objects = 0;
  bool saw_crash = false;
  bool saw_query = false;
  bool saw_susp = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++objects;
    if (line.find("\"type\":\"crash\"") != std::string::npos) saw_crash = true;
    if (line.find("\"type\":\"query\"") != std::string::npos) saw_query = true;
    if (line.find("\"type\":\"suspicion\"") != std::string::npos) {
      saw_susp = true;
    }
  }
  EXPECT_EQ(objects, cluster.log().events().size() +
                         cluster.log().crashes().size() +
                         cluster.recorder().records().size());
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_susp);
}

TEST(ArbitraryPacing, JitteredRunsRemainCorrect) {
  // The paper's "finite but arbitrary" inter-query time: with 90% jitter,
  // completeness and accuracy still hold.
  runtime::MmrClusterConfig cfg;
  cfg.n = 8;
  cfg.f = 2;
  cfg.seed = 5;
  cfg.pacing = from_millis(100);
  cfg.pacing_jitter = 0.9;
  runtime::MmrCluster cluster(cfg);
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{4}, from_seconds(2)});
  cluster.start(plan);
  cluster.run_for(from_seconds(20));
  Analysis analysis(cluster.log(), 8, from_seconds(20));
  EXPECT_TRUE(analysis.strong_completeness());
}

TEST(ArbitraryPacing, JitterChangesScheduleButNotDeterminism) {
  auto rounds_digest = [](double jitter) {
    runtime::MmrClusterConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = 9;
    cfg.pacing = from_millis(100);
    cfg.pacing_jitter = jitter;
    runtime::MmrCluster cluster(cfg);
    cluster.start();
    cluster.run_for(from_seconds(5));
    std::ostringstream os;
    for (std::uint32_t i = 0; i < 4; ++i) {
      os << cluster.host(ProcessId{i}).detector().rounds_completed() << ',';
    }
    return os.str();
  };
  EXPECT_EQ(rounds_digest(0.5), rounds_digest(0.5));  // deterministic
  EXPECT_NE(rounds_digest(0.0), rounds_digest(0.5));  // jitter has effect
}

}  // namespace
}  // namespace mmrfd::metrics
