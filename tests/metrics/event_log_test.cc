// EventLog retention modes: the per-pair rollup state machine, its
// equivalence with the full-stream Analysis on a real cluster run, and the
// memory bound that justifies rollup mode at n = 10,000.
#include "metrics/event_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "metrics/analysis.h"
#include "runtime/cluster.h"
#include "runtime/crash_plan.h"
#include "sim/simulation.h"

namespace mmrfd::metrics {
namespace {

// Builds a log by hand, advancing a private simulation's clock via events.
class LogBuilder {
 public:
  explicit LogBuilder(LogMode mode = LogMode::kFull) : log_(sim_, mode) {}

  LogBuilder& at(TimePoint t) {
    sim_.schedule_at(t, [] {});
    sim_.run_until(t);
    return *this;
  }
  LogBuilder& suspect(std::uint32_t obs, std::uint32_t subj) {
    log_.record(ProcessId{obs}, ProcessId{subj},
                SuspicionEventKind::kSuspected, 0);
    return *this;
  }
  LogBuilder& clear(std::uint32_t obs, std::uint32_t subj) {
    log_.record(ProcessId{obs}, ProcessId{subj}, SuspicionEventKind::kCleared,
                0);
    return *this;
  }
  LogBuilder& mistake(std::uint32_t obs, std::uint32_t subj) {
    log_.record(ProcessId{obs}, ProcessId{subj}, SuspicionEventKind::kMistake,
                0);
    return *this;
  }
  EventLog& log() { return log_; }

 private:
  sim::Simulation sim_;
  EventLog log_;
};

TEST(EventLogRollup, TracksEpisodesAndFinalInterval) {
  LogBuilder b(LogMode::kRollup);
  // Two suspicion episodes of (0, 1): the first repaired at t=2, the second
  // open at the end; one mistake entry along the way.
  b.at(from_seconds(1)).suspect(0, 1);
  b.at(from_seconds(2)).clear(0, 1).mistake(0, 1);
  b.at(from_seconds(5)).suspect(0, 1);

  const auto pairs = b.log().rollup();
  ASSERT_EQ(pairs.size(), 1u);
  const auto& p = pairs[0];
  EXPECT_TRUE(p.open);
  EXPECT_EQ(p.open_since, from_seconds(5));
  EXPECT_EQ(p.last_clear, from_seconds(2));
  EXPECT_EQ(p.episodes, 2u);
  EXPECT_EQ(p.mistakes, 1u);
}

TEST(EventLogRollup, RedundantTransitionsDoNotInflateEpisodes) {
  LogBuilder b(LogMode::kRollup);
  // Double-suspect keeps the original open_since; clear without an open
  // interval is a no-op (mirrors Analysis, which only closes open ones).
  b.at(from_seconds(1)).clear(0, 1);
  b.at(from_seconds(2)).suspect(0, 1);
  b.at(from_seconds(3)).suspect(0, 1);

  const auto pairs = b.log().rollup();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].episodes, 1u);
  EXPECT_EQ(pairs[0].open_since, from_seconds(2));
  EXPECT_EQ(pairs[0].last_clear, kTimeZero);
}

TEST(EventLogRollup, SortedByObserverThenSubject) {
  LogBuilder b(LogMode::kRollup);
  b.at(from_seconds(1)).suspect(2, 0).suspect(0, 2).suspect(0, 1);
  const auto pairs = b.log().rollup();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].observer, ProcessId{0});
  EXPECT_EQ(pairs[0].subject, ProcessId{1});
  EXPECT_EQ(pairs[1].observer, ProcessId{0});
  EXPECT_EQ(pairs[1].subject, ProcessId{2});
  EXPECT_EQ(pairs[2].observer, ProcessId{2});
  EXPECT_EQ(pairs[2].subject, ProcessId{0});
}

TEST(EventLogRollup, FullModeMaintainsTheSamePairState) {
  // The rollup is mode-independent: a full-mode log must produce the exact
  // pair summaries a rollup-mode log does for the same transition stream.
  auto feed = [](LogBuilder& b) {
    b.at(from_seconds(1)).suspect(0, 1).suspect(1, 0);
    b.at(from_seconds(2)).clear(0, 1);
    b.at(from_seconds(4)).suspect(0, 1).mistake(1, 0);
  };
  LogBuilder full(LogMode::kFull);
  LogBuilder rolled(LogMode::kRollup);
  feed(full);
  feed(rolled);

  const auto a = full.log().rollup();
  const auto r = rolled.log().rollup();
  ASSERT_EQ(a.size(), r.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].observer, r[i].observer);
    EXPECT_EQ(a[i].subject, r[i].subject);
    EXPECT_EQ(a[i].open, r[i].open);
    EXPECT_EQ(a[i].open_since, r[i].open_since);
    EXPECT_EQ(a[i].last_clear, r[i].last_clear);
    EXPECT_EQ(a[i].episodes, r[i].episodes);
    EXPECT_EQ(a[i].mistakes, r[i].mistakes);
  }
  // But only full mode retains the stream itself.
  EXPECT_EQ(full.log().events().size(), 5u);
  EXPECT_TRUE(rolled.log().events().empty());
  EXPECT_EQ(full.log().entries(), 5u);
  EXPECT_EQ(rolled.log().entries(), r.size());
}

// One real deployment, analyzed both ways: the rollup summary must agree
// with the full-stream Analysis on every headline metric. The spike plus
// crashes generate both wrongful-suspicion churn and real detections.
TEST(EventLogRollup, SummaryMatchesFullStreamAnalysisOnClusterRun) {
  constexpr Duration kHorizon = from_seconds(12);
  runtime::MmrClusterConfig cfg;
  cfg.n = 30;
  cfg.f = 7;
  cfg.seed = 7;
  cfg.pacing = from_millis(1000);
  cfg.pacing_jitter = 0.1;
  // Spike delays (1 ms mean x 2000 = ~2 s) overrun the pacing window, so
  // responses land after the next query and wrongful suspicions open.
  cfg.spike = runtime::SpikeSpec{from_seconds(4), from_seconds(5), 2000.0, {}};
  const auto plan = runtime::CrashPlan::uniform(4, cfg.n, from_seconds(2),
                                                from_seconds(6), cfg.seed);

  runtime::MmrCluster cluster(cfg);  // kFull: both views from ONE run
  cluster.start(plan);
  cluster.run_for(kHorizon);

  const Analysis analysis(cluster.log(), cfg.n, kHorizon);
  const RollupSummary summary = summarize_rollup(
      cluster.log().rollup(), cluster.log().crashes(), cfg.n);

  // Detection latencies: identical sample multisets (clamped at zero).
  std::vector<double> from_stream;
  for (const auto& d : analysis.detections()) {
    if (auto lat = d.latency()) {
      from_stream.push_back(std::max(0.0, to_seconds(*lat)));
    }
  }
  std::sort(from_stream.begin(), from_stream.end());
  std::vector<double> from_rollup = summary.detection_latencies.samples();
  std::sort(from_rollup.begin(), from_rollup.end());
  ASSERT_FALSE(from_stream.empty());
  EXPECT_EQ(from_stream, from_rollup);

  // Completeness.
  EXPECT_EQ(analysis.strong_completeness(), summary.strong_completeness);
  if (summary.completeness_latency) {
    double worst = 0.0;
    for (const auto& s : analysis.crash_summaries()) {
      ASSERT_TRUE(s.completeness_latency.has_value());
      worst = std::max(worst, to_seconds(*s.completeness_latency));
    }
    EXPECT_DOUBLE_EQ(worst, *summary.completeness_latency);
  }

  // Wrongful suspicions: every episode between two correct processes.
  EXPECT_EQ(analysis.false_suspicions().size(), summary.false_suspicions);
  EXPECT_GT(summary.false_suspicions, 0u) << "spike produced no churn";

  // Cleanliness: last wrongful repair, unset while any pair is stuck open.
  const auto clean_stream = analysis.full_accuracy_stabilization();
  ASSERT_EQ(clean_stream.has_value(), summary.clean_at.has_value());
  if (clean_stream) {
    EXPECT_DOUBLE_EQ(to_seconds(*clean_stream), *summary.clean_at);
  }
}

TEST(EventLogRollup, MemoryStaysBoundedWhereFullModeGrows) {
  // Same deployment in both modes; full retention grows with the event
  // count, the rollup is capped by the pair count regardless of run length.
  runtime::MmrClusterConfig cfg;
  cfg.n = 20;
  cfg.f = 5;
  cfg.seed = 3;
  cfg.pacing = from_millis(100);  // dense rounds
  // A long spike pushing delays (~0.5 s) past the pacing keeps suspicion
  // churn running for ~100 rounds — the full stream grows with run length.
  cfg.spike =
      runtime::SpikeSpec{from_seconds(2), from_seconds(12), 500.0, {}};

  runtime::MmrCluster full(cfg);
  full.start(runtime::CrashPlan::none());
  full.run_for(from_seconds(20));

  cfg.log_mode = LogMode::kRollup;
  runtime::MmrCluster rolled(cfg);
  rolled.start(runtime::CrashPlan::none());
  rolled.run_for(from_seconds(20));

  EXPECT_TRUE(rolled.log().events().empty());
  // At most n*n ordered pairs can ever exist (a node can transiently
  // suspect itself when its own response misses the pacing window).
  const std::size_t max_pairs = static_cast<std::size_t>(cfg.n) * cfg.n;
  EXPECT_LE(rolled.log().entries(), max_pairs);
  EXPECT_GT(full.log().entries(), 10 * max_pairs)
      << "full log too small for the bound to be meaningful";
  EXPECT_LT(rolled.log().approx_retained_bytes(),
            full.log().approx_retained_bytes() / 10);

  // Identical runs modulo retention: the pair summaries agree exactly.
  const auto a = full.log().rollup();
  const auto b = rolled.log().rollup();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].observer, b[i].observer);
    EXPECT_EQ(a[i].subject, b[i].subject);
    EXPECT_EQ(a[i].episodes, b[i].episodes);
    EXPECT_EQ(a[i].open_since, b[i].open_since);
  }
}

}  // namespace
}  // namespace mmrfd::metrics
