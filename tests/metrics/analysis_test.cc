#include "metrics/analysis.h"

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/table.h"
#include "sim/simulation.h"

namespace mmrfd::metrics {
namespace {

// Builds a log by hand, advancing a private simulation's clock via events.
class LogBuilder {
 public:
  LogBuilder() : log_(sim_) {}

  LogBuilder& at(TimePoint t) {
    sim_.schedule_at(t, [] {});
    sim_.run_until(t);
    return *this;
  }
  LogBuilder& suspect(std::uint32_t obs, std::uint32_t subj) {
    log_.record(ProcessId{obs}, ProcessId{subj},
                SuspicionEventKind::kSuspected, 0);
    return *this;
  }
  LogBuilder& clear(std::uint32_t obs, std::uint32_t subj) {
    log_.record(ProcessId{obs}, ProcessId{subj}, SuspicionEventKind::kCleared,
                0);
    return *this;
  }
  LogBuilder& crash(std::uint32_t subj) {
    log_.record_crash(ProcessId{subj});
    return *this;
  }
  EventLog& log() { return log_; }

 private:
  sim::Simulation sim_;
  EventLog log_;
};

TEST(Analysis, CorrectAndFaultySets) {
  LogBuilder b;
  b.at(from_seconds(1)).crash(2);
  Analysis a(b.log(), 4, from_seconds(10));
  EXPECT_EQ(a.faulty(), std::vector<ProcessId>{ProcessId{2}});
  EXPECT_EQ(a.correct(),
            (std::vector<ProcessId>{ProcessId{0}, ProcessId{1}, ProcessId{3}}));
}

TEST(Analysis, DetectionLatencyFromFinalSuspicion) {
  LogBuilder b;
  // p1 falsely suspects p2 early, clears it, then p2 crashes and is
  // permanently suspected: detection time counts from the *final* interval.
  b.at(from_seconds(1)).suspect(1, 2);
  b.at(from_seconds(2)).clear(1, 2);
  b.at(from_seconds(5)).crash(2);
  b.at(from_seconds(7)).suspect(1, 2);
  Analysis a(b.log(), 3, from_seconds(10));
  const auto ds = a.detections();
  ASSERT_EQ(ds.size(), 2u);  // observers p0 (never detects) and p1
  const auto& d1 = ds[0].observer == ProcessId{1} ? ds[0] : ds[1];
  const auto& d0 = ds[0].observer == ProcessId{0} ? ds[0] : ds[1];
  ASSERT_TRUE(d1.latency().has_value());
  EXPECT_EQ(*d1.latency(), from_seconds(2));
  EXPECT_FALSE(d0.latency().has_value());
}

TEST(Analysis, CrashSummaryCompleteness) {
  LogBuilder b;
  b.at(from_seconds(5)).crash(2);
  b.at(from_seconds(6)).suspect(0, 2);
  b.at(from_seconds(8)).suspect(1, 2);
  Analysis a(b.log(), 3, from_seconds(10));
  const auto ss = a.crash_summaries();
  ASSERT_EQ(ss.size(), 1u);
  EXPECT_EQ(ss[0].observers, 2u);
  EXPECT_EQ(ss[0].detected_by, 2u);
  ASSERT_TRUE(ss[0].completeness_latency.has_value());
  EXPECT_EQ(*ss[0].completeness_latency, from_seconds(3));
  EXPECT_TRUE(a.strong_completeness());
}

TEST(Analysis, IncompleteDetectionBreaksCompleteness) {
  LogBuilder b;
  b.at(from_seconds(5)).crash(2);
  b.at(from_seconds(6)).suspect(0, 2);  // p1 never suspects
  Analysis a(b.log(), 3, from_seconds(10));
  EXPECT_FALSE(a.strong_completeness());
}

TEST(Analysis, FalseSuspicionsOnlyCountCorrectPairs) {
  LogBuilder b;
  b.at(from_seconds(1)).crash(3);
  b.at(from_seconds(2)).suspect(0, 3);  // subject faulty: not false
  b.at(from_seconds(3)).suspect(0, 1);  // false
  b.at(from_seconds(4)).clear(0, 1);
  Analysis a(b.log(), 4, from_seconds(10));
  const auto fs = a.false_suspicions();
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].observer, ProcessId{0});
  EXPECT_EQ(fs[0].subject, ProcessId{1});
  ASSERT_TRUE(fs[0].cleared_at.has_value());
  EXPECT_EQ(*fs[0].cleared_at, from_seconds(4));
}

TEST(Analysis, UnclearedFalseSuspicionReported) {
  LogBuilder b;
  b.at(from_seconds(3)).suspect(0, 1);
  Analysis a(b.log(), 2, from_seconds(10));
  const auto fs = a.false_suspicions();
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_FALSE(fs[0].cleared_at.has_value());
  // p1 is stuck-suspected, but p0 itself is never suspected, so eventual
  // weak accuracy still stabilizes (witness p0, from time zero).
  const auto t = a.accuracy_stabilization();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, kTimeZero);
}

TEST(Analysis, AccuracyStabilizationPicksCleanProcess) {
  LogBuilder b;
  b.at(from_seconds(3)).suspect(0, 1);
  b.at(from_seconds(6)).clear(0, 1);
  Analysis a(b.log(), 3, from_seconds(10));
  const auto t = a.accuracy_stabilization();
  ASSERT_TRUE(t.has_value());
  // p0 and p2 are never suspected: stabilization at time zero.
  EXPECT_EQ(*t, kTimeZero);
}

TEST(Analysis, FalseSuspicionSeriesStepsUpAndDown) {
  LogBuilder b;
  b.at(from_seconds(1)).suspect(0, 1).suspect(2, 1);
  b.at(from_seconds(2)).clear(0, 1);
  b.at(from_seconds(3)).clear(2, 1);
  Analysis a(b.log(), 3, from_seconds(10));
  const auto series = a.false_suspicion_series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].active, 2);
  EXPECT_EQ(series[1].active, 1);
  EXPECT_EQ(series[2].active, 0);
}

TEST(Table, AlignedOutputContainsHeadersAndCells) {
  Table t({"n", "detector", "latency"});
  t.add_row({"10", "mmr", Table::num(1.234, 2)});
  t.add_row({"100", "heartbeat", Table::num(2.0, 2)});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("detector"), std::string::npos);
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("heartbeat"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace mmrfd::metrics
