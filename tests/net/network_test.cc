#include "net/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "sim/simulation.h"

namespace mmrfd::net {
namespace {

using Msg = std::variant<int, std::string>;
using TestNetwork = Network<Msg>;

struct Fixture {
  sim::Simulation sim;
  TestNetwork net;

  explicit Fixture(std::size_t n, std::unique_ptr<DelayModel> delays =
                                      std::make_unique<ConstantDelay>(
                                          from_millis(1)))
      : net(sim, Topology::full(n), std::move(delays), /*seed=*/1) {}
};

TEST(Network, DeliversAfterDelay) {
  Fixture f(2);
  std::optional<int> got;
  TimePoint at{};
  f.net.set_handler(ProcessId{1}, [&](ProcessId from, const Msg& m) {
    EXPECT_EQ(from, ProcessId{0});
    got = std::get<int>(m);
    at = f.sim.now();
  });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{7});
  f.sim.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  EXPECT_EQ(at, from_millis(1));
}

TEST(Network, BroadcastReachesAllButSender) {
  Fixture f(5);
  int deliveries = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    f.net.set_handler(ProcessId{i},
                      [&](ProcessId, const Msg&) { ++deliveries; });
  }
  f.net.broadcast(ProcessId{2}, Msg{1});
  f.sim.run_all();
  EXPECT_EQ(deliveries, 4);
  EXPECT_EQ(f.net.stats().messages_sent, 4u);
  EXPECT_EQ(f.net.stats().messages_delivered, 4u);
}

TEST(Network, CrashedReceiverDropsDelivery) {
  Fixture f(2);
  bool delivered = false;
  f.net.set_handler(ProcessId{1},
                    [&](ProcessId, const Msg&) { delivered = true; });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});
  f.net.crash(ProcessId{1});  // crash while the message is in flight
  f.sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(f.net.stats().messages_dropped_crash, 1u);
}

TEST(Network, LossRateDropsApproximately) {
  Fixture f(2);
  int delivered = 0;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) { ++delivered; });
  f.net.set_loss_rate(0.5);
  for (int i = 0; i < 2000; ++i) {
    f.net.send(ProcessId{0}, ProcessId{1}, Msg{i});
  }
  f.sim.run_all();
  EXPECT_GT(delivered, 800);
  EXPECT_LT(delivered, 1200);
  EXPECT_EQ(delivered + static_cast<int>(f.net.stats().messages_dropped_loss),
            2000);
}

TEST(Network, SizeFnAccumulatesBytes) {
  Fixture f(2);
  f.net.set_handler(ProcessId{1}, [](ProcessId, const Msg&) {});
  f.net.set_size_fn([](const Msg&) { return std::size_t{10}; });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{2});
  EXPECT_EQ(f.net.stats().bytes_sent, 20u);
}

TEST(Network, VariantAlternativesBothDeliver) {
  Fixture f(2);
  int ints = 0;
  int strings = 0;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg& m) {
    if (std::holds_alternative<int>(m)) {
      ++ints;
    } else {
      ++strings;
    }
  });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{std::string("hi")});
  f.sim.run_all();
  EXPECT_EQ(ints, 1);
  EXPECT_EQ(strings, 1);
}

TEST(Network, RandomDelaysAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    TestNetwork net(sim, Topology::full(2),
                    std::make_unique<ExponentialDelay>(from_millis(1),
                                                       from_millis(5)),
                    seed);
    std::vector<TimePoint> arrivals;
    net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) {
      arrivals.push_back(sim.now());
    });
    for (int i = 0; i < 20; ++i) net.send(ProcessId{0}, ProcessId{1}, Msg{i});
    sim.run_all();
    return arrivals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Network, BroadcastSkipsCrashedRecipients) {
  Fixture f(5);
  std::vector<std::uint32_t> receivers;
  for (std::uint32_t i = 0; i < 5; ++i) {
    f.net.set_handler(ProcessId{i}, [&receivers, i](ProcessId, const Msg&) {
      receivers.push_back(i);
    });
  }
  f.net.crash(ProcessId{3});
  f.net.broadcast(ProcessId{0}, Msg{7});
  f.sim.run_all();
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<std::uint32_t>{1, 2, 4}));
  // The send still counts (the sender cannot know), the delivery is dropped.
  EXPECT_EQ(f.net.stats().messages_sent, 4u);
  EXPECT_EQ(f.net.stats().messages_delivered, 3u);
  EXPECT_EQ(f.net.stats().messages_dropped_crash, 1u);
}

TEST(Network, BroadcastStatsAndScheduleMatchPerSendPath) {
  // The shared-payload broadcast must be observationally identical to a
  // send() loop: same stats, same per-recipient delay draws, same arrival
  // times — so the refactor cannot shift any fixed-seed experiment.
  auto run = [](bool use_broadcast) {
    sim::Simulation sim;
    TestNetwork net(sim, Topology::full(6),
                    std::make_unique<ExponentialDelay>(from_millis(1),
                                                       from_millis(5)),
                    /*seed=*/9);
    net.set_size_fn([](const Msg& m) {
      return std::holds_alternative<int>(m) ? std::size_t{8}
                                            : std::get<std::string>(m).size();
    });
    std::vector<std::pair<std::uint32_t, TimePoint>> arrivals;
    for (std::uint32_t i = 0; i < 6; ++i) {
      net.set_handler(ProcessId{i}, [&arrivals, &sim, i](ProcessId,
                                                         const Msg&) {
        arrivals.emplace_back(i, sim.now());
      });
    }
    for (int round = 0; round < 10; ++round) {
      if (use_broadcast) {
        net.broadcast(ProcessId{2}, Msg{round});
      } else {
        for (ProcessId to : net.topology().neighbors(ProcessId{2})) {
          net.send(ProcessId{2}, to, Msg{round});
        }
      }
      sim.run_all();
    }
    return std::tuple{arrivals, net.stats().messages_sent,
                      net.stats().bytes_sent, net.stats().messages_delivered};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Network, BroadcastSharesOnePayloadAcrossRecipients) {
  Fixture f(4);
  // Record the payload's address and content *at delivery time* (the shared
  // payload dies with its last delivery event, so it must not be touched
  // after run_all()).
  std::vector<const void*> addresses;
  std::vector<std::string> contents;
  for (std::uint32_t i = 1; i < 4; ++i) {
    f.net.set_handler(ProcessId{i}, [&](ProcessId, const Msg& m) {
      addresses.push_back(&m);
      contents.push_back(std::get<std::string>(m));
    });
  }
  f.net.broadcast(ProcessId{0}, Msg{std::string("shared")});
  f.sim.run_all();
  ASSERT_EQ(addresses.size(), 3u);
  // All three handlers observed the same immutable payload object.
  EXPECT_EQ(addresses[0], addresses[1]);
  EXPECT_EQ(addresses[1], addresses[2]);
  for (const auto& c : contents) EXPECT_EQ(c, "shared");
}

TEST(Network, DuplicateRateDeliversTwiceAndCounts) {
  Fixture f(2);
  int delivered = 0;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) { ++delivered; });
  f.net.set_duplicate_rate(0.5);
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) {
    f.net.send(ProcessId{0}, ProcessId{1}, Msg{i});
  }
  f.sim.run_all();
  const auto& st = f.net.stats();
  EXPECT_EQ(st.messages_sent, static_cast<std::uint64_t>(sent));
  // Every duplication coin that landed produced exactly one extra delivery.
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            st.messages_sent + st.messages_duplicated);
  EXPECT_GT(st.messages_duplicated, 800u);
  EXPECT_LT(st.messages_duplicated, 1200u);
}

TEST(Network, BroadcastHonoursDuplicateRate) {
  Fixture f(3);
  int delivered = 0;
  for (std::uint32_t i = 1; i < 3; ++i) {
    f.net.set_handler(ProcessId{i},
                      [&](ProcessId, const Msg&) { ++delivered; });
  }
  f.net.set_duplicate_rate(0.5);
  for (int round = 0; round < 500; ++round) {
    f.net.broadcast(ProcessId{0}, Msg{round});
  }
  f.sim.run_all();
  const auto& st = f.net.stats();
  EXPECT_EQ(st.messages_sent, 1000u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            st.messages_sent + st.messages_duplicated);
  EXPECT_GT(st.messages_duplicated, 400u);
}

TEST(Network, BroadcastRvalueConsumesMessage) {
  Fixture f(3);
  int delivered = 0;
  for (std::uint32_t i = 1; i < 3; ++i) {
    f.net.set_handler(ProcessId{i}, [&](ProcessId, const Msg& m) {
      EXPECT_EQ(std::get<std::string>(m), "moved payload");
      ++delivered;
    });
  }
  f.net.broadcast(ProcessId{0}, Msg{std::string("moved payload")});
  f.sim.run_all();
  EXPECT_EQ(delivered, 2);
}

TEST(Network, SparseTopologyRestrictsBroadcast) {
  sim::Simulation sim;
  TestNetwork net(sim, Topology::ring(5),
                  std::make_unique<ConstantDelay>(from_millis(1)), 1);
  std::vector<std::uint32_t> receivers;
  for (std::uint32_t i = 0; i < 5; ++i) {
    net.set_handler(ProcessId{i},
                    [&receivers, i](ProcessId, const Msg&) {
                      receivers.push_back(i);
                    });
  }
  net.broadcast(ProcessId{0}, Msg{1});
  sim.run_all();
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<std::uint32_t>{1, 4}));
}

TEST(Network, BlockedLinkIsDirected) {
  Fixture f(3);
  int to_1 = 0;
  int to_0 = 0;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) { ++to_1; });
  f.net.set_handler(ProcessId{0}, [&](ProcessId, const Msg&) { ++to_0; });
  f.net.block_link(ProcessId{0}, ProcessId{1});
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});  // blocked direction
  f.net.send(ProcessId{1}, ProcessId{0}, Msg{2});  // reverse stays up
  f.net.send(ProcessId{2}, ProcessId{1}, Msg{3});  // other senders unaffected
  f.sim.run_all();
  EXPECT_EQ(to_1, 1);  // only p2's message
  EXPECT_EQ(to_0, 1);
  EXPECT_EQ(f.net.stats().messages_dropped_partition, 1u);

  f.net.heal_link(ProcessId{0}, ProcessId{1});
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{4});
  f.sim.run_all();
  EXPECT_EQ(to_1, 2);
}

TEST(Network, LinkFlapDropsOnlyInsideWindow) {
  Fixture f(2);
  int delivered = 0;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) { ++delivered; });
  f.net.add_link_flap(ProcessId{0}, ProcessId{1}, from_millis(10),
                      from_millis(20));
  // Before the flap: goes through.
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});
  f.sim.run_until(from_millis(12));
  // Inside [down, up): dropped at send time.
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{2});
  f.sim.run_until(from_millis(20));
  // At `up` the link is back ([down, up) is half-open).
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{3});
  f.sim.run_all();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(f.net.stats().messages_dropped_partition, 1u);
}

TEST(Network, ReorderingOnlyAddsDelayAndCounts) {
  // The reorder knob stretches a sampled fraction of deliveries by up to
  // the window — it may only ever ADD delay (the sharded engine's
  // conservative time windows assume min_delay is a lower bound).
  Fixture f(2);
  std::vector<TimePoint> arrivals;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) {
    arrivals.push_back(f.sim.now());
  });
  f.net.set_reorder(0.5, from_millis(30));
  for (int i = 0; i < 200; ++i) {
    f.net.send(ProcessId{0}, ProcessId{1}, Msg{i});
  }
  f.sim.run_all();
  ASSERT_EQ(arrivals.size(), 200u);
  const auto& s = f.net.stats();
  EXPECT_GT(s.messages_reordered, 50u);
  EXPECT_LT(s.messages_reordered, 150u);
  for (const TimePoint t : arrivals) {
    EXPECT_GE(t, from_millis(1));                   // never below min delay
    EXPECT_LE(t, from_millis(1) + from_millis(30));  // bounded stretch
  }
}

TEST(Network, ReorderDeterministicPerSeedAndOffByDefault) {
  const auto arrival_trace = [](double rate) {
    sim::Simulation sim;
    TestNetwork net(sim, Topology::full(2),
                    std::make_unique<ConstantDelay>(from_millis(1)),
                    /*seed=*/42);
    if (rate > 0.0) net.set_reorder(rate, from_millis(10));
    std::vector<TimePoint> arrivals;
    net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) {
      arrivals.push_back(sim.now());
    });
    for (int i = 0; i < 100; ++i) {
      net.send(ProcessId{0}, ProcessId{1}, Msg{i});
    }
    sim.run_all();
    return arrivals;
  };
  // Same seed, same schedule — the fault RNG is its own stream.
  EXPECT_EQ(arrival_trace(0.3), arrival_trace(0.3));
  // Knob off: no draws, bit-identical to the pre-fault-layer schedule
  // (every arrival at exactly the constant delay).
  for (const TimePoint t : arrival_trace(0.0)) {
    EXPECT_EQ(t, from_millis(1));
  }
}

}  // namespace
}  // namespace mmrfd::net
