#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "sim/simulation.h"

namespace mmrfd::net {
namespace {

using Msg = std::variant<int, std::string>;
using TestNetwork = Network<Msg>;

struct Fixture {
  sim::Simulation sim;
  TestNetwork net;

  explicit Fixture(std::size_t n, std::unique_ptr<DelayModel> delays =
                                      std::make_unique<ConstantDelay>(
                                          from_millis(1)))
      : net(sim, Topology::full(n), std::move(delays), /*seed=*/1) {}
};

TEST(Network, DeliversAfterDelay) {
  Fixture f(2);
  std::optional<int> got;
  TimePoint at{};
  f.net.set_handler(ProcessId{1}, [&](ProcessId from, const Msg& m) {
    EXPECT_EQ(from, ProcessId{0});
    got = std::get<int>(m);
    at = f.sim.now();
  });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{7});
  f.sim.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  EXPECT_EQ(at, from_millis(1));
}

TEST(Network, BroadcastReachesAllButSender) {
  Fixture f(5);
  int deliveries = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    f.net.set_handler(ProcessId{i},
                      [&](ProcessId, const Msg&) { ++deliveries; });
  }
  f.net.broadcast(ProcessId{2}, Msg{1});
  f.sim.run_all();
  EXPECT_EQ(deliveries, 4);
  EXPECT_EQ(f.net.stats().messages_sent, 4u);
  EXPECT_EQ(f.net.stats().messages_delivered, 4u);
}

TEST(Network, CrashedReceiverDropsDelivery) {
  Fixture f(2);
  bool delivered = false;
  f.net.set_handler(ProcessId{1},
                    [&](ProcessId, const Msg&) { delivered = true; });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});
  f.net.crash(ProcessId{1});  // crash while the message is in flight
  f.sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(f.net.stats().messages_dropped_crash, 1u);
}

TEST(Network, LossRateDropsApproximately) {
  Fixture f(2);
  int delivered = 0;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) { ++delivered; });
  f.net.set_loss_rate(0.5);
  for (int i = 0; i < 2000; ++i) {
    f.net.send(ProcessId{0}, ProcessId{1}, Msg{i});
  }
  f.sim.run_all();
  EXPECT_GT(delivered, 800);
  EXPECT_LT(delivered, 1200);
  EXPECT_EQ(delivered + static_cast<int>(f.net.stats().messages_dropped_loss),
            2000);
}

TEST(Network, SizeFnAccumulatesBytes) {
  Fixture f(2);
  f.net.set_handler(ProcessId{1}, [](ProcessId, const Msg&) {});
  f.net.set_size_fn([](const Msg&) { return std::size_t{10}; });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{2});
  EXPECT_EQ(f.net.stats().bytes_sent, 20u);
}

TEST(Network, VariantAlternativesBothDeliver) {
  Fixture f(2);
  int ints = 0;
  int strings = 0;
  f.net.set_handler(ProcessId{1}, [&](ProcessId, const Msg& m) {
    if (std::holds_alternative<int>(m)) {
      ++ints;
    } else {
      ++strings;
    }
  });
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{1});
  f.net.send(ProcessId{0}, ProcessId{1}, Msg{std::string("hi")});
  f.sim.run_all();
  EXPECT_EQ(ints, 1);
  EXPECT_EQ(strings, 1);
}

TEST(Network, RandomDelaysAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    TestNetwork net(sim, Topology::full(2),
                    std::make_unique<ExponentialDelay>(from_millis(1),
                                                       from_millis(5)),
                    seed);
    std::vector<TimePoint> arrivals;
    net.set_handler(ProcessId{1}, [&](ProcessId, const Msg&) {
      arrivals.push_back(sim.now());
    });
    for (int i = 0; i < 20; ++i) net.send(ProcessId{0}, ProcessId{1}, Msg{i});
    sim.run_all();
    return arrivals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Network, SparseTopologyRestrictsBroadcast) {
  sim::Simulation sim;
  TestNetwork net(sim, Topology::ring(5),
                  std::make_unique<ConstantDelay>(from_millis(1)), 1);
  std::vector<std::uint32_t> receivers;
  for (std::uint32_t i = 0; i < 5; ++i) {
    net.set_handler(ProcessId{i},
                    [&receivers, i](ProcessId, const Msg&) {
                      receivers.push_back(i);
                    });
  }
  net.broadcast(ProcessId{0}, Msg{1});
  sim.run_all();
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<std::uint32_t>{1, 4}));
}

}  // namespace
}  // namespace mmrfd::net
