#include "net/topology.h"

#include <gtest/gtest.h>

namespace mmrfd::net {
namespace {

TEST(Topology, FullMeshDegrees) {
  const auto t = Topology::full(6);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.min_degree(), 5u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(t.neighbors(ProcessId{i}).size(), 5u);
    EXPECT_FALSE(t.are_neighbors(ProcessId{i}, ProcessId{i}));
  }
  EXPECT_TRUE(t.are_neighbors(ProcessId{0}, ProcessId{5}));
}

TEST(Topology, RingDegreesAndAdjacency) {
  const auto t = Topology::ring(5);
  EXPECT_EQ(t.min_degree(), 2u);
  EXPECT_TRUE(t.are_neighbors(ProcessId{0}, ProcessId{4}));
  EXPECT_TRUE(t.are_neighbors(ProcessId{0}, ProcessId{1}));
  EXPECT_FALSE(t.are_neighbors(ProcessId{0}, ProcessId{2}));
}

TEST(Topology, StarCentredAtZero) {
  const auto t = Topology::star(5);
  EXPECT_EQ(t.neighbors(ProcessId{0}).size(), 4u);
  EXPECT_EQ(t.neighbors(ProcessId{3}).size(), 1u);
  EXPECT_TRUE(t.are_neighbors(ProcessId{0}, ProcessId{3}));
  EXPECT_FALSE(t.are_neighbors(ProcessId{1}, ProcessId{2}));
}

TEST(Topology, SymmetricAdjacency) {
  const auto t = Topology::random_connected(20, 0.2, 7);
  for (std::uint32_t i = 0; i < 20; ++i) {
    for (ProcessId j : t.neighbors(ProcessId{i})) {
      EXPECT_TRUE(t.are_neighbors(j, ProcessId{i}));
    }
  }
}

TEST(Topology, RandomConnectedIsConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(Topology::random_connected(30, 0.05, seed).connected());
  }
}

TEST(Topology, FromEdges) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {
      {0, 1}, {1, 2}};
  const auto t = Topology::from_edges(4, edges);
  EXPECT_TRUE(t.are_neighbors(ProcessId{0}, ProcessId{1}));
  EXPECT_FALSE(t.are_neighbors(ProcessId{0}, ProcessId{2}));
  EXPECT_FALSE(t.connected());  // node 3 isolated
}

TEST(Topology, ConnectivityChecks) {
  EXPECT_TRUE(Topology::full(5).connected());
  EXPECT_TRUE(Topology::ring(5).connected());
}

TEST(Topology, KVertexConnectivityFullMesh) {
  // K_n is (n-1)-connected.
  const auto t = Topology::full(5);
  EXPECT_TRUE(t.k_vertex_connected(1));
  EXPECT_TRUE(t.k_vertex_connected(2));
  EXPECT_TRUE(t.k_vertex_connected(3));
}

TEST(Topology, KVertexConnectivityRing) {
  // A cycle is 2-connected but not 3-connected.
  const auto t = Topology::ring(6);
  EXPECT_TRUE(t.k_vertex_connected(1));
  EXPECT_FALSE(t.k_vertex_connected(2));
}

TEST(Topology, KVertexConnectivityStar) {
  // Removing the hub disconnects a star.
  const auto t = Topology::star(5);
  EXPECT_FALSE(t.k_vertex_connected(1));
}

TEST(Topology, DuplicateEdgesIgnored) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {
      {0, 1}, {0, 1}, {1, 0}};
  const auto t = Topology::from_edges(2, edges);
  EXPECT_EQ(t.neighbors(ProcessId{0}).size(), 1u);
}

}  // namespace
}  // namespace mmrfd::net
