#include "net/delay_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace mmrfd::net {
namespace {

constexpr ProcessId kA{0};
constexpr ProcessId kB{1};

TEST(ConstantDelay, AlwaysSame) {
  ConstantDelay m(from_millis(3));
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(m.sample(kA, kB, kTimeZero, rng), from_millis(3));
  }
}

TEST(UniformDelay, WithinBounds) {
  UniformDelay m(from_millis(1), from_millis(5));
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto d = m.sample(kA, kB, kTimeZero, rng);
    EXPECT_GE(d, from_millis(1));
    EXPECT_LT(d, from_millis(5));
  }
}

TEST(ExponentialDelay, RespectsBaseAndMean) {
  ExponentialDelay m(from_millis(2), from_millis(4));
  Xoshiro256 rng(3);
  mmrfd::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const auto d = m.sample(kA, kB, kTimeZero, rng);
    EXPECT_GE(d, from_millis(2));
    stats.add(to_seconds(d));
  }
  EXPECT_NEAR(stats.mean(), 0.006, 0.0002);  // 2ms base + 4ms mean extra
}

TEST(LogNormalDelay, AboveBase) {
  LogNormalDelay m(from_millis(1), from_millis(2), 0.8);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(m.sample(kA, kB, kTimeZero, rng), from_millis(1));
  }
}

TEST(ParetoDelay, BoundedAboveByCap) {
  ParetoDelay m(from_millis(1), from_millis(1), 1.5, from_millis(100));
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto d = m.sample(kA, kB, kTimeZero, rng);
    EXPECT_GE(d, from_millis(2));             // base + x_min
    EXPECT_LE(d, from_millis(101));           // base + cap
  }
}

TEST(FastSetDelay, ScalesOnlyFastSenders) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(10));
  FastSetDelay m(std::move(inner), {kA}, 0.1);
  Xoshiro256 rng(6);
  EXPECT_EQ(m.sample(kA, kB, kTimeZero, rng), from_millis(1));
  EXPECT_EQ(m.sample(kB, kA, kTimeZero, rng), from_millis(10));
}

TEST(FastSetDelay, BothDirectionsScalesEitherEndpoint) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(10));
  FastSetDelay m(std::move(inner), {kA}, 0.1,
                 FastSetDelay::Scope::kBothDirections);
  Xoshiro256 rng(6);
  EXPECT_EQ(m.sample(kA, kB, kTimeZero, rng), from_millis(1));
  EXPECT_EQ(m.sample(kB, kA, kTimeZero, rng), from_millis(1));
  const ProcessId c{2};
  EXPECT_EQ(m.sample(kB, c, kTimeZero, rng), from_millis(10));
}

TEST(SpikeDelay, AppliesOnlyDuringWindow) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(2));
  SpikeDelay m(std::move(inner), from_millis(100), from_millis(200), 5.0);
  Xoshiro256 rng(7);
  EXPECT_EQ(m.sample(kA, kB, from_millis(50), rng), from_millis(2));
  EXPECT_EQ(m.sample(kA, kB, from_millis(150), rng), from_millis(10));
  EXPECT_EQ(m.sample(kA, kB, from_millis(200), rng), from_millis(2));
}

TEST(SpikeDelay, AffectedSetFilters) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(2));
  SpikeDelay m(std::move(inner), kTimeZero, from_millis(100), 5.0, {kA});
  Xoshiro256 rng(8);
  EXPECT_EQ(m.sample(kA, kB, from_millis(50), rng), from_millis(10));
  EXPECT_EQ(m.sample(kB, kA, from_millis(50), rng), from_millis(10));
  const ProcessId c{2};
  EXPECT_EQ(m.sample(kB, c, from_millis(50), rng), from_millis(2));
}

TEST(Presets, AllProduceNonNegativeRoughlyMeanDelays) {
  Xoshiro256 rng(9);
  for (auto preset :
       {DelayPreset::kConstant, DelayPreset::kUniform,
        DelayPreset::kExponential, DelayPreset::kLogNormal,
        DelayPreset::kPareto}) {
    auto m = make_preset(preset, from_millis(10));
    mmrfd::RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
      const auto d = m->sample(kA, kB, kTimeZero, rng);
      ASSERT_GT(d, Duration::zero()) << preset_name(preset);
      stats.add(to_seconds(d));
    }
    // All presets target a ~10 ms mean; heavy tails get wide slack.
    EXPECT_GT(stats.mean(), 0.005) << preset_name(preset);
    EXPECT_LT(stats.mean(), 0.03) << preset_name(preset);
  }
}

TEST(Presets, ParseRoundTrips) {
  for (auto preset :
       {DelayPreset::kConstant, DelayPreset::kUniform,
        DelayPreset::kExponential, DelayPreset::kLogNormal,
        DelayPreset::kPareto}) {
    EXPECT_EQ(parse_preset(preset_name(preset)), preset);
  }
  EXPECT_THROW(parse_preset("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace mmrfd::net
