#include "net/delay_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace mmrfd::net {
namespace {

constexpr ProcessId kA{0};
constexpr ProcessId kB{1};

TEST(ConstantDelay, AlwaysSame) {
  ConstantDelay m(from_millis(3));
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(m.sample(kA, kB, kTimeZero, rng), from_millis(3));
  }
}

TEST(UniformDelay, WithinBounds) {
  UniformDelay m(from_millis(1), from_millis(5));
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto d = m.sample(kA, kB, kTimeZero, rng);
    EXPECT_GE(d, from_millis(1));
    EXPECT_LT(d, from_millis(5));
  }
}

TEST(ExponentialDelay, RespectsBaseAndMean) {
  ExponentialDelay m(from_millis(2), from_millis(4));
  Xoshiro256 rng(3);
  mmrfd::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const auto d = m.sample(kA, kB, kTimeZero, rng);
    EXPECT_GE(d, from_millis(2));
    stats.add(to_seconds(d));
  }
  EXPECT_NEAR(stats.mean(), 0.006, 0.0002);  // 2ms base + 4ms mean extra
}

TEST(LogNormalDelay, AboveBase) {
  LogNormalDelay m(from_millis(1), from_millis(2), 0.8);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(m.sample(kA, kB, kTimeZero, rng), from_millis(1));
  }
}

TEST(ParetoDelay, BoundedAboveByCap) {
  ParetoDelay m(from_millis(1), from_millis(1), 1.5, from_millis(100));
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto d = m.sample(kA, kB, kTimeZero, rng);
    EXPECT_GE(d, from_millis(2));             // base + x_min
    EXPECT_LE(d, from_millis(101));           // base + cap
  }
}

TEST(FastSetDelay, ScalesOnlyFastSenders) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(10));
  FastSetDelay m(std::move(inner), {kA}, 0.1);
  Xoshiro256 rng(6);
  EXPECT_EQ(m.sample(kA, kB, kTimeZero, rng), from_millis(1));
  EXPECT_EQ(m.sample(kB, kA, kTimeZero, rng), from_millis(10));
}

TEST(FastSetDelay, BothDirectionsScalesEitherEndpoint) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(10));
  FastSetDelay m(std::move(inner), {kA}, 0.1,
                 FastSetDelay::Scope::kBothDirections);
  Xoshiro256 rng(6);
  EXPECT_EQ(m.sample(kA, kB, kTimeZero, rng), from_millis(1));
  EXPECT_EQ(m.sample(kB, kA, kTimeZero, rng), from_millis(1));
  const ProcessId c{2};
  EXPECT_EQ(m.sample(kB, c, kTimeZero, rng), from_millis(10));
}

TEST(SpikeDelay, AppliesOnlyDuringWindow) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(2));
  SpikeDelay m(std::move(inner), from_millis(100), from_millis(200), 5.0);
  Xoshiro256 rng(7);
  EXPECT_EQ(m.sample(kA, kB, from_millis(50), rng), from_millis(2));
  EXPECT_EQ(m.sample(kA, kB, from_millis(150), rng), from_millis(10));
  EXPECT_EQ(m.sample(kA, kB, from_millis(200), rng), from_millis(2));
}

TEST(SpikeDelay, AffectedSetFilters) {
  auto inner = std::make_unique<ConstantDelay>(from_millis(2));
  SpikeDelay m(std::move(inner), kTimeZero, from_millis(100), 5.0, {kA});
  Xoshiro256 rng(8);
  EXPECT_EQ(m.sample(kA, kB, from_millis(50), rng), from_millis(10));
  EXPECT_EQ(m.sample(kB, kA, from_millis(50), rng), from_millis(10));
  const ProcessId c{2};
  EXPECT_EQ(m.sample(kB, c, from_millis(50), rng), from_millis(2));
}

TEST(Presets, AllProduceNonNegativeRoughlyMeanDelays) {
  Xoshiro256 rng(9);
  for (auto preset :
       {DelayPreset::kConstant, DelayPreset::kUniform,
        DelayPreset::kExponential, DelayPreset::kLogNormal,
        DelayPreset::kPareto}) {
    auto m = make_preset(preset, from_millis(10));
    mmrfd::RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
      const auto d = m->sample(kA, kB, kTimeZero, rng);
      ASSERT_GT(d, Duration::zero()) << preset_name(preset);
      stats.add(to_seconds(d));
    }
    // All presets target a ~10 ms mean; heavy tails get wide slack.
    EXPECT_GT(stats.mean(), 0.005) << preset_name(preset);
    EXPECT_LT(stats.mean(), 0.03) << preset_name(preset);
  }
}

// min_delay() is the sharded engine's conservative-window contract: every
// sample from every model must be >= its own bound, across time (spike
// windows on and off) and across endpoint roles (fast-set members or not).
TEST(MinDelay, BoundHoldsForEveryModelAndSample) {
  const ProcessId c{2};
  std::vector<std::unique_ptr<DelayModel>> models;
  models.push_back(std::make_unique<ConstantDelay>(from_millis(3)));
  models.push_back(
      std::make_unique<UniformDelay>(from_millis(1), from_millis(5)));
  models.push_back(
      std::make_unique<ExponentialDelay>(from_millis(2), from_millis(4)));
  models.push_back(
      std::make_unique<LogNormalDelay>(from_millis(1), from_millis(2), 0.8));
  models.push_back(std::make_unique<ParetoDelay>(from_millis(1), from_millis(1),
                                                 1.5, from_millis(100)));
  // Fast-set wrapper: the scaled branch is the binding one (factor < 1).
  models.push_back(std::make_unique<FastSetDelay>(
      std::make_unique<ConstantDelay>(from_millis(10)),
      std::vector<ProcessId>{kA}, 0.1, FastSetDelay::Scope::kBothDirections));
  // Spike wrapper with factor > 1: the bound must stay the inner one.
  models.push_back(std::make_unique<SpikeDelay>(
      std::make_unique<ConstantDelay>(from_millis(2)), from_millis(100),
      from_millis(200), 5.0));
  // Composition as the clusters build it: preset + fast set + spike.
  models.push_back(std::make_unique<SpikeDelay>(
      std::make_unique<FastSetDelay>(make_preset(DelayPreset::kExponential,
                                                 from_millis(10)),
                                     std::vector<ProcessId>{kB}, 0.25,
                                     FastSetDelay::Scope::kBothDirections),
      from_millis(10), from_millis(50), 20.0));
  for (auto preset :
       {DelayPreset::kConstant, DelayPreset::kUniform,
        DelayPreset::kExponential, DelayPreset::kLogNormal,
        DelayPreset::kPareto}) {
    models.push_back(make_preset(preset, from_millis(10)));
  }

  Xoshiro256 rng(11);
  std::size_t idx = 0;
  for (const auto& m : models) {
    const Duration bound = m->min_delay();
    EXPECT_GT(bound, Duration::zero()) << "model " << idx;
    for (int i = 0; i < 5000; ++i) {
      // Sweep `now` through the spike windows and rotate endpoints through
      // the fast/affected sets.
      const TimePoint now = from_millis(i % 250);
      const ProcessId from = (i % 3 == 0) ? kA : kB;
      const ProcessId to = (i % 3 == 1) ? kA : c;
      EXPECT_GE(m->sample(from, to, now, rng), bound)
          << "model " << idx << " sample " << i;
    }
    ++idx;
  }
}

TEST(MinDelay, FastSetEmptyKeepsInnerBound) {
  FastSetDelay m(std::make_unique<ConstantDelay>(from_millis(10)), {}, 0.1);
  EXPECT_EQ(m.min_delay(), from_millis(10));
}

TEST(MinDelay, EmptySpikeWindowKeepsInnerBound) {
  // factor < 1 would shrink the bound, but an empty [start, end) window is
  // never applied.
  SpikeDelay m(std::make_unique<ConstantDelay>(from_millis(10)),
               from_millis(200), from_millis(100), 0.1);
  EXPECT_EQ(m.min_delay(), from_millis(10));
}

TEST(Presets, ParseRoundTrips) {
  for (auto preset :
       {DelayPreset::kConstant, DelayPreset::kUniform,
        DelayPreset::kExponential, DelayPreset::kLogNormal,
        DelayPreset::kPareto}) {
    EXPECT_EQ(parse_preset(preset_name(preset)), preset);
  }
  EXPECT_THROW(parse_preset("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace mmrfd::net
