// ReliableDatagram under deterministic loss, driving the delta encoding's
// need_full resync: the exact state-loss scenario a live-cluster node
// restart produces, reduced to a two-node deterministic harness.
//
//   * loss: every 3rd datagram hub-wide is dropped; the reliability layer
//     must still deliver every query/response exactly once;
//   * resync: node b is "restarted" (fresh DetectorCore). The next delta
//     query from a names a base epoch the new b never acknowledged — b must
//     answer need_full, a must drop its watermark, send one full encoding,
//     and return to the delta path.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "core/detector_core.h"
#include "transport/inmemory_transport.h"
#include "transport/reliable.h"
#include "transport/typed_transport.h"

namespace mmrfd::transport {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds budget = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

TEST(ReliableLoss, NeedFullResyncAfterPeerRestartUnderLoss) {
  constexpr ProcessId kA{0};
  constexpr ProcessId kB{1};
  InMemoryHub hub(2);
  hub.set_loss_every(3);
  ReliableConfig rcfg;
  rcfg.retransmit_interval = from_millis(5);
  ReliableDatagram ra(hub.endpoint(kA), rcfg);
  ReliableDatagram rb(hub.endpoint(kB), rcfg);
  TypedTransport ta(ra);
  TypedTransport tb(rb);

  core::DetectorConfig cfg_a;
  cfg_a.self = kA;
  cfg_a.n = 2;
  cfg_a.f = 1;  // quorum 1: a's own response terminates each query
  core::DetectorConfig cfg_b = cfg_a;
  cfg_b.self = kB;

  // One mutex guards both cores and the counters; handlers run on the hub's
  // dispatch threads.
  std::mutex mu;
  core::DetectorCore a(cfg_a);
  auto b = std::make_unique<core::DetectorCore>(cfg_b);
  int need_full_responses = 0;

  ta.set_handler([&](ProcessId from, const WireMessage& msg) {
    if (const auto* r = std::get_if<core::ResponseMessage>(&msg)) {
      std::lock_guard lock(mu);
      a.on_response(from, *r);
      if (r->need_full) ++need_full_responses;
    }
  });
  tb.set_handler([&](ProcessId from, const WireMessage& msg) {
    if (const auto* q = std::get_if<core::QueryMessage>(&msg)) {
      core::ResponseMessage response;
      {
        std::lock_guard lock(mu);
        response = b->on_query(from, *q);
      }
      tb.send(from, WireMessage{response});
    }
  });
  ta.start();
  tb.start();

  // Runs query rounds at a (sending only to b) until `pred` holds, waiting
  // within each round for b's response (or the predicate) before closing it.
  const auto drive_rounds_until = [&](auto pred, int max_rounds) {
    for (int round = 0; round < max_rounds; ++round) {
      core::QueryMessage q;
      {
        std::lock_guard lock(mu);
        a.begin_query();
        q = a.query_for(kB);
      }
      ta.send(kB, WireMessage{q});
      eventually(
          [&] {
            std::lock_guard lock(mu);
            return a.rec_from().size() >= 2 || pred();
          },
          2000ms);
      std::lock_guard lock(mu);
      a.finish_round();
      if (pred()) return true;
    }
    std::lock_guard lock(mu);
    return pred();
  };

  // Round 1, closed with the query deliberately never sent: b cannot have
  // responded, so it becomes suspected — the state churn that moves a's
  // epoch off 0 (an epoch-0 sender has nothing to delta against and would
  // stay on the full encoding forever).
  {
    std::lock_guard lock(mu);
    a.begin_query();
    a.finish_round();
    EXPECT_TRUE(a.is_suspected(kB));
    EXPECT_GT(a.state_epoch(), 0u);
  }

  // The delta path engages once b has acknowledged a post-churn epoch.
  ASSERT_TRUE(drive_rounds_until(
      [&] { return a.acked_epoch(kB) > 0 && !a.full_query_needed(kB); }, 50));

  // "Restart" b: fresh core, all watermark state lost — exactly what a
  // SIGKILL + re-exec of a live node does.
  {
    std::lock_guard lock(mu);
    b = std::make_unique<core::DetectorCore>(cfg_b);
  }

  // a still believes b acked a positive epoch, so its next queries are
  // deltas on a base the new b never saw: b must answer need_full, and the
  // ack must drop a's watermark onto the full fallback.
  ASSERT_TRUE(drive_rounds_until([&] { return need_full_responses > 0; }, 50));
  {
    std::lock_guard lock(mu);
    EXPECT_EQ(a.acked_epoch(kB), 0u);
    EXPECT_TRUE(a.full_query_needed(kB));
  }

  // One full encoding resynchronizes the peer and re-arms the delta path.
  ASSERT_TRUE(drive_rounds_until(
      [&] { return a.acked_epoch(kB) > 0 && !a.full_query_needed(kB); }, 50));

  // The loss injection was real and the reliability layer worked for it.
  EXPECT_GT(hub.dropped(), 0u);
  EXPECT_GT(ra.stats().retransmissions + rb.stats().retransmissions, 0u);
  EXPECT_EQ(ra.stats().gave_up, 0u);

  ta.stop();
  tb.stop();
}

}  // namespace
}  // namespace mmrfd::transport
