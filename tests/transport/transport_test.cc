// Real-transport integration: the simulator-verified core over threads and
// sockets. These tests use generous wall-clock budgets and liveness-style
// assertions (eventually-suspects / eventually-clean) to stay robust on
// loaded CI machines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "transport/inmemory_transport.h"
#include "transport/realtime_detector.h"
#include "transport/typed_transport.h"
#include "transport/udp_transport.h"

namespace mmrfd::transport {
namespace {

using namespace std::chrono_literals;

RealTimeConfig rt_config(std::uint32_t self, std::uint32_t n,
                         std::uint32_t f) {
  RealTimeConfig c;
  c.detector.self = ProcessId{self};
  c.detector.n = n;
  c.detector.f = f;
  c.pacing = from_millis(10);
  return c;
}

/// Polls `cond` for up to `budget`; returns true as soon as it holds.
template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return cond();
}

/// A cluster of typed endpoints over one in-memory hub.
struct TypedHub {
  InMemoryHub hub;
  std::vector<std::unique_ptr<TypedTransport>> typed;

  explicit TypedHub(std::uint32_t n) : hub(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      typed.push_back(
          std::make_unique<TypedTransport>(hub.endpoint(ProcessId{i})));
    }
  }
  TypedTransport& at(std::uint32_t i) { return *typed[i]; }
};

TEST(InMemoryTransport, DeliversPointToPoint) {
  TypedHub h(2);
  std::atomic<int> got{0};
  h.at(1).set_handler([&](ProcessId from, const WireMessage& m) {
    EXPECT_EQ(from, ProcessId{0});
    EXPECT_TRUE(std::holds_alternative<core::ResponseMessage>(m));
    ++got;
  });
  h.at(0).set_handler([](ProcessId, const WireMessage&) {});
  h.at(0).start();
  h.at(1).start();
  h.at(0).send(ProcessId{1}, core::ResponseMessage{7});
  EXPECT_TRUE(eventually([&] { return got.load() == 1; }));
}

TEST(InMemoryTransport, BroadcastReachesAllOthers) {
  TypedHub h(4);
  std::atomic<int> got{0};
  for (std::uint32_t i = 0; i < 4; ++i) {
    h.at(i).set_handler([&](ProcessId, const WireMessage&) { ++got; });
    h.at(i).start();
  }
  h.at(2).broadcast(core::ResponseMessage{1});
  EXPECT_TRUE(eventually([&] { return got.load() == 3; }));
}

TEST(TypedTransport, MalformedDatagramsCountedAndDropped) {
  InMemoryHub hub(2);
  TypedTransport typed(hub.endpoint(ProcessId{1}));
  std::atomic<int> got{0};
  typed.set_handler([&](ProcessId, const WireMessage&) { ++got; });
  typed.start();
  const std::vector<std::uint8_t> junk{1, 2, 3};
  hub.endpoint(ProcessId{0})
      .set_handler([](std::span<const std::uint8_t>) {});
  hub.endpoint(ProcessId{0}).start();
  hub.endpoint(ProcessId{0}).send(ProcessId{1}, junk);
  EXPECT_TRUE(eventually([&] { return typed.malformed_count() == 1; }));
  EXPECT_EQ(got.load(), 0);
  typed.stop();
}

TEST(RealTimeDetector, InMemoryClusterRunsRoundsAndStaysClean) {
  constexpr std::uint32_t kN = 4;
  TypedHub h(kN);
  std::vector<std::unique_ptr<RealTimeDetector>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) {
    nodes.push_back(
        std::make_unique<RealTimeDetector>(h.at(i), rt_config(i, kN, 1)));
  }
  for (auto& n : nodes) n->start();
  // "Eventually clean": under machine load a driver thread can be
  // descheduled past the pacing window, causing a *transient* suspicion
  // that the protocol then repairs — assert the stable state, not an
  // instantaneous snapshot.
  EXPECT_TRUE(eventually([&] {
    for (auto& n : nodes) {
      if (n->rounds_completed() < 10) return false;
      if (!n->suspected().empty()) return false;
    }
    return true;
  }));
  for (auto& n : nodes) n->stop();
}

TEST(RealTimeDetector, InMemoryClusterDetectsStoppedNode) {
  constexpr std::uint32_t kN = 4;
  TypedHub h(kN);
  std::vector<std::unique_ptr<RealTimeDetector>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) {
    nodes.push_back(
        std::make_unique<RealTimeDetector>(h.at(i), rt_config(i, kN, 1)));
  }
  for (auto& n : nodes) n->start();
  ASSERT_TRUE(
      eventually([&] { return nodes[0]->rounds_completed() >= 5; }));
  nodes[3]->stop();  // "crash"
  EXPECT_TRUE(eventually([&] {
    for (std::uint32_t i = 0; i < 3; ++i) {
      if (!nodes[i]->is_suspected(ProcessId{3})) return false;
    }
    return true;
  }));
  // The crashed node must never be "repaired", and the survivors settle
  // back to suspecting only it.
  std::this_thread::sleep_for(100ms);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(nodes[i]->is_suspected(ProcessId{3}));
  }
  EXPECT_TRUE(eventually([&] {
    for (std::uint32_t i = 0; i < 3; ++i) {
      if (nodes[i]->suspected() != std::vector<ProcessId>{ProcessId{3}}) {
        return false;
      }
    }
    return true;
  }));
  for (std::uint32_t i = 0; i < 3; ++i) nodes[i]->stop();
}

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpTransport t0({ProcessId{0}, 2, 39200});
  UdpTransport t1({ProcessId{1}, 2, 39200});
  TypedTransport typed0(t0);
  TypedTransport typed1(t1);
  std::atomic<int> got{0};
  typed0.set_handler([](ProcessId, const WireMessage&) {});
  typed1.set_handler([&](ProcessId from, const WireMessage& m) {
    EXPECT_EQ(from, ProcessId{0});
    if (std::holds_alternative<core::QueryMessage>(m)) ++got;
  });
  try {
    typed0.start();
    typed1.start();
  } catch (const std::system_error& e) {
    GTEST_SKIP() << "UDP loopback unavailable: " << e.what();
  }
  core::QueryMessage q;
  q.seq = 3;
  q.push_suspected({ProcessId{1}, 9});
  typed0.send(ProcessId{1}, q);
  EXPECT_TRUE(eventually([&] { return got.load() == 1; }));
  typed0.stop();
  typed1.stop();
}

TEST(UdpTransport, FullDetectorClusterOverSockets) {
  constexpr std::uint32_t kN = 3;
  std::vector<std::unique_ptr<UdpTransport>> udp;
  std::vector<std::unique_ptr<TypedTransport>> typed;
  std::vector<std::unique_ptr<RealTimeDetector>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) {
    udp.push_back(
        std::make_unique<UdpTransport>(UdpConfig{ProcessId{i}, kN, 39300}));
    typed.push_back(std::make_unique<TypedTransport>(*udp[i]));
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    nodes.push_back(
        std::make_unique<RealTimeDetector>(*typed[i], rt_config(i, kN, 1)));
  }
  try {
    for (auto& n : nodes) n->start();
  } catch (const std::system_error& e) {
    GTEST_SKIP() << "UDP loopback unavailable: " << e.what();
  }
  EXPECT_TRUE(eventually(
      [&] {
        for (auto& n : nodes) {
          if (n->rounds_completed() < 5) return false;
          if (!n->suspected().empty()) return false;
        }
        return true;
      },
      15000ms));
  nodes[2]->stop();
  EXPECT_TRUE(eventually(
      [&] {
        return nodes[0]->is_suspected(ProcessId{2}) &&
               nodes[1]->is_suspected(ProcessId{2});
      },
      15000ms));
  nodes[0]->stop();
  nodes[1]->stop();
}

TEST(RealTimeDetector, StopIsIdempotentAndRestartable) {
  TypedHub h(2);
  RealTimeDetector a(h.at(0), rt_config(0, 2, 1));
  RealTimeDetector b(h.at(1), rt_config(1, 2, 1));
  a.start();
  b.start();
  EXPECT_TRUE(eventually([&] { return a.rounds_completed() >= 2; }));
  a.stop();
  a.stop();  // idempotent
  b.stop();
}

}  // namespace
}  // namespace mmrfd::transport
