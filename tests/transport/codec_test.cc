#include "transport/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mmrfd::transport {
namespace {

core::QueryMessage sample_query() {
  core::QueryMessage q;
  q.seq = 0x1122334455667788ULL;
  q.suspected = {{ProcessId{1}, 7}, {ProcessId{3}, 99}};
  q.mistakes = {{ProcessId{2}, 50}};
  return q;
}

TEST(Codec, QueryRoundTrip) {
  Encoder e;
  encode(e, sample_query());
  const auto bytes = e.take();
  Decoder d(bytes);
  const auto out = decode_query(d);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, sample_query());
  EXPECT_TRUE(d.exhausted());
}

TEST(Codec, ResponseRoundTrip) {
  Encoder e;
  encode(e, core::ResponseMessage{42});
  const auto bytes = e.take();
  Decoder d(bytes);
  const auto out = decode_response(d);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->seq, 42u);
}

TEST(Codec, EmptySetsRoundTrip) {
  core::QueryMessage q;
  q.seq = 1;
  Encoder e;
  encode(e, q);
  const auto bytes = e.take();
  Decoder d(bytes);
  const auto out = decode_query(d);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->suspected.empty());
  EXPECT_TRUE(out->mistakes.empty());
}

TEST(Codec, EnvelopeRoundTripQuery) {
  const auto datagram = encode_envelope(ProcessId{9}, sample_query());
  const auto out = decode_envelope(datagram);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, ProcessId{9});
  ASSERT_TRUE(std::holds_alternative<core::QueryMessage>(out->message));
  EXPECT_EQ(std::get<core::QueryMessage>(out->message), sample_query());
}

TEST(Codec, EnvelopeRoundTripResponse) {
  const auto datagram =
      encode_envelope(ProcessId{2}, core::ResponseMessage{5});
  const auto out = decode_envelope(datagram);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<core::ResponseMessage>(out->message).seq, 5u);
}

TEST(Codec, WireSizeMatchesEncodedSize) {
  const auto q = sample_query();
  EXPECT_EQ(encode_envelope(ProcessId{0}, q).size(), wire_size(q));
  const core::ResponseMessage r{1};
  EXPECT_EQ(encode_envelope(ProcessId{0}, r).size(), wire_size(r));
}

TEST(Codec, TruncatedInputRejected) {
  const auto datagram = encode_envelope(ProcessId{0}, sample_query());
  for (std::size_t cut = 0; cut < datagram.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(datagram.data(), cut);
    EXPECT_FALSE(decode_envelope(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, TrailingGarbageRejected) {
  auto datagram = encode_envelope(ProcessId{0}, core::ResponseMessage{1});
  datagram.push_back(0xFF);
  EXPECT_FALSE(decode_envelope(datagram).has_value());
}

TEST(Codec, UnknownTypeRejected) {
  std::vector<std::uint8_t> datagram = {0, 0, 0, 0, /*type=*/200, 1, 2, 3};
  EXPECT_FALSE(decode_envelope(datagram).has_value());
}

TEST(Codec, LyingLengthPrefixRejected) {
  Encoder e;
  e.u32(0);           // sender
  e.u8(1);            // query
  e.u64(1);           // seq
  e.u32(0xFFFFFFFF);  // claims 4 billion suspected entries
  const auto bytes = e.take();
  EXPECT_FALSE(decode_envelope(bytes).has_value());
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Xoshiro256 rng(1234);
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)decode_envelope(junk);  // must not crash / UB; result irrelevant
  }
}

TEST(Codec, FuzzRoundTripRandomQueries) {
  Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) {
    core::QueryMessage q;
    q.seq = rng.next();
    const auto ns = rng.next_below(20);
    for (std::uint64_t k = 0; k < ns; ++k) {
      q.suspected.push_back(
          {ProcessId{static_cast<std::uint32_t>(rng.next_below(1000))},
           rng.next()});
    }
    const auto nm = rng.next_below(20);
    for (std::uint64_t k = 0; k < nm; ++k) {
      q.mistakes.push_back(
          {ProcessId{static_cast<std::uint32_t>(rng.next_below(1000))},
           rng.next()});
    }
    const auto out = decode_envelope(encode_envelope(ProcessId{1}, q));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<core::QueryMessage>(out->message), q);
  }
}

}  // namespace
}  // namespace mmrfd::transport
