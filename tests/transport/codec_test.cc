#include "transport/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mmrfd::transport {
namespace {

core::QueryMessage sample_query() {
  core::QueryMessage q;
  q.seq = 0x1122334455667788ULL;
  q.push_suspected({ProcessId{1}, 7});
  q.push_suspected({ProcessId{3}, 99});
  q.push_mistake({ProcessId{2}, 50});
  return q;
}

TEST(Codec, QueryRoundTrip) {
  Encoder e;
  encode(e, sample_query());
  const auto bytes = e.take();
  Decoder d(bytes);
  const auto out = decode_query(d);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, sample_query());
  EXPECT_TRUE(d.exhausted());
}

TEST(Codec, ResponseRoundTrip) {
  Encoder e;
  encode(e, core::ResponseMessage{42});
  const auto bytes = e.take();
  Decoder d(bytes);
  const auto out = decode_response(d);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->seq, 42u);
}

TEST(Codec, EmptySetsRoundTrip) {
  core::QueryMessage q;
  q.seq = 1;
  Encoder e;
  encode(e, q);
  const auto bytes = e.take();
  Decoder d(bytes);
  const auto out = decode_query(d);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->suspected().empty());
  EXPECT_TRUE(out->mistakes().empty());
}

TEST(Codec, EnvelopeRoundTripQuery) {
  const auto datagram = encode_envelope(ProcessId{9}, sample_query());
  const auto out = decode_envelope(datagram);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, ProcessId{9});
  ASSERT_TRUE(std::holds_alternative<core::QueryMessage>(out->message));
  EXPECT_EQ(std::get<core::QueryMessage>(out->message), sample_query());
}

TEST(Codec, EnvelopeRoundTripResponse) {
  const auto datagram =
      encode_envelope(ProcessId{2}, core::ResponseMessage{5});
  const auto out = decode_envelope(datagram);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<core::ResponseMessage>(out->message).seq, 5u);
}

TEST(Codec, WireSizeMatchesEncodedSize) {
  const auto q = sample_query();
  EXPECT_EQ(encode_envelope(ProcessId{0}, q).size(), wire_size(q));
  const core::ResponseMessage r{1};
  EXPECT_EQ(encode_envelope(ProcessId{0}, r).size(), wire_size(r));
}

TEST(Codec, TruncatedInputRejected) {
  const auto datagram = encode_envelope(ProcessId{0}, sample_query());
  for (std::size_t cut = 0; cut < datagram.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(datagram.data(), cut);
    EXPECT_FALSE(decode_envelope(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, TrailingGarbageRejected) {
  auto datagram = encode_envelope(ProcessId{0}, core::ResponseMessage{1});
  datagram.push_back(0xFF);
  EXPECT_FALSE(decode_envelope(datagram).has_value());
}

TEST(Codec, UnknownTypeRejected) {
  std::vector<std::uint8_t> datagram = {0, 0, 0, 0, /*type=*/200, 1, 2, 3};
  EXPECT_FALSE(decode_envelope(datagram).has_value());
}

TEST(Codec, LyingLengthPrefixRejected) {
  Encoder e;
  e.u32(0);           // sender
  e.u8(1);            // query
  e.u64(1);           // seq
  e.u32(0xFFFFFFFF);  // claims 4 billion suspected entries
  const auto bytes = e.take();
  EXPECT_FALSE(decode_envelope(bytes).has_value());
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Xoshiro256 rng(1234);
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)decode_envelope(junk);  // must not crash / UB; result irrelevant
  }
}

core::QueryMessage sample_delta() {
  core::QueryMessage q;
  q.seq = 42;
  q.epoch = 900;
  q.base_epoch = 123;
  q.set_delta(true);
  q.push_suspected({ProcessId{7}, 11});
  q.push_mistake({ProcessId{1}, 12});
  return q;
}

TEST(Codec, DeltaQueryRoundTrip) {
  const auto out = decode_envelope(encode_envelope(ProcessId{3}, sample_delta()));
  ASSERT_TRUE(out.has_value());
  const auto& q = std::get<core::QueryMessage>(out->message);
  EXPECT_EQ(q, sample_delta());
  EXPECT_TRUE(q.is_delta());
  EXPECT_EQ(q.epoch, 900u);
  EXPECT_EQ(q.base_epoch, 123u);
}

TEST(Codec, EmptyDeltaRoundTrip) {
  // The steady-state message: the whole stable suspected set interned as
  // one base-epoch integer, zero entries on the wire.
  core::QueryMessage q;
  q.seq = 7;
  q.epoch = 55;
  q.base_epoch = 55;
  q.set_delta(true);
  const auto datagram = encode_envelope(ProcessId{0}, q);
  EXPECT_EQ(datagram.size(), wire_size(q));
  const auto out = decode_envelope(datagram);
  ASSERT_TRUE(out.has_value());
  const auto& back = std::get<core::QueryMessage>(out->message);
  EXPECT_EQ(back, q);
  EXPECT_TRUE(back.is_delta());
  EXPECT_TRUE(back.suspected().empty());
  EXPECT_TRUE(back.mistakes().empty());
  // Compactness: envelope 5 + seq 8 + flags 1 + two 1-byte varints + two
  // u32 counts = 24 bytes, independent of how large the interned set is.
  EXPECT_EQ(datagram.size(), 24u);
}

TEST(Codec, ResponseAckRoundTrip) {
  core::ResponseMessage r;
  r.seq = 9;
  r.ack_epoch = 1u << 20;  // 3-byte varint
  r.need_full = true;
  const auto datagram = encode_envelope(ProcessId{4}, r);
  EXPECT_EQ(datagram.size(), wire_size(r));
  const auto out = decode_envelope(datagram);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<core::ResponseMessage>(out->message), r);
}

TEST(Codec, WireSizeMatchesEncodedSizeForDeltaForms) {
  for (const auto& q : {sample_delta(), sample_query()}) {
    EXPECT_EQ(encode_envelope(ProcessId{0}, q).size(), wire_size(q));
  }
  core::ResponseMessage ack;
  ack.seq = 1;
  ack.ack_epoch = 1;
  EXPECT_EQ(encode_envelope(ProcessId{0}, ack).size(), wire_size(ack));
}

TEST(Codec, UvarintEdgeValues) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 62, ~std::uint64_t{0}}) {
    Encoder e;
    e.uvarint(v);
    const auto bytes = e.take();
    EXPECT_EQ(bytes.size(), uvarint_size(v));
    Decoder d(bytes);
    const auto back = d.uvarint();
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(d.exhausted());
  }
}

TEST(Codec, UvarintOverlongRejected) {
  // 11 continuation bytes can encode nothing a u64 holds.
  std::vector<std::uint8_t> junk(11, 0xFF);
  Decoder d(junk);
  EXPECT_FALSE(d.uvarint().has_value());
  // A 10th byte carrying more than the final bit overflows u64.
  std::vector<std::uint8_t> overflow(9, 0x80);
  overflow.push_back(0x02);
  Decoder d2(overflow);
  EXPECT_FALSE(d2.uvarint().has_value());
}

TEST(Codec, TruncatedDeltaRejected) {
  const auto datagram = encode_envelope(ProcessId{0}, sample_delta());
  for (std::size_t cut = 0; cut < datagram.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(datagram.data(), cut);
    EXPECT_FALSE(decode_envelope(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, LyingSuspectedSplitRejected) {
  // suspected_count claiming more entries than the list carries is a
  // malformed datagram, not a 0-length mistakes span.
  core::QueryMessage q;
  q.seq = 1;
  q.push_suspected({ProcessId{2}, 3});
  Encoder e;
  e.u32(0);  // sender
  e.u8(1);   // query
  e.u64(q.seq);
  e.u8(0);   // flags
  e.u32(5);  // claims 5 suspected...
  e.entries(q.entries);  // ...but carries 1 entry
  const auto bytes = e.take();
  EXPECT_FALSE(decode_envelope(bytes).has_value());
}

TEST(Codec, FuzzRoundTripRandomDeltas) {
  Xoshiro256 rng(2077);
  for (int i = 0; i < 500; ++i) {
    core::QueryMessage q;
    q.seq = rng.next();
    q.epoch = rng.next_below(1u << 30);
    if (rng.bernoulli(0.7)) {
      q.set_delta(true);
      q.base_epoch = rng.next_below(q.epoch + 1);
    }
    const auto ns = rng.next_below(6);
    for (std::uint64_t k = 0; k < ns; ++k) {
      q.push_suspected(
          {ProcessId{static_cast<std::uint32_t>(rng.next_below(1000))},
           rng.next()});
    }
    const auto nm = rng.next_below(6);
    for (std::uint64_t k = 0; k < nm; ++k) {
      q.push_mistake(
          {ProcessId{static_cast<std::uint32_t>(rng.next_below(1000))},
           rng.next()});
    }
    const auto datagram = encode_envelope(ProcessId{1}, q);
    EXPECT_EQ(datagram.size(), wire_size(q));
    const auto out = decode_envelope(datagram);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<core::QueryMessage>(out->message), q);
  }
}

TEST(Codec, FuzzRoundTripRandomQueries) {
  Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) {
    core::QueryMessage q;
    q.seq = rng.next();
    const auto ns = rng.next_below(20);
    for (std::uint64_t k = 0; k < ns; ++k) {
      q.push_suspected(
          {ProcessId{static_cast<std::uint32_t>(rng.next_below(1000))},
           rng.next()});
    }
    const auto nm = rng.next_below(20);
    for (std::uint64_t k = 0; k < nm; ++k) {
      q.push_mistake(
          {ProcessId{static_cast<std::uint32_t>(rng.next_below(1000))},
           rng.next()});
    }
    const auto out = decode_envelope(encode_envelope(ProcessId{1}, q));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<core::QueryMessage>(out->message), q);
  }
}

}  // namespace
}  // namespace mmrfd::transport
