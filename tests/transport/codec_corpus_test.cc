// Mutated-datagram corpus for the wire codec.
//
// The decode path is the one piece of the system that parses bytes an
// adversary (or a flaky NIC) controls, so it must be *total*: any input —
// bit-flipped, truncated, extended, or pure garbage — yields nullopt or a
// structurally valid message, never UB. CI runs this suite under
// ASan/UBSan via the `adversarial` label, which is where a lying length
// prefix or an over-read actually trips.
#include "transport/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/messages.h"

namespace mmrfd::transport {
namespace {

/// A small corpus of well-formed envelopes covering every encoder branch:
/// full and delta queries, empty and populated entry lists, responses with
/// and without acks, need_full set and clear.
std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> out;

  core::QueryMessage full;
  full.seq = 7;
  full.entries = {{ProcessId{1}, 10}, {ProcessId{2}, 20}, {ProcessId{3}, 5}};
  full.suspected_count = 2;
  out.push_back(encode_envelope(ProcessId{0}, WireMessage{full}));

  core::QueryMessage delta;
  delta.seq = 12345678901234ull;
  delta.epoch = 987654;
  delta.base_epoch = 987000;
  delta.set_delta(true);
  delta.entries = {{ProcessId{9}, 42}};
  delta.suspected_count = 0;
  out.push_back(encode_envelope(ProcessId{63}, WireMessage{delta}));

  core::QueryMessage empty;
  empty.seq = 1;
  out.push_back(encode_envelope(ProcessId{5}, WireMessage{empty}));

  core::ResponseMessage ack;
  ack.seq = 7;
  ack.ack_epoch = 987654;
  out.push_back(encode_envelope(ProcessId{2}, WireMessage{ack}));

  core::ResponseMessage needy;
  needy.seq = 8;
  needy.need_full = true;
  out.push_back(encode_envelope(ProcessId{2}, WireMessage{needy}));

  return out;
}

/// Structural invariants any *accepted* datagram must satisfy — the
/// properties the detector core relies on without re-checking.
void check_accepted(const DecodedEnvelope& env) {
  if (const auto* q = std::get_if<core::QueryMessage>(&env.message)) {
    ASSERT_LE(q->suspected_count, q->entries.size());
    if (q->is_delta()) {
      // A delta promises a base; the epoch flag is canonical.
      EXPECT_NE(q->epoch, 0u);
    }
  }
}

TEST(CodecCorpus, EveryStrictPrefixIsRejected) {
  // Truncation at *every* byte boundary: each message type ends with a
  // required field, so no strict prefix can parse as complete (exhausted()
  // is part of acceptance).
  for (const auto& datagram : corpus()) {
    for (std::size_t len = 0; len < datagram.size(); ++len) {
      const auto env = decode_envelope(
          std::span<const std::uint8_t>(datagram.data(), len));
      EXPECT_FALSE(env.has_value()) << "prefix of length " << len;
    }
  }
}

TEST(CodecCorpus, TrailingGarbageIsRejected) {
  for (auto datagram : corpus()) {
    datagram.push_back(0);
    EXPECT_FALSE(decode_envelope(datagram).has_value());
  }
}

TEST(CodecCorpus, BitFlippedCorpusNeverTripsTheDecoder) {
  // 20k mutated datagrams: 1-8 random byte XORs against a valid envelope.
  // Some decode (a flipped tag byte is indistinguishable from a different
  // valid message) — those must still satisfy the structural invariants.
  Xoshiro256 rng(0xC0DEC);
  const auto base = corpus();
  std::uint64_t accepted = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    auto datagram = base[rng.next_below(base.size())];
    const std::uint64_t flips = 1 + rng.next_below(8);
    for (std::uint64_t i = 0; i < flips; ++i) {
      const std::uint64_t draw = rng.next();
      datagram[draw % datagram.size()] ^=
          static_cast<std::uint8_t>((draw >> 32) | 1);
    }
    const auto env = decode_envelope(datagram);
    if (env) {
      ++accepted;
      check_accepted(*env);
    }
  }
  // The corpus is tiny relative to the format space, but flips that only
  // touch value bytes (tags, seqs) stay decodable — expect a healthy mix.
  EXPECT_GT(accepted, 100u);
}

TEST(CodecCorpus, RandomGarbageNeverTripsTheDecoder) {
  Xoshiro256 rng(0xBADBEEF);
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> garbage(rng.next_below(128));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    const auto env = decode_envelope(garbage);
    if (env) check_accepted(*env);
  }
}

TEST(CodecCorpus, LyingEntryCountIsRejectedWithoutAllocating) {
  // Regression for the entries() bound: a count field claiming more entries
  // than the *remaining* bytes can hold must be rejected before reserve()
  // is driven by it. (The old bound compared against the whole datagram,
  // so a count that re-counted the already-consumed header slipped past.)
  Encoder e;
  e.u32(0xFFFFFFFFu);  // count
  const auto buf = e.take();
  Decoder d(buf);
  EXPECT_FALSE(d.entries().has_value());

  // Borderline case: count consistent with buffer-minus-header but not with
  // the remaining bytes after the cursor.
  Encoder e2;
  e2.u64(0);  // 8 bytes of "header" the cursor has already consumed
  e2.u32(1);  // one entry claimed ...
  e2.u32(7);  // ... but only 8 bytes follow, not 12
  e2.u32(7);
  const auto buf2 = e2.take();
  Decoder d2(buf2);
  ASSERT_TRUE(d2.u64().has_value());
  EXPECT_FALSE(d2.entries().has_value());
}

TEST(CodecCorpus, OversizedVarintIsRejected) {
  // An 11-byte varint (or a 10th byte carrying more than the final bit)
  // would shift past 63 — the decoder must refuse, not UB-shift.
  std::vector<std::uint8_t> buf(11, 0x80);
  buf.back() = 0x01;
  Decoder d(buf);
  EXPECT_FALSE(d.uvarint().has_value());

  std::vector<std::uint8_t> high(10, 0x80);
  high.back() = 0x7F;  // 10th byte may only contribute one bit
  Decoder d2(high);
  EXPECT_FALSE(d2.uvarint().has_value());
}

TEST(CodecCorpus, ValidEnvelopesRoundTrip) {
  for (const auto& datagram : corpus()) {
    const auto env = decode_envelope(datagram);
    ASSERT_TRUE(env.has_value());
    // Canonical re-encode: decode(encode(decode(x))) == decode(x) and the
    // bytes match — the corpus is minimally encoded.
    const auto re = encode_envelope(env->sender, env->message);
    EXPECT_EQ(re, datagram);
  }
}

}  // namespace
}  // namespace mmrfd::transport
