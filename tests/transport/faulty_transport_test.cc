// FaultyTransport — the adversarial-channel decorator for real transports.
//
// These tests pin the decorator's contract: byte-exact passthrough with all
// knobs off, deterministic fault schedules per seed, duplicate/drop
// accounting, the one-slot holdback reorder (delivery still lossless), and
// corruption/truncation that always emits a *different* or *shorter*
// datagram — never a crash, never a stealth drop at shutdown.
#include "transport/faulty_transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "transport/inmemory_transport.h"

namespace mmrfd::transport {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds budget = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return cond();
}

/// Thread-safe recorder of everything the far endpoint received.
class Sink {
 public:
  void attach(DatagramTransport& t) {
    t.set_handler([this](std::span<const std::uint8_t> d) {
      std::lock_guard lock(mutex_);
      received_.emplace_back(d.begin(), d.end());
    });
  }
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> snapshot() const {
    std::lock_guard lock(mutex_);
    return received_;
  }
  [[nodiscard]] std::size_t count() const {
    std::lock_guard lock(mutex_);
    return received_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> received_;
};

/// The faulty side of these tests only sends, but InMemoryHub asserts (in
/// debug builds) that every started endpoint has a receive handler.
void start_send_only(DatagramTransport& t) {
  t.set_handler([](std::span<const std::uint8_t>) {});
  t.start();
}

std::vector<std::uint8_t> payload(std::uint32_t i) {
  return {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8),
          static_cast<std::uint8_t>(i >> 16),
          static_cast<std::uint8_t>(i >> 24), 0xAB, 0xCD};
}

TEST(FaultyTransport, AllKnobsOffIsByteExactPassthrough) {
  InMemoryHub hub(2);
  FaultyTransport faulty(hub.endpoint(ProcessId{0}), FaultConfig{});
  Sink sink;
  sink.attach(hub.endpoint(ProcessId{1}));
  start_send_only(faulty);
  hub.endpoint(ProcessId{1}).start();
  for (std::uint32_t i = 0; i < 50; ++i) {
    faulty.send(ProcessId{1}, payload(i));
  }
  ASSERT_TRUE(eventually([&] { return sink.count() == 50; }));
  const auto got = sink.snapshot();
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(got[i], payload(i)) << i;
  }
  const auto s = faulty.stats();
  EXPECT_EQ(s.sent, 50u);
  EXPECT_EQ(s.dropped + s.duplicated + s.reordered + s.corrupted + s.truncated,
            0u);
  faulty.stop();
}

TEST(FaultyTransport, FaultScheduleIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    InMemoryHub hub(2);
    FaultConfig cfg;
    cfg.drop_rate = 0.2;
    cfg.duplicate_rate = 0.2;
    cfg.reorder_rate = 0.2;
    cfg.corrupt_rate = 0.2;
    cfg.truncate_rate = 0.2;
    cfg.seed = seed;
    FaultyTransport faulty(hub.endpoint(ProcessId{0}), cfg);
    start_send_only(faulty);
    for (std::uint32_t i = 0; i < 500; ++i) {
      faulty.send(ProcessId{1}, payload(i));
    }
    const auto s = faulty.stats();
    faulty.stop();
    return s;
  };
  const auto a = run(99);
  const auto b = run(99);
  const auto c = run(100);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.reordered, b.reordered);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.truncated, b.truncated);
  // Different seed, different schedule (all five counters agreeing across
  // seeds on 500 draws would mean the seed is ignored).
  EXPECT_TRUE(a.dropped != c.dropped || a.duplicated != c.duplicated ||
              a.reordered != c.reordered || a.corrupted != c.corrupted ||
              a.truncated != c.truncated);
}

TEST(FaultyTransport, ReorderIsLosslessAndActuallyReorders) {
  InMemoryHub hub(2);
  FaultConfig cfg;
  cfg.reorder_rate = 0.5;
  cfg.seed = 7;
  FaultyTransport faulty(hub.endpoint(ProcessId{0}), cfg);
  Sink sink;
  sink.attach(hub.endpoint(ProcessId{1}));
  start_send_only(faulty);
  hub.endpoint(ProcessId{1}).start();
  constexpr std::uint32_t kSends = 400;
  for (std::uint32_t i = 0; i < kSends; ++i) {
    faulty.send(ProcessId{1}, payload(i));
  }
  faulty.stop();  // flushes the holdback slot — nothing may be lost
  ASSERT_TRUE(eventually([&] { return sink.count() == kSends; }));
  EXPECT_GT(faulty.stats().reordered, 50u);

  std::vector<std::uint32_t> order;
  for (const auto& d : sink.snapshot()) {
    ASSERT_EQ(d.size(), 6u);
    order.push_back(static_cast<std::uint32_t>(d[0]) |
                    (static_cast<std::uint32_t>(d[1]) << 8) |
                    (static_cast<std::uint32_t>(d[2]) << 16) |
                    (static_cast<std::uint32_t>(d[3]) << 24));
  }
  // Lossless: a permutation of everything sent.
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < kSends; ++i) EXPECT_EQ(sorted[i], i);
  // Out of order: at least one adjacent inversion survived.
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0u);
  // Bounded: the one-slot holdback displaces a datagram by at most one
  // position relative to the sends that overtook it... which means each id
  // lands within 2 of its slot.
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_LE(order[i] > i ? order[i] - i : i - order[i], 2u) << i;
  }
}

TEST(FaultyTransport, DuplicatesAreDeliveredTwice) {
  InMemoryHub hub(2);
  FaultConfig cfg;
  cfg.duplicate_rate = 1.0;
  FaultyTransport faulty(hub.endpoint(ProcessId{0}), cfg);
  Sink sink;
  sink.attach(hub.endpoint(ProcessId{1}));
  start_send_only(faulty);
  hub.endpoint(ProcessId{1}).start();
  for (std::uint32_t i = 0; i < 20; ++i) {
    faulty.send(ProcessId{1}, payload(i));
  }
  ASSERT_TRUE(eventually([&] { return sink.count() == 40; }));
  EXPECT_EQ(faulty.stats().duplicated, 20u);
  faulty.stop();
}

TEST(FaultyTransport, TruncationEmitsStrictPrefixes) {
  InMemoryHub hub(2);
  FaultConfig cfg;
  cfg.truncate_rate = 1.0;
  cfg.seed = 3;
  FaultyTransport faulty(hub.endpoint(ProcessId{0}), cfg);
  Sink sink;
  sink.attach(hub.endpoint(ProcessId{1}));
  start_send_only(faulty);
  hub.endpoint(ProcessId{1}).start();
  constexpr std::uint32_t kSends = 200;
  for (std::uint32_t i = 0; i < kSends; ++i) {
    faulty.send(ProcessId{1}, payload(i));
  }
  EXPECT_EQ(faulty.stats().truncated, kSends);
  // Every delivery is a strict prefix of the 6-byte payload; empty results
  // are swallowed, so fewer than kSends may arrive. Give the queues a beat
  // to drain before snapshotting.
  ASSERT_TRUE(eventually([&] { return sink.count() >= kSends / 2; }));
  faulty.stop();
  for (const auto& d : sink.snapshot()) {
    EXPECT_LT(d.size(), 6u);
    EXPECT_FALSE(d.empty());
  }
}

TEST(FaultyTransport, CorruptionChangesBytesButNeverLength) {
  InMemoryHub hub(2);
  FaultConfig cfg;
  cfg.corrupt_rate = 1.0;
  cfg.seed = 5;
  FaultyTransport faulty(hub.endpoint(ProcessId{0}), cfg);
  Sink sink;
  sink.attach(hub.endpoint(ProcessId{1}));
  start_send_only(faulty);
  hub.endpoint(ProcessId{1}).start();
  constexpr std::uint32_t kSends = 200;
  for (std::uint32_t i = 0; i < kSends; ++i) {
    faulty.send(ProcessId{1}, payload(i));
  }
  ASSERT_TRUE(eventually([&] { return sink.count() == kSends; }));
  EXPECT_EQ(faulty.stats().corrupted, kSends);
  std::size_t changed = 0;
  const auto got = sink.snapshot();
  for (std::uint32_t i = 0; i < kSends; ++i) {
    ASSERT_EQ(got[i].size(), 6u);
    if (got[i] != payload(i)) ++changed;
  }
  // An even number of flips on the same byte can cancel out — rare, not
  // impossible; the overwhelming majority must differ.
  EXPECT_GT(changed, kSends * 9 / 10);
  faulty.stop();
}

}  // namespace
}  // namespace mmrfd::transport
