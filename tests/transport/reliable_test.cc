// Tests of the positive-ack retransmission layer over deterministic-loss
// in-memory links — the piece that restores the paper's reliable-channel
// model on a lossy deployment.
#include "transport/reliable.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "transport/faulty_transport.h"
#include "transport/inmemory_transport.h"
#include "transport/realtime_detector.h"
#include "transport/typed_transport.h"

namespace mmrfd::transport {
namespace {

using namespace std::chrono_literals;

template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds budget = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return cond();
}

TEST(SeqTracker, MarksFreshOnce) {
  SeqTracker t;
  EXPECT_TRUE(t.mark(1));
  EXPECT_FALSE(t.mark(1));
  EXPECT_TRUE(t.mark(2));
  EXPECT_EQ(t.floor(), 2u);
}

TEST(SeqTracker, OutOfOrderFoldsIntoFloor) {
  SeqTracker t;
  EXPECT_TRUE(t.mark(3));
  EXPECT_TRUE(t.mark(1));
  EXPECT_EQ(t.floor(), 1u);
  EXPECT_TRUE(t.mark(2));
  EXPECT_EQ(t.floor(), 3u);  // 1..3 contiguous now
  EXPECT_EQ(t.pending_size(), 0u);
  EXPECT_FALSE(t.mark(2));
}

TEST(SeqTracker, DuplicatesBelowFloorRejected) {
  SeqTracker t;
  for (std::uint64_t s = 1; s <= 100; ++s) EXPECT_TRUE(t.mark(s));
  EXPECT_EQ(t.floor(), 100u);
  for (std::uint64_t s = 1; s <= 100; ++s) EXPECT_FALSE(t.mark(s));
}

struct ReliablePair {
  InMemoryHub hub{2};
  ReliableConfig cfg;
  std::unique_ptr<ReliableDatagram> a;
  std::unique_ptr<ReliableDatagram> b;

  explicit ReliablePair(Duration retry = from_millis(10)) {
    cfg.retransmit_interval = retry;
    a = std::make_unique<ReliableDatagram>(hub.endpoint(ProcessId{0}), cfg);
    b = std::make_unique<ReliableDatagram>(hub.endpoint(ProcessId{1}), cfg);
  }
};

TEST(ReliableDatagram, DeliversWithoutLoss) {
  ReliablePair p;
  std::atomic<int> got{0};
  p.a->set_handler([](std::span<const std::uint8_t>) {});
  p.b->set_handler([&](std::span<const std::uint8_t> d) {
    EXPECT_EQ(d.size(), 3u);
    ++got;
  });
  p.a->start();
  p.b->start();
  const std::vector<std::uint8_t> payload{1, 2, 3};
  p.a->send(ProcessId{1}, payload);
  EXPECT_TRUE(eventually([&] { return got.load() == 1; }));
  // Ack drains the pending table.
  EXPECT_TRUE(eventually([&] { return p.a->unacked() == 0; }));
  p.a->stop();
  p.b->stop();
}

TEST(ReliableDatagram, RecoversFromHeavyLossExactlyOnce) {
  ReliablePair p;
  p.hub.set_loss_every(2);  // drop every 2nd datagram hub-wide (50%!)
  std::atomic<int> got{0};
  std::vector<bool> seen(200, false);
  std::mutex seen_mutex;
  p.a->set_handler([](std::span<const std::uint8_t>) {});
  p.b->set_handler([&](std::span<const std::uint8_t> d) {
    ASSERT_EQ(d.size(), 1u);
    std::lock_guard lock(seen_mutex);
    ASSERT_LT(d[0], seen.size());
    EXPECT_FALSE(seen[d[0]]) << "duplicate delivery of " << int(d[0]);
    seen[d[0]] = true;
    ++got;
  });
  p.a->start();
  p.b->start();
  for (std::uint8_t i = 0; i < 100; ++i) {
    p.a->send(ProcessId{1}, std::vector<std::uint8_t>{i});
  }
  EXPECT_TRUE(eventually([&] { return got.load() == 100; }));
  EXPECT_GT(p.hub.dropped(), 0u);
  EXPECT_GT(p.a->stats().retransmissions, 0u);
  EXPECT_EQ(p.a->stats().gave_up, 0u);
  p.a->stop();
  p.b->stop();
}

TEST(ReliableDatagram, GivesUpOnDeadPeer) {
  ReliableConfig cfg;
  cfg.retransmit_interval = from_millis(5);
  cfg.max_retries = 5;
  InMemoryHub hub(2);
  ReliableDatagram a(hub.endpoint(ProcessId{0}), cfg);
  a.set_handler([](std::span<const std::uint8_t>) {});
  a.start();
  // Peer 1 never starts: no acks ever come back.
  a.send(ProcessId{1}, std::vector<std::uint8_t>{42});
  EXPECT_TRUE(eventually([&] { return a.stats().gave_up == 1; }));
  EXPECT_EQ(a.unacked(), 0u);
  a.stop();
}

TEST(ReliableDatagram, DuplicateDataReAcked) {
  // If an ACK is lost the sender retransmits; the receiver must re-ack and
  // suppress the duplicate delivery.
  ReliablePair p(from_millis(5));
  p.hub.set_loss_every(3);  // some acks will be among the dropped
  std::atomic<int> got{0};
  p.a->set_handler([](std::span<const std::uint8_t>) {});
  p.b->set_handler([&](std::span<const std::uint8_t>) { ++got; });
  p.a->start();
  p.b->start();
  for (std::uint8_t i = 0; i < 30; ++i) {
    p.a->send(ProcessId{1}, std::vector<std::uint8_t>{i});
  }
  EXPECT_TRUE(eventually([&] { return got.load() == 30; }));
  EXPECT_TRUE(eventually([&] { return p.a->unacked() == 0; }));
  EXPECT_GT(p.b->stats().duplicates, 0u);
  EXPECT_EQ(got.load(), 30);
  p.a->stop();
  p.b->stop();
}

TEST(ReliableDatagram, FullDetectorStackOverLossyLinks) {
  // The headline integration: detector -> typed codec -> reliability ->
  // lossy in-memory links. With 25% loss the raw protocol would stall
  // (fault_injection_test shows it); with the reliability layer the rounds
  // keep turning and a stopped node is detected.
  constexpr std::uint32_t kN = 3;
  InMemoryHub hub(kN);
  hub.set_loss_every(4);
  ReliableConfig rcfg;
  rcfg.retransmit_interval = from_millis(10);
  std::vector<std::unique_ptr<ReliableDatagram>> reliable;
  std::vector<std::unique_ptr<TypedTransport>> typed;
  std::vector<std::unique_ptr<RealTimeDetector>> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) {
    reliable.push_back(std::make_unique<ReliableDatagram>(
        hub.endpoint(ProcessId{i}), rcfg));
    typed.push_back(std::make_unique<TypedTransport>(*reliable[i]));
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    RealTimeConfig cfg;
    cfg.detector.self = ProcessId{i};
    cfg.detector.n = kN;
    cfg.detector.f = 1;
    cfg.pacing = from_millis(20);
    nodes.push_back(std::make_unique<RealTimeDetector>(*typed[i], cfg));
  }
  for (auto& n : nodes) n->start();
  // Generous budgets: this runs under parallel test load, and every lost
  // datagram costs a 10 ms retransmit interval.
  EXPECT_TRUE(eventually(
      [&] {
        for (auto& n : nodes) {
          if (n->rounds_completed() < 5) return false;
          // Transient suspicions are legitimate while retransmissions catch
          // up; assert the eventually-clean stable state.
          if (!n->suspected().empty()) return false;
        }
        return true;
      },
      30000ms));
  nodes[2]->stop();
  EXPECT_TRUE(eventually(
      [&] {
        return nodes[0]->is_suspected(ProcessId{2}) &&
               nodes[1]->is_suspected(ProcessId{2});
      },
      30000ms));
  nodes[0]->stop();
  nodes[1]->stop();
}

TEST(SeqTracker, BoundedWindowFoldsPastAbandonedGaps) {
  // Regression: a sender that gives up on seq 1 leaves a gap that never
  // fills. The unbounded tracker pinned its fold on that gap and grew the
  // above-floor set for the life of the connection; the bounded window
  // declares the oldest gap lost once exceeded and jumps the floor.
  SeqTracker t(8);
  for (std::uint64_t s = 2; s <= 11; ++s) {
    EXPECT_TRUE(t.mark(s));
    EXPECT_LE(t.pending_size(), 8u) << "after seq " << s;
  }
  EXPECT_EQ(t.floor(), 11u);  // gap at 1 declared lost, 2..11 folded
  // The late gap-filler is now a duplicate — old-frame loss, which the
  // protocol above tolerates (the alternative is unbounded memory).
  EXPECT_FALSE(t.mark(1));
}

TEST(SeqTracker, WindowStaysBoundedUnderPathologicalGaps) {
  // Every other seq missing forever: the worst case for the fold.
  SeqTracker t(8);
  for (std::uint64_t s = 2; s <= 2000; s += 2) {
    EXPECT_TRUE(t.mark(s));
    EXPECT_LE(t.pending_size(), 8u) << "after seq " << s;
  }
  EXPECT_GT(t.floor(), 1900u);
}

TEST(ReliableDatagram, NoPrematureRetransmission) {
  // Regression: the retransmit loop used to resend *every* pending frame at
  // each wakeup, so a frame sent just before the tick was retransmitted
  // microseconds after its first transmission — burning a retry and
  // double-sending on a healthy link. A frame must now age a full
  // retransmit_interval before its first resend.
  ReliablePair p(from_millis(600));
  std::atomic<int> got{0};
  p.a->set_handler([](std::span<const std::uint8_t>) {});
  p.b->set_handler([&](std::span<const std::uint8_t>) { ++got; });
  p.a->start();
  p.b->start();
  // Let the loop run so its next wakeup lands shortly after our send.
  std::this_thread::sleep_for(450ms);
  p.hub.set_loss_every(1);  // the first transmission is lost
  p.a->send(ProcessId{1}, std::vector<std::uint8_t>{9});
  std::this_thread::sleep_for(100ms);
  p.hub.set_loss_every(0);
  // Well before the frame is interval-old nothing may have been resent —
  // the old code fired at its next wakeup (~150 ms after the send).
  std::this_thread::sleep_for(250ms);
  EXPECT_EQ(p.a->stats().retransmissions, 0u);
  EXPECT_EQ(got.load(), 0);
  // Once the frame ages past the interval the resend happens and delivers.
  EXPECT_TRUE(eventually([&] { return got.load() == 1; }));
  EXPECT_GE(p.a->stats().retransmissions, 1u);
  p.a->stop();
  p.b->stop();
}

TEST(ReliableDatagram, DupStormDeliversExactlyOnce) {
  // Every outgoing datagram duplicated at the channel (data frames *and*
  // retransmissions): dedup must deliver each payload exactly once, and the
  // receiver must count the suppressed copies.
  InMemoryHub hub(2);
  FaultConfig fcfg;
  fcfg.duplicate_rate = 1.0;
  FaultyTransport faulty(hub.endpoint(ProcessId{0}), fcfg);
  ReliableConfig cfg;
  cfg.retransmit_interval = from_millis(20);
  ReliableDatagram a(faulty, cfg);
  ReliableDatagram b(hub.endpoint(ProcessId{1}), cfg);
  std::atomic<int> got{0};
  std::vector<bool> seen(100, false);
  std::mutex seen_mutex;
  a.set_handler([](std::span<const std::uint8_t>) {});
  b.set_handler([&](std::span<const std::uint8_t> d) {
    ASSERT_EQ(d.size(), 1u);
    std::lock_guard lock(seen_mutex);
    EXPECT_FALSE(seen[d[0]]) << "duplicate delivery of " << int(d[0]);
    seen[d[0]] = true;
    ++got;
  });
  a.start();
  b.start();
  for (std::uint8_t i = 0; i < 100; ++i) {
    a.send(ProcessId{1}, std::vector<std::uint8_t>{i});
  }
  EXPECT_TRUE(eventually([&] { return got.load() == 100; }));
  EXPECT_TRUE(eventually([&] { return a.unacked() == 0; }));
  EXPECT_GE(b.stats().duplicates, 90u);
  EXPECT_EQ(got.load(), 100);
  a.stop();
  b.stop();
}

TEST(ReliableDatagram, ReorderStormDeliversExactlyOnce) {
  // Out-of-order data frames: the dedup tracker must accept above-floor
  // seqs in any order without dropping or double-delivering, and acks must
  // still drain the pending table.
  InMemoryHub hub(2);
  FaultConfig fcfg;
  fcfg.reorder_rate = 0.5;
  fcfg.seed = 17;
  FaultyTransport faulty(hub.endpoint(ProcessId{0}), fcfg);
  ReliableConfig cfg;
  cfg.retransmit_interval = from_millis(20);
  ReliableDatagram a(faulty, cfg);
  ReliableDatagram b(hub.endpoint(ProcessId{1}), cfg);
  std::atomic<int> got{0};
  std::vector<int> deliveries(200, 0);
  std::mutex seen_mutex;
  a.set_handler([](std::span<const std::uint8_t>) {});
  b.set_handler([&](std::span<const std::uint8_t> d) {
    ASSERT_EQ(d.size(), 1u);
    std::lock_guard lock(seen_mutex);
    ++deliveries[d[0]];
    ++got;
  });
  a.start();
  b.start();
  for (std::uint8_t i = 0; i < 200; ++i) {
    a.send(ProcessId{1}, std::vector<std::uint8_t>{i});
  }
  EXPECT_TRUE(eventually([&] { return got.load() == 200; }));
  EXPECT_TRUE(eventually([&] { return a.unacked() == 0; }));
  {
    std::lock_guard lock(seen_mutex);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(deliveries[i], 1) << "payload " << i;
    }
  }
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace mmrfd::transport
