// Differential protocol-equivalence harness: delta-encoded queries vs the
// canonical full encoding.
//
// The delta wire format (per-peer watermarks + interned epochs) is a pure
// encoding optimisation — it must never change what the protocol *does*.
// This harness enforces that in the strongest way we can afford: a thousand
// randomized fixed-seed schedules (random cluster shapes, crash plans,
// heavy-tailed delays, mid-run delay spikes, duplicated and lost messages)
// each run through TWO clusters that differ only in the encoding flag, with
// every host's suspected set, mistake set, round tag and query sequence
// diffed at every query round, and the complete mistake/suspicion
// transition logs, message counters and event counts diffed at the end.
// Any divergence — one entry, one tag, one event — fails with the schedule
// seed so the exact run can be replayed.
//
// In the spirit of exhaustive state-space checking of replication protocols
// (cf. Boucheneb & Imine on optimistic-replication model checking), the
// schedules are deterministic functions of their seed: a failure here is a
// repro, not a flake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <variant>

#include "common/rng.h"
#include "metrics/event_log.h"
#include "runtime/cluster.h"
#include "runtime/crash_plan.h"
#include "transport/codec.h"

namespace mmrfd::runtime {
namespace {

struct Schedule {
  std::uint64_t seed{0};
  std::uint32_t n{0};
  std::uint32_t f{0};
  std::size_t crashes{0};
  double pacing_jitter{0.0};
  net::DelayPreset preset{net::DelayPreset::kExponential};
  double duplicate_rate{0.0};
  double loss_rate{0.0};
  bool spike{false};
  bool accept_late{true};

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "schedule seed=" << seed << " n=" << n << " f=" << f
       << " crashes=" << crashes << " jitter=" << pacing_jitter
       << " preset=" << static_cast<int>(preset) << " dup=" << duplicate_rate
       << " loss=" << loss_rate << " spike=" << spike
       << " accept_late=" << accept_late;
    return os.str();
  }
};

Schedule make_schedule(std::uint64_t seed) {
  Xoshiro256 rng(derive_seed(seed, "equivalence.schedule"));
  Schedule s;
  s.seed = seed;
  s.n = static_cast<std::uint32_t>(3 + rng.next_below(7));  // 3..9
  s.f = static_cast<std::uint32_t>(1 + rng.next_below(s.n - 1));
  s.crashes = rng.next_below(std::min<std::uint64_t>(s.f, 3) + 1);
  s.pacing_jitter = rng.bernoulli(0.5) ? 0.2 : 0.0;
  s.preset = rng.bernoulli(0.3) ? net::DelayPreset::kPareto
                                : net::DelayPreset::kExponential;
  s.duplicate_rate = rng.bernoulli(0.3) ? 0.05 : 0.0;
  s.loss_rate = rng.bernoulli(0.2) ? 0.05 : 0.0;
  s.spike = rng.bernoulli(0.3);
  s.accept_late = !rng.bernoulli(0.2);
  return s;
}

constexpr double kHorizonSec = 2.5;
constexpr double kPacingMs = 50.0;

MmrCluster make_cluster(const Schedule& s, bool delta) {
  MmrClusterConfig cfg;
  cfg.n = s.n;
  cfg.f = s.f;
  cfg.seed = s.seed;
  cfg.pacing = from_millis(kPacingMs);
  cfg.pacing_jitter = s.pacing_jitter;
  cfg.mean_delay = from_millis(1);
  cfg.delay_preset = s.preset;
  cfg.accept_late_responses = s.accept_late;
  cfg.delta_queries = delta;
  if (s.spike) {
    SpikeSpec spike;
    spike.start = from_seconds(kHorizonSec * 0.3);
    spike.end = from_seconds(kHorizonSec * 0.5);
    spike.factor = 200.0;  // pushes 1 ms delays past the 50 ms pacing
    spike.affected = {ProcessId{s.n - 1}};
    cfg.spike = spike;
  }
  return MmrCluster(cfg);
}

/// Diffs per-host protocol state. `where` names the checkpoint.
void expect_same_state(const MmrCluster& full, const MmrCluster& delta,
                       const Schedule& s, const std::string& where) {
  for (std::uint32_t i = 0; i < s.n; ++i) {
    const auto& df = full.host(ProcessId{i}).detector();
    const auto& dd = delta.host(ProcessId{i}).detector();
    ASSERT_EQ(df.suspected_set(), dd.suspected_set())
        << s.describe() << " host " << i << " suspected sets diverged "
        << where;
    ASSERT_EQ(df.mistake_set(), dd.mistake_set())
        << s.describe() << " host " << i << " mistake sets diverged "
        << where;
    ASSERT_EQ(df.counter(), dd.counter())
        << s.describe() << " host " << i << " round tags diverged " << where;
    ASSERT_EQ(df.query_seq(), dd.query_seq())
        << s.describe() << " host " << i << " query seq diverged " << where;
    ASSERT_EQ(df.rounds_completed(), dd.rounds_completed())
        << s.describe() << " host " << i << " rounds diverged " << where;
  }
}

/// Diffs the complete suspicion/mistake transition logs entry by entry.
void expect_same_log(const MmrCluster& full, const MmrCluster& delta,
                     const Schedule& s) {
  const auto& ef = full.log().events();
  const auto& ed = delta.log().events();
  ASSERT_EQ(ef.size(), ed.size()) << s.describe() << " log volume diverged";
  for (std::size_t k = 0; k < ef.size(); ++k) {
    ASSERT_TRUE(ef[k].when == ed[k].when &&
                ef[k].observer == ed[k].observer &&
                ef[k].subject == ed[k].subject &&
                ef[k].kind == ed[k].kind && ef[k].tag == ed[k].tag)
        << s.describe() << " transition log diverged at entry " << k;
  }
}

void run_schedule(std::uint64_t seed) {
  const Schedule s = make_schedule(seed);
  MmrCluster full = make_cluster(s, /*delta=*/false);
  MmrCluster delta = make_cluster(s, /*delta=*/true);
  for (MmrCluster* c : {&full, &delta}) {
    if (s.duplicate_rate > 0) c->network().set_duplicate_rate(s.duplicate_rate);
    if (s.loss_rate > 0) c->network().set_loss_rate(s.loss_rate);
    c->network().set_size_fn([](const MmrMessage& m) {
      return std::visit(
          [](const auto& msg) { return transport::wire_size(msg); }, m);
    });
  }
  const auto horizon = from_seconds(kHorizonSec);
  const auto plan = CrashPlan::uniform(
      s.crashes, s.n, from_seconds(kHorizonSec * 0.25),
      from_seconds(kHorizonSec * 0.7), s.seed);
  full.start(plan);
  delta.start(plan);

  // Lockstep: one checkpoint per pacing period ("at every query round").
  const auto step = from_millis(kPacingMs);
  for (TimePoint t = step; t <= horizon; t += step) {
    full.run_until(t);
    delta.run_until(t);
    expect_same_state(full, delta, s,
                      "at t=" + std::to_string(to_seconds(t)) + "s");
    if (::testing::Test::HasFatalFailure()) return;
  }

  expect_same_log(full, delta, s);
  ASSERT_EQ(full.log().crashes().size(), delta.log().crashes().size())
      << s.describe();
  const auto& sf = full.network().stats();
  const auto& sd = delta.network().stats();
  ASSERT_EQ(sf.messages_sent, sd.messages_sent) << s.describe();
  ASSERT_EQ(sf.messages_delivered, sd.messages_delivered) << s.describe();
  ASSERT_EQ(sf.messages_dropped_loss, sd.messages_dropped_loss)
      << s.describe();
  ASSERT_EQ(sf.messages_duplicated, sd.messages_duplicated) << s.describe();
  ASSERT_EQ(full.simulation().events_fired(), delta.simulation().events_fired())
      << s.describe();
  // The optimisation must actually optimise — modulo the delta header: at
  // toy scale (sets of 0-2 entries) the epoch/base/ack varints can outweigh
  // the few omitted entries, so allow that bounded overhead. Real savings
  // are asserted at protocol scale in DeltaSavesBytesOnAStableCluster and
  // measured in bench/exp_scale.
  ASSERT_LE(sd.bytes_sent, sf.bytes_sent + sf.bytes_sent / 10 + 4096)
      << s.describe();
}

TEST(EncodingEquivalence, ThousandRandomSchedulesBitIdentical) {
  // >= 1000 randomized fixed-seed schedules. Shard-friendly: any single
  // seed can be replayed in isolation via run_schedule(seed).
  std::uint64_t total_seeds = 1000;
  for (std::uint64_t seed = 1; seed <= total_seeds; ++seed) {
    run_schedule(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "equivalence divergence at schedule seed " << seed;
    }
  }
}

TEST(EncodingEquivalence, DeltaSavesBytesOnAStableCluster) {
  // Protocol scale: once the crashed processes' suspicions stabilize, full
  // queries repeat O(f) entries forever while deltas are near-empty.
  Schedule s;
  s.seed = 4242;
  s.n = 40;
  s.f = 10;
  s.crashes = 8;
  MmrCluster full = make_cluster(s, false);
  MmrCluster delta = make_cluster(s, true);
  for (MmrCluster* c : {&full, &delta}) {
    c->network().set_size_fn([](const MmrMessage& m) {
      return std::visit(
          [](const auto& msg) { return transport::wire_size(msg); }, m);
    });
  }
  const auto plan = CrashPlan::uniform(s.crashes, s.n, from_millis(200),
                                       from_millis(800), s.seed);
  full.start(plan);
  delta.start(plan);
  full.run_for(from_seconds(10));
  delta.run_for(from_seconds(10));
  expect_same_state(full, delta, s, "after 10s");
  // Stable run: the delta encoding should cut bytes by a large factor, not
  // a rounding error (assert a conservative 1.5x; exp_scale shows the
  // asymptotic win at n=1000).
  EXPECT_LT(static_cast<double>(delta.network().stats().bytes_sent),
            static_cast<double>(full.network().stats().bytes_sent) / 1.5);
}

}  // namespace
}  // namespace mmrfd::runtime
