#include "core/omega.h"

#include <gtest/gtest.h>

#include <set>

namespace mmrfd::core {
namespace {

class FakeFd final : public FailureDetector {
 public:
  std::set<std::uint32_t> susp;
  std::vector<ProcessId> suspected() const override {
    std::vector<ProcessId> out;
    for (auto v : susp) out.push_back(ProcessId{v});
    return out;
  }
  bool is_suspected(ProcessId id) const override {
    return susp.count(id.value) > 0;
  }
};

TEST(Omega, LeaderIsSmallestUnsuspected) {
  FakeFd fd;
  EXPECT_EQ(extract_leader(fd, 5), ProcessId{0});
  fd.susp = {0};
  EXPECT_EQ(extract_leader(fd, 5), ProcessId{1});
  fd.susp = {0, 1, 2};
  EXPECT_EQ(extract_leader(fd, 5), ProcessId{3});
}

TEST(Omega, AllSuspectedYieldsNoProcess) {
  FakeFd fd;
  fd.susp = {0, 1, 2};
  EXPECT_EQ(extract_leader(fd, 3), kNoProcess);
}

TEST(OmegaView, CountsChanges) {
  FakeFd fd;
  OmegaView view(fd, 4);
  EXPECT_EQ(view.poll(), ProcessId{0});
  EXPECT_EQ(view.changes(), 1u);  // kNoProcess -> p0
  EXPECT_EQ(view.poll(), ProcessId{0});
  EXPECT_EQ(view.changes(), 1u);  // stable
  fd.susp = {0};
  EXPECT_EQ(view.poll(), ProcessId{1});
  EXPECT_EQ(view.changes(), 2u);
  fd.susp = {};
  EXPECT_EQ(view.poll(), ProcessId{0});
  EXPECT_EQ(view.changes(), 3u);
}

TEST(OmegaView, CurrentReflectsLastPoll) {
  FakeFd fd;
  OmegaView view(fd, 2);
  EXPECT_EQ(view.current(), kNoProcess);
  view.poll();
  EXPECT_EQ(view.current(), ProcessId{0});
}

}  // namespace
}  // namespace mmrfd::core
