// Unit tests for DetectorCore: each test drives the sans-I/O state machine
// by hand through the exact line-level behaviours of the paper's algorithm.
#include "core/detector_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace mmrfd::core {
namespace {

DetectorConfig cfg(std::uint32_t self, std::uint32_t n, std::uint32_t f) {
  DetectorConfig c;
  c.self = ProcessId{self};
  c.n = n;
  c.f = f;
  return c;
}

TEST(DetectorCore, InitialState) {
  DetectorCore d(cfg(0, 5, 1));
  EXPECT_EQ(d.counter(), 0u);
  EXPECT_TRUE(d.suspected().empty());
  EXPECT_TRUE(d.mistake_set().empty());
  EXPECT_EQ(d.known().size(), 4u);  // Pi \ {self}
  EXPECT_FALSE(d.query_in_progress());
}

TEST(DetectorCore, QuorumIsNMinusF) {
  EXPECT_EQ(cfg(0, 10, 3).quorum(), 7u);
  EXPECT_EQ(cfg(0, 4, 1).quorum(), 3u);
  // f < n keeps n - f >= 1 without any lower clamp.
  EXPECT_EQ(cfg(0, 1, 0).quorum(), 1u);
  EXPECT_EQ(cfg(0, 5, 4).quorum(), 1u);
}

TEST(DetectorCore, ConstructorRejectsMisconfiguration) {
  // f >= n used to underflow n - f in quorum() (masked by a zero-clamp);
  // now the constructor rejects it in every build type.
  EXPECT_THROW(DetectorCore{cfg(0, 5, 5)}, std::invalid_argument);
  EXPECT_THROW(DetectorCore{cfg(0, 5, 7)}, std::invalid_argument);
  EXPECT_THROW(DetectorCore{cfg(0, 0, 0)}, std::invalid_argument);
  EXPECT_THROW(DetectorCore{cfg(5, 5, 1)}, std::invalid_argument);  // self >= n
}

TEST(DetectorCore, TiedTagMistakeRemergeIsNotAnEvent) {
  struct CountingObserver final : SuspicionObserver {
    int mistakes = 0;
    void on_mistake(ProcessId, Tag) override { ++mistakes; }
  } obs;
  DetectorCore d(cfg(0, 4, 1));
  d.set_observer(&obs);
  QueryMessage in;
  in.seq = 1;
  in.push_mistake({ProcessId{2}, 5});
  (void)d.on_query(ProcessId{1}, in);
  EXPECT_EQ(obs.mistakes, 1);
  // The same entry arriving from other peers changes no state and must not
  // fire the observer again (at scale these no-op re-merges flooded the
  // event log with hundreds of millions of entries).
  (void)d.on_query(ProcessId{3}, in);
  (void)d.on_query(ProcessId{1}, in);
  EXPECT_EQ(obs.mistakes, 1);
  // A strictly newer mistake is a transition again.
  in.push_mistake({ProcessId{2}, 6});
  (void)d.on_query(ProcessId{1}, in);
  EXPECT_EQ(obs.mistakes, 2);
}

TEST(DetectorCore, SingletonSystemIsValidAndTerminatesInstantly) {
  DetectorCore d(cfg(0, 1, 0));
  EXPECT_TRUE(d.known().empty());
  (void)d.start_query();
  EXPECT_TRUE(d.query_terminated());  // quorum of 1 = the self-response
  d.finish_round();
  EXPECT_TRUE(d.suspected().empty());
}

TEST(DetectorCore, QuorumClampedToN) {
  auto c = cfg(0, 4, 1);
  c.extra_quorum = 10;
  EXPECT_EQ(c.quorum(), 4u);
}

TEST(DetectorCore, StartQueryCarriesCurrentSets) {
  DetectorCore d(cfg(0, 4, 1));
  // Seed some state through a received query.
  QueryMessage in;
  in.seq = 1;
  in.push_suspected({ProcessId{2}, 5});
  in.push_mistake({ProcessId{3}, 4});
  (void)d.on_query(ProcessId{1}, in);
  const QueryMessage out = d.start_query();
  EXPECT_EQ(out.seq, 1u);
  ASSERT_EQ(out.suspected().size(), 1u);
  EXPECT_EQ(out.suspected()[0], (TaggedEntry{ProcessId{2}, 5}));
  ASSERT_EQ(out.mistakes().size(), 1u);
  EXPECT_EQ(out.mistakes()[0], (TaggedEntry{ProcessId{3}, 4}));
}

TEST(DetectorCore, SelfResponseCountsTowardQuorum) {
  // n=4, f=1 -> quorum 3: self + 2 remote responses terminate the query.
  DetectorCore d(cfg(0, 4, 1));
  const auto q = d.start_query();
  EXPECT_FALSE(d.query_terminated());
  EXPECT_FALSE(d.on_response(ProcessId{1}, ResponseMessage{q.seq}));
  EXPECT_TRUE(d.on_response(ProcessId{2}, ResponseMessage{q.seq}));
  EXPECT_TRUE(d.query_terminated());
}

TEST(DetectorCore, TerminationReportedExactlyOnce) {
  DetectorCore d(cfg(0, 4, 1));
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  EXPECT_TRUE(d.on_response(ProcessId{2}, ResponseMessage{q.seq}));
  EXPECT_FALSE(d.on_response(ProcessId{3}, ResponseMessage{q.seq}));
}

TEST(DetectorCore, DuplicateResponsesIgnored) {
  DetectorCore d(cfg(0, 4, 1));
  const auto q = d.start_query();
  EXPECT_FALSE(d.on_response(ProcessId{1}, ResponseMessage{q.seq}));
  EXPECT_FALSE(d.on_response(ProcessId{1}, ResponseMessage{q.seq}));
  EXPECT_EQ(d.rec_from().size(), 2u);  // self + p1
}

TEST(DetectorCore, StaleResponsesIgnored) {
  DetectorCore d(cfg(0, 4, 1));
  const auto q1 = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q1.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q1.seq});
  d.finish_round();
  const auto q2 = d.start_query();
  EXPECT_NE(q1.seq, q2.seq);
  EXPECT_FALSE(d.on_response(ProcessId{3}, ResponseMessage{q1.seq}));
  EXPECT_EQ(d.rec_from().size(), 1u);  // self only
}

TEST(DetectorCore, FinishRoundSuspectsNonResponders) {
  DetectorCore d(cfg(0, 5, 2));  // quorum 3
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
  d.finish_round();
  const auto suspects = d.suspected();
  ASSERT_EQ(suspects.size(), 2u);
  EXPECT_EQ(suspects[0], ProcessId{3});
  EXPECT_EQ(suspects[1], ProcessId{4});
  // Tagged with the pre-increment counter value 0; counter then advanced.
  EXPECT_EQ(d.suspected_set().tag_of(ProcessId{3}), 0u);
  EXPECT_EQ(d.counter(), 1u);
}

TEST(DetectorCore, LateResponseJoinsRecFromBeforeFinish) {
  DetectorCore d(cfg(0, 5, 2));
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});  // terminates
  // p3's late response arrives during the pacing window.
  (void)d.on_response(ProcessId{3}, ResponseMessage{q.seq});
  d.finish_round();
  const auto suspects = d.suspected();
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], ProcessId{4});
}

TEST(DetectorCore, LateResponsesRejectedWhenDisabled) {
  auto c = cfg(0, 5, 2);
  c.accept_late_responses = false;
  DetectorCore d(c);
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{3}, ResponseMessage{q.seq});  // dropped
  d.finish_round();
  EXPECT_EQ(d.suspected().size(), 2u);
}

TEST(DetectorCore, WinningSetIsFirstQuorumOnly) {
  DetectorCore d(cfg(0, 5, 2));
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{3}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});  // late
  const auto w = d.winning();
  ASSERT_EQ(w.size(), 3u);  // self, p3, p1 — sorted
  EXPECT_TRUE(std::binary_search(w.begin(), w.end(), ProcessId{0}));
  EXPECT_TRUE(std::binary_search(w.begin(), w.end(), ProcessId{1}));
  EXPECT_TRUE(std::binary_search(w.begin(), w.end(), ProcessId{3}));
  EXPECT_EQ(d.rec_from().size(), 4u);
}

TEST(DetectorCore, AlreadySuspectedNotReTagged) {
  DetectorCore d(cfg(0, 4, 1));
  auto round = [&] {
    const auto q = d.start_query();
    (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
    (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
    d.finish_round();
  };
  round();  // p3 suspected with tag 0
  round();  // p3 still absent, but already suspected: tag unchanged
  EXPECT_EQ(d.suspected_set().tag_of(ProcessId{3}), 0u);
  EXPECT_EQ(d.counter(), 2u);
}

// --- T2 merge semantics ------------------------------------------------------

TEST(DetectorCore, MergeAdoptsUnknownSuspicion) {
  DetectorCore d(cfg(0, 5, 1));
  QueryMessage q;
  q.seq = 1;
  q.push_suspected({ProcessId{2}, 7});
  const auto r = d.on_query(ProcessId{1}, q);
  EXPECT_EQ(r.seq, 1u);
  EXPECT_TRUE(d.is_suspected(ProcessId{2}));
  EXPECT_EQ(d.suspected_set().tag_of(ProcessId{2}), 7u);
}

TEST(DetectorCore, MergeIgnoresOlderSuspicion) {
  DetectorCore d(cfg(0, 5, 1));
  QueryMessage newer;
  newer.seq = 1;
  newer.push_suspected({ProcessId{2}, 7});
  (void)d.on_query(ProcessId{1}, newer);
  QueryMessage older;
  older.seq = 2;
  older.push_suspected({ProcessId{2}, 3});
  (void)d.on_query(ProcessId{3}, older);
  EXPECT_EQ(d.suspected_set().tag_of(ProcessId{2}), 7u);
}

TEST(DetectorCore, MergeIgnoresEqualTagSuspicion) {
  // Line 22 uses strict <: an equal-tag suspicion is not "more recent".
  DetectorCore d(cfg(0, 5, 1));
  QueryMessage q;
  q.seq = 1;
  q.push_suspected({ProcessId{2}, 7});
  (void)d.on_query(ProcessId{1}, q);
  QueryMessage q2;
  q2.seq = 1;
  q2.push_mistake({ProcessId{2}, 7});
  (void)d.on_query(ProcessId{3}, q2);  // mistake with equal tag WINS (<=)
  EXPECT_FALSE(d.is_suspected(ProcessId{2}));
  QueryMessage q3;
  q3.seq = 2;
  q3.push_suspected({ProcessId{2}, 7});
  (void)d.on_query(ProcessId{1}, q3);  // suspicion with equal tag loses
  EXPECT_FALSE(d.is_suspected(ProcessId{2}));
  EXPECT_TRUE(d.mistake_set().contains(ProcessId{2}));
}

TEST(DetectorCore, MistakeTieBreakFavorsMistake) {
  // The <= in line 33 vs < in line 22: with identical tags, the mistake
  // overrides the suspicion but not vice versa.
  DetectorCore d(cfg(0, 5, 1));
  QueryMessage susp;
  susp.seq = 1;
  susp.push_suspected({ProcessId{3}, 4});
  (void)d.on_query(ProcessId{1}, susp);
  EXPECT_TRUE(d.is_suspected(ProcessId{3}));
  QueryMessage mist;
  mist.seq = 1;
  mist.push_mistake({ProcessId{3}, 4});
  (void)d.on_query(ProcessId{2}, mist);
  EXPECT_FALSE(d.is_suspected(ProcessId{3}));
  EXPECT_EQ(d.mistake_set().tag_of(ProcessId{3}), 4u);
}

TEST(DetectorCore, NewerSuspicionOverridesMistake) {
  DetectorCore d(cfg(0, 5, 1));
  QueryMessage mist;
  mist.seq = 1;
  mist.push_mistake({ProcessId{3}, 4});
  (void)d.on_query(ProcessId{1}, mist);
  QueryMessage susp;
  susp.seq = 1;
  susp.push_suspected({ProcessId{3}, 5});
  (void)d.on_query(ProcessId{2}, susp);
  EXPECT_TRUE(d.is_suspected(ProcessId{3}));
  EXPECT_FALSE(d.mistake_set().contains(ProcessId{3}));
}

TEST(DetectorCore, SelfDefenceGeneratesDominatingMistake) {
  // Lines 23-25: receiving a suspicion about *myself* produces a mistake
  // with tag strictly above the suspicion's.
  DetectorCore d(cfg(0, 5, 1));
  QueryMessage q;
  q.seq = 1;
  q.push_suspected({ProcessId{0}, 9});
  (void)d.on_query(ProcessId{1}, q);
  EXPECT_FALSE(d.is_suspected(ProcessId{0}));
  ASSERT_TRUE(d.mistake_set().contains(ProcessId{0}));
  EXPECT_EQ(d.mistake_set().tag_of(ProcessId{0}), 10u);
  EXPECT_GE(d.counter(), 10u);
  // The mistake rides the next query.
  const auto out = d.start_query();
  ASSERT_EQ(out.mistakes().size(), 1u);
  EXPECT_EQ(out.mistakes()[0], (TaggedEntry{ProcessId{0}, 10}));
}

TEST(DetectorCore, SelfDefenceIgnoredWhenOwnMistakeNewer) {
  DetectorCore d(cfg(0, 5, 1));
  QueryMessage q;
  q.seq = 1;
  q.push_suspected({ProcessId{0}, 9});
  (void)d.on_query(ProcessId{1}, q);  // mistake tag 10
  QueryMessage stale;
  stale.seq = 1;
  stale.push_suspected({ProcessId{0}, 6});
  (void)d.on_query(ProcessId{2}, stale);
  EXPECT_EQ(d.mistake_set().tag_of(ProcessId{0}), 10u);
}

TEST(DetectorCore, FreshSuspicionDominatesLocalMistake) {
  // T1 lines 10-12: when a process with a recorded mistake stops responding,
  // the new suspicion's tag jumps above the mistake's.
  DetectorCore d(cfg(0, 4, 1));
  QueryMessage mist;
  mist.seq = 1;
  mist.push_mistake({ProcessId{3}, 41});
  (void)d.on_query(ProcessId{1}, mist);
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
  d.finish_round();  // p3 did not respond
  EXPECT_TRUE(d.is_suspected(ProcessId{3}));
  EXPECT_EQ(d.suspected_set().tag_of(ProcessId{3}), 42u);
  EXPECT_FALSE(d.mistake_set().contains(ProcessId{3}));
  EXPECT_EQ(d.counter(), 43u);
}

TEST(DetectorCore, CounterNeverDecreases) {
  DetectorCore d(cfg(0, 4, 1));
  Tag last = d.counter();
  Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    if (rng.bernoulli(0.5)) {
      QueryMessage q;
      q.seq = static_cast<QuerySeq>(i);
      if (rng.bernoulli(0.5)) {
        q.push_suspected({ProcessId{static_cast<std::uint32_t>(
                            rng.next_below(4))},
                        rng.next_below(100)});
      } else {
        q.push_mistake({ProcessId{static_cast<std::uint32_t>(
                           rng.next_below(4))},
                       rng.next_below(100)});
      }
      (void)d.on_query(ProcessId{1}, q);
    } else {
      const auto q = d.start_query();
      (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
      (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
      d.finish_round();
    }
    EXPECT_GE(d.counter(), last);
    last = d.counter();
  }
}

TEST(DetectorCore, SuspectedAndMistakeSetsDisjointUnderRandomMerges) {
  // Protocol invariant: a process is never simultaneously suspected and
  // excused. Fuzz the merge paths.
  DetectorCore d(cfg(0, 8, 2));
  Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) {
    QueryMessage q;
    q.seq = static_cast<QuerySeq>(i);
    const int n_entries = static_cast<int>(rng.next_below(4));
    for (int k = 0; k < n_entries; ++k) {
      const TaggedEntry e{
          ProcessId{static_cast<std::uint32_t>(rng.next_below(8))},
          rng.next_below(50)};
      if (rng.bernoulli(0.5)) {
        q.push_suspected(e);
      } else {
        q.push_mistake(e);
      }
    }
    const auto from =
        ProcessId{static_cast<std::uint32_t>(1 + rng.next_below(7))};
    (void)d.on_query(from, q);
    for (const auto& e : d.suspected_set().entries()) {
      EXPECT_FALSE(d.mistake_set().contains(e.id));
      EXPECT_NE(e.id, ProcessId{0});  // never suspects itself
    }
  }
}

TEST(DetectorCore, ObserverSeesTransitions) {
  struct Recorder : SuspicionObserver {
    std::vector<std::pair<char, std::uint32_t>> events;
    void on_suspected(ProcessId s, Tag) override {
      events.emplace_back('S', s.value);
    }
    void on_cleared(ProcessId s, Tag) override {
      events.emplace_back('C', s.value);
    }
    void on_mistake(ProcessId s, Tag) override {
      events.emplace_back('M', s.value);
    }
  } rec;
  DetectorCore d(cfg(0, 4, 1));
  d.set_observer(&rec);
  QueryMessage susp;
  susp.seq = 1;
  susp.push_suspected({ProcessId{2}, 3});
  (void)d.on_query(ProcessId{1}, susp);
  QueryMessage mist;
  mist.seq = 1;
  mist.push_mistake({ProcessId{2}, 5});
  (void)d.on_query(ProcessId{1}, mist);
  ASSERT_EQ(rec.events.size(), 3u);
  EXPECT_EQ(rec.events[0], std::make_pair('S', 2u));
  EXPECT_EQ(rec.events[1], std::make_pair('C', 2u));
  EXPECT_EQ(rec.events[2], std::make_pair('M', 2u));
}

TEST(DetectorCore, TwoCoreConversationConverges) {
  // Manual two-node exchange: p1 suspected p0 (tag 9); after one query from
  // p0 and one from p1, both agree p0 is alive (mistake tag 10).
  DetectorCore d0(cfg(0, 2, 1));
  DetectorCore d1(cfg(1, 2, 1));
  // p1 believes p0 is suspect.
  QueryMessage seed;
  seed.seq = 99;
  seed.push_suspected({ProcessId{0}, 9});
  (void)d1.on_query(ProcessId{0}, seed);  // from a hypothetical third party
  // p1 queries p0.
  const auto q1 = d1.start_query();
  const auto r0 = d0.on_query(ProcessId{1}, q1);  // p0 defends itself
  (void)d1.on_response(ProcessId{0}, ResponseMessage{r0.seq});
  EXPECT_TRUE(d0.mistake_set().contains(ProcessId{0}));
  // p0's next query carries the mistake; p1 adopts it.
  const auto q0 = d0.start_query();
  (void)d1.on_query(ProcessId{0}, q0);
  EXPECT_FALSE(d1.is_suspected(ProcessId{0}));
  EXPECT_EQ(d1.mistake_set().tag_of(ProcessId{0}), 10u);
}

TEST(DetectorCore, RoundsCompletedCounts) {
  DetectorCore d(cfg(0, 2, 1));  // quorum 1: self-terminating queries
  EXPECT_EQ(d.rounds_completed(), 0u);
  for (int i = 0; i < 3; ++i) {
    (void)d.start_query();
    ASSERT_TRUE(d.query_terminated());
    d.finish_round();
  }
  EXPECT_EQ(d.rounds_completed(), 3u);
}

// --- delta encoding ----------------------------------------------------------

DetectorConfig delta_cfg(std::uint32_t self, std::uint32_t n,
                         std::uint32_t f) {
  auto c = cfg(self, n, f);
  c.delta_queries = true;
  return c;
}

/// One terminated round at `d` where `responders` answer (echoing epochs as
/// the wire would).
void run_round(DetectorCore& d, std::initializer_list<std::uint32_t> responders) {
  d.begin_query();
  for (const std::uint32_t r : responders) {
    ResponseMessage resp;
    resp.seq = d.query_seq();
    resp.ack_epoch = d.query_for(ProcessId{r}).epoch;
    (void)d.on_response(ProcessId{r}, resp);
  }
  ASSERT_TRUE(d.query_terminated());
  d.finish_round();
}

TEST(DetectorCore, FirstQueryToEveryPeerIsFull) {
  DetectorCore d(delta_cfg(0, 4, 1));
  d.begin_query();
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(d.full_query_needed(ProcessId{i})) << i;
    EXPECT_FALSE(d.query_for(ProcessId{i}).is_delta()) << i;
  }
}

TEST(DetectorCore, AckAdvancesWatermarkAndShrinksNextQuery) {
  DetectorCore d(delta_cfg(0, 5, 2));
  // Round 1: p3/p4 don't respond -> suspected. p1's ack covers the epoch of
  // the (full) query it received... which was built BEFORE the suspicions.
  run_round(d, {1, 2});
  EXPECT_EQ(d.suspected().size(), 2u);
  // Round 2: p1 acked epoch 0 (pre-suspicion state), so its query is still
  // full. Its ack now covers the suspicions.
  run_round(d, {1, 2});
  // Round 3: nothing changed since p1's last ack -> empty delta.
  d.begin_query();
  ASSERT_FALSE(d.full_query_needed(ProcessId{1}));
  const auto q = d.query_for(ProcessId{1});
  EXPECT_TRUE(q.is_delta());
  EXPECT_TRUE(q.entries.empty());
  EXPECT_EQ(q.base_epoch, d.state_epoch());
  // The full reference for the same round still carries both entries.
  EXPECT_EQ(d.full_query().entries.size(), 2u);
}

TEST(DetectorCore, DeltaCarriesOnlyChangesSinceAck) {
  DetectorCore d(delta_cfg(0, 6, 2));
  run_round(d, {1, 2, 3, 4});  // p5 suspected
  run_round(d, {1, 2, 3, 4});  // p1 acks the p5 suspicion
  // New information arrives: p2 is excused elsewhere... a mistake about p4.
  QueryMessage gossip;
  gossip.seq = 9;
  gossip.push_mistake({ProcessId{4}, 50});
  (void)d.on_query(ProcessId{2}, gossip);
  d.begin_query();
  const auto q = d.query_for(ProcessId{1});
  ASSERT_TRUE(q.is_delta());
  // Only the mistake changed since p1's ack; the stable p5 suspicion is
  // interned in base_epoch.
  ASSERT_EQ(q.entries.size(), 1u);
  EXPECT_TRUE(q.suspected().empty());
  EXPECT_EQ(q.mistakes()[0], (TaggedEntry{ProcessId{4}, 50}));
}

TEST(DetectorCore, DeltaMergeMatchesFullMerge) {
  // The same conversation through a delta-encoded and a full-encoded
  // sender produces identical receiver state (the harness does this at
  // cluster scale; this is the two-core minimal case).
  DetectorCore sender_delta(delta_cfg(0, 4, 1));
  auto full_cfg = cfg(0, 4, 1);
  full_cfg.delta_queries = false;
  DetectorCore sender_full(full_cfg);
  DetectorCore rx_delta(delta_cfg(1, 4, 1));
  DetectorCore rx_full(delta_cfg(1, 4, 1));
  for (int round = 0; round < 4; ++round) {
    for (DetectorCore* s : {&sender_delta, &sender_full}) {
      s->begin_query();
      DetectorCore& rx = (s == &sender_delta) ? rx_delta : rx_full;
      const auto q = s->query_for(ProcessId{1});
      const auto r = rx.on_query(ProcessId{0}, q);
      (void)s->on_response(ProcessId{1}, r);
      (void)s->on_response(ProcessId{2}, ResponseMessage{s->query_seq()});
      s->finish_round();  // p3 never answers -> suspicion churn
    }
    ASSERT_EQ(rx_delta.suspected_set(), rx_full.suspected_set()) << round;
    ASSERT_EQ(rx_delta.mistake_set(), rx_full.mistake_set()) << round;
  }
}

TEST(DetectorCore, EpochMissTriggersNeedFullAndResync) {
  DetectorCore d(delta_cfg(0, 4, 1));
  run_round(d, {1, 2});  // p3 suspected
  run_round(d, {1, 2});  // p1's ack covers it
  d.begin_query();
  ASSERT_FALSE(d.full_query_needed(ProcessId{1}));
  const auto delta = d.query_for(ProcessId{1});
  ASSERT_TRUE(delta.is_delta());
  // A RESTARTED p1 (fresh core = lost state) receives the delta: it cannot
  // claim the interned base it never saw, answers need_full, but still
  // merges the (safe) entries it did receive.
  DetectorCore fresh(delta_cfg(1, 4, 1));
  const auto r = fresh.on_query(ProcessId{0}, delta);
  EXPECT_TRUE(r.need_full);
  EXPECT_EQ(fresh.seen_epoch(ProcessId{0}), 0u);  // not advanced
  // The sender drops its watermark and resyncs with a full query.
  (void)d.on_response(ProcessId{1}, r);
  EXPECT_EQ(d.acked_epoch(ProcessId{1}), 0u);
  (void)d.on_response(ProcessId{2}, ResponseMessage{d.query_seq()});
  ASSERT_TRUE(d.query_terminated());
  d.finish_round();
  d.begin_query();
  EXPECT_TRUE(d.full_query_needed(ProcessId{1}));
  const auto full = d.query_for(ProcessId{1});
  EXPECT_FALSE(full.is_delta());
  const auto r2 = fresh.on_query(ProcessId{0}, full);
  EXPECT_FALSE(r2.need_full);
  EXPECT_EQ(fresh.seen_epoch(ProcessId{0}), full.epoch);
  EXPECT_TRUE(fresh.is_suspected(ProcessId{3}));  // fully resynced
}

TEST(DetectorCore, JournalOverrunFallsBackToFull) {
  auto c = delta_cfg(0, 4, 1);
  c.delta_journal_capacity = 4;  // tiny replay window
  DetectorCore d(c);
  run_round(d, {1, 2});
  run_round(d, {1, 2});
  ASSERT_FALSE(d.full_query_needed(ProcessId{1}));
  // p1 stops acking while state churns past the window (tag upgrades for
  // p3 via gossip).
  for (Tag t = 10; t < 30; ++t) {
    QueryMessage gossip;
    gossip.seq = t;
    gossip.push_suspected({ProcessId{3}, t});
    (void)d.on_query(ProcessId{2}, gossip);
  }
  d.begin_query();
  EXPECT_TRUE(d.full_query_needed(ProcessId{1}));
  EXPECT_FALSE(d.query_for(ProcessId{1}).is_delta());
}

TEST(DetectorCore, LaggingPeerGetsFullOnceDeltaWouldCostMore) {
  // The cost guard: a peer whose ack lags by far more records than the sets
  // hold gets the shared full encoding even while the journal still covers
  // it (crashed peers stop acking and must not drag ever-longer suffix
  // scans).
  DetectorCore d(delta_cfg(0, 4, 1));
  run_round(d, {1, 2});
  run_round(d, {1, 2});
  ASSERT_FALSE(d.full_query_needed(ProcessId{1}));
  for (Tag t = 100; t < 200; ++t) {  // 100 changes, sets hold 1 entry
    QueryMessage gossip;
    gossip.seq = t;
    gossip.push_suspected({ProcessId{3}, t});
    (void)d.on_query(ProcessId{2}, gossip);
  }
  d.begin_query();
  EXPECT_TRUE(d.full_query_needed(ProcessId{1}));
}

TEST(DetectorCore, ReferenceModeStaysEpochless) {
  auto c = cfg(0, 4, 1);
  c.delta_queries = false;
  DetectorCore d(c);
  const auto q = d.start_query();
  EXPECT_EQ(q.epoch, 0u);
  EXPECT_FALSE(q.is_delta());
  EXPECT_TRUE(d.full_query_needed(ProcessId{1}));
  // And its responses to epoch-less queries carry no ack.
  QueryMessage in;
  in.seq = 1;
  const auto r = d.on_query(ProcessId{1}, in);
  EXPECT_EQ(r.ack_epoch, 0u);
  EXPECT_FALSE(r.need_full);
}

TEST(DetectorCore, ForgedSenderIdCannotJoinQuorum) {
  DetectorCore d(delta_cfg(0, 4, 1));
  d.begin_query();
  EXPECT_FALSE(d.on_response(ProcessId{99}, ResponseMessage{d.query_seq()}));
  EXPECT_EQ(d.rec_from().size(), 1u);  // self only
}

TEST(DetectorCore, PaperFigureOneScenario) {
  // The paper's illustration (adapted to full connectivity): B suspects A
  // with counter 5, C suspects A with counter 10; when the information meets,
  // the counter-10 entry wins everywhere.
  DetectorCore b(cfg(1, 5, 1));
  DetectorCore c(cfg(2, 5, 1));
  DetectorCore dnode(cfg(3, 5, 1));
  QueryMessage fromB;
  fromB.seq = 1;
  fromB.push_suspected({ProcessId{0}, 5});
  QueryMessage fromC;
  fromC.seq = 1;
  fromC.push_suspected({ProcessId{0}, 10});
  // D hears B first, then C: upgrades 5 -> 10.
  (void)dnode.on_query(ProcessId{1}, fromB);
  EXPECT_EQ(dnode.suspected_set().tag_of(ProcessId{0}), 5u);
  (void)dnode.on_query(ProcessId{2}, fromC);
  EXPECT_EQ(dnode.suspected_set().tag_of(ProcessId{0}), 10u);
  // B holds the counter-5 entry, C the counter-10 entry.
  (void)b.on_query(ProcessId{4}, fromB);
  (void)c.on_query(ProcessId{4}, fromC);
  // B upgrades from C's info; C discards B's older info.
  (void)b.on_query(ProcessId{2}, fromC);
  EXPECT_EQ(b.suspected_set().tag_of(ProcessId{0}), 10u);
  (void)c.on_query(ProcessId{1}, fromB);
  EXPECT_EQ(c.suspected_set().tag_of(ProcessId{0}), 10u);
}

TEST(DetectorCore, GiveupSkipsDeadPeerAtProbeRate) {
  // n=4, f=1, K=3: peer 3 never responds. Once its consecutive-suspected
  // streak reaches K, it is queried only on streak % K == 0 probe rounds.
  auto c = cfg(0, 4, 1);
  c.giveup_rounds = 3;
  DetectorCore d(c);
  std::vector<bool> queried;
  for (int round = 1; round <= 10; ++round) {
    d.begin_query();
    queried.push_back(d.should_query(ProcessId{3}));
    for (const std::uint32_t r : {1u, 2u}) {
      (void)d.on_response(ProcessId{r}, ResponseMessage{d.query_seq()});
    }
    ASSERT_TRUE(d.query_terminated());
    d.finish_round();
    EXPECT_EQ(d.suspect_streak(ProcessId{3}),
              static_cast<std::uint32_t>(round));
  }
  // begin_query of round r sees streak r-1: skip when r-1 >= 3 and
  // (r-1) % 3 != 0 — i.e. rounds 5, 6, 8, 9 skip; 4, 7, 10 probe.
  const std::vector<bool> expected{true, true,  true, true,  false,
                                   false, true, false, false, true};
  EXPECT_EQ(queried, expected);
  EXPECT_EQ(d.queries_skipped(), 4u);
  // Responsive peers are always queried.
  d.begin_query();
  EXPECT_TRUE(d.should_query(ProcessId{1}));
  EXPECT_TRUE(d.should_query(ProcessId{2}));
}

TEST(DetectorCore, GiveupStreakResetsOnRepair) {
  auto c = cfg(0, 4, 1);
  c.giveup_rounds = 2;
  DetectorCore d(c);
  for (int round = 0; round < 4; ++round) run_round(d, {1, 2});
  EXPECT_EQ(d.suspect_streak(ProcessId{3}), 4u);
  // Peer 3's mistake arrives via gossip: the streak must reset and the peer
  // must be queried again immediately.
  QueryMessage repair;
  repair.seq = 1;
  repair.push_mistake({ProcessId{3}, d.counter() + 1});
  (void)d.on_query(ProcessId{1}, repair);
  run_round(d, {1, 2, 3});
  EXPECT_EQ(d.suspect_streak(ProcessId{3}), 0u);
  d.begin_query();
  EXPECT_TRUE(d.should_query(ProcessId{3}));
}

TEST(DetectorCore, GiveupCapNeverBlocksQuorum) {
  // n=5, f=1: quorum 4, so at most n - quorum = 1 peer may be skipped at
  // once even when two peers have qualifying streaks (equal streaks here,
  // so the tie goes to the lowest id, deterministically).
  auto c = cfg(0, 5, 1);
  c.giveup_rounds = 2;
  DetectorCore d(c);
  // Suspect 3 and 4 via gossip so their streaks grow while 1..3 keep the
  // rounds terminating (a responder's existing suspicion entry persists).
  QueryMessage gossip;
  gossip.seq = 1;
  gossip.push_suspected({ProcessId{3}, 50});
  gossip.push_suspected({ProcessId{4}, 50});
  (void)d.on_query(ProcessId{1}, gossip);
  for (int round = 0; round < 5; ++round) run_round(d, {1, 2, 3});
  EXPECT_GE(d.suspect_streak(ProcessId{3}), 3u);
  EXPECT_GE(d.suspect_streak(ProcessId{4}), 3u);
  d.begin_query();
  const int skipped = (d.should_query(ProcessId{3}) ? 0 : 1) +
                      (d.should_query(ProcessId{4}) ? 0 : 1);
  EXPECT_LE(skipped, 1);
  // The cap picks the lowest id: 3 skipped, 4 still queried.
  EXPECT_FALSE(d.should_query(ProcessId{3}));
  EXPECT_TRUE(d.should_query(ProcessId{4}));
}

TEST(DetectorCore, GiveupBudgetPrefersLongestStreaks) {
  // Regression: when more peers qualify than the cap allows, the budget
  // must go to the LONGEST streaks, not the lowest ids. A genuinely
  // crashed peer accumulates an unbounded streak while a falsely suspected
  // live peer's streak restarts on every repair; the old id-ordered scan
  // let falsely suspected low-id live peers eat the whole budget — every
  // query still went to the dead peer (wasting the policy), and on the
  // live path skipping a responsive peer the round needed for quorum froze
  // the round permanently (observed at n=64 under 5% loss).
  auto c = cfg(0, 5, 1);
  c.giveup_rounds = 2;
  DetectorCore d(c);
  // Peer 4 suspected early (long streak), peer 3 only later (short one).
  QueryMessage gossip;
  gossip.seq = 1;
  gossip.push_suspected({ProcessId{4}, 50});
  (void)d.on_query(ProcessId{1}, gossip);
  for (int round = 0; round < 6; ++round) run_round(d, {1, 2, 3});
  QueryMessage late;
  late.seq = 2;
  late.push_suspected({ProcessId{3}, 60});
  (void)d.on_query(ProcessId{1}, late);
  for (int round = 0; round < 3; ++round) run_round(d, {1, 2, 3});
  ASSERT_GT(d.suspect_streak(ProcessId{4}), d.suspect_streak(ProcessId{3}));
  ASSERT_GE(d.suspect_streak(ProcessId{3}), 2u);
  d.begin_query();
  EXPECT_FALSE(d.should_query(ProcessId{4}));  // longest streak wins budget
  EXPECT_TRUE(d.should_query(ProcessId{3}));
}

TEST(DetectorCore, GiveupZeroDisablesThePolicy) {
  auto c = cfg(0, 4, 1);
  c.giveup_rounds = 0;
  DetectorCore d(c);
  for (int round = 0; round < 12; ++round) {
    run_round(d, {1, 2});
    d.begin_query();
    EXPECT_TRUE(d.should_query(ProcessId{3}));
    for (const std::uint32_t r : {1u, 2u}) {
      (void)d.on_response(ProcessId{r}, ResponseMessage{d.query_seq()});
    }
    d.finish_round();
  }
  EXPECT_EQ(d.queries_skipped(), 0u);
}

TEST(DetectorCore, CorruptionIsDeterministicPerSeed) {
  const auto scrambled_state = [](std::uint64_t seed) {
    DetectorCore d(delta_cfg(0, 6, 2));
    for (int round = 0; round < 3; ++round) run_round(d, {1, 2, 3});
    d.inject_transient_corruption(seed);
    const auto sus = d.suspected_set().entries();
    const auto mis = d.mistake_set().entries();
    return std::tuple{d.counter(),
                      std::vector<TaggedEntry>(sus.begin(), sus.end()),
                      std::vector<TaggedEntry>(mis.begin(), mis.end()),
                      d.state_epoch()};
  };
  EXPECT_EQ(scrambled_state(7), scrambled_state(7));
}

TEST(DetectorCore, CorruptedSelfSuspicionIsRepairedByNextQuery) {
  // Find a corruption seed that plants the self-suspicion no correct
  // execution produces, then check begin_query() repairs it with a
  // dominating self-mistake before any query leaves the node.
  bool found = false;
  for (std::uint64_t seed = 1; seed < 200 && !found; ++seed) {
    DetectorCore d(delta_cfg(0, 6, 2));
    for (int round = 0; round < 2; ++round) run_round(d, {1, 2, 3});
    d.inject_transient_corruption(seed);
    if (!d.is_suspected(ProcessId{0})) continue;
    found = true;
    const Tag bad_tag = *d.suspected_set().tag_of(ProcessId{0});
    d.begin_query();
    EXPECT_FALSE(d.is_suspected(ProcessId{0}));
    const auto repair = d.mistake_set().tag_of(ProcessId{0});
    ASSERT_TRUE(repair.has_value());
    EXPECT_GT(*repair, bad_tag);  // dominates the corrupted suspicion
    // The round machinery is intact: queries build and the round runs.
    for (std::uint32_t p = 1; p < 6; ++p) {
      (void)d.query_for(ProcessId{p});
    }
    for (const std::uint32_t r : {1u, 2u, 3u}) {
      (void)d.on_response(ProcessId{r}, ResponseMessage{d.query_seq()});
    }
    ASSERT_TRUE(d.query_terminated());
    d.finish_round();
  }
  EXPECT_TRUE(found) << "no seed in [1, 200) produced a self-suspicion";
}

TEST(DetectorCore, CorruptedJournalStillBuildsWellFormedQueries) {
  // The replay window can name ids that are now in neither set, and the
  // watermarks can claim absurd epochs — query construction must stay
  // total and every emitted entry must come from exactly one set.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    DetectorCore d(delta_cfg(0, 6, 2));
    for (int round = 0; round < 4; ++round) run_round(d, {1, 2, 3});
    d.inject_transient_corruption(seed);
    d.begin_query();
    for (std::uint32_t p = 1; p < 6; ++p) {
      const QueryMessage q = d.query_for(ProcessId{p});
      ASSERT_LE(q.suspected_count, q.entries.size());
      for (const auto& e : q.suspected()) {
        EXPECT_EQ(d.suspected_set().tag_of(e.id), e.tag) << "seed " << seed;
      }
      for (const auto& e : q.mistakes()) {
        EXPECT_EQ(d.mistake_set().tag_of(e.id), e.tag) << "seed " << seed;
      }
    }
    for (const std::uint32_t r : {1u, 2u, 3u}) {
      (void)d.on_response(ProcessId{r}, ResponseMessage{d.query_seq()});
    }
    ASSERT_TRUE(d.query_terminated());
    d.finish_round();
  }
}

TEST(DetectorCore, ResyncIntervalDiscardsSeenWatermarks) {
  auto c = delta_cfg(0, 4, 1);
  c.resync_interval = 2;
  DetectorCore d(c);
  // Merge a query from peer 1 at epoch 5: the watermark sticks.
  QueryMessage q;
  q.seq = 1;
  q.epoch = 5;
  q.push_suspected({ProcessId{3}, 1});
  (void)d.on_query(ProcessId{1}, q);
  EXPECT_EQ(d.seen_epoch(ProcessId{1}), 5u);
  run_round(d, {1, 2});
  EXPECT_EQ(d.seen_epoch(ProcessId{1}), 5u);  // round 1: interval not hit
  run_round(d, {1, 2});
  // Round 2 hits the interval: every seen watermark is dropped, so the next
  // delta from peer 1 gets a need_full answer (one full refresh per sender
  // bounds the lifetime of any fabricated watermark).
  EXPECT_EQ(d.seen_epoch(ProcessId{1}), 0u);
  QueryMessage delta;
  delta.seq = 2;
  delta.epoch = 7;
  delta.base_epoch = 5;
  delta.set_delta(true);
  const ResponseMessage r = d.on_query(ProcessId{1}, delta);
  EXPECT_TRUE(r.need_full);
}

TEST(DetectorCore, ResyncZeroKeepsWatermarksForever) {
  auto c = delta_cfg(0, 4, 1);
  c.resync_interval = 0;
  DetectorCore d(c);
  QueryMessage q;
  q.seq = 1;
  q.epoch = 5;
  (void)d.on_query(ProcessId{1}, q);
  for (int round = 0; round < 8; ++round) run_round(d, {1, 2});
  EXPECT_EQ(d.seen_epoch(ProcessId{1}), 5u);
}

}  // namespace
}  // namespace mmrfd::core
