#include "core/simple_detector.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/analysis.h"
#include "runtime/simple_host.h"

namespace mmrfd::core {
namespace {

SimpleDetectorConfig cfg(std::uint32_t self, std::uint32_t n,
                         std::uint32_t f) {
  SimpleDetectorConfig c;
  c.self = ProcessId{self};
  c.n = n;
  c.f = f;
  return c;
}

TEST(SimpleDetector, ConstructorRejectsMisconfiguration) {
  // Same contract as DetectorCore: f >= n would underflow quorum()'s n - f
  // (the old q == 0 clamp only caught exact zero, not the wrap-around).
  EXPECT_THROW(SimpleDetectorCore{cfg(0, 5, 5)}, std::invalid_argument);
  EXPECT_THROW(SimpleDetectorCore{cfg(0, 5, 7)}, std::invalid_argument);
  EXPECT_THROW(SimpleDetectorCore{cfg(0, 0, 0)}, std::invalid_argument);
  EXPECT_THROW(SimpleDetectorCore{cfg(5, 5, 1)}, std::invalid_argument);
  EXPECT_EQ(cfg(0, 5, 4).quorum(), 1u);  // f < n: no lower clamp needed
}

TEST(SimpleDetector, SuspectsNonResponders) {
  SimpleDetectorCore d(cfg(0, 4, 1));
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
  d.finish_round();
  EXPECT_TRUE(d.is_suspected(ProcessId{3}));
  EXPECT_FALSE(d.is_suspected(ProcessId{1}));
}

TEST(SimpleDetector, DirectContactClearsSuspicion) {
  SimpleDetectorCore d(cfg(0, 4, 1));
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
  d.finish_round();
  ASSERT_TRUE(d.is_suspected(ProcessId{3}));
  QueryMessage from3;
  from3.seq = 9;
  (void)d.on_query(ProcessId{3}, from3);
  EXPECT_FALSE(d.is_suspected(ProcessId{3}));
}

TEST(SimpleDetector, ResponseAlsoClearsSuspicion) {
  SimpleDetectorCore d(cfg(0, 4, 1));
  auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  (void)d.on_response(ProcessId{2}, ResponseMessage{q.seq});
  d.finish_round();
  ASSERT_TRUE(d.is_suspected(ProcessId{3}));
  q = d.start_query();
  (void)d.on_response(ProcessId{3}, ResponseMessage{q.seq});
  EXPECT_FALSE(d.is_suspected(ProcessId{3}));
}

TEST(SimpleDetector, ThirdPartySuspicionsAreNotAdopted) {
  // The structural weakness that motivates the tags: information cannot be
  // safely relayed, so the tag-free variant must ignore piggybacked sets.
  SimpleDetectorCore d(cfg(0, 5, 1));
  QueryMessage q;
  q.seq = 1;
  q.push_suspected({ProcessId{3}, 0});
  (void)d.on_query(ProcessId{1}, q);
  EXPECT_FALSE(d.is_suspected(ProcessId{3}));
}

TEST(SimpleDetector, StaleAndDuplicateResponsesIgnored) {
  SimpleDetectorCore d(cfg(0, 4, 1));
  const auto q1 = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q1.seq});
  EXPECT_FALSE(d.on_response(ProcessId{1}, ResponseMessage{q1.seq}));
  EXPECT_TRUE(d.on_response(ProcessId{2}, ResponseMessage{q1.seq}));
  d.finish_round();
  const auto q2 = d.start_query();
  EXPECT_FALSE(d.on_response(ProcessId{3}, ResponseMessage{q1.seq}));
  (void)q2;
}

TEST(SimpleDetector, ObserverSeesTransitions) {
  struct Rec : SuspicionObserver {
    int suspected = 0;
    int cleared = 0;
    void on_suspected(ProcessId, Tag) override { ++suspected; }
    void on_cleared(ProcessId, Tag) override { ++cleared; }
  } rec;
  SimpleDetectorCore d(cfg(0, 3, 1));
  d.set_observer(&rec);
  const auto q = d.start_query();
  (void)d.on_response(ProcessId{1}, ResponseMessage{q.seq});
  d.finish_round();  // suspects p2
  EXPECT_EQ(rec.suspected, 1);
  QueryMessage from2;
  from2.seq = 1;
  (void)d.on_query(ProcessId{2}, from2);
  EXPECT_EQ(rec.cleared, 1);
}

TEST(SimpleCluster, CompletenessStillHolds) {
  // The tag-free variant retains strong completeness: a crashed process
  // stops producing direct contact, so its suspicion sticks.
  runtime::SimpleCluster cluster(
      8, net::Topology::full(8),
      net::make_preset(net::DelayPreset::kExponential, from_millis(1)), 3,
      [](ProcessId self) {
        runtime::SimpleHostConfig c;
        c.detector.self = self;
        c.detector.n = 8;
        c.detector.f = 2;
        c.pacing = from_millis(100);
        c.initial_delay = from_millis(self.value * 7);
        return c;
      });
  runtime::CrashPlan plan;
  plan.entries.push_back({ProcessId{5}, from_seconds(2)});
  cluster.start(plan);
  cluster.run_for(from_seconds(20));
  metrics::Analysis analysis(cluster.log(), 8, from_seconds(20));
  EXPECT_TRUE(analysis.strong_completeness());
}

TEST(SimpleDetector, DeltaWatermarksMirrorDetectorCore) {
  // The tag-free core shares the watermark/epoch machinery: first contact
  // is full, an acked stable set travels as the base epoch, and changed ids
  // ride the delta. Receivers ignore content either way, so only the wire
  // shrinks.
  SimpleDetectorConfig c;
  c.self = ProcessId{0};
  c.n = 4;
  c.f = 1;
  SimpleDetectorCore d(c);
  auto round = [&](std::initializer_list<std::uint32_t> responders) {
    d.begin_query();
    for (const std::uint32_t r : responders) {
      ResponseMessage resp;
      resp.seq = d.query_seq();
      resp.ack_epoch = d.query_for(ProcessId{r}).epoch;
      (void)d.on_response(ProcessId{r}, resp);
    }
    ASSERT_TRUE(d.query_terminated());
    d.finish_round();
  };
  d.begin_query();
  EXPECT_TRUE(d.full_query_needed(ProcessId{1}));
  EXPECT_FALSE(d.query_for(ProcessId{1}).is_delta());
  (void)d.on_response(ProcessId{1},
                      ResponseMessage{d.query_seq(), d.query_for(ProcessId{1}).epoch});
  (void)d.on_response(ProcessId{2}, ResponseMessage{d.query_seq()});
  d.finish_round();  // p3 suspected
  round({1, 2});     // p1 acks the suspicion
  d.begin_query();
  ASSERT_FALSE(d.full_query_needed(ProcessId{1}));
  const auto q = d.query_for(ProcessId{1});
  EXPECT_TRUE(q.is_delta());
  EXPECT_TRUE(q.entries.empty());  // stable set interned in base_epoch
  // Full encoding for the same round still lists the suspicion.
  EXPECT_EQ(d.full_query().entries.size(), 1u);
}

TEST(SimpleCluster, CleanUnderStableNetwork) {
  // Perpetual-pattern conditions: constant delays, no crashes -> no
  // suspicion at all (the class-S configuration is sound here).
  runtime::SimpleCluster cluster(
      6, net::Topology::full(6),
      std::make_unique<net::ConstantDelay>(from_millis(1)), 4,
      [](ProcessId self) {
        runtime::SimpleHostConfig c;
        c.detector.self = self;
        c.detector.n = 6;
        c.detector.f = 2;
        c.pacing = from_millis(100);
        c.initial_delay = from_millis(self.value * 3);
        return c;
      });
  cluster.start(runtime::CrashPlan::none());
  cluster.run_for(from_seconds(10));
  EXPECT_TRUE(cluster.log().events().empty());
}

}  // namespace
}  // namespace mmrfd::core
