#include "core/properties.h"

#include <gtest/gtest.h>

#include <vector>

namespace mmrfd::core {
namespace {

std::vector<ProcessId> ids(std::initializer_list<std::uint32_t> vs) {
  std::vector<ProcessId> out;
  for (auto v : vs) out.push_back(ProcessId{v});
  return out;
}

// Records `rounds` queries per issuer; process p wins issuer q's query k iff
// `wins(p, q, k)` returns true.
template <typename WinFn>
PropertyRecorder make_trace(std::uint32_t n, int rounds, WinFn wins) {
  PropertyRecorder rec(n);
  for (int k = 0; k < rounds; ++k) {
    for (std::uint32_t q = 0; q < n; ++q) {
      std::vector<ProcessId> winning;
      for (std::uint32_t p = 0; p < n; ++p) {
        if (p == q || wins(ProcessId{p}, ProcessId{q}, k)) {
          winning.push_back(ProcessId{p});
        }
      }
      rec.record(ProcessId{q}, static_cast<QuerySeq>(k + 1),
                 from_millis(100 * (k + 1)), winning);
    }
  }
  return rec;
}

TEST(MpChecker, PerpetualWinnerYieldsPerpetualMp) {
  // p0 wins every query of everyone, forever: the perpetual (class-S)
  // property holds with holds_from = 0.
  const auto rec = make_trace(5, 10, [](ProcessId p, ProcessId, int) {
    return p == ProcessId{0};
  });
  const auto correct = ids({0, 1, 2, 3, 4});
  MpChecker checker(rec, /*f=*/1, correct);
  const auto v = checker.check();
  ASSERT_TRUE(v.holds);
  EXPECT_TRUE(v.holds_perpetually);
  EXPECT_EQ(v.witness, ProcessId{0});
  EXPECT_EQ(v.holds_from, kTimeZero);
  EXPECT_EQ(v.quorum_set.size(), 5u);  // every correct issuer is covered
}

TEST(MpChecker, EventualWinnerYieldsEventualMp) {
  // p0 starts winning only from round 5 on.
  const auto rec = make_trace(5, 12, [](ProcessId p, ProcessId, int k) {
    return p == ProcessId{0} && k >= 5;
  });
  MpChecker checker(rec, 1, ids({0, 1, 2, 3, 4}));
  const auto v = checker.check();
  ASSERT_TRUE(v.holds);
  EXPECT_FALSE(v.holds_perpetually);
  EXPECT_EQ(v.witness, ProcessId{0});
  // Last violating query terminated at round 5 (1-based time 100*5).
  EXPECT_EQ(v.holds_from, from_millis(500));
}

TEST(MpChecker, NoWinnerMeansNoMp) {
  // Everyone misses everyone else's queries always (only self wins).
  const auto rec =
      make_trace(4, 10, [](ProcessId, ProcessId, int) { return false; });
  MpChecker checker(rec, 1, ids({0, 1, 2, 3}));
  EXPECT_FALSE(checker.check().holds);
}

TEST(MpChecker, WitnessMustBeCorrect) {
  // p0 wins everywhere but is NOT in the correct set; p1 wins nowhere.
  const auto rec = make_trace(4, 10, [](ProcessId p, ProcessId, int) {
    return p == ProcessId{0};
  });
  MpChecker checker(rec, 1, ids({1, 2, 3}));
  EXPECT_FALSE(checker.check().holds);
}

TEST(MpChecker, QuorumVariantNeedsOnlyKIssuers) {
  // p0 wins only the queries of p1: the strict (all-correct) form fails,
  // but the quorum relaxation with 2 issuers holds — p0's own queries
  // supply the second issuer (self always wins).
  const auto rec = make_trace(4, 10, [](ProcessId p, ProcessId q, int) {
    return p == ProcessId{0} && q == ProcessId{1};
  });
  MpChecker checker(rec, 1, ids({0, 1, 2, 3}));
  EXPECT_FALSE(checker.check().holds);
  const auto v2 = checker.check_with_quorum(2);
  ASSERT_TRUE(v2.holds);
  EXPECT_EQ(v2.quorum_set, ids({0, 1}));
  // Three issuers cannot be covered: p0 only wins at {p0, p1}.
  EXPECT_FALSE(checker.check_with_quorum(3).holds);
}

TEST(MpChecker, StrictFormRequiresEveryCorrectIssuer) {
  // p0 wins everywhere except p3's queries: strict MP fails — p3 would
  // regenerate suspicions of p0 forever — while the 3-issuer quorum form
  // still holds.
  const auto rec = make_trace(4, 10, [](ProcessId p, ProcessId q, int) {
    return p == ProcessId{0} && q != ProcessId{3};
  });
  MpChecker checker(rec, 1, ids({0, 1, 2, 3}));
  EXPECT_FALSE(checker.check().holds);
  EXPECT_TRUE(checker.check_with_quorum(3).holds);
}

TEST(MpChecker, VacuousSuffixRejected) {
  // p0 wins only the very last query of each issuer — fewer than
  // min_queries_after remain afterwards, so the "eventually" is vacuous.
  const auto rec = make_trace(4, 10, [](ProcessId p, ProcessId, int k) {
    return p == ProcessId{0} && k == 9;
  });
  MpChecker checker(rec, 1, ids({0, 1, 2, 3}));
  const auto v = checker.check(/*min_queries_after=*/3);
  // p0's own queries still count (self always wins, all 10 rounds), but no
  // second issuer has 3 post-violation queries.
  EXPECT_FALSE(v.holds);
}

TEST(MpChecker, WinningFraction) {
  const auto rec = make_trace(3, 10, [](ProcessId p, ProcessId q, int k) {
    return p == ProcessId{0} && q == ProcessId{1} && (k % 2 == 0);
  });
  MpChecker checker(rec, 1, ids({0, 1, 2}));
  EXPECT_DOUBLE_EQ(checker.winning_fraction(ProcessId{0}, ProcessId{1}), 0.5);
  EXPECT_DOUBLE_EQ(checker.winning_fraction(ProcessId{0}, ProcessId{2}), 0.0);
  EXPECT_DOUBLE_EQ(checker.winning_fraction(ProcessId{0}, ProcessId{0}), 1.0);
  EXPECT_EQ(checker.query_count(ProcessId{1}), 10u);
}

TEST(MpChecker, EmptyTraceNoMp) {
  PropertyRecorder rec(3);
  MpChecker checker(rec, 1, ids({0, 1, 2}));
  EXPECT_FALSE(checker.check().holds);
}

TEST(MpChecker, PrefersEarlierStabilization) {
  // Both p0 and p1 are eventual winners; p1 stabilizes earlier and must be
  // chosen as witness.
  const auto rec = make_trace(5, 12, [](ProcessId p, ProcessId, int k) {
    if (p == ProcessId{0}) return k >= 8;
    if (p == ProcessId{1}) return k >= 2;
    return false;
  });
  MpChecker checker(rec, 1, ids({0, 1, 2, 3, 4}));
  const auto v = checker.check();
  ASSERT_TRUE(v.holds);
  EXPECT_EQ(v.witness, ProcessId{1});
}

TEST(StabilizationChecker, ConvergedTraceIsExactView) {
  // 3 nodes, node 2 crashed: both correct observers end suspecting exactly
  // {2}; a transient false suspicion of a correct node is repaired.
  const std::vector<ProcessId> crashed{ProcessId{2}};
  StabilizationChecker c(3, crashed);
  c.feed(from_seconds(1), ProcessId{0}, ProcessId{2}, true);
  c.feed(from_seconds(1), ProcessId{1}, ProcessId{2}, true);
  c.feed(from_seconds(2), ProcessId{0}, ProcessId{1}, true);   // false
  c.feed(from_seconds(3), ProcessId{0}, ProcessId{1}, false);  // repaired
  const auto v = c.verdict();
  EXPECT_TRUE(v.converged);
  EXPECT_EQ(v.stabilized_at, from_seconds(3));
  EXPECT_TRUE(v.missing.empty());
  EXPECT_TRUE(v.false_suspicions.empty());
}

TEST(StabilizationChecker, MissingSuspicionFailsConvergence) {
  const std::vector<ProcessId> crashed{ProcessId{2}};
  StabilizationChecker c(3, crashed);
  c.feed(from_seconds(1), ProcessId{0}, ProcessId{2}, true);
  // Observer 1 never suspects the crashed node.
  const auto v = c.verdict();
  EXPECT_FALSE(v.converged);
  ASSERT_EQ(v.missing.size(), 1u);
  EXPECT_EQ(v.missing[0].first, ProcessId{1});
  EXPECT_EQ(v.missing[0].second, ProcessId{2});
}

TEST(StabilizationChecker, LingeringFalseSuspicionFailsConvergence) {
  const std::vector<ProcessId> crashed{ProcessId{2}};
  StabilizationChecker c(3, crashed);
  c.feed(from_seconds(1), ProcessId{0}, ProcessId{2}, true);
  c.feed(from_seconds(1), ProcessId{1}, ProcessId{2}, true);
  c.feed(from_seconds(2), ProcessId{1}, ProcessId{0}, true);  // never cleared
  const auto v = c.verdict();
  EXPECT_FALSE(v.converged);
  ASSERT_EQ(v.false_suspicions.size(), 1u);
  EXPECT_EQ(v.false_suspicions[0].first, ProcessId{1});
  EXPECT_EQ(v.false_suspicions[0].second, ProcessId{0});
}

TEST(StabilizationChecker, CrashedObserversAreIgnored) {
  // The crashed node's own (frozen, possibly garbage) view is irrelevant,
  // as are transitions from out-of-range ids (live-path robustness).
  const std::vector<ProcessId> crashed{ProcessId{2}};
  StabilizationChecker c(3, crashed);
  c.feed(from_seconds(1), ProcessId{0}, ProcessId{2}, true);
  c.feed(from_seconds(1), ProcessId{1}, ProcessId{2}, true);
  c.feed(from_seconds(5), ProcessId{2}, ProcessId{0}, true);   // crashed
  c.feed(from_seconds(6), ProcessId{9}, ProcessId{0}, true);   // bogus id
  c.feed(from_seconds(7), ProcessId{0}, ProcessId{9}, true);   // bogus subject
  const auto v = c.verdict();
  EXPECT_TRUE(v.converged);
  EXPECT_EQ(v.stabilized_at, from_seconds(1));
}

TEST(StabilizationChecker, RedundantTransitionsDoNotMoveStabilization) {
  // Re-feeding an already-held view bit (duplicate events, full-query
  // re-merges) must not count as churn.
  const std::vector<ProcessId> crashed{ProcessId{1}};
  StabilizationChecker c(2, crashed);
  c.feed(from_seconds(1), ProcessId{0}, ProcessId{1}, true);
  c.feed(from_seconds(9), ProcessId{0}, ProcessId{1}, true);  // no-op
  const auto v = c.verdict();
  EXPECT_TRUE(v.converged);
  EXPECT_EQ(v.stabilized_at, from_seconds(1));
}

TEST(StabilizationChecker, NoCrashesMeansEmptyViews) {
  StabilizationChecker c(2, {});
  const auto clean = c.verdict();
  EXPECT_TRUE(clean.converged);  // empty views match the empty crashed set
  c.feed(from_seconds(1), ProcessId{0}, ProcessId{1}, true);
  EXPECT_FALSE(c.verdict().converged);
  c.feed(from_seconds(2), ProcessId{0}, ProcessId{1}, false);
  EXPECT_TRUE(c.verdict().converged);
}

}  // namespace
}  // namespace mmrfd::core
