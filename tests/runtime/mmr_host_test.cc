// Unit tests for the MmrHost driver: pacing, crash silence, recorder wiring.
#include "runtime/mmr_host.h"

#include <gtest/gtest.h>

#include "net/delay_model.h"
#include "runtime/cluster.h"

namespace mmrfd::runtime {
namespace {

struct HostFixture {
  sim::Simulation sim;
  MmrNetwork net;
  core::PropertyRecorder recorder;
  std::vector<std::unique_ptr<MmrHost>> hosts;

  explicit HostFixture(std::uint32_t n, Duration pacing,
                       Duration delay = from_millis(1))
      : net(sim, net::Topology::full(n),
            std::make_unique<net::ConstantDelay>(delay), 1),
        recorder(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      MmrHostConfig cfg;
      cfg.detector.self = ProcessId{i};
      cfg.detector.n = n;
      cfg.detector.f = 1;
      cfg.pacing = pacing;
      cfg.initial_delay = from_millis(i);
      hosts.push_back(
          std::make_unique<MmrHost>(sim, net, cfg, &recorder, nullptr));
    }
  }
  void start_all() {
    for (auto& h : hosts) h->start();
  }
};

TEST(MmrHost, RoundCadenceMatchesPacingPlusRoundTrip) {
  HostFixture f(3, from_millis(100), from_millis(5));
  f.start_all();
  f.sim.run_for(from_seconds(10));
  // One round = quorum wait (~2 * 5 ms) + pacing 100 ms => ~90 rounds/10 s.
  const auto rounds = f.hosts[0]->detector().rounds_completed();
  EXPECT_GE(rounds, 80u);
  EXPECT_LE(rounds, 100u);
}

TEST(MmrHost, CrashSilencesTraffic) {
  HostFixture f(3, from_millis(100));
  f.start_all();
  f.sim.run_for(from_seconds(2));
  f.hosts[2]->crash();
  const auto sent_at_crash = f.net.stats().messages_sent;
  const auto rounds_at_crash = f.hosts[2]->detector().rounds_completed();
  f.sim.run_for(from_seconds(2));
  EXPECT_EQ(f.hosts[2]->detector().rounds_completed(), rounds_at_crash);
  // Remaining two hosts keep sending (4 msgs per round pair at least).
  EXPECT_GT(f.net.stats().messages_sent, sent_at_crash + 20);
}

TEST(MmrHost, RecorderSeesEveryTerminatedQuery) {
  HostFixture f(3, from_millis(100));
  f.start_all();
  f.sim.run_for(from_seconds(5));
  std::uint64_t total_rounds = 0;
  for (const auto& h : f.hosts) {
    total_rounds += h->detector().rounds_completed();
  }
  // Every terminated round was recorded (in-flight final rounds may add 1
  // per host).
  EXPECT_GE(f.recorder.records().size(), total_rounds);
  EXPECT_LE(f.recorder.records().size(), total_rounds + f.hosts.size());
  for (const auto& r : f.recorder.records()) {
    // Winning sets have exactly quorum = n - f = 2 members and include the
    // issuer.
    EXPECT_EQ(r.winning.size(), 2u);
    EXPECT_TRUE(std::binary_search(r.winning.begin(), r.winning.end(),
                                   r.issuer));
  }
}

TEST(MmrHost, SuspectsAreExchangedAcrossHosts) {
  HostFixture f(4, from_millis(50));
  f.start_all();
  f.sim.run_for(from_seconds(1));
  f.hosts[3]->crash();
  f.sim.run_for(from_seconds(5));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(f.hosts[static_cast<std::size_t>(i)]
                    ->detector()
                    .is_suspected(ProcessId{3}));
  }
  // Tags agree after flooding: all three hold the same <p3, tag> entry.
  const auto tag0 =
      f.hosts[0]->detector().suspected_set().tag_of(ProcessId{3});
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(
        f.hosts[static_cast<std::size_t>(i)]->detector().suspected_set().tag_of(
            ProcessId{3}),
        tag0);
  }
}

TEST(MmrHost, StaggeredStartAvoidsLockstep) {
  HostFixture f(3, from_millis(100));
  f.start_all();
  f.sim.run_for(from_millis(350));
  // Hosts started at 0/1/2 ms: sequence numbers may differ by at most 1.
  const auto s0 = f.hosts[0]->detector().query_seq();
  const auto s2 = f.hosts[2]->detector().query_seq();
  EXPECT_LE(s0 > s2 ? s0 - s2 : s2 - s0, 1u);
  EXPECT_GE(s0, 3u);
}

}  // namespace
}  // namespace mmrfd::runtime
