// Integration tests: the full asynchronous detector running in simulated
// clusters — the <>S properties end to end.
#include "runtime/cluster.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <variant>

#include "core/properties.h"
#include "metrics/analysis.h"
#include "transport/codec.h"

namespace mmrfd::runtime {
namespace {

MmrClusterConfig base_config(std::uint32_t n, std::uint32_t f,
                             std::uint64_t seed) {
  MmrClusterConfig c;
  c.n = n;
  c.f = f;
  c.seed = seed;
  c.pacing = from_millis(100);
  c.mean_delay = from_millis(1);
  return c;
}

TEST(MmrCluster, AllHostsIssueRounds) {
  MmrCluster cluster(base_config(8, 2, 1));
  cluster.start();
  cluster.run_for(from_seconds(5));
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_GT(cluster.host(ProcessId{i}).detector().rounds_completed(), 20u)
        << "host " << i;
  }
}

TEST(MmrCluster, NoSuspicionsWithoutCrashesUnderConstantDelays) {
  auto cfg = base_config(10, 3, 2);
  cfg.delay_preset = net::DelayPreset::kConstant;
  MmrCluster cluster(cfg);
  cluster.start();
  cluster.run_for(from_seconds(10));
  EXPECT_TRUE(cluster.log().events().empty());
}

TEST(MmrCluster, CrashEventuallySuspectedByAllCorrect) {
  // Strong completeness on a single crash.
  auto cfg = base_config(10, 3, 3);
  MmrCluster cluster(cfg);
  CrashPlan plan;
  plan.entries.push_back({ProcessId{4}, from_seconds(2)});
  cluster.start(plan);
  cluster.run_for(from_seconds(20));
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (i == 4) continue;
    EXPECT_TRUE(cluster.host(ProcessId{i}).detector().is_suspected(
        ProcessId{4}))
        << "observer " << i;
  }
}

TEST(MmrCluster, StrongCompletenessWithFCrashes) {
  auto cfg = base_config(12, 4, 4);
  MmrCluster cluster(cfg);
  const auto plan = CrashPlan::uniform(4, 12, from_seconds(2),
                                       from_seconds(8), cfg.seed);
  cluster.start(plan);
  cluster.run_for(from_seconds(30));
  metrics::Analysis analysis(cluster.log(), 12, from_seconds(30));
  EXPECT_TRUE(analysis.strong_completeness());
  EXPECT_EQ(analysis.faulty().size(), 4u);
}

TEST(MmrCluster, CrashedProcessNeverUnsuspectedAgain) {
  auto cfg = base_config(8, 2, 5);
  MmrCluster cluster(cfg);
  CrashPlan plan;
  plan.entries.push_back({ProcessId{1}, from_seconds(1)});
  cluster.start(plan);
  cluster.run_for(from_seconds(20));
  // Once every correct process suspects p1, no Cleared event for p1 may
  // follow the last Suspected event (permanence).
  const auto detections =
      metrics::Analysis(cluster.log(), 8, from_seconds(20)).detections();
  for (const auto& d : detections) {
    ASSERT_TRUE(d.detected_at.has_value())
        << "observer " << d.observer.value << " never settled";
  }
}

TEST(MmrCluster, FastSetYieldsEventualAccuracy) {
  // Engineer MP: p0 is fast toward everyone. Use a heavy-tailed delay model
  // so accuracy is non-trivial, then verify the checker agrees MP held and
  // that suspicion of the witness stops.
  auto cfg = base_config(8, 2, 6);
  cfg.delay_preset = net::DelayPreset::kPareto;
  cfg.mean_delay = from_millis(5);
  cfg.fast_set = {ProcessId{0}};
  cfg.fast_factor = 0.05;
  MmrCluster cluster(cfg);
  cluster.start();
  cluster.run_for(from_seconds(60));
  std::vector<ProcessId> correct;
  for (std::uint32_t i = 0; i < 8; ++i) correct.push_back(ProcessId{i});
  core::MpChecker checker(cluster.recorder(), cfg.f, correct);
  const auto verdict = checker.check();
  ASSERT_TRUE(verdict.holds);
  EXPECT_EQ(verdict.witness, ProcessId{0});
  // No correct process should, at the end, still suspect p0.
  for (std::uint32_t i = 1; i < 8; ++i) {
    EXPECT_FALSE(
        cluster.host(ProcessId{i}).detector().is_suspected(ProcessId{0}));
  }
}

namespace golden {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t digest(const MmrCluster& cluster) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& e : cluster.log().events()) {
    h = fnv1a(h, static_cast<std::uint64_t>(e.when.count()));
    h = fnv1a(h, e.observer.value);
    h = fnv1a(h, e.subject.value);
    h = fnv1a(h, static_cast<std::uint64_t>(e.kind));
    h = fnv1a(h, e.tag);
  }
  for (const auto& c : cluster.log().crashes()) {
    h = fnv1a(h, static_cast<std::uint64_t>(c.when.count()));
    h = fnv1a(h, c.subject.value);
  }
  h = fnv1a(h, cluster.network().stats().messages_sent);
  h = fnv1a(h, cluster.network().stats().messages_delivered);
  return h;
}

}  // namespace golden

TEST(MmrCluster, GoldenDigestPinnedAcrossRefactors) {
  // These digests were captured from the seed implementation (std::function
  // event heap, per-recipient message copies). Any substrate refactor —
  // pooled event slab, shared-payload broadcast, delta-encoded queries —
  // must reproduce fixed-seed runs bit-for-bit: same EventLog, same message
  // counts, same event count. Each scenario runs in BOTH encodings and must
  // hit the SAME pinned digest: the delta wire format may change what a
  // query carries, never what the protocol does or when. If a change
  // legitimately alters the schedule (e.g. a different rng draw order),
  // recapture the constants and say so in the commit message.
  for (const bool delta : {false, true}) {
    auto cfg = base_config(8, 2, 77);
    cfg.delay_preset = net::DelayPreset::kExponential;
    cfg.delta_queries = delta;
    MmrCluster cluster(cfg);
    const auto plan =
        CrashPlan::uniform(2, 8, from_seconds(1), from_seconds(5), cfg.seed);
    cluster.start(plan);
    cluster.run_for(from_seconds(15));
    // Recaptured when the crashed-peer give-up policy (giveup_rounds = 8,
    // on by default) landed: peers suspected for 8 consecutive rounds are
    // probed at 1/8 rate, so crash scenarios send fewer messages and fire
    // fewer events than the seed schedule. Knobs-off schedules (no crashes,
    // fault injection disabled) remain bit-identical to the seed.
    EXPECT_EQ(golden::digest(cluster), 1586163140151488053ull)
        << "delta=" << delta;
    EXPECT_EQ(cluster.network().stats().messages_sent, 10657u)
        << "delta=" << delta;
    EXPECT_EQ(cluster.simulation().events_fired(), 11601u)
        << "delta=" << delta;
  }
  for (const bool delta : {false, true}) {
    auto cfg = base_config(24, 6, 123);
    cfg.pacing_jitter = 0.25;
    cfg.mean_delay = from_millis(2);
    cfg.delay_preset = net::DelayPreset::kPareto;
    cfg.delta_queries = delta;
    SpikeSpec spike;
    spike.start = from_seconds(4);
    spike.end = from_seconds(6);
    spike.factor = 50.0;
    spike.affected = {ProcessId{3}};
    cfg.spike = spike;
    MmrCluster cluster(cfg);
    const auto plan = CrashPlan::uniform(4, 24, from_seconds(2),
                                         from_seconds(8), cfg.seed);
    cluster.start(plan);
    cluster.run_for(from_seconds(12));
    // Log digest recaptured once after the no-op-mistake dedup (observers
    // now see mistake *transitions*; the seed logged a kMistake per
    // tied-tag re-merge), then again — together with messages_sent and
    // events_fired — when the default-on give-up policy thinned the
    // crash-scenario schedule (see the comment on the first scenario).
    EXPECT_EQ(golden::digest(cluster), 14254734735516408661ull)
        << "delta=" << delta;
    EXPECT_EQ(cluster.network().stats().messages_sent, 104550u)
        << "delta=" << delta;
    EXPECT_EQ(cluster.simulation().events_fired(), 106991u)
        << "delta=" << delta;
  }
}

TEST(MmrCluster, GoldenDeltaWireBytesPinned) {
  // Pins the delta schedule's *wire cost* alongside the state digest: a
  // future PR that silently grows the delta encoding (or breaks watermark
  // advancement, degrading every query to the full fallback) moves these
  // numbers even though the state digest stays put. Bytes are exact for a
  // fixed seed — wire_size is a pure function of the messages sent.
  auto run_bytes = [](bool delta) {
    auto cfg = base_config(8, 2, 77);
    cfg.delay_preset = net::DelayPreset::kExponential;
    cfg.delta_queries = delta;
    MmrCluster cluster(cfg);
    cluster.network().set_size_fn([](const MmrMessage& m) {
      return std::visit(
          [](const auto& msg) { return transport::wire_size(msg); }, m);
    });
    const auto plan =
        CrashPlan::uniform(2, 8, from_seconds(1), from_seconds(5), cfg.seed);
    cluster.start(plan);
    cluster.run_for(from_seconds(15));
    return cluster.network().stats().bytes_sent;
  };
  const auto full_bytes = run_bytes(false);
  const auto delta_bytes = run_bytes(true);
  // Recapture both constants together if the wire format changes on purpose.
  // Recaptured with the give-up-policy schedule change (fewer queries to
  // settled-suspected peers after the crash window — see the golden-digest
  // comments above); the wire format itself is unchanged.
  EXPECT_EQ(full_bytes, 282902u);
  EXPECT_EQ(delta_bytes, 211728u);
  EXPECT_LT(delta_bytes, full_bytes);
}

TEST(MmrCluster, DeterministicGivenSeed) {
  auto run_digest = [](std::uint64_t seed) {
    auto cfg = base_config(8, 2, seed);
    cfg.delay_preset = net::DelayPreset::kExponential;
    MmrCluster cluster(cfg);
    const auto plan =
        CrashPlan::uniform(2, 8, from_seconds(1), from_seconds(5), seed);
    cluster.start(plan);
    cluster.run_for(from_seconds(15));
    std::ostringstream os;
    for (const auto& e : cluster.log().events()) {
      os << e.when.count() << ':' << e.observer.value << ':'
         << e.subject.value << ':' << static_cast<int>(e.kind) << ';';
    }
    os << '#' << cluster.network().stats().messages_sent;
    return os.str();
  };
  EXPECT_EQ(run_digest(77), run_digest(77));
  EXPECT_NE(run_digest(77), run_digest(78));
}

TEST(MmrCluster, SpikeCausesFalseSuspicionsThatAreRepaired) {
  auto cfg = base_config(8, 2, 8);
  cfg.delay_preset = net::DelayPreset::kConstant;
  // p7's links slow down 200x for 3 seconds: long enough that its responses
  // miss the quorum window of several rounds.
  SpikeSpec spike;
  spike.start = from_seconds(5);
  spike.end = from_seconds(8);
  spike.factor = 200.0;
  spike.affected = {ProcessId{7}};
  cfg.spike = spike;
  MmrCluster cluster(cfg);
  cluster.start();
  cluster.run_for(from_seconds(30));
  metrics::Analysis analysis(cluster.log(), 8, from_seconds(30));
  const auto fs = analysis.false_suspicions();
  ASSERT_FALSE(fs.empty());  // the spike produced wrongful suspicions...
  for (const auto& f : fs) {
    EXPECT_EQ(f.subject, ProcessId{7});
    EXPECT_TRUE(f.cleared_at.has_value())  // ...and every one was repaired
        << f.observer.value << " never cleared " << f.subject.value;
  }
  const auto stable = analysis.accuracy_stabilization();
  ASSERT_TRUE(stable.has_value());
}

TEST(MmrCluster, LateResponseAcceptanceReducesFalseSuspicions) {
  auto run = [](bool accept_late) {
    auto cfg = base_config(8, 2, 9);
    cfg.delay_preset = net::DelayPreset::kPareto;
    cfg.mean_delay = from_millis(20);
    cfg.pacing = from_millis(200);
    cfg.accept_late_responses = accept_late;
    MmrCluster cluster(cfg);
    cluster.start();
    cluster.run_for(from_seconds(30));
    return metrics::Analysis(cluster.log(), 8, from_seconds(30))
        .false_suspicions()
        .size();
  };
  EXPECT_LE(run(true), run(false));
}

TEST(MmrCluster, AliveListShrinksOnCrash) {
  MmrCluster cluster(base_config(5, 1, 10));
  CrashPlan plan;
  plan.entries.push_back({ProcessId{2}, from_seconds(1)});
  cluster.start(plan);
  EXPECT_EQ(cluster.alive().size(), 5u);
  cluster.run_for(from_seconds(2));
  EXPECT_EQ(cluster.alive().size(), 4u);
  EXPECT_TRUE(cluster.host(ProcessId{2}).crashed());
}

TEST(MmrCluster, QueriesKeepTerminatingWithUpToFCrashes) {
  // Liveness of the query mechanism itself: with exactly f crashes the
  // remaining n - f processes still form a quorum.
  auto cfg = base_config(6, 2, 11);
  MmrCluster cluster(cfg);
  const auto plan = CrashPlan::simultaneous(
      std::vector<ProcessId>{ProcessId{0}, ProcessId{1}}, from_seconds(2));
  cluster.start(plan);
  cluster.run_for(from_seconds(10));
  const auto rounds_mid =
      cluster.host(ProcessId{5}).detector().rounds_completed();
  cluster.run_for(from_seconds(10));
  EXPECT_GT(cluster.host(ProcessId{5}).detector().rounds_completed(),
            rounds_mid);
}

TEST(CrashPlan, UniformRespectsProtectAndCount) {
  const std::vector<ProcessId> protect{ProcessId{0}, ProcessId{1}};
  const auto plan = CrashPlan::uniform(3, 10, from_seconds(1), from_seconds(9),
                                       123, protect);
  EXPECT_EQ(plan.entries.size(), 3u);
  for (const auto& e : plan.entries) {
    EXPECT_GE(e.victim.value, 2u);
    EXPECT_GE(e.when, from_seconds(1));
    EXPECT_LT(e.when, from_seconds(9));
  }
  const auto victims = plan.victims();
  EXPECT_EQ(std::set<ProcessId>(victims.begin(), victims.end()).size(), 3u);
}

TEST(CrashPlan, SimultaneousAndContains) {
  const std::vector<ProcessId> vs{ProcessId{3}, ProcessId{4}};
  const auto plan = CrashPlan::simultaneous(vs, from_seconds(2));
  EXPECT_TRUE(plan.crashes(ProcessId{3}));
  EXPECT_FALSE(plan.crashes(ProcessId{5}));
}

}  // namespace
}  // namespace mmrfd::runtime
