#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mmrfd {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, PercentilesExactOnSmallSet) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(90.0), 9.0);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, AddAfterQueryStillSorted) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // after a query that sorted the samples
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5);
  h.add(1.6);
  const auto text = h.render();
  EXPECT_NE(text.find("2"), std::string::npos);
}

}  // namespace
}  // namespace mmrfd
