#include "common/tagged_set.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "common/rng.h"

namespace mmrfd {
namespace {

TEST(TaggedSet, StartsEmpty) {
  TaggedSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(ProcessId{0}));
  EXPECT_EQ(s.tag_of(ProcessId{0}), std::nullopt);
}

TEST(TaggedSet, AddAndLookup) {
  TaggedSet s;
  s.add(ProcessId{3}, 7);
  EXPECT_TRUE(s.contains(ProcessId{3}));
  EXPECT_EQ(s.tag_of(ProcessId{3}), 7u);
  EXPECT_FALSE(s.contains(ProcessId{2}));
}

TEST(TaggedSet, AddReplacesExistingEntry) {
  // The paper's Add(set, <id, counter>): an existing <id, -> is replaced.
  TaggedSet s;
  s.add(ProcessId{5}, 1);
  s.add(ProcessId{5}, 9);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.tag_of(ProcessId{5}), 9u);
}

TEST(TaggedSet, AddCanLowerTag) {
  // Replacement is unconditional — ordering policy lives in the protocol,
  // not the container.
  TaggedSet s;
  s.add(ProcessId{5}, 9);
  s.add(ProcessId{5}, 1);
  EXPECT_EQ(s.tag_of(ProcessId{5}), 1u);
}

TEST(TaggedSet, EraseRemoves) {
  TaggedSet s;
  s.add(ProcessId{1}, 4);
  EXPECT_TRUE(s.erase(ProcessId{1}));
  EXPECT_FALSE(s.contains(ProcessId{1}));
  EXPECT_FALSE(s.erase(ProcessId{1}));
}

TEST(TaggedSet, EntriesSortedById) {
  TaggedSet s;
  s.add(ProcessId{9}, 1);
  s.add(ProcessId{2}, 2);
  s.add(ProcessId{5}, 3);
  const auto es = s.entries();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].id, ProcessId{2});
  EXPECT_EQ(es[1].id, ProcessId{5});
  EXPECT_EQ(es[2].id, ProcessId{9});
}

TEST(TaggedSet, IdsSorted) {
  TaggedSet s;
  s.add(ProcessId{7}, 1);
  s.add(ProcessId{0}, 1);
  const auto ids = s.ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], ProcessId{0});
  EXPECT_EQ(ids[1], ProcessId{7});
}

TEST(TaggedSet, EqualityIsValueBased) {
  TaggedSet a;
  TaggedSet b;
  a.add(ProcessId{1}, 2);
  b.add(ProcessId{1}, 2);
  EXPECT_EQ(a, b);
  b.add(ProcessId{2}, 3);
  EXPECT_NE(a, b);
}

TEST(TaggedSet, ClearEmpties) {
  TaggedSet s;
  s.add(ProcessId{1}, 1);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(TaggedSet, EraseThenReAddWithOlderTag) {
  // The delta path leans on this: an entry can migrate between the protocol
  // sets and come back under ANY tag — the container must not remember the
  // erased entry's tag or resist the "older" re-add (ordering policy lives
  // in DetectorCore, not here).
  TaggedSet s;
  s.add(ProcessId{4}, 100);
  ASSERT_TRUE(s.erase(ProcessId{4}));
  EXPECT_FALSE(s.contains(ProcessId{4}));
  s.add(ProcessId{4}, 3);  // older than the erased entry's tag
  EXPECT_EQ(s.tag_of(ProcessId{4}), 3u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(TaggedSet, ReplacementAtTagWraparoundInputs) {
  // Tags are u64; replacement must be exact at the extremes, with no
  // arithmetic on the stored value that could wrap.
  constexpr Tag kMax = std::numeric_limits<Tag>::max();
  TaggedSet s;
  s.add(ProcessId{1}, kMax);
  EXPECT_EQ(s.tag_of(ProcessId{1}), kMax);
  s.add(ProcessId{1}, 0);  // wraparound-adjacent replacement
  EXPECT_EQ(s.tag_of(ProcessId{1}), 0u);
  s.add(ProcessId{1}, kMax - 1);
  EXPECT_EQ(s.tag_of(ProcessId{1}), kMax - 1);
  EXPECT_EQ(s.size(), 1u);
}

TEST(ChangeJournal, EpochCountsRecords) {
  ChangeJournal j(8);
  EXPECT_EQ(j.epoch(), 0u);
  EXPECT_EQ(j.record(ProcessId{3}), 1u);
  EXPECT_EQ(j.record(ProcessId{5}), 2u);
  EXPECT_EQ(j.epoch(), 2u);
  EXPECT_TRUE(j.covers(0));
  EXPECT_TRUE(j.covers(2));
  EXPECT_FALSE(j.covers(3));  // the future is not replayable
}

TEST(ChangeJournal, ChangedSinceIsSortedAndDeduplicated) {
  ChangeJournal j(64);
  j.record(ProcessId{9});
  j.record(ProcessId{2});
  j.record(ProcessId{9});
  j.record(ProcessId{5});
  const auto all = j.changed_since(0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], ProcessId{2});
  EXPECT_EQ(all[1], ProcessId{5});
  EXPECT_EQ(all[2], ProcessId{9});
  // A suffix: only what changed after epoch 2.
  const auto tail = j.changed_since(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], ProcessId{5});
  EXPECT_EQ(tail[1], ProcessId{9});
  EXPECT_TRUE(j.changed_since(4).empty());
}

TEST(ChangeJournal, CompactionDropsOldEpochs) {
  // capacity c: after more than 2c buffered records the oldest half is
  // discarded; acks older than base() must then report !covers() (the
  // sender's full-encoding fallback).
  ChangeJournal j(4);
  for (std::uint32_t i = 0; i < 9; ++i) j.record(ProcessId{i});
  EXPECT_EQ(j.epoch(), 9u);
  EXPECT_GT(j.base(), 0u);
  EXPECT_FALSE(j.covers(0));
  EXPECT_TRUE(j.covers(j.base()));
  // The surviving window replays correctly.
  const auto tail = j.changed_since(j.base());
  EXPECT_EQ(tail.size(), j.epoch() - j.base());
}

TEST(ChangeJournal, CoversStaysExactAcrossManyCompactions) {
  ChangeJournal j(2);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    j.record(ProcessId{i % 7});
    ASSERT_EQ(j.epoch(), i + 1u);
    ASSERT_TRUE(j.covers(j.epoch()));
    ASSERT_TRUE(j.changed_since(j.epoch()).empty());
  }
}

TEST(TaggedSet, RandomizedAgainstReferenceModel) {
  // Model-based check against a std::map reference.
  TaggedSet s;
  std::map<std::uint32_t, Tag> model;
  Xoshiro256 rng(2024);
  for (int step = 0; step < 5000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.next_below(32));
    if (rng.bernoulli(0.7)) {
      const Tag tag = rng.next();
      s.add(ProcessId{id}, tag);
      model[id] = tag;
    } else {
      EXPECT_EQ(s.erase(ProcessId{id}), model.erase(id) > 0);
    }
    ASSERT_EQ(s.size(), model.size());
  }
  for (const auto& [id, tag] : model) {
    EXPECT_EQ(s.tag_of(ProcessId{id}), tag);
  }
}

}  // namespace
}  // namespace mmrfd
