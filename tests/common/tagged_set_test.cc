#include "common/tagged_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mmrfd {
namespace {

TEST(TaggedSet, StartsEmpty) {
  TaggedSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(ProcessId{0}));
  EXPECT_EQ(s.tag_of(ProcessId{0}), std::nullopt);
}

TEST(TaggedSet, AddAndLookup) {
  TaggedSet s;
  s.add(ProcessId{3}, 7);
  EXPECT_TRUE(s.contains(ProcessId{3}));
  EXPECT_EQ(s.tag_of(ProcessId{3}), 7u);
  EXPECT_FALSE(s.contains(ProcessId{2}));
}

TEST(TaggedSet, AddReplacesExistingEntry) {
  // The paper's Add(set, <id, counter>): an existing <id, -> is replaced.
  TaggedSet s;
  s.add(ProcessId{5}, 1);
  s.add(ProcessId{5}, 9);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.tag_of(ProcessId{5}), 9u);
}

TEST(TaggedSet, AddCanLowerTag) {
  // Replacement is unconditional — ordering policy lives in the protocol,
  // not the container.
  TaggedSet s;
  s.add(ProcessId{5}, 9);
  s.add(ProcessId{5}, 1);
  EXPECT_EQ(s.tag_of(ProcessId{5}), 1u);
}

TEST(TaggedSet, EraseRemoves) {
  TaggedSet s;
  s.add(ProcessId{1}, 4);
  EXPECT_TRUE(s.erase(ProcessId{1}));
  EXPECT_FALSE(s.contains(ProcessId{1}));
  EXPECT_FALSE(s.erase(ProcessId{1}));
}

TEST(TaggedSet, EntriesSortedById) {
  TaggedSet s;
  s.add(ProcessId{9}, 1);
  s.add(ProcessId{2}, 2);
  s.add(ProcessId{5}, 3);
  const auto es = s.entries();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].id, ProcessId{2});
  EXPECT_EQ(es[1].id, ProcessId{5});
  EXPECT_EQ(es[2].id, ProcessId{9});
}

TEST(TaggedSet, IdsSorted) {
  TaggedSet s;
  s.add(ProcessId{7}, 1);
  s.add(ProcessId{0}, 1);
  const auto ids = s.ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], ProcessId{0});
  EXPECT_EQ(ids[1], ProcessId{7});
}

TEST(TaggedSet, EqualityIsValueBased) {
  TaggedSet a;
  TaggedSet b;
  a.add(ProcessId{1}, 2);
  b.add(ProcessId{1}, 2);
  EXPECT_EQ(a, b);
  b.add(ProcessId{2}, 3);
  EXPECT_NE(a, b);
}

TEST(TaggedSet, ClearEmpties) {
  TaggedSet s;
  s.add(ProcessId{1}, 1);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(TaggedSet, RandomizedAgainstReferenceModel) {
  // Model-based check against a std::map reference.
  TaggedSet s;
  std::map<std::uint32_t, Tag> model;
  Xoshiro256 rng(2024);
  for (int step = 0; step < 5000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.next_below(32));
    if (rng.bernoulli(0.7)) {
      const Tag tag = rng.next();
      s.add(ProcessId{id}, tag);
      model[id] = tag;
    } else {
      EXPECT_EQ(s.erase(ProcessId{id}), model.erase(id) > 0);
    }
    ASSERT_EQ(s.size(), model.size());
  }
  for (const auto& [id, tag] : model) {
    EXPECT_EQ(s.tag_of(ProcessId{id}), tag);
  }
}

}  // namespace
}  // namespace mmrfd
