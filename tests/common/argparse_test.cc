#include "common/argparse.h"

#include <gtest/gtest.h>

namespace mmrfd {
namespace {

ArgParser make_parser() {
  ArgParser p("test");
  p.flag("n", "10", "system size")
      .flag("rate", "1.5", "a rate")
      .flag("verbose", "false", "chatty")
      .flag("name", "abc", "a string");
  return p;
}

TEST(ArgParser, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("n"), 10);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.5);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_EQ(p.get("name"), "abc");
}

TEST(ArgParser, EqualsForm) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n=25", "--rate=0.25"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("n"), 25);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.25);
}

TEST(ArgParser, SpaceForm) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--n", "7", "--name", "xyz"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("n"), 7);
  EXPECT_EQ(p.get("name"), "xyz");
}

TEST(ArgParser, BareBooleanFlag) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagRejected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, PositionalRejected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, UnregisteredGetThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW((void)p.get("missing"), std::invalid_argument);
}

TEST(ArgParser, UsageListsFlags) {
  auto p = make_parser();
  const auto u = p.usage();
  EXPECT_NE(u.find("--n"), std::string::npos);
  EXPECT_NE(u.find("system size"), std::string::npos);
}

}  // namespace
}  // namespace mmrfd
