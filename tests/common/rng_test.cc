#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mmrfd {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, UniformWithinRange) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(5.0, 9.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 9.0);
  }
}

TEST(Xoshiro256, ExponentialMeanApproximatelyCorrect) {
  Xoshiro256 rng(23);
  double sum = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.05);
}

TEST(Xoshiro256, ExponentialNonNegative) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Xoshiro256, NormalMomentsApproximatelyCorrect) {
  Xoshiro256 rng(31);
  const int kSamples = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Xoshiro256, LogNormalMedianApproximatelyCorrect) {
  Xoshiro256 rng(37);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(rng.lognormal(4.0, 0.8));
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(xs[50000], 4.0, 0.15);
}

TEST(Xoshiro256, BoundedParetoWithinBounds) {
  Xoshiro256 rng(41);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.0, 1.5, 50.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 50.0);
  }
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(43);
  int hits = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(DeriveSeed, DistinctStreamsAndIndexes) {
  const auto a = derive_seed(42, "alpha");
  const auto b = derive_seed(42, "beta");
  const auto c = derive_seed(42, "alpha", 1);
  const auto d = derive_seed(43, "alpha");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(a, derive_seed(42, "alpha"));
}

}  // namespace
}  // namespace mmrfd
