// Serial-vs-sharded engine equivalence harness.
//
// Two levels, mirroring the delta-encoding differential harness
// (tests/core/encoding_equivalence_test.cc):
//
//   1. Engine level — 200+ randomized fixed-seed schedules of a synthetic
//      token protocol, each replayed on the serial Simulation and on
//      ShardedEngines at two shard counts. Every node's behavior is a pure
//      function of its own RNG stream and the (timestamp-ordered) tokens it
//      receives, and every hop obeys the min-delay contract, so the merged
//      traces must match the serial reference EXACTLY — times, hops,
//      values. This pins the conservative-window protocol itself: a drain
//      that reordered, dropped, duplicated or time-shifted one delivery
//      diffs immediately.
//
//   2. Cluster level — full MmrCluster vs ShardedMmrCluster deployments.
//      These are protocol-equivalent, NOT bit-identical: a shard cannot
//      share a delay RNG with another thread, so individual message delays
//      differ from the serial run and suspicion instants drift by
//      milliseconds. What must agree is the protocol-level outcome: strong
//      completeness, the exact set of permanently-suspected processes at
//      every correct observer (== the crash set, after a quiet tail), and
//      the crash schedule itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "metrics/analysis.h"
#include "runtime/cluster.h"
#include "runtime/crash_plan.h"
#include "runtime/sharded_cluster.h"
#include "sim/sharded_engine.h"
#include "sim/simulation.h"

namespace mmrfd {
namespace {

// ---------------------------------------------------------------------------
// Level 1: synthetic token protocol on the raw engines.
// ---------------------------------------------------------------------------

constexpr Duration kMinDelay = from_millis(1);  // the min-delay contract

struct Hop {
  TimePoint when{kTimeZero};
  std::uint32_t node{0};
  std::uint64_t value{0};

  friend bool operator==(const Hop&, const Hop&) = default;
};

// Each node owns a private RNG; on receiving a token it logs the hop, then
// forwards a derived value to a random node after a delay >= kMinDelay.
// Behavior depends only on the node's received-token sequence, so ANY
// engine that delivers the same tokens at the same times produces the same
// trace.
struct TokenNet {
  std::uint32_t nodes;
  std::vector<Xoshiro256> rngs;
  std::vector<std::vector<Hop>> traces;  // per node: single-writer

  TokenNet(std::uint32_t n, std::uint64_t seed) : nodes(n), traces(n) {
    rngs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      rngs.emplace_back(derive_seed(seed, "token.node", i));
    }
  }

  [[nodiscard]] std::vector<Hop> merged() const {
    std::vector<Hop> all;
    for (const auto& t : traces) all.insert(all.end(), t.begin(), t.end());
    std::sort(all.begin(), all.end(), [](const Hop& a, const Hop& b) {
      if (a.when != b.when) return a.when < b.when;
      if (a.node != b.node) return a.node < b.node;
      return a.value < b.value;
    });
    return all;
  }
};

struct Schedule {
  std::uint32_t nodes{6};
  std::uint32_t chains{3};  // independent token chains
  int ttl{24};              // hops per chain
  std::uint64_t seed{0};
  Duration horizon{from_seconds(2)};
};

Schedule make_schedule(std::uint64_t seed) {
  Xoshiro256 rng(derive_seed(seed, "equiv.schedule"));
  Schedule s;
  s.seed = seed;
  s.nodes = 3 + static_cast<std::uint32_t>(rng.next_below(8));   // 3..10
  s.chains = 1 + static_cast<std::uint32_t>(rng.next_below(4));  // 1..4
  s.ttl = 10 + static_cast<int>(rng.next_below(30));             // 10..39
  return s;
}

/// Drives one schedule's token protocol on either engine; the ttl countdown
/// travels inside each scheduled event. `eng == nullptr` selects the serial
/// Simulation.
struct TokenPump {
  TokenNet& net;
  sim::Simulation* serial{nullptr};
  sim::ShardedEngine* eng{nullptr};
  std::vector<std::uint32_t> shard_of;  // node -> shard (sharded only)

  TimePoint now_at(std::uint32_t node) {
    return eng ? eng->shard(shard_of[node]).now() : serial->now();
  }
  void arrive(std::uint32_t at, std::uint64_t value, int ttl) {
    const TimePoint now = now_at(at);
    net.traces[at].push_back(Hop{now, at, value});
    if (ttl <= 0) return;
    Xoshiro256& rng = net.rngs[at];
    const auto dst = static_cast<std::uint32_t>(rng.next_below(net.nodes));
    const Duration extra =
        Duration(static_cast<Duration::rep>(rng.next_double() * 2e6));
    const TimePoint when = now + kMinDelay + extra;
    route(at, dst, when, value * 1099511628211ULL + at, ttl - 1);
  }
  void route(std::uint32_t from, std::uint32_t to, TimePoint when,
             std::uint64_t value, int ttl) {
    if (eng != nullptr && shard_of[from] != shard_of[to]) {
      eng->post(shard_of[from], shard_of[to], when,
                [this, to, value, ttl] { arrive(to, value, ttl); });
    } else {
      sim::Simulation& sim = eng ? eng->shard(shard_of[to]) : *serial;
      sim.schedule_at(when,
                      [this, to, value, ttl] { arrive(to, value, ttl); });
    }
  }
};

// Runs one schedule; `shards` == 0 selects the serial Simulation.
std::vector<Hop> run_schedule(const Schedule& s, std::uint32_t shards) {
  TokenNet net(s.nodes, s.seed);
  TokenPump pump{net, nullptr, nullptr, {}};

  if (shards == 0) {
    sim::Simulation sim;
    pump.serial = &sim;
    for (std::uint32_t k = 0; k < s.chains; ++k) {
      const std::uint32_t origin = k % s.nodes;
      sim.schedule_at(from_millis(1 + k), [&pump, origin, k, &s] {
        pump.arrive(origin, 1000 + k, s.ttl);
      });
    }
    sim.run_until(s.horizon);
    return net.merged();
  }

  sim::ShardedEngine eng(shards, kMinDelay);
  pump.eng = &eng;
  pump.shard_of.resize(s.nodes);
  for (std::uint32_t i = 0; i < s.nodes; ++i) {
    pump.shard_of[i] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * shards) / s.nodes);
  }
  for (std::uint32_t k = 0; k < s.chains; ++k) {
    const std::uint32_t origin = k % s.nodes;
    eng.shard(pump.shard_of[origin])
        .schedule_at(from_millis(1 + k), [&pump, origin, k, &s] {
          pump.arrive(origin, 1000 + k, s.ttl);
        });
  }
  eng.run_until(s.horizon);
  return net.merged();
}

TEST(EngineEquivalence, TokenTracesMatchSerialExactly) {
  // 200 randomized schedules x 2 shard counts, all diffed against serial.
  constexpr std::uint64_t kSchedules = 200;
  for (std::uint64_t seed = 1; seed <= kSchedules; ++seed) {
    const Schedule s = make_schedule(seed);
    const auto reference = run_schedule(s, /*shards=*/0);
    ASSERT_FALSE(reference.empty()) << "schedule " << seed;
    for (const std::uint32_t shards : {2u, 5u}) {
      const auto sharded = run_schedule(s, shards);
      ASSERT_EQ(reference.size(), sharded.size())
          << "schedule " << seed << " shards " << shards;
      EXPECT_EQ(reference, sharded)
          << "schedule " << seed << " shards " << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// Level 2: full failure-detector deployments.
// ---------------------------------------------------------------------------

struct ClusterOutcome {
  std::vector<ProcessId> crashed;  // sorted victims
  bool strong_completeness{false};
  // Final suspected set of every correct observer, flattened as sorted
  // (observer, subject) pairs still open at the end of the run.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> open_pairs;
};

ClusterOutcome outcome_from(const std::vector<metrics::PairRollup>& pairs,
                            const std::vector<metrics::CrashRecord>& crashes,
                            std::uint32_t n) {
  ClusterOutcome out;
  for (const auto& c : crashes) out.crashed.push_back(c.subject);
  std::sort(out.crashed.begin(), out.crashed.end());
  const metrics::RollupSummary s = metrics::summarize_rollup(pairs, crashes, n);
  out.strong_completeness = s.strong_completeness;
  for (const auto& p : pairs) {
    if (p.open) out.open_pairs.emplace_back(p.observer.value, p.subject.value);
  }
  std::sort(out.open_pairs.begin(), out.open_pairs.end());
  return out;
}

TEST(EngineEquivalence, ClusterProtocolOutcomesMatch) {
  // Crash window ends at 8 s; the 6 s quiet tail is ~6 rounds — enough for
  // every correct observer's suspected set to converge on the crash set.
  constexpr Duration kHorizon = from_seconds(14);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    runtime::MmrClusterConfig cfg;
    cfg.n = 40;
    cfg.f = 10;
    cfg.seed = seed;
    cfg.pacing = from_millis(1000);
    cfg.pacing_jitter = 0.1;
    cfg.mean_delay = from_millis(1);
    cfg.delay_preset = net::DelayPreset::kExponential;
    const auto plan = runtime::CrashPlan::uniform(
        5, cfg.n, from_seconds(3), from_seconds(8), seed);

    runtime::MmrCluster serial(cfg);
    serial.start(plan);
    serial.run_for(kHorizon);
    const ClusterOutcome ref = outcome_from(
        serial.log().rollup(), serial.log().crashes(), cfg.n);

    ASSERT_EQ(ref.crashed.size(), 5u);
    EXPECT_TRUE(ref.strong_completeness) << "seed " << seed;

    for (const std::uint32_t shards : {2u, 4u}) {
      runtime::ShardedMmrCluster sharded(cfg, shards);
      sharded.start(plan);
      sharded.run_for(kHorizon);
      const ClusterOutcome got =
          outcome_from(sharded.rollup(), sharded.crashes(), cfg.n);

      EXPECT_EQ(ref.crashed, got.crashed)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(ref.strong_completeness, got.strong_completeness)
          << "seed " << seed << " shards " << shards;
      // After the quiet tail both deployments must have converged to the
      // same steady state: every correct observer suspects exactly the
      // crashed processes (timing drift cannot change set membership).
      EXPECT_EQ(ref.open_pairs, got.open_pairs)
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(EngineEquivalence, ShardedClusterIsDeterministic) {
  runtime::MmrClusterConfig cfg;
  cfg.n = 30;
  cfg.f = 7;
  cfg.seed = 99;
  const auto plan = runtime::CrashPlan::uniform(3, cfg.n, from_seconds(2),
                                                from_seconds(5), cfg.seed);
  auto run_once = [&] {
    runtime::ShardedMmrCluster cluster(cfg, 3);
    cluster.start(plan);
    cluster.run_for(from_seconds(8));
    struct Result {
      std::vector<metrics::PairRollup> pairs;
      std::uint64_t events;
    };
    return Result{cluster.rollup(), cluster.engine().events_fired()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].observer, b.pairs[i].observer);
    EXPECT_EQ(a.pairs[i].subject, b.pairs[i].subject);
    EXPECT_EQ(a.pairs[i].open, b.pairs[i].open);
    EXPECT_EQ(a.pairs[i].open_since, b.pairs[i].open_since);
    EXPECT_EQ(a.pairs[i].episodes, b.pairs[i].episodes);
  }
}

}  // namespace
}  // namespace mmrfd
