#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

namespace mmrfd::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation s;
  EXPECT_EQ(s.now(), kTimeZero);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule(from_millis(30), [&] { order.push_back(3); });
  s.schedule(from_millis(10), [&] { order.push_back(1); });
  s.schedule(from_millis(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, EqualTimestampsFireInSchedulingOrder) {
  // Determinism depends on stable FIFO ordering among ties.
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(from_millis(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, NowAdvancesToEventTime) {
  Simulation s;
  TimePoint seen{};
  s.schedule(from_millis(42), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, from_millis(42));
  EXPECT_EQ(s.now(), from_millis(42));
}

TEST(Simulation, RunUntilStopsBeforeLaterEvents) {
  Simulation s;
  int fired = 0;
  s.schedule(from_millis(10), [&] { ++fired; });
  s.schedule(from_millis(100), [&] { ++fired; });
  s.run_until(from_millis(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), from_millis(50));  // idle time advances to deadline
  s.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunForComposes) {
  Simulation s;
  s.run_for(from_millis(10));
  s.run_for(from_millis(15));
  EXPECT_EQ(s.now(), from_millis(25));
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation s;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) s.schedule(from_millis(1), step);
  };
  s.schedule(from_millis(1), step);
  s.run_all();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(s.now(), from_millis(5));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule(from_millis(5), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelUnknownOrFiredIsNoop) {
  Simulation s;
  EXPECT_FALSE(s.cancel(kNoEvent));
  EXPECT_FALSE(s.cancel(9999));  // never allocated
  bool fired = false;
  const EventId id = s.schedule(from_millis(1), [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
  // Regression: cancelling an already-fired event must be a false no-op.
  // The seed implementation returned true here and leaked a tombstone into
  // its cancelled-set that nothing would ever erase.
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // still false on repeat
}

TEST(Simulation, CancelOwnEventWhileFiringIsNoop) {
  // By the time a callback runs, its own id is already retired; a detector
  // that defensively cancels its active timer must get `false`, not a leak.
  Simulation s;
  EventId self_id = kNoEvent;
  bool result = true;
  self_id = s.schedule(from_millis(1), [&] { result = s.cancel(self_id); });
  s.run_all();
  EXPECT_FALSE(result);
}

TEST(Simulation, RecycledSlotDoesNotAliasOldId) {
  // After cancel, the event's slot is recycled for the next schedule; the
  // stale id carries the old generation and must not cancel the new event.
  Simulation s;
  bool fired_b = false;
  const EventId a = s.schedule(from_millis(5), [] {});
  EXPECT_TRUE(s.cancel(a));
  const EventId b = s.schedule(from_millis(5), [&] { fired_b = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(s.cancel(a));  // stale handle, generation mismatch
  s.run_all();
  EXPECT_TRUE(fired_b);
}

TEST(Simulation, ScheduleCancelSteadyStateKeepsNoLiveEvents) {
  // The baseline detectors' arm/cancel timer pattern: the slab recycles one
  // slot, live count returns to zero every iteration, and none of the
  // cancelled events ever fires.
  Simulation s;
  for (int i = 0; i < 10000; ++i) {
    const EventId id = s.schedule(from_seconds(3600), [] { FAIL(); });
    EXPECT_TRUE(s.cancel(id));
    EXPECT_EQ(s.events_live(), 0u);
  }
  s.run_all();
  EXPECT_EQ(s.events_fired(), 0u);
  EXPECT_EQ(s.events_pending(), 0u);
}

TEST(Simulation, LargeCapturesFallBackToHeapTransparently) {
  // Captures beyond the inline-callable budget must still work (the slab
  // boxes them); behaviour is identical either way.
  Simulation s;
  std::array<std::uint64_t, 32> big{};  // 256 bytes, over the inline budget
  big[31] = 42;
  std::uint64_t seen = 0;
  s.schedule(from_millis(1), [big, &seen] { seen = big[31]; });
  s.run_all();
  EXPECT_EQ(seen, 42u);
}

TEST(Simulation, CancelledEventsDoNotAdvanceTime) {
  Simulation s;
  const EventId id = s.schedule(from_millis(50), [] {});
  s.schedule(from_millis(10), [] {});
  s.cancel(id);
  s.run_all();
  EXPECT_EQ(s.now(), from_millis(10));  // the cancelled 50ms residue is inert
  EXPECT_EQ(s.events_fired(), 1u);
}

TEST(Simulation, CancelTwiceSecondIsNoop) {
  Simulation s;
  const EventId id = s.schedule(from_millis(5), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulation, StopHaltsRun) {
  Simulation s;
  int fired = 0;
  s.schedule(from_millis(1), [&] {
    ++fired;
    s.stop();
  });
  s.schedule(from_millis(2), [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 1);
  s.run_all();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, ScheduleAtAbsoluteTime) {
  Simulation s;
  TimePoint seen{};
  s.schedule_at(from_millis(7), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, from_millis(7));
}

TEST(Simulation, EventsFiredCounter) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule(from_millis(i), [] {});
  s.run_all();
  EXPECT_EQ(s.events_fired(), 5u);
}

TEST(Simulation, RunAllDoesNotJumpToSentinelTime) {
  Simulation s;
  s.schedule(from_millis(3), [] {});
  s.run_all();
  EXPECT_EQ(s.now(), from_millis(3));
}

TEST(Simulation, ZeroDelayFiresAtCurrentTime) {
  Simulation s;
  s.schedule(from_millis(5), [] {});
  s.run_all();
  bool fired = false;
  s.schedule(Duration::zero(), [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), from_millis(5));
}

}  // namespace
}  // namespace mmrfd::sim
