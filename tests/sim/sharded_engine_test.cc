// ShardedEngine unit suite: window math, cross-shard exchange, determinism,
// and the causality/error hard lines.
//
// Shard callbacks run on worker threads, so tests collect into *per-shard*
// sinks (only merged after run_until returns) — the same phase-separation
// discipline the engine itself relies on.
#include "sim/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mmrfd::sim {
namespace {

constexpr Duration kWindow = from_millis(1);

struct Fired {
  TimePoint when{kTimeZero};
  std::uint32_t shard{0};
  int value{0};

  friend bool operator==(const Fired&, const Fired&) = default;
};

TEST(ShardedEngine, RejectsZeroShardsAndZeroWindow) {
  EXPECT_THROW(ShardedEngine(0, kWindow), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(2, Duration::zero()), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(2, Duration(-1)), std::invalid_argument);
}

TEST(ShardedEngine, RejectsUnboundedDeadline) {
  ShardedEngine eng(2, kWindow);
  EXPECT_THROW(eng.run_until(kTimeMax), std::invalid_argument);
}

TEST(ShardedEngine, SingleShardMatchesPlainSimulation) {
  Simulation ref;
  ShardedEngine eng(1, kWindow);
  std::vector<TimePoint> ref_fired, eng_fired;
  for (int i = 0; i < 10; ++i) {
    const auto when = from_millis(10 * i + 1);
    ref.schedule_at(when, [&ref, &ref_fired] { ref_fired.push_back(ref.now()); });
    eng.shard(0).schedule_at(when, [&eng, &eng_fired] {
      eng_fired.push_back(eng.shard(0).now());
    });
  }
  ref.run_until(from_seconds(1));
  eng.run_until(from_seconds(1));
  EXPECT_EQ(ref_fired, eng_fired);
  EXPECT_EQ(ref.events_fired(), eng.events_fired());
  EXPECT_EQ(eng.now(), from_seconds(1));
}

TEST(ShardedEngine, CrossShardPostFiresAtExactTimestamp) {
  ShardedEngine eng(2, kWindow);
  std::vector<Fired> shard1_fired;
  // Shard 0 fires at t=2ms and posts to shard 1 due exactly one window out.
  eng.shard(0).schedule_at(from_millis(2), [&] {
    const TimePoint due = eng.shard(0).now() + kWindow;
    eng.post(0, 1, due, [&eng, &shard1_fired] {
      shard1_fired.push_back(Fired{eng.shard(1).now(), 1, 7});
    });
  });
  eng.run_until(from_millis(100));
  ASSERT_EQ(shard1_fired.size(), 1u);
  EXPECT_EQ(shard1_fired[0].when, from_millis(3));
  EXPECT_EQ(eng.cross_shard_posts(), 1u);
}

TEST(ShardedEngine, DriverPostsWhileIdleAreDelivered) {
  ShardedEngine eng(3, kWindow);
  std::vector<int> got;
  // Posted before any run_until: drained into shard 2's heap at the top of
  // the run, before the first window is sized.
  eng.post(0, 2, from_millis(5), [&got] { got.push_back(1); });
  eng.post(1, 2, from_millis(5), [&got] { got.push_back(2); });
  eng.run_until(from_millis(10));
  // Equal timestamps drain in source-shard order, then post order.
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ShardedEngine, PingPongAcrossShards) {
  // A token bounces 0 -> 1 -> 0 -> ... each hop exactly one window long;
  // every arrival time and the final hop count are exact.
  ShardedEngine eng(2, kWindow);
  std::vector<Fired> log0, log1;  // per-shard sinks (thread-confined)
  struct Bouncer {
    ShardedEngine& eng;
    std::vector<Fired>& log0;
    std::vector<Fired>& log1;
    void hop(std::uint32_t at, int count) {
      (at == 0 ? log0 : log1).push_back(
          Fired{eng.shard(at).now(), at, count});
      if (count >= 8) return;
      const std::uint32_t next = 1 - at;
      eng.post(at, next, eng.shard(at).now() + eng.window(),
               [this, next, count] { hop(next, count + 1); });
    }
  };
  Bouncer b{eng, log0, log1};
  eng.shard(0).schedule_at(from_millis(1), [&b] { b.hop(0, 0); });
  eng.run_until(from_millis(50));

  ASSERT_EQ(log0.size(), 5u);  // counts 0,2,4,6,8
  ASSERT_EQ(log1.size(), 4u);  // counts 1,3,5,7
  for (std::size_t i = 0; i < log0.size(); ++i) {
    EXPECT_EQ(log0[i].when, from_millis(1) + 2 * static_cast<int>(i) * kWindow);
  }
  for (std::size_t i = 0; i < log1.size(); ++i) {
    EXPECT_EQ(log1[i].when,
              from_millis(1) + (2 * static_cast<int>(i) + 1) * kWindow);
  }
}

// One randomized workload: every shard runs a periodic task that does local
// work and posts tokens to random other shards with random extra slack.
// Returns the merged (time, shard, value) trace, sorted.
std::vector<Fired> run_workload(std::uint32_t shards, std::uint64_t seed) {
  ShardedEngine eng(shards, kWindow);
  std::vector<std::vector<Fired>> sinks(shards);
  std::vector<Xoshiro256> rngs;  // one per shard: thread-confined draws
  rngs.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    rngs.emplace_back(derive_seed(seed, "workload", s));
  }

  struct Node {
    ShardedEngine& eng;
    std::vector<std::vector<Fired>>& sinks;
    std::vector<Xoshiro256>& rngs;
    std::uint32_t shards;
    void on_token(std::uint32_t at, int value) {
      sinks[at].push_back(Fired{eng.shard(at).now(), at, value});
      if (value <= 0) return;
      const auto dst = static_cast<std::uint32_t>(rngs[at].next_below(shards));
      const Duration slack =
          Duration(static_cast<Duration::rep>(rngs[at].next_double() * 1e6));
      const TimePoint due = eng.shard(at).now() + eng.window() + slack;
      if (dst == at) {
        eng.shard(at).schedule_at(due, [this, at, value] {
          on_token(at, value - 1);
        });
      } else {
        eng.post(at, dst, due, [this, dst, value] {
          on_token(dst, value - 1);
        });
      }
    }
  };
  Node node{eng, sinks, rngs, shards};
  for (std::uint32_t s = 0; s < shards; ++s) {
    eng.shard(s).schedule_at(from_millis(1 + s), [&node, s] {
      node.on_token(s, 20);
    });
  }
  eng.run_until(from_seconds(1));

  std::vector<Fired> merged;
  for (auto& s : sinks) merged.insert(merged.end(), s.begin(), s.end());
  std::sort(merged.begin(), merged.end(), [](const Fired& a, const Fired& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.value < b.value;
  });
  return merged;
}

TEST(ShardedEngine, DeterministicAcrossRepeatedRuns) {
  // Same (seed, shards) twice — bit-identical traces despite real threads.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = run_workload(4, seed);
    const auto b = run_workload(4, seed);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(ShardedEngine, AdaptiveWindowsSkipIdleStretches) {
  ShardedEngine eng(2, kWindow);
  int fired = 0;
  // Two events an hour of virtual time apart: fixed 1 ms windows would need
  // ~3.6M barrier rounds; adaptive targeting must do it in a handful.
  eng.shard(0).schedule_at(from_seconds(1), [&fired] { ++fired; });
  eng.shard(1).schedule_at(from_seconds(3600), [&fired] { ++fired; });
  eng.run_until(from_seconds(3601));
  EXPECT_EQ(fired, 2);
  EXPECT_LE(eng.windows_run(), 8u);
}

TEST(ShardedEngine, RunUntilComposes) {
  // Two half-horizon runs == one full run, including a cross-shard post
  // whose due time lands in the second call.
  auto run_split = [](bool split) {
    ShardedEngine eng(2, kWindow);
    std::vector<TimePoint> fired;
    eng.shard(0).schedule_at(from_millis(9), [&] {
      eng.post(0, 1, eng.shard(0).now() + kWindow + from_millis(3),
               [&eng, &fired] { fired.push_back(eng.shard(1).now()); });
    });
    if (split) {
      eng.run_until(from_millis(10));
      eng.run_until(from_millis(20));
    } else {
      eng.run_until(from_millis(20));
    }
    return fired;
  };
  EXPECT_EQ(run_split(true), run_split(false));
  EXPECT_EQ(run_split(true), std::vector<TimePoint>{from_millis(13)});
}

TEST(ShardedEngine, CausalityViolationSurfacesAsError) {
  ShardedEngine eng(2, kWindow);
  // Shard 0 breaks the min-delay contract: posts an event due *now* (not
  // now + window) far enough into the run that shard 1's clock has passed.
  eng.shard(0).schedule_at(from_millis(50), [&eng] {
    eng.post(0, 1, from_millis(1), [] {});
  });
  EXPECT_THROW(eng.run_until(from_millis(100)), std::runtime_error);
}

TEST(ShardedEngine, CallbackExceptionPropagates) {
  ShardedEngine eng(3, kWindow);
  eng.shard(1).schedule_at(from_millis(5), [] {
    throw std::logic_error("boom");
  });
  try {
    eng.run_until(from_millis(10));
    FAIL() << "expected run_until to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(ShardedEngine, EventsFiredAggregatesShards) {
  ShardedEngine eng(4, kWindow);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 3; ++i) {
      eng.shard(s).schedule_at(from_millis(1 + i), [] {});
    }
  }
  eng.run_until(from_millis(10));
  EXPECT_EQ(eng.events_fired(), 12u);
}

}  // namespace
}  // namespace mmrfd::sim
