// Adversarial channels + self-stabilization sweeps.
//
// Every test here perturbs an execution beyond the paper's channel model —
// bounded reordering, asymmetric partitions, scheduled link flaps,
// duplication storms, transient state corruption — and then asserts the
// cluster *re-converges* to the detector's specification: every correct
// process eventually suspects exactly the crashed processes, within a
// bounded window after the perturbation ends. Each fault class runs under
// BOTH wire encodings (the paper's full encoding and the production delta
// encoding), because the resync path is where corruption bugs hide.
//
// Registered under the `adversarial` ctest label; CI additionally runs the
// label under ASan/UBSan.
#include <gtest/gtest.h>

#include <vector>

#include "core/properties.h"
#include "metrics/analysis.h"
#include "runtime/cluster.h"

namespace mmrfd::runtime {
namespace {

MmrClusterConfig base(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
                      bool delta) {
  MmrClusterConfig c;
  c.n = n;
  c.f = f;
  c.seed = seed;
  c.delta_queries = delta;
  c.pacing = from_millis(100);
  c.mean_delay = from_millis(2);
  c.delay_preset = net::DelayPreset::kConstant;
  // Tightened from the production default so the watermark guard fires
  // several times inside a 45 s sweep (32 rounds at 100 ms pacing = 3.2 s).
  c.resync_interval = 32;
  return c;
}

/// Replays the run's suspicion transitions through the stabilization
/// checker. Mistake events are view-neutral (the suspicion interval they
/// close is reported via kCleared).
core::StabilizationVerdict stabilization(
    const MmrCluster& cluster, const std::vector<ProcessId>& crashed) {
  core::StabilizationChecker checker(cluster.n(), crashed);
  for (const auto& e : cluster.log().events()) {
    if (e.kind == metrics::SuspicionEventKind::kMistake) continue;
    checker.feed(e.when, e.observer, e.subject,
                 e.kind == metrics::SuspicionEventKind::kSuspected);
  }
  return checker.verdict();
}

void expect_converged(const core::StabilizationVerdict& v, TimePoint deadline,
                      const char* what) {
  EXPECT_TRUE(v.converged) << what << ": " << v.missing.size()
                           << " missing suspicions, "
                           << v.false_suspicions.size() << " false ones";
  EXPECT_LE(v.stabilized_at, deadline)
      << what << ": view still churning at "
      << static_cast<double>(v.stabilized_at.count()) / 1e9 << " s";
}

TEST(Adversarial, ReorderedChannelsReconverge) {
  // 25% of messages stretched by up to 30 ms (several pacing fractions of
  // out-of-order delivery) for the first 10 s, spanning a crash. Once the
  // channel calms down the views must settle on exactly the crashed set.
  for (const bool delta : {false, true}) {
    auto cfg = base(8, 2, 31, delta);
    cfg.faults.reorder_rate = 0.25;
    cfg.faults.reorder_window = from_millis(30);
    MmrCluster cluster(cfg);
    cluster.simulation().schedule_at(from_seconds(10), [&cluster] {
      cluster.network().set_reorder(0.0, Duration::zero());
    });
    CrashPlan plan;
    plan.entries.push_back({ProcessId{5}, from_seconds(3)});
    cluster.start(plan);
    cluster.run_for(from_seconds(30));
    EXPECT_GT(cluster.network().stats().messages_reordered, 100u);
    expect_converged(stabilization(cluster, {ProcessId{5}}),
                     from_seconds(25), delta ? "delta" : "full");
  }
}

TEST(Adversarial, AsymmetricPartitionHealsAndReconverges) {
  // One *directed* edge blocked: p1's messages to p2 vanish while the
  // reverse direction stays up — the asymmetric case a symmetric partition
  // model never exercises. p2 cannot respond to queries it never receives,
  // so p1 falsely suspects it; gossip + self-defence repair each episode.
  // After the heal at 8 s the views must settle exactly.
  for (const bool delta : {false, true}) {
    auto cfg = base(8, 2, 32, delta);
    cfg.faults.blocked_links.push_back({ProcessId{1}, ProcessId{2}});
    MmrCluster cluster(cfg);
    cluster.simulation().schedule_at(from_seconds(8), [&cluster] {
      cluster.network().heal_link(ProcessId{1}, ProcessId{2});
    });
    CrashPlan plan;
    plan.entries.push_back({ProcessId{6}, from_seconds(4)});
    cluster.start(plan);
    cluster.run_for(from_seconds(30));
    EXPECT_GT(cluster.network().stats().messages_dropped_partition, 10u);
    expect_converged(stabilization(cluster, {ProcessId{6}}),
                     from_seconds(25), delta ? "delta" : "full");
  }
}

TEST(Adversarial, LinkFlapsReconverge) {
  // Scheduled flaps: p3's edges to p0 and p1 (plus the reverse edge from
  // p0) go down during [3 s, 8 s). p0 and p1 falsely suspect p3 while its
  // responses to them vanish; p3's own rounds keep terminating through the
  // five remaining peers (the flap deliberately leaves quorum reachable —
  // with no retransmission layer, a simulated host whose *query* is dropped
  // stalls forever, which is the documented loss-breaks-liveness boundary,
  // not a convergence scenario). After the heal p3's self-defence must
  // clear the suspicions everywhere.
  for (const bool delta : {false, true}) {
    auto cfg = base(8, 2, 33, delta);
    cfg.faults.link_flaps.push_back(
        {ProcessId{3}, ProcessId{0}, from_seconds(3), from_seconds(8)});
    cfg.faults.link_flaps.push_back(
        {ProcessId{3}, ProcessId{1}, from_seconds(3), from_seconds(8)});
    cfg.faults.link_flaps.push_back(
        {ProcessId{0}, ProcessId{3}, from_seconds(3), from_seconds(8)});
    MmrCluster cluster(cfg);
    cluster.start();
    cluster.run_for(from_seconds(30));
    EXPECT_GT(cluster.network().stats().messages_dropped_partition, 50u);
    expect_converged(stabilization(cluster, {}), from_seconds(25),
                     delta ? "delta" : "full");
  }
}

TEST(Adversarial, DuplicationStormReconverges) {
  // Half of all messages delivered twice for the whole run. Dedup is the
  // quorum counter's job (a responder counts once); the views must converge
  // as if the channel were clean.
  for (const bool delta : {false, true}) {
    auto cfg = base(8, 2, 34, delta);
    cfg.faults.duplicate_rate = 0.5;
    MmrCluster cluster(cfg);
    CrashPlan plan;
    plan.entries.push_back({ProcessId{2}, from_seconds(3)});
    cluster.start(plan);
    cluster.run_for(from_seconds(25));
    EXPECT_GT(cluster.network().stats().messages_duplicated, 1000u);
    expect_converged(stabilization(cluster, {ProcessId{2}}),
                     from_seconds(20), delta ? "delta" : "full");
  }
}

TEST(Adversarial, TransientCorruptionReconverges) {
  // The self-stabilization core: two nodes have their entire protocol state
  // scrambled mid-run — suspicion/mistake sets replaced with garbage
  // (including self-suspicions), round counters shifted, the change journal
  // rebased arbitrarily and the delta watermarks overwritten. The cluster
  // must re-converge to exactly the crashed set within a bounded window, in
  // both encodings, for every corruption seed.
  for (const bool delta : {false, true}) {
    for (const std::uint64_t corruption_seed : {11ull, 12ull, 13ull}) {
      auto cfg = base(8, 2, 35 + corruption_seed, delta);
      MmrCluster cluster(cfg);
      cluster.simulation().schedule_at(
          from_seconds(10), [&cluster, corruption_seed] {
            cluster.host(ProcessId{1})
                .detector()
                .inject_transient_corruption(corruption_seed);
            cluster.host(ProcessId{4})
                .detector()
                .inject_transient_corruption(corruption_seed + 1000);
          });
      CrashPlan plan;
      plan.entries.push_back({ProcessId{6}, from_seconds(2)});
      cluster.start(plan);
      cluster.run_for(from_seconds(45));
      // End-state check straight off the detectors (belt) ...
      for (std::uint32_t i = 0; i < 8; ++i) {
        if (i == 6) continue;
        const auto& d = cluster.host(ProcessId{i}).detector();
        EXPECT_TRUE(d.is_suspected(ProcessId{6}))
            << "observer " << i << " seed " << corruption_seed;
        for (std::uint32_t j = 0; j < 8; ++j) {
          if (j == 6 || j == i) continue;
          EXPECT_FALSE(d.is_suspected(ProcessId{j}))
              << "observer " << i << " falsely suspects " << j << " seed "
              << corruption_seed;
        }
      }
      // ... and the trace check (suspenders): converged, within 20 s of the
      // injection. The dominant repair term is the watermark resync guard
      // (resync_interval rounds = 3.2 s here); 20 s leaves room for several
      // suspicion/defence round trips on top.
      expect_converged(stabilization(cluster, {ProcessId{6}}),
                       from_seconds(30),
                       delta ? "delta" : "full");
    }
  }
}

TEST(Adversarial, CorruptionUnderChannelFaultsReconverges) {
  // Combined: state corruption lands while the channel itself is still
  // adversarial (reordering + duplication until 15 s). The repair machinery
  // must work through the noisy channel, not just after it.
  for (const bool delta : {false, true}) {
    auto cfg = base(8, 2, 36, delta);
    cfg.faults.reorder_rate = 0.2;
    cfg.faults.reorder_window = from_millis(25);
    cfg.faults.duplicate_rate = 0.3;
    MmrCluster cluster(cfg);
    cluster.simulation().schedule_at(from_seconds(10), [&cluster] {
      cluster.host(ProcessId{2}).detector().inject_transient_corruption(77);
    });
    cluster.simulation().schedule_at(from_seconds(15), [&cluster] {
      cluster.network().set_reorder(0.0, Duration::zero());
      cluster.network().set_duplicate_rate(0.0);
    });
    CrashPlan plan;
    plan.entries.push_back({ProcessId{7}, from_seconds(5)});
    cluster.start(plan);
    cluster.run_for(from_seconds(45));
    expect_converged(stabilization(cluster, {ProcessId{7}}),
                     from_seconds(35), delta ? "delta" : "full");
  }
}

TEST(Adversarial, PermanentAsymmetricPartitionStaysSafe) {
  // Negative-space documentation: a *permanent* one-way partition violates
  // the model's reliable-channel assumption, so exact convergence between
  // the partitioned pair is not promised (p1 re-suspects p2 each round, p2
  // keeps defending — a stable oscillation). What must survive anyway:
  // strong completeness for real crashes, and the suspected/mistake sets
  // staying mutually exclusive everywhere.
  auto cfg = base(8, 2, 37, true);
  cfg.faults.blocked_links.push_back({ProcessId{1}, ProcessId{2}});
  MmrCluster cluster(cfg);
  CrashPlan plan;
  plan.entries.push_back({ProcessId{0}, from_seconds(3)});
  cluster.start(plan);
  cluster.run_for(from_seconds(30));
  metrics::Analysis analysis(cluster.log(), 8, from_seconds(30));
  EXPECT_TRUE(analysis.strong_completeness());
  for (std::uint32_t i = 1; i < 8; ++i) {
    const auto& d = cluster.host(ProcessId{i}).detector();
    for (const auto& e : d.suspected_set().entries()) {
      EXPECT_FALSE(d.mistake_set().contains(e.id)) << "observer " << i;
    }
  }
}

TEST(Adversarial, GiveupPolicyKeepsPropertiesAndCutsQueries) {
  // The crashed-peer give-up policy must not dent completeness or accuracy,
  // and must measurably elide queries to long-dead peers.
  for (const bool delta : {false, true}) {
    auto cfg = base(8, 2, 38, delta);
    cfg.giveup_rounds = 4;
    MmrCluster cluster(cfg);
    CrashPlan plan;
    plan.entries.push_back({ProcessId{3}, from_seconds(2)});
    cluster.start(plan);
    cluster.run_for(from_seconds(30));
    expect_converged(stabilization(cluster, {ProcessId{3}}),
                     from_seconds(25), delta ? "delta" : "full");
    std::uint64_t skipped = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
      if (i == 3) continue;
      skipped += cluster.host(ProcessId{i}).detector().queries_skipped();
    }
    // ~280 rounds per host after the crash; with K=4 roughly 3/4 of the
    // queries to the dead peer are elided on each of 7 hosts.
    EXPECT_GT(skipped, 500u);
  }
}

}  // namespace
}  // namespace mmrfd::runtime
