// Property-style parameterized sweeps: the protocol's guarantees must hold
// for EVERY delay distribution and EVERY seed — completeness needs no
// assumption at all, accuracy needs exactly MP, determinism needs nothing
// but the seed. Each TEST_P is one (distribution, seed) cell.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/properties.h"
#include "metrics/analysis.h"
#include "runtime/cluster.h"

namespace mmrfd::runtime {
namespace {

struct SweepParam {
  net::DelayPreset preset;
  std::uint64_t seed;
};

std::string param_name(const testing::TestParamInfo<SweepParam>& info) {
  return std::string(net::preset_name(info.param.preset)) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<SweepParam> make_params() {
  std::vector<SweepParam> out;
  for (auto preset :
       {net::DelayPreset::kConstant, net::DelayPreset::kUniform,
        net::DelayPreset::kExponential, net::DelayPreset::kLogNormal,
        net::DelayPreset::kPareto}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      out.push_back({preset, seed});
    }
  }
  return out;
}

class DetectorSweep : public testing::TestWithParam<SweepParam> {};

// Strong completeness holds under ANY delay model, any seed, no bias.
TEST_P(DetectorSweep, StrongCompletenessAlwaysHolds) {
  const auto p = GetParam();
  MmrClusterConfig cfg;
  cfg.n = 10;
  cfg.f = 3;
  cfg.seed = p.seed;
  cfg.pacing = from_millis(100);
  cfg.mean_delay = from_millis(2);
  cfg.delay_preset = p.preset;
  MmrCluster cluster(cfg);
  const auto plan =
      CrashPlan::uniform(3, 10, from_seconds(2), from_seconds(10), p.seed);
  cluster.start(plan);
  cluster.run_for(from_seconds(40));
  metrics::Analysis analysis(cluster.log(), 10, from_seconds(40));
  EXPECT_TRUE(analysis.strong_completeness());
  // And permanence: crashed processes are suspected at the end by everyone.
  for (ProcessId victim : plan.victims()) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      if (plan.crashes(ProcessId{i})) continue;
      EXPECT_TRUE(
          cluster.host(ProcessId{i}).detector().is_suspected(victim))
          << net::preset_name(p.preset) << " seed " << p.seed << ": p" << i
          << " does not suspect crashed p" << victim.value;
    }
  }
}

// With an engineered witness, accuracy stabilizes on every distribution:
// the witness is not suspected by anyone at the end of the run.
TEST_P(DetectorSweep, EngineeredWitnessIsEventuallyTrusted) {
  const auto p = GetParam();
  MmrClusterConfig cfg;
  cfg.n = 10;
  cfg.f = 3;
  cfg.seed = p.seed;
  cfg.pacing = from_millis(100);
  cfg.mean_delay = from_millis(2);
  cfg.delay_preset = p.preset;
  cfg.fast_set = {ProcessId{0}};
  cfg.fast_factor = 0.02;
  MmrCluster cluster(cfg);
  cluster.start();
  cluster.run_for(from_seconds(40));
  for (std::uint32_t i = 1; i < 10; ++i) {
    EXPECT_FALSE(
        cluster.host(ProcessId{i}).detector().is_suspected(ProcessId{0}))
        << net::preset_name(p.preset) << " seed " << p.seed;
  }
}

// Identical seeds produce bit-identical event logs; different seeds differ
// (on randomized presets).
TEST_P(DetectorSweep, RunsAreDeterministic) {
  const auto p = GetParam();
  auto digest = [&](std::uint64_t seed) {
    MmrClusterConfig cfg;
    cfg.n = 8;
    cfg.f = 2;
    cfg.seed = seed;
    cfg.pacing = from_millis(100);
    cfg.mean_delay = from_millis(5);
    cfg.delay_preset = p.preset;
    MmrCluster cluster(cfg);
    const auto plan =
        CrashPlan::uniform(2, 8, from_seconds(1), from_seconds(5), seed);
    cluster.start(plan);
    cluster.run_for(from_seconds(15));
    std::ostringstream os;
    for (const auto& e : cluster.log().events()) {
      os << e.when.count() << ',' << e.observer.value << ','
         << e.subject.value << ',' << static_cast<int>(e.kind) << ';';
    }
    os << cluster.network().stats().messages_sent;
    return os.str();
  };
  EXPECT_EQ(digest(p.seed), digest(p.seed));
}

// A host never suspects itself, and suspected/mistake sets stay disjoint —
// checked over the full run via the final state of every host.
TEST_P(DetectorSweep, StateInvariantsAtEndOfRun) {
  const auto p = GetParam();
  MmrClusterConfig cfg;
  cfg.n = 12;
  cfg.f = 4;
  cfg.seed = p.seed;
  cfg.pacing = from_millis(100);
  cfg.mean_delay = from_millis(10);  // aggressive: delay ~ pacing/10
  cfg.delay_preset = p.preset;
  MmrCluster cluster(cfg);
  const auto plan =
      CrashPlan::uniform(2, 12, from_seconds(2), from_seconds(8), p.seed);
  cluster.start(plan);
  cluster.run_for(from_seconds(20));
  for (std::uint32_t i = 0; i < 12; ++i) {
    const auto& d = cluster.host(ProcessId{i}).detector();
    EXPECT_FALSE(d.is_suspected(ProcessId{i}));
    for (const auto& e : d.suspected_set().entries()) {
      EXPECT_FALSE(d.mistake_set().contains(e.id))
          << "p" << i << " holds both suspicion and mistake for p"
          << e.id.value;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, DetectorSweep,
                         testing::ValuesIn(make_params()), param_name);

// The MP checker's verdict must agree with observed accuracy: whenever the
// checker says MP held with witness p, no correct process may suspect p at
// the end of the horizon (modulo in-flight repair, excluded by the quiet
// tail of the run).
class MpConsistencySweep : public testing::TestWithParam<SweepParam> {};

TEST_P(MpConsistencySweep, CheckerVerdictMatchesObservedAccuracy) {
  const auto p = GetParam();
  MmrClusterConfig cfg;
  cfg.n = 10;
  cfg.f = 3;
  cfg.seed = p.seed;
  cfg.pacing = from_millis(100);
  cfg.mean_delay = from_millis(2);
  cfg.delay_preset = p.preset;
  cfg.fast_set = {ProcessId{3}};
  cfg.fast_factor = 0.02;
  MmrCluster cluster(cfg);
  cluster.start();
  cluster.run_for(from_seconds(30));
  std::vector<ProcessId> correct;
  for (std::uint32_t i = 0; i < 10; ++i) correct.push_back(ProcessId{i});
  core::MpChecker checker(cluster.recorder(), cfg.f, correct);
  const auto verdict = checker.check();
  if (!verdict.holds) GTEST_SKIP() << "MP did not hold on this seed";
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (ProcessId{i} == verdict.witness) continue;
    EXPECT_FALSE(cluster.host(ProcessId{i})
                     .detector()
                     .is_suspected(verdict.witness))
        << "checker said MP held with witness p" << verdict.witness.value
        << " but p" << i << " still suspects it";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, MpConsistencySweep,
                         testing::ValuesIn(make_params()), param_name);

}  // namespace
}  // namespace mmrfd::runtime
