// Fault-injection robustness: behaviours *outside* the paper's channel model
// (duplication, extreme reordering via heavy-tailed delays, simultaneous
// crashes, crash of the engineered witness) that a production deployment
// will meet anyway. The protocol must stay safe; where the model is
// violated, degradation must be graceful and understood.
#include <gtest/gtest.h>

#include "core/properties.h"
#include "metrics/analysis.h"
#include "runtime/cluster.h"

namespace mmrfd::runtime {
namespace {

MmrClusterConfig base(std::uint32_t n, std::uint32_t f, std::uint64_t seed) {
  MmrClusterConfig c;
  c.n = n;
  c.f = f;
  c.seed = seed;
  c.pacing = from_millis(100);
  c.mean_delay = from_millis(2);
  return c;
}

TEST(FaultInjection, DuplicatedMessagesAreIdempotent) {
  // 30% of all messages delivered twice: duplicate responses must not count
  // twice toward the quorum, duplicate queries only cost an extra response.
  auto cfg = base(8, 2, 21);
  cfg.delay_preset = net::DelayPreset::kConstant;
  MmrCluster cluster(cfg);
  cluster.network().set_duplicate_rate(0.3);
  CrashPlan plan;
  plan.entries.push_back({ProcessId{5}, from_seconds(3)});
  cluster.start(plan);
  cluster.run_for(from_seconds(20));
  EXPECT_GT(cluster.network().stats().messages_duplicated, 1000u);
  metrics::Analysis analysis(cluster.log(), 8, from_seconds(20));
  EXPECT_TRUE(analysis.strong_completeness());
  // Constant delays + duplication: still not a single false suspicion.
  EXPECT_TRUE(analysis.false_suspicions().empty());
}

TEST(FaultInjection, DuplicationDoesNotShortcutQuorum) {
  // Direct core check: the same responder delivered twice is one vote.
  core::DetectorConfig cfg;
  cfg.self = ProcessId{0};
  cfg.n = 5;
  cfg.f = 2;  // quorum 3: self + 2 distinct
  core::DetectorCore d(cfg);
  const auto q = d.start_query();
  EXPECT_FALSE(d.on_response(ProcessId{1}, core::ResponseMessage{q.seq}));
  EXPECT_FALSE(d.on_response(ProcessId{1}, core::ResponseMessage{q.seq}));
  EXPECT_FALSE(d.on_response(ProcessId{1}, core::ResponseMessage{q.seq}));
  EXPECT_TRUE(d.on_response(ProcessId{2}, core::ResponseMessage{q.seq}));
}

TEST(FaultInjection, SimultaneousFCrashes) {
  // All f crashes at the same instant — the hardest completeness workload:
  // the quorum shrinks to exactly n - f survivors at once.
  auto cfg = base(10, 3, 22);
  MmrCluster cluster(cfg);
  const std::vector<ProcessId> victims{ProcessId{1}, ProcessId{4},
                                       ProcessId{7}};
  cluster.start(CrashPlan::simultaneous(victims, from_seconds(2)));
  cluster.run_for(from_seconds(20));
  metrics::Analysis analysis(cluster.log(), 10, from_seconds(20));
  EXPECT_TRUE(analysis.strong_completeness());
  for (ProcessId v : victims) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      if (std::find(victims.begin(), victims.end(), ProcessId{i}) !=
          victims.end()) {
        continue;
      }
      EXPECT_TRUE(cluster.host(ProcessId{i}).detector().is_suspected(v));
    }
  }
}

TEST(FaultInjection, CrashOfTheWitnessStillCompletes) {
  // The MP witness itself crashes: accuracy's precondition is gone (MP
  // demands a *correct* witness) but completeness must still hold, and the
  // witness must end up suspected everywhere despite its mistake history.
  auto cfg = base(8, 2, 23);
  cfg.delay_preset = net::DelayPreset::kPareto;
  cfg.mean_delay = from_millis(10);
  cfg.fast_set = {ProcessId{0}};
  cfg.fast_factor = 0.05;
  MmrCluster cluster(cfg);
  CrashPlan plan;
  plan.entries.push_back({ProcessId{0}, from_seconds(10)});
  cluster.start(plan);
  cluster.run_for(from_seconds(40));
  for (std::uint32_t i = 1; i < 8; ++i) {
    EXPECT_TRUE(
        cluster.host(ProcessId{i}).detector().is_suspected(ProcessId{0}))
        << "p" << i;
  }
}

TEST(FaultInjection, CrashDuringSpikeIsStillDetectedPermanently) {
  // A process crashes *while unreachable*: observers cannot distinguish the
  // two (the paper's moving-node ambiguity). When the spike lifts, its
  // suspicion must remain — no mistake can ever arrive.
  auto cfg = base(8, 2, 24);
  cfg.delay_preset = net::DelayPreset::kConstant;
  SpikeSpec spike;
  spike.start = from_seconds(5);
  spike.end = from_seconds(10);
  spike.factor = 5000.0;
  spike.affected = {ProcessId{7}};
  cfg.spike = spike;
  MmrCluster cluster(cfg);
  CrashPlan plan;
  plan.entries.push_back({ProcessId{7}, from_seconds(7)});  // mid-spike
  cluster.start(plan);
  cluster.run_for(from_seconds(40));
  metrics::Analysis analysis(cluster.log(), 8, from_seconds(40));
  EXPECT_TRUE(analysis.strong_completeness());
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(
        cluster.host(ProcessId{i}).detector().is_suspected(ProcessId{7}));
  }
}

TEST(FaultInjection, ExtremeReorderingViaParetoTails) {
  // Pareto delays reorder messages massively (a response can overtake
  // queries from several later rounds). Stale-seq filtering must keep every
  // invariant; completeness unaffected.
  auto cfg = base(10, 3, 25);
  cfg.delay_preset = net::DelayPreset::kPareto;
  cfg.mean_delay = from_millis(30);  // ~1/3 of the pacing: heavy overlap
  MmrCluster cluster(cfg);
  const auto plan =
      CrashPlan::uniform(3, 10, from_seconds(3), from_seconds(10), 25);
  cluster.start(plan);
  cluster.run_for(from_seconds(60));
  metrics::Analysis analysis(cluster.log(), 10, from_seconds(60));
  EXPECT_TRUE(analysis.strong_completeness());
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto& d = cluster.host(ProcessId{i}).detector();
    for (const auto& e : d.suspected_set().entries()) {
      EXPECT_FALSE(d.mistake_set().contains(e.id));
    }
  }
}

TEST(FaultInjection, LossBreaksLivenessAsTheModelPredicts) {
  // Negative test, documenting the model boundary: the protocol *requires*
  // reliable channels. With 20% loss a query eventually waits forever for
  // its quorum and that host's rounds stall.
  auto cfg = base(6, 2, 26);
  cfg.delay_preset = net::DelayPreset::kConstant;
  MmrCluster cluster(cfg);
  cluster.network().set_loss_rate(0.2);
  cluster.start();
  cluster.run_for(from_seconds(120));
  std::uint64_t min_rounds = ~0ULL;
  for (std::uint32_t i = 0; i < 6; ++i) {
    min_rounds = std::min(
        min_rounds, cluster.host(ProcessId{i}).detector().rounds_completed());
  }
  // 120 s at ~9 rounds/s would be ~1000 rounds; a stalled host shows far
  // fewer. (Quorum 4 of 6: P[>=2 of 5 responses lost] ~ 26% per round.)
  EXPECT_LT(min_rounds, 500u);
}

}  // namespace
}  // namespace mmrfd::runtime
