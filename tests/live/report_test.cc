// NodeReport binary codec: round-trip fidelity, total decoding of corrupt
// input, and the atomic file write the SIGKILL-at-any-instant crash model
// depends on.
#include "live/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace mmrfd::live {
namespace {

NodeReport sample_report() {
  NodeReport r;
  r.self = 3;
  r.n = 8;
  r.f = 2;
  r.delta = true;
  r.reliable = true;
  r.pacing_ns = 50'000'000;
  r.origin_ns = 1'234'567'890'000ull;
  r.snapshot_ns = 9'876'543'210ull;
  r.rounds = 431;
  r.full_queries_sent = 112;
  r.delta_queries_sent = 2961;
  r.queries_received = 3001;
  r.responses_received = 2999;
  r.responses_sent = 3001;
  r.need_full_sent = 2;
  r.need_full_received = 1;
  r.query_bytes_sent = 77'000;
  r.response_bytes_sent = 42'000;
  r.datagrams_received = 6000;
  r.bytes_received = 150'000;
  r.truncated = 1;
  r.recv_errors = 0;
  r.rcvbuf_bytes = 425'984;
  r.malformed = 4;
  r.retransmissions = 17;
  r.gave_up = 1;
  r.duplicates = 5;
  r.datagrams_sent = 6100;
  r.bytes_sent = 160'000;
  r.acks_sent = 2900;
  r.data_bytes_sent = 120'000;
  r.retransmit_bytes_sent = 2'500;
  r.ack_bytes_sent = 37'700;
  r.metrics.counters = {{"rel.data_sent", 3073}, {"rt.rounds", 431}};
  r.metrics.gauges = {{"udp.rcvbuf_bytes", 425'984}};
  {
    obs::HistogramSnapshot h;
    h.name = "rt.round_rtt_ns";
    h.count = 431;
    h.sum = 431'000'000;
    h.buckets = {{200, 430}, {212, 1}};
    r.metrics.histograms = {std::move(h)};
  }
  r.suspected = {5, 7};
  r.events = {
      ReportEvent{1'000'000, 5, 0, 3},
      ReportEvent{2'000'000, 5, 2, 4},
      ReportEvent{2'000'001, 5, 1, 4},
      ReportEvent{7'000'000, 7, 0, 9},
  };
  return r;
}

TEST(NodeReportCodec, RoundTripsEveryField) {
  const NodeReport r = sample_report();
  const auto bytes = encode_report(r);
  const auto decoded = decode_report(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST(NodeReportCodec, EmptySetsRoundTrip) {
  NodeReport r;
  r.self = 0;
  r.n = 2;
  r.f = 1;
  const auto decoded = decode_report(encode_report(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
  EXPECT_TRUE(decoded->suspected.empty());
  EXPECT_TRUE(decoded->events.empty());
}

TEST(NodeReportCodec, EveryTruncationDecodesToNullopt) {
  // A SIGKILL mid-write must never crash the aggregator: every prefix of a
  // valid report is rejected cleanly (the atomic rename makes torn files
  // unreachable in practice, but decode stays total regardless).
  const auto bytes = encode_report(sample_report());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        decode_report(std::span(bytes.data(), len)).has_value())
        << "prefix of length " << len << " decoded";
  }
}

TEST(NodeReportCodec, GarbageLengthFieldRejectedWithoutAllocating) {
  // A corrupt count must fail against the bytes actually present, not
  // drive a reserve() of gigabytes before the first element read fails.
  const NodeReport r = sample_report();
  auto bytes = encode_report(r);
  const std::size_t event_count_at = bytes.size() - r.events.size() * 21 - 4;
  for (std::size_t i = 0; i < 4; ++i) bytes[event_count_at + i] = 0xFF;
  EXPECT_FALSE(decode_report(bytes).has_value());
}

TEST(NodeReportCodec, GarbageMetricCountsRejected) {
  // The embedded registry snapshot's counts are sanity-checked against the
  // buffer size too: flood the counter-count field (the first u32 after the
  // fixed header of 4 magic + 4 version + 12 ids + 2 bools + 28 u64s).
  auto bytes = encode_report(sample_report());
  const std::size_t counter_count_at = 4 + 4 + 12 + 2 + 28 * 8;
  for (std::size_t i = 0; i < 4; ++i) bytes[counter_count_at + i] = 0xFF;
  EXPECT_FALSE(decode_report(bytes).has_value());
}

TEST(NodeReportCodec, RejectsBadMagicVersionAndTrailingGarbage) {
  auto bytes = encode_report(sample_report());
  auto corrupted = bytes;
  corrupted[0] = 'X';
  EXPECT_FALSE(decode_report(corrupted).has_value());
  corrupted = bytes;
  corrupted[4] = 0xFF;  // version
  EXPECT_FALSE(decode_report(corrupted).has_value());
  corrupted = bytes;
  corrupted.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_report(corrupted).has_value());
}

TEST(NodeReportFile, WriteReadRoundTripAndMissingFile) {
  const std::string dir =
      "report_test_tmp." + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/node3.g0.bin";
  const NodeReport r = sample_report();
  ASSERT_TRUE(write_report_file(r, path));
  const auto back = read_report_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
  // No leftover temp file (the write renamed it into place).
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(read_report_file(dir + "/absent.bin").has_value());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mmrfd::live
