// Live-cluster integration: a supervisor-managed cluster of REAL mmrfd-node
// processes over loopback UDP, with SIGKILL crash injection.
//
// These tests fork/exec the mmrfd-node binary (discovered next to this test
// binary in the build tree, or via $MMRFD_NODE_BIN) — they are the proof
// that the simulator-verified protocol, the delta codec and the need_full
// resync work over a kernel network stack with real process crashes.
// Registered RUN_SERIAL with generous deadlines: wall-clock pacing on a
// loaded CI machine is jittery, and the assertions below only depend on
// eventual convergence, never on tight timing.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "live/supervisor.h"

namespace mmrfd::live {
namespace {

std::string fresh_report_dir(const std::string& tag) {
  return "live_cluster_test." + tag + "." + std::to_string(::getpid());
}

/// Extracts the {"name":value,...} object after `"c":` in one telemetry
/// line. Tiny hand-rolled parser: the emitter writes plain [a-z._] names and
/// decimal values, nothing else.
std::map<std::string, std::uint64_t> parse_counters(const std::string& line) {
  std::map<std::string, std::uint64_t> out;
  const auto c_at = line.find("\"c\":{");
  if (c_at == std::string::npos) return out;
  std::size_t pos = c_at + 5;
  while (pos < line.size() && line[pos] != '}') {
    const auto name_start = line.find('"', pos);
    if (name_start == std::string::npos) break;
    const auto name_end = line.find('"', name_start + 1);
    if (name_end == std::string::npos) break;
    const auto colon = line.find(':', name_end);
    if (colon == std::string::npos) break;
    std::size_t value_end = colon + 1;
    while (value_end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[value_end]))) {
      ++value_end;
    }
    out[line.substr(name_start + 1, name_end - name_start - 1)] =
        std::stoull(line.substr(colon + 1, value_end - colon - 1));
    pos = value_end;
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  return out;
}

const NodeReport* final_report(const LiveRunResult& result, std::uint32_t id) {
  for (const LiveNodeOutcome& node : result.nodes) {
    if (node.id.value == id) {
      return node.reports.empty() ? nullptr : &node.reports.back();
    }
  }
  return nullptr;
}

TEST(LiveCluster, KillOneNodeAllSurvivorsConverge) {
  constexpr std::uint32_t kN = 8;
  constexpr std::uint32_t kVictim = 5;
  SupervisorConfig cfg;
  cfg.n = kN;
  cfg.f = 2;
  cfg.base_port = 46000;
  cfg.pacing = from_millis(50);
  cfg.flush = from_millis(100);
  cfg.delta = true;
  cfg.report_dir = fresh_report_dir("kill");

  Supervisor supervisor(cfg);
  // Two seconds of steady state before the kill (slow-starting nodes on a
  // loaded machine must be in the round-trotting regime first), five after
  // (dozens of 50 ms rounds — detection needs one).
  const std::vector<CrashEvent> schedule = {
      {ProcessId{kVictim}, from_seconds(2.0), std::nullopt}};
  const LiveRunResult result = supervisor.run(schedule, from_seconds(7));

  // Clean orchestration: one planned kill, nothing else died, and every
  // graceful node flushed a readable report.
  ASSERT_EQ(result.crashes.size(), 1u);
  EXPECT_EQ(result.crashes[0].victim, ProcessId{kVictim});
  EXPECT_EQ(result.unexpected_exits, 0u);
  EXPECT_EQ(result.missing_reports, 0u);

  // Convergence: all 7 survivors permanently suspected the victim, with a
  // positive wall-clock latency (strong completeness over real sockets).
  EXPECT_TRUE(result.strong_completeness);
  ASSERT_EQ(result.detection_latencies.count(), kN - 1);
  EXPECT_GT(result.detection_latencies.min(), 0.0);
  EXPECT_LT(result.detection_latencies.max(), 7.0);

  // Per-survivor reports: the victim is in the final suspected set, the
  // delta wire path actually ran, and the kernel path was clean.
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (i == kVictim) continue;
    const NodeReport* r = final_report(result, i);
    ASSERT_NE(r, nullptr) << "survivor " << i << " has no report";
    EXPECT_NE(std::find(r->suspected.begin(), r->suspected.end(), kVictim),
              r->suspected.end())
        << "survivor " << i << " does not suspect the victim";
    EXPECT_GT(r->rounds, 0u);
    EXPECT_EQ(r->truncated, 0u);
    EXPECT_EQ(r->malformed, 0u);
  }
  EXPECT_GT(result.delta_queries_sent, 0u);
  EXPECT_GT(result.bytes_per_query(), 0.0);
  EXPECT_GT(result.rounds, 0u);

  std::filesystem::remove_all(cfg.report_dir);
}

TEST(LiveCluster, RestartedNodeResyncsViaNeedFull) {
  // Two kills: the first (permanent) churns every survivor's state so their
  // per-peer watermarks move off epoch 0; the second victim is restarted
  // with fresh state, so the survivors' delta queries name a base epoch the
  // new process never acknowledged — the need_full resync must fire over
  // real sockets, after which the survivors clear the restarted node.
  constexpr std::uint32_t kN = 6;
  constexpr std::uint32_t kDeadVictim = 4;
  constexpr std::uint32_t kRestartVictim = 5;
  SupervisorConfig cfg;
  cfg.n = kN;
  cfg.f = 2;
  cfg.base_port = 46500;
  cfg.pacing = from_millis(50);
  cfg.flush = from_millis(100);
  cfg.delta = true;
  cfg.report_dir = fresh_report_dir("restart");

  Supervisor supervisor(cfg);
  const std::vector<CrashEvent> schedule = {
      {ProcessId{kDeadVictim}, from_seconds(1.5), std::nullopt},
      {ProcessId{kRestartVictim}, from_seconds(3.0), from_seconds(4.5)},
  };
  const LiveRunResult result = supervisor.run(schedule, from_seconds(10));

  ASSERT_EQ(result.crashes.size(), 2u);
  EXPECT_EQ(result.unexpected_exits, 0u);
  const auto restarted =
      std::find_if(result.crashes.begin(), result.crashes.end(),
                   [](const LiveCrash& c) { return c.restarted; });
  ASSERT_NE(restarted, result.crashes.end());
  EXPECT_EQ(restarted->victim, ProcessId{kRestartVictim});

  // The resync actually happened: some survivor received a need_full ack
  // (and the restarted incarnation sent one).
  EXPECT_GT(result.need_full_received, 0u);
  EXPECT_GT(result.need_full_sent, 0u);

  // After the resync the cluster re-converges: every survivor's final
  // suspected set contains the dead victim but NOT the restarted one, and
  // the restarted incarnation itself is live, round-making and suspects the
  // dead victim too.
  for (const std::uint32_t i : {0u, 1u, 2u, 3u}) {
    const NodeReport* r = final_report(result, i);
    ASSERT_NE(r, nullptr);
    EXPECT_NE(
        std::find(r->suspected.begin(), r->suspected.end(), kDeadVictim),
        r->suspected.end())
        << "survivor " << i << " does not suspect the dead victim";
    EXPECT_EQ(
        std::find(r->suspected.begin(), r->suspected.end(), kRestartVictim),
        r->suspected.end())
        << "survivor " << i << " still suspects the restarted node";
  }
  const NodeReport* rr = final_report(result, kRestartVictim);
  ASSERT_NE(rr, nullptr);
  EXPECT_GT(rr->rounds, 0u);
  EXPECT_NE(
      std::find(rr->suspected.begin(), rr->suspected.end(), kDeadVictim),
      rr->suspected.end());

  std::filesystem::remove_all(cfg.report_dir);
}

TEST(LiveCluster, CorruptedDatagramsAreRejectedNotFatal) {
  // Adversarial channel on the real kernel path: every node's outgoing
  // datagrams are randomly truncated or bit-flipped before the sendto().
  // Damaged datagrams must die in the codec (malformed counter), never in
  // the process (no unexpected exits, no sanitizer trips under the CI
  // ASan/UBSan job), and the detector must still converge — the damaged
  // queries are equivalent to loss, which the resend path absorbs.
  constexpr std::uint32_t kN = 6;
  constexpr std::uint32_t kVictim = 3;
  SupervisorConfig cfg;
  cfg.n = kN;
  cfg.f = 2;
  cfg.base_port = 47000;
  cfg.pacing = from_millis(50);
  cfg.flush = from_millis(100);
  cfg.delta = true;
  cfg.fault_truncate = 0.03;
  cfg.fault_corrupt = 0.01;
  cfg.fault_seed = 2026;
  cfg.report_dir = fresh_report_dir("corrupt");

  Supervisor supervisor(cfg);
  const std::vector<CrashEvent> schedule = {
      {ProcessId{kVictim}, from_seconds(2.0), std::nullopt}};
  const LiveRunResult result = supervisor.run(schedule, from_seconds(8));

  // No crash: the only dead process is the planned SIGKILL victim.
  ASSERT_EQ(result.crashes.size(), 1u);
  EXPECT_EQ(result.unexpected_exits, 0u);
  EXPECT_EQ(result.missing_reports, 0u);

  // Damaged datagrams actually reached the decoders and were rejected.
  EXPECT_GT(result.malformed, 0u);

  // Properties hold through the noise: every survivor converged on the
  // victim and kept making rounds.
  EXPECT_TRUE(result.strong_completeness);
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (i == kVictim) continue;
    const NodeReport* r = final_report(result, i);
    ASSERT_NE(r, nullptr) << "survivor " << i << " has no report";
    EXPECT_GT(r->rounds, 0u);
    EXPECT_NE(std::find(r->suspected.begin(), r->suspected.end(), kVictim),
              r->suspected.end())
        << "survivor " << i << " does not suspect the victim";
  }

  std::filesystem::remove_all(cfg.report_dir);
}

TEST(LiveCluster, GiveupPolicyCutsFullQueriesAtScale) {
  // The give-up policy's reason to exist: at n=64 with several dead peers,
  // every query to a dead peer degrades to the full-encoding fallback —
  // their journal ack stops advancing while the survivors' journals keep
  // churning, so the stale ack falls out of the replay window — and every
  // resend interval used to re-send them another full query on top. The
  // drop rate below supplies that churn (a perfectly quiet cluster freezes
  // its journal after the kill and keeps covering the victims' last ack,
  // which no real deployment does). Two identical runs — give-up on vs
  // off — must show a large drop in full_queries_sent, with strong
  // completeness intact on the policy run (the 1/K probe keeps eventual
  // accuracy, the cap keeps quorum reachable).
  constexpr std::uint32_t kN = 64;
  const std::vector<CrashEvent> schedule = {
      {ProcessId{58}, from_seconds(2.0), std::nullopt},
      {ProcessId{59}, from_seconds(2.0), std::nullopt},
      {ProcessId{60}, from_seconds(2.0), std::nullopt},
      {ProcessId{61}, from_seconds(2.2), std::nullopt},
      {ProcessId{62}, from_seconds(2.2), std::nullopt},
      {ProcessId{63}, from_seconds(2.2), std::nullopt},
  };
  const auto run_once = [&](std::uint32_t giveup, std::uint16_t base_port,
                            const std::string& tag) {
    SupervisorConfig cfg;
    cfg.n = kN;
    cfg.f = 8;
    cfg.base_port = base_port;
    cfg.pacing = from_millis(50);
    cfg.resend = from_millis(100);  // recover lost responses quickly
    cfg.flush = from_millis(250);
    cfg.delta = true;
    cfg.giveup_rounds = giveup;
    // Low enough that quorum is usually reached without a resend wave
    // (waves full-refresh silent LIVE peers identically in both runs and
    // would drown the dead-peer signal), high enough for steady journal
    // churn that pushes the victims' stale acks out of the replay window.
    cfg.fault_drop = 0.01;
    cfg.fault_seed = 404;
    cfg.report_dir = fresh_report_dir(tag);
    Supervisor supervisor(cfg);
    const LiveRunResult result = supervisor.run(schedule, from_seconds(9));
    std::filesystem::remove_all(cfg.report_dir);
    return result;
  };

  const LiveRunResult with_policy = run_once(8, 48000, "giveup_on");
  const LiveRunResult without_policy = run_once(0, 48100, "giveup_off");

  ASSERT_EQ(with_policy.crashes.size(), 6u);
  EXPECT_EQ(with_policy.unexpected_exits, 0u);
  EXPECT_TRUE(with_policy.strong_completeness);

  ASSERT_EQ(without_policy.crashes.size(), 6u);
  EXPECT_EQ(without_policy.unexpected_exits, 0u);

  // The headline: skipping settled-dead peers (and not resending to them)
  // must cut the full-query volume hard. The 2/3 bound is deliberately
  // loose — the true ratio is closer to 1/4 (7/8 of dead-peer queries
  // skipped plus all their resends) — so CI jitter in round counts cannot
  // flake it.
  EXPECT_GT(without_policy.full_queries_sent, 0u);
  EXPECT_LT(with_policy.full_queries_sent,
            without_policy.full_queries_sent * 2 / 3)
      << "give-up on: " << with_policy.full_queries_sent
      << " give-up off: " << without_policy.full_queries_sent;
}

TEST(LiveCluster, TelemetrySeriesSumsToRollup) {
  // The observability acceptance check: the supervisor's telemetry.jsonl
  // time series must be internally consistent — the end-of-run rollup line
  // is EXACTLY the per-counter sum of the per-node final lines, and the
  // in-memory LiveRunResult.metrics is the same merge of the harvested
  // report snapshots. Reliable framing is on so the wire-byte counters
  // exercise the 13-byte-header + ack accounting path too.
  constexpr std::uint32_t kN = 5;
  SupervisorConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  cfg.base_port = 48300;
  cfg.pacing = from_millis(50);
  cfg.flush = from_millis(100);
  cfg.telemetry = from_millis(250);
  cfg.delta = true;
  cfg.reliable = true;
  cfg.report_dir = fresh_report_dir("telemetry");

  Supervisor supervisor(cfg);
  const LiveRunResult result = supervisor.run({}, from_seconds(4));
  EXPECT_EQ(result.unexpected_exits, 0u);
  EXPECT_EQ(result.missing_reports, 0u);

  // In-memory consistency: the result's merged registry equals re-merging
  // every harvested report's snapshot, and the headline counters moved.
  obs::RegistrySnapshot remerged;
  for (const LiveNodeOutcome& node : result.nodes) {
    for (const NodeReport& r : node.reports) remerged.merge(r.metrics);
  }
  EXPECT_EQ(result.metrics, remerged);
  EXPECT_GT(result.metrics.counter_value("rt.rounds"), 0u);
  EXPECT_EQ(result.metrics.counter_value("rt.rounds"), result.rounds);
  ASSERT_NE(result.metrics.find_histogram("rt.round_rtt_ns"), nullptr);
  EXPECT_GT(result.metrics.find_histogram("rt.round_rtt_ns")->count, 0u);

  // Wire accounting: socket-level egress strictly exceeds the codec's
  // protocol-payload byte count (13-byte reliability headers + acks).
  EXPECT_GT(result.datagrams_sent, 0u);
  EXPECT_GT(result.wire_bytes_sent,
            result.query_bytes_sent + result.response_bytes_sent);
  EXPECT_GT(result.wire_bytes_per_query(), result.bytes_per_query());

  // File-side consistency: sum the final lines, compare to the rollup.
  std::ifstream is(cfg.report_dir + "/telemetry.jsonl");
  ASSERT_TRUE(is.good()) << "telemetry.jsonl was not written";
  std::map<std::string, std::uint64_t> final_sum;
  std::map<std::string, std::uint64_t> rollup;
  std::size_t final_lines = 0;
  std::size_t series_lines = 0;
  bool saw_rollup = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"rollup\":true") != std::string::npos) {
      rollup = parse_counters(line);
      saw_rollup = true;
    } else if (line.find("\"final\":true") != std::string::npos) {
      ++final_lines;
      for (const auto& [name, value] : parse_counters(line)) {
        final_sum[name] += value;
      }
    } else {
      ++series_lines;
    }
  }
  ASSERT_TRUE(saw_rollup);
  EXPECT_EQ(final_lines, kN);  // no crashes: one final line per node
  EXPECT_GT(series_lines, 0u);  // periodic sampling actually ran
  EXPECT_EQ(final_sum, rollup);
  EXPECT_EQ(rollup["rt.rounds"], result.rounds);

  std::filesystem::remove_all(cfg.report_dir);
}

TEST(LiveCluster, Sigusr1DumpsFlightRecorder) {
  // SIGUSR1 must make a running node dump its flight-recorder ring next to
  // its report file without disturbing the process. One node with n=2, f=1
  // suffices: quorum is n - f = 1, so the node's own response closes every
  // round and the recorder fills with round/query traffic even though the
  // peer never exists.
  const std::string dir = fresh_report_dir("sigusr1");
  std::filesystem::create_directories(dir);
  const std::string report = dir + "/node0.g0.bin";
  const std::string binary = default_node_binary();

  const std::vector<std::string> arg_strings = {
      binary,          "--self=0",        "--n=2",
      "--f=1",         "--base-port=48400", "--pacing-ms=20",
      "--flush-ms=50", "--report=" + report};
  std::vector<char*> argv;
  argv.reserve(arg_strings.size() + 1);
  for (const std::string& s : arg_strings) {
    argv.push_back(const_cast<char*>(s.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed
  }

  // Let it make rounds, then ask for the dump and poll for the file (the
  // node checks the signal flag on its 20 ms housekeeping tick).
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  ASSERT_EQ(::kill(pid, SIGUSR1), 0);
  const std::string trace_path = report + ".trace";
  for (int i = 0; i < 100 && !std::filesystem::exists(trace_path); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  ::kill(pid, SIGTERM);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "node did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  ASSERT_TRUE(std::filesystem::exists(trace_path));
  std::ifstream is(trace_path);
  std::size_t lines = 0;
  bool saw_round_open = false;
  std::string line;
  while (std::getline(is, line)) {
    ++lines;
    // Every line is "<t_ns> #<seq> <kind> a=<u32> b=<u32>".
    ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(line.front())))
        << "bad trace line: " << line;
    EXPECT_NE(line.find(" #"), std::string::npos) << line;
    EXPECT_NE(line.find(" a="), std::string::npos) << line;
    EXPECT_NE(line.find(" b="), std::string::npos) << line;
    if (line.find(" round_open ") != std::string::npos) saw_round_open = true;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(saw_round_open);

  std::filesystem::remove_all(dir);
}

TEST(LiveCluster, FatalSignalDumpsBinaryTrace) {
  // An abnormally-dying node must leave a loadable post-mortem of its
  // flight ring: the SIGABRT handler writes the binary dump with only
  // async-signal-safe calls before re-raising. SIGABRT (not SIGKILL —
  // nothing can handle that) stands in for any fatal fault.
  const std::string dir = fresh_report_dir("fatal");
  std::filesystem::create_directories(dir);
  const std::string report = dir + "/node0.g0.bin";
  const std::string binary = default_node_binary();

  const std::vector<std::string> arg_strings = {
      binary,          "--self=0",          "--n=2",
      "--f=1",         "--base-port=48500", "--pacing-ms=20",
      "--flush-ms=50", "--report=" + report};
  std::vector<char*> argv;
  argv.reserve(arg_strings.size() + 1);
  for (const std::string& s : arg_strings) {
    argv.push_back(const_cast<char*>(s.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  ASSERT_EQ(::kill(pid, SIGABRT), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "node exited instead of dying";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string crash_trace = report + ".crash.trace";
  ASSERT_TRUE(std::filesystem::exists(crash_trace));
  const auto records = obs::load_trace_records(crash_trace);
  ASSERT_TRUE(records.has_value()) << "unloadable crash dump";
  EXPECT_GT(records->size(), 0u);
  bool saw_round_open = false;
  for (const obs::TraceRecord& r : *records) {
    const auto kind = static_cast<std::uint8_t>(r.kind);
    EXPECT_GE(kind, 1);
    EXPECT_LE(kind, obs::kMaxTraceKind);
    if (r.kind == obs::TraceKind::kRoundOpen) saw_round_open = true;
  }
  EXPECT_TRUE(saw_round_open);

  std::filesystem::remove_all(dir);
}

TEST(LiveCluster, SupervisorHarvestsAndAssemblesTraces) {
  // End-to-end tracing over real processes: the supervisor SIGUSR1s every
  // surviving node before SIGTERM, writes the manifest, and assembles the
  // cluster-wide timeline — whose per-observer latency attribution must
  // sum exactly even on wall clocks with estimated skew.
  SupervisorConfig cfg;
  cfg.n = 6;
  cfg.f = 2;
  cfg.base_port = 48600;
  cfg.pacing = from_millis(50);
  cfg.flush = from_millis(100);
  cfg.trace = true;
  cfg.report_dir = fresh_report_dir("traceharvest");

  // Satellite regression: a stale dump from a "previous run" in the same
  // directory must be removed at spawn, never stitched into this run. The
  // victim dies by SIGKILL (no crash dump) and node 0 exits gracefully (no
  // crash dump either), so if this file survives to the end, spawn() leaked
  // it.
  std::filesystem::create_directories(cfg.report_dir);
  const std::string stale = cfg.report_dir + "/node0.g0.bin.crash.trace";
  { std::ofstream os(stale); os << "stale garbage\n"; }

  Supervisor supervisor(cfg);
  const std::vector<CrashEvent> schedule = {
      {ProcessId{5}, from_seconds(2), std::nullopt}};
  const LiveRunResult result = supervisor.run(schedule, from_seconds(6));

  EXPECT_FALSE(std::filesystem::exists(stale))
      << "stale crash dump survived spawn";
  EXPECT_TRUE(std::filesystem::exists(cfg.report_dir + "/" +
                                      std::string(obs::kTraceManifestName)));
  EXPECT_TRUE(
      std::filesystem::exists(cfg.report_dir + "/trace_assembled.json"));

  ASSERT_TRUE(result.trace.has_value());
  EXPECT_GT(result.trace->records, 0u);
  EXPECT_GT(result.trace->matched_pairs, 0u);
  ASSERT_EQ(result.trace->crashes.size(), 1u);
  const obs::CrashTimeline& ct = result.trace->crashes[0];
  EXPECT_EQ(ct.victim, 5u);
  EXPECT_GT(ct.observers.size(), 0u);
  EXPECT_EQ(ct.observers.size() + ct.undetected, cfg.n - 1);
  for (const obs::ObserverBreakdown& ob : ct.observers) {
    EXPECT_EQ(ob.pacing_ns + ob.resend_wait_ns + ob.wire_ns, ob.latency_ns)
        << "observer " << ob.observer;
  }
  if (ct.undetected == 0) {
    EXPECT_TRUE(ct.stable_ns.has_value());
  }
  // Every surviving node answered the SIGUSR1 harvest with a dump.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(std::filesystem::exists(cfg.report_dir + "/node" +
                                        std::to_string(i) + ".g0.bin.trace"))
        << "node " << i;
  }

  std::filesystem::remove_all(cfg.report_dir);
}

}  // namespace
}  // namespace mmrfd::live
