// Sharded multi-core discrete-event engine.
//
// Partitions a simulation across S worker threads, each owning a private
// `Simulation` (its own event heap, slab and clock), synchronized by
// conservative time windows:
//
//   * Every cross-shard interaction must be posted with a delivery timestamp
//     at least `window` after the moment it is produced (the caller derives
//     `window` from its delay model's min_delay() bound).
//   * The engine runs all shards in lockstep windows (T_k, T_{k+1}] with
//     T_{k+1} - T_k <= window, so an interaction produced inside a window
//     can only be due strictly after the window ends — shards never need to
//     see each other's state mid-window.
//   * Cross-shard posts accumulate in per-(src, dst) exchange queues during
//     the run phase and are drained into the destination heaps at the
//     window boundary. The queues need no locks or atomics: each queue is
//     written only by its source thread during the run phase and read only
//     by its destination thread during the drain phase, and the two phases
//     are separated by a barrier.
//
// Windows are adaptive: the next boundary is `earliest pending event +
// window`, so a globally idle stretch costs one window, not
// idle-time / window barrier rounds.
//
// Determinism: for a fixed schedule of inputs the engine is deterministic
// regardless of thread interleaving — each shard's execution is sequential,
// and the drain order (source shards in index order, queue entries in post
// order) fixes the (time, seq) order every exchanged event gets in its
// destination heap. It is NOT bit-identical to the single-threaded
// `Simulation` running the same model: the serial engine stays the semantic
// reference, and tests/sim/engine_equivalence_test.cc checks the two agree
// at the protocol level.
//
// Causality is enforced, not assumed: a drained event whose timestamp lies
// before its destination shard's clock (i.e. a producer that violated the
// min-delay contract) makes run_until() throw instead of silently
// reordering history.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/simulation.h"

namespace mmrfd::sim {

class ShardedEngine {
 public:
  /// `shards` >= 1 worker shards; `window` must be a positive lower bound on
  /// every cross-shard delivery latency (see DelayModel::min_delay()).
  ShardedEngine(std::uint32_t shards, Duration window);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();  // out of line: BarrierState is incomplete here

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(sims_.size());
  }
  [[nodiscard]] Duration window() const { return window_; }

  /// The shard-local simulation (schedule initial events directly on it).
  [[nodiscard]] Simulation& shard(std::uint32_t s) { return sims_[s]; }
  [[nodiscard]] const Simulation& shard(std::uint32_t s) const {
    return sims_[s];
  }

  /// Global virtual time: the window edge every shard has reached. Only
  /// meaningful between run_until() calls.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Hands an event to shard `dst` for execution at absolute time `when`.
  /// Must be called either from `src`'s worker thread while it is running a
  /// window, or from the driving thread while the engine is idle; `when`
  /// must be at least window() after the producing moment (the min-delay
  /// contract) — violations surface as a run_until() error at the next
  /// drain. Same-shard work must go through shard(src).schedule_at()
  /// directly (it has no minimum latency).
  template <typename F>
  void post(std::uint32_t src, std::uint32_t dst, TimePoint when, F&& fn) {
    assert(src < sims_.size() && dst < sims_.size());
    assert(src != dst);
    ExchangeQueue& q = queues_[src * sims_.size() + dst];
    q.items.push_back(Posted{when, detail::Callable(std::forward<F>(fn))});
    ++q.posted;
  }

  /// Runs every shard to `deadline` (finite; the engine has no run_all()),
  /// spawning one worker thread per shard and blocking until they join.
  /// Callable repeatedly; pending events and clocks persist across calls.
  /// Throws std::runtime_error on a causality violation or an exception
  /// escaping a shard's event callback.
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Sum of events fired across all shards.
  [[nodiscard]] std::uint64_t events_fired() const;
  /// Number of synchronization windows executed so far.
  [[nodiscard]] std::uint64_t windows_run() const { return windows_run_; }
  /// Number of events exchanged across shards so far.
  [[nodiscard]] std::uint64_t cross_shard_posts() const;

 private:
  struct Posted {
    TimePoint when{kTimeZero};
    detail::Callable fn;
  };
  /// One direction of one (src, dst) shard pair. Phase-separated: written
  /// by src's thread in the run phase, drained by dst's thread in the drain
  /// phase, never touched concurrently.
  struct ExchangeQueue {
    std::vector<Posted> items;
    std::uint64_t posted{0};
  };

  void worker(std::uint32_t s);
  void drain_into(std::uint32_t dst);
  /// Leader-only (runs under the barrier mutex with every worker parked):
  /// picks the next window target or flags completion.
  void advance_window();
  void barrier_wait(bool leader_advances);
  void record_error(std::string message);
  /// Throws std::runtime_error joining all recorded errors (no-op if none).
  void throw_errors();

  const Duration window_;
  std::vector<Simulation> sims_;
  std::vector<ExchangeQueue> queues_;  // [src * shards + dst]

  TimePoint now_{kTimeZero};
  std::uint64_t windows_run_{0};

  // Window-loop state. target_/done_ are written only by the barrier
  // leader while every other worker is parked inside the barrier; the
  // barrier's mutex hand-off publishes them.
  TimePoint deadline_{kTimeZero};
  TimePoint target_{kTimeZero};
  bool done_{false};
  std::atomic<bool> abort_{false};

  // Mutex+condvar barrier (sense via phase counter). Deliberately not
  // std::barrier: the leader step must run under the same lock that parks
  // the other workers, and mutex/condvar synchronization is visible to
  // ThreadSanitizer without special-casing.
  struct BarrierState;
  std::unique_ptr<BarrierState> bar_;

  std::mutex errors_mu_;
  std::vector<std::string> errors_;
};

}  // namespace mmrfd::sim
