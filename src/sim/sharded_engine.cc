#include "sim/sharded_engine.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace mmrfd::sim {

struct ShardedEngine::BarrierState {
  std::mutex mu;
  std::condition_variable cv;
  std::uint32_t arrived{0};
  std::uint64_t phase{0};
};

ShardedEngine::ShardedEngine(std::uint32_t shards, Duration window)
    : window_(window),
      sims_(shards),
      queues_(static_cast<std::size_t>(shards) * shards),
      bar_(std::make_unique<BarrierState>()) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  }
  if (window <= Duration::zero()) {
    throw std::invalid_argument(
        "ShardedEngine: window must be > 0 (a zero min-delay bound cannot "
        "order cross-shard deliveries conservatively)");
  }
}

ShardedEngine::~ShardedEngine() = default;

std::uint64_t ShardedEngine::events_fired() const {
  std::uint64_t total = 0;
  for (const Simulation& s : sims_) total += s.events_fired();
  return total;
}

std::uint64_t ShardedEngine::cross_shard_posts() const {
  std::uint64_t total = 0;
  for (const ExchangeQueue& q : queues_) total += q.posted;
  return total;
}

void ShardedEngine::record_error(std::string message) {
  const std::lock_guard<std::mutex> lk(errors_mu_);
  errors_.push_back(std::move(message));
}

void ShardedEngine::advance_window() {
  if (abort_.load(std::memory_order_relaxed) || target_ >= deadline_) {
    done_ = true;
    return;
  }
  ++windows_run_;
  // Adaptive boundary: nothing anywhere can fire before the earliest
  // pending event m, so any cross-shard effect of this window is due at
  // m + window at the soonest — run straight to there.
  TimePoint earliest = kTimeMax;
  for (Simulation& s : sims_) {
    earliest = std::min(earliest, s.next_event_time());
  }
  if (earliest >= deadline_ || earliest == kTimeMax ||
      deadline_ - earliest <= window_) {
    target_ = deadline_;
    return;
  }
  target_ = earliest + window_;
}

void ShardedEngine::barrier_wait(bool leader_advances) {
  std::unique_lock<std::mutex> lk(bar_->mu);
  const std::uint64_t phase = bar_->phase;
  if (++bar_->arrived == sims_.size()) {
    // Leader step: every other worker is parked on the condvar, so the
    // advance runs with exclusive access to all engine state.
    if (leader_advances) advance_window();
    bar_->arrived = 0;
    ++bar_->phase;
    bar_->cv.notify_all();
  } else {
    bar_->cv.wait(lk, [&] { return bar_->phase != phase; });
  }
}

void ShardedEngine::drain_into(std::uint32_t dst) {
  Simulation& sim = sims_[dst];
  const std::size_t shards = sims_.size();
  for (std::size_t src = 0; src < shards; ++src) {
    ExchangeQueue& q = queues_[src * shards + dst];
    for (Posted& p : q.items) {
      if (p.when < sim.now()) {
        // The producer broke the min-delay contract: the destination's
        // clock is already past the delivery time. Surfacing a hard error
        // beats silently firing the event late (which would reorder
        // history relative to the serial reference).
        std::ostringstream os;
        os << "ShardedEngine: causality violation — shard " << src
           << " posted an event for t=" << p.when.count()
           << "ns to shard " << dst << " whose clock is already at "
           << sim.now().count()
           << "ns (delay model min_delay() bound not honoured?)";
        record_error(os.str());
        abort_.store(true, std::memory_order_relaxed);
        continue;
      }
      sim.schedule_at(p.when, std::move(p.fn));
    }
    q.items.clear();  // keeps capacity: steady-state drains are allocation-free
  }
}

void ShardedEngine::worker(std::uint32_t s) {
  while (true) {
    if (!abort_.load(std::memory_order_relaxed)) {
      try {
        sims_[s].run_until(target_);
      } catch (const std::exception& e) {
        record_error("ShardedEngine: shard " + std::to_string(s) +
                     " callback threw: " + e.what());
        abort_.store(true, std::memory_order_relaxed);
      } catch (...) {
        record_error("ShardedEngine: shard " + std::to_string(s) +
                     " callback threw a non-exception");
        abort_.store(true, std::memory_order_relaxed);
      }
    }
    barrier_wait(/*leader_advances=*/false);  // all run-phase posts published
    drain_into(s);
    barrier_wait(/*leader_advances=*/true);   // all drains done; new target
    if (done_) break;
  }
}

void ShardedEngine::run_until(TimePoint deadline) {
  if (deadline <= now_) return;
  if (deadline == kTimeMax) {
    throw std::invalid_argument(
        "ShardedEngine: run_until(kTimeMax) is not supported — windows need "
        "a finite deadline");
  }
  deadline_ = deadline;
  target_ = now_;
  done_ = false;
  abort_.store(false, std::memory_order_relaxed);
  // Posts made from the driving thread while the engine was idle are still
  // sitting in the exchange queues; land them now so the first window's
  // sizing (and every shard's heap) sees them.
  for (std::uint32_t s = 0; s < sims_.size(); ++s) drain_into(s);
  throw_errors();
  advance_window();  // first window (also handles "no pending events")

  if (sims_.size() == 1) {
    // Degenerate single-shard engine: no threads, no windows beyond the
    // first — semantically identical to the serial Simulation.
    sims_[0].run_until(deadline);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(sims_.size());
    for (std::uint32_t s = 0; s < sims_.size(); ++s) {
      threads.emplace_back([this, s] { worker(s); });
    }
    for (std::thread& t : threads) t.join();
  }

  throw_errors();
  now_ = deadline;
}

void ShardedEngine::throw_errors() {
  if (errors_.empty()) return;
  std::string joined = errors_.front();
  for (std::size_t i = 1; i < errors_.size(); ++i) {
    joined += "; " + errors_[i];
  }
  errors_.clear();
  throw std::runtime_error(joined);
}

}  // namespace mmrfd::sim
