#include "sim/simulation.h"

namespace mmrfd::sim {

std::uint32_t Simulation::acquire_slot() {
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = nodes_[slot].next_free;
    nodes_[slot].next_free = kNilSlot;
  } else {
    slot = static_cast<std::uint32_t>(nodes_.size());
    assert(slot != kNilSlot);
    nodes_.emplace_back();
  }
  ++live_;
  return slot;
}

void Simulation::release_slot(std::uint32_t slot) {
  Node& node = nodes_[slot];
  ++node.generation;  // invalidates every outstanding id/heap entry
  node.fn.reset();
  node.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

bool Simulation::cancel(EventId id) {
  if (id == kNoEvent) return false;
  const auto slot_plus_one = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (slot_plus_one == 0 || slot_plus_one > nodes_.size()) return false;
  const std::uint32_t slot = slot_plus_one - 1;
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (nodes_[slot].generation != generation) {
    return false;  // already fired, already cancelled, or recycled
  }
  // The heap entry stays behind (lazy removal); popping recognises it as
  // stale by its generation and skips it without touching the node.
  release_slot(slot);
  return true;
}

TimePoint Simulation::next_event_time() {
  while (!heap_.empty() &&
         nodes_[heap_.top().slot].generation != heap_.top().generation) {
    heap_.pop();  // cancelled event's residue
  }
  return heap_.empty() ? kTimeMax : heap_.top().when;
}

void Simulation::run_until(TimePoint deadline) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    const HeapEntry top = heap_.top();
    if (nodes_[top.slot].generation != top.generation) {
      heap_.pop();  // cancelled event's residue
      continue;
    }
    if (top.when > deadline) break;
    heap_.pop();
    // Move the callable out and recycle the slot *before* invoking, so the
    // callback can schedule (and even cancel) freely; its own id is already
    // stale by the time it runs.
    detail::Callable fn = std::move(nodes_[top.slot].fn);
    release_slot(top.slot);
    now_ = top.when;
    ++events_fired_;
    fn();
  }
  // Advance idle time to the deadline so run_for() composes, but never jump
  // to the run_all() sentinel.
  if (deadline != kTimeMax && now_ < deadline && !stop_requested_) {
    now_ = deadline;
  }
}

void Simulation::run_all() { run_until(kTimeMax); }

}  // namespace mmrfd::sim
