#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace mmrfd::sim {

EventId Simulation::schedule(Duration delay, std::function<void()> fn) {
  assert(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

bool Simulation::cancel(EventId id) {
  if (id == kNoEvent || id >= next_id_) return false;
  // Lazy cancellation: record the id; the pop loop skips it.
  return cancelled_.insert(id).second;
}

void Simulation::run_until(TimePoint deadline) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.when > deadline) break;
    // Moving out of a priority_queue requires const_cast; the element is
    // popped immediately after, so no ordering invariant is violated.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++events_fired_;
    ev.fn();
  }
  // Advance idle time to the deadline so run_for() composes, but never jump
  // to the run_all() sentinel.
  if (deadline != kTimeMax && now_ < deadline && !stop_requested_) {
    now_ = deadline;
  }
}

void Simulation::run_all() { run_until(kTimeMax); }

}  // namespace mmrfd::sim
