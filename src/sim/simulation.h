// Deterministic discrete-event simulator.
//
// This is the substrate the paper's evaluation ran on (the authors used a
// discrete event simulator); we implement our own so the whole repository is
// self-contained. Design goals:
//   * Determinism: events with equal timestamps fire in scheduling order
//     (stable (time, seq) heap ordering), all randomness flows through
//     seeded Xoshiro streams, so a run is a pure function of its seed.
//   * Cancelability: schedule() returns an EventId which can be cancelled
//     (lazily — cancelled events stay in the heap but are skipped), which is
//     how baseline detectors implement resettable timeouts.
//   * Virtual time: 64-bit nanoseconds; callbacks observe now() and may
//     schedule further events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace mmrfd::sim {

using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0). Returns an id
  /// usable with cancel().
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute virtual time (>= now()).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// Runs until the event queue is empty or `deadline` is reached, whichever
  /// comes first. Time advances to the deadline if events run dry earlier?
  /// No — time stops at the last fired event; the deadline only bounds it.
  void run_until(TimePoint deadline);

  /// Runs for `d` of virtual time from now().
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until the queue is empty (use with care: periodic tasks never
  /// drain the queue).
  void run_all();

  /// Requests the current run_*() call to return after the current event.
  void stop() { stop_requested_ = true; }

  /// Number of events fired so far (diagnostics/benchmarks).
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// Number of events currently pending (including lazily-cancelled ones).
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // stable FIFO among equal timestamps
    }
  };

  TimePoint now_{kTimeZero};
  EventId next_id_{1};
  std::uint64_t events_fired_{0};
  bool stop_requested_{false};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace mmrfd::sim
