// Deterministic discrete-event simulator.
//
// This is the substrate the paper's evaluation ran on (the authors used a
// discrete event simulator); we implement our own so the whole repository is
// self-contained. Design goals:
//   * Determinism: events with equal timestamps fire in scheduling order
//     (stable (time, seq) heap ordering), all randomness flows through
//     seeded Xoshiro streams, so a run is a pure function of its seed.
//   * Cancelability: schedule() returns a generation-checked EventId which
//     can be cancelled; cancelling a fired/cancelled/unknown id is a false
//     no-op.
//   * Allocation-free steady state: event nodes live in a slab and are
//     recycled through a free list; callables up to kCallableInlineSize
//     bytes are stored inline (small-buffer optimisation), so the
//     schedule/fire/cancel cycle performs no heap allocation once the slab
//     and heap vectors have reached their high-water marks.
//   * Virtual time: 64-bit nanoseconds; callbacks observe now() and may
//     schedule further events.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace mmrfd::sim {

/// Handle to a scheduled event: packs (slot, generation) so a stale handle —
/// the event fired, was cancelled, or its slot was recycled — is detected
/// instead of aliasing a newer event. kNoEvent never names an event.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

namespace detail {

/// Inline capacity of an event callable. Sized so the simulator's hot
/// closures — network deliveries capturing {Network*, from, to, payload}
/// and detector timers capturing {Detector*, peer} — never heap-allocate.
inline constexpr std::size_t kCallableInlineSize = 80;

/// Move-only type-erased `void()` with small-buffer optimisation. Unlike
/// std::function it never copies, has a fixed 88-byte footprint, and only
/// heap-allocates for captures larger than kCallableInlineSize.
class Callable {
 public:
  Callable() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callable(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::decay_t<F>;
    if constexpr (kInline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = &InlineOps<Fn>::kVt;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &HeapOps<Fn>::kVt;
    }
  }

  Callable(Callable&& other) noexcept { move_from(other); }
  Callable& operator=(Callable&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callable(const Callable&) = delete;
  Callable& operator=(const Callable&) = delete;
  ~Callable() { reset(); }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  void operator()() {
    assert(vt_ != nullptr);
    vt_->invoke(storage_);
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs dst from src, then destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool kInline =
      sizeof(Fn) <= kCallableInlineSize &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*std::launder(static_cast<Fn*>(p)))(); }
    static void relocate(void* dst, void* src) noexcept {
      Fn* s = std::launder(static_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* p) noexcept {
      std::launder(static_cast<Fn*>(p))->~Fn();
    }
    static constexpr VTable kVt{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* ptr(void* p) { return *std::launder(static_cast<Fn**>(p)); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(ptr(src));
    }
    static void destroy(void* p) noexcept { delete ptr(p); }
    static constexpr VTable kVt{&invoke, &relocate, &destroy};
  };

  void move_from(Callable& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(storage_, other.storage_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kCallableInlineSize];
  const VTable* vt_{nullptr};
};

}  // namespace detail

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0). Returns an id
  /// usable with cancel().
  template <typename F>
  EventId schedule(Duration delay, F&& fn) {
    assert(delay >= Duration::zero());
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at an absolute virtual time (>= now()).
  template <typename F>
  EventId schedule_at(TimePoint when, F&& fn) {
    assert(when >= now_);
    const std::uint32_t slot = acquire_slot();
    Node& node = nodes_[slot];
    node.fn = detail::Callable(std::forward<F>(fn));
    // seq_ is a pure scheduling counter (not reused on recycle): equal
    // timestamps fire in scheduling order, which is what makes a run a pure
    // function of its seed.
    heap_.push(HeapEntry{when, next_seq_++, slot, node.generation});
    return pack(slot, node.generation);
  }

  /// Cancels a pending event. Returns true iff the event was still pending;
  /// cancelling an already-fired, already-cancelled or unknown id is a
  /// `false` no-op (the generation check catches recycled slots too).
  bool cancel(EventId id);

  /// Runs until the event queue is empty or `deadline` is reached, whichever
  /// comes first. Time advances to the deadline if events run dry earlier?
  /// No — time stops at the last fired event; the deadline only bounds it.
  void run_until(TimePoint deadline);

  /// Runs for `d` of virtual time from now().
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until the queue is empty (use with care: periodic tasks never
  /// drain the queue).
  void run_all();

  /// Requests the current run_*() call to return after the current event.
  void stop() { stop_requested_ = true; }

  /// Number of events fired so far (diagnostics/benchmarks).
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// Number of heap entries currently pending (including entries whose
  /// event was cancelled and not yet popped).
  [[nodiscard]] std::size_t events_pending() const { return heap_.size(); }

  /// Number of live (scheduled, not yet fired/cancelled) events.
  [[nodiscard]] std::size_t events_live() const { return live_; }

  /// Timestamp of the earliest pending event, or kTimeMax when the queue is
  /// empty. Non-const: stale residue of cancelled events is popped on the
  /// way (the same lazy sweep run_until performs). The sharded engine uses
  /// this to size the next conservative window without firing anything.
  [[nodiscard]] TimePoint next_event_time();

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  struct Node {
    detail::Callable fn;
    /// Bumped every time the slot is disarmed (fire or cancel), so stale
    /// EventIds and stale heap entries are recognised. Wraps after 2^32
    /// arms of one slot — far beyond any run this simulator drives.
    std::uint32_t generation{0};
    std::uint32_t next_free{kNilSlot};
  };

  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // stable FIFO among equal timestamps
    }
  };

  static constexpr EventId pack(std::uint32_t slot, std::uint32_t generation) {
    // +1 keeps kNoEvent (0) unreachable.
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// Pops a node off the free list (growing the slab if empty).
  std::uint32_t acquire_slot();
  /// Disarms `slot`: bumps the generation, drops the callable, recycles.
  void release_slot(std::uint32_t slot);

  TimePoint now_{kTimeZero};
  std::uint64_t next_seq_{1};
  std::uint64_t events_fired_{0};
  std::size_t live_{0};
  bool stop_requested_{false};
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::vector<Node> nodes_;
  std::uint32_t free_head_{kNilSlot};
};

}  // namespace mmrfd::sim
