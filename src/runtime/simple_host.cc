#include "runtime/simple_host.h"

#include <cassert>
#include <memory>

namespace mmrfd::runtime {

SimpleHost::SimpleHost(sim::Simulation& simulation, MmrNetwork& network,
                       const SimpleHostConfig& config,
                       core::SuspicionObserver* observer)
    : sim_(simulation),
      net_(network),
      config_(config),
      core_(config.detector) {
  core_.set_observer(observer);
  net_.set_handler(id(), [this](ProcessId from, const MmrMessage& msg) {
    handle(from, msg);
  });
}

void SimpleHost::start() {
  assert(!started_);
  started_ = true;
  sim_.schedule(config_.initial_delay, [this] { begin_round(); });
}

void SimpleHost::crash() {
  crashed_ = true;
  net_.crash(id());
}

void SimpleHost::begin_round() {
  if (crashed_) return;
  if (core_.config().delta_queries) {
    delta_fan_out(net_, core_, id());
  } else {
    net_.broadcast(id(), MmrMessage{core_.start_query()});
  }
  if (core_.query_terminated()) on_terminated();
}

void SimpleHost::on_terminated() {
  sim_.schedule(config_.pacing, [this] {
    if (crashed_) return;
    core_.finish_round();
    begin_round();
  });
}

void SimpleHost::handle(ProcessId from, const MmrMessage& msg) {
  if (crashed_) return;
  if (const auto* q = std::get_if<core::QueryMessage>(&msg)) {
    const core::ResponseMessage r = core_.on_query(from, *q);
    net_.send(id(), from, MmrMessage{r});
  } else if (const auto* r = std::get_if<core::ResponseMessage>(&msg)) {
    if (core_.on_response(from, *r)) on_terminated();
  }
}

}  // namespace mmrfd::runtime
