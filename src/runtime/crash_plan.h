// Crash schedules: which processes crash, and when.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace mmrfd::runtime {

struct CrashPlan {
  struct Entry {
    ProcessId victim;
    TimePoint when{kTimeZero};
  };
  std::vector<Entry> entries;

  [[nodiscard]] static CrashPlan none() { return {}; }

  /// `k` distinct victims drawn uniformly from {0..n-1} minus `protect`,
  /// with crash instants spread uniformly over [t0, t1) — the "faults are
  /// uniformly inserted during an experiment" workload.
  [[nodiscard]] static CrashPlan uniform(std::size_t k, std::uint32_t n,
                                         TimePoint t0, TimePoint t1,
                                         std::uint64_t seed,
                                         std::span<const ProcessId> protect = {});

  /// All of `victims` crash at the same instant (correlated failure).
  [[nodiscard]] static CrashPlan simultaneous(std::span<const ProcessId> victims,
                                              TimePoint when);

  [[nodiscard]] std::vector<ProcessId> victims() const;
  [[nodiscard]] bool crashes(ProcessId id) const;
};

}  // namespace mmrfd::runtime
