#include "runtime/mmr_host.h"

#include <cassert>

namespace mmrfd::runtime {

MmrHost::MmrHost(sim::Simulation& simulation, MmrNetwork& network,
                 const MmrHostConfig& config,
                 core::PropertyRecorder* recorder,
                 core::SuspicionObserver* observer)
    : sim_(simulation),
      net_(network),
      config_(config),
      core_(config.detector),
      recorder_(recorder),
      jitter_rng_(derive_seed(config.jitter_seed, "host.jitter",
                              config.detector.self.value)) {
  assert(config_.pacing_jitter >= 0.0 && config_.pacing_jitter < 1.0);
  if (config_.registry != nullptr) {
    rounds_counter_ = &config_.registry->counter("sim.rounds");
    round_rtt_ns_ = &config_.registry->histogram("sim.round_rtt_ns");
  }
  core_.set_recorder(config_.recorder);
  core_.set_observer(observer);
  net_.set_handler(id(), [this](ProcessId from, const MmrMessage& msg) {
    handle(from, msg);
  });
}

void MmrHost::start() {
  assert(!started_);
  started_ = true;
  sim_.schedule(config_.initial_delay, [this] { begin_round(); });
}

void MmrHost::crash() {
  crashed_ = true;
  net_.crash(id());
}

void MmrHost::begin_round() {
  if (crashed_) return;
  round_start_ = sim_.now();
  if (core_.config().delta_queries) {
    delta_fan_out(net_, core_, id(), config_.recorder);
  } else {
    core_.begin_query();
    // One payload shared by every delivery event (broadcast()'s allocation
    // profile), but fanned out as a per-peer loop so the give-up policy can
    // skip long-suspected peers. With no skips the per-recipient rng draws
    // are identical to broadcast().
    const auto round_seq = static_cast<std::uint32_t>(core_.query_seq());
    auto full = std::make_shared<const MmrMessage>(core_.full_query());
    for (ProcessId to : net_.topology().neighbors(id())) {
      if (!core_.should_query(to)) continue;
      net_.send_shared(id(), to, full);
      trace(obs::TraceKind::kQueryTxSeq, to.value, round_seq);
    }
  }
  // With f = n - 1 the quorum is the self-response alone and the query
  // terminates instantly.
  if (core_.query_terminated()) on_terminated();
}

void MmrHost::on_terminated() {
  if (recorder_ != nullptr) {
    recorder_->record(id(), core_.query_seq(), sim_.now(), core_.winning());
  }
  // Quorum instant under sim time — the assembler's wire/pacing pivot,
  // mirroring the live RealTimeDetector's kQuorum record.
  trace(obs::TraceKind::kQuorum, static_cast<std::uint32_t>(core_.query_seq()),
        static_cast<std::uint32_t>(core_.rec_from().size()));
  // Sim-time round RTT (query start -> quorum): pure observation of now(),
  // no scheduling, so the seeded event order is untouched.
  if (round_rtt_ns_ != nullptr) {
    round_rtt_ns_->observe(
        static_cast<std::uint64_t>((sim_.now() - round_start_).count()));
    rounds_counter_->add(1);
  }
  // Pacing window: late responses arriving before the next query still flow
  // into rec_from via on_response (accept_late_responses).
  sim_.schedule(next_pacing(), [this] {
    if (crashed_) return;
    core_.finish_round();
    begin_round();
  });
}

Duration MmrHost::next_pacing() {
  if (config_.pacing_jitter == 0.0) return config_.pacing;
  const double factor = jitter_rng_.uniform(1.0 - config_.pacing_jitter,
                                            1.0 + config_.pacing_jitter);
  return Duration(static_cast<Duration::rep>(
      static_cast<double>(config_.pacing.count()) * factor));
}

void MmrHost::handle(ProcessId from, const MmrMessage& msg) {
  if (crashed_) return;
  if (const auto* q = std::get_if<core::QueryMessage>(&msg)) {
    trace(obs::TraceKind::kQueryRx, from.value,
          static_cast<std::uint32_t>(q->seq));
    const core::ResponseMessage r = core_.on_query(from, *q);
    trace(obs::TraceKind::kResponseTxSeq, from.value,
          static_cast<std::uint32_t>(r.seq));
    net_.send(id(), from, MmrMessage{r});
  } else if (const auto* r = std::get_if<core::ResponseMessage>(&msg)) {
    trace(obs::TraceKind::kResponseRxSeq, from.value,
          static_cast<std::uint32_t>(r->seq));
    if (r->origin_seq != 0) {
      trace(obs::TraceKind::kPeerRound, from.value,
            static_cast<std::uint32_t>(r->origin_seq));
    }
    if (core_.on_response(from, *r)) on_terminated();
  }
}

}  // namespace mmrfd::runtime
