// SimpleHost — drives the tag-free SimpleDetectorCore (the perpetual-
// assumption / class-S variant) over the simulated network. Constructor
// signature matches BaselineCluster's expectations, so
//
//   runtime::BaselineCluster<SimpleHost, SimpleHostConfig, MmrMessage>
//
// gives a full cluster of them (see runtime::SimpleCluster alias).
#pragma once

#include <vector>

#include "core/simple_detector.h"
#include "runtime/baseline_cluster.h"
#include "runtime/mmr_host.h"

namespace mmrfd::runtime {

struct SimpleHostConfig {
  core::SimpleDetectorConfig detector;
  Duration pacing{from_millis(1000)};
  Duration initial_delay{Duration::zero()};
};

class SimpleHost {
 public:
  SimpleHost(sim::Simulation& simulation, MmrNetwork& network,
             const SimpleHostConfig& config,
             core::SuspicionObserver* observer = nullptr);

  SimpleHost(const SimpleHost&) = delete;
  SimpleHost& operator=(const SimpleHost&) = delete;

  void start();
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.detector.self; }
  [[nodiscard]] const core::SimpleDetectorCore& detector() const {
    return core_;
  }

  // FailureDetector-style helpers so harnesses can treat hosts uniformly.
  [[nodiscard]] std::vector<ProcessId> suspected() const {
    return core_.suspected();
  }
  [[nodiscard]] bool is_suspected(ProcessId pid) const {
    return core_.is_suspected(pid);
  }

 private:
  void begin_round();
  void on_terminated();
  void handle(ProcessId from, const MmrMessage& msg);

  sim::Simulation& sim_;
  MmrNetwork& net_;
  SimpleHostConfig config_;
  core::SimpleDetectorCore core_;
  bool crashed_{false};
  bool started_{false};
};

/// A cluster of tag-free detectors (ablation harness for experiment E9).
using SimpleCluster =
    BaselineCluster<SimpleHost, SimpleHostConfig, MmrMessage>;

}  // namespace mmrfd::runtime
