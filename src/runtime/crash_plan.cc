#include "runtime/crash_plan.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace mmrfd::runtime {

CrashPlan CrashPlan::uniform(std::size_t k, std::uint32_t n, TimePoint t0,
                             TimePoint t1, std::uint64_t seed,
                             std::span<const ProcessId> protect) {
  assert(t1 >= t0);
  std::vector<ProcessId> pool;
  pool.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId id{i};
    if (std::find(protect.begin(), protect.end(), id) == protect.end()) {
      pool.push_back(id);
    }
  }
  assert(k <= pool.size());
  Xoshiro256 rng(derive_seed(seed, "crash_plan"));
  // Partial Fisher-Yates for the victims.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  CrashPlan plan;
  const auto span_ns = static_cast<double>((t1 - t0).count());
  for (std::size_t i = 0; i < k; ++i) {
    // Evenly spaced slots with jitter, so crashes are spread over the window.
    const double slot = (static_cast<double>(i) + rng.next_double()) /
                        static_cast<double>(k);
    const TimePoint when =
        t0 + Duration(static_cast<Duration::rep>(slot * span_ns));
    plan.entries.push_back({pool[i], when});
  }
  std::sort(plan.entries.begin(), plan.entries.end(),
            [](const Entry& a, const Entry& b) { return a.when < b.when; });
  return plan;
}

CrashPlan CrashPlan::simultaneous(std::span<const ProcessId> victims,
                                  TimePoint when) {
  CrashPlan plan;
  for (ProcessId v : victims) plan.entries.push_back({v, when});
  return plan;
}

std::vector<ProcessId> CrashPlan::victims() const {
  std::vector<ProcessId> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.victim);
  std::sort(out.begin(), out.end());
  return out;
}

bool CrashPlan::crashes(ProcessId id) const {
  for (const auto& e : entries) {
    if (e.victim == id) return true;
  }
  return false;
}

}  // namespace mmrfd::runtime
