// ShardedMmrCluster — the multi-core sibling of MmrCluster: the same n-host
// MMR deployment, partitioned across the worker threads of a
// sim::ShardedEngine.
//
// Partitioning scheme:
//   * Nodes are assigned to shards in contiguous blocks (node i lives on
//     shard i * S / n), deterministically.
//   * Each shard owns a private Simulation, a private Network instance (the
//     O(n^2) Topology is built once and shared read-only across all of
//     them), a private rollup-mode EventLog and the hosts of its nodes. All
//     of a shard's random streams (delays, loss, per-host jitter) are
//     private to its thread.
//   * A message whose recipient lives on another shard is handed to the
//     engine's exchange queues with its absolute (already-sampled) delivery
//     time; the conservative window — sized by the delay model's
//     min_delay() bound — guarantees the destination shard has not advanced
//     past it.
//
// Semantics vs MmrCluster: protocol-equivalent, not bit-identical. Host
// stagger and per-host jitter seeds replicate the serial construction
// exactly, but delay/loss streams are per-shard (a shard cannot share an
// RNG with another thread), so individual message delays differ from the
// serial run. tests/sim/engine_equivalence_test.cc pins the protocol-level
// agreement. For a fixed (seed, shards) pair a run is fully deterministic.
//
// Not carried over from MmrCluster: the PropertyRecorder (MP checking needs
// a global round journal; record it on the serial reference instead) and
// full event streams (per-shard logs run in rollup mode — see
// metrics::summarize_rollup).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "metrics/analysis.h"
#include "metrics/event_log.h"
#include "net/network.h"
#include "obs/metrics_registry.h"
#include "runtime/cluster.h"
#include "runtime/crash_plan.h"
#include "runtime/mmr_host.h"
#include "sim/sharded_engine.h"

namespace mmrfd::runtime {

class ShardedMmrCluster {
 public:
  /// Builds the deployment with `shards` worker shards. Throws
  /// std::invalid_argument if the config's delay model has a zero
  /// min_delay() bound (no conservative window can be sized).
  ShardedMmrCluster(const MmrClusterConfig& config, std::uint32_t shards);

  /// Schedules the crash plan (each crash on its victim's shard) and starts
  /// every host. Call once.
  void start(const CrashPlan& plan = CrashPlan::none());

  void run_for(Duration d) { engine_.run_for(d); }
  void run_until(TimePoint t) { engine_.run_until(t); }

  [[nodiscard]] sim::ShardedEngine& engine() { return engine_; }
  [[nodiscard]] std::uint32_t n() const { return config_.n; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return engine_.shard_count();
  }
  [[nodiscard]] const MmrClusterConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t shard_of(ProcessId id) const {
    return (*shard_of_)[id.value];
  }

  [[nodiscard]] MmrHost& host(ProcessId id) { return *hosts_.at(id.value); }
  [[nodiscard]] const MmrHost& host(ProcessId id) const {
    return *hosts_.at(id.value);
  }
  [[nodiscard]] MmrNetwork& network(std::uint32_t shard) {
    return *nets_.at(shard);
  }
  [[nodiscard]] metrics::EventLog& log(std::uint32_t shard) {
    return *logs_.at(shard);
  }

  /// Per-shard metrics registry: every host of shard s records its sim.*
  /// instruments here, so shard workers never contend on shared counters.
  [[nodiscard]] obs::MetricsRegistry& shard_metrics(std::uint32_t shard) {
    return *registries_.at(shard);
  }
  /// Cluster-wide metrics: all per-shard registries merged (counters and
  /// histogram buckets summed). Call after run_for()/run_until() returns —
  /// never while the worker threads are mid-window.
  [[nodiscard]] obs::RegistrySnapshot telemetry() const;

  /// Per-pair suspicion rollups merged across all shards, sorted by
  /// (observer, subject). Feed to metrics::summarize_rollup().
  [[nodiscard]] std::vector<metrics::PairRollup> rollup() const;
  /// Crash records merged across shards, in (time, victim) order.
  [[nodiscard]] std::vector<metrics::CrashRecord> crashes() const;
  /// Network counters summed across shards.
  [[nodiscard]] net::NetworkStats stats() const;
  /// Total bytes retained by the per-shard logs (memory-bound checks).
  [[nodiscard]] std::size_t log_retained_bytes() const;

  [[nodiscard]] std::vector<ProcessId> alive() const;

 private:
  static Duration window_for(const MmrClusterConfig& config);

  MmrClusterConfig config_;
  std::shared_ptr<const std::vector<std::uint32_t>> shard_of_;
  sim::ShardedEngine engine_;
  std::vector<std::unique_ptr<MmrNetwork>> nets_;
  std::vector<std::unique_ptr<metrics::EventLog>> logs_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries_;
  std::vector<std::unique_ptr<MmrHost>> hosts_;
  bool started_{false};
};

}  // namespace mmrfd::runtime
