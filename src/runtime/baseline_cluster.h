// BaselineCluster — the MmrCluster counterpart for the timer-based baseline
// detectors, so experiments can run "same workload, different detector"
// comparisons with one line of config per detector family.
//
// DetectorT must expose: ctor(sim, network, ConfigT, SuspicionObserver*),
// start(), crash(), and the core::FailureDetector interface — which all of
// baselines/{heartbeat, phi_accrual, gossip, adaptive} do.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "metrics/event_log.h"
#include "net/network.h"
#include "runtime/crash_plan.h"
#include "sim/simulation.h"

namespace mmrfd::runtime {

template <typename DetectorT, typename ConfigT, typename MsgT>
class BaselineCluster {
 public:
  using Network = net::Network<MsgT>;

  /// `make_config` builds the per-process config (self id, stagger, ...).
  BaselineCluster(std::uint32_t n, net::Topology topology,
                  std::unique_ptr<net::DelayModel> delays, std::uint64_t seed,
                  std::function<ConfigT(ProcessId)> make_config)
      : net_(sim_, std::move(topology), std::move(delays), seed), log_(sim_) {
    detectors_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      detectors_.push_back(std::make_unique<DetectorT>(
          sim_, net_, make_config(ProcessId{i}),
          log_.observer_for(ProcessId{i})));
    }
  }

  void start(const CrashPlan& plan = CrashPlan::none()) {
    assert(!started_);
    started_ = true;
    for (auto& d : detectors_) d->start();
    for (const auto& e : plan.entries) {
      sim_.schedule_at(e.when, [this, victim = e.victim] {
        if (!detectors_[victim.value]->crashed()) {
          detectors_[victim.value]->crash();
          log_.record_crash(victim);
        }
      });
    }
  }

  void run_for(Duration d) { sim_.run_for(d); }

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] metrics::EventLog& log() { return log_; }
  [[nodiscard]] const metrics::EventLog& log() const { return log_; }
  [[nodiscard]] DetectorT& detector(ProcessId id) {
    return *detectors_.at(id.value);
  }
  [[nodiscard]] std::uint32_t n() const {
    return static_cast<std::uint32_t>(detectors_.size());
  }

 private:
  sim::Simulation sim_;
  Network net_;
  metrics::EventLog log_;
  std::vector<std::unique_ptr<DetectorT>> detectors_;
  bool started_{false};
};

}  // namespace mmrfd::runtime
