#include "runtime/cluster.h"

#include <cassert>

#include "common/rng.h"
#include "net/topology.h"

namespace mmrfd::runtime {

namespace {

// TraceClock adapter: stamp flight-recorder records with sim time so the
// assembler's timeline lives in the same frame as the EventLog.
std::uint64_t sim_now_ns(const void* ctx) {
  return static_cast<std::uint64_t>(
      static_cast<const sim::Simulation*>(ctx)->now().count());
}

}  // namespace

std::unique_ptr<net::DelayModel> build_mmr_delays(
    const MmrClusterConfig& config) {
  auto model = net::make_preset(config.delay_preset, config.mean_delay);
  if (!config.fast_set.empty()) {
    // Both directions: the MP witness must receive queries quickly too, or
    // the issuer->witness leg alone can push its response out of the
    // winning window.
    model = std::make_unique<net::FastSetDelay>(
        std::move(model), config.fast_set, config.fast_factor,
        net::FastSetDelay::Scope::kBothDirections);
  }
  if (config.spike) {
    model = std::make_unique<net::SpikeDelay>(
        std::move(model), config.spike->start, config.spike->end,
        config.spike->factor, config.spike->affected);
  }
  return model;
}

void apply_fault_knobs(MmrNetwork& net, const MmrClusterConfig& config) {
  const auto& f = config.faults;
  if (f.loss_rate > 0.0) net.set_loss_rate(f.loss_rate);
  if (f.duplicate_rate > 0.0) net.set_duplicate_rate(f.duplicate_rate);
  if (f.reorder_rate > 0.0) net.set_reorder(f.reorder_rate, f.reorder_window);
  for (const auto& [from, to] : f.blocked_links) net.block_link(from, to);
  for (const auto& flap : f.link_flaps) {
    net.add_link_flap(flap.from, flap.to, flap.down, flap.up);
  }
}

MmrCluster::MmrCluster(const MmrClusterConfig& config)
    : config_(config),
      net_(std::make_unique<MmrNetwork>(sim_, net::Topology::full(config.n),
                                        build_mmr_delays(config), config.seed)),
      log_(sim_, config.log_mode),
      recorder_(config.n) {
  assert(config_.f < config_.n);
  apply_fault_knobs(*net_, config_);
  Xoshiro256 stagger_rng(derive_seed(config_.seed, "cluster.stagger"));
  hosts_.reserve(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    MmrHostConfig hc;
    hc.detector.self = ProcessId{i};
    hc.detector.n = config_.n;
    hc.detector.f = config_.f;
    hc.detector.accept_late_responses = config_.accept_late_responses;
    hc.detector.extra_quorum = config_.extra_quorum;
    hc.detector.delta_queries = config_.delta_queries;
    hc.detector.giveup_rounds = config_.giveup_rounds;
    hc.detector.resync_interval = config_.resync_interval;
    hc.pacing = config_.pacing;
    hc.pacing_jitter = config_.pacing_jitter;
    hc.jitter_seed = config_.seed;
    // Desynchronize the first queries across [0, pacing).
    hc.initial_delay = Duration(static_cast<Duration::rep>(
        stagger_rng.next_double() *
        static_cast<double>(config_.pacing.count())));
    hc.registry = config_.registry;
    if (config_.trace_capacity > 0) {
      traces_.push_back(std::make_unique<obs::FlightRecorder>(
          config_.trace_capacity, obs::TraceClock{&sim_now_ns, &sim_}));
      hc.recorder = traces_.back().get();
    }
    hosts_.push_back(std::make_unique<MmrHost>(
        sim_, *net_, hc, &recorder_, log_.observer_for(ProcessId{i})));
  }
}

void MmrCluster::start(const CrashPlan& plan) {
  assert(!started_);
  started_ = true;
  for (auto& h : hosts_) h->start();
  for (const auto& e : plan.entries) {
    sim_.schedule_at(e.when, [this, victim = e.victim] {
      if (!hosts_[victim.value]->crashed()) {
        hosts_[victim.value]->crash();
        log_.record_crash(victim);
      }
    });
  }
}

std::vector<ProcessId> MmrCluster::alive() const {
  std::vector<ProcessId> out;
  for (const auto& h : hosts_) {
    if (!h->crashed()) out.push_back(h->id());
  }
  return out;
}

}  // namespace mmrfd::runtime
