// MmrHost — binds a DetectorCore to the simulated network and drives its
// query rounds.
//
// Responsibilities (everything the sans-I/O core must not know about):
//   * broadcasting QUERYs and RESPONSEs over net::Network;
//   * the inter-query pacing delay Delta — the paper requires only that the
//     time between consecutive queries is "finite but arbitrary"; the
//     evaluation inserts a fixed Delta so the network is not flooded, and
//     responses arriving during that window still count into rec_from;
//   * reporting terminated rounds to the PropertyRecorder (for MP checking);
//   * crash-stop: a crashed host stops all activity instantly.
#pragma once

#include <memory>
#include <variant>

#include "common/types.h"
#include "core/detector_core.h"
#include "core/messages.h"
#include "core/properties.h"
#include "net/network.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "sim/simulation.h"

namespace mmrfd::runtime {

using MmrMessage = std::variant<core::QueryMessage, core::ResponseMessage>;
using MmrNetwork = net::Network<MmrMessage>;

/// Per-peer delta-query fan-out shared by the simulated hosts (MmrHost,
/// SimpleHost): starts the core's round, then sends each neighbor its
/// (usually tiny) delta, with every peer needing the full fallback —
/// nothing acked yet, or its ack fell out of the journal window (e.g. it
/// crashed) — sharing ONE full payload, so the fallback costs one O(f)
/// construction per round, not one per peer. Iterating neighbors in
/// topology order keeps the per-recipient rng draws identical to
/// broadcast(), so fixed-seed schedules match the full-encoding path bit
/// for bit — the invariant the golden digests pin. `Core` needs
/// begin_query / full_query_needed / full_query / query_for / query_seq;
/// cores that also expose should_query (the crashed-peer give-up policy)
/// get long-suspected peers skipped entirely. An optional FlightRecorder
/// gets one kQueryTxSeq causal record per peer actually queried —
/// recording draws no randomness and schedules nothing, so fixed-seed
/// schedules are untouched.
template <typename Core>
void delta_fan_out(MmrNetwork& net, Core& core, ProcessId self,
                   obs::FlightRecorder* rec = nullptr) {
  core.begin_query();
  const auto round_seq = static_cast<std::uint32_t>(core.query_seq());
  std::shared_ptr<const MmrMessage> full;
  for (ProcessId to : net.topology().neighbors(self)) {
    if constexpr (requires { core.should_query(to); }) {
      if (!core.should_query(to)) continue;
    }
    if (core.full_query_needed(to)) {
      if (!full) {
        full = std::make_shared<const MmrMessage>(core.full_query());
      }
      net.send_shared(self, to, full);
    } else {
      net.send(self, to, MmrMessage{core.query_for(to)});
    }
    if (rec != nullptr) {
      rec->record(obs::TraceKind::kQueryTxSeq, to.value, round_seq);
    }
  }
}

struct MmrHostConfig {
  core::DetectorConfig detector;
  /// Pacing Delta between a query's termination and the next query.
  Duration pacing{from_millis(1000)};
  /// Relative jitter on the pacing, in [0, 1): each round's pacing is drawn
  /// uniformly from pacing * [1 - jitter, 1 + jitter]. The paper requires
  /// only that inter-query time is "finite but arbitrary" — jitter > 0
  /// exercises that generality (see the ArbitraryPacing tests).
  double pacing_jitter{0.0};
  /// Seed for the jitter stream (derive from the cluster seed).
  std::uint64_t jitter_seed{0};
  /// First query fires at this offset (stagger hosts to avoid lockstep).
  Duration initial_delay{Duration::zero()};
  /// Optional shared metrics registry: the host contributes sim.rounds and
  /// the sim.round_rtt_ns histogram (query start -> quorum, in sim time).
  /// Collection is pure observation — now() reads, no RNG draws, no event
  /// scheduling — so fixed-seed schedules are untouched. Null = off.
  obs::MetricsRegistry* registry{nullptr};
  /// Optional flight recorder forwarded to the core (round/suspicion/
  /// resync traces under sim time). Null = off.
  obs::FlightRecorder* recorder{nullptr};
};

class MmrHost {
 public:
  MmrHost(sim::Simulation& simulation, MmrNetwork& network,
          const MmrHostConfig& config,
          core::PropertyRecorder* recorder = nullptr,
          core::SuspicionObserver* observer = nullptr);

  MmrHost(const MmrHost&) = delete;
  MmrHost& operator=(const MmrHost&) = delete;

  /// Schedules the first query; must be called once before the run.
  void start();

  /// Crash-stop: silences this host and tells the network to drop deliveries.
  void crash();

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.detector.self; }
  [[nodiscard]] const core::DetectorCore& detector() const { return core_; }
  [[nodiscard]] core::DetectorCore& detector() { return core_; }

 private:
  void begin_round();
  void on_terminated();
  void handle(ProcessId from, const MmrMessage& msg);

  void trace(obs::TraceKind kind, std::uint32_t a = 0, std::uint32_t b = 0) {
    if (config_.recorder != nullptr) config_.recorder->record(kind, a, b);
  }

  [[nodiscard]] Duration next_pacing();

  sim::Simulation& sim_;
  MmrNetwork& net_;
  MmrHostConfig config_;
  core::DetectorCore core_;
  core::PropertyRecorder* recorder_;
  Xoshiro256 jitter_rng_;
  bool crashed_{false};
  bool started_{false};

  // Optional registry instruments (null when config.registry is null).
  obs::Counter* rounds_counter_{nullptr};
  obs::Histogram* round_rtt_ns_{nullptr};
  TimePoint round_start_{};
};

}  // namespace mmrfd::runtime
