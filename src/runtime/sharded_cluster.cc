#include "runtime/sharded_cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "net/topology.h"

namespace mmrfd::runtime {

Duration ShardedMmrCluster::window_for(const MmrClusterConfig& config) {
  const Duration w = build_mmr_delays(config)->min_delay();
  if (w <= Duration::zero()) {
    throw std::invalid_argument(
        "ShardedMmrCluster: the delay model's min_delay() bound is zero — "
        "conservative windows cannot order cross-shard deliveries (use a "
        "preset with a positive base delay)");
  }
  return w;
}

ShardedMmrCluster::ShardedMmrCluster(const MmrClusterConfig& config,
                                     std::uint32_t shards)
    : config_(config), engine_(shards, window_for(config)) {
  assert(config_.f < config_.n);
  assert(shards >= 1);

  // Contiguous blocks: shard s owns [s*n/S, (s+1)*n/S). Deterministic, and
  // a host's neighbors-by-index locality survives the partitioning.
  auto shard_of = std::make_shared<std::vector<std::uint32_t>>(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    (*shard_of)[i] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * shards) / config_.n);
  }
  shard_of_ = std::move(shard_of);

  // One O(n^2) adjacency, shared read-only by every per-shard network.
  auto topology =
      std::make_shared<const net::Topology>(net::Topology::full(config_.n));

  nets_.reserve(shards);
  logs_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    nets_.push_back(std::make_unique<MmrNetwork>(
        engine_.shard(s), topology, build_mmr_delays(config_),
        derive_seed(config_.seed, "shard.net", s)));
    apply_fault_knobs(*nets_[s], config_);
    nets_[s]->enable_shard_routing(
        shard_of_, s,
        [this, s](std::uint32_t dst_shard, TimePoint when, ProcessId from,
                  ProcessId to, std::shared_ptr<const MmrMessage> payload) {
          engine_.post(s, dst_shard, when,
                       [this, dst_shard, from, to, p = std::move(payload)] {
                         nets_[dst_shard]->deliver_remote(from, to, p);
                       });
        });
    logs_.push_back(std::make_unique<metrics::EventLog>(
        engine_.shard(s), metrics::LogMode::kRollup));
    registries_.push_back(std::make_unique<obs::MetricsRegistry>());
  }

  // Host construction mirrors MmrCluster exactly — one sequential stagger
  // stream drawn in id order, per-host jitter derived from the cluster seed
  // — so the two deployments start from identical host configurations.
  Xoshiro256 stagger_rng(derive_seed(config_.seed, "cluster.stagger"));
  hosts_.reserve(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    MmrHostConfig hc;
    hc.detector.self = ProcessId{i};
    hc.detector.n = config_.n;
    hc.detector.f = config_.f;
    hc.detector.accept_late_responses = config_.accept_late_responses;
    hc.detector.extra_quorum = config_.extra_quorum;
    hc.detector.delta_queries = config_.delta_queries;
    hc.detector.giveup_rounds = config_.giveup_rounds;
    hc.detector.resync_interval = config_.resync_interval;
    hc.pacing = config_.pacing;
    hc.pacing_jitter = config_.pacing_jitter;
    hc.jitter_seed = config_.seed;
    hc.initial_delay = Duration(static_cast<Duration::rep>(
        stagger_rng.next_double() *
        static_cast<double>(config_.pacing.count())));
    const std::uint32_t s = (*shard_of_)[i];
    hc.registry = registries_[s].get();
    hosts_.push_back(std::make_unique<MmrHost>(
        engine_.shard(s), *nets_[s], hc, /*recorder=*/nullptr,
        logs_[s]->observer_for(ProcessId{i})));
  }
}

obs::RegistrySnapshot ShardedMmrCluster::telemetry() const {
  obs::RegistrySnapshot merged;
  for (const auto& reg : registries_) merged.merge(reg->snapshot());
  return merged;
}

void ShardedMmrCluster::start(const CrashPlan& plan) {
  assert(!started_);
  started_ = true;
  for (auto& h : hosts_) h->start();
  for (const auto& e : plan.entries) {
    const std::uint32_t s = (*shard_of_)[e.victim.value];
    engine_.shard(s).schedule_at(e.when, [this, s, victim = e.victim] {
      if (!hosts_[victim.value]->crashed()) {
        hosts_[victim.value]->crash();
        logs_[s]->record_crash(victim);
      }
    });
  }
}

std::vector<metrics::PairRollup> ShardedMmrCluster::rollup() const {
  std::vector<metrics::PairRollup> out;
  for (const auto& log : logs_) {
    auto part = log->rollup();  // pairs are disjoint: observer fixes the shard
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end(),
            [](const metrics::PairRollup& a, const metrics::PairRollup& b) {
              if (a.observer != b.observer) return a.observer < b.observer;
              return a.subject < b.subject;
            });
  return out;
}

std::vector<metrics::CrashRecord> ShardedMmrCluster::crashes() const {
  std::vector<metrics::CrashRecord> out;
  for (const auto& log : logs_) {
    out.insert(out.end(), log->crashes().begin(), log->crashes().end());
  }
  std::sort(out.begin(), out.end(),
            [](const metrics::CrashRecord& a, const metrics::CrashRecord& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.subject < b.subject;
            });
  return out;
}

net::NetworkStats ShardedMmrCluster::stats() const {
  net::NetworkStats total;
  for (const auto& net : nets_) {
    const net::NetworkStats& s = net->stats();
    total.messages_sent += s.messages_sent;
    total.messages_delivered += s.messages_delivered;
    total.messages_dropped_crash += s.messages_dropped_crash;
    total.messages_dropped_loss += s.messages_dropped_loss;
    total.messages_dropped_partition += s.messages_dropped_partition;
    total.messages_duplicated += s.messages_duplicated;
    total.messages_reordered += s.messages_reordered;
    total.bytes_sent += s.bytes_sent;
  }
  return total;
}

std::size_t ShardedMmrCluster::log_retained_bytes() const {
  std::size_t total = 0;
  for (const auto& log : logs_) total += log->approx_retained_bytes();
  return total;
}

std::vector<ProcessId> ShardedMmrCluster::alive() const {
  std::vector<ProcessId> out;
  for (const auto& h : hosts_) {
    if (!h->crashed()) out.push_back(h->id());
  }
  return out;
}

}  // namespace mmrfd::runtime
