// MmrCluster — a complete simulated deployment of the asynchronous failure
// detector: simulator + network + n hosts + event log + MP recorder, built
// from one declarative config. This is the entry point used by the examples,
// the integration tests and every experiment binary.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/properties.h"
#include "metrics/event_log.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "runtime/crash_plan.h"
#include "runtime/mmr_host.h"
#include "sim/simulation.h"

namespace mmrfd::runtime {

/// Transient network slowdown: delays of messages touching `affected`
/// (everyone if empty) are multiplied by `factor` during [start, end).
struct SpikeSpec {
  TimePoint start{kTimeZero};
  TimePoint end{kTimeZero};
  double factor{10.0};
  std::vector<ProcessId> affected;
};

struct MmrClusterConfig {
  std::uint32_t n{10};
  std::uint32_t f{2};
  std::uint64_t seed{42};

  /// Inter-query pacing Delta (the evaluation uses 1 s).
  Duration pacing{from_millis(1000)};
  /// Relative per-round pacing jitter in [0, 1) — "finite but arbitrary"
  /// inter-query times.
  double pacing_jitter{0.0};
  /// Mean one-hop network delay (the evaluation uses 1 ms).
  Duration mean_delay{from_millis(1)};
  net::DelayPreset delay_preset{net::DelayPreset::kExponential};

  /// Processes whose outgoing messages are sped up by `fast_factor` — the
  /// engineered way to make the MP behavioral property hold. Empty = no bias
  /// (MP may still hold by luck; the checker decides).
  std::vector<ProcessId> fast_set;
  double fast_factor{0.1};

  std::optional<SpikeSpec> spike;

  /// Protocol knobs (see core::DetectorConfig).
  bool accept_late_responses{true};
  std::uint32_t extra_quorum{0};
  /// Delta-encoded queries (ON = production default; OFF = the paper's
  /// canonical full encoding, kept as the semantic reference the
  /// encoding-equivalence harness diffs against).
  bool delta_queries{true};
  /// Event-log retention: kRollup folds transitions into per-pair summaries
  /// on arrival (bounded memory for huge-n sweeps; Analysis needs kFull).
  metrics::LogMode log_mode{metrics::LogMode::kFull};

  /// Adversarial channel knobs, forwarded to every net::Network instance
  /// (serial: the one network; sharded: each per-shard network — every
  /// fault decision is still made on the sending shard, so runs stay
  /// deterministic per seed). All off by default: the golden digests
  /// require that all-knobs-off schedules stay bit-identical.
  struct FaultSpec {
    double loss_rate{0.0};
    double duplicate_rate{0.0};
    /// Reordering: fraction of messages stretched by an extra delay drawn
    /// uniformly from (0, reorder_window].
    double reorder_rate{0.0};
    Duration reorder_window{from_millis(20)};
    /// Directed edges blocked for the whole run (asymmetric partitions).
    std::vector<std::pair<ProcessId, ProcessId>> blocked_links;
    /// Directed edges down during [down, up) of sim time (link flaps).
    struct Flap {
      ProcessId from;
      ProcessId to;
      TimePoint down{kTimeZero};
      TimePoint up{kTimeZero};
    };
    std::vector<Flap> link_flaps;
  };
  FaultSpec faults;

  /// Crashed-peer give-up policy (see core::DetectorConfig::giveup_rounds).
  std::uint32_t giveup_rounds{8};
  /// Watermark self-stabilization guard (DetectorConfig::resync_interval).
  std::uint32_t resync_interval{64};

  /// Optional shared metrics registry for the cluster's sim.* instruments
  /// (round counts, round-RTT histogram), forwarded to every host. The
  /// sharded cluster ignores this and owns one registry per shard instead
  /// (merged via telemetry()) so shard workers never share cache lines.
  /// Collection is schedule-neutral; null = off.
  obs::MetricsRegistry* registry{nullptr};

  /// Per-host flight-recorder capacity (records). > 0 gives every host its
  /// own sim-time-stamped FlightRecorder (see MmrCluster::trace()), the
  /// ground-truth feed for the TraceAssembler differential test. Recording
  /// is pure observation — no RNG draws, no scheduling — so fixed-seed
  /// schedules and golden digests are untouched. 0 = off.
  std::size_t trace_capacity{0};
};

/// The config's composed delay model (preset + fast-set bias + spike).
/// Shared by the serial and sharded clusters so both deployments sample
/// from identically-structured models.
std::unique_ptr<net::DelayModel> build_mmr_delays(
    const MmrClusterConfig& config);

/// Applies config.faults to one network instance. Shared by the serial and
/// sharded clusters (the sharded one calls it once per shard network).
void apply_fault_knobs(MmrNetwork& net, const MmrClusterConfig& config);

class MmrCluster {
 public:
  explicit MmrCluster(const MmrClusterConfig& config);

  /// Schedules the crash plan and starts every host. Call once.
  void start(const CrashPlan& plan = CrashPlan::none());

  void run_for(Duration d) { sim_.run_for(d); }
  void run_until(TimePoint t) { sim_.run_until(t); }

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] MmrNetwork& network() { return *net_; }
  [[nodiscard]] const MmrNetwork& network() const { return *net_; }
  [[nodiscard]] metrics::EventLog& log() { return log_; }
  [[nodiscard]] const metrics::EventLog& log() const { return log_; }
  [[nodiscard]] core::PropertyRecorder& recorder() { return recorder_; }
  [[nodiscard]] MmrHost& host(ProcessId id) { return *hosts_.at(id.value); }
  [[nodiscard]] const MmrHost& host(ProcessId id) const {
    return *hosts_.at(id.value);
  }
  [[nodiscard]] std::uint32_t n() const { return config_.n; }
  [[nodiscard]] const MmrClusterConfig& config() const { return config_; }

  /// Host `id`'s flight recorder (null unless config.trace_capacity > 0).
  [[nodiscard]] obs::FlightRecorder* trace(ProcessId id) {
    return traces_.empty() ? nullptr : traces_.at(id.value).get();
  }

  /// Ids of processes that have not crashed (yet).
  [[nodiscard]] std::vector<ProcessId> alive() const;

 private:
  MmrClusterConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<MmrNetwork> net_;
  metrics::EventLog log_;
  core::PropertyRecorder recorder_;
  std::vector<std::unique_ptr<obs::FlightRecorder>> traces_;
  std::vector<std::unique_ptr<MmrHost>> hosts_;
  bool started_{false};
};

}  // namespace mmrfd::runtime
