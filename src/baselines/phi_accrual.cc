#include "baselines/phi_accrual.h"

#include <cassert>
#include <cmath>

namespace mmrfd::baselines {

PhiWindow::PhiWindow(std::size_t capacity, Duration min_stddev)
    : capacity_(capacity), min_stddev_s_(to_seconds(min_stddev)) {
  assert(capacity_ >= 2);
}

void PhiWindow::bootstrap(TimePoint now, Duration expected_interval) {
  const double mean = to_seconds(expected_interval);
  intervals_.push_back(mean * 0.75);
  intervals_.push_back(mean * 1.25);
  last_arrival_ = now;
}

void PhiWindow::observe_arrival(TimePoint now) {
  if (last_arrival_) {
    const double interval = to_seconds(now - *last_arrival_);
    if (intervals_.size() < capacity_) {
      intervals_.push_back(interval);
    } else {
      intervals_[next_slot_] = interval;
      next_slot_ = (next_slot_ + 1) % capacity_;
    }
  }
  last_arrival_ = now;
}

double PhiWindow::phi(TimePoint now) const {
  if (!last_arrival_ || intervals_.size() < 2) return 0.0;
  double mean = 0.0;
  for (double x : intervals_) mean += x;
  mean /= static_cast<double>(intervals_.size());
  double var = 0.0;
  for (double x : intervals_) var += (x - mean) * (x - mean);
  var /= static_cast<double>(intervals_.size() - 1);
  const double sd = std::max(std::sqrt(var), min_stddev_s_);

  const double t = to_seconds(now - *last_arrival_);
  // P(arrival later than t) under N(mean, sd): 1 - CDF(t).
  const double z = (t - mean) / sd;
  const double p_later = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (p_later <= 0.0) return 1e9;  // numerically certain death
  return -std::log10(p_later);
}

PhiAccrualDetector::PhiAccrualDetector(sim::Simulation& simulation,
                                       HeartbeatNetwork& network,
                                       const PhiAccrualConfig& config,
                                       core::SuspicionObserver* observer)
    : sim_(simulation),
      net_(network),
      config_(config),
      observer_(observer),
      last_seq_(config.n, 0),
      windows_(config.n, PhiWindow(config.window, config.min_stddev)),
      suspected_(config.n, false) {
  assert(config_.n > 1);
  net_.set_handler(id(), [this](ProcessId from, const HeartbeatMessage& m) {
    handle(from, m);
  });
}

void PhiAccrualDetector::start() {
  assert(!started_);
  started_ = true;
  sim_.schedule(config_.initial_delay, [this] {
    for (std::uint32_t i = 0; i < config_.n; ++i) {
      if (i != id().value) {
        windows_[i].bootstrap(sim_.now(), config_.period);
      }
    }
    tick();
    poll();
  });
}

void PhiAccrualDetector::crash() {
  crashed_ = true;
  net_.crash(id());
}

void PhiAccrualDetector::tick() {
  if (crashed_) return;
  ++seq_;
  net_.broadcast(id(), HeartbeatMessage{seq_});
  sim_.schedule(config_.period, [this] { tick(); });
}

void PhiAccrualDetector::poll() {
  if (crashed_) return;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const ProcessId peer{i};
    if (peer == id()) continue;
    const bool suspect = phi(peer) >= config_.threshold;
    if (suspect && !suspected_[i]) {
      suspected_[i] = true;
      if (observer_ != nullptr) observer_->on_suspected(peer, 0);
    } else if (!suspect && suspected_[i]) {
      suspected_[i] = false;
      if (observer_ != nullptr) observer_->on_cleared(peer, 0);
    }
  }
  sim_.schedule(config_.poll, [this] { poll(); });
}

void PhiAccrualDetector::handle(ProcessId from, const HeartbeatMessage& msg) {
  if (crashed_) return;
  if (msg.seq <= last_seq_[from.value]) return;
  last_seq_[from.value] = msg.seq;
  windows_[from.value].observe_arrival(sim_.now());
}

double PhiAccrualDetector::phi(ProcessId peer) const {
  return windows_[peer.value].phi(sim_.now());
}

std::vector<ProcessId> PhiAccrualDetector::suspected() const {
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) out.push_back(ProcessId{i});
  }
  return out;
}

bool PhiAccrualDetector::is_suspected(ProcessId pid) const {
  return pid.value < suspected_.size() && suspected_[pid.value];
}

}  // namespace mmrfd::baselines
