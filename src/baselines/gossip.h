// Timer-based baseline #3: gossip-style heartbeat counters
// (van Renesse et al. / Friedman & Tcharny lineage).
//
// Every process keeps a vector of the highest heartbeat counter it has seen
// per process. Every Delta it increments its own entry and sends the whole
// vector to its neighbors (full mesh here; the scheme's point is that it
// also works multi-hop). On receipt the vectors are merged entry-wise by
// max; a per-peer timeout Theta is re-armed whenever that peer's counter
// grows. Detection is thus timer-based like plain heartbeat, but information
// travels transitively — the closest OSS analogue of "suspicion flooding".
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/failure_detector.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace mmrfd::baselines {

struct GossipMessage {
  std::vector<std::uint64_t> counters;
  friend bool operator==(const GossipMessage&, const GossipMessage&) = default;
};

using GossipNetwork = net::Network<GossipMessage>;

struct GossipConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  Duration period{from_millis(1000)};   ///< Delta
  Duration timeout{from_millis(2000)};  ///< Theta
  /// Gossip fan-out: vector is sent to this many distinct random neighbors
  /// each tick (0 = all neighbors).
  std::uint32_t fanout{0};
  std::uint64_t seed{0};
  Duration initial_delay{Duration::zero()};
};

class GossipDetector final : public core::FailureDetector {
 public:
  GossipDetector(sim::Simulation& simulation, GossipNetwork& network,
                 const GossipConfig& config,
                 core::SuspicionObserver* observer = nullptr);

  void start();
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.self; }

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;

  [[nodiscard]] const std::vector<std::uint64_t>& counters() const {
    return counters_;
  }

 private:
  void tick();
  void handle(ProcessId from, const GossipMessage& msg);
  void arm_timer(ProcessId peer);
  void expire(ProcessId peer);

  sim::Simulation& sim_;
  GossipNetwork& net_;
  GossipConfig config_;
  core::SuspicionObserver* observer_;
  Xoshiro256 rng_;
  bool crashed_{false};
  bool started_{false};
  std::vector<std::uint64_t> counters_;
  std::vector<sim::EventId> timers_;
  std::vector<bool> suspected_;
};

}  // namespace mmrfd::baselines
