// Timer-based baseline #2: the phi-accrual failure detector
// (Hayashibara et al., SRDS 2004) — the detector modern OSS systems
// (Cassandra, Akka) actually ship.
//
// Instead of a boolean timeout it outputs a suspicion *level*
//   phi(t) = -log10( P(next heartbeat arrives later than t) )
// from a sliding-window estimate (normal approximation) of heartbeat
// inter-arrival times, and suspects when phi crosses a threshold. Adaptive,
// but still fundamentally timer-based: it presumes a (locally stationary)
// arrival distribution — exactly the assumption the time-free detector
// drops. Heavy-tailed delays (E5) and spikes (E3) expose the difference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/heartbeat.h"
#include "common/types.h"
#include "core/failure_detector.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace mmrfd::baselines {

struct PhiAccrualConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  Duration period{from_millis(1000)};  ///< heartbeat emission period
  double threshold{8.0};               ///< suspect when phi >= threshold
  std::size_t window{100};             ///< inter-arrival samples kept
  /// Evaluation granularity: phi is re-evaluated this often per peer.
  Duration poll{from_millis(100)};
  /// Floor for the estimated stddev, guarding against a degenerate window.
  Duration min_stddev{from_millis(50)};
  Duration initial_delay{Duration::zero()};
};

/// Sliding-window phi estimator for one peer (exposed for unit tests).
class PhiWindow {
 public:
  explicit PhiWindow(std::size_t capacity, Duration min_stddev);

  /// Cold-start seeding (the Akka "first heartbeat estimate"): pretend the
  /// peer just spoke with a plausible cadence, so a peer that *never* speaks
  /// still accrues suspicion instead of sitting at phi = 0 forever.
  void bootstrap(TimePoint now, Duration expected_interval);

  void observe_arrival(TimePoint now);
  /// phi at time `now`; 0 while fewer than 2 arrivals are recorded.
  [[nodiscard]] double phi(TimePoint now) const;
  [[nodiscard]] std::size_t samples() const { return intervals_.size(); }
  [[nodiscard]] std::optional<TimePoint> last_arrival() const {
    return last_arrival_;
  }

 private:
  std::size_t capacity_;
  double min_stddev_s_;
  std::vector<double> intervals_;  // seconds, ring buffer
  std::size_t next_slot_{0};
  std::optional<TimePoint> last_arrival_;
};

class PhiAccrualDetector final : public core::FailureDetector {
 public:
  PhiAccrualDetector(sim::Simulation& simulation, HeartbeatNetwork& network,
                     const PhiAccrualConfig& config,
                     core::SuspicionObserver* observer = nullptr);

  void start();
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.self; }

  /// Current phi for a peer (diagnostics / tests).
  [[nodiscard]] double phi(ProcessId peer) const;

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;

 private:
  void tick();
  void poll();
  void handle(ProcessId from, const HeartbeatMessage& msg);

  sim::Simulation& sim_;
  HeartbeatNetwork& net_;
  PhiAccrualConfig config_;
  core::SuspicionObserver* observer_;
  bool crashed_{false};
  bool started_{false};
  std::uint64_t seq_{0};
  std::vector<std::uint64_t> last_seq_;
  std::vector<PhiWindow> windows_;
  std::vector<bool> suspected_;
};

}  // namespace mmrfd::baselines
