#include "baselines/heartbeat.h"

#include <cassert>

namespace mmrfd::baselines {

HeartbeatDetector::HeartbeatDetector(sim::Simulation& simulation,
                                     HeartbeatNetwork& network,
                                     const HeartbeatConfig& config,
                                     core::SuspicionObserver* observer)
    : sim_(simulation),
      net_(network),
      config_(config),
      observer_(observer),
      last_seq_(config.n, 0),
      timers_(config.n, sim::kNoEvent),
      suspected_(config.n, false) {
  assert(config_.n > 1);
  net_.set_handler(id(), [this](ProcessId from, const HeartbeatMessage& m) {
    handle(from, m);
  });
}

void HeartbeatDetector::start() {
  assert(!started_);
  started_ = true;
  sim_.schedule(config_.initial_delay, [this] {
    // Timers for every peer start with the first local tick: a peer that
    // never speaks at all will time out too.
    for (std::uint32_t i = 0; i < config_.n; ++i) {
      const ProcessId peer{i};
      if (peer != id()) arm_timer(peer);
    }
    tick();
  });
}

void HeartbeatDetector::crash() {
  crashed_ = true;
  net_.crash(id());
}

void HeartbeatDetector::tick() {
  if (crashed_) return;
  ++seq_;
  net_.broadcast(id(), HeartbeatMessage{seq_});
  sim_.schedule(config_.period, [this] { tick(); });
}

void HeartbeatDetector::handle(ProcessId from, const HeartbeatMessage& msg) {
  if (crashed_) return;
  if (msg.seq <= last_seq_[from.value]) return;  // stale
  last_seq_[from.value] = msg.seq;
  if (suspected_[from.value]) {
    suspected_[from.value] = false;
    if (observer_ != nullptr) observer_->on_cleared(from, 0);
  }
  arm_timer(from);
}

void HeartbeatDetector::arm_timer(ProcessId peer) {
  sim_.cancel(timers_[peer.value]);
  timers_[peer.value] =
      sim_.schedule(config_.timeout, [this, peer] { expire(peer); });
}

void HeartbeatDetector::expire(ProcessId peer) {
  if (crashed_) return;
  timers_[peer.value] = sim::kNoEvent;
  if (!suspected_[peer.value]) {
    suspected_[peer.value] = true;
    if (observer_ != nullptr) observer_->on_suspected(peer, 0);
  }
}

std::vector<ProcessId> HeartbeatDetector::suspected() const {
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) out.push_back(ProcessId{i});
  }
  return out;
}

bool HeartbeatDetector::is_suspected(ProcessId pid) const {
  return pid.value < suspected_.size() && suspected_[pid.value];
}

}  // namespace mmrfd::baselines
