// Timer-based baseline #1: all-to-all heartbeat with a fixed timeout.
//
// The classical practical failure detector the paper argues against: every
// Delta, each process broadcasts a heartbeat; each process arms a timeout of
// Theta per peer and suspects the peer when it expires; receipt of a fresh
// heartbeat clears the suspicion and re-arms the timer.
//
// Strengths: detection time bounded by ~Theta regardless of n. Weaknesses:
// Theta must be *guessed* — too small and slow-but-correct processes are
// suspected forever (accuracy broken under delay spikes / heavy tails), too
// large and detection is slow. Experiments E1/E3/E5 quantify this trade-off
// against the time-free detector, which has no such knob.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/types.h"
#include "core/failure_detector.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace mmrfd::baselines {

struct HeartbeatMessage {
  std::uint64_t seq{0};
  friend bool operator==(const HeartbeatMessage&,
                         const HeartbeatMessage&) = default;
};

using HeartbeatNetwork = net::Network<HeartbeatMessage>;

struct HeartbeatConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  Duration period{from_millis(1000)};   ///< Delta
  Duration timeout{from_millis(2000)};  ///< Theta
  Duration initial_delay{Duration::zero()};
};

class HeartbeatDetector final : public core::FailureDetector {
 public:
  HeartbeatDetector(sim::Simulation& simulation, HeartbeatNetwork& network,
                    const HeartbeatConfig& config,
                    core::SuspicionObserver* observer = nullptr);

  void start();
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.self; }

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;

 private:
  void tick();
  void handle(ProcessId from, const HeartbeatMessage& msg);
  void arm_timer(ProcessId peer);
  void expire(ProcessId peer);

  sim::Simulation& sim_;
  HeartbeatNetwork& net_;
  HeartbeatConfig config_;
  core::SuspicionObserver* observer_;
  bool crashed_{false};
  bool started_{false};
  std::uint64_t seq_{0};
  std::vector<std::uint64_t> last_seq_;   // highest heartbeat seen per peer
  std::vector<sim::EventId> timers_;      // pending expiry per peer
  std::vector<bool> suspected_;
};

}  // namespace mmrfd::baselines
