// Timer-based baseline #4: adaptive timeout (Chen, Toueg & Aguilera
// lineage): the next heartbeat's arrival is *predicted* from a window of
// past arrivals and the timeout fires at prediction + safety margin alpha.
//
// Adapts to drifting mean delay (unlike the fixed-Theta heartbeat) but, like
// all timer-based detectors, still requires picking alpha — the E5/E7
// experiments show the alpha trade-off mirrors the Theta trade-off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/heartbeat.h"
#include "common/types.h"
#include "core/failure_detector.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace mmrfd::baselines {

struct AdaptiveConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  Duration period{from_millis(1000)};        ///< heartbeat emission period
  Duration safety_margin{from_millis(500)};  ///< alpha
  std::size_t window{16};                    ///< arrivals used for prediction
  Duration initial_delay{Duration::zero()};
};

/// Per-peer arrival predictor (exposed for unit tests): predicts the next
/// arrival as last_arrival + mean(previous inter-arrival intervals), seeded
/// with `period` while the window is empty.
class ArrivalPredictor {
 public:
  ArrivalPredictor(std::size_t window, Duration period);

  void observe(TimePoint now);
  [[nodiscard]] std::optional<TimePoint> predicted_next() const;
  [[nodiscard]] std::size_t samples() const { return intervals_.size(); }

 private:
  std::size_t capacity_;
  double period_s_;
  std::vector<double> intervals_;  // seconds, ring buffer
  std::size_t next_slot_{0};
  std::optional<TimePoint> last_arrival_;
};

class AdaptiveDetector final : public core::FailureDetector {
 public:
  AdaptiveDetector(sim::Simulation& simulation, HeartbeatNetwork& network,
                   const AdaptiveConfig& config,
                   core::SuspicionObserver* observer = nullptr);

  void start();
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.self; }

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;

 private:
  void tick();
  void handle(ProcessId from, const HeartbeatMessage& msg);
  void arm_timer(ProcessId peer);
  void expire(ProcessId peer);

  sim::Simulation& sim_;
  HeartbeatNetwork& net_;
  AdaptiveConfig config_;
  core::SuspicionObserver* observer_;
  bool crashed_{false};
  bool started_{false};
  std::uint64_t seq_{0};
  std::vector<std::uint64_t> last_seq_;
  std::vector<ArrivalPredictor> predictors_;
  std::vector<sim::EventId> timers_;
  std::vector<bool> suspected_;
};

}  // namespace mmrfd::baselines
