#include "baselines/adaptive.h"

#include <cassert>

namespace mmrfd::baselines {

ArrivalPredictor::ArrivalPredictor(std::size_t window, Duration period)
    : capacity_(window), period_s_(to_seconds(period)) {
  assert(capacity_ >= 1);
}

void ArrivalPredictor::observe(TimePoint now) {
  if (last_arrival_) {
    const double interval = to_seconds(now - *last_arrival_);
    if (intervals_.size() < capacity_) {
      intervals_.push_back(interval);
    } else {
      intervals_[next_slot_] = interval;
      next_slot_ = (next_slot_ + 1) % capacity_;
    }
  }
  last_arrival_ = now;
}

std::optional<TimePoint> ArrivalPredictor::predicted_next() const {
  if (!last_arrival_) return std::nullopt;
  double mean = period_s_;
  if (!intervals_.empty()) {
    mean = 0.0;
    for (double x : intervals_) mean += x;
    mean /= static_cast<double>(intervals_.size());
  }
  return *last_arrival_ + from_seconds(mean);
}

AdaptiveDetector::AdaptiveDetector(sim::Simulation& simulation,
                                   HeartbeatNetwork& network,
                                   const AdaptiveConfig& config,
                                   core::SuspicionObserver* observer)
    : sim_(simulation),
      net_(network),
      config_(config),
      observer_(observer),
      last_seq_(config.n, 0),
      predictors_(config.n, ArrivalPredictor(config.window, config.period)),
      timers_(config.n, sim::kNoEvent),
      suspected_(config.n, false) {
  assert(config_.n > 1);
  net_.set_handler(id(), [this](ProcessId from, const HeartbeatMessage& m) {
    handle(from, m);
  });
}

void AdaptiveDetector::start() {
  assert(!started_);
  started_ = true;
  sim_.schedule(config_.initial_delay, [this] {
    for (std::uint32_t i = 0; i < config_.n; ++i) {
      const ProcessId peer{i};
      if (peer != id()) arm_timer(peer);
    }
    tick();
  });
}

void AdaptiveDetector::crash() {
  crashed_ = true;
  net_.crash(id());
}

void AdaptiveDetector::tick() {
  if (crashed_) return;
  ++seq_;
  net_.broadcast(id(), HeartbeatMessage{seq_});
  sim_.schedule(config_.period, [this] { tick(); });
}

void AdaptiveDetector::handle(ProcessId from, const HeartbeatMessage& msg) {
  if (crashed_) return;
  if (msg.seq <= last_seq_[from.value]) return;
  last_seq_[from.value] = msg.seq;
  predictors_[from.value].observe(sim_.now());
  if (suspected_[from.value]) {
    suspected_[from.value] = false;
    if (observer_ != nullptr) observer_->on_cleared(from, 0);
  }
  arm_timer(from);
}

void AdaptiveDetector::arm_timer(ProcessId peer) {
  sim_.cancel(timers_[peer.value]);
  const auto predicted = predictors_[peer.value].predicted_next();
  // Before any arrival the prediction is one period from now.
  const TimePoint base = predicted.value_or(sim_.now() + config_.period);
  const TimePoint expiry =
      std::max(base, sim_.now()) + config_.safety_margin;
  timers_[peer.value] =
      sim_.schedule_at(expiry, [this, peer] { expire(peer); });
}

void AdaptiveDetector::expire(ProcessId peer) {
  if (crashed_) return;
  timers_[peer.value] = sim::kNoEvent;
  if (!suspected_[peer.value]) {
    suspected_[peer.value] = true;
    if (observer_ != nullptr) observer_->on_suspected(peer, 0);
  }
}

std::vector<ProcessId> AdaptiveDetector::suspected() const {
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) out.push_back(ProcessId{i});
  }
  return out;
}

bool AdaptiveDetector::is_suspected(ProcessId pid) const {
  return pid.value < suspected_.size() && suspected_[pid.value];
}

}  // namespace mmrfd::baselines
