#include "baselines/gossip.h"

#include <algorithm>
#include <cassert>

namespace mmrfd::baselines {

GossipDetector::GossipDetector(sim::Simulation& simulation,
                               GossipNetwork& network,
                               const GossipConfig& config,
                               core::SuspicionObserver* observer)
    : sim_(simulation),
      net_(network),
      config_(config),
      observer_(observer),
      rng_(derive_seed(config.seed, "gossip", config.self.value)),
      counters_(config.n, 0),
      timers_(config.n, sim::kNoEvent),
      suspected_(config.n, false) {
  assert(config_.n > 1);
  net_.set_handler(id(), [this](ProcessId from, const GossipMessage& m) {
    handle(from, m);
  });
}

void GossipDetector::start() {
  assert(!started_);
  started_ = true;
  sim_.schedule(config_.initial_delay, [this] {
    for (std::uint32_t i = 0; i < config_.n; ++i) {
      const ProcessId peer{i};
      if (peer != id()) arm_timer(peer);
    }
    tick();
  });
}

void GossipDetector::crash() {
  crashed_ = true;
  net_.crash(id());
}

void GossipDetector::tick() {
  if (crashed_) return;
  ++counters_[id().value];
  const GossipMessage msg{counters_};
  const auto neighbors = net_.topology().neighbors(id());
  if (config_.fanout == 0 || config_.fanout >= neighbors.size()) {
    net_.broadcast(id(), msg);
  } else {
    // Sample `fanout` distinct neighbors (partial Fisher-Yates on a copy).
    std::vector<ProcessId> pool(neighbors.begin(), neighbors.end());
    for (std::uint32_t i = 0; i < config_.fanout; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng_.next_below(pool.size() - i));
      std::swap(pool[i], pool[j]);
      net_.send(id(), pool[i], msg);
    }
  }
  sim_.schedule(config_.period, [this] { tick(); });
}

void GossipDetector::handle(ProcessId from, const GossipMessage& msg) {
  (void)from;
  if (crashed_) return;
  assert(msg.counters.size() == counters_.size());
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const ProcessId peer{i};
    if (peer == id()) continue;
    if (msg.counters[i] > counters_[i]) {
      counters_[i] = msg.counters[i];
      if (suspected_[i]) {
        suspected_[i] = false;
        if (observer_ != nullptr) observer_->on_cleared(peer, 0);
      }
      arm_timer(peer);
    }
  }
}

void GossipDetector::arm_timer(ProcessId peer) {
  sim_.cancel(timers_[peer.value]);
  timers_[peer.value] =
      sim_.schedule(config_.timeout, [this, peer] { expire(peer); });
}

void GossipDetector::expire(ProcessId peer) {
  if (crashed_) return;
  timers_[peer.value] = sim::kNoEvent;
  if (!suspected_[peer.value]) {
    suspected_[peer.value] = true;
    if (observer_ != nullptr) observer_->on_suspected(peer, 0);
  }
}

std::vector<ProcessId> GossipDetector::suspected() const {
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) out.push_back(ProcessId{i});
  }
  return out;
}

bool GossipDetector::is_suspected(ProcessId pid) const {
  return pid.value < suspected_.size() && suspected_[pid.value];
}

}  // namespace mmrfd::baselines
