// Binary per-node run reports — the observability half of the live-cluster
// subsystem.
//
// Each mmrfd-node process periodically snapshots its counters and suspicion
// history to one file; the supervisor aggregates the files after the run.
// The format is write-once binary (transport::Encoder primitives) because a
// node can die by SIGKILL at any instant: writes go to a temp file renamed
// into place, so a reader sees either the previous complete snapshot or the
// next one, never a torn file. Timestamps are wall-clock nanoseconds since
// a shared origin instant the supervisor hands every node, which makes
// events comparable across processes on one host.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace mmrfd::live {

/// One suspicion transition observed by a node. `kind` mirrors
/// metrics::SuspicionEventKind (0 suspected, 1 cleared, 2 mistake).
struct ReportEvent {
  std::uint64_t when_ns{0};  ///< ns since the run origin
  std::uint32_t subject{0};
  std::uint8_t kind{0};
  std::uint64_t tag{0};

  friend bool operator==(const ReportEvent&, const ReportEvent&) = default;
};

/// Everything one node incarnation knows about its own run. Cumulative: a
/// later snapshot supersedes an earlier one at the same path.
struct NodeReport {
  // --- identity / configuration -------------------------------------------
  std::uint32_t self{0};
  std::uint32_t n{0};
  std::uint32_t f{0};
  bool delta{true};
  bool reliable{false};
  std::uint64_t pacing_ns{0};
  std::uint64_t origin_ns{0};    ///< UNIX ns all timestamps are relative to
  std::uint64_t snapshot_ns{0};  ///< write instant, ns since origin

  // --- protocol counters (transport::RealTimeStats) ------------------------
  std::uint64_t rounds{0};
  std::uint64_t full_queries_sent{0};
  std::uint64_t delta_queries_sent{0};
  std::uint64_t queries_received{0};
  std::uint64_t responses_received{0};
  std::uint64_t responses_sent{0};
  std::uint64_t need_full_sent{0};
  std::uint64_t need_full_received{0};
  std::uint64_t query_bytes_sent{0};
  std::uint64_t response_bytes_sent{0};

  // --- wire counters (UdpStats + codec + reliability layer) ----------------
  std::uint64_t datagrams_received{0};
  std::uint64_t bytes_received{0};
  std::uint64_t truncated{0};
  std::uint64_t recv_errors{0};
  std::uint64_t rcvbuf_bytes{0};
  std::uint64_t malformed{0};
  std::uint64_t retransmissions{0};
  std::uint64_t gave_up{0};
  std::uint64_t duplicates{0};

  // --- ground-truth egress (v2) --------------------------------------------
  // What actually left the socket: every datagram counts, including the
  // 13-byte reliability framing, retransmit copies and ACKs that the
  // protocol-level query/response byte counters never see.
  std::uint64_t datagrams_sent{0};
  std::uint64_t bytes_sent{0};  ///< UDP payload bytes handed to sendto()
  std::uint64_t acks_sent{0};
  std::uint64_t data_bytes_sent{0};        ///< framed DATA, first send
  std::uint64_t retransmit_bytes_sent{0};  ///< framed DATA, resends
  std::uint64_t ack_bytes_sent{0};

  // --- metrics registry snapshot (v2) --------------------------------------
  // The node's full obs::MetricsRegistry at snapshot time. The supervisor
  // merges these into the cluster-wide rollup and telemetry.jsonl series.
  obs::RegistrySnapshot metrics;

  // --- state ---------------------------------------------------------------
  std::vector<std::uint32_t> suspected;  ///< final suspected set at snapshot
  std::vector<ReportEvent> events;       ///< full transition history (LAST
                                         ///< section of the wire format)

  friend bool operator==(const NodeReport&, const NodeReport&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_report(const NodeReport& r);

/// Total decode: malformed or truncated input yields nullopt, never UB and
/// never an unbounded allocation.
[[nodiscard]] std::optional<NodeReport> decode_report(
    std::span<const std::uint8_t> data);

/// Atomic snapshot write (temp file + rename). Returns false on any I/O
/// failure; the previous snapshot at `path`, if any, survives a failure.
[[nodiscard]] bool write_report_file(const NodeReport& r,
                                     const std::string& path);

/// Reads and decodes one report file; nullopt if missing or malformed.
[[nodiscard]] std::optional<NodeReport> read_report_file(
    const std::string& path);

/// Current wall clock as UNIX nanoseconds — THE clock of the live
/// subsystem. Node event stamps and the supervisor's crash stamps must be
/// subtracted from each other, so both sides use this one helper.
[[nodiscard]] std::uint64_t wall_clock_ns();

}  // namespace mmrfd::live
