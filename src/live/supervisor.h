// live::Supervisor — fork/exec orchestration of a loopback mmrfd-node
// cluster: the piece that turns the per-process daemon into an experiment
// platform. It spawns n real OS processes, drives a crash/recovery schedule
// by SIGKILLing (and optionally re-execing) nodes at planned wall-clock
// offsets, monitors child liveness, and after the run aggregates every
// node's binary report through the existing metrics::Analysis — so live
// detection latency, false suspicions and message cost are computed by the
// same code as the simulated experiments.
//
// Crash semantics: SIGKILL is a faithful crash-stop (no flush, no goodbye);
// what survives of a victim's history is its last periodic report snapshot.
// A restart re-execs the same node id with fresh state, which is exactly
// the state-loss scenario the delta encoding's need_full resync exists for.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "live/report.h"
#include "obs/trace_assembler.h"

namespace mmrfd::live {

/// One planned fault: SIGKILL `victim` at `at` (relative to run start) and,
/// if `restart_at` is set, re-exec it with fresh state at that offset.
struct CrashEvent {
  ProcessId victim;
  Duration at{kTimeZero};
  std::optional<Duration> restart_at;
};

struct SupervisorConfig {
  std::uint32_t n{0};
  std::uint32_t f{0};
  std::uint16_t base_port{40000};
  Duration pacing{from_millis(100)};
  Duration resend{from_millis(500)};  ///< quorum-short query re-issue interval
  bool delta{true};
  bool reliable{false};
  std::uint32_t rcvbuf{0};          ///< per-node socket buffer (0 = auto)
  Duration flush{from_millis(200)}; ///< node report snapshot interval
  /// Cluster time-series sampling interval: every `telemetry`, the current
  /// per-node report files are read back and one JSONL line per decodable
  /// report is appended to <report_dir>/telemetry.jsonl. Zero disables the
  /// file (including the end-of-run final/rollup lines).
  Duration telemetry{from_millis(500)};
  std::string node_binary;          ///< empty = default_node_binary()
  std::string report_dir;           ///< created if missing

  /// Crashed-peer give-up policy (DetectorConfig::giveup_rounds).
  std::uint32_t giveup_rounds{8};
  /// Self-stabilization resync interval (DetectorConfig::resync_interval).
  std::uint32_t resync_interval{64};

  // Adversarial-channel knobs, forwarded to every node's FaultyTransport
  // (all zero = no fault layer in the stack at all).
  double fault_drop{0.0};
  double fault_dup{0.0};
  double fault_reorder{0.0};
  double fault_corrupt{0.0};
  double fault_truncate{0.0};
  std::uint64_t fault_seed{1};

  /// Cross-node causal tracing: harvest every node's flight ring at the end
  /// of the run (SIGUSR1 before SIGTERM), write a trace_manifest.txt next to
  /// the dumps, and assemble the cluster-wide timeline with skew-aligned
  /// detection-latency attribution into LiveRunResult::trace.
  bool trace{false};
  std::uint32_t trace_capacity{16384};  ///< per-node ring size when tracing
};

/// Wall-clock record of one kill actually performed.
struct LiveCrash {
  ProcessId victim;
  Duration at{kTimeZero};  ///< actual SIGKILL instant, ns since origin
  bool restarted{false};
};

/// Per-node outcome: one NodeReport per incarnation that produced one.
struct LiveNodeOutcome {
  ProcessId id;
  std::vector<NodeReport> reports;
  int spawns{0};
  bool planned_kill{false};
  std::size_t missing_reports{0};
};

struct LiveRunResult {
  Duration horizon{kTimeZero};
  std::vector<LiveNodeOutcome> nodes;
  std::vector<LiveCrash> crashes;
  std::size_t unexpected_exits{0};
  std::size_t missing_reports{0};

  // Aggregates computed by metrics::Analysis over the merged event stream.
  SampleSet detection_latencies;  ///< seconds, per (crash, correct observer)
  bool strong_completeness{false};
  std::size_t false_suspicions{0};

  // Counter totals across every report (all incarnations).
  std::uint64_t rounds{0};
  std::uint64_t full_queries_sent{0};
  std::uint64_t delta_queries_sent{0};
  std::uint64_t need_full_sent{0};
  std::uint64_t need_full_received{0};
  std::uint64_t query_bytes_sent{0};
  std::uint64_t response_bytes_sent{0};
  std::uint64_t datagrams_received{0};
  std::uint64_t truncated{0};
  std::uint64_t recv_errors{0};
  std::uint64_t malformed{0};
  std::uint64_t retransmissions{0};
  std::uint64_t gave_up{0};

  // Ground-truth egress totals (v2 reports): every datagram that left a
  // node's socket, reliability framing and retransmit copies included.
  std::uint64_t datagrams_sent{0};
  std::uint64_t wire_bytes_sent{0};
  std::uint64_t acks_sent{0};

  /// Cluster-wide obs registry: every harvested report's snapshot merged
  /// (counters summed, histogram buckets summed — percentiles over the
  /// union of all nodes' samples).
  obs::RegistrySnapshot metrics;

  /// Assembled cross-node causal timeline (SupervisorConfig::trace only):
  /// per-crash detection latencies attributed to round-pacing, resend-wait
  /// and wire time, with per-node clock-skew estimates. Also written to
  /// <report_dir>/trace_assembled.json.
  std::optional<obs::AssembledTrace> trace;

  [[nodiscard]] std::uint64_t queries_sent() const {
    return full_queries_sent + delta_queries_sent;
  }
  [[nodiscard]] double bytes_per_query() const {
    return queries_sent() > 0 ? static_cast<double>(query_bytes_sent) /
                                    static_cast<double>(queries_sent())
                              : 0.0;
  }
  /// True wire cost per query — numerator is bytes handed to sendto(), not
  /// the codec's protocol-payload accounting.
  [[nodiscard]] double wire_bytes_per_query() const {
    return queries_sent() > 0 ? static_cast<double>(wire_bytes_sent) /
                                    static_cast<double>(queries_sent())
                              : 0.0;
  }
};

/// Resolves the mmrfd-node binary: $MMRFD_NODE_BIN if set, else candidates
/// relative to this executable's directory (covering build/tests, build/bench
/// and build/src/live layouts), else "mmrfd-node" relying on PATH.
[[nodiscard]] std::string default_node_binary();

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Runs one full experiment: spawns the cluster, executes `schedule`,
  /// SIGTERM-stops everything at `horizon`, harvests and aggregates the
  /// reports. Blocking; throws std::runtime_error when the cluster cannot
  /// be spawned. Reaps every child it created before returning.
  [[nodiscard]] LiveRunResult run(const std::vector<CrashEvent>& schedule,
                                  Duration horizon);

 private:
  struct Proc {
    ProcessId id;
    pid_t pid{-1};
    bool alive{false};
    int spawns{0};
    bool planned_kill{false};
    /// Last incarnation survived to the SIGTERM shutdown, so its final
    /// report flush is expected (a SIGKILLed incarnation may legitimately
    /// have no report yet).
    bool graceful{false};
    std::vector<std::string> report_paths;  // one per incarnation
  };

  void spawn(Proc& p);
  [[nodiscard]] std::string report_path(ProcessId id, int incarnation) const;
  void aggregate(std::vector<Proc>& procs, Duration horizon,
                 LiveRunResult& result) const;
  void assemble_traces(const std::vector<Proc>& procs,
                       LiveRunResult& result) const;

  SupervisorConfig config_;
  std::string node_binary_;
  std::uint64_t origin_ns_{0};
};

}  // namespace mmrfd::live
