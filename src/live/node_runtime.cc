#include "live/node_runtime.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/argparse.h"
#include "core/failure_detector.h"
#include "live/report.h"
#include "metrics/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "transport/faulty_transport.h"
#include "transport/realtime_detector.h"
#include "transport/reliable.h"
#include "transport/typed_transport.h"
#include "transport/udp_transport.h"

namespace mmrfd::live {

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_trace = 0;

void on_signal(int) { g_stop = 1; }
void on_dump_signal(int) { g_dump_trace = 1; }

// Best-effort flight-ring flush on abnormal termination: SIGSEGV/SIGABRT
// (and friends) dump the ring in the binary format before re-raising, so
// post-mortem traces survive crashes nobody scheduled. Strictly
// async-signal-safe — open/write/close only, path pre-formatted into a
// static buffer, and dump_binary_fd takes no locks (a torn record from a
// fault mid-record() is dropped by the loader).
const obs::FlightRecorder* g_crash_recorder = nullptr;
char g_crash_trace_path[512] = {0};

void on_fatal_signal(int sig) {
  if (g_crash_recorder != nullptr && g_crash_trace_path[0] != '\0') {
    const int fd =
        ::open(g_crash_trace_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      g_crash_recorder->dump_binary_fd(fd);
      ::close(fd);
    }
  }
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

/// Collects suspicion transitions stamped with wall-clock ns since the run
/// origin. Callbacks arrive with the detector mutex held; this observer
/// only touches its own lock and never calls back into the detector.
class RecordingObserver final : public core::SuspicionObserver {
 public:
  explicit RecordingObserver(std::uint64_t origin_ns) : origin_ns_(origin_ns) {}

  void on_suspected(ProcessId subject, Tag tag) override {
    add(subject, metrics::SuspicionEventKind::kSuspected, tag);
  }
  void on_cleared(ProcessId subject, Tag tag) override {
    add(subject, metrics::SuspicionEventKind::kCleared, tag);
  }
  void on_mistake(ProcessId subject, Tag tag) override {
    add(subject, metrics::SuspicionEventKind::kMistake, tag);
  }

  [[nodiscard]] std::vector<ReportEvent> snapshot() const {
    std::lock_guard lock(mutex_);
    return events_;
  }

 private:
  void add(ProcessId subject, metrics::SuspicionEventKind kind, Tag tag) {
    const std::uint64_t now = wall_clock_ns();
    std::lock_guard lock(mutex_);
    events_.push_back(ReportEvent{now > origin_ns_ ? now - origin_ns_ : 0,
                                  subject.value,
                                  static_cast<std::uint8_t>(kind), tag});
  }

  std::uint64_t origin_ns_;
  mutable std::mutex mutex_;
  std::vector<ReportEvent> events_;
};

}  // namespace

int node_main(int argc, const char* const* argv) {
  ArgParser args(
      "mmrfd-node: one live failure-detector process on loopback UDP "
      "(spawned in numbers by live::Supervisor / exp_live)");
  args.flag("self", "0", "this process's id in [0, n)")
      .flag("n", "0", "cluster size")
      .flag("f", "0", "max crashes tolerated (quorum = n - f)")
      .flag("base-port", "39000", "UDP port of node 0 (node i binds +i)")
      .flag("pacing-ms", "100", "inter-query pacing Delta (ms)")
      .flag("resend-ms", "500",
            "re-issue a quorum-short query to silent peers at this interval")
      .flag("delta", "true", "delta-encode queries")
      .flag("reliable", "false", "stack ReliableDatagram under the codec")
      .flag("rcvbuf", "0", "socket buffer bytes (0 = auto-scale with n)")
      .flag("report", "", "binary NodeReport path (empty = no reports)")
      .flag("flush-ms", "200", "report snapshot interval (ms)")
      .flag("origin-ns", "0",
            "wall-clock origin (UNIX ns) event timestamps are relative to "
            "(0 = this process's start)")
      .flag("run-s", "0", "exit after this many seconds (0 = until SIGTERM)")
      .flag("giveup", "8",
            "crashed-peer give-up: probe peers suspected this many "
            "consecutive rounds at 1/K rate (0 = query everyone)")
      .flag("resync", "64",
            "self-stabilization resync interval in rounds (0 = off)")
      .flag("fault-drop", "0", "adversarial channel: outgoing drop rate")
      .flag("fault-dup", "0", "adversarial channel: duplicate rate")
      .flag("fault-reorder", "0", "adversarial channel: reorder rate")
      .flag("fault-corrupt", "0", "adversarial channel: byte-flip rate")
      .flag("fault-truncate", "0", "adversarial channel: truncation rate")
      .flag("fault-seed", "1", "adversarial channel RNG seed")
      .flag("trace-cap", "4096",
            "flight-recorder ring capacity (records; dump with SIGUSR1)");
  if (!args.parse(argc, argv)) return 2;

  const auto n = static_cast<std::uint32_t>(args.get_int("n"));
  const auto self = static_cast<std::uint32_t>(args.get_int("self"));
  const auto f = static_cast<std::uint32_t>(args.get_int("f"));
  if (n < 2 || self >= n || f >= n) {
    std::cerr << "mmrfd-node: need n >= 2, self < n, f < n (got n=" << n
              << " self=" << self << " f=" << f << ")\n";
    return 2;
  }
  const std::string report_path = args.get("report");
  const std::uint64_t origin_ns =
      args.get_int("origin-ns") > 0
          ? static_cast<std::uint64_t>(args.get_int("origin-ns"))
          : wall_clock_ns();

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGUSR1, on_dump_signal);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    std::signal(sig, on_fatal_signal);
  }

  // One registry shared by every layer of this process's stack, and one
  // flight recorder the detector layers trace into. Both are dumped on
  // demand (SIGUSR1) and embedded in every NodeReport snapshot.
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(
      static_cast<std::size_t>(args.get_int("trace-cap")));
  if (!report_path.empty()) {
    const std::string crash_trace = report_path + ".crash.trace";
    if (crash_trace.size() < sizeof(g_crash_trace_path)) {
      std::memcpy(g_crash_trace_path, crash_trace.c_str(),
                  crash_trace.size() + 1);
    }
  }
  g_crash_recorder = &recorder;

  transport::UdpConfig ucfg;
  ucfg.self = ProcessId{self};
  ucfg.n = n;
  ucfg.base_port = static_cast<std::uint16_t>(args.get_int("base-port"));
  ucfg.socket_buffer_bytes =
      static_cast<std::uint32_t>(args.get_int("rcvbuf"));
  ucfg.registry = &registry;
  transport::UdpTransport udp(ucfg);

  // Adversarial channel: inserted at the very bottom of the stack, so that
  // corrupted/truncated datagrams traverse everything a real damaged packet
  // would — ReliableDatagram's frame parser (when stacked) and the codec.
  transport::FaultConfig fault_cfg;
  fault_cfg.drop_rate = args.get_double("fault-drop");
  fault_cfg.duplicate_rate = args.get_double("fault-dup");
  fault_cfg.reorder_rate = args.get_double("fault-reorder");
  fault_cfg.corrupt_rate = args.get_double("fault-corrupt");
  fault_cfg.truncate_rate = args.get_double("fault-truncate");
  fault_cfg.seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  fault_cfg.registry = &registry;
  const bool faulty =
      fault_cfg.drop_rate > 0.0 || fault_cfg.duplicate_rate > 0.0 ||
      fault_cfg.reorder_rate > 0.0 || fault_cfg.corrupt_rate > 0.0 ||
      fault_cfg.truncate_rate > 0.0;
  std::optional<transport::FaultyTransport> faulty_layer;
  transport::DatagramTransport* datagrams = &udp;
  if (faulty) {
    faulty_layer.emplace(udp, fault_cfg);
    datagrams = &*faulty_layer;
  }

  const bool reliable = args.get_bool("reliable");
  std::optional<transport::ReliableDatagram> reliable_layer;
  if (reliable) {
    transport::ReliableConfig rel_cfg;
    rel_cfg.registry = &registry;
    rel_cfg.recorder = &recorder;
    reliable_layer.emplace(*datagrams, rel_cfg);
    datagrams = &*reliable_layer;
  }
  transport::TypedTransport typed(*datagrams);

  transport::RealTimeConfig rcfg;
  rcfg.detector.self = ProcessId{self};
  rcfg.detector.n = n;
  rcfg.detector.f = f;
  rcfg.detector.delta_queries = args.get_bool("delta");
  rcfg.detector.giveup_rounds =
      static_cast<std::uint32_t>(args.get_int("giveup"));
  rcfg.detector.resync_interval =
      static_cast<std::uint32_t>(args.get_int("resync"));
  rcfg.pacing = from_millis(static_cast<double>(args.get_int("pacing-ms")));
  rcfg.resend = from_millis(static_cast<double>(args.get_int("resend-ms")));
  rcfg.registry = &registry;
  rcfg.recorder = &recorder;
  transport::RealTimeDetector detector(typed, rcfg);
  RecordingObserver observer(origin_ns);
  detector.set_observer(&observer);

  try {
    detector.start();
  } catch (const std::exception& e) {
    std::cerr << "mmrfd-node " << self << ": start failed: " << e.what()
              << "\n";
    return 1;
  }

  const auto write_snapshot = [&] {
    NodeReport r;
    r.self = self;
    r.n = n;
    r.f = f;
    r.delta = rcfg.detector.delta_queries;
    r.reliable = reliable;
    r.pacing_ns = static_cast<std::uint64_t>(rcfg.pacing.count());
    r.origin_ns = origin_ns;
    const std::uint64_t now = wall_clock_ns();
    r.snapshot_ns = now > origin_ns ? now - origin_ns : 0;
    r.rounds = detector.rounds_completed();
    const transport::RealTimeStats ds = detector.stats();
    r.full_queries_sent = ds.full_queries_sent;
    r.delta_queries_sent = ds.delta_queries_sent;
    r.queries_received = ds.queries_received;
    r.responses_received = ds.responses_received;
    r.responses_sent = ds.responses_sent;
    r.need_full_sent = ds.need_full_sent;
    r.need_full_received = ds.need_full_received;
    r.query_bytes_sent = ds.query_bytes_sent;
    r.response_bytes_sent = ds.response_bytes_sent;
    const transport::UdpStats us = udp.stats();
    r.datagrams_received = us.datagrams_received;
    r.bytes_received = us.bytes_received;
    r.truncated = us.truncated;
    r.recv_errors = us.recv_errors;
    r.rcvbuf_bytes = us.rcvbuf_bytes;
    r.datagrams_sent = us.datagrams_sent;
    r.bytes_sent = us.bytes_sent;
    r.malformed = typed.malformed_count();
    if (reliable_layer) {
      const transport::ReliableStats rs = reliable_layer->stats();
      r.retransmissions = rs.retransmissions;
      r.gave_up = rs.gave_up;
      r.duplicates = rs.duplicates;
      r.acks_sent = rs.acks_sent;
      r.data_bytes_sent = rs.data_bytes_sent;
      r.retransmit_bytes_sent = rs.retransmit_bytes_sent;
      r.ack_bytes_sent = rs.ack_bytes_sent;
    }
    r.metrics = registry.snapshot();
    for (const ProcessId id : detector.suspected()) {
      r.suspected.push_back(id.value);
    }
    r.events = observer.snapshot();
    if (!write_report_file(r, report_path)) {
      std::cerr << "mmrfd-node " << self << ": cannot write report "
                << report_path << "\n";
    }
  };

  const auto started = std::chrono::steady_clock::now();
  const auto flush_every =
      std::chrono::milliseconds(args.get_int("flush-ms"));
  const auto run_for = std::chrono::seconds(args.get_int("run-s"));
  auto last_flush = started;
  // SIGUSR1 handling happens here, not in the handler: dump_to_file takes a
  // mutex and allocates, so the handler only flips an async-signal-safe flag
  // that the 20 ms poll loop (and the shutdown path) consumes.
  const std::string trace_path =
      report_path.empty() ? "" : report_path + ".trace";
  const auto maybe_dump_trace = [&] {
    if (g_dump_trace == 0) return;
    g_dump_trace = 0;
    if (trace_path.empty()) {
      recorder.dump_text(std::cerr);
    } else if (!recorder.dump_to_file(trace_path)) {
      std::cerr << "mmrfd-node " << self << ": cannot write trace "
                << trace_path << "\n";
    }
  };

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    maybe_dump_trace();
    const auto now = std::chrono::steady_clock::now();
    if (run_for.count() > 0 && now - started >= run_for) break;
    if (!report_path.empty() && now - last_flush >= flush_every) {
      write_snapshot();
      last_flush = now;
    }
  }

  detector.stop();
  maybe_dump_trace();  // a SIGUSR1 racing shutdown still gets its dump
  if (!report_path.empty()) write_snapshot();
  return 0;
}

}  // namespace mmrfd::live
