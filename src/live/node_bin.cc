// mmrfd-node — one live failure-detector process. See node_runtime.h; the
// supervisor and exp_live fork/exec this binary in numbers.
#include "live/node_runtime.h"

int main(int argc, char** argv) { return mmrfd::live::node_main(argc, argv); }
