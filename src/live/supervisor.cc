#include "live/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/log.h"
#include "metrics/analysis.h"
#include "metrics/event_log.h"
#include "sim/simulation.h"

namespace mmrfd::live {

namespace {

/// Counters-only JSON object for one telemetry line: {"name":value,...}.
/// Metric names are code-side constants ([a-z0-9._] by convention), so no
/// escaping beyond the basics is needed; anything exotic is dropped rather
/// than emitted malformed.
void append_counters_json(std::ostream& os, const obs::RegistrySnapshot& m) {
  os << '{';
  bool first = true;
  for (const obs::CounterSnapshot& c : m.counters) {
    if (c.name.find('"') != std::string::npos ||
        c.name.find('\\') != std::string::npos) {
      continue;
    }
    if (!first) os << ',';
    first = false;
    os << '"' << c.name << "\":" << c.value;
  }
  os << '}';
}

}  // namespace

std::string default_node_binary() {
  if (const char* env = std::getenv("MMRFD_NODE_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const auto dir = exe.parent_path();
    for (const char* rel :
         {"mmrfd-node", "../src/live/mmrfd-node", "../../src/live/mmrfd-node"}) {
      const auto candidate = dir / rel;
      if (std::filesystem::exists(candidate, ec)) {
        const auto canonical = std::filesystem::weakly_canonical(candidate, ec);
        return ec ? candidate.string() : canonical.string();
      }
    }
  }
  return "mmrfd-node";  // last resort: PATH
}

Supervisor::Supervisor(SupervisorConfig config) : config_(std::move(config)) {
  if (config_.n < 2 || config_.f >= config_.n) {
    throw std::invalid_argument("Supervisor: need n >= 2 and f < n");
  }
  if (config_.report_dir.empty()) {
    throw std::invalid_argument("Supervisor: report_dir is required");
  }
  node_binary_ = config_.node_binary.empty() ? default_node_binary()
                                             : config_.node_binary;
}

std::string Supervisor::report_path(ProcessId id, int incarnation) const {
  return config_.report_dir + "/node" + std::to_string(id.value) + ".g" +
         std::to_string(incarnation) + ".bin";
}

void Supervisor::spawn(Proc& p) {
  const std::string report = report_path(p.id, p.spawns);
  std::error_code ec;
  std::filesystem::remove(report, ec);  // never harvest a stale run's file
  // Same for the flight-ring dumps: a leftover node<i>.g<g>.bin.trace from a
  // previous run in the same report_dir would otherwise be stitched into this
  // run's timeline as if it were fresh.
  std::filesystem::remove(report + ".trace", ec);
  std::filesystem::remove(report + ".crash.trace", ec);

  std::vector<std::string> argstrs = {
      node_binary_,
      "--self=" + std::to_string(p.id.value),
      "--n=" + std::to_string(config_.n),
      "--f=" + std::to_string(config_.f),
      "--base-port=" + std::to_string(config_.base_port),
      "--pacing-ms=" +
          std::to_string(config_.pacing.count() / 1'000'000),
      "--delta=" + std::string(config_.delta ? "true" : "false"),
      "--reliable=" + std::string(config_.reliable ? "true" : "false"),
      "--rcvbuf=" + std::to_string(config_.rcvbuf),
      "--report=" + report,
      "--flush-ms=" + std::to_string(config_.flush.count() / 1'000'000),
      "--origin-ns=" + std::to_string(origin_ns_),
      "--resend-ms=" + std::to_string(config_.resend.count() / 1'000'000),
      "--giveup=" + std::to_string(config_.giveup_rounds),
      "--resync=" + std::to_string(config_.resync_interval),
  };
  if (config_.trace) {
    argstrs.push_back("--trace-cap=" + std::to_string(config_.trace_capacity));
  }
  if (config_.fault_drop > 0.0 || config_.fault_dup > 0.0 ||
      config_.fault_reorder > 0.0 || config_.fault_corrupt > 0.0 ||
      config_.fault_truncate > 0.0) {
    argstrs.push_back("--fault-drop=" + std::to_string(config_.fault_drop));
    argstrs.push_back("--fault-dup=" + std::to_string(config_.fault_dup));
    argstrs.push_back("--fault-reorder=" +
                      std::to_string(config_.fault_reorder));
    argstrs.push_back("--fault-corrupt=" +
                      std::to_string(config_.fault_corrupt));
    argstrs.push_back("--fault-truncate=" +
                      std::to_string(config_.fault_truncate));
    // Distinct per node (and per incarnation) so the cluster's fault
    // schedules are decorrelated yet reproducible.
    argstrs.push_back(
        "--fault-seed=" +
        std::to_string(config_.fault_seed + 1315423911ull * p.id.value +
                       static_cast<std::uint64_t>(p.spawns)));
  }
  std::vector<char*> argv;
  argv.reserve(argstrs.size() + 1);
  for (std::string& s : argstrs) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("Supervisor: fork failed");
  }
  if (pid == 0) {
    ::execv(node_binary_.c_str(), argv.data());
    _exit(127);  // exec failure: reported to the parent as an exit status
  }
  p.pid = pid;
  p.alive = true;
  ++p.spawns;
  p.report_paths.push_back(report);
}

LiveRunResult Supervisor::run(const std::vector<CrashEvent>& schedule,
                              Duration horizon) {
  std::error_code ec;
  std::filesystem::create_directories(config_.report_dir, ec);
  if (ec) {
    throw std::runtime_error("Supervisor: cannot create report dir " +
                             config_.report_dir);
  }
  for (const CrashEvent& e : schedule) {
    if (e.victim.value >= config_.n) {
      throw std::invalid_argument("Supervisor: crash victim out of range");
    }
  }

  origin_ns_ = wall_clock_ns();
  LiveRunResult result;
  result.horizon = horizon;

  std::vector<Proc> procs(config_.n);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    procs[i].id = ProcessId{i};
  }
  const auto kill_everything = [&] {
    for (Proc& p : procs) {
      if (p.alive && p.pid > 0) ::kill(p.pid, SIGKILL);
    }
    for (Proc& p : procs) {
      if (p.alive && p.pid > 0) {
        int status = 0;
        ::waitpid(p.pid, &status, 0);
        p.alive = false;
      }
    }
  };
  try {
    for (Proc& p : procs) spawn(p);
  } catch (...) {
    kill_everything();
    throw;
  }

  struct PendingCrash {
    CrashEvent event;
    bool killed{false};
    bool restarted{false};
    std::size_t crash_index{0};
  };
  std::vector<PendingCrash> pending;
  pending.reserve(schedule.size());
  for (const CrashEvent& e : schedule) pending.push_back({e, false, false, 0});

  // An exit is "unexpected" only while the run is live and the node was
  // neither SIGKILLed by the schedule nor SIGTERMed by the shutdown path.
  // Reaps strictly per-pid: a waitpid(-1) here would steal exit statuses
  // from any OTHER children the embedding process happens to have.
  const auto reap = [&] {
    for (Proc& p : procs) {
      if (!p.alive || p.pid <= 0) continue;
      int status = 0;
      if (::waitpid(p.pid, &status, WNOHANG) != p.pid) continue;
      p.alive = false;
      if (!p.planned_kill && !p.graceful) {
        ++result.unexpected_exits;
        MMRFD_LOG_WARN("live") << "node " << p.id
                               << " exited unexpectedly (status " << status
                               << ")";
      }
    }
  };

  // Cluster time series: one JSONL line per readable node report every
  // config_.telemetry. Reading the report files is pure observation — the
  // nodes keep renaming fresh snapshots into place regardless.
  const bool telemetry_on = config_.telemetry > Duration::zero();
  const std::string telemetry_path = config_.report_dir + "/telemetry.jsonl";
  if (telemetry_on) {
    std::ofstream trunc(telemetry_path, std::ios::trunc);  // fresh run
  }
  Duration last_telemetry = kTimeZero;
  const auto sample_telemetry = [&](Duration now) {
    std::ofstream os(telemetry_path, std::ios::app);
    if (!os) return;
    for (const Proc& p : procs) {
      if (p.report_paths.empty()) continue;
      const auto r = read_report_file(p.report_paths.back());
      if (!r) continue;
      os << "{\"t_ms\":" << (now.count() / 1'000'000)
         << ",\"node\":" << p.id.value << ",\"gen\":" << (p.spawns - 1)
         << ",\"final\":false,\"c\":";
      append_counters_json(os, r->metrics);
      os << "}\n";
    }
  };

  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now() - started);
  };
  // The scheduling loop can throw (a restart re-spawn hitting fork
  // exhaustion); never leak a running cluster of children past run().
  try {
  while (elapsed() < horizon) {
    reap();
    const Duration now = elapsed();
    if (telemetry_on && now - last_telemetry >= config_.telemetry) {
      sample_telemetry(now);
      last_telemetry = now;
    }
    for (PendingCrash& pc : pending) {
      if (!pc.killed && pc.event.at <= now) {
        Proc& victim = procs[pc.event.victim.value];
        victim.planned_kill = true;
        if (victim.alive && victim.pid > 0) ::kill(victim.pid, SIGKILL);
        pc.killed = true;
        // Stamp the kill in the same wall-clock frame the nodes stamp their
        // events in, so Analysis subtracts like from like.
        pc.crash_index = result.crashes.size();
        result.crashes.push_back(
            {pc.event.victim, Duration{static_cast<std::int64_t>(
                                  wall_clock_ns() - origin_ns_)},
             false});
      }
      if (pc.killed && !pc.restarted && pc.event.restart_at &&
          *pc.event.restart_at <= now) {
        Proc& victim = procs[pc.event.victim.value];
        if (!victim.alive) {
          spawn(victim);
          // The new incarnation is a regular cluster member again: if IT
          // dies (exec failure, bind failure), that must count as an
          // unexpected exit, not hide behind the earlier planned kill.
          victim.planned_kill = false;
          pc.restarted = true;
          result.crashes[pc.crash_index].restarted = true;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  } catch (...) {
    kill_everything();
    throw;
  }

  // Flight-ring harvest, strictly before SIGTERM: SIGUSR1 asks each live
  // node to dump its ring, but nodes only notice the flag on their 20 ms
  // poll — a SIGTERM sent in the same breath could win the race and the
  // dump request would die with the process. So signal, then wait (bounded)
  // for the .trace files to land.
  reap();
  if (config_.trace) {
    std::vector<std::string> expected;
    for (Proc& p : procs) {
      if (p.alive && p.pid > 0 && !p.report_paths.empty()) {
        ::kill(p.pid, SIGUSR1);
        expected.push_back(p.report_paths.back() + ".trace");
      }
    }
    const auto dump_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (std::chrono::steady_clock::now() < dump_deadline) {
      std::error_code dump_ec;
      const bool all = std::all_of(
          expected.begin(), expected.end(), [&](const std::string& f) {
            return std::filesystem::exists(f, dump_ec);
          });
      if (all) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // Graceful shutdown: SIGTERM triggers each node's final report flush.
  reap();
  for (Proc& p : procs) {
    if (p.alive && p.pid > 0) {
      p.graceful = true;
      ::kill(p.pid, SIGTERM);
    }
  }
  const auto term_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < term_deadline) {
    reap();
    if (std::none_of(procs.begin(), procs.end(),
                     [](const Proc& p) { return p.alive; })) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (Proc& p : procs) {
    if (p.alive && p.pid > 0) {
      MMRFD_LOG_WARN("live") << "node " << p.id
                             << " ignored SIGTERM; killing";
      p.graceful = false;
      ::kill(p.pid, SIGKILL);
      int status = 0;
      ::waitpid(p.pid, &status, 0);
      p.alive = false;
    }
  }

  aggregate(procs, horizon, result);
  if (config_.trace) assemble_traces(procs, result);
  return result;
}

void Supervisor::assemble_traces(const std::vector<Proc>& procs,
                                 LiveRunResult& result) const {
  namespace fs = std::filesystem;
  obs::TraceManifest manifest;
  manifest.n = config_.n;
  manifest.origin_ns = origin_ns_;
  manifest.pacing_ns = static_cast<std::uint64_t>(config_.pacing.count());
  manifest.resend_ns = static_cast<std::uint64_t>(config_.resend.count());
  for (const LiveCrash& c : result.crashes) {
    manifest.crashes.push_back({c.victim.value, c.at.count(), c.restarted});
  }
  std::error_code ec;
  for (const Proc& p : procs) {
    for (std::size_t g = 0; g < p.report_paths.size(); ++g) {
      // Prefer the SIGUSR1 dump; the fatal-signal binary dump is the
      // fallback for an incarnation that died before it could be asked.
      std::string file = p.report_paths[g] + ".trace";
      if (!fs::exists(file, ec)) {
        file = p.report_paths[g] + ".crash.trace";
        if (!fs::exists(file, ec)) continue;
      }
      manifest.traces.push_back({p.id.value, static_cast<std::uint32_t>(g),
                                 fs::path(file).filename().string()});
    }
  }
  const std::string manifest_path =
      config_.report_dir + "/" + std::string(obs::kTraceManifestName);
  if (!obs::write_manifest(manifest_path, manifest)) {
    MMRFD_LOG_WARN("live") << "cannot write " << manifest_path;
    return;
  }
  // Assemble by re-reading the manifest and dump files, not the in-memory
  // state: the supervisor exercises exactly the offline path mmrfd-trace
  // walks, so the two can never drift apart.
  result.trace = obs::assemble_from_dir(config_.report_dir);
  if (result.trace) {
    std::ofstream os(config_.report_dir + "/trace_assembled.json",
                     std::ios::trunc);
    if (os) os << obs::to_json(*result.trace) << '\n';
  } else {
    MMRFD_LOG_WARN("live") << "trace assembly failed for "
                           << config_.report_dir;
  }
}

void Supervisor::aggregate(std::vector<Proc>& procs, Duration horizon,
                           LiveRunResult& result) const {
  // Harvest: one NodeReport per incarnation file. A SIGKILLed incarnation
  // contributes its last periodic snapshot — or nothing, legitimately, if
  // it died before its first flush. Only an incarnation that survived to
  // the SIGTERM shutdown (graceful) is *required* to have a report: its
  // absence is a real aggregation failure and is counted.
  for (Proc& p : procs) {
    LiveNodeOutcome outcome;
    outcome.id = p.id;
    outcome.spawns = p.spawns;
    outcome.planned_kill = p.planned_kill;
    for (std::size_t g = 0; g < p.report_paths.size(); ++g) {
      if (auto r = read_report_file(p.report_paths[g])) {
        outcome.reports.push_back(std::move(*r));
      } else if (p.graceful && g + 1 == p.report_paths.size()) {
        ++outcome.missing_reports;
        MMRFD_LOG_WARN("live")
            << "missing/unreadable report " << p.report_paths[g];
      }
    }
    result.missing_reports += outcome.missing_reports;
    result.nodes.push_back(std::move(outcome));
  }

  // Merge every report's transition history into one time-ordered stream
  // and reuse the simulator's analysis verbatim: faulty processes (the kill
  // victims) are excluded as observers by Analysis itself.
  sim::Simulation clock_source;  // never advanced; EventLog only needs a ref
  metrics::EventLog log(clock_source);
  std::vector<metrics::SuspicionEvent> events;
  for (const LiveNodeOutcome& node : result.nodes) {
    for (const NodeReport& r : node.reports) {
      for (const ReportEvent& ev : r.events) {
        if (ev.kind > 2 || ev.subject >= config_.n) continue;
        events.push_back(metrics::SuspicionEvent{
            Duration{static_cast<std::int64_t>(ev.when_ns)}, node.id,
            ProcessId{ev.subject},
            static_cast<metrics::SuspicionEventKind>(ev.kind), ev.tag});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const metrics::SuspicionEvent& a,
                      const metrics::SuspicionEvent& b) {
                     return a.when < b.when;
                   });
  for (const metrics::SuspicionEvent& ev : events) log.append(ev);
  for (const LiveCrash& c : result.crashes) {
    log.record_crash_at(c.victim, c.at);
  }

  const metrics::Analysis analysis(log, config_.n, horizon);
  for (const metrics::Detection& d : analysis.detections()) {
    if (const auto latency = d.latency()) {
      result.detection_latencies.add(to_seconds(*latency));
    }
  }
  result.strong_completeness = analysis.strong_completeness();
  result.false_suspicions = analysis.false_suspicions().size();

  std::size_t harvested = 0;
  for (const LiveNodeOutcome& node : result.nodes) {
    for (const NodeReport& r : node.reports) {
      result.rounds += r.rounds;
      result.full_queries_sent += r.full_queries_sent;
      result.delta_queries_sent += r.delta_queries_sent;
      result.need_full_sent += r.need_full_sent;
      result.need_full_received += r.need_full_received;
      result.query_bytes_sent += r.query_bytes_sent;
      result.response_bytes_sent += r.response_bytes_sent;
      result.datagrams_received += r.datagrams_received;
      result.truncated += r.truncated;
      result.recv_errors += r.recv_errors;
      result.malformed += r.malformed;
      result.retransmissions += r.retransmissions;
      result.gave_up += r.gave_up;
      result.datagrams_sent += r.datagrams_sent;
      result.wire_bytes_sent += r.bytes_sent;
      result.acks_sent += r.acks_sent;
      result.metrics.merge(r.metrics);
      ++harvested;
    }
  }

  // Close the telemetry series: one "final" line per harvested report, then
  // a rollup line. The rollup's counters are result.metrics — the merge of
  // exactly the snapshots the final lines carry — so summing the final
  // lines' counters reproduces the rollup bit-for-bit.
  if (config_.telemetry > Duration::zero()) {
    std::ofstream os(config_.report_dir + "/telemetry.jsonl", std::ios::app);
    if (os) {
      for (const LiveNodeOutcome& node : result.nodes) {
        for (std::size_t g = 0; g < node.reports.size(); ++g) {
          const NodeReport& r = node.reports[g];
          os << "{\"t_ms\":" << (r.snapshot_ns / 1'000'000)
             << ",\"node\":" << node.id.value << ",\"gen\":" << g
             << ",\"final\":true,\"c\":";
          append_counters_json(os, r.metrics);
          os << "}\n";
        }
      }
      os << "{\"rollup\":true,\"nodes\":" << config_.n
         << ",\"reports\":" << harvested << ",\"c\":";
      append_counters_json(os, result.metrics);
      os << "}\n";
    }
  }
}

}  // namespace mmrfd::live
