#include "live/report.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "transport/codec.h"

namespace mmrfd::live {

namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'M', 'R', 'L'};
constexpr std::uint32_t kVersion = 1;

// Decode-side allocation caps. A report is trusted input in the happy path
// (we wrote it), but a SIGKILL can leave stale files from older runs and the
// supervisor must never let a garbage length field drive an allocation.
constexpr std::uint64_t kMaxSuspected = 1u << 20;
constexpr std::uint64_t kMaxEvents = 1u << 26;

}  // namespace

std::vector<std::uint8_t> encode_report(const NodeReport& r) {
  transport::Encoder e;
  for (const std::uint8_t b : kMagic) e.u8(b);
  e.u32(kVersion);
  e.u32(r.self);
  e.u32(r.n);
  e.u32(r.f);
  e.u8(r.delta ? 1 : 0);
  e.u8(r.reliable ? 1 : 0);
  e.u64(r.pacing_ns);
  e.u64(r.origin_ns);
  e.u64(r.snapshot_ns);
  e.u64(r.rounds);
  e.u64(r.full_queries_sent);
  e.u64(r.delta_queries_sent);
  e.u64(r.queries_received);
  e.u64(r.responses_received);
  e.u64(r.responses_sent);
  e.u64(r.need_full_sent);
  e.u64(r.need_full_received);
  e.u64(r.query_bytes_sent);
  e.u64(r.response_bytes_sent);
  e.u64(r.datagrams_received);
  e.u64(r.bytes_received);
  e.u64(r.truncated);
  e.u64(r.recv_errors);
  e.u64(r.rcvbuf_bytes);
  e.u64(r.malformed);
  e.u64(r.retransmissions);
  e.u64(r.gave_up);
  e.u64(r.duplicates);
  e.u32(static_cast<std::uint32_t>(r.suspected.size()));
  for (const std::uint32_t id : r.suspected) e.u32(id);
  e.u32(static_cast<std::uint32_t>(r.events.size()));
  for (const ReportEvent& ev : r.events) {
    e.u64(ev.when_ns);
    e.u32(ev.subject);
    e.u8(ev.kind);
    e.u64(ev.tag);
  }
  return e.take();
}

std::optional<NodeReport> decode_report(std::span<const std::uint8_t> data) {
  transport::Decoder d(data);
  for (const std::uint8_t b : kMagic) {
    const auto got = d.u8();
    if (!got || *got != b) return std::nullopt;
  }
  const auto version = d.u32();
  if (!version || *version != kVersion) return std::nullopt;

  NodeReport r;
  const auto u32_into = [&](std::uint32_t& out) {
    const auto v = d.u32();
    if (v) out = *v;
    return v.has_value();
  };
  const auto u64_into = [&](std::uint64_t& out) {
    const auto v = d.u64();
    if (v) out = *v;
    return v.has_value();
  };
  if (!u32_into(r.self) || !u32_into(r.n) || !u32_into(r.f)) {
    return std::nullopt;
  }
  const auto delta = d.u8();
  const auto reliable = d.u8();
  if (!delta || !reliable) return std::nullopt;
  r.delta = *delta != 0;
  r.reliable = *reliable != 0;
  for (std::uint64_t* field :
       {&r.pacing_ns, &r.origin_ns, &r.snapshot_ns, &r.rounds,
        &r.full_queries_sent, &r.delta_queries_sent, &r.queries_received,
        &r.responses_received, &r.responses_sent, &r.need_full_sent,
        &r.need_full_received, &r.query_bytes_sent, &r.response_bytes_sent,
        &r.datagrams_received, &r.bytes_received, &r.truncated,
        &r.recv_errors, &r.rcvbuf_bytes, &r.malformed, &r.retransmissions,
        &r.gave_up, &r.duplicates}) {
    if (!u64_into(*field)) return std::nullopt;
  }
  // Length fields are checked against the bytes actually present (4 per
  // suspected id, 21 per event) BEFORE reserving: a garbage count in a
  // corrupt file must fail the decode, not drive a giant allocation.
  const auto suspected_count = d.u32();
  if (!suspected_count || *suspected_count > kMaxSuspected ||
      *suspected_count > data.size() / 4) {
    return std::nullopt;
  }
  r.suspected.reserve(*suspected_count);
  for (std::uint32_t i = 0; i < *suspected_count; ++i) {
    const auto id = d.u32();
    if (!id) return std::nullopt;
    r.suspected.push_back(*id);
  }
  const auto event_count = d.u32();
  if (!event_count || *event_count > kMaxEvents ||
      *event_count > data.size() / 21) {
    return std::nullopt;
  }
  r.events.reserve(*event_count);
  for (std::uint32_t i = 0; i < *event_count; ++i) {
    ReportEvent ev;
    const auto when = d.u64();
    const auto subject = d.u32();
    const auto kind = d.u8();
    const auto tag = d.u64();
    if (!when || !subject || !kind.has_value() || !tag) return std::nullopt;
    ev.when_ns = *when;
    ev.subject = *subject;
    ev.kind = *kind;
    ev.tag = *tag;
    r.events.push_back(ev);
  }
  if (!d.exhausted()) return std::nullopt;  // trailing garbage
  return r;
}

bool write_report_file(const NodeReport& r, const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_report(r);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::uint64_t wall_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::optional<NodeReport> read_report_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (!is.good() && !is.eof()) return std::nullopt;
  return decode_report(bytes);
}

}  // namespace mmrfd::live
