#include "live/report.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "transport/codec.h"

namespace mmrfd::live {

namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'M', 'R', 'L'};
// v2: ground-truth egress counters + embedded obs::RegistrySnapshot. Node
// and supervisor always ship together, so v1 files (stale runs) are simply
// rejected rather than upgraded.
constexpr std::uint32_t kVersion = 2;

// Decode-side allocation caps. A report is trusted input in the happy path
// (we wrote it), but a SIGKILL can leave stale files from older runs and the
// supervisor must never let a garbage length field drive an allocation.
constexpr std::uint64_t kMaxSuspected = 1u << 20;
constexpr std::uint64_t kMaxEvents = 1u << 26;
constexpr std::uint64_t kMaxMetricName = 1u << 10;
constexpr std::uint64_t kMaxInstruments = 1u << 16;

void encode_name(transport::Encoder& e, const std::string& name) {
  e.u32(static_cast<std::uint32_t>(name.size()));
  for (const char c : name) e.u8(static_cast<std::uint8_t>(c));
}

std::optional<std::string> decode_name(transport::Decoder& d,
                                       std::size_t data_size) {
  const auto len = d.u32();
  if (!len || *len > kMaxMetricName || *len > data_size) return std::nullopt;
  std::string name;
  name.reserve(*len);
  for (std::uint32_t i = 0; i < *len; ++i) {
    const auto c = d.u8();
    if (!c) return std::nullopt;
    name.push_back(static_cast<char>(*c));
  }
  return name;
}

void encode_metrics(transport::Encoder& e, const obs::RegistrySnapshot& m) {
  e.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const obs::CounterSnapshot& c : m.counters) {
    encode_name(e, c.name);
    e.u64(c.value);
  }
  e.u32(static_cast<std::uint32_t>(m.gauges.size()));
  for (const obs::GaugeSnapshot& g : m.gauges) {
    encode_name(e, g.name);
    e.u64(static_cast<std::uint64_t>(g.value));  // two's-complement round-trip
  }
  e.u32(static_cast<std::uint32_t>(m.histograms.size()));
  for (const obs::HistogramSnapshot& h : m.histograms) {
    encode_name(e, h.name);
    e.u64(h.count);
    e.u64(h.sum);
    e.u32(static_cast<std::uint32_t>(h.buckets.size()));
    for (const auto& [idx, count] : h.buckets) {
      e.u32(idx);
      e.u64(count);
    }
  }
}

bool decode_metrics(transport::Decoder& d, std::size_t data_size,
                    obs::RegistrySnapshot& out) {
  const auto counter_count = d.u32();
  // Every instrument costs >= 12 encoded bytes (length + value), so a count
  // beyond data_size/12 cannot be honest; same reasoning below.
  if (!counter_count || *counter_count > kMaxInstruments ||
      *counter_count > data_size / 12) {
    return false;
  }
  out.counters.reserve(*counter_count);
  for (std::uint32_t i = 0; i < *counter_count; ++i) {
    auto name = decode_name(d, data_size);
    const auto value = d.u64();
    if (!name || !value) return false;
    out.counters.push_back({std::move(*name), *value});
  }
  const auto gauge_count = d.u32();
  if (!gauge_count || *gauge_count > kMaxInstruments ||
      *gauge_count > data_size / 12) {
    return false;
  }
  out.gauges.reserve(*gauge_count);
  for (std::uint32_t i = 0; i < *gauge_count; ++i) {
    auto name = decode_name(d, data_size);
    const auto value = d.u64();
    if (!name || !value) return false;
    out.gauges.push_back({std::move(*name), static_cast<std::int64_t>(*value)});
  }
  const auto histogram_count = d.u32();
  if (!histogram_count || *histogram_count > kMaxInstruments ||
      *histogram_count > data_size / 24) {
    return false;
  }
  out.histograms.reserve(*histogram_count);
  for (std::uint32_t i = 0; i < *histogram_count; ++i) {
    obs::HistogramSnapshot h;
    auto name = decode_name(d, data_size);
    const auto count = d.u64();
    const auto sum = d.u64();
    const auto bucket_count = d.u32();
    if (!name || !count || !sum || !bucket_count ||
        *bucket_count > obs::Histogram::kBuckets) {
      return false;
    }
    h.name = std::move(*name);
    h.count = *count;
    h.sum = *sum;
    h.buckets.reserve(*bucket_count);
    for (std::uint32_t b = 0; b < *bucket_count; ++b) {
      const auto idx = d.u32();
      const auto n = d.u64();
      if (!idx || !n || *idx >= obs::Histogram::kBuckets) return false;
      h.buckets.emplace_back(*idx, *n);
    }
    out.histograms.push_back(std::move(h));
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_report(const NodeReport& r) {
  transport::Encoder e;
  for (const std::uint8_t b : kMagic) e.u8(b);
  e.u32(kVersion);
  e.u32(r.self);
  e.u32(r.n);
  e.u32(r.f);
  e.u8(r.delta ? 1 : 0);
  e.u8(r.reliable ? 1 : 0);
  e.u64(r.pacing_ns);
  e.u64(r.origin_ns);
  e.u64(r.snapshot_ns);
  e.u64(r.rounds);
  e.u64(r.full_queries_sent);
  e.u64(r.delta_queries_sent);
  e.u64(r.queries_received);
  e.u64(r.responses_received);
  e.u64(r.responses_sent);
  e.u64(r.need_full_sent);
  e.u64(r.need_full_received);
  e.u64(r.query_bytes_sent);
  e.u64(r.response_bytes_sent);
  e.u64(r.datagrams_received);
  e.u64(r.bytes_received);
  e.u64(r.truncated);
  e.u64(r.recv_errors);
  e.u64(r.rcvbuf_bytes);
  e.u64(r.malformed);
  e.u64(r.retransmissions);
  e.u64(r.gave_up);
  e.u64(r.duplicates);
  e.u64(r.datagrams_sent);
  e.u64(r.bytes_sent);
  e.u64(r.acks_sent);
  e.u64(r.data_bytes_sent);
  e.u64(r.retransmit_bytes_sent);
  e.u64(r.ack_bytes_sent);
  encode_metrics(e, r.metrics);
  e.u32(static_cast<std::uint32_t>(r.suspected.size()));
  for (const std::uint32_t id : r.suspected) e.u32(id);
  e.u32(static_cast<std::uint32_t>(r.events.size()));
  for (const ReportEvent& ev : r.events) {
    e.u64(ev.when_ns);
    e.u32(ev.subject);
    e.u8(ev.kind);
    e.u64(ev.tag);
  }
  return e.take();
}

std::optional<NodeReport> decode_report(std::span<const std::uint8_t> data) {
  transport::Decoder d(data);
  for (const std::uint8_t b : kMagic) {
    const auto got = d.u8();
    if (!got || *got != b) return std::nullopt;
  }
  const auto version = d.u32();
  if (!version || *version != kVersion) return std::nullopt;

  NodeReport r;
  const auto u32_into = [&](std::uint32_t& out) {
    const auto v = d.u32();
    if (v) out = *v;
    return v.has_value();
  };
  const auto u64_into = [&](std::uint64_t& out) {
    const auto v = d.u64();
    if (v) out = *v;
    return v.has_value();
  };
  if (!u32_into(r.self) || !u32_into(r.n) || !u32_into(r.f)) {
    return std::nullopt;
  }
  const auto delta = d.u8();
  const auto reliable = d.u8();
  if (!delta || !reliable) return std::nullopt;
  r.delta = *delta != 0;
  r.reliable = *reliable != 0;
  for (std::uint64_t* field :
       {&r.pacing_ns, &r.origin_ns, &r.snapshot_ns, &r.rounds,
        &r.full_queries_sent, &r.delta_queries_sent, &r.queries_received,
        &r.responses_received, &r.responses_sent, &r.need_full_sent,
        &r.need_full_received, &r.query_bytes_sent, &r.response_bytes_sent,
        &r.datagrams_received, &r.bytes_received, &r.truncated,
        &r.recv_errors, &r.rcvbuf_bytes, &r.malformed, &r.retransmissions,
        &r.gave_up, &r.duplicates, &r.datagrams_sent, &r.bytes_sent,
        &r.acks_sent, &r.data_bytes_sent, &r.retransmit_bytes_sent,
        &r.ack_bytes_sent}) {
    if (!u64_into(*field)) return std::nullopt;
  }
  if (!decode_metrics(d, data.size(), r.metrics)) return std::nullopt;
  // Length fields are checked against the bytes actually present (4 per
  // suspected id, 21 per event) BEFORE reserving: a garbage count in a
  // corrupt file must fail the decode, not drive a giant allocation.
  const auto suspected_count = d.u32();
  if (!suspected_count || *suspected_count > kMaxSuspected ||
      *suspected_count > data.size() / 4) {
    return std::nullopt;
  }
  r.suspected.reserve(*suspected_count);
  for (std::uint32_t i = 0; i < *suspected_count; ++i) {
    const auto id = d.u32();
    if (!id) return std::nullopt;
    r.suspected.push_back(*id);
  }
  const auto event_count = d.u32();
  if (!event_count || *event_count > kMaxEvents ||
      *event_count > data.size() / 21) {
    return std::nullopt;
  }
  r.events.reserve(*event_count);
  for (std::uint32_t i = 0; i < *event_count; ++i) {
    ReportEvent ev;
    const auto when = d.u64();
    const auto subject = d.u32();
    const auto kind = d.u8();
    const auto tag = d.u64();
    if (!when || !subject || !kind.has_value() || !tag) return std::nullopt;
    ev.when_ns = *when;
    ev.subject = *subject;
    ev.kind = *kind;
    ev.tag = *tag;
    r.events.push_back(ev);
  }
  if (!d.exhausted()) return std::nullopt;  // trailing garbage
  return r;
}

bool write_report_file(const NodeReport& r, const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_report(r);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::uint64_t wall_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::optional<NodeReport> read_report_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (!is.good() && !is.eof()) return std::nullopt;
  return decode_report(bytes);
}

}  // namespace mmrfd::live
