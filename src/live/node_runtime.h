// The per-process detector daemon behind the mmrfd-node binary: one
// DetectorCore over UdpTransport (optionally through ReliableDatagram),
// paced by wall clock, periodically snapshotting a live::NodeReport and
// flushing a final one on SIGTERM/SIGINT or when --run-s elapses.
//
// Kept as a library entry point (rather than code in the binary) so the
// supervisor, the live experiment and the integration tests all exec the
// exact same runtime, and so argv parsing is unit-testable.
#pragma once

namespace mmrfd::live {

/// Entry point of the mmrfd-node binary. Returns the process exit code:
/// 0 clean shutdown, 1 runtime failure (e.g. port already bound), 2 bad
/// arguments. Installs SIGTERM/SIGINT handlers.
int node_main(int argc, const char* const* argv);

}  // namespace mmrfd::live
