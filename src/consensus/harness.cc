#include "consensus/harness.h"

#include <cassert>

#include "common/rng.h"

namespace mmrfd::consensus {

const char* fd_kind_name(FdKind kind) {
  switch (kind) {
    case FdKind::kPerfect:
      return "perfect";
    case FdKind::kMmr:
      return "mmr-async";
    case FdKind::kHeartbeat:
      return "heartbeat";
    case FdKind::kPhiAccrual:
      return "phi-accrual";
  }
  return "?";
}

/// Ground-truth oracle: suspects exactly the crashed processes. The ideal
/// detector no implementation can beat; the harness's control condition.
class ConsensusHarness::PerfectFd final : public core::FailureDetector {
 public:
  explicit PerfectFd(const std::vector<bool>& crashed) : crashed_(crashed) {}
  std::vector<ProcessId> suspected() const override {
    std::vector<ProcessId> out;
    for (std::uint32_t i = 0; i < crashed_.size(); ++i) {
      if (crashed_[i]) out.push_back(ProcessId{i});
    }
    return out;
  }
  bool is_suspected(ProcessId id) const override {
    return crashed_.at(id.value);
  }

 private:
  const std::vector<bool>& crashed_;
};

namespace {
std::unique_ptr<net::DelayModel> build_delays(const HarnessConfig& cfg,
                                              bool with_fast_set) {
  auto model = net::make_preset(cfg.delay_preset, cfg.mean_delay);
  if (with_fast_set) {
    auto fast = cfg.fast_set.empty()
                    ? std::vector<ProcessId>{ProcessId{0}}
                    : cfg.fast_set;
    model = std::make_unique<net::FastSetDelay>(
        std::move(model), std::move(fast), cfg.fast_factor,
        net::FastSetDelay::Scope::kBothDirections);
  }
  return model;
}
}  // namespace

ConsensusHarness::ConsensusHarness(const HarnessConfig& config)
    : config_(config), crashed_(config.n, false) {
  assert(config_.f < (config_.n + 1) / 2);  // consensus needs a majority
  Xoshiro256 stagger(derive_seed(config_.seed, "harness.stagger"));

  switch (config_.fd) {
    case FdKind::kPerfect:
      for (std::uint32_t i = 0; i < config_.n; ++i) {
        perfect_fds_.push_back(std::make_unique<PerfectFd>(crashed_));
      }
      break;
    case FdKind::kMmr: {
      mmr_net_ = std::make_unique<runtime::MmrNetwork>(
          sim_, net::Topology::full(config_.n),
          build_delays(config_, /*with_fast_set=*/true),
          derive_seed(config_.seed, "harness.mmr"));
      for (std::uint32_t i = 0; i < config_.n; ++i) {
        runtime::MmrHostConfig hc;
        hc.detector.self = ProcessId{i};
        hc.detector.n = config_.n;
        hc.detector.f = config_.f;
        hc.pacing = config_.mmr_pacing;
        hc.initial_delay = Duration(static_cast<Duration::rep>(
            stagger.next_double() *
            static_cast<double>(config_.mmr_pacing.count())));
        mmr_hosts_.push_back(
            std::make_unique<runtime::MmrHost>(sim_, *mmr_net_, hc));
      }
      break;
    }
    case FdKind::kHeartbeat:
    case FdKind::kPhiAccrual: {
      hb_net_ = std::make_unique<baselines::HeartbeatNetwork>(
          sim_, net::Topology::full(config_.n),
          build_delays(config_, /*with_fast_set=*/false),
          derive_seed(config_.seed, "harness.hb"));
      for (std::uint32_t i = 0; i < config_.n; ++i) {
        if (config_.fd == FdKind::kHeartbeat) {
          baselines::HeartbeatConfig hc;
          hc.self = ProcessId{i};
          hc.n = config_.n;
          hc.period = config_.hb_period;
          hc.timeout = config_.hb_timeout;
          hc.initial_delay = Duration(static_cast<Duration::rep>(
              stagger.next_double() *
              static_cast<double>(config_.hb_period.count())));
          hb_detectors_.push_back(std::make_unique<baselines::HeartbeatDetector>(
              sim_, *hb_net_, hc));
        } else {
          baselines::PhiAccrualConfig pc;
          pc.self = ProcessId{i};
          pc.n = config_.n;
          pc.period = config_.hb_period;
          pc.threshold = config_.phi_threshold;
          pc.poll = config_.hb_period / 4;
          pc.initial_delay = Duration(static_cast<Duration::rep>(
              stagger.next_double() *
              static_cast<double>(config_.hb_period.count())));
          phi_detectors_.push_back(
              std::make_unique<baselines::PhiAccrualDetector>(sim_, *hb_net_,
                                                              pc));
        }
      }
      break;
    }
  }

  cons_net_ = std::make_unique<ConsensusNetwork>(
      sim_, net::Topology::full(config_.n),
      net::make_preset(config_.delay_preset, config_.mean_delay),
      derive_seed(config_.seed, "harness.consensus"));
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    ConsensusConfig cc;
    cc.self = ProcessId{i};
    cc.n = config_.n;
    cons_transports_.push_back(std::make_unique<NetworkConsensusTransport>(
        *cons_net_, ProcessId{i}));
    procs_.push_back(std::make_unique<ConsensusProcess>(
        sim_, *cons_transports_[i], cc, fd_for(ProcessId{i})));
    cons_transports_[i]->attach(*procs_[i]);
  }
}

ConsensusHarness::~ConsensusHarness() = default;

const core::FailureDetector& ConsensusHarness::fd_for(ProcessId id) const {
  switch (config_.fd) {
    case FdKind::kPerfect:
      return *perfect_fds_.at(id.value);
    case FdKind::kMmr:
      return mmr_hosts_.at(id.value)->detector();
    case FdKind::kHeartbeat:
      return *hb_detectors_.at(id.value);
    case FdKind::kPhiAccrual:
      return *phi_detectors_.at(id.value);
  }
  __builtin_unreachable();
}

bool ConsensusHarness::is_crashed(ProcessId id) const {
  return crashed_.at(id.value);
}

void ConsensusHarness::crash_everything(ProcessId id) {
  if (crashed_[id.value]) return;
  crashed_[id.value] = true;
  switch (config_.fd) {
    case FdKind::kPerfect:
      break;
    case FdKind::kMmr:
      mmr_hosts_[id.value]->crash();
      break;
    case FdKind::kHeartbeat:
      hb_detectors_[id.value]->crash();
      break;
    case FdKind::kPhiAccrual:
      phi_detectors_[id.value]->crash();
      break;
  }
  procs_[id.value]->crash();
  cons_net_->crash(id);
}

void ConsensusHarness::start(std::span<const Value> proposals,
                             const runtime::CrashPlan& plan) {
  assert(!started_);
  assert(proposals.size() == config_.n);
  started_ = true;
  for (auto& h : mmr_hosts_) h->start();
  for (auto& d : hb_detectors_) d->start();
  for (auto& d : phi_detectors_) d->start();
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    procs_[i]->propose(proposals[i]);
  }
  for (const auto& e : plan.entries) {
    sim_.schedule_at(e.when,
                     [this, victim = e.victim] { crash_everything(victim); });
  }
}

bool ConsensusHarness::run_until_decided(Duration deadline) {
  const TimePoint limit = sim_.now() + deadline;
  // Poll in slices so we stop as soon as everyone decided.
  while (sim_.now() < limit && !all_correct_decided()) {
    sim_.run_until(std::min(limit, sim_.now() + from_millis(50)));
  }
  return all_correct_decided();
}

bool ConsensusHarness::all_correct_decided() const {
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (!is_crashed(ProcessId{i}) && !procs_[i]->decided()) return false;
  }
  return true;
}

std::optional<Value> ConsensusHarness::agreed_value() const {
  std::optional<Value> agreed;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const auto& p = *procs_[i];
    if (!p.decided()) {
      if (!is_crashed(ProcessId{i})) return std::nullopt;
      continue;
    }
    if (agreed && *agreed != p.decision()) return std::nullopt;  // violation!
    agreed = p.decision();
  }
  return agreed;
}

Round ConsensusHarness::max_round() const {
  Round r = 0;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (!is_crashed(ProcessId{i})) r = std::max(r, procs_[i]->round());
  }
  return r;
}

std::optional<TimePoint> ConsensusHarness::last_decision_at() const {
  std::optional<TimePoint> last;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (is_crashed(ProcessId{i})) continue;
    const auto t = procs_[i]->decided_at();
    if (!t) return std::nullopt;
    last = last ? std::max(*last, *t) : *t;
  }
  return last;
}

}  // namespace mmrfd::consensus
