#include "consensus/chandra_toueg.h"

#include <cassert>

namespace mmrfd::consensus {

void NetworkConsensusTransport::attach(ConsensusProcess& process) {
  net_.set_handler(self_,
                   [&process](ProcessId from, const ConsensusMessage& m) {
                     process.deliver(from, m);
                   });
}

ConsensusProcess::ConsensusProcess(sim::Simulation& simulation,
                                   ConsensusTransport& transport,
                                   const ConsensusConfig& config,
                                   const core::FailureDetector& fd)
    : sim_(simulation), transport_(transport), config_(config), fd_(fd) {
  assert(config_.n > 1);
}

void ConsensusProcess::propose(Value v) {
  assert(!started_);
  started_ = true;
  estimate_ = v;
  estimate_ts_ = 0;
  enter_round(1);
  poll();
}

void ConsensusProcess::crash() { crashed_ = true; }

void ConsensusProcess::send(ProcessId to, ConsensusMessage msg) {
  if (to == id()) {
    // Local delivery: the coordinator is also a participant; its own
    // messages must not traverse the network (and must not be lost).
    deliver(id(), msg);
  } else {
    transport_.send(to, std::move(msg));
  }
}

void ConsensusProcess::broadcast_all(const ConsensusMessage& msg) {
  transport_.broadcast(msg);
  deliver(id(), msg);
}

void ConsensusProcess::enter_round(Round r) {
  // Phase/round must be updated *before* the send: when this process is the
  // round's coordinator the estimate is delivered to itself synchronously
  // and re-enters evaluate().
  round_ = r;
  phase_ = Phase::kWaitProposal;
  // Phase 1: send the current estimate to the round's coordinator.
  send(coordinator(r), EstimateMessage{r, estimate_, estimate_ts_});
  evaluate();
}

ConsensusProcess::~ConsensusProcess() { sim_.cancel(poll_event_); }

void ConsensusProcess::poll() {
  if (crashed_ || phase_ == Phase::kDone) return;
  evaluate();
  poll_event_ = sim_.schedule(config_.fd_poll, [this] { poll(); });
}

void ConsensusProcess::evaluate() {
  // Pre-propose (round_ == 0): messages are only buffered; there is no
  // current round to make progress on.
  if (!started_ || crashed_ || phase_ == Phase::kDone) return;

  // Coordinator's phase 2: a majority of estimates for the current round
  // lets it propose. (Checked regardless of phase_: the coordinator is
  // concurrently a participant in kWaitProposal.)
  if (coordinator(round_) == id()) {
    if (auto it = estimates_.find(round_);
        it != estimates_.end() && it->second.size() >= majority() &&
        proposals_.find(round_) == proposals_.end()) {
      const EstimateMessage* best = nullptr;
      for (const auto& e : it->second) {
        if (best == nullptr || e.ts > best->ts) best = &e;
      }
      broadcast_all(ProposalMessage{round_, best->value});
    }
  }

  if (phase_ == Phase::kWaitProposal) {
    // Phase 3: proposal, or suspicion of the coordinator. The phase is
    // advanced *before* any send: sends to self are delivered synchronously
    // and re-enter evaluate(), which must not re-run this block.
    if (auto it = proposals_.find(round_); it != proposals_.end()) {
      estimate_ = it->second.value;
      estimate_ts_ = round_;
      const Round r = round_;
      if (coordinator(r) == id()) {
        phase_ = Phase::kWaitAcks;
        send(id(), AckMessage{r, true});
      } else {
        send(coordinator(r), AckMessage{r, true});
        enter_round(r + 1);
      }
    } else if (coordinator(round_) != id() &&
               fd_.is_suspected(coordinator(round_))) {
      const Round r = round_;
      send(coordinator(r), AckMessage{r, false});
      enter_round(r + 1);
    }
    return;
  }

  if (phase_ == Phase::kWaitAcks) {
    // Phase 4 (coordinator of the *previous* logical step — round_ still
    // names the round whose acks are awaited).
    auto [ack, nack] = acks_[round_];
    if (ack >= majority()) {
      // The coordinator executed phase 3 itself before entering kWaitAcks,
      // so estimate_ holds the round's proposal.
      broadcast_all(DecideMessage{estimate_});
      return;
    }
    if (nack > 0 && ack + nack >= majority()) {
      enter_round(round_ + 1);
    }
  }
}

void ConsensusProcess::deliver(ProcessId from, const ConsensusMessage& msg) {
  (void)from;
  if (crashed_ || phase_ == Phase::kDone) return;

  if (const auto* e = std::get_if<EstimateMessage>(&msg)) {
    estimates_[e->round].push_back(*e);
  } else if (const auto* p = std::get_if<ProposalMessage>(&msg)) {
    proposals_.emplace(p->round, *p);
  } else if (const auto* a = std::get_if<AckMessage>(&msg)) {
    auto& [ack, nack] = acks_[a->round];
    if (a->ack) {
      ++ack;
    } else {
      ++nack;
    }
  } else if (const auto* d = std::get_if<DecideMessage>(&msg)) {
    decide(d->value);
    return;
  }
  evaluate();
}

void ConsensusProcess::decide(Value v) {
  if (decision_) return;
  decision_ = v;
  decided_at_ = sim_.now();
  phase_ = Phase::kDone;
  // Reliable-broadcast echo: forward the decision once so every correct
  // process decides even if the original sender crashed mid-broadcast.
  transport_.broadcast(DecideMessage{v});
}

}  // namespace mmrfd::consensus
