#include "consensus/replicated_log.h"

#include <algorithm>
#include <cassert>

namespace mmrfd::consensus {

ReplicatedLog::ReplicatedLog(sim::Simulation& simulation, LogNetwork& network,
                             const ReplicatedLogConfig& config,
                             const core::FailureDetector& fd)
    : sim_(simulation), net_(network), config_(config), fd_(fd) {
  assert(config_.n > 1);
  net_.set_handler(id(), [this](ProcessId from, const LogMessage& msg) {
    handle(from, msg);
  });
}

void ReplicatedLog::start() {
  assert(!started_);
  started_ = true;
  propose_current();
  poll();
}

void ReplicatedLog::submit(Value command) {
  assert(command != kNoop);
  if (crashed_) return;
  pending_.push_back(command);
  // If the current instance is already running it keeps its (possibly no-op)
  // proposal — the command rides the next instance. Re-proposing mid-
  // instance would violate consensus validity bookkeeping.
}

void ReplicatedLog::crash() {
  crashed_ = true;
  net_.crash(id());
  for (auto& [slot, inst] : instances_) inst.process->crash();
}

ReplicatedLog::Instance& ReplicatedLog::ensure_instance(Slot slot) {
  auto it = instances_.find(slot);
  if (it != instances_.end()) return it->second;
  Instance inst;
  inst.transport = std::make_unique<SlotTransport>(*this, slot);
  ConsensusConfig cc;
  cc.self = config_.self;
  cc.n = config_.n;
  cc.fd_poll = config_.poll;
  // Fair leadership: slot k starts with coordinator (k - 1) mod n.
  cc.coordinator_offset = static_cast<std::uint32_t>((slot - 1) % config_.n);
  inst.process = std::make_unique<ConsensusProcess>(sim_, *inst.transport, cc,
                                                    fd_);
  return instances_.emplace(slot, std::move(inst)).first->second;
}

void ReplicatedLog::propose_current() {
  auto& inst = ensure_instance(next_slot_);
  const Value proposal = pending_.empty() ? kNoop : pending_.front();
  inst.process->propose(proposal);
}

void ReplicatedLog::handle(ProcessId from, const LogMessage& msg) {
  if (crashed_) return;
  // Deliveries for already-decided slots are stale (we have the value);
  // deliveries for future slots are buffered inside their instance.
  if (msg.slot < next_slot_) return;
  ensure_instance(msg.slot).process->deliver(from, msg.inner);
}

void ReplicatedLog::poll() {
  if (crashed_) return;
  // Advance through every decided instance (a decision may cascade: the
  // next instance may already have buffered a DECIDE).
  while (true) {
    auto it = instances_.find(next_slot_);
    if (it == instances_.end() || !it->second.process->decided()) break;
    const Value decided = it->second.process->decision();
    log_.push_back(decided);
    if (decided != kNoop) {
      const auto pos = std::find(pending_.begin(), pending_.end(), decided);
      if (pos != pending_.end()) pending_.erase(pos);
    }
    instances_.erase(it);  // the slot is sealed; drop the machinery
    ++next_slot_;
    if (started_ && !crashed_) propose_current();
  }
  sim_.schedule(config_.poll, [this] { poll(); });
}

}  // namespace mmrfd::consensus
