// ConsensusHarness — one simulation containing a complete failure-detector
// deployment (asynchronous MMR, a timer-based baseline, or a perfect oracle)
// plus n Chandra-Toueg consensus processes consuming those detectors.
// Used by the consensus integration tests and experiment E6.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "baselines/heartbeat.h"
#include "baselines/phi_accrual.h"
#include "consensus/chandra_toueg.h"
#include "core/failure_detector.h"
#include "net/delay_model.h"
#include "runtime/crash_plan.h"
#include "runtime/mmr_host.h"
#include "sim/simulation.h"

namespace mmrfd::consensus {

enum class FdKind {
  kPerfect,    ///< oracle: suspects exactly the crashed (ground truth)
  kMmr,        ///< the paper's asynchronous query-response detector
  kHeartbeat,  ///< fixed-timeout heartbeat baseline
  kPhiAccrual, ///< accrual baseline
};

const char* fd_kind_name(FdKind kind);

struct HarnessConfig {
  std::uint32_t n{5};
  std::uint32_t f{2};  ///< must satisfy f < n/2 for consensus
  std::uint64_t seed{1};
  FdKind fd{FdKind::kMmr};

  Duration mean_delay{from_millis(1)};
  net::DelayPreset delay_preset{net::DelayPreset::kExponential};

  // MMR knobs.
  Duration mmr_pacing{from_millis(50)};
  std::vector<ProcessId> fast_set;  ///< empty = {p0}; engineered MP witness
  double fast_factor{0.1};

  // Baseline knobs.
  Duration hb_period{from_millis(50)};
  Duration hb_timeout{from_millis(200)};
  double phi_threshold{8.0};
};

class ConsensusHarness {
 public:
  explicit ConsensusHarness(const HarnessConfig& config);
  ~ConsensusHarness();

  /// Starts detectors, schedules crashes, and makes every process propose
  /// proposals[i] (proposals.size() == n). Call once.
  void start(std::span<const Value> proposals,
             const runtime::CrashPlan& plan = runtime::CrashPlan::none());

  /// Runs until every non-crashed process decided or `deadline` virtual
  /// time elapsed; returns true iff all correct processes decided.
  bool run_until_decided(Duration deadline);

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] const ConsensusProcess& process(ProcessId id) const {
    return *procs_.at(id.value);
  }
  [[nodiscard]] bool all_correct_decided() const;
  /// The decided values of the correct processes (empty optional if any
  /// is undecided).
  [[nodiscard]] std::optional<Value> agreed_value() const;
  /// Largest round number reached by any correct process.
  [[nodiscard]] Round max_round() const;
  /// Virtual time when the *last* correct process decided.
  [[nodiscard]] std::optional<TimePoint> last_decision_at() const;

 private:
  class PerfectFd;

  [[nodiscard]] const core::FailureDetector& fd_for(ProcessId id) const;
  [[nodiscard]] bool is_crashed(ProcessId id) const;
  void crash_everything(ProcessId id);

  HarnessConfig config_;
  sim::Simulation sim_;

  std::vector<bool> crashed_;
  std::vector<std::unique_ptr<PerfectFd>> perfect_fds_;

  std::unique_ptr<runtime::MmrNetwork> mmr_net_;
  std::vector<std::unique_ptr<runtime::MmrHost>> mmr_hosts_;

  std::unique_ptr<baselines::HeartbeatNetwork> hb_net_;
  std::vector<std::unique_ptr<baselines::HeartbeatDetector>> hb_detectors_;
  std::vector<std::unique_ptr<baselines::PhiAccrualDetector>> phi_detectors_;

  std::unique_ptr<ConsensusNetwork> cons_net_;
  std::vector<std::unique_ptr<NetworkConsensusTransport>> cons_transports_;
  std::vector<std::unique_ptr<ConsensusProcess>> procs_;
  bool started_{false};
};

}  // namespace mmrfd::consensus
