// ReplicatedLog — repeated consensus / total-order broadcast on top of the
// Chandra-Toueg protocol: the application shape (state-machine replication)
// that failure detectors ultimately exist to enable.
//
// Consensus instances are numbered 1, 2, ...; instance k chooses log slot k.
// Each process proposes its oldest unchosen client command (or a no-op when
// it has none) and starts instance k + 1 once k decides. Messages carry the
// instance number (LogMessage wraps ConsensusMessage); instances created on
// demand buffer early-arriving messages until the local log catches up.
//
// Guarantees (tested in tests/consensus/replicated_log_test.cc):
//   * total order — correct processes' logs are prefixes of one another and
//     eventually equal;
//   * integrity — every decided slot holds a no-op or a submitted command,
//     and no command appears twice;
//   * liveness — with a <>S-quality detector and a correct majority, every
//     command submitted by a correct process is eventually decided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "consensus/chandra_toueg.h"
#include "core/failure_detector.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace mmrfd::consensus {

/// Slot number in the replicated log (== consensus instance number).
using Slot = std::uint64_t;

/// The no-op filler proposed when a process has no pending command.
inline constexpr Value kNoop = 0;

/// Builds a globally unique command id (client commands must be nonzero and
/// unique; encode the submitter in the high bits).
[[nodiscard]] constexpr Value make_command(ProcessId submitter,
                                           std::uint32_t local_seq) {
  return (static_cast<Value>(submitter.value) << 32) | (local_seq + 1);
}

struct LogMessage {
  Slot slot{0};
  ConsensusMessage inner;
};

using LogNetwork = net::Network<LogMessage>;

struct ReplicatedLogConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  /// Decision/FD polling cadence.
  Duration poll{from_millis(10)};
};

class ReplicatedLog {
 public:
  ReplicatedLog(sim::Simulation& simulation, LogNetwork& network,
                const ReplicatedLogConfig& config,
                const core::FailureDetector& fd);

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;

  /// Starts instance 1. Call once.
  void start();

  /// Enqueues a client command (must be nonzero; use make_command). The
  /// command is proposed until it occupies a log slot.
  void submit(Value command);

  /// Crash-stop: silences this replica.
  void crash();

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.self; }
  /// The decided prefix (slot k at index k - 1). No-ops included.
  [[nodiscard]] const std::vector<Value>& log() const { return log_; }
  /// Commands submitted here and not yet decided anywhere visible.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] Slot next_slot() const { return next_slot_; }

 private:
  /// Per-instance fan-out: tags outgoing messages with the slot number.
  class SlotTransport final : public ConsensusTransport {
   public:
    SlotTransport(ReplicatedLog& owner, Slot slot)
        : owner_(owner), slot_(slot) {}
    void send(ProcessId to, ConsensusMessage msg) override {
      owner_.net_.send(owner_.id(), to, LogMessage{slot_, std::move(msg)});
    }
    void broadcast(const ConsensusMessage& msg) override {
      owner_.net_.broadcast(owner_.id(), LogMessage{slot_, msg});
    }

   private:
    ReplicatedLog& owner_;
    Slot slot_;
  };

  struct Instance {
    std::unique_ptr<SlotTransport> transport;
    std::unique_ptr<ConsensusProcess> process;
  };

  void handle(ProcessId from, const LogMessage& msg);
  Instance& ensure_instance(Slot slot);
  void propose_current();
  void poll();

  sim::Simulation& sim_;
  LogNetwork& net_;
  ReplicatedLogConfig config_;
  const core::FailureDetector& fd_;

  bool started_{false};
  bool crashed_{false};
  Slot next_slot_{1};  ///< the instance currently being decided
  std::vector<Value> log_;
  std::deque<Value> pending_;
  std::map<Slot, Instance> instances_;
};

}  // namespace mmrfd::consensus
