// Chandra-Toueg <>S consensus (rotating coordinator, f < n/2).
//
// The reason failure detectors of class <>S matter: consensus is impossible
// in a pure asynchronous system with even one crash (FLP), but becomes
// solvable when each process is equipped with a <>S detector and a majority
// of processes is correct. This module implements the classic protocol so
// experiment E6 can measure, end-to-end, what the asynchronous detector buys
// a real agreement task compared with the timer-based baselines.
//
// Round r (1-based), coordinator c = (r - 1) mod n:
//   Phase 1  every process sends its current (estimate, ts) to c.
//   Phase 2  c collects a majority of estimates, adopts one with maximal ts
//            and broadcasts it as the round's proposal.
//   Phase 3  every process waits until it receives c's proposal (then adopts
//            it, ts := r, replies ACK) or its failure detector suspects c
//            (then replies NACK); either way it advances to round r + 1.
//   Phase 4  c collects a majority of replies; if they are all ACKs it
//            reliably broadcasts DECIDE(v). Any NACK sends c to round r + 1.
//   Decision on first receipt of DECIDE(v): re-broadcast it (the reliable-
//            broadcast echo), decide v, stop.
//
// Safety (validity + agreement) holds regardless of the detector's output;
// termination needs <>S-quality output — which is exactly what the MP
// property gives the asynchronous detector.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.h"
#include "core/failure_detector.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace mmrfd::consensus {

using Value = std::uint64_t;
using Round = std::uint64_t;

struct EstimateMessage {
  Round round{0};
  Value value{0};
  Round ts{0};  ///< round in which the estimate was last adopted; 0 = never
  friend bool operator==(const EstimateMessage&,
                         const EstimateMessage&) = default;
};

struct ProposalMessage {
  Round round{0};
  Value value{0};
  friend bool operator==(const ProposalMessage&,
                         const ProposalMessage&) = default;
};

struct AckMessage {
  Round round{0};
  bool ack{true};
  friend bool operator==(const AckMessage&, const AckMessage&) = default;
};

struct DecideMessage {
  Value value{0};
  friend bool operator==(const DecideMessage&, const DecideMessage&) = default;
};

using ConsensusMessage =
    std::variant<EstimateMessage, ProposalMessage, AckMessage, DecideMessage>;
using ConsensusNetwork = net::Network<ConsensusMessage>;

/// How a ConsensusProcess reaches its peers. Decoupled from the concrete
/// network so instances can be multiplexed (the replicated log tags each
/// message with an instance number).
class ConsensusTransport {
 public:
  virtual ~ConsensusTransport() = default;
  virtual void send(ProcessId to, ConsensusMessage msg) = 0;
  /// To every *other* process (self-delivery is the process's own concern).
  virtual void broadcast(const ConsensusMessage& msg) = 0;
};

/// Adapter binding a ConsensusProcess directly to a ConsensusNetwork
/// (single-instance deployments: the harness, the consensus tests).
class NetworkConsensusTransport final : public ConsensusTransport {
 public:
  NetworkConsensusTransport(ConsensusNetwork& network, ProcessId self)
      : net_(network), self_(self) {}

  /// Routes the network's deliveries for `self` into `process`.
  void attach(class ConsensusProcess& process);

  void send(ProcessId to, ConsensusMessage msg) override {
    net_.send(self_, to, std::move(msg));
  }
  void broadcast(const ConsensusMessage& msg) override {
    net_.broadcast(self_, msg);
  }

 private:
  ConsensusNetwork& net_;
  ProcessId self_;
};

struct ConsensusConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  /// How often the phase-3 "do I suspect the coordinator?" condition is
  /// re-evaluated (the FD is a passive oracle; it must be polled).
  Duration fd_poll{from_millis(10)};
  /// Rotates the coordinator schedule: round r's coordinator is
  /// (coordinator_offset + r - 1) mod n. The replicated log sets this to
  /// the slot number so leadership (and thus whose proposal round 1 favours)
  /// round-robins across slots — otherwise p0 would win every slot.
  std::uint32_t coordinator_offset{0};
};

class ConsensusProcess {
 public:
  ConsensusProcess(sim::Simulation& simulation, ConsensusTransport& transport,
                   const ConsensusConfig& config,
                   const core::FailureDetector& fd);

  ConsensusProcess(const ConsensusProcess&) = delete;
  ConsensusProcess& operator=(const ConsensusProcess&) = delete;
  /// Cancels the pending FD-poll event so the owner may destroy decided
  /// instances (the replicated log seals slots).
  ~ConsensusProcess();

  /// Proposes `v` and starts executing. Call once. Messages received before
  /// propose() are buffered.
  void propose(Value v);

  /// Feeds an incoming message (the transport/owner routes deliveries here).
  void deliver(ProcessId from, const ConsensusMessage& msg);

  /// Crash-stop. The owner silences the underlying network separately.
  void crash();

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ProcessId id() const { return config_.self; }
  [[nodiscard]] bool decided() const { return decision_.has_value(); }
  [[nodiscard]] Value decision() const { return *decision_; }
  [[nodiscard]] std::optional<TimePoint> decided_at() const {
    return decided_at_;
  }
  [[nodiscard]] Round round() const { return round_; }

 private:
  enum class Phase { kIdle, kWaitProposal, kWaitAcks, kDone };

  [[nodiscard]] ProcessId coordinator(Round r) const {
    return ProcessId{static_cast<std::uint32_t>(
        (config_.coordinator_offset + r - 1) % config_.n)};
  }
  [[nodiscard]] std::uint32_t majority() const { return config_.n / 2 + 1; }

  void enter_round(Round r);
  void evaluate();  ///< re-checks the current phase's wait condition
  void poll();
  void send(ProcessId to, ConsensusMessage msg);
  void broadcast_all(const ConsensusMessage& msg);
  void decide(Value v);

  sim::Simulation& sim_;
  ConsensusTransport& transport_;
  ConsensusConfig config_;
  const core::FailureDetector& fd_;

  bool started_{false};
  bool crashed_{false};
  sim::EventId poll_event_{sim::kNoEvent};
  Phase phase_{Phase::kIdle};
  Round round_{0};
  Value estimate_{0};
  Round estimate_ts_{0};
  std::optional<Value> decision_;
  std::optional<TimePoint> decided_at_;

  // Buffered messages, keyed by round (messages may arrive ahead of the
  // receiver's round).
  std::map<Round, std::vector<EstimateMessage>> estimates_;
  std::map<Round, ProposalMessage> proposals_;
  std::map<Round, std::pair<std::uint32_t, std::uint32_t>> acks_;  // (ack, nack)
};

}  // namespace mmrfd::consensus
