// Aligned plain-text table printer — every experiment binary reports its
// rows through this so outputs are uniform and greppable; optional CSV
// emission for plotting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mmrfd::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 3);
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmrfd::metrics
