#include "metrics/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace mmrfd::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }
std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace mmrfd::metrics
