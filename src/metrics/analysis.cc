#include "metrics/analysis.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace mmrfd::metrics {

Analysis::Analysis(const EventLog& log, std::uint32_t n, TimePoint horizon)
    : log_(log), n_(n), horizon_(horizon) {}

std::optional<TimePoint> Analysis::crash_time(ProcessId id) const {
  for (const auto& c : log_.crashes()) {
    if (c.subject == id) return c.when;
  }
  return std::nullopt;
}

std::vector<ProcessId> Analysis::correct() const {
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (!crash_time(ProcessId{i})) out.push_back(ProcessId{i});
  }
  return out;
}

std::vector<ProcessId> Analysis::faulty() const {
  std::vector<ProcessId> out;
  for (const auto& c : log_.crashes()) out.push_back(c.subject);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Detection> Analysis::detections() const {
  // One pass over the log builds the *final* suspicion interval per
  // (observer, subject): last kSuspected with no later kCleared. The seed
  // implementation re-scanned the whole log per (crash, observer) pair —
  // O(crashes * observers * events), which at n = 1000 with f/2 crashes is
  // ~10^10 event visits and dominated entire large-n sweeps.
  std::unordered_map<std::uint64_t, TimePoint> last_suspected;
  const auto key = [](ProcessId obs, ProcessId subj) {
    return (static_cast<std::uint64_t>(obs.value) << 32) | subj.value;
  };
  for (const auto& e : log_.events()) {
    if (e.kind == SuspicionEventKind::kSuspected) {
      last_suspected[key(e.observer, e.subject)] = e.when;
    } else if (e.kind == SuspicionEventKind::kCleared) {
      last_suspected.erase(key(e.observer, e.subject));
    }
  }
  std::vector<Detection> out;
  const auto correct_set = correct();
  out.reserve(log_.crashes().size() * correct_set.size());
  for (const auto& c : log_.crashes()) {
    for (ProcessId obs : correct_set) {
      Detection d;
      d.observer = obs;
      d.subject = c.subject;
      d.crash_at = c.when;
      if (auto it = last_suspected.find(key(obs, c.subject));
          it != last_suspected.end()) {
        d.detected_at = it->second;
      }
      out.push_back(std::move(d));
    }
  }
  return out;
}

std::vector<CrashDetectionSummary> Analysis::crash_summaries() const {
  std::vector<CrashDetectionSummary> out;
  const auto all = detections();
  for (const auto& c : log_.crashes()) {
    CrashDetectionSummary s;
    s.subject = c.subject;
    s.crash_at = c.when;
    std::optional<Duration> worst;
    bool all_detected = true;
    for (const auto& d : all) {
      if (d.subject != c.subject) continue;
      ++s.observers;
      if (auto lat = d.latency()) {
        ++s.detected_by;
        // A detection can begin *before* the crash (the process was already
        // wrongly suspected and never repaired); clamp at zero.
        const double secs = std::max(0.0, to_seconds(*lat));
        s.latencies.add(secs);
        const Duration clamped = std::max(Duration::zero(), *lat);
        worst = worst ? std::max(*worst, clamped) : clamped;
      } else {
        all_detected = false;
      }
    }
    if (all_detected && s.observers > 0) s.completeness_latency = worst;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<FalseSuspicion> Analysis::false_suspicions() const {
  std::vector<FalseSuspicion> out;
  const auto correct_set = correct();
  auto is_correct = [&](ProcessId id) {
    return std::binary_search(correct_set.begin(), correct_set.end(), id);
  };
  // Track open suspicion intervals per (observer, subject).
  std::map<std::pair<std::uint32_t, std::uint32_t>, TimePoint> open;
  for (const auto& e : log_.events()) {
    if (!is_correct(e.subject) || !is_correct(e.observer)) continue;
    const auto key = std::make_pair(e.observer.value, e.subject.value);
    if (e.kind == SuspicionEventKind::kSuspected) {
      open.emplace(key, e.when);
    } else if (e.kind == SuspicionEventKind::kCleared) {
      auto it = open.find(key);
      if (it != open.end()) {
        out.push_back(FalseSuspicion{e.observer, e.subject, it->second, e.when});
        open.erase(it);
      }
    }
  }
  for (const auto& [key, start] : open) {
    out.push_back(FalseSuspicion{ProcessId{key.first}, ProcessId{key.second},
                                 start, std::nullopt});
  }
  std::sort(out.begin(), out.end(),
            [](const FalseSuspicion& a, const FalseSuspicion& b) {
              return a.suspected_at < b.suspected_at;
            });
  return out;
}

std::vector<FalseSuspicionPoint> Analysis::false_suspicion_series() const {
  struct Edge {
    TimePoint when;
    std::int64_t delta;
  };
  std::vector<Edge> edges;
  for (const auto& fs : false_suspicions()) {
    edges.push_back({fs.suspected_at, +1});
    if (fs.cleared_at) edges.push_back({*fs.cleared_at, -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.when < b.when; });
  std::vector<FalseSuspicionPoint> series;
  std::int64_t active = 0;
  for (const auto& e : edges) {
    active += e.delta;
    if (!series.empty() && series.back().when == e.when) {
      series.back().active = active;
    } else {
      series.push_back({e.when, active});
    }
  }
  return series;
}

std::optional<TimePoint> Analysis::accuracy_stabilization() const {
  // Aggregate one false_suspicions() pass per subject (the seed version
  // recomputed the whole interval list once per correct process). For each
  // p: the last repair instant naming p, or disqualification if some
  // interval never closes.
  std::unordered_map<std::uint32_t, TimePoint> last_clear;
  std::unordered_set<std::uint32_t> open_forever;
  for (const auto& fs : false_suspicions()) {
    if (!fs.cleared_at) {
      open_forever.insert(fs.subject.value);
      continue;
    }
    auto [it, inserted] =
        last_clear.try_emplace(fs.subject.value, *fs.cleared_at);
    if (!inserted) it->second = std::max(it->second, *fs.cleared_at);
  }
  std::optional<TimePoint> best;
  for (ProcessId p : correct()) {
    if (open_forever.contains(p.value)) continue;
    TimePoint last = kTimeZero;
    if (auto it = last_clear.find(p.value); it != last_clear.end()) {
      last = it->second;
    }
    if (!best || last < *best) best = last;
  }
  return best;
}

std::optional<TimePoint> Analysis::full_accuracy_stabilization() const {
  TimePoint last = kTimeZero;
  for (const auto& fs : false_suspicions()) {
    if (!fs.cleared_at) return std::nullopt;
    last = std::max(last, *fs.cleared_at);
  }
  return last;
}

bool Analysis::strong_completeness() const {
  for (const auto& s : crash_summaries()) {
    if (!s.completeness_latency) return false;
  }
  return true;
}

RollupSummary summarize_rollup(const std::vector<PairRollup>& pairs,
                               const std::vector<CrashRecord>& crashes,
                               std::uint32_t n) {
  RollupSummary out;
  std::unordered_set<std::uint32_t> crashed;
  for (const auto& c : crashes) crashed.insert(c.subject.value);
  const auto is_correct = [&](ProcessId id) {
    return id.value < n && !crashed.contains(id.value);
  };

  std::unordered_map<std::uint64_t, const PairRollup*> by_key;
  by_key.reserve(pairs.size());
  const auto key = [](ProcessId obs, ProcessId subj) {
    return (static_cast<std::uint64_t>(obs.value) << 32) | subj.value;
  };
  for (const auto& p : pairs) by_key.emplace(key(p.observer, p.subject), &p);

  // Detection / completeness: a crash is detected by a correct observer iff
  // the pair's suspicion interval is still open at the end of the run; its
  // start is the detection instant (clamped at zero when the subject was
  // already wrongly suspected before it crashed and never repaired).
  const std::size_t observers = n - crashed.size();
  out.strong_completeness = true;
  double worst = 0.0;
  for (const auto& c : crashes) {
    bool all_detected = observers > 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const ProcessId obs{i};
      if (!is_correct(obs)) continue;
      const auto it = by_key.find(key(obs, c.subject));
      if (it != by_key.end() && it->second->open) {
        const double lat = std::max(
            0.0, to_seconds(it->second->open_since - c.when));
        out.detection_latencies.add(lat);
        worst = std::max(worst, lat);
      } else {
        all_detected = false;
      }
    }
    if (!all_detected) out.strong_completeness = false;
  }
  if (out.strong_completeness) out.completeness_latency = worst;

  // Wrongful suspicions: every episode between two correct processes,
  // whether repaired or still open — the same counting rule as
  // Analysis::false_suspicions().
  TimePoint last_clear = kTimeZero;
  bool any_open = false;
  for (const auto& p : pairs) {
    if (!is_correct(p.observer) || !is_correct(p.subject)) continue;
    out.false_suspicions += p.episodes;
    last_clear = std::max(last_clear, p.last_clear);
    any_open = any_open || p.open;
  }
  if (!any_open) out.clean_at = to_seconds(last_clear);
  return out;
}

}  // namespace mmrfd::metrics
