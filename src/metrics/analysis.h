// Offline analyzers over a run's EventLog: every number the experiments
// report is computed here, so benches and tests share one definition of
// "detection time", "false suspicion", etc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "metrics/event_log.h"

namespace mmrfd::metrics {

/// Detection of one crash by one observer.
struct Detection {
  ProcessId observer;
  ProcessId subject;
  TimePoint crash_at{kTimeZero};
  /// Start of the observer's *final* (permanent) suspicion of the subject;
  /// unset if the observer never permanently suspected it in the horizon.
  std::optional<TimePoint> detected_at;

  [[nodiscard]] std::optional<Duration> latency() const {
    if (!detected_at) return std::nullopt;
    return *detected_at - crash_at;
  }
};

/// Per-crash summary across all correct observers.
struct CrashDetectionSummary {
  ProcessId subject;
  TimePoint crash_at{kTimeZero};
  std::size_t observers{0};
  std::size_t detected_by{0};  ///< observers that permanently suspected it
  SampleSet latencies;         ///< seconds, one sample per detecting observer
  /// Time until *all* observers permanently suspect (strong completeness
  /// instant for this crash); unset if some observer never did.
  std::optional<Duration> completeness_latency;
};

/// False (wrongful) suspicion: a correct subject entered someone's suspected
/// set. `cleared_at` unset = never repaired within the horizon.
struct FalseSuspicion {
  ProcessId observer;
  ProcessId subject;
  TimePoint suspected_at{kTimeZero};
  std::optional<TimePoint> cleared_at;
};

/// One point of the "active false suspicions over time" series (E3):
/// after `when`, `active` wrongful (observer, subject) pairs are suspected.
struct FalseSuspicionPoint {
  TimePoint when{kTimeZero};
  std::int64_t active{0};
};

class Analysis {
 public:
  /// `n` = system size; the log's crash records define the faulty set.
  Analysis(const EventLog& log, std::uint32_t n, TimePoint horizon);

  [[nodiscard]] std::vector<ProcessId> correct() const;
  [[nodiscard]] std::vector<ProcessId> faulty() const;

  /// Per-(observer, crash) detection outcomes for all correct observers.
  [[nodiscard]] std::vector<Detection> detections() const;

  /// Grouped per crash.
  [[nodiscard]] std::vector<CrashDetectionSummary> crash_summaries() const;

  /// All wrongful suspicions by correct observers of correct subjects.
  [[nodiscard]] std::vector<FalseSuspicion> false_suspicions() const;

  /// Step series of concurrently-active wrongful suspicions.
  [[nodiscard]] std::vector<FalseSuspicionPoint> false_suspicion_series() const;

  /// Eventual weak accuracy: some correct process is suspected by no correct
  /// observer after the returned instant (the last wrongful-suspicion
  /// activity involving it). Unset if every correct process is wrongfully
  /// suspected "forever" (i.e. uncleared at the horizon).
  [[nodiscard]] std::optional<TimePoint> accuracy_stabilization() const;

  /// Global cleanliness: the instant of the *last* wrongful-suspicion repair
  /// anywhere (time zero if there were none). Unset if any wrongful
  /// suspicion was still open at the horizon. Strictly stronger than
  /// accuracy_stabilization(): after this instant no correct process
  /// suspects any correct process.
  [[nodiscard]] std::optional<TimePoint> full_accuracy_stabilization() const;

  /// Strong completeness: every crash permanently suspected by every correct
  /// observer within the horizon.
  [[nodiscard]] bool strong_completeness() const;

 private:
  [[nodiscard]] std::optional<TimePoint> crash_time(ProcessId id) const;

  const EventLog& log_;
  std::uint32_t n_;
  TimePoint horizon_;
};

/// Headline metrics computable from per-pair rollups (LogMode::kRollup),
/// matching the definitions Analysis derives from the full event stream:
/// detection = start of the final (still-open) suspicion interval, latencies
/// clamped at zero, false suspicions = intervals between two correct
/// processes, clean_at = last wrongful repair (unset while one is open).
struct RollupSummary {
  SampleSet detection_latencies;  ///< seconds, per (crash, correct observer)
  /// Worst per-crash strong-completeness latency (seconds); unset if some
  /// crash went undetected by some correct observer.
  std::optional<double> completeness_latency;
  bool strong_completeness{false};
  std::size_t false_suspicions{0};
  std::optional<double> clean_at;  ///< seconds
};

/// `pairs` from EventLog::rollup(), `crashes` from EventLog::crashes(),
/// `n` = system size.
RollupSummary summarize_rollup(const std::vector<PairRollup>& pairs,
                               const std::vector<CrashRecord>& crashes,
                               std::uint32_t n);

}  // namespace mmrfd::metrics
