#include "metrics/event_log.h"

namespace mmrfd::metrics {

void EventLog::record(ProcessId observer, ProcessId subject,
                      SuspicionEventKind kind, Tag tag) {
  events_.push_back(SuspicionEvent{sim_.now(), observer, subject, kind, tag});
}

void EventLog::record_crash(ProcessId subject) {
  crashes_.push_back(CrashRecord{subject, sim_.now()});
}

core::SuspicionObserver* EventLog::observer_for(ProcessId observer_id) {
  adapters_.push_back(std::make_unique<NodeObserver>(*this, observer_id));
  return adapters_.back().get();
}

}  // namespace mmrfd::metrics
