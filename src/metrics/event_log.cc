#include "metrics/event_log.h"

#include <algorithm>

namespace mmrfd::metrics {

namespace {
std::uint64_t pair_key(ProcessId observer, ProcessId subject) {
  return (static_cast<std::uint64_t>(observer.value) << 32) | subject.value;
}
}  // namespace

void EventLog::apply(TimePoint when, ProcessId observer, ProcessId subject,
                     SuspicionEventKind kind, Tag tag) {
  if (mode_ == LogMode::kFull) {
    events_.push_back(SuspicionEvent{when, observer, subject, kind, tag});
  }
  // The pair summary is maintained in both modes: full-mode callers get
  // rollup() for free, and the rollup/full equivalence is testable on one
  // log instance.
  PairState& p = pairs_[pair_key(observer, subject)];
  switch (kind) {
    case SuspicionEventKind::kSuspected:
      if (!p.open) {
        p.open = true;
        p.open_since = when;
        ++p.episodes;
      }
      break;
    case SuspicionEventKind::kCleared:
      if (p.open) {
        p.open = false;
        p.last_clear = std::max(p.last_clear, when);
      }
      break;
    case SuspicionEventKind::kMistake:
      ++p.mistakes;
      break;
  }
}

void EventLog::record(ProcessId observer, ProcessId subject,
                      SuspicionEventKind kind, Tag tag) {
  apply(sim_.now(), observer, subject, kind, tag);
}

void EventLog::record_crash(ProcessId subject) {
  crashes_.push_back(CrashRecord{subject, sim_.now()});
}

std::vector<PairRollup> EventLog::rollup() const {
  std::vector<PairRollup> out;
  out.reserve(pairs_.size());
  for (const auto& [key, p] : pairs_) {
    PairRollup r;
    r.observer = ProcessId{static_cast<std::uint32_t>(key >> 32)};
    r.subject = ProcessId{static_cast<std::uint32_t>(key & 0xffffffffu)};
    r.open = p.open;
    r.open_since = p.open_since;
    r.last_clear = p.last_clear;
    r.episodes = p.episodes;
    r.mistakes = p.mistakes;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const PairRollup& a, const PairRollup& b) {
              if (a.observer != b.observer) return a.observer < b.observer;
              return a.subject < b.subject;
            });
  return out;
}

std::size_t EventLog::approx_retained_bytes() const {
  // unordered_map node overhead (~2 pointers) + bucket array estimate.
  const std::size_t per_pair =
      sizeof(std::uint64_t) + sizeof(PairState) + 2 * sizeof(void*);
  const std::size_t map_bytes =
      pairs_.size() * per_pair + pairs_.bucket_count() * sizeof(void*);
  return events_.capacity() * sizeof(SuspicionEvent) +
         crashes_.capacity() * sizeof(CrashRecord) + map_bytes;
}

core::SuspicionObserver* EventLog::observer_for(ProcessId observer_id) {
  adapters_.push_back(std::make_unique<NodeObserver>(*this, observer_id));
  return adapters_.back().get();
}

}  // namespace mmrfd::metrics
