#include "metrics/export.h"

#include <ostream>

namespace mmrfd::metrics {

namespace {
const char* kind_name(SuspicionEventKind kind) {
  switch (kind) {
    case SuspicionEventKind::kSuspected:
      return "suspected";
    case SuspicionEventKind::kCleared:
      return "cleared";
    case SuspicionEventKind::kMistake:
      return "mistake";
  }
  return "?";
}
}  // namespace

void export_events_csv(const EventLog& log, std::ostream& os) {
  os << "when_s,observer,subject,kind,tag\n";
  for (const auto& e : log.events()) {
    os << to_seconds(e.when) << ',' << e.observer.value << ','
       << e.subject.value << ',' << kind_name(e.kind) << ',' << e.tag << '\n';
  }
}

void export_crashes_csv(const EventLog& log, std::ostream& os) {
  os << "subject,when_s\n";
  for (const auto& c : log.crashes()) {
    os << c.subject.value << ',' << to_seconds(c.when) << '\n';
  }
}

void export_queries_csv(const core::PropertyRecorder& recorder,
                        std::ostream& os) {
  os << "issuer,seq,terminated_s,winning\n";
  for (const auto& r : recorder.records()) {
    os << r.issuer.value << ',' << r.seq << ',' << to_seconds(r.terminated_at)
       << ',';
    for (std::size_t i = 0; i < r.winning.size(); ++i) {
      if (i) os << ';';
      os << r.winning[i].value;
    }
    os << '\n';
  }
}

void export_jsonl(const EventLog& log, const core::PropertyRecorder* recorder,
                  std::ostream& os) {
  for (const auto& c : log.crashes()) {
    os << R"({"type":"crash","subject":)" << c.subject.value << R"(,"when_s":)"
       << to_seconds(c.when) << "}\n";
  }
  for (const auto& e : log.events()) {
    os << R"({"type":"suspicion","kind":")" << kind_name(e.kind)
       << R"(","when_s":)" << to_seconds(e.when) << R"(,"observer":)"
       << e.observer.value << R"(,"subject":)" << e.subject.value
       << R"(,"tag":)" << e.tag << "}\n";
  }
  if (recorder != nullptr) {
    for (const auto& r : recorder->records()) {
      os << R"({"type":"query","issuer":)" << r.issuer.value << R"(,"seq":)"
         << r.seq << R"(,"terminated_s":)" << to_seconds(r.terminated_at)
         << R"(,"winning":[)";
      for (std::size_t i = 0; i < r.winning.size(); ++i) {
        if (i) os << ',';
        os << r.winning[i].value;
      }
      os << "]}\n";
    }
  }
}

}  // namespace mmrfd::metrics
