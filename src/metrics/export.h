// Run-trace exporters: turn a run's EventLog / PropertyRecorder into CSV or
// JSON-lines streams for external plotting (gnuplot, pandas). Every
// experiment's figure can be regenerated from these instead of the printed
// tables.
#pragma once

#include <iosfwd>

#include "core/properties.h"
#include "metrics/event_log.h"

namespace mmrfd::metrics {

/// CSV: when_s,observer,subject,kind,tag  (kind in {suspected,cleared,mistake})
void export_events_csv(const EventLog& log, std::ostream& os);

/// CSV: subject,when_s
void export_crashes_csv(const EventLog& log, std::ostream& os);

/// CSV: issuer,seq,terminated_s,winning  (winning = ';'-joined ids)
void export_queries_csv(const core::PropertyRecorder& recorder,
                        std::ostream& os);

/// JSON-lines; one object per suspicion event, crash, and query record, with
/// a "type" discriminator. Self-contained replay of a run's observable
/// behaviour.
void export_jsonl(const EventLog& log, const core::PropertyRecorder* recorder,
                  std::ostream& os);

}  // namespace mmrfd::metrics
