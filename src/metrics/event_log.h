// Suspicion event log.
//
// Every detector implementation publishes suspicion transitions through
// core::SuspicionObserver; the per-node adapters here stamp them with the
// observing node and the virtual time, producing one global, ordered event
// stream per run. All evaluation metrics (detection time, false-suspicion
// counts, accuracy convergence) are pure functions of this log plus the
// crash schedule — see analysis.h.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/failure_detector.h"
#include "sim/simulation.h"

namespace mmrfd::metrics {

enum class SuspicionEventKind : std::uint8_t {
  kSuspected,  ///< subject entered observer's suspected set
  kCleared,    ///< subject left observer's suspected set
  kMistake,    ///< observer recorded a mistake entry for subject
};

struct SuspicionEvent {
  TimePoint when{kTimeZero};
  ProcessId observer;
  ProcessId subject;
  SuspicionEventKind kind{SuspicionEventKind::kSuspected};
  Tag tag{0};
};

struct CrashRecord {
  ProcessId subject;
  TimePoint when{kTimeZero};
};

class EventLog {
 public:
  explicit EventLog(sim::Simulation& simulation) : sim_(simulation) {}

  void record(ProcessId observer, ProcessId subject, SuspicionEventKind kind,
              Tag tag);
  void record_crash(ProcessId subject);

  /// Appends a pre-stamped event. The live-cluster path aggregates wall-
  /// clock-stamped transitions out of per-process node reports, where the
  /// simulation clock has no meaning; callers are responsible for feeding
  /// events in time order (sort before appending a merged stream).
  void append(const SuspicionEvent& event) { events_.push_back(event); }

  /// Records a crash at an explicit instant (live path: the supervisor's
  /// actual SIGKILL time).
  void record_crash_at(ProcessId subject, TimePoint when) {
    crashes_.push_back(CrashRecord{subject, when});
  }

  [[nodiscard]] const std::vector<SuspicionEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<CrashRecord>& crashes() const {
    return crashes_;
  }
  [[nodiscard]] TimePoint now() const { return sim_.now(); }

  /// Returns (creating on first use) the observer adapter for `observer_id`.
  /// The adapter's lifetime is owned by the log.
  core::SuspicionObserver* observer_for(ProcessId observer_id);

 private:
  class NodeObserver final : public core::SuspicionObserver {
   public:
    NodeObserver(EventLog& log, ProcessId observer_id)
        : log_(log), observer_id_(observer_id) {}
    void on_suspected(ProcessId subject, Tag tag) override {
      log_.record(observer_id_, subject, SuspicionEventKind::kSuspected, tag);
    }
    void on_cleared(ProcessId subject, Tag tag) override {
      log_.record(observer_id_, subject, SuspicionEventKind::kCleared, tag);
    }
    void on_mistake(ProcessId subject, Tag tag) override {
      log_.record(observer_id_, subject, SuspicionEventKind::kMistake, tag);
    }

   private:
    EventLog& log_;
    ProcessId observer_id_;
  };

  sim::Simulation& sim_;
  std::vector<SuspicionEvent> events_;
  std::vector<CrashRecord> crashes_;
  std::vector<std::unique_ptr<NodeObserver>> adapters_;
};

}  // namespace mmrfd::metrics
