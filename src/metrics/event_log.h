// Suspicion event log.
//
// Every detector implementation publishes suspicion transitions through
// core::SuspicionObserver; the per-node adapters here stamp them with the
// observing node and the virtual time, producing one global, ordered event
// stream per run. All evaluation metrics (detection time, false-suspicion
// counts, accuracy convergence) are pure functions of this log plus the
// crash schedule — see analysis.h.
//
// Two retention modes:
//   * kFull keeps every transition (the default; what Analysis consumes).
//     At n = 1000 a 20 s sweep retains ~1.3M entries (~30 MB) — fine for a
//     single serial run, ruinous when multiplied by shards and pushed to
//     n = 10,000.
//   * kRollup folds each transition into a per-(observer, subject) pair
//     summary on arrival: the currently-open suspicion interval, episode
//     and mistake counters, and the last repair instant. Memory is bounded
//     by the number of pairs that ever interacted, independent of run
//     length. summarize_rollup() (analysis.h) computes the headline metrics
//     (detection latency, strong completeness, false suspicions) from it
//     with the same semantics Analysis derives from the full stream.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/failure_detector.h"
#include "sim/simulation.h"

namespace mmrfd::metrics {

enum class SuspicionEventKind : std::uint8_t {
  kSuspected,  ///< subject entered observer's suspected set
  kCleared,    ///< subject left observer's suspected set
  kMistake,    ///< observer recorded a mistake entry for subject
};

struct SuspicionEvent {
  TimePoint when{kTimeZero};
  ProcessId observer;
  ProcessId subject;
  SuspicionEventKind kind{SuspicionEventKind::kSuspected};
  Tag tag{0};
};

struct CrashRecord {
  ProcessId subject;
  TimePoint when{kTimeZero};
};

enum class LogMode : std::uint8_t {
  kFull,    ///< retain every transition (events() is the full stream)
  kRollup,  ///< fold transitions into per-pair summaries on arrival
};

/// Streaming summary of one (observer, subject) pair's suspicion history.
struct PairRollup {
  ProcessId observer;
  ProcessId subject;
  /// Whether the observer suspected the subject at the end of the run; if
  /// so, `open_since` is the start of that final (permanent) interval —
  /// exactly Analysis's "last kSuspected with no later kCleared".
  bool open{false};
  TimePoint open_since{kTimeZero};
  /// Instant of the last kCleared for this pair (kTimeZero if none).
  TimePoint last_clear{kTimeZero};
  std::uint32_t episodes{0};  ///< suspicion intervals opened
  std::uint32_t mistakes{0};  ///< kMistake events recorded
};

class EventLog {
 public:
  explicit EventLog(sim::Simulation& simulation, LogMode mode = LogMode::kFull)
      : sim_(simulation), mode_(mode) {}

  void record(ProcessId observer, ProcessId subject, SuspicionEventKind kind,
              Tag tag);
  void record_crash(ProcessId subject);

  /// Appends a pre-stamped event. The live-cluster path aggregates wall-
  /// clock-stamped transitions out of per-process node reports, where the
  /// simulation clock has no meaning; callers are responsible for feeding
  /// events in time order (sort before appending a merged stream).
  void append(const SuspicionEvent& event) {
    apply(event.when, event.observer, event.subject, event.kind, event.tag);
  }

  /// Records a crash at an explicit instant (live path: the supervisor's
  /// actual SIGKILL time).
  void record_crash_at(ProcessId subject, TimePoint when) {
    crashes_.push_back(CrashRecord{subject, when});
  }

  [[nodiscard]] LogMode mode() const { return mode_; }

  /// Full event stream; empty in rollup mode (use rollup() there).
  [[nodiscard]] const std::vector<SuspicionEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<CrashRecord>& crashes() const {
    return crashes_;
  }

  /// Snapshot of the per-pair summaries, sorted by (observer, subject) so
  /// the result is deterministic. Meaningful in either mode (full mode
  /// maintains the same running state), but it is the *only* output of
  /// rollup mode.
  [[nodiscard]] std::vector<PairRollup> rollup() const;

  /// Number of retained entries: events in full mode, pairs in rollup mode.
  [[nodiscard]] std::size_t entries() const {
    return mode_ == LogMode::kFull ? events_.size() : pairs_.size();
  }
  /// Approximate bytes retained by the log's growing state (events or pair
  /// map), for memory-bound assertions and capacity planning.
  [[nodiscard]] std::size_t approx_retained_bytes() const;

  [[nodiscard]] TimePoint now() const { return sim_.now(); }

  /// Returns (creating on first use) the observer adapter for `observer_id`.
  /// The adapter's lifetime is owned by the log.
  core::SuspicionObserver* observer_for(ProcessId observer_id);

 private:
  class NodeObserver final : public core::SuspicionObserver {
   public:
    NodeObserver(EventLog& log, ProcessId observer_id)
        : log_(log), observer_id_(observer_id) {}
    void on_suspected(ProcessId subject, Tag tag) override {
      log_.record(observer_id_, subject, SuspicionEventKind::kSuspected, tag);
    }
    void on_cleared(ProcessId subject, Tag tag) override {
      log_.record(observer_id_, subject, SuspicionEventKind::kCleared, tag);
    }
    void on_mistake(ProcessId subject, Tag tag) override {
      log_.record(observer_id_, subject, SuspicionEventKind::kMistake, tag);
    }

   private:
    EventLog& log_;
    ProcessId observer_id_;
  };

  struct PairState {
    bool open{false};
    TimePoint open_since{kTimeZero};
    TimePoint last_clear{kTimeZero};
    std::uint32_t episodes{0};
    std::uint32_t mistakes{0};
  };

  void apply(TimePoint when, ProcessId observer, ProcessId subject,
             SuspicionEventKind kind, Tag tag);

  sim::Simulation& sim_;
  LogMode mode_;
  std::vector<SuspicionEvent> events_;
  std::vector<CrashRecord> crashes_;
  std::unordered_map<std::uint64_t, PairState> pairs_;
  std::vector<std::unique_ptr<NodeObserver>> adapters_;
};

}  // namespace mmrfd::metrics
