// Omega (eventual leader) on top of <>S output.
//
// The classic reduction: each process trusts the smallest-id process it does
// not currently suspect. Under eventual weak accuracy some correct process p
// is eventually never suspected anywhere; once every id below p's is crashed
// (hence, by strong completeness, eventually suspected everywhere), all
// correct processes stabilize on the same correct leader.
//
// The DSN'03 conclusion points at "other classes of failure detectors" as
// the follow-up direction; this is the canonical such derivation and what
// consensus protocols a la Paxos consume.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "core/failure_detector.h"

namespace mmrfd::core {

/// Smallest-id process in Pi = {0..n-1} not suspected by `fd`. If everything
/// is suspected (cannot happen to a correct observer: it never suspects
/// itself), returns kNoProcess.
[[nodiscard]] ProcessId extract_leader(const FailureDetector& fd,
                                       std::uint32_t n);

/// Per-process leader view with change counting, for the Omega experiments.
class OmegaView {
 public:
  OmegaView(const FailureDetector& fd, std::uint32_t n)
      : fd_(fd), n_(n) {}

  /// Recomputes the leader; returns it and counts a change if it differs
  /// from the previous poll.
  ProcessId poll();

  [[nodiscard]] ProcessId current() const { return current_; }
  [[nodiscard]] std::uint64_t changes() const { return changes_; }

 private:
  const FailureDetector& fd_;
  std::uint32_t n_;
  ProcessId current_{kNoProcess};
  std::uint64_t changes_{0};
};

}  // namespace mmrfd::core
