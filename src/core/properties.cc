#include "core/properties.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>

namespace mmrfd::core {

void PropertyRecorder::record(ProcessId issuer, QuerySeq seq,
                              TimePoint terminated_at,
                              std::span<const ProcessId> winning) {
  QueryRecord r;
  r.issuer = issuer;
  r.seq = seq;
  r.terminated_at = terminated_at;
  r.winning.assign(winning.begin(), winning.end());
  assert(std::is_sorted(r.winning.begin(), r.winning.end()));
  records_.push_back(std::move(r));
}

MpChecker::MpChecker(const PropertyRecorder& recorder, std::uint32_t f,
                     std::span<const ProcessId> correct)
    : recorder_(recorder), f_(f), correct_(correct.begin(), correct.end()) {
  std::sort(correct_.begin(), correct_.end());
}

double MpChecker::winning_fraction(ProcessId p, ProcessId q) const {
  std::size_t total = 0;
  std::size_t won = 0;
  for (const auto& r : recorder_.records()) {
    if (r.issuer != q) continue;
    ++total;
    if (std::binary_search(r.winning.begin(), r.winning.end(), p)) ++won;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(won) / static_cast<double>(total);
}

std::size_t MpChecker::query_count(ProcessId q) const {
  std::size_t total = 0;
  for (const auto& r : recorder_.records()) {
    if (r.issuer == q) ++total;
  }
  return total;
}

MpVerdict MpChecker::check(std::size_t min_queries_after) const {
  // Accuracy-guaranteeing form: the witness must have a violation-free
  // suffix with respect to every correct issuer that produced enough
  // queries to count as evidence.
  const std::uint32_t n = recorder_.n();
  constexpr TimePoint kNever =
      TimePoint{std::numeric_limits<std::int64_t>::min()};
  std::vector<std::vector<TimePoint>> issued(n);
  for (const auto& r : recorder_.records()) {
    issued[r.issuer.value].push_back(r.terminated_at);
  }
  for (auto& v : issued) std::sort(v.begin(), v.end());

  MpVerdict best;
  for (ProcessId p : correct_) {
    std::vector<TimePoint> viol(n, kNever);
    for (const auto& r : recorder_.records()) {
      if (std::binary_search(r.winning.begin(), r.winning.end(), p)) continue;
      viol[r.issuer.value] = std::max(viol[r.issuer.value], r.terminated_at);
    }
    MpVerdict v;
    v.holds = true;
    v.holds_perpetually = true;
    v.witness = p;
    TimePoint t_star = kNever;
    for (ProcessId q : correct_) {
      const auto& times = issued[q.value];
      if (times.size() < min_queries_after) continue;  // not evidence
      const auto after = static_cast<std::size_t>(
          times.end() -
          std::upper_bound(times.begin(), times.end(), viol[q.value]));
      if (after < min_queries_after) {
        v.holds = false;
        break;
      }
      v.quorum_set.push_back(q);
      t_star = std::max(t_star, viol[q.value]);
      if (viol[q.value] != kNever) v.holds_perpetually = false;
    }
    if (!v.holds || v.quorum_set.empty()) continue;
    v.holds_from = (t_star == kNever) ? kTimeZero : t_star;
    const bool better =
        !best.holds || (v.holds_perpetually && !best.holds_perpetually) ||
        (v.holds_perpetually == best.holds_perpetually &&
         v.holds_from < best.holds_from);
    if (better) best = v;
  }
  return best;
}

MpVerdict MpChecker::check_with_quorum(std::size_t issuers,
                                       std::size_t min_queries_after) const {
  const std::uint32_t n = recorder_.n();
  MpVerdict best;

  // Per issuer q and candidate p, we need: the time of q's last query that p
  // did NOT win (viol), and the number of q's queries after any time t.
  // Precompute per-issuer sorted termination times.
  std::vector<std::vector<TimePoint>> issued(n);
  for (const auto& r : recorder_.records()) {
    issued[r.issuer.value].push_back(r.terminated_at);
  }
  for (auto& v : issued) std::sort(v.begin(), v.end());

  constexpr TimePoint kNever = TimePoint{std::numeric_limits<std::int64_t>::min()};

  for (ProcessId p : correct_) {
    // viol[q] = last violation time for (p, q); kNever if p won all of q's
    // queries; nullopt slot unused when q issued nothing.
    std::vector<std::optional<TimePoint>> viol(n);
    for (std::uint32_t q = 0; q < n; ++q) {
      if (issued[q].empty()) continue;  // never issued: cannot be in Q
      viol[q] = kNever;
    }
    for (const auto& r : recorder_.records()) {
      if (std::binary_search(r.winning.begin(), r.winning.end(), p)) continue;
      auto& v = viol[r.issuer.value];
      if (v.has_value()) v = std::max(*v, r.terminated_at);
    }

    // Candidates q, cheapest violation time first.
    struct Cand {
      ProcessId q;
      TimePoint viol_at;
    };
    std::vector<Cand> cands;
    for (std::uint32_t q = 0; q < n; ++q) {
      if (!viol[q].has_value()) continue;
      // q must still have min_queries_after queries after the violation,
      // otherwise the "eventual" suffix is vacuous for q.
      const auto& times = issued[q];
      const auto after = static_cast<std::size_t>(
          times.end() - std::upper_bound(times.begin(), times.end(),
                                         *viol[q]));
      if (after < min_queries_after) continue;
      cands.push_back({ProcessId{q}, *viol[q]});
    }
    if (cands.size() < issuers) continue;
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.viol_at != b.viol_at) return a.viol_at < b.viol_at;
      return a.q < b.q;
    });

    MpVerdict v;
    v.holds = true;
    v.witness = p;
    v.quorum_set.reserve(issuers);
    TimePoint t_star = kNever;
    bool perpetual = true;
    for (std::size_t i = 0; i < issuers; ++i) {
      v.quorum_set.push_back(cands[i].q);
      t_star = std::max(t_star, cands[i].viol_at);
      if (cands[i].viol_at != kNever) perpetual = false;
    }
    v.holds_from = (t_star == kNever) ? kTimeZero : t_star;
    v.holds_perpetually = perpetual;
    std::sort(v.quorum_set.begin(), v.quorum_set.end());

    const bool better =
        !best.holds || (v.holds_perpetually && !best.holds_perpetually) ||
        (v.holds_perpetually == best.holds_perpetually &&
         v.holds_from < best.holds_from);
    if (better) best = v;
  }
  return best;
}

StabilizationChecker::StabilizationChecker(std::uint32_t n,
                                           std::span<const ProcessId> crashed)
    : n_(n),
      crashed_(n, false),
      view_(static_cast<std::size_t>(n) * n, 0) {
  for (ProcessId c : crashed) {
    if (c.value < n_) crashed_[c.value] = true;
  }
}

void StabilizationChecker::feed(TimePoint when, ProcessId observer,
                                ProcessId subject, bool suspected) {
  if (observer.value >= n_ || subject.value >= n_) return;
  if (crashed_[observer.value]) return;  // a crashed view is not evidence
  auto& cell =
      view_[static_cast<std::size_t>(observer.value) * n_ + subject.value];
  const std::uint8_t next = suspected ? 1 : 0;
  if (cell == next) return;
  cell = next;
  last_change_ = std::max(last_change_, when);
}

StabilizationVerdict StabilizationChecker::verdict() const {
  StabilizationVerdict v;
  v.stabilized_at = last_change_;
  for (std::uint32_t o = 0; o < n_; ++o) {
    if (crashed_[o]) continue;
    for (std::uint32_t s = 0; s < n_; ++s) {
      if (s == o) continue;
      const bool suspects =
          view_[static_cast<std::size_t>(o) * n_ + s] != 0;
      if (crashed_[s] && !suspects) {
        v.missing.emplace_back(ProcessId{o}, ProcessId{s});
      } else if (!crashed_[s] && suspects) {
        v.false_suspicions.emplace_back(ProcessId{o}, ProcessId{s});
      }
    }
  }
  v.converged = v.missing.empty() && v.false_suspicions.empty();
  return v;
}

}  // namespace mmrfd::core
