#include "core/omega.h"

namespace mmrfd::core {

ProcessId extract_leader(const FailureDetector& fd, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!fd.is_suspected(ProcessId{i})) return ProcessId{i};
  }
  return kNoProcess;
}

ProcessId OmegaView::poll() {
  const ProcessId next = extract_leader(fd_, n_);
  if (next != current_) {
    current_ = next;
    ++changes_;
  }
  return current_;
}

}  // namespace mmrfd::core
