// Wire messages of the query-response protocol.
//
// A QUERY carries the sender's suspected and mistake sets (tagged entries);
// a RESPONSE carries the echoed query sequence number plus the delta-mode
// acknowledgement — all failure information travels in queries, exactly as
// in the paper.
//
// Two encodings exist for the query payload:
//   * full  — the canonical reference: every entry of both sets. This is
//     what the paper sends and what the equivalence harness diffs against.
//   * delta — only the entries changed since `base_epoch`, the epoch this
//     peer last acknowledged; the long-stable remainder of the sets is
//     *interned* by that single integer (see common::ChangeJournal).
// Both encodings merge to identical receiver state: tags are monotone, so
// every entry a delta omits would have been a no-op replay.
//
// Layout note: the suspected and mistake entries share ONE vector
// (suspected first, `suspected_count` marks the split). Besides halving the
// allocations per query, this keeps sizeof(QueryMessage) at 56 bytes so a
// simulated delivery event capturing {Network*, from, to, variant<Query,
// Response>} still fits the simulator's 80-byte inline-callable budget —
// growing the message would silently push every delivery onto the heap.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/tagged_set.h"
#include "common/types.h"

namespace mmrfd::core {

struct QueryMessage {
  QuerySeq seq{0};

  /// Sender-state epoch this query brings the receiver to (0 when the
  /// sender does not track epochs, i.e. reference full mode). Echoed back
  /// in ResponseMessage::ack_epoch.
  Epoch epoch{0};

  /// Delta encoding only: the previously-acknowledged epoch this delta
  /// builds on. 0 (with the delta flag clear) means self-contained.
  Epoch base_epoch{0};

  /// entries[0, suspected_count) are suspicions; the rest are mistakes.
  std::vector<TaggedEntry> entries;
  std::uint32_t suspected_count{0};

  /// Bit 0: delta encoding (entries list only changes since base_epoch).
  std::uint8_t flags{0};

  static constexpr std::uint8_t kDeltaFlag = 1;

  [[nodiscard]] bool is_delta() const { return (flags & kDeltaFlag) != 0; }
  void set_delta(bool delta) {
    flags = delta ? (flags | kDeltaFlag)
                  : static_cast<std::uint8_t>(flags & ~kDeltaFlag);
  }

  [[nodiscard]] std::span<const TaggedEntry> suspected() const {
    return {entries.data(), suspected_count};
  }
  [[nodiscard]] std::span<const TaggedEntry> mistakes() const {
    return {entries.data() + suspected_count,
            entries.size() - suspected_count};
  }

  /// Builder helpers maintaining the suspected-before-mistakes split.
  void push_suspected(TaggedEntry e) {
    entries.insert(entries.begin() + suspected_count, e);
    ++suspected_count;
  }
  void push_mistake(TaggedEntry e) { entries.push_back(e); }

  friend bool operator==(const QueryMessage&, const QueryMessage&) = default;
};

struct ResponseMessage {
  QuerySeq seq{0};

  /// Echo of the query's epoch: everything up to it is now merged (0 from
  /// epoch-less full-mode queries).
  Epoch ack_epoch{0};

  /// Set when the responder received a delta whose base it never
  /// acknowledged (state loss / restart): the sender must drop its
  /// watermark for this peer and fall back to the full encoding.
  bool need_full{false};

  /// Causal context: the responder's *own* current round sequence at the
  /// moment it answered (0 = not carried). Piggybacked on the wire so a
  /// received response names the remote round that produced it, letting
  /// the TraceAssembler stitch per-node rings into one happened-before
  /// graph. Purely observational — never read by the protocol. The
  /// simulator leaves it 0, keeping encoded bytes and fixed-seed digests
  /// identical.
  QuerySeq origin_seq{0};

  friend bool operator==(const ResponseMessage&,
                         const ResponseMessage&) = default;
};

// The 56-byte bound is an ABI fact of libstdc++/libc++ (24-byte vector);
// MSVC debug iterators make vectors 32 bytes, where the simulator budget
// does not apply anyway (the event-heap perf work targets the Linux build).
#if defined(__GLIBCXX__) || defined(_LIBCPP_VERSION)
static_assert(sizeof(QueryMessage) <= 56,
              "QueryMessage must stay within the simulator's inline-event "
              "budget (see layout note above)");
#endif

}  // namespace mmrfd::core
