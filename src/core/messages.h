// Wire messages of the query-response protocol.
//
// A QUERY carries the sender's whole suspected and mistake sets (tagged
// entries); a RESPONSE carries only the echoed query sequence number — all
// failure information travels in queries, exactly as in the paper.
#pragma once

#include <vector>

#include "common/tagged_set.h"
#include "common/types.h"

namespace mmrfd::core {

struct QueryMessage {
  QuerySeq seq{0};
  std::vector<TaggedEntry> suspected;
  std::vector<TaggedEntry> mistakes;

  friend bool operator==(const QueryMessage&, const QueryMessage&) = default;
};

struct ResponseMessage {
  QuerySeq seq{0};

  friend bool operator==(const ResponseMessage&,
                         const ResponseMessage&) = default;
};

}  // namespace mmrfd::core
