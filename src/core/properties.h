// The behavioral (message-pattern) property MP, reified.
//
// DSN'03 replaces timing assumptions with a *pattern* on the query-response
// exchange:
//
//   MP: there is a correct process p such that eventually the response of p
//   to every query issued by every correct process is a winning response
//   (arrives among the first n - f).
//
// When MP holds the protocol's output satisfies eventual weak accuracy, and
// with unconditional strong completeness the detector is of class <>S. The
// *perpetual* variant of MP (winning from the very first query) yields the
// (stronger) class S.
//
// Why "every correct process" and not some smaller quorum: a correct process
// q that misses p's response can always *regenerate* a fresh suspicion of p
// with a tag above p's last mistake (T1 lines 10-12), so p's suspicion state
// at q flaps forever unless q eventually always receives p's response in
// time. The quorum-parameterized relaxation (p winning for only k issuers)
// is still implemented — check_with_quorum() — because it is useful in its
// own right: it guarantees accuracy *at those k processes*, e.g. a
// coordinator quorum.
//
// This module provides:
//   * PropertyRecorder — collects, per terminated query, the issuer and the
//     winning responder set (hosts feed it as rounds terminate);
//   * MpChecker — decides, offline, whether/when MP held in the recorded
//     execution, which witness p and quorum set Q realize it, and the
//     pairwise winning-fraction statistics used by experiment E5.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace mmrfd::core {

/// One terminated query: who issued it, when it terminated, who won.
struct QueryRecord {
  ProcessId issuer;
  QuerySeq seq{0};
  TimePoint terminated_at{kTimeZero};
  std::vector<ProcessId> winning;  // sorted, includes the issuer
};

class PropertyRecorder {
 public:
  explicit PropertyRecorder(std::uint32_t n) : n_(n) {}

  void record(ProcessId issuer, QuerySeq seq, TimePoint terminated_at,
              std::span<const ProcessId> winning);

  [[nodiscard]] const std::vector<QueryRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint32_t n() const { return n_; }

 private:
  std::uint32_t n_;
  std::vector<QueryRecord> records_;
};

/// Result of checking MP over one recorded execution.
struct MpVerdict {
  /// MP held: some correct p was a winning responder of every query issued
  /// by each member of the issuer set from `holds_from` on, with at least
  /// `min_queries_after` queries per issuer after that point.
  bool holds{false};
  /// The perpetual variant held (no violating query at all) — class S.
  bool holds_perpetually{false};
  ProcessId witness{kNoProcess};        ///< the correct process p
  TimePoint holds_from{kTimeZero};      ///< earliest t* realizing MP
  std::vector<ProcessId> quorum_set;    ///< the issuers covered by p
};

class MpChecker {
 public:
  /// `correct` lists the processes that never crashed in the execution.
  MpChecker(const PropertyRecorder& recorder, std::uint32_t f,
            std::span<const ProcessId> correct);

  /// Decides MP (the accuracy-guaranteeing form): the witness must have a
  /// violation-free suffix w.r.t. EVERY correct process that issued at
  /// least `min_queries_after` queries. An issuer's suffix only counts as
  /// evidence if it contains at least `min_queries_after` terminated
  /// queries (a property that holds "eventually" over zero queries is
  /// vacuous in a finite trace).
  [[nodiscard]] MpVerdict check(std::size_t min_queries_after = 3) const;

  /// The quorum-parameterized relaxation: the witness need only cover some
  /// `issuers`-sized set of issuers. With issuers = f + 1 this is the
  /// weakest form under which at least one *correct* process enjoys
  /// accuracy about the witness.
  [[nodiscard]] MpVerdict check_with_quorum(
      std::size_t issuers, std::size_t min_queries_after = 3) const;

  /// Fraction of q's terminated queries whose winning set contained p.
  [[nodiscard]] double winning_fraction(ProcessId p, ProcessId q) const;

  /// Number of terminated queries recorded for issuer q.
  [[nodiscard]] std::size_t query_count(ProcessId q) const;

 private:
  const PropertyRecorder& recorder_;
  std::uint32_t f_;
  std::vector<ProcessId> correct_;  // sorted
};

/// Verdict of a self-stabilization check over one execution.
struct StabilizationVerdict {
  /// Every correct observer's final suspicion view is exactly the crashed
  /// set: strong completeness (all crashed suspected) + accuracy (no
  /// correct process suspected).
  bool converged{false};
  /// Time of the last suspicion-view change at any correct observer — once
  /// converged, the execution was stable from here on. Tests assert
  /// `stabilized_at - injection_time` is bounded.
  TimePoint stabilized_at{kTimeZero};
  /// (observer, crashed subject) pairs the observer fails to suspect.
  std::vector<std::pair<ProcessId, ProcessId>> missing;
  /// (observer, correct subject) pairs the observer wrongly suspects.
  std::vector<std::pair<ProcessId, ProcessId>> false_suspicions;
};

/// StabilizationChecker — the self-stabilization property as a trace check.
///
/// The adversarial sweeps perturb an execution (channel faults, transient
/// state corruption) and then ask: did the cluster *re-converge* to the
/// detector's specification — every correct process eventually suspects
/// exactly the crashed processes — and how long did the repair take? Feed
/// it every suspicion transition (suspected = true on kSuspected, false on
/// kCleared; mistakes are view-neutral) in any order consistent with
/// per-observer causality; transitions at crashed observers are ignored.
class StabilizationChecker {
 public:
  StabilizationChecker(std::uint32_t n, std::span<const ProcessId> crashed);

  /// Records that `observer` started/stopped suspecting `subject` at
  /// `when`. Out-of-range ids are ignored (live-path robustness).
  void feed(TimePoint when, ProcessId observer, ProcessId subject,
            bool suspected);

  [[nodiscard]] StabilizationVerdict verdict() const;

 private:
  std::uint32_t n_;
  std::vector<bool> crashed_;
  std::vector<std::uint8_t> view_;  // n*n row-major: observer suspects subject
  TimePoint last_change_{kTimeZero};
};

}  // namespace mmrfd::core
