// DetectorCore — the DSN'03 asynchronous failure-detector protocol as a
// sans-I/O state machine.
//
// The core knows nothing about clocks, sockets or the simulator. A host
// drives it:
//
//   QueryMessage q = core.start_query();          // T1 line: broadcast QUERY
//   ... deliver q to all peers; for each peer query received:
//   ResponseMessage r = core.on_query(from, q');  // T2 (merge + respond)
//   ... for each response received:
//   core.on_response(from, r');                   // returns true on the
//                                                 // (n - f)th response
//   ... once terminated (plus any pacing delay during which late responses
//       may still be fed in):
//   core.finish_round();                          // T1 lines 8-16
//
// Protocol recap (Mostefaoui–Mourgaya–Raynal, generalized presentation):
//   * A query terminates when responses from (n - f) distinct processes have
//     arrived; those responders are the round's *winning* responders. The
//     issuer's own response is always counted first (the paper's
//     convention), so only n - f - 1 remote responses are awaited.
//   * T1: every known process that did not respond to the last query becomes
//     suspected, tagged with the current round counter. If a mistake entry
//     existed for it, the counter first jumps above the mistake's tag so the
//     new suspicion dominates it.
//   * T2: tagged suspicion/mistake information received in a query is merged
//     newest-tag-wins; on a tie between a suspicion and a mistake the
//     mistake prevails (the paper's `<` vs `<=` asymmetry). If the receiver
//     finds *itself* suspected it generates a mistake with a strictly
//     dominating tag — the self-defence that repairs false suspicions.
//
// Completeness needs no assumption: a crashed process stops responding and
// can never defend itself. Eventual weak accuracy needs the behavioral
// property MP (see properties.h).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/tagged_set.h"
#include "common/types.h"
#include "core/failure_detector.h"
#include "core/messages.h"

namespace mmrfd::obs {
class FlightRecorder;
enum class TraceKind : std::uint8_t;
}  // namespace mmrfd::obs

namespace mmrfd::core {

struct DetectorConfig {
  ProcessId self{0};
  std::uint32_t n{0};  ///< |Pi| — known system cardinality
  std::uint32_t f{0};  ///< max number of crashes tolerated, f < n

  /// Count responses that arrive after query termination (e.g. during the
  /// inter-query pacing delay) as responders of the round. Reduces false
  /// suspicions; does not affect correctness (Section 6 of the lineage).
  bool accept_late_responses{true};

  /// Extra winning slack: wait for (n - f + extra_quorum) responses instead
  /// of (n - f). Ablation knob (experiment E7); 0 is the paper's protocol.
  std::uint32_t extra_quorum{0};

  /// Delta-encode queries: track, per peer, the highest state epoch that
  /// peer acknowledged and send only entries changed since then, with the
  /// stable remainder interned as the base epoch id (one integer instead of
  /// O(f) entries). Protocol semantics are bit-identical to the full
  /// encoding — every omitted entry would have been a no-op replay at the
  /// receiver — and the encoding-equivalence harness enforces it. OFF gives
  /// the paper's canonical full encoding, kept as the semantic reference.
  bool delta_queries{true};

  /// Replay-window capacity of the change journal backing delta extraction;
  /// peers whose acknowledgement falls behind the window get a full query
  /// (the epoch-miss fallback). 0 = auto (max(1024, 4 * n)).
  std::uint32_t delta_journal_capacity{0};

  /// Crashed-peer give-up policy: once a peer has been suspected for
  /// giveup_rounds consecutive completed rounds, query it only every
  /// giveup_rounds-th round (a 1/K probe rate) instead of every round.
  /// Crashed peers never ack, so every query to them degrades to the
  /// full-encoding fallback forever — at live n=64 dead peers dominate
  /// full_q. The probe keeps eventual accuracy intact: a falsely suspected
  /// peer still periodically receives the suspicion and can defend, and the
  /// number of simultaneously skipped peers is capped at n - quorum() so a
  /// round can always still reach quorum when suspicions are false.
  /// 0 disables (the paper's query-everyone behavior).
  std::uint32_t giveup_rounds{8};

  /// Self-stabilization guard for the delta encoding: every
  /// resync_interval completed rounds the node discards its per-sender
  /// seen-epoch watermarks, answering the next delta query from each peer
  /// with need_full and forcing one full-encoding refresh. The watermarks
  /// are unverifiable assumptions ("I merged that sender's state through
  /// epoch e"); a transient memory fault can fabricate them too *high*,
  /// which silently suppresses the need_full repair path forever — the
  /// periodic reset bounds the lifetime of any such fabrication, making
  /// re-convergence after arbitrary state corruption a guarantee instead
  /// of a probability. Costs n-1 full queries per node per interval;
  /// irrelevant in full mode. 0 disables.
  std::uint32_t resync_interval{64};

  /// Number of responses that terminate a query. Requires n >= 1 && f < n
  /// (DetectorCore rejects anything else at construction), so n - f >= 1
  /// and no lower clamp is needed; only the ablation knob extra_quorum is
  /// capped at n (a node cannot wait for more responders than exist).
  [[nodiscard]] std::uint32_t quorum() const {
    const std::uint32_t q = n - f + extra_quorum;
    return q > n ? n : q;
  }
};

class DetectorCore final : public FailureDetector {
 public:
  /// Throws std::invalid_argument unless n >= 1, f < n and self < n — a
  /// misconfigured detector (e.g. f >= n, which would underflow quorum())
  /// must fail loudly in every build type, not just under NDEBUG-off.
  explicit DetectorCore(const DetectorConfig& config);

  /// Registers an observer for suspicion transitions (may be nullptr).
  void set_observer(SuspicionObserver* observer) { observer_ = observer; }

  /// Attaches a flight recorder for round/suspicion/resync trace records
  /// (may be nullptr). Recording is passive — no scheduling, no RNG — so
  /// attaching one never perturbs a deterministic run.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  // --- T1: query issuing ---------------------------------------------------

  /// Starts a new round and returns the QUERY to broadcast to all peers
  /// (canonical full encoding). Requires the previous round (if any) to
  /// have been finish_round()ed: a node issues a new query only after the
  /// previous one terminated. Delta-mode hosts use begin_query() +
  /// query_for(peer) instead, building one per-peer message.
  [[nodiscard]] QueryMessage start_query();

  /// Starts a new round without building a message (the delta path).
  void begin_query();

  /// The canonical full query for the current round (self-contained; every
  /// entry of both sets). Requires a round started this cycle.
  [[nodiscard]] QueryMessage full_query() const;

  /// True when `peer` must receive the full encoding this round: delta mode
  /// off, nothing acknowledged yet, or its acknowledgement fell out of the
  /// journal's replay window (epoch miss / requested resync). Hosts use
  /// this to share one full payload across all such peers.
  [[nodiscard]] bool full_query_needed(ProcessId peer) const;

  /// The query to send `peer` this round: a delta against the epoch the
  /// peer last acknowledged, or the full encoding when
  /// full_query_needed(peer). Per-round results are memoized by base epoch.
  [[nodiscard]] QueryMessage query_for(ProcessId peer);

  /// Give-up policy decision for the current round: false when `peer` has
  /// been suspected for >= giveup_rounds consecutive rounds and this round
  /// is not its 1/K probe (see DetectorConfig::giveup_rounds). Hosts skip
  /// the send entirely. Valid after begin_query()/start_query().
  [[nodiscard]] bool should_query(ProcessId peer) const {
    return peer.value >= skip_.size() || !skip_[peer.value];
  }

  /// Feeds a RESPONSE. Returns true exactly once per round: when the quorum
  /// (n - f)th distinct response arrives and the query terminates. Stale
  /// (old-seq) and duplicate responses are ignored.
  bool on_response(ProcessId from, const ResponseMessage& response);

  /// Runs the suspicion-generation step over known \ rec_from and advances
  /// the round counter (T1 lines 9-16). Requires query_terminated().
  void finish_round();

  // --- T2: query serving ---------------------------------------------------

  /// Merges the query's suspicion/mistake information into local state and
  /// returns the RESPONSE to send back to `from`.
  [[nodiscard]] ResponseMessage on_query(ProcessId from,
                                         const QueryMessage& query);

  // --- observers -----------------------------------------------------------

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;

  [[nodiscard]] const TaggedSet& suspected_set() const { return suspected_; }
  [[nodiscard]] const TaggedSet& mistake_set() const { return mistake_; }
  [[nodiscard]] Tag counter() const { return counter_; }
  [[nodiscard]] QuerySeq query_seq() const { return seq_; }
  [[nodiscard]] bool query_in_progress() const { return in_progress_; }
  [[nodiscard]] bool query_terminated() const { return terminated_; }

  /// All responders of the current/last round so far (self included), in
  /// arrival order.
  [[nodiscard]] std::span<const ProcessId> rec_from() const {
    return rec_from_;
  }
  /// The first quorum() responders (self included) — the *winning* set used
  /// by the MP property machinery.
  [[nodiscard]] std::span<const ProcessId> winning() const { return winning_; }

  /// Processes this node has ever heard a query from (plus the initial
  /// membership). With known membership this is Pi \ {self} from the start.
  [[nodiscard]] std::span<const ProcessId> known() const { return known_; }

  [[nodiscard]] const DetectorConfig& config() const { return config_; }

  /// Rounds completed (finish_round() calls).
  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_; }

  /// Consecutive completed rounds `peer` has spent in the suspected set
  /// (give-up policy input; resets to 0 the moment the peer stops being
  /// suspected).
  [[nodiscard]] std::uint32_t suspect_streak(ProcessId peer) const {
    return peer.value < streak_.size() ? streak_[peer.value] : 0;
  }

  /// Total sends the give-up policy elided (skip decisions made by
  /// begin_query(), summed over all rounds).
  [[nodiscard]] std::uint64_t queries_skipped() const {
    return queries_skipped_;
  }

  // --- transient-fault injection -------------------------------------------

  /// Self-stabilization test hook: scrambles this node's protocol state the
  /// way a transient memory fault would — suspected/mistake sets replaced
  /// with arbitrary entries (possibly a self-suspicion no correct execution
  /// produces), the round counter shifted, the change journal reset to an
  /// arbitrary epoch and the per-peer ack/seen watermarks overwritten.
  /// Observer transitions are fired for the set diff so event logs track
  /// what the node now (wrongly) believes. Deterministic per seed.
  /// The sweeps assert the cluster re-converges afterwards.
  void inject_transient_corruption(std::uint64_t seed);

  // --- delta-encoding observers --------------------------------------------

  /// Current state epoch (count of suspicion/mistake mutations).
  [[nodiscard]] Epoch state_epoch() const { return delta_.epoch(); }

  /// Highest of our epochs `peer` has acknowledged (0 = none).
  [[nodiscard]] Epoch acked_epoch(ProcessId peer) const {
    return delta_.acked(peer);
  }

  /// Highest epoch of `sender`'s state we have merged (0 = none).
  [[nodiscard]] Epoch seen_epoch(ProcessId sender) const {
    return delta_.seen(sender);
  }

 private:
  void add_suspicion(ProcessId id, Tag tag);
  void add_mistake(ProcessId id, Tag tag);
  /// Largest tag attached to `id` in either set, if any. The sets are
  /// mutually exclusive, so this is simply the tag of the only entry.
  /// O(1) via the dense mirror for id < n; binary search otherwise.
  [[nodiscard]] std::optional<Tag> local_tag(ProcessId id) const;
  /// True iff `id`'s entry (if any) lives in the mistake set.
  [[nodiscard]] bool is_mistake(ProcessId id) const;

  void trace(obs::TraceKind kind, std::uint32_t a, std::uint32_t b) const;

  DetectorConfig config_;
  SuspicionObserver* observer_{nullptr};
  obs::FlightRecorder* recorder_{nullptr};

  Tag counter_{0};
  TaggedSet suspected_;
  TaggedSet mistake_;
  /// Dense O(1) mirror of the two sets for ids < n: the merge loop probes
  /// local state once per received entry, and the sorted sets' binary
  /// search + cache-miss chain dominated large-n profiles. Ids >= n (bogus
  /// wire senders on the live path) fall back to the sets themselves.
  /// kind: 0 = absent, 1 = suspected, 2 = mistake.
  std::vector<Tag> dense_tag_;
  std::vector<std::uint8_t> dense_kind_;
  std::vector<ProcessId> known_;  // sorted, excludes self

  QuerySeq seq_{0};
  bool in_progress_{false};
  bool terminated_{false};
  std::vector<ProcessId> rec_from_;  // arrival order
  std::vector<bool> responded_;      // per id < n: in rec_from_ this round
  std::vector<ProcessId> winning_;
  std::uint64_t rounds_{0};

  // Give-up policy state: per-peer consecutive-suspected-round streaks
  // (updated by finish_round()) and the current round's skip set (computed
  // by begin_query(), capped at n - quorum() simultaneous skips).
  std::vector<std::uint32_t> streak_;
  std::vector<bool> skip_;
  std::uint64_t queries_skipped_{0};

  // Delta encoding (maintained in every mode so flipping the flag or
  // inspecting epochs is always valid; record() is O(1)). The watermark
  // rules live in common::DeltaState, shared with SimpleDetectorCore.
  DeltaState delta_;
  /// Per-round memo of built queries, keyed by base epoch (0 = full): all
  /// peers that acked the same epoch share one construction.
  std::vector<std::pair<Epoch, QueryMessage>> round_queries_;
};

}  // namespace mmrfd::core
