// SimpleDetectorCore — the tag-free variant of the query-response detector,
// sound only under the *perpetual* message pattern (class S).
//
// If MP holds from the very first query (no correct process is ever missed
// by its witnesses), no false suspicion of the witness can ever occur and
// the whole mistake/tag machinery of the full protocol is dead weight: it
// suffices to suspect `known \ rec_from` and to unsuspect a process when a
// message from it arrives. This is the natural "simplest thing that works"
// under the strong assumption — and it is *wrong* under the eventual
// assumption: a process suspected during the unstable prefix can only be
// excused by direct contact, so third parties holding stale suspicions of a
// witness they never hear from directly keep them forever, breaking
// eventual weak accuracy where the full protocol recovers.
//
// The pair (SimpleDetectorCore, DetectorCore) is the repository's ablation
// of the paper's central design choice; experiment E9 measures it.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/failure_detector.h"
#include "core/messages.h"

namespace mmrfd::core {

struct SimpleDetectorConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  std::uint32_t f{0};

  /// Delta-encode queries (same watermark/epoch machinery as DetectorCore).
  /// Receivers ignore query contents for state either way — the delta only
  /// shrinks wire bytes, so the E9 message-cost ablation stays apples to
  /// apples with the full protocol's delta mode.
  bool delta_queries{true};

  /// Replay-window capacity; 0 = auto (max(1024, 4 * n)).
  std::uint32_t delta_journal_capacity{0};

  /// Requires n >= 1 && f < n (validated by SimpleDetectorCore), so n - f
  /// needs no lower clamp — same contract as DetectorConfig::quorum().
  [[nodiscard]] std::uint32_t quorum() const { return n - f; }
};

class SimpleDetectorCore final : public FailureDetector {
 public:
  /// Throws std::invalid_argument unless n >= 1, f < n and self < n (the
  /// same loud rejection of misconfiguration as DetectorCore).
  explicit SimpleDetectorCore(const SimpleDetectorConfig& config);

  void set_observer(SuspicionObserver* observer) { observer_ = observer; }

  /// Starts a round. The query still carries the suspected set (so peers
  /// can be measured/observed), but receivers ignore it for state updates —
  /// there is no way to order stale vs fresh information without tags.
  [[nodiscard]] QueryMessage start_query();

  /// Delta path, mirroring DetectorCore: begin the round, then build one
  /// message per peer. A delta lists only the ids suspected since the
  /// peer's acknowledged epoch (cleared ids are simply not re-listed —
  /// receivers never merge this content, so no removal marker is needed).
  void begin_query();
  [[nodiscard]] QueryMessage full_query() const;
  [[nodiscard]] bool full_query_needed(ProcessId peer) const;
  [[nodiscard]] QueryMessage query_for(ProcessId peer);

  /// Returns true when the quorum-th distinct response arrives.
  bool on_response(ProcessId from, const ResponseMessage& response);

  /// Suspects known \ rec_from; unsuspects every responder.
  void finish_round();

  /// Any direct message from a live process clears its suspicion.
  [[nodiscard]] ResponseMessage on_query(ProcessId from,
                                         const QueryMessage& query);

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;
  [[nodiscard]] bool query_terminated() const { return terminated_; }
  [[nodiscard]] QuerySeq query_seq() const { return seq_; }
  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_; }
  [[nodiscard]] const SimpleDetectorConfig& config() const { return config_; }

 private:
  void set_suspected(ProcessId id, bool suspect);

  SimpleDetectorConfig config_;
  SuspicionObserver* observer_{nullptr};
  std::vector<bool> suspected_;
  std::size_t suspect_count_{0};
  QuerySeq seq_{0};
  bool in_progress_{false};
  bool terminated_{false};
  std::vector<ProcessId> rec_from_;  // arrival order
  std::vector<bool> responded_;      // per id: in rec_from_ this round
  std::uint64_t rounds_{0};

  // Delta encoding: the watermark rules live in common::DeltaState,
  // shared with DetectorCore.
  DeltaState delta_;
};

}  // namespace mmrfd::core
