#include "core/detector_core.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "obs/flight_recorder.h"

namespace mmrfd::core {

namespace {
void insert_sorted(std::vector<ProcessId>& v, ProcessId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}
}  // namespace

DetectorCore::DetectorCore(const DetectorConfig& config)
    : config_(config), delta_(config.n, config.delta_journal_capacity) {
  if (config_.n < 1) {
    throw std::invalid_argument("DetectorConfig: n must be >= 1, got " +
                                std::to_string(config_.n));
  }
  if (config_.f >= config_.n) {
    throw std::invalid_argument(
        "DetectorConfig: f must be < n (got f=" + std::to_string(config_.f) +
        ", n=" + std::to_string(config_.n) + ")");
  }
  if (config_.self.value >= config_.n) {
    throw std::invalid_argument(
        "DetectorConfig: self must be < n (got self=" +
        std::to_string(config_.self.value) +
        ", n=" + std::to_string(config_.n) + ")");
  }
  // Known membership from the start (the DSN'03 model): every process of Pi
  // except this one is a suspicion candidate.
  known_.reserve(config_.n - 1);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i != config_.self.value) known_.push_back(ProcessId{i});
  }
  dense_tag_.assign(config_.n, 0);
  dense_kind_.assign(config_.n, 0);
  responded_.assign(config_.n, false);
  streak_.assign(config_.n, 0);
  skip_.assign(config_.n, false);
}

QueryMessage DetectorCore::start_query() {
  begin_query();
  return full_query();
}

void DetectorCore::begin_query() {
  assert(!in_progress_ || terminated_);
  // Transient corruption can plant a self-suspicion no correct execution
  // produces. Repair it before building this round's queries (self-defence
  // without a witness) so they already carry the dominating mistake; in an
  // uncorrupted run the branch never fires and schedules are untouched.
  if (is_suspected(config_.self)) {
    counter_ = std::max(counter_, *local_tag(config_.self) + 1);
    add_mistake(config_.self, counter_);
  }
  ++seq_;
  in_progress_ = true;
  rec_from_.clear();
  winning_.clear();
  responded_.assign(config_.n, false);
  // The issuer's own response is always counted, and always among the first
  // quorum() (paper convention).
  rec_from_.push_back(config_.self);
  responded_[config_.self.value] = true;
  winning_.push_back(config_.self);
  terminated_ = rec_from_.size() >= config_.quorum();
  // Give-up skip set: peers suspected for >= K consecutive rounds are
  // queried only on their 1/K probe rounds. At most n - quorum() peers may
  // be skipped simultaneously (lowest ids first, deterministically) so a
  // round can still terminate even if every skip decision is wrong.
  if (config_.giveup_rounds > 0) {
    std::fill(skip_.begin(), skip_.end(), false);
    const std::uint32_t k = config_.giveup_rounds;
    const std::size_t budget = config_.n - config_.quorum();
    // Budget goes to the LONGEST streaks first (ties to the lowest id, for
    // determinism). A genuinely crashed peer accumulates an unbounded
    // streak, while a falsely suspected live peer's streak restarts on
    // every repair — under churn an id-ordered scan hands the whole budget
    // to falsely suspected low-id live peers and keeps querying the
    // actually-dead ones, which both wastes the policy and (worse) starves
    // the round of responders it needs for quorum.
    std::vector<ProcessId> cand;
    for (ProcessId pj : known_) {
      if (pj.value >= streak_.size()) continue;
      const std::uint32_t s = streak_[pj.value];
      if (s >= k && s % k != 0) cand.push_back(pj);
    }
    std::sort(cand.begin(), cand.end(), [&](ProcessId a, ProcessId b) {
      if (streak_[a.value] != streak_[b.value]) {
        return streak_[a.value] > streak_[b.value];
      }
      return a.value < b.value;
    });
    if (cand.size() > budget) cand.resize(budget);
    for (ProcessId pj : cand) {
      skip_[pj.value] = true;
      ++queries_skipped_;
      trace(obs::TraceKind::kGiveUpSkip, pj.value,
            static_cast<std::uint32_t>(streak_[pj.value]));
    }
  }
  delta_.begin_round();
  round_queries_.clear();
  trace(obs::TraceKind::kRoundOpen,
        static_cast<std::uint32_t>(seq_), 0);
}

QueryMessage DetectorCore::full_query() const {
  QueryMessage q;
  q.seq = seq_;
  // Reference full mode stays epoch-less — byte-identical to the paper's
  // encoding; the delta machinery only engages via acknowledgements.
  q.epoch = config_.delta_queries ? delta_.sent_epoch() : 0;
  q.entries.reserve(suspected_.size() + mistake_.size());
  q.entries.assign(suspected_.entries().begin(), suspected_.entries().end());
  q.entries.insert(q.entries.end(), mistake_.entries().begin(),
                   mistake_.entries().end());
  q.suspected_count = static_cast<std::uint32_t>(suspected_.size());
  return q;
}

bool DetectorCore::full_query_needed(ProcessId peer) const {
  if (!config_.delta_queries) return true;
  return delta_.full_needed(peer, suspected_.size() + mistake_.size());
}

QueryMessage DetectorCore::query_for(ProcessId peer) {
  assert(in_progress_);
  assert(delta_.epoch() == delta_.sent_epoch());  // no mutation since begin
  const Epoch base = full_query_needed(peer) ? 0 : delta_.acked(peer);
  for (const auto& [b, q] : round_queries_) {
    if (b == base) return q;
  }
  QueryMessage q;
  if (base == 0) {
    q = full_query();
  } else {
    q.seq = seq_;
    q.epoch = delta_.sent_epoch();
    q.base_epoch = base;
    q.set_delta(true);
    std::vector<TaggedEntry> mist;
    for (ProcessId id : delta_.journal().changed_since(base)) {
      // In a correct execution every id ever touched stays in exactly one
      // of the two sets (erase only ever accompanies a re-add), but
      // transient corruption can leave the replay window naming ids that
      // are now in neither — absence is not gossipable, so skip them.
      if (const auto t = suspected_.tag_of(id)) {
        q.entries.push_back({id, *t});
      } else if (const auto m = mistake_.tag_of(id)) {
        mist.push_back({id, *m});
      }
    }
    q.suspected_count = static_cast<std::uint32_t>(q.entries.size());
    q.entries.insert(q.entries.end(), mist.begin(), mist.end());
  }
  round_queries_.emplace_back(base, q);
  return q;
}

bool DetectorCore::on_response(ProcessId from, const ResponseMessage& response) {
  if (!in_progress_ || response.seq != seq_) return false;  // stale round
  // Watermark bookkeeping: a response to the current query proves the peer
  // merged its contents, i.e. our state through the epoch it echoes. Valid
  // even for responses rejected below as late/duplicate (DeltaState clamps
  // the ack and drops the watermark on need_full).
  delta_.on_ack(from, response.ack_epoch, response.need_full);
  if (response.need_full) {
    trace(obs::TraceKind::kNeedFullRx, from.value,
          0);
  }
  // A sender id outside Pi cannot count toward a quorum (only reachable via
  // forged datagrams on the live path; simulated senders are always < n).
  if (from.value >= config_.n) return false;
  if (terminated_ && !config_.accept_late_responses) return false;
  if (responded_[from.value]) return false;  // duplicate
  responded_[from.value] = true;
  rec_from_.push_back(from);
  if (!terminated_) {
    winning_.push_back(from);
    if (rec_from_.size() >= config_.quorum()) {
      terminated_ = true;
      std::sort(winning_.begin(), winning_.end());
      return true;
    }
  }
  return false;
}

void DetectorCore::finish_round() {
  assert(terminated_);
  // T1 lines 9-15: suspect every known process that did not respond and is
  // not already suspected.
  for (ProcessId pj : known_) {
    // Ids >= n (bogus live-path senders remembered in known_) can never
    // have responded — on_response rejects them.
    if (pj.value < responded_.size() && responded_[pj.value]) continue;
    const auto mine = local_tag(pj);
    if (mine.has_value() && !is_mistake(pj)) continue;  // already suspected
    if (mine.has_value()) {
      // A stale mistake exists: the fresh suspicion must dominate it.
      counter_ = std::max(counter_, *mine + 1);
      mistake_.erase(pj);
    }
    add_suspicion(pj, counter_);
  }
  ++counter_;  // T1 line 16
  ++rounds_;
  in_progress_ = false;
  // Give-up bookkeeping: extend or reset each peer's consecutive-suspected
  // streak against the post-suspicion-step state.
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i == config_.self.value) continue;
    streak_[i] = dense_kind_[i] == 1 ? streak_[i] + 1 : 0;
  }
  // Self-stabilization guard: periodically discard the per-sender seen
  // watermarks (see DetectorConfig::resync_interval). The next delta query
  // from each peer gets need_full, forcing one full refresh per sender —
  // which bounds the lifetime of any fabricated watermark.
  if (config_.delta_queries && config_.resync_interval > 0 &&
      rounds_ % config_.resync_interval == 0) {
    delta_.reset_seen();
    trace(obs::TraceKind::kResync,
          static_cast<std::uint32_t>(delta_.epoch()), 0);
  }
  trace(obs::TraceKind::kRoundClose,
        static_cast<std::uint32_t>(seq_),
        static_cast<std::uint32_t>(suspected_.size()));
}

ResponseMessage DetectorCore::on_query(ProcessId from,
                                       const QueryMessage& query) {
  insert_sorted(known_, from);  // T2 line 20 (no-op with known membership)

  // Epoch miss: a delta built on a base we never acknowledged (we lost
  // state, or the ack the sender saw was not ours). The entries themselves
  // are still safe to merge — tagged information is valid regardless of
  // transport — but we cannot claim the sender's state through query.epoch,
  // so we ask for a full resync instead of advancing seen_epoch_.
  const bool epoch_miss =
      delta_.epoch_miss(from, query.is_delta(), query.base_epoch);

  // First loop (T2 lines 21-31): merge the sender's suspicions.
  for (const TaggedEntry& e : query.suspected()) {
    const auto mine = local_tag(e.id);
    const bool newer = !mine.has_value() || *mine < e.tag;
    if (!newer) continue;
    if (e.id == config_.self) {
      // Self-defence (lines 23-25): I am alive; generate a mistake whose tag
      // strictly dominates the suspicion. No correct execution puts self in
      // the suspected set, but transient state corruption can — add_mistake
      // erases any such entry instead of asserting it away.
      counter_ = std::max(counter_, e.tag + 1);
      add_mistake(config_.self, counter_);
    } else {
      mistake_.erase(e.id);  // line 28
      add_suspicion(e.id, e.tag);
    }
  }

  // Second loop (T2 lines 32-37): merge the sender's mistakes. Note `<=`:
  // on a tag tie the mistake wins over the suspicion.
  for (const TaggedEntry& e : query.mistakes()) {
    const auto mine = local_tag(e.id);
    const bool newer_or_tied = !mine.has_value() || *mine <= e.tag;
    if (!newer_or_tied) continue;
    if (mine.has_value() && *mine == e.tag && is_mistake(e.id)) {
      // Identical entry already present: re-adding changes no state, and
      // firing on_mistake for it floods the event log — at n = 1000 a
      // post-spike sweep logged ~200M of these no-op "events" (6+ GB).
      // Observers now see mistake *transitions*, matching on_suspected.
      continue;
    }
    add_mistake(e.id, e.tag);
  }

  if (!epoch_miss) delta_.note_seen(from, query.epoch);
  if (epoch_miss) {
    trace(obs::TraceKind::kNeedFullTx, from.value,
          0);
  }
  return ResponseMessage{query.seq, query.epoch, epoch_miss};  // T2 line 38
}

void DetectorCore::inject_transient_corruption(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::vector<std::uint8_t> old_kind = dense_kind_;

  // Round counter: rewound (so this node's future tags go stale against
  // state the peers already hold) or pushed ahead.
  counter_ = rng.next_below(counter_ + 16);

  // Replace both sets with arbitrary entries — including, possibly, the
  // self-suspicion no correct execution produces. Tags land around the
  // (already scrambled) counter.
  suspected_.clear();
  mistake_.clear();
  std::fill(dense_kind_.begin(), dense_kind_.end(), std::uint8_t{0});
  std::fill(dense_tag_.begin(), dense_tag_.end(), Tag{0});
  const Tag tag_ceiling = counter_ + 8;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const double u = rng.next_double();
    const std::uint8_t kind = u < 0.25 ? 1 : (u < 0.40 ? 2 : 0);
    if (kind == 0) continue;
    const Tag tag = rng.next_below(tag_ceiling);
    if (kind == 1) {
      suspected_.add(ProcessId{i}, tag);
    } else {
      mistake_.add(ProcessId{i}, tag);
    }
    dense_kind_[i] = kind;
    dense_tag_[i] = tag;
  }

  // Journal: restart the replay window at an arbitrary epoch (zero, below
  // the true epoch, or far above it), then journal every id whose
  // classification changed — including ids corrupted to *absent*, which
  // query_for() must tolerate finding in the window.
  const Epoch true_epoch = delta_.epoch();
  const std::uint64_t mode = rng.next_below(3);
  const Epoch new_base = mode == 0   ? 0
                         : mode == 1 ? rng.next_below(true_epoch + 1)
                                     : true_epoch + 1000000;
  delta_.corrupt_journal(new_base);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (dense_kind_[i] != old_kind[i] || dense_kind_[i] != 0) {
      delta_.record(ProcessId{i});
    }
  }

  // Watermarks. acked: either at-or-below the journal's new base (a
  // covered delta then replays the entire corrupted suffix) or absurdly
  // high (forcing the full fallback) — both routes deliver every corrupted
  // entry to its peer, which is what lets falsely-accused victims defend
  // and the sweep converge deterministically. seen: fully arbitrary,
  // including the dangerous too-high fabrication that silently suppresses
  // need_full — the resync_interval guard bounds its lifetime.
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (rng.bernoulli(0.5)) {
      delta_.corrupt_acked(ProcessId{i}, rng.bernoulli(0.25)
                                             ? new_base + 1000000000
                                             : rng.next_below(new_base + 1));
    }
    if (rng.bernoulli(0.5)) {
      delta_.corrupt_seen(ProcessId{i},
                          rng.next_below(true_epoch + 1000000));
    }
  }

  // Observer transitions for the set diff: event logs must track what the
  // node now (wrongly) believes — the stabilization checker feeds off them.
  if (observer_ != nullptr) {
    for (std::uint32_t i = 0; i < config_.n; ++i) {
      const ProcessId id{i};
      if (old_kind[i] == 1 && dense_kind_[i] != 1) {
        observer_->on_cleared(id, dense_tag_[i]);
      } else if (old_kind[i] != 1 && dense_kind_[i] == 1) {
        observer_->on_suspected(id, dense_tag_[i]);
      }
      if (old_kind[i] != 2 && dense_kind_[i] == 2) {
        observer_->on_mistake(id, dense_tag_[i]);
      }
    }
  }
}

std::vector<ProcessId> DetectorCore::suspected() const {
  return suspected_.ids();
}

bool DetectorCore::is_suspected(ProcessId id) const {
  if (id.value < dense_kind_.size()) return dense_kind_[id.value] == 1;
  return suspected_.contains(id);
}

void DetectorCore::add_suspicion(ProcessId id, Tag tag) {
  assert(id != config_.self);
  assert(!mistake_.contains(id));  // callers erase the mistake entry first
  const bool was_suspected = suspected_.contains(id);
  suspected_.add(id, tag);
  if (id.value < dense_kind_.size()) {
    dense_kind_[id.value] = 1;
    dense_tag_[id.value] = tag;
  }
  delta_.record(id);
  if (!was_suspected) {
    trace(obs::TraceKind::kSuspectAdd, id.value,
          static_cast<std::uint32_t>(tag));
    if (observer_ != nullptr) observer_->on_suspected(id, tag);
  }
}

void DetectorCore::add_mistake(ProcessId id, Tag tag) {
  const bool was_suspected = suspected_.contains(id);
  if (was_suspected) suspected_.erase(id);
  mistake_.add(id, tag);
  if (id.value < dense_kind_.size()) {
    dense_kind_[id.value] = 2;
    dense_tag_[id.value] = tag;
  }
  delta_.record(id);
  if (was_suspected) {
    trace(obs::TraceKind::kSuspectDrop, id.value,
          static_cast<std::uint32_t>(tag));
  }
  if (observer_ != nullptr) {
    if (was_suspected) observer_->on_cleared(id, tag);
    observer_->on_mistake(id, tag);
  }
}

std::optional<Tag> DetectorCore::local_tag(ProcessId id) const {
  if (id.value < dense_kind_.size()) {
    if (dense_kind_[id.value] == 0) return std::nullopt;
    return dense_tag_[id.value];
  }
  if (auto t = suspected_.tag_of(id)) return t;
  return mistake_.tag_of(id);
}

bool DetectorCore::is_mistake(ProcessId id) const {
  if (id.value < dense_kind_.size()) return dense_kind_[id.value] == 2;
  return mistake_.contains(id);
}

void DetectorCore::trace(obs::TraceKind kind, std::uint32_t a,
                         std::uint32_t b) const {
  if (recorder_ != nullptr) recorder_->record(kind, a, b);
}

}  // namespace mmrfd::core
