#include "core/detector_core.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace mmrfd::core {

namespace {
bool contains_sorted(const std::vector<ProcessId>& v, ProcessId id) {
  return std::binary_search(v.begin(), v.end(), id);
}

void insert_sorted(std::vector<ProcessId>& v, ProcessId id) {
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}
}  // namespace

DetectorCore::DetectorCore(const DetectorConfig& config) : config_(config) {
  if (config_.n < 1) {
    throw std::invalid_argument("DetectorConfig: n must be >= 1, got " +
                                std::to_string(config_.n));
  }
  if (config_.f >= config_.n) {
    throw std::invalid_argument(
        "DetectorConfig: f must be < n (got f=" + std::to_string(config_.f) +
        ", n=" + std::to_string(config_.n) + ")");
  }
  if (config_.self.value >= config_.n) {
    throw std::invalid_argument(
        "DetectorConfig: self must be < n (got self=" +
        std::to_string(config_.self.value) +
        ", n=" + std::to_string(config_.n) + ")");
  }
  // Known membership from the start (the DSN'03 model): every process of Pi
  // except this one is a suspicion candidate.
  known_.reserve(config_.n - 1);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (i != config_.self.value) known_.push_back(ProcessId{i});
  }
}

QueryMessage DetectorCore::start_query() {
  assert(!in_progress_ || terminated_);
  ++seq_;
  in_progress_ = true;
  rec_from_.clear();
  winning_.clear();
  // The issuer's own response is always counted, and always among the first
  // quorum() (paper convention).
  rec_from_.push_back(config_.self);
  winning_.push_back(config_.self);
  terminated_ = rec_from_.size() >= config_.quorum();

  QueryMessage q;
  q.seq = seq_;
  q.suspected.assign(suspected_.entries().begin(), suspected_.entries().end());
  q.mistakes.assign(mistake_.entries().begin(), mistake_.entries().end());
  return q;
}

bool DetectorCore::on_response(ProcessId from, const ResponseMessage& response) {
  if (!in_progress_ || response.seq != seq_) return false;  // stale round
  if (terminated_ && !config_.accept_late_responses) return false;
  auto it = std::lower_bound(rec_from_.begin(), rec_from_.end(), from);
  if (it != rec_from_.end() && *it == from) return false;  // duplicate
  rec_from_.insert(it, from);
  if (!terminated_) {
    winning_.push_back(from);
    if (rec_from_.size() >= config_.quorum()) {
      terminated_ = true;
      std::sort(winning_.begin(), winning_.end());
      return true;
    }
  }
  return false;
}

void DetectorCore::finish_round() {
  assert(terminated_);
  // T1 lines 9-15: suspect every known process that did not respond and is
  // not already suspected.
  for (ProcessId pj : known_) {
    if (contains_sorted(rec_from_, pj)) continue;
    if (suspected_.contains(pj)) continue;
    if (auto mtag = mistake_.tag_of(pj)) {
      // A stale mistake exists: the fresh suspicion must dominate it.
      counter_ = std::max(counter_, *mtag + 1);
      mistake_.erase(pj);
    }
    add_suspicion(pj, counter_);
  }
  ++counter_;  // T1 line 16
  ++rounds_;
  in_progress_ = false;
}

ResponseMessage DetectorCore::on_query(ProcessId from,
                                       const QueryMessage& query) {
  insert_sorted(known_, from);  // T2 line 20 (no-op with known membership)

  // First loop (T2 lines 21-31): merge the sender's suspicions.
  for (const TaggedEntry& e : query.suspected) {
    const auto mine = local_tag(e.id);
    const bool newer = !mine.has_value() || *mine < e.tag;
    if (!newer) continue;
    if (e.id == config_.self) {
      // Self-defence (lines 23-25): I am alive; generate a mistake whose tag
      // strictly dominates the suspicion.
      counter_ = std::max(counter_, e.tag + 1);
      assert(!suspected_.contains(config_.self));
      add_mistake(config_.self, counter_);
    } else {
      mistake_.erase(e.id);  // line 28
      add_suspicion(e.id, e.tag);
    }
  }

  // Second loop (T2 lines 32-37): merge the sender's mistakes. Note `<=`:
  // on a tag tie the mistake wins over the suspicion.
  for (const TaggedEntry& e : query.mistakes) {
    const auto mine = local_tag(e.id);
    const bool newer_or_tied = !mine.has_value() || *mine <= e.tag;
    if (!newer_or_tied) continue;
    if (mine.has_value() && *mine == e.tag && mistake_.contains(e.id)) {
      // Identical entry already present: re-adding changes no state, and
      // firing on_mistake for it floods the event log — at n = 1000 a
      // post-spike sweep logged ~200M of these no-op "events" (6+ GB).
      // Observers now see mistake *transitions*, matching on_suspected.
      continue;
    }
    add_mistake(e.id, e.tag);
  }

  return ResponseMessage{query.seq};  // T2 line 38
}

std::vector<ProcessId> DetectorCore::suspected() const {
  return suspected_.ids();
}

bool DetectorCore::is_suspected(ProcessId id) const {
  return suspected_.contains(id);
}

void DetectorCore::add_suspicion(ProcessId id, Tag tag) {
  assert(id != config_.self);
  assert(!mistake_.contains(id));  // callers erase the mistake entry first
  const bool was_suspected = suspected_.contains(id);
  suspected_.add(id, tag);
  if (!was_suspected && observer_ != nullptr) {
    observer_->on_suspected(id, tag);
  }
}

void DetectorCore::add_mistake(ProcessId id, Tag tag) {
  const bool was_suspected = suspected_.contains(id);
  if (was_suspected) suspected_.erase(id);
  mistake_.add(id, tag);
  if (observer_ != nullptr) {
    if (was_suspected) observer_->on_cleared(id, tag);
    observer_->on_mistake(id, tag);
  }
}

std::optional<Tag> DetectorCore::local_tag(ProcessId id) const {
  if (auto t = suspected_.tag_of(id)) return t;
  return mistake_.tag_of(id);
}

}  // namespace mmrfd::core
