#include "core/simple_detector.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace mmrfd::core {

SimpleDetectorCore::SimpleDetectorCore(const SimpleDetectorConfig& config)
    : config_(config), suspected_(config.n, false) {
  if (config_.n < 1) {
    throw std::invalid_argument("SimpleDetectorConfig: n must be >= 1, got " +
                                std::to_string(config_.n));
  }
  if (config_.f >= config_.n) {
    throw std::invalid_argument(
        "SimpleDetectorConfig: f must be < n (got f=" +
        std::to_string(config_.f) + ", n=" + std::to_string(config_.n) + ")");
  }
  if (config_.self.value >= config_.n) {
    throw std::invalid_argument(
        "SimpleDetectorConfig: self must be < n (got self=" +
        std::to_string(config_.self.value) +
        ", n=" + std::to_string(config_.n) + ")");
  }
}

QueryMessage SimpleDetectorCore::start_query() {
  assert(!in_progress_ || terminated_);
  ++seq_;
  in_progress_ = true;
  rec_from_.clear();
  rec_from_.push_back(config_.self);
  terminated_ = rec_from_.size() >= config_.quorum();

  QueryMessage q;
  q.seq = seq_;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) q.suspected.push_back({ProcessId{i}, 0});
  }
  return q;
}

bool SimpleDetectorCore::on_response(ProcessId from,
                                     const ResponseMessage& response) {
  if (!in_progress_ || response.seq != seq_) return false;
  auto it = std::lower_bound(rec_from_.begin(), rec_from_.end(), from);
  if (it != rec_from_.end() && *it == from) return false;
  rec_from_.insert(it, from);
  // A response is direct evidence of life.
  set_suspected(from, false);
  if (!terminated_ && rec_from_.size() >= config_.quorum()) {
    terminated_ = true;
    return true;
  }
  return false;
}

void SimpleDetectorCore::finish_round() {
  assert(terminated_);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const ProcessId pj{i};
    if (pj == config_.self) continue;
    if (!std::binary_search(rec_from_.begin(), rec_from_.end(), pj)) {
      set_suspected(pj, true);
    }
  }
  ++rounds_;
  in_progress_ = false;
}

ResponseMessage SimpleDetectorCore::on_query(ProcessId from,
                                             const QueryMessage& query) {
  // Direct evidence of life; the piggybacked sets are NOT merged — without
  // tags, adopting third-party suspicions would poison the detector with
  // unorderable stale information.
  set_suspected(from, false);
  return ResponseMessage{query.seq};
}

std::vector<ProcessId> SimpleDetectorCore::suspected() const {
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) out.push_back(ProcessId{i});
  }
  return out;
}

bool SimpleDetectorCore::is_suspected(ProcessId id) const {
  return id.value < suspected_.size() && suspected_[id.value];
}

void SimpleDetectorCore::set_suspected(ProcessId id, bool suspect) {
  assert(id != config_.self || !suspect);
  if (suspected_[id.value] == suspect) return;
  suspected_[id.value] = suspect;
  if (observer_ != nullptr) {
    if (suspect) {
      observer_->on_suspected(id, 0);
    } else {
      observer_->on_cleared(id, 0);
    }
  }
}

}  // namespace mmrfd::core
