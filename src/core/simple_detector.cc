#include "core/simple_detector.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace mmrfd::core {

SimpleDetectorCore::SimpleDetectorCore(const SimpleDetectorConfig& config)
    : config_(config),
      suspected_(config.n, false),
      delta_(config.n, config.delta_journal_capacity) {
  if (config_.n < 1) {
    throw std::invalid_argument("SimpleDetectorConfig: n must be >= 1, got " +
                                std::to_string(config_.n));
  }
  if (config_.f >= config_.n) {
    throw std::invalid_argument(
        "SimpleDetectorConfig: f must be < n (got f=" +
        std::to_string(config_.f) + ", n=" + std::to_string(config_.n) + ")");
  }
  if (config_.self.value >= config_.n) {
    throw std::invalid_argument(
        "SimpleDetectorConfig: self must be < n (got self=" +
        std::to_string(config_.self.value) +
        ", n=" + std::to_string(config_.n) + ")");
  }
}

QueryMessage SimpleDetectorCore::start_query() {
  begin_query();
  return full_query();
}

void SimpleDetectorCore::begin_query() {
  assert(!in_progress_ || terminated_);
  ++seq_;
  in_progress_ = true;
  rec_from_.clear();
  responded_.assign(config_.n, false);
  rec_from_.push_back(config_.self);
  responded_[config_.self.value] = true;
  terminated_ = rec_from_.size() >= config_.quorum();
  delta_.begin_round();
}

QueryMessage SimpleDetectorCore::full_query() const {
  QueryMessage q;
  q.seq = seq_;
  q.epoch = config_.delta_queries ? delta_.sent_epoch() : 0;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) q.entries.push_back({ProcessId{i}, 0});
  }
  q.suspected_count = static_cast<std::uint32_t>(q.entries.size());
  return q;
}

bool SimpleDetectorCore::full_query_needed(ProcessId peer) const {
  if (!config_.delta_queries) return true;
  return delta_.full_needed(peer, suspect_count_);
}

QueryMessage SimpleDetectorCore::query_for(ProcessId peer) {
  assert(in_progress_);
  if (full_query_needed(peer)) return full_query();
  QueryMessage q;
  q.seq = seq_;
  q.epoch = delta_.sent_epoch();
  q.base_epoch = delta_.acked(peer);
  q.set_delta(true);
  for (ProcessId id : delta_.journal().changed_since(q.base_epoch)) {
    if (suspected_[id.value]) q.entries.push_back({id, 0});
  }
  q.suspected_count = static_cast<std::uint32_t>(q.entries.size());
  return q;
}

bool SimpleDetectorCore::on_response(ProcessId from,
                                     const ResponseMessage& response) {
  if (!in_progress_ || response.seq != seq_) return false;
  delta_.on_ack(from, response.ack_epoch, response.need_full);
  if (from.value >= config_.n) return false;  // forged live-path sender
  if (responded_[from.value]) return false;
  responded_[from.value] = true;
  rec_from_.push_back(from);
  // A response is direct evidence of life.
  set_suspected(from, false);
  if (!terminated_ && rec_from_.size() >= config_.quorum()) {
    terminated_ = true;
    return true;
  }
  return false;
}

void SimpleDetectorCore::finish_round() {
  assert(terminated_);
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const ProcessId pj{i};
    if (pj == config_.self) continue;
    if (!responded_[i]) set_suspected(pj, true);
  }
  ++rounds_;
  in_progress_ = false;
}

ResponseMessage SimpleDetectorCore::on_query(ProcessId from,
                                             const QueryMessage& query) {
  // Direct evidence of life; the piggybacked sets are NOT merged — without
  // tags, adopting third-party suspicions would poison the detector with
  // unorderable stale information. The epoch bookkeeping still runs so the
  // sender's delta watermarks stay sound for any observer of the wire.
  // A forged live-path sender id >= n indexes nothing (same guard as
  // on_response).
  if (from.value < config_.n) set_suspected(from, false);
  const bool epoch_miss =
      delta_.epoch_miss(from, query.is_delta(), query.base_epoch);
  if (!epoch_miss) delta_.note_seen(from, query.epoch);
  return ResponseMessage{query.seq, query.epoch, epoch_miss};
}

std::vector<ProcessId> SimpleDetectorCore::suspected() const {
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (suspected_[i]) out.push_back(ProcessId{i});
  }
  return out;
}

bool SimpleDetectorCore::is_suspected(ProcessId id) const {
  return id.value < suspected_.size() && suspected_[id.value];
}

void SimpleDetectorCore::set_suspected(ProcessId id, bool suspect) {
  assert(id != config_.self || !suspect);
  if (suspected_[id.value] == suspect) return;
  suspected_[id.value] = suspect;
  if (suspect) {
    ++suspect_count_;
  } else {
    --suspect_count_;
  }
  delta_.record(id);
  if (observer_ != nullptr) {
    if (suspect) {
      observer_->on_suspected(id, 0);
    } else {
      observer_->on_cleared(id, 0);
    }
  }
}

}  // namespace mmrfd::core
