// The unreliable-failure-detector abstraction (Chandra & Toueg) plus the
// observer through which implementations publish suspicion transitions to
// the metrics layer.
#pragma once

#include <vector>

#include "common/types.h"

namespace mmrfd::core {

/// Read-side of any failure detector: the per-process "oracle" that outputs
/// the list of processes currently suspected of having crashed. Both the
/// asynchronous (time-free) detector and the timer-based baselines implement
/// this, so experiments and the consensus layer treat them uniformly.
class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  /// Snapshot of the currently suspected processes.
  [[nodiscard]] virtual std::vector<ProcessId> suspected() const = 0;

  /// True iff `id` is currently suspected.
  [[nodiscard]] virtual bool is_suspected(ProcessId id) const = 0;
};

/// Callback interface through which a detector reports suspicion changes the
/// instant they happen. Implementations with no interest in a hook inherit
/// the empty default.
class SuspicionObserver {
 public:
  virtual ~SuspicionObserver() = default;

  /// `subject` entered the suspected set (tag = information's counter; 0 for
  /// detectors without tags).
  virtual void on_suspected(ProcessId subject, Tag tag) { (void)subject, (void)tag; }

  /// `subject` left the suspected set.
  virtual void on_cleared(ProcessId subject, Tag tag) { (void)subject, (void)tag; }

  /// A mistake entry for `subject` was recorded (time-free detector only).
  virtual void on_mistake(ProcessId subject, Tag tag) { (void)subject, (void)tag; }
};

}  // namespace mmrfd::core
