#include "transport/reliable.h"

#include <cassert>

#include "transport/codec.h"

namespace mmrfd::transport {

namespace {
constexpr std::uint8_t kFrameData = 'D';
constexpr std::uint8_t kFrameAck = 'A';
constexpr std::size_t kFrameHeader = 1 + 4 + 8;  // type + sender + seq

std::vector<std::uint8_t> make_frame(std::uint8_t type, ProcessId sender,
                                     std::uint64_t seq,
                                     std::span<const std::uint8_t> payload) {
  Encoder e;
  e.u8(type);
  e.u32(sender.value);
  e.u64(seq);
  auto out = e.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}
}  // namespace

bool SeqTracker::mark(std::uint64_t seq) {
  if (seq <= floor_) return false;
  if (!above_.insert(seq).second) return false;
  // Fold contiguous prefix into the floor.
  while (!above_.empty() && *above_.begin() == floor_ + 1) {
    above_.erase(above_.begin());
    ++floor_;
  }
  // Bound the out-of-order window: declare the oldest gap lost, jump the
  // floor to the oldest outstanding seq and fold again from there.
  while (above_.size() > max_window_) {
    floor_ = *above_.begin();
    above_.erase(above_.begin());
    while (!above_.empty() && *above_.begin() == floor_ + 1) {
      above_.erase(above_.begin());
      ++floor_;
    }
  }
  return true;
}

ReliableDatagram::ReliableDatagram(DatagramTransport& inner,
                                   const ReliableConfig& config)
    : inner_(inner),
      config_(config),
      next_seq_(inner.cluster_size(), 0),
      seen_(inner.cluster_size()) {
  if (config.registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
  }
  obs::MetricsRegistry& reg =
      config.registry != nullptr ? *config.registry : *own_registry_;
  data_sent_ = &reg.counter("rel.data_sent");
  retransmissions_ = &reg.counter("rel.retransmissions");
  gave_up_ = &reg.counter("rel.gave_up");
  duplicates_ = &reg.counter("rel.duplicates");
  acks_sent_ = &reg.counter("rel.acks_sent");
  malformed_ = &reg.counter("rel.malformed");
  data_bytes_sent_ = &reg.counter("rel.data_bytes_sent");
  retransmit_bytes_sent_ = &reg.counter("rel.retransmit_bytes_sent");
  ack_bytes_sent_ = &reg.counter("rel.ack_bytes_sent");
  inner_.set_handler(
      [this](std::span<const std::uint8_t> frame) { on_frame(frame); });
}

ReliableDatagram::~ReliableDatagram() { stop(); }

void ReliableDatagram::set_handler(DatagramHandler handler) {
  std::lock_guard lock(mutex_);
  handler_ = std::move(handler);
}

void ReliableDatagram::start() {
  {
    std::lock_guard lock(mutex_);
    assert(handler_ && "set_handler before start");
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  inner_.start();
  retransmitter_ = std::thread([this] { retransmit_loop(); });
}

void ReliableDatagram::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  retransmitter_.join();
  inner_.stop();
  std::lock_guard lock(mutex_);
  running_ = false;
}

void ReliableDatagram::send(ProcessId to,
                            std::span<const std::uint8_t> datagram) {
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard lock(mutex_);
    const std::uint64_t seq = ++next_seq_.at(to.value);
    frame = make_frame(kFrameData, self(), seq, datagram);
    pending_.emplace(std::make_pair(to.value, seq),
                     Pending{to, frame, 0, std::chrono::steady_clock::now()});
  }
  data_sent_->add(1);
  data_bytes_sent_->add(frame.size());  // payload + 13-byte framing
  inner_.send(to, frame);
}

void ReliableDatagram::on_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kFrameHeader) {
    malformed_->add(1);
    return;
  }
  Decoder d(frame);
  const auto type = d.u8();
  const auto sender = d.u32();
  const auto seq = d.u64();
  if (!type || !sender || !seq || *sender >= cluster_size()) {
    malformed_->add(1);
    return;
  }

  if (*type == kFrameAck) {
    std::lock_guard lock(mutex_);
    pending_.erase(std::make_pair(*sender, *seq));
    return;
  }
  if (*type != kFrameData) {
    malformed_->add(1);
    return;
  }

  // Always ack — the sender may be retransmitting because our previous ack
  // was lost.
  const auto ack = make_frame(kFrameAck, self(), *seq, {});
  inner_.send(ProcessId{*sender}, ack);
  acks_sent_->add(1);
  ack_bytes_sent_->add(ack.size());

  bool fresh = false;
  DatagramHandler handler;
  {
    std::lock_guard lock(mutex_);
    fresh = seen_.at(*sender).mark(*seq);
    handler = handler_;
  }
  if (!fresh) {
    duplicates_->add(1);
    if (config_.recorder != nullptr) {
      config_.recorder->record(obs::TraceKind::kRelDuplicate, *sender,
                               static_cast<std::uint32_t>(*seq));
    }
  }
  if (fresh && handler) {
    handler(frame.subspan(kFrameHeader));
  }
}

void ReliableDatagram::retransmit_loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, config_.retransmit_interval,
                 [&] { return stopping_; });
    if (stopping_) return;
    // Collect resends under the lock, send outside it. Only frames at least
    // one interval old are due — younger ones were just transmitted and
    // their ack is plausibly still in flight.
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> resend;
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (now - it->second.last_send < config_.retransmit_interval) {
        ++it;
        continue;
      }
      if (++it->second.retries > config_.max_retries) {
        gave_up_->add(1);
        it = pending_.erase(it);
        continue;
      }
      retransmissions_->add(1);
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::TraceKind::kRelRetransmit,
                                 it->second.to.value,
                                 static_cast<std::uint32_t>(it->first.second));
      }
      it->second.last_send = now;
      resend.emplace_back(it->second.to, it->second.frame);
      ++it;
    }
    lock.unlock();
    for (const auto& [to, frame] : resend) {
      retransmit_bytes_sent_->add(frame.size());
      inner_.send(to, frame);
    }
    lock.lock();
  }
}

ReliableStats ReliableDatagram::stats() const {
  ReliableStats s;
  s.data_sent = data_sent_->value();
  s.retransmissions = retransmissions_->value();
  s.gave_up = gave_up_->value();
  s.duplicates = duplicates_->value();
  s.acks_sent = acks_sent_->value();
  s.malformed = malformed_->value();
  s.data_bytes_sent = data_bytes_sent_->value();
  s.retransmit_bytes_sent = retransmit_bytes_sent_->value();
  s.ack_bytes_sent = ack_bytes_sent_->value();
  return s;
}

std::size_t ReliableDatagram::unacked() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

}  // namespace mmrfd::transport
