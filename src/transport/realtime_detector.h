// RealTimeDetector — the DetectorCore driven by wall-clock pacing over a
// real Transport (UDP or in-memory threads). The production-facing face of
// the library: the exact state machine verified under simulation, bound to
// sockets and threads.
//
// Threading model: one driver thread runs the query loop (broadcast, wait
// for quorum on a condition variable, pace, finish round); the transport's
// receive thread funnels into on_datagram(). A single mutex guards the core
// — its per-event work is microseconds (see bench/micro_core), far below
// any contention concern at protocol rates.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/detector_core.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "transport/transport.h"

namespace mmrfd::transport {

struct RealTimeConfig {
  core::DetectorConfig detector;
  /// Inter-query pacing Delta (wall clock).
  Duration pacing{from_millis(100)};
  /// Loss recovery for real (unreliable) transports: while a query is short
  /// of quorum, re-issue it to the still-silent peers at this interval. The
  /// paper's model assumes reliable channels; a lost datagram (startup race
  /// — a peer's socket not bound yet — or receive-buffer overflow under
  /// fan-in) would otherwise wedge the round FOREVER, because the time-free
  /// protocol never re-sends on its own. Re-issuing is idempotent (same
  /// seq; responders are deduplicated) and carries no failure judgement —
  /// this is retransmission, not a timeout.
  Duration resend{from_millis(500)};
  /// Shared metrics registry for the rt.* instruments; the detector owns a
  /// private one when null. Sharing one registry across the node's whole
  /// stack gives the report writer a single snapshot to embed.
  obs::MetricsRegistry* registry{nullptr};
  /// Flight recorder for query/response/resend traces, forwarded to the
  /// core for its round/suspicion records too (may be null).
  obs::FlightRecorder* recorder{nullptr};
};

/// Protocol/wire counters of one live detector, all monotone since start().
/// The live-cluster node reports are built from these — they are the per-
/// process ground truth the supervisor aggregates (bytes/query, delta-vs-
/// full sends, need_full resyncs).
struct RealTimeStats {
  std::uint64_t full_queries_sent{0};   ///< per-peer full encodings sent
  std::uint64_t delta_queries_sent{0};  ///< per-peer delta encodings sent
  std::uint64_t queries_received{0};
  std::uint64_t responses_received{0};
  std::uint64_t responses_sent{0};
  /// Responses we sent with need_full set: we received a delta whose base we
  /// never acknowledged (state loss/restart) and asked the peer to resync us.
  std::uint64_t need_full_sent{0};
  /// Responses we received with need_full set: a peer asked us for a full
  /// resync, and we dropped its watermark.
  std::uint64_t need_full_received{0};
  /// Codec-level bytes (envelope included) of the messages handed to the
  /// transport. A ReliableDatagram underneath adds its own 13-byte framing
  /// and re-sends whole datagrams on loss — that extra traffic is accounted
  /// in ReliableStats, not here.
  std::uint64_t query_bytes_sent{0};
  std::uint64_t response_bytes_sent{0};
};

class RealTimeDetector final : public core::FailureDetector {
 public:
  RealTimeDetector(Transport& transport, const RealTimeConfig& config);
  ~RealTimeDetector() override;

  RealTimeDetector(const RealTimeDetector&) = delete;
  RealTimeDetector& operator=(const RealTimeDetector&) = delete;

  /// Starts the transport and the query loop.
  void start();
  /// Stops the loop and the transport. Idempotent.
  void stop();

  /// Registers a suspicion-transition observer (forwarded to the core).
  /// Call before start(); callbacks fire with the detector mutex held, so
  /// the observer must not call back into this detector.
  void set_observer(core::SuspicionObserver* observer);

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;

  /// Rounds completed so far (monotone; for liveness checks in tests).
  [[nodiscard]] std::uint64_t rounds_completed() const;

  /// Snapshot of the wire/protocol counters. Thread-safe, lock-free.
  [[nodiscard]] RealTimeStats stats() const;

  /// The registry backing the rt.* instruments (config.registry or the
  /// private fallback).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return *registry_;
  }

 private:
  void driver_loop();
  void on_datagram(ProcessId from, const WireMessage& msg);
  void trace(obs::TraceKind kind, std::uint32_t a, std::uint32_t b) const {
    if (recorder_ != nullptr) recorder_->record(kind, a, b);
  }

  Transport& transport_;
  RealTimeConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable quorum_cv_;
  core::DetectorCore core_;
  bool running_{false};
  bool stopping_{false};
  std::thread driver_;

  // Instruments are registry-backed relaxed atomics, not mutex-guarded
  // state: the driver thread bumps the tx side outside the core lock (sends
  // happen unlocked) and stats() must stay callable from report-flush
  // threads without contending. References are resolved once in the
  // constructor and stay valid for the registry's lifetime.
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* registry_{nullptr};
  obs::FlightRecorder* recorder_{nullptr};
  obs::Counter* full_queries_sent_{nullptr};
  obs::Counter* delta_queries_sent_{nullptr};
  obs::Counter* queries_received_{nullptr};
  obs::Counter* responses_received_{nullptr};
  obs::Counter* responses_sent_{nullptr};
  obs::Counter* need_full_sent_{nullptr};
  obs::Counter* need_full_received_{nullptr};
  obs::Counter* query_bytes_sent_{nullptr};
  obs::Counter* response_bytes_sent_{nullptr};
  obs::Counter* rounds_counter_{nullptr};
  obs::Counter* resend_waves_{nullptr};
  obs::Histogram* round_rtt_ns_{nullptr};
};

}  // namespace mmrfd::transport
