// RealTimeDetector — the DetectorCore driven by wall-clock pacing over a
// real Transport (UDP or in-memory threads). The production-facing face of
// the library: the exact state machine verified under simulation, bound to
// sockets and threads.
//
// Threading model: one driver thread runs the query loop (broadcast, wait
// for quorum on a condition variable, pace, finish round); the transport's
// receive thread funnels into on_datagram(). A single mutex guards the core
// — its per-event work is microseconds (see bench/micro_core), far below
// any contention concern at protocol rates.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/detector_core.h"
#include "transport/transport.h"

namespace mmrfd::transport {

struct RealTimeConfig {
  core::DetectorConfig detector;
  /// Inter-query pacing Delta (wall clock).
  Duration pacing{from_millis(100)};
};

class RealTimeDetector final : public core::FailureDetector {
 public:
  RealTimeDetector(Transport& transport, const RealTimeConfig& config);
  ~RealTimeDetector() override;

  RealTimeDetector(const RealTimeDetector&) = delete;
  RealTimeDetector& operator=(const RealTimeDetector&) = delete;

  /// Starts the transport and the query loop.
  void start();
  /// Stops the loop and the transport. Idempotent.
  void stop();

  [[nodiscard]] std::vector<ProcessId> suspected() const override;
  [[nodiscard]] bool is_suspected(ProcessId id) const override;

  /// Rounds completed so far (monotone; for liveness checks in tests).
  [[nodiscard]] std::uint64_t rounds_completed() const;

 private:
  void driver_loop();
  void on_datagram(ProcessId from, const WireMessage& msg);

  Transport& transport_;
  RealTimeConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable quorum_cv_;
  core::DetectorCore core_;
  bool running_{false};
  bool stopping_{false};
  std::thread driver_;
};

}  // namespace mmrfd::transport
