// Real-time transport abstraction (the deployment path, as opposed to the
// discrete-event simulation used by the experiments).
//
// Implementations deliver *encoded* datagrams — send() serializes through the
// codec and the receive path deserializes, so the simulator-verified protocol
// core runs over exactly the bytes a production deployment would exchange.
#pragma once

#include <functional>

#include "common/types.h"
#include "transport/codec.h"

namespace mmrfd::transport {

class Transport {
 public:
  using Handler = std::function<void(ProcessId from, const WireMessage&)>;

  virtual ~Transport() = default;

  /// Installs the receive callback. Invoked from the transport's thread;
  /// the callee synchronizes its own state. Must be set before start().
  virtual void set_handler(Handler handler) = 0;

  virtual void start() = 0;
  virtual void stop() = 0;

  /// Sends to one peer. Thread-safe.
  virtual void send(ProcessId to, const WireMessage& msg) = 0;
  /// Sends to every other process. Thread-safe.
  virtual void broadcast(const WireMessage& msg) = 0;

  [[nodiscard]] virtual ProcessId self() const = 0;
  [[nodiscard]] virtual std::uint32_t cluster_size() const = 0;
};

}  // namespace mmrfd::transport
