// Compact binary wire codec.
//
// Used by the real transports (UDP / in-memory threaded) and by the
// message-cost experiment (E4) to account bytes-on-the-wire for every
// protocol message. Format: little-endian fixed-width integers, length-
// prefixed sequences; every datagram is an envelope
//   [u32 sender][u8 type][payload...]
// Query payload:
//   [u64 seq][u8 flags][uvarint epoch if flags&kHasEpoch]
//   [uvarint base_epoch if flags&kDelta][u32 suspected_count][u32 total]
//   [total x (u32 id, u64 tag)]
// A delta query (flags & kDelta) lists only entries changed since
// base_epoch; the stable remainder of the sets travels as that one interned
// integer. Response payload:
//   [u64 seq][u8 flags][uvarint ack_epoch if flags&kHasAck]
//   [uvarint origin_seq if flags&kHasOrigin]
// origin_seq is the causal-tracing context (the responder's own round
// sequence); only the live path sets it, so simulator bytes are unchanged.
// Epoch fields are LEB128 varints (epochs count state changes — small for
// most of a run, so the delta header costs single-digit bytes). Decoding is
// total: malformed input yields nullopt, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/types.h"
#include "core/messages.h"

namespace mmrfd::transport {

class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128: 7 value bits per byte, high bit = continuation (1-10 bytes).
  void uvarint(std::uint64_t v);
  void entries(std::span<const TaggedEntry> es);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8();
  [[nodiscard]] std::optional<std::uint32_t> u32();
  [[nodiscard]] std::optional<std::uint64_t> u64();
  [[nodiscard]] std::optional<std::uint64_t> uvarint();
  [[nodiscard]] std::optional<std::vector<TaggedEntry>> entries();

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

// --- query-response protocol messages ---------------------------------------

void encode(Encoder& e, const core::QueryMessage& m);
void encode(Encoder& e, const core::ResponseMessage& m);
[[nodiscard]] std::optional<core::QueryMessage> decode_query(Decoder& d);
[[nodiscard]] std::optional<core::ResponseMessage> decode_response(Decoder& d);

/// Exact wire size (envelope included) — the size_fn used by experiment E4.
[[nodiscard]] std::size_t wire_size(const core::QueryMessage& m);
[[nodiscard]] std::size_t wire_size(const core::ResponseMessage& m);

/// Encoded length of a LEB128 varint.
[[nodiscard]] std::size_t uvarint_size(std::uint64_t v);

// --- envelopes ---------------------------------------------------------------

using WireMessage = std::variant<core::QueryMessage, core::ResponseMessage>;

[[nodiscard]] std::vector<std::uint8_t> encode_envelope(ProcessId sender,
                                                        const WireMessage& m);
struct DecodedEnvelope {
  ProcessId sender;
  WireMessage message;
};
[[nodiscard]] std::optional<DecodedEnvelope> decode_envelope(
    std::span<const std::uint8_t> datagram);

}  // namespace mmrfd::transport
