// UDP loopback transport: process i binds 127.0.0.1:(base_port + i); every
// datagram travels through the kernel's network stack. This is the
// "messaging boilerplate" a real deployment needs — the repository's answer
// to implementing the paper's exchange over sockets.
//
// Deliberate UDP fit: the protocol tolerates loss of RESPONSEs (a query
// simply waits for other responders) and QUERYs are re-issued every round,
// so datagram semantics cost only detection sharpness, never safety. (The
// formal model assumes reliable channels; on loopback UDP loss is nil. A
// lossy-WAN deployment stacks ReliableDatagram on top — see reliable.h.)
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "transport/datagram.h"

namespace mmrfd::transport {

struct UdpConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  std::uint16_t base_port{39000};
};

class UdpTransport final : public DatagramTransport {
 public:
  explicit UdpTransport(const UdpConfig& config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds the socket; throws std::system_error on failure (port in use).
  void start() override;
  void stop() override;

  void set_handler(DatagramHandler handler) override {
    handler_ = std::move(handler);
  }
  void send(ProcessId to, std::span<const std::uint8_t> datagram) override;

  [[nodiscard]] ProcessId self() const override { return config_.self; }
  [[nodiscard]] std::uint32_t cluster_size() const override {
    return config_.n;
  }

 private:
  void receive_loop();

  UdpConfig config_;
  DatagramHandler handler_;
  int fd_{-1};
  std::atomic<bool> stopping_{false};
  std::thread receiver_;
};

}  // namespace mmrfd::transport
