// UDP loopback transport: process i binds 127.0.0.1:(base_port + i); every
// datagram travels through the kernel's network stack. This is the
// "messaging boilerplate" a real deployment needs — the repository's answer
// to implementing the paper's exchange over sockets.
//
// Deliberate UDP fit: the protocol tolerates loss of RESPONSEs (a query
// simply waits for other responders) and QUERYs are re-issued every round,
// so datagram semantics cost only detection sharpness, never safety. (The
// formal model assumes reliable channels; on loopback UDP loss is nil. A
// lossy-WAN deployment stacks ReliableDatagram on top — see reliable.h.)
//
// Scale hardening (the live-cluster subsystem runs 128+ of these per
// machine): the receive loop drains in batches via recvmmsg where available,
// SO_RCVBUF/SO_SNDBUF are sized to survive an n-process query fan-in landing
// within one pacing period, and nothing is dropped silently — truncated
// datagrams and receive errors are counted in UdpStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "transport/datagram.h"

namespace mmrfd::transport {

struct UdpConfig {
  ProcessId self{0};
  std::uint32_t n{0};
  std::uint16_t base_port{39000};
  /// Requested socket buffer size; 0 = auto (scales with n, so a whole
  /// round's fan-in of full queries fits while the receiver thread is
  /// descheduled). The kernel may clamp; UdpStats reports the granted size.
  std::uint32_t socket_buffer_bytes{0};
  /// Shared metrics registry for the udp.* instruments; the transport owns
  /// a private one when null.
  obs::MetricsRegistry* registry{nullptr};
};

/// Wire-level accounting. Every datagram the kernel hands us is counted
/// exactly once: delivered, truncated, or errored; every datagram we hand
/// the kernel is counted on the send side — the ground-truth wire bytes
/// this process emitted, all framing included.
struct UdpStats {
  std::uint64_t datagrams_received{0};
  std::uint64_t bytes_received{0};
  /// Datagrams larger than the receive slot (MSG_TRUNC): dropped, counted.
  std::uint64_t truncated{0};
  /// recvfrom/recvmmsg failures other than EINTR/EAGAIN.
  std::uint64_t recv_errors{0};
  /// SO_RCVBUF actually granted by the kernel (doubled on Linux).
  std::uint64_t rcvbuf_bytes{0};
  /// Datagrams/bytes accepted by sendto() (failed sends are not counted).
  std::uint64_t datagrams_sent{0};
  std::uint64_t bytes_sent{0};
};

class UdpTransport final : public DatagramTransport {
 public:
  explicit UdpTransport(const UdpConfig& config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds the socket; throws std::system_error on failure (port in use).
  void start() override;
  void stop() override;

  void set_handler(DatagramHandler handler) override {
    handler_ = std::move(handler);
  }
  void send(ProcessId to, std::span<const std::uint8_t> datagram) override;

  [[nodiscard]] ProcessId self() const override { return config_.self; }
  [[nodiscard]] std::uint32_t cluster_size() const override {
    return config_.n;
  }

  [[nodiscard]] UdpStats stats() const;

 private:
  void receive_loop();
  /// Drains one poll-ready batch; returns the number of datagrams handled.
  std::size_t drain_ready();

  UdpConfig config_;
  DatagramHandler handler_;
  int fd_{-1};
  std::atomic<bool> stopping_{false};
  std::thread receiver_;

  // Receive slots (allocated once in start()); one slot per recvmmsg entry
  // on Linux, a single slot for the portable recvfrom path.
  std::vector<std::uint8_t> recv_buffers_;

  // Registry-backed counters (config.registry or the private fallback) —
  // same relaxed-atomic cost as the raw members they replaced.
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* datagrams_received_{nullptr};
  obs::Counter* bytes_received_{nullptr};
  obs::Counter* truncated_{nullptr};
  obs::Counter* recv_errors_{nullptr};
  obs::Counter* datagrams_sent_{nullptr};
  obs::Counter* bytes_sent_{nullptr};
  obs::Gauge* rcvbuf_gauge_{nullptr};
  std::uint64_t rcvbuf_bytes_{0};
};

}  // namespace mmrfd::transport
