// Byte-level transport abstraction.
//
// The transport stack is layered like a production system's:
//
//   RealTimeDetector                (protocol driver)
//        │ WireMessage (typed)
//   TypedTransport                  (codec: envelope encode/decode)
//        │ datagrams (bytes)
//   [ReliableDatagram]              (optional: seq/ack/retransmit/dedup)
//        │ datagrams (bytes)
//   UdpDatagram / InMemoryHub       (sockets / threads)
//
// The paper's model assumes reliable channels; on loopback UDP that is
// effectively true, but any lossy deployment inserts ReliableDatagram
// without touching protocol code.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/types.h"

namespace mmrfd::transport {

class DatagramTransport {
 public:
  /// Receive callback: the raw datagram bytes. Invoked from the transport's
  /// receive thread; the payload is only valid for the duration of the call.
  using DatagramHandler =
      std::function<void(std::span<const std::uint8_t> datagram)>;

  virtual ~DatagramTransport() = default;

  virtual void set_handler(DatagramHandler handler) = 0;
  virtual void start() = 0;
  virtual void stop() = 0;

  /// Sends one datagram to a peer. Thread-safe. Best-effort: may drop.
  virtual void send(ProcessId to, std::span<const std::uint8_t> datagram) = 0;

  [[nodiscard]] virtual ProcessId self() const = 0;
  [[nodiscard]] virtual std::uint32_t cluster_size() const = 0;
};

}  // namespace mmrfd::transport
