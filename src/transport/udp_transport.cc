#include "transport/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "common/log.h"

namespace mmrfd::transport {

namespace {

sockaddr_in peer_address(std::uint16_t base_port, ProcessId id) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port + id.value));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

#if defined(__linux__)
constexpr std::size_t kRecvBatch = 16;
#else
constexpr std::size_t kRecvBatch = 1;
#endif

/// One receive slot must hold the largest protocol datagram: a full query
/// carries at most 2n tagged entries (12 bytes each) plus envelope/epoch
/// headers, and the reliability layer's framing adds 13 bytes on top.
std::size_t slot_size(std::uint32_t n) {
  return std::clamp<std::size_t>(96 + 24 * static_cast<std::size_t>(n),
                                 std::size_t{2048}, std::size_t{64 * 1024});
}

}  // namespace

UdpTransport::UdpTransport(const UdpConfig& config) : config_(config) {
  assert(config_.n > 0 && config_.self.value < config_.n);
  if (config.registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
  }
  obs::MetricsRegistry& reg =
      config.registry != nullptr ? *config.registry : *own_registry_;
  datagrams_received_ = &reg.counter("udp.datagrams_received");
  bytes_received_ = &reg.counter("udp.bytes_received");
  truncated_ = &reg.counter("udp.truncated");
  recv_errors_ = &reg.counter("udp.recv_errors");
  datagrams_sent_ = &reg.counter("udp.datagrams_sent");
  bytes_sent_ = &reg.counter("udp.bytes_sent");
  rcvbuf_gauge_ = &reg.gauge("udp.rcvbuf_bytes");
}

UdpTransport::~UdpTransport() { stop(); }

void UdpTransport::start() {
  assert(handler_ && "set_handler before start");
  if (fd_ >= 0) return;
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  // Size the socket buffers BEFORE traffic can arrive. The auto rule covers
  // a whole cluster's fan-in landing while the receiver thread is
  // descheduled: n peers can each have a full query plus a response in
  // flight to us within one pacing period, with slack for retransmissions.
  // The kernel clamps to net.core.{r,w}mem_max silently; stats() reports
  // what was actually granted.
  const std::size_t slot = slot_size(config_.n);
  const std::size_t auto_bytes = std::clamp<std::size_t>(
      4 * static_cast<std::size_t>(config_.n) * slot, std::size_t{256 * 1024},
      std::size_t{8 * 1024 * 1024});
  const int request = static_cast<int>(
      config_.socket_buffer_bytes ? config_.socket_buffer_bytes : auto_bytes);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &request, sizeof request);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &request, sizeof request);
  int granted = 0;
  socklen_t granted_len = sizeof granted;
  if (::getsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &granted, &granted_len) == 0) {
    rcvbuf_bytes_ = static_cast<std::uint64_t>(granted);
    rcvbuf_gauge_->set(granted);
  }
  const sockaddr_in addr = peer_address(config_.base_port, config_.self);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  recv_buffers_.assign(slot * kRecvBatch, 0);
  stopping_.store(false);
  receiver_ = std::thread([this] { receive_loop(); });
}

void UdpTransport::stop() {
  if (fd_ < 0) return;
  stopping_.store(true);
  if (receiver_.joinable()) receiver_.join();
  ::close(fd_);
  fd_ = -1;
}

void UdpTransport::send(ProcessId to,
                        std::span<const std::uint8_t> datagram) {
  if (fd_ < 0) return;
  const sockaddr_in addr = peer_address(config_.base_port, to);
  ssize_t sent = 0;
  do {
    sent = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                    reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (sent < 0 && errno == EINTR);
  if (sent >= 0) {
    datagrams_sent_->add(1);
    bytes_sent_->add(static_cast<std::uint64_t>(sent));
  }
  if (sent < 0 && errno != ECONNREFUSED) {
    // ECONNREFUSED is a late ICMP echo of a previous send to a dead peer —
    // routine while the cluster suspects a crashed process, not worth noise.
    MMRFD_LOG_WARN("udp") << "sendto " << to << " failed: "
                          << std::strerror(errno);
  }
}

std::size_t UdpTransport::drain_ready() {
  const std::size_t slot = recv_buffers_.size() / kRecvBatch;
#if defined(__linux__)
  mmsghdr msgs[kRecvBatch]{};
  iovec iov[kRecvBatch];
  for (std::size_t i = 0; i < kRecvBatch; ++i) {
    iov[i] = {recv_buffers_.data() + i * slot, slot};
    msgs[i].msg_hdr.msg_iov = &iov[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  const int got = ::recvmmsg(fd_, msgs, kRecvBatch, MSG_DONTWAIT, nullptr);
  if (got < 0) {
    if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      recv_errors_->add(1);
    }
    return 0;
  }
  for (int i = 0; i < got; ++i) {
    const std::size_t len = msgs[i].msg_len;
    datagrams_received_->add(1);
    bytes_received_->add(len);
    if ((msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0) {
      truncated_->add(1);
      continue;  // partial datagram: dropped, but counted
    }
    handler_(std::span<const std::uint8_t>(recv_buffers_.data() + i * slot,
                                           len));
  }
  return static_cast<std::size_t>(got);
#else
  const auto got = ::recvfrom(fd_, recv_buffers_.data(), slot, MSG_DONTWAIT,
                              nullptr, nullptr);
  if (got < 0) {
    if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      recv_errors_->add(1);
    }
    return 0;
  }
  datagrams_received_->add(1);
  bytes_received_->add(static_cast<std::uint64_t>(got));
  handler_(std::span<const std::uint8_t>(recv_buffers_.data(),
                                         static_cast<std::size_t>(got)));
  return 1;
#endif
}

void UdpTransport::receive_loop() {
  while (!stopping_.load()) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno != EINTR) recv_errors_->add(1);
      continue;  // EINTR: re-check stopping_ and poll again
    }
    if (ready == 0) continue;  // timeout: re-check stopping_
    // Drain everything this wakeup saw. Full batches mean more may be
    // queued; stop between batches if shutdown was requested meanwhile.
    while (drain_ready() == kRecvBatch && !stopping_.load()) {
    }
  }
}

UdpStats UdpTransport::stats() const {
  UdpStats s;
  s.datagrams_received = datagrams_received_->value();
  s.bytes_received = bytes_received_->value();
  s.truncated = truncated_->value();
  s.recv_errors = recv_errors_->value();
  s.rcvbuf_bytes = rcvbuf_bytes_;
  s.datagrams_sent = datagrams_sent_->value();
  s.bytes_sent = bytes_sent_->value();
  return s;
}

}  // namespace mmrfd::transport
