#include "transport/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "common/log.h"

namespace mmrfd::transport {

namespace {
sockaddr_in peer_address(std::uint16_t base_port, ProcessId id) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port + id.value));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

UdpTransport::UdpTransport(const UdpConfig& config) : config_(config) {
  assert(config_.n > 0 && config_.self.value < config_.n);
}

UdpTransport::~UdpTransport() { stop(); }

void UdpTransport::start() {
  assert(handler_ && "set_handler before start");
  if (fd_ >= 0) return;
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  const sockaddr_in addr = peer_address(config_.base_port, config_.self);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  stopping_.store(false);
  receiver_ = std::thread([this] { receive_loop(); });
}

void UdpTransport::stop() {
  if (fd_ < 0) return;
  stopping_.store(true);
  if (receiver_.joinable()) receiver_.join();
  ::close(fd_);
  fd_ = -1;
}

void UdpTransport::send(ProcessId to,
                        std::span<const std::uint8_t> datagram) {
  if (fd_ < 0) return;
  const sockaddr_in addr = peer_address(config_.base_port, to);
  const auto sent =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (sent < 0) {
    MMRFD_LOG_WARN("udp") << "sendto " << to << " failed: "
                          << std::strerror(errno);
  }
}

void UdpTransport::receive_loop() {
  std::uint8_t buf[64 * 1024];
  while (!stopping_.load()) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const auto got = ::recvfrom(fd_, buf, sizeof(buf), 0, nullptr, nullptr);
    if (got <= 0) continue;
    handler_(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(got)));
  }
}

}  // namespace mmrfd::transport
