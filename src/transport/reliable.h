// ReliableDatagram — positive-ack retransmission over any DatagramTransport.
//
// The paper's channel model is *reliable* (no creation, alteration or loss);
// loopback UDP satisfies it in practice, but a lossy deployment does not —
// and experiment-grade evidence (fault_injection_test) shows the protocol's
// liveness genuinely needs reliability: a lost RESPONSE can stall a quorum
// forever. This decorator restores the model over lossy links:
//
//   DATA frame:  [u8 'D'][u32 sender][u64 seq][payload...]
//   ACK  frame:  [u8 'A'][u32 sender][u64 seq]
//
// Per-destination sequence numbers; unacked frames are retransmitted every
// `retransmit_interval` up to `max_retries` (then dropped and counted — the
// peer is presumed crashed, which the failure detector above will decide).
// Receivers ack every DATA (including duplicates — the first ack may have
// been lost) and deduplicate by (sender, seq) before delivery, so the layer
// provides exactly-once delivery to the upper layer for every message it
// does deliver, and at-least-once transmission effort.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "transport/datagram.h"

namespace mmrfd::transport {

/// Tracks which sequence numbers of one sender have been seen, compactly:
/// everything <= floor is seen; above-floor seqs live in a set that is
/// folded into the floor as it becomes contiguous. (Exposed for unit tests.)
///
/// The above-floor window is bounded: a sender that abandons a frame after
/// max_retries leaves a gap that never fills, which would otherwise pin the
/// fold and grow the set without bound for the life of the connection. Once
/// the window exceeds `max_window`, the oldest gap is declared lost and the
/// floor jumps past it; a late gap-filler is then dropped as a duplicate —
/// old-frame loss, which the protocol above already tolerates.
class SeqTracker {
 public:
  explicit SeqTracker(std::size_t max_window = 4096)
      : max_window_(max_window == 0 ? 1 : max_window) {}

  /// Marks `seq` seen; returns true iff it was fresh.
  bool mark(std::uint64_t seq);

  [[nodiscard]] std::uint64_t floor() const { return floor_; }
  [[nodiscard]] std::size_t pending_size() const { return above_.size(); }

 private:
  std::size_t max_window_;
  std::uint64_t floor_{0};  // all seqs in [1, floor_] seen
  std::set<std::uint64_t> above_;
};

struct ReliableConfig {
  Duration retransmit_interval{from_millis(20)};
  int max_retries{50};
  /// Shared metrics registry for the rel.* counters; the layer owns a
  /// private one when null.
  obs::MetricsRegistry* registry{nullptr};
  /// Optional flight recorder: retransmissions and suppressed duplicates
  /// get kRelRetransmit / kRelDuplicate records, so assembled timelines
  /// can tell first-transmission latency from resend recovery.
  obs::FlightRecorder* recorder{nullptr};
};

struct ReliableStats {
  std::uint64_t data_sent{0};
  std::uint64_t retransmissions{0};
  std::uint64_t gave_up{0};       ///< frames dropped after max_retries
  std::uint64_t duplicates{0};    ///< received DATA suppressed by dedup
  std::uint64_t acks_sent{0};
  std::uint64_t malformed{0};
  /// True wire-byte accounting (closes the "bytes/query understates the
  /// wire" gap): every byte this layer hands the inner transport, framing
  /// header included, split by cause. The upper layer's query/response
  /// byte counters see none of this overhead.
  std::uint64_t data_bytes_sent{0};        ///< first transmissions
  std::uint64_t retransmit_bytes_sent{0};  ///< re-sent frames
  std::uint64_t ack_bytes_sent{0};         ///< 13-byte ACK frames

  [[nodiscard]] std::uint64_t wire_bytes_sent() const {
    return data_bytes_sent + retransmit_bytes_sent + ack_bytes_sent;
  }
};

class ReliableDatagram final : public DatagramTransport {
 public:
  ReliableDatagram(DatagramTransport& inner, const ReliableConfig& config);
  ~ReliableDatagram() override;

  ReliableDatagram(const ReliableDatagram&) = delete;
  ReliableDatagram& operator=(const ReliableDatagram&) = delete;

  void set_handler(DatagramHandler handler) override;
  void start() override;
  void stop() override;
  void send(ProcessId to, std::span<const std::uint8_t> datagram) override;

  [[nodiscard]] ProcessId self() const override { return inner_.self(); }
  [[nodiscard]] std::uint32_t cluster_size() const override {
    return inner_.cluster_size();
  }

  [[nodiscard]] ReliableStats stats() const;
  /// Frames currently awaiting an ack.
  [[nodiscard]] std::size_t unacked() const;

 private:
  struct Pending {
    ProcessId to;
    std::vector<std::uint8_t> frame;
    int retries{0};
    /// When this frame last hit the wire. The retransmit loop only resends
    /// frames at least one interval old — without this, a frame sent just
    /// before the loop's wakeup was retransmitted microseconds after its
    /// first transmission, double-counting retransmissions and burning a
    /// retry it never really had.
    std::chrono::steady_clock::time_point last_send;
  };

  void on_frame(std::span<const std::uint8_t> frame);
  void retransmit_loop();

  DatagramTransport& inner_;
  ReliableConfig config_;
  DatagramHandler handler_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_{false};
  bool stopping_{false};
  std::vector<std::uint64_t> next_seq_;            // per destination
  std::map<std::pair<std::uint32_t, std::uint64_t>, Pending> pending_;
  std::vector<SeqTracker> seen_;                   // per sender
  std::thread retransmitter_;

  // Registry-backed counters (config.registry or the private fallback);
  // resolved once in the constructor.
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* data_sent_{nullptr};
  obs::Counter* retransmissions_{nullptr};
  obs::Counter* gave_up_{nullptr};
  obs::Counter* duplicates_{nullptr};
  obs::Counter* acks_sent_{nullptr};
  obs::Counter* malformed_{nullptr};
  obs::Counter* data_bytes_sent_{nullptr};
  obs::Counter* retransmit_bytes_sent_{nullptr};
  obs::Counter* ack_bytes_sent_{nullptr};
};

}  // namespace mmrfd::transport
