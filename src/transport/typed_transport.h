// TypedTransport — the codec layer: adapts any DatagramTransport (bytes) to
// the typed Transport interface (WireMessage) the protocol drivers consume.
// Malformed datagrams are counted and dropped, never surfaced.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "transport/datagram.h"
#include "transport/transport.h"

namespace mmrfd::transport {

class TypedTransport final : public Transport {
 public:
  explicit TypedTransport(DatagramTransport& datagrams)
      : datagrams_(datagrams) {}

  void set_handler(Handler handler) override {
    handler_ = std::move(handler);
    datagrams_.set_handler([this](std::span<const std::uint8_t> datagram) {
      on_datagram(datagram);
    });
  }

  void start() override { datagrams_.start(); }
  void stop() override { datagrams_.stop(); }

  void send(ProcessId to, const WireMessage& msg) override {
    const auto bytes = encode_envelope(self(), msg);
    datagrams_.send(to, bytes);
  }

  void broadcast(const WireMessage& msg) override {
    const auto bytes = encode_envelope(self(), msg);
    for (std::uint32_t i = 0; i < cluster_size(); ++i) {
      if (i != self().value) datagrams_.send(ProcessId{i}, bytes);
    }
  }

  [[nodiscard]] ProcessId self() const override { return datagrams_.self(); }
  [[nodiscard]] std::uint32_t cluster_size() const override {
    return datagrams_.cluster_size();
  }

  /// Datagrams rejected by the codec since start.
  [[nodiscard]] std::uint64_t malformed_count() const {
    return malformed_.load();
  }

 private:
  void on_datagram(std::span<const std::uint8_t> datagram) {
    auto decoded = decode_envelope(datagram);
    if (!decoded || decoded->sender.value >= cluster_size()) {
      malformed_.fetch_add(1);
      return;
    }
    handler_(decoded->sender, decoded->message);
  }

  DatagramTransport& datagrams_;
  Handler handler_;
  std::atomic<std::uint64_t> malformed_{0};
};

}  // namespace mmrfd::transport
