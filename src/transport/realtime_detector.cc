#include "transport/realtime_detector.h"

#include <utility>
#include <vector>

namespace mmrfd::transport {

RealTimeDetector::RealTimeDetector(Transport& transport,
                                   const RealTimeConfig& config)
    : transport_(transport), config_(config), core_(config.detector) {
  transport_.set_handler([this](ProcessId from, const WireMessage& msg) {
    on_datagram(from, msg);
  });
}

RealTimeDetector::~RealTimeDetector() { stop(); }

void RealTimeDetector::start() {
  {
    std::lock_guard lock(mutex_);
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  transport_.start();
  driver_ = std::thread([this] { driver_loop(); });
}

void RealTimeDetector::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  quorum_cv_.notify_all();
  driver_.join();
  transport_.stop();
  std::lock_guard lock(mutex_);
  running_ = false;
}

void RealTimeDetector::driver_loop() {
  std::unique_lock lock(mutex_);
  std::vector<ProcessId> full_peers;
  std::vector<std::pair<ProcessId, WireMessage>> deltas;
  while (!stopping_) {
    // Build the round's queries under the lock, send outside it. In delta
    // mode each peer gets its own (usually tiny) message; peers whose
    // acknowledgement lapsed — fresh peer, restart, journal overrun — all
    // receive ONE shared full encoding (built once per round, like the
    // simulated hosts' shared payload). Reference mode keeps the broadcast.
    full_peers.clear();
    deltas.clear();
    const bool delta = core_.config().delta_queries;
    WireMessage full;
    if (delta) {
      core_.begin_query();
      bool full_built = false;
      for (std::uint32_t i = 0; i < core_.config().n; ++i) {
        const ProcessId to{i};
        if (to == core_.config().self) continue;
        if (core_.full_query_needed(to)) {
          if (!full_built) {
            full = WireMessage{core_.full_query()};
            full_built = true;
          }
          full_peers.push_back(to);
        } else {
          deltas.emplace_back(to, WireMessage{core_.query_for(to)});
        }
      }
    } else {
      full = WireMessage{core_.start_query()};
    }
    lock.unlock();
    if (delta) {
      // Peer order (full peers, then delta peers) is irrelevant here: real
      // transports have no seeded schedule to preserve. When EVERY peer
      // needs the full encoding (first round, mass resync), broadcast() it
      // — the transport serializes a broadcast once, while per-peer send()
      // re-encodes per call.
      if (deltas.empty() && !full_peers.empty()) {
        transport_.broadcast(full);
      } else {
        for (const ProcessId to : full_peers) transport_.send(to, full);
        for (auto& [to, msg] : deltas) transport_.send(to, msg);
      }
    } else {
      transport_.broadcast(full);
    }
    lock.lock();
    // Wait for the quorum-th response (self counts already); re-checked on
    // every incoming response. No timeout: the protocol is time-free — the
    // only exits are quorum or shutdown.
    quorum_cv_.wait(lock, [&] { return stopping_ || core_.query_terminated(); });
    if (stopping_) return;
    // Pacing window: late responses keep flowing into rec_from meanwhile.
    quorum_cv_.wait_for(lock, config_.pacing, [&] { return stopping_; });
    if (stopping_) return;
    core_.finish_round();
  }
}

void RealTimeDetector::on_datagram(ProcessId from, const WireMessage& msg) {
  if (const auto* q = std::get_if<core::QueryMessage>(&msg)) {
    core::ResponseMessage response;
    {
      std::lock_guard lock(mutex_);
      response = core_.on_query(from, *q);
    }
    transport_.send(from, WireMessage{response});
  } else if (const auto* r = std::get_if<core::ResponseMessage>(&msg)) {
    bool terminated = false;
    {
      std::lock_guard lock(mutex_);
      terminated = core_.on_response(from, *r);
    }
    if (terminated) quorum_cv_.notify_all();
  }
}

std::vector<ProcessId> RealTimeDetector::suspected() const {
  std::lock_guard lock(mutex_);
  return core_.suspected();
}

bool RealTimeDetector::is_suspected(ProcessId id) const {
  std::lock_guard lock(mutex_);
  return core_.is_suspected(id);
}

std::uint64_t RealTimeDetector::rounds_completed() const {
  std::lock_guard lock(mutex_);
  return core_.rounds_completed();
}

}  // namespace mmrfd::transport
