#include "transport/realtime_detector.h"

#include <chrono>
#include <utility>
#include <vector>

namespace mmrfd::transport {

RealTimeDetector::RealTimeDetector(Transport& transport,
                                   const RealTimeConfig& config)
    : transport_(transport), config_(config), core_(config.detector) {
  if (config.registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
  }
  obs::MetricsRegistry& reg =
      config.registry != nullptr ? *config.registry : *own_registry_;
  registry_ = &reg;
  full_queries_sent_ = &reg.counter("rt.full_queries_sent");
  delta_queries_sent_ = &reg.counter("rt.delta_queries_sent");
  queries_received_ = &reg.counter("rt.queries_received");
  responses_received_ = &reg.counter("rt.responses_received");
  responses_sent_ = &reg.counter("rt.responses_sent");
  need_full_sent_ = &reg.counter("rt.need_full_sent");
  need_full_received_ = &reg.counter("rt.need_full_received");
  query_bytes_sent_ = &reg.counter("rt.query_bytes_sent");
  response_bytes_sent_ = &reg.counter("rt.response_bytes_sent");
  rounds_counter_ = &reg.counter("rt.rounds");
  resend_waves_ = &reg.counter("rt.resend_waves");
  round_rtt_ns_ = &reg.histogram("rt.round_rtt_ns");
  recorder_ = config.recorder;
  core_.set_recorder(config.recorder);
  transport_.set_handler([this](ProcessId from, const WireMessage& msg) {
    on_datagram(from, msg);
  });
}

RealTimeDetector::~RealTimeDetector() { stop(); }

void RealTimeDetector::start() {
  {
    std::lock_guard lock(mutex_);
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  try {
    transport_.start();
  } catch (...) {
    // Bind/socket failure is a routine live-path event (occupied port).
    // Roll back so the destructor's stop() does not try to join a thread
    // that was never started — that would terminate() the process.
    std::lock_guard lock(mutex_);
    running_ = false;
    throw;
  }
  driver_ = std::thread([this] { driver_loop(); });
}

void RealTimeDetector::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  quorum_cv_.notify_all();
  if (driver_.joinable()) driver_.join();
  transport_.stop();
  std::lock_guard lock(mutex_);
  running_ = false;
}

void RealTimeDetector::driver_loop() {
  std::unique_lock lock(mutex_);
  std::vector<ProcessId> full_peers;
  std::vector<std::pair<ProcessId, WireMessage>> deltas;
  while (!stopping_) {
    // Build the round's queries under the lock, send outside it. In delta
    // mode each peer gets its own (usually tiny) message; peers whose
    // acknowledgement lapsed — fresh peer, restart, journal overrun — all
    // receive ONE shared full encoding (built once per round, like the
    // simulated hosts' shared payload). Reference mode keeps the broadcast.
    full_peers.clear();
    deltas.clear();
    const bool delta = core_.config().delta_queries;
    const std::uint32_t n = core_.config().n;
    std::uint32_t skipped = 0;
    WireMessage full;
    core_.begin_query();
    // Captured under the lock: the round sequence stamped into every
    // causal-trace record this round (kQueryTxSeq / kQuorum).
    const std::uint32_t round_seq =
        static_cast<std::uint32_t>(core_.query_seq());
    const auto round_start = std::chrono::steady_clock::now();
    bool full_built = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      const ProcessId to{i};
      if (to == core_.config().self) continue;
      // Give-up policy: peers suspected for K consecutive rounds are only
      // probed every K-th round — a crashed peer never acks, so every
      // query to it costs the full-encoding fallback forever otherwise.
      if (!core_.should_query(to)) {
        ++skipped;
        continue;
      }
      if (!delta || core_.full_query_needed(to)) {
        if (!full_built) {
          full = WireMessage{core_.full_query()};
          full_built = true;
        }
        full_peers.push_back(to);
      } else {
        deltas.emplace_back(to, WireMessage{core_.query_for(to)});
      }
    }
    lock.unlock();
    const auto query_size = [](const WireMessage& m) {
      return static_cast<std::uint64_t>(
          wire_size(std::get<core::QueryMessage>(m)));
    };
    // Peer order (full peers, then delta peers) is irrelevant here: real
    // transports have no seeded schedule to preserve. When EVERY peer gets
    // the full encoding (reference mode, first round, mass resync) and
    // nobody is skipped, broadcast() it — the transport serializes a
    // broadcast once, while per-peer send() re-encodes per call.
    if (deltas.empty() && skipped == 0 && !full_peers.empty()) {
      transport_.broadcast(full);
    } else {
      for (const ProcessId to : full_peers) transport_.send(to, full);
      for (auto& [to, msg] : deltas) transport_.send(to, msg);
    }
    if (!full_peers.empty()) {
      const std::uint64_t full_bytes = query_size(full);
      full_queries_sent_->add(full_peers.size());
      query_bytes_sent_->add(full_bytes * full_peers.size());
      for (const ProcessId to : full_peers) {
        trace(obs::TraceKind::kQueryTx, to.value,
              static_cast<std::uint32_t>(full_bytes));
        trace(obs::TraceKind::kQueryTxSeq, to.value, round_seq);
      }
    }
    delta_queries_sent_->add(deltas.size());
    for (const auto& [to, msg] : deltas) {
      const std::uint64_t bytes = query_size(msg);
      query_bytes_sent_->add(bytes);
      trace(obs::TraceKind::kQueryTx, to.value,
            static_cast<std::uint32_t>(bytes));
      trace(obs::TraceKind::kQueryTxSeq, to.value, round_seq);
    }
    lock.lock();
    // Wait for the quorum-th response (self counts already); re-checked on
    // every incoming response. The protocol stays time-free — the only
    // exits are quorum or shutdown — but every `resend` interval without
    // quorum we re-issue the round's query to the peers still silent, as a
    // self-contained full encoding (unconditionally mergeable, no journal
    // base to miss). That restores the reliable-channel assumption the
    // model makes and a kernel UDP path does not.
    std::uint32_t resend_waves = 0;
    while (!stopping_ && !core_.query_terminated()) {
      if (quorum_cv_.wait_for(lock, config_.resend, [&] {
            return stopping_ || core_.query_terminated();
          })) {
        break;
      }
      const std::uint32_t n = core_.config().n;
      std::vector<bool> responded(n, false);
      for (const ProcessId p : core_.rec_from()) {
        if (p.value < n) responded[p.value] = true;
      }
      std::vector<ProcessId> silent;
      for (std::uint32_t i = 0; i < n; ++i) {
        const ProcessId to{i};
        if (to == core_.config().self || responded[i]) continue;
        // A peer the give-up policy elided this round was never queried:
        // resending to it would undo the whole point of the policy (dead
        // peers are exactly the ones that are always silent, and resends
        // are always full encodings — the dominant full_q source at large
        // n). But only the FIRST wave honors the skip set: a round still
        // short of quorum after a full resend interval is evidence the
        // skips were wrong (falsely suspected live peers skipped while the
        // actually-dead ate the budget) — liveness beats economy, so later
        // waves query everyone silent.
        if (resend_waves == 0 && !core_.should_query(to)) continue;
        silent.push_back(to);
      }
      ++resend_waves;
      if (silent.empty()) continue;  // termination raced the timeout
      const WireMessage refresh{core_.full_query()};
      lock.unlock();
      for (const ProcessId to : silent) transport_.send(to, refresh);
      resend_waves_->add(1);
      trace(obs::TraceKind::kResendWave, resend_waves,
            static_cast<std::uint32_t>(silent.size()));
      for (const ProcessId to : silent) {
        trace(obs::TraceKind::kQueryTxSeq, to.value, round_seq);
      }
      full_queries_sent_->add(silent.size());
      query_bytes_sent_->add(query_size(refresh) * silent.size());
      lock.lock();
    }
    if (stopping_) return;
    // Quorum instant: the trace record the assembler's wire/resend-wait
    // split pivots on — everything between round open and here is quorum
    // assembly, everything after is pacing.
    trace(obs::TraceKind::kQuorum, round_seq,
          static_cast<std::uint32_t>(core_.rec_from().size()));
    // Quorum reached: the wall-clock span from query build to termination
    // is the round's RTT (the paper's "query round trip"), the live
    // counterpart of the simulator's round-RTT histogram.
    round_rtt_ns_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - round_start)
            .count()));
    // Pacing window: late responses keep flowing into rec_from meanwhile.
    quorum_cv_.wait_for(lock, config_.pacing, [&] { return stopping_; });
    if (stopping_) return;
    core_.finish_round();
    rounds_counter_->add(1);
  }
}

void RealTimeDetector::on_datagram(ProcessId from, const WireMessage& msg) {
  if (const auto* q = std::get_if<core::QueryMessage>(&msg)) {
    queries_received_->add(1);
    trace(obs::TraceKind::kQueryRx, from.value,
          static_cast<std::uint32_t>(q->seq));
    core::ResponseMessage response;
    {
      std::lock_guard lock(mutex_);
      response = core_.on_query(from, *q);
      // Piggyback the causal context: our own current round sequence, so
      // the querier's rx record can name the remote round it overlapped.
      response.origin_seq = core_.query_seq();
    }
    if (response.need_full) need_full_sent_->add(1);
    responses_sent_->add(1);
    response_bytes_sent_->add(wire_size(response));
    trace(obs::TraceKind::kResponseTx, from.value,
          response.need_full ? 1 : 0);
    trace(obs::TraceKind::kResponseTxSeq, from.value,
          static_cast<std::uint32_t>(response.seq));
    transport_.send(from, WireMessage{response});
  } else if (const auto* r = std::get_if<core::ResponseMessage>(&msg)) {
    responses_received_->add(1);
    if (r->need_full) need_full_received_->add(1);
    trace(obs::TraceKind::kResponseRx, from.value, r->need_full ? 1 : 0);
    trace(obs::TraceKind::kResponseRxSeq, from.value,
          static_cast<std::uint32_t>(r->seq));
    if (r->origin_seq != 0) {
      trace(obs::TraceKind::kPeerRound, from.value,
            static_cast<std::uint32_t>(r->origin_seq));
    }
    bool terminated = false;
    {
      std::lock_guard lock(mutex_);
      terminated = core_.on_response(from, *r);
    }
    if (terminated) quorum_cv_.notify_all();
  }
}

void RealTimeDetector::set_observer(core::SuspicionObserver* observer) {
  std::lock_guard lock(mutex_);
  core_.set_observer(observer);
}

RealTimeStats RealTimeDetector::stats() const {
  RealTimeStats s;
  s.full_queries_sent = full_queries_sent_->value();
  s.delta_queries_sent = delta_queries_sent_->value();
  s.queries_received = queries_received_->value();
  s.responses_received = responses_received_->value();
  s.responses_sent = responses_sent_->value();
  s.need_full_sent = need_full_sent_->value();
  s.need_full_received = need_full_received_->value();
  s.query_bytes_sent = query_bytes_sent_->value();
  s.response_bytes_sent = response_bytes_sent_->value();
  return s;
}

std::vector<ProcessId> RealTimeDetector::suspected() const {
  std::lock_guard lock(mutex_);
  return core_.suspected();
}

bool RealTimeDetector::is_suspected(ProcessId id) const {
  std::lock_guard lock(mutex_);
  return core_.is_suspected(id);
}

std::uint64_t RealTimeDetector::rounds_completed() const {
  std::lock_guard lock(mutex_);
  return core_.rounds_completed();
}

}  // namespace mmrfd::transport
