#include "transport/faulty_transport.h"

#include <utility>

namespace mmrfd::transport {

FaultyTransport::FaultyTransport(DatagramTransport& inner,
                                 const FaultConfig& config)
    : inner_(inner), config_(config), rng_(config.seed) {
  if (config.registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
  }
  obs::MetricsRegistry& reg =
      config.registry != nullptr ? *config.registry : *own_registry_;
  sent_ = &reg.counter("fault.sent");
  dropped_ = &reg.counter("fault.dropped");
  duplicated_ = &reg.counter("fault.duplicated");
  reordered_ = &reg.counter("fault.reordered");
  corrupted_ = &reg.counter("fault.corrupted");
  truncated_ = &reg.counter("fault.truncated");
}

void FaultyTransport::stop() {
  // Flush holdbacks first: a reordered datagram delayed past shutdown would
  // turn the reorder knob into a stealth drop knob.
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> held;
  {
    std::lock_guard lock(mutex_);
    held.swap(held_);
  }
  for (auto& [to, datagram] : held) {
    inner_.send(ProcessId{to}, datagram);
  }
  inner_.stop();
}

void FaultyTransport::send(ProcessId to,
                           std::span<const std::uint8_t> datagram) {
  std::vector<std::uint8_t> mine(datagram.begin(), datagram.end());
  std::vector<std::uint8_t> released;
  bool duplicate = false;
  {
    std::lock_guard lock(mutex_);
    sent_->add(1);
    if (config_.drop_rate > 0.0 && rng_.bernoulli(config_.drop_rate)) {
      dropped_->add(1);
      return;
    }
    if (config_.reorder_rate > 0.0 && rng_.bernoulli(config_.reorder_rate)) {
      auto& slot = held_[to.value];
      if (slot.empty()) {
        // Stash this datagram; it goes out right after the peer's next one.
        reordered_->add(1);
        slot = std::move(mine);
        return;
      }
      // Slot occupied: swap, so the held datagram finally overtakes us.
      std::swap(slot, mine);
      reordered_->add(1);
    } else if (auto it = held_.find(to.value);
               it != held_.end() && !it->second.empty()) {
      // Release the held datagram *after* this one (that is the reorder).
      released = std::move(it->second);
      held_.erase(it);
    }
    duplicate =
        config_.duplicate_rate > 0.0 && rng_.bernoulli(config_.duplicate_rate);
    if (duplicate) duplicated_->add(1);
  }
  std::vector<std::uint8_t> copy;
  if (duplicate) copy = mine;
  emit(to, std::move(mine));
  if (duplicate) emit(to, std::move(copy));
  if (!released.empty()) emit(to, std::move(released));
}

void FaultyTransport::emit(ProcessId to, std::vector<std::uint8_t> datagram) {
  // Per-emitted-copy corruption/truncation: the mutex covers only the RNG
  // and counters; the inner send runs outside it.
  bool truncated_to_nothing = false;
  {
    std::lock_guard lock(mutex_);
    if (config_.corrupt_rate > 0.0 && rng_.bernoulli(config_.corrupt_rate) &&
        !datagram.empty()) {
      corrupted_->add(1);
      const std::uint64_t flips = 1 + rng_.next_below(4);
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::uint64_t draw = rng_.next();
        // Flip at least one bit of a random byte.
        datagram[draw % datagram.size()] ^=
            static_cast<std::uint8_t>((draw >> 32) | 1);
      }
    }
    if (config_.truncate_rate > 0.0 && rng_.bernoulli(config_.truncate_rate) &&
        !datagram.empty()) {
      truncated_->add(1);
      datagram.resize(rng_.next_below(datagram.size()));  // strict prefix
      truncated_to_nothing = datagram.empty();
    }
  }
  if (truncated_to_nothing) return;
  inner_.send(to, datagram);
}

FaultStats FaultyTransport::stats() const {
  FaultStats s;
  s.sent = sent_->value();
  s.dropped = dropped_->value();
  s.duplicated = duplicated_->value();
  s.reordered = reordered_->value();
  s.corrupted = corrupted_->value();
  s.truncated = truncated_->value();
  return s;
}

}  // namespace mmrfd::transport
