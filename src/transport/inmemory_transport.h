// In-memory threaded transport: n endpoints exchanging raw datagrams through
// per-receiver queues, each drained by a dedicated dispatch thread. The
// multi-threaded analogue of net::Network — real concurrency, loopback
// latency — used by the transport integration tests and the reliability
// layer's lossy-link tests (see set_loss_every).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "transport/datagram.h"

namespace mmrfd::transport {

class InMemoryHub {
 public:
  explicit InMemoryHub(std::uint32_t n);
  ~InMemoryHub();

  InMemoryHub(const InMemoryHub&) = delete;
  InMemoryHub& operator=(const InMemoryHub&) = delete;

  /// The datagram endpoint for process `id`; owned by the hub.
  [[nodiscard]] DatagramTransport& endpoint(ProcessId id);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Deterministic loss injection: every k-th datagram enqueued hub-wide is
  /// dropped (0 = no loss). For the reliability-layer tests.
  void set_loss_every(std::uint64_t k) { loss_every_.store(k); }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_.load(); }

 private:
  struct Node;
  class Endpoint;

  void enqueue(ProcessId to, std::vector<std::uint8_t> datagram);

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<std::uint64_t> send_counter_{0};
  std::atomic<std::uint64_t> loss_every_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace mmrfd::transport
