// FaultyTransport — an adversarial-channel decorator for any
// DatagramTransport: the live-path sibling of net::Network's fault knobs.
//
// Inserted anywhere in the byte-level stack (below ReliableDatagram to
// attack its seq/ack machinery, below TypedTransport to feed the codec
// malformed bytes), it perturbs outgoing datagrams:
//
//   * drop        — the datagram never hits the wire;
//   * duplicate   — sent twice back-to-back;
//   * reorder     — held back and emitted after the *next* send to the same
//                   peer (bounded out-of-order delivery without timers);
//   * corrupt     — 1–4 random bytes flipped, so the receiver's decode path
//                   sees plausible-but-wrong bytes;
//   * truncate    — a random strict prefix is sent, so decoders exercise
//                   their end-of-buffer checks.
//
// All decisions come from one seeded RNG under a mutex: a fixed seed gives
// a reproducible fault schedule for a fixed send sequence. Receive is
// passed through untouched — in a two-sided deployment each side's sender
// perturbs its own output, which is where real networks damage datagrams.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "transport/datagram.h"

namespace mmrfd::transport {

struct FaultConfig {
  double drop_rate{0.0};
  double duplicate_rate{0.0};
  double reorder_rate{0.0};
  double corrupt_rate{0.0};
  double truncate_rate{0.0};
  std::uint64_t seed{1};
  /// Shared metrics registry for the fault.* counters; the decorator owns a
  /// private one when null.
  obs::MetricsRegistry* registry{nullptr};
};

struct FaultStats {
  std::uint64_t sent{0};  ///< send() calls observed
  std::uint64_t dropped{0};
  std::uint64_t duplicated{0};
  std::uint64_t reordered{0};
  std::uint64_t corrupted{0};
  std::uint64_t truncated{0};
};

class FaultyTransport final : public DatagramTransport {
 public:
  FaultyTransport(DatagramTransport& inner, const FaultConfig& config);

  void set_handler(DatagramHandler handler) override {
    inner_.set_handler(std::move(handler));
  }
  void start() override { inner_.start(); }
  void stop() override;
  void send(ProcessId to, std::span<const std::uint8_t> datagram) override;

  [[nodiscard]] ProcessId self() const override { return inner_.self(); }
  [[nodiscard]] std::uint32_t cluster_size() const override {
    return inner_.cluster_size();
  }

  [[nodiscard]] FaultStats stats() const;

 private:
  /// Applies corruption/truncation to a private copy and emits it.
  void emit(ProcessId to, std::vector<std::uint8_t> datagram);

  DatagramTransport& inner_;
  FaultConfig config_;

  mutable std::mutex mutex_;
  Xoshiro256 rng_;
  // Registry-backed counters (config.registry or the private fallback).
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* sent_{nullptr};
  obs::Counter* dropped_{nullptr};
  obs::Counter* duplicated_{nullptr};
  obs::Counter* reordered_{nullptr};
  obs::Counter* corrupted_{nullptr};
  obs::Counter* truncated_{nullptr};
  /// Per-destination holdback slot for reordering: a stashed datagram is
  /// emitted right after the next send to the same peer (and flushed by
  /// stop(), so nothing is silently swallowed at shutdown).
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> held_;
};

}  // namespace mmrfd::transport
