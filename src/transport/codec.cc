#include "transport/codec.h"

namespace mmrfd::transport {

namespace {
constexpr std::uint8_t kTypeQuery = 1;
constexpr std::uint8_t kTypeResponse = 2;

// Query payload flags.
constexpr std::uint8_t kQueryDelta = 1;     // == QueryMessage::kDeltaFlag
constexpr std::uint8_t kQueryHasEpoch = 2;  // epoch field present (nonzero)

// Response payload flags.
constexpr std::uint8_t kRespNeedFull = 1;
constexpr std::uint8_t kRespHasAck = 2;    // ack_epoch field present (nonzero)
constexpr std::uint8_t kRespHasOrigin = 4;  // origin_seq field present (nonzero)
}  // namespace

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::uvarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::entries(std::span<const TaggedEntry> es) {
  u32(static_cast<std::uint32_t>(es.size()));
  for (const auto& e : es) {
    u32(e.id.value);
    u64(e.tag);
  }
}

std::optional<std::uint8_t> Decoder::u8() {
  if (pos_ + 1 > data_.size()) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> Decoder::u32() {
  if (pos_ + 4 > data_.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> Decoder::u64() {
  if (pos_ + 8 > data_.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> Decoder::uvarint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return std::nullopt;
    const std::uint8_t byte = data_[pos_++];
    // The 10th byte (shift 63) may only contribute the final value bit.
    if (shift == 63 && (byte & ~std::uint8_t{1}) != 0) return std::nullopt;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return std::nullopt;  // unreachable: shift 63 always returns
}

std::optional<std::vector<TaggedEntry>> Decoder::entries() {
  const auto count = u32();
  if (!count) return std::nullopt;
  // Sanity bound: each entry takes 12 bytes of the *remaining* buffer, not
  // the whole datagram — a count that only fits if the already-consumed
  // header were re-counted is a lying prefix, and the reserve() below must
  // never be driven past what the buffer can actually hold.
  if (static_cast<std::size_t>(*count) * 12 > data_.size() - pos_) {
    return std::nullopt;
  }
  std::vector<TaggedEntry> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto id = u32();
    const auto tag = u64();
    if (!id || !tag) return std::nullopt;
    out.push_back(TaggedEntry{ProcessId{*id}, *tag});
  }
  return out;
}

void encode(Encoder& e, const core::QueryMessage& m) {
  e.u64(m.seq);
  std::uint8_t flags = 0;
  if (m.is_delta()) flags |= kQueryDelta;
  if (m.epoch != 0) flags |= kQueryHasEpoch;
  e.u8(flags);
  if (m.epoch != 0) e.uvarint(m.epoch);
  if (m.is_delta()) e.uvarint(m.base_epoch);
  e.u32(m.suspected_count);
  e.entries(m.entries);
}

void encode(Encoder& e, const core::ResponseMessage& m) {
  e.u64(m.seq);
  std::uint8_t flags = 0;
  if (m.need_full) flags |= kRespNeedFull;
  if (m.ack_epoch != 0) flags |= kRespHasAck;
  if (m.origin_seq != 0) flags |= kRespHasOrigin;
  e.u8(flags);
  if (m.ack_epoch != 0) e.uvarint(m.ack_epoch);
  if (m.origin_seq != 0) e.uvarint(m.origin_seq);
}

std::optional<core::QueryMessage> decode_query(Decoder& d) {
  core::QueryMessage m;
  const auto seq = d.u64();
  const auto flags = d.u8();
  if (!seq || !flags) return std::nullopt;
  if ((*flags & ~(kQueryDelta | kQueryHasEpoch)) != 0) return std::nullopt;
  // A delta promises the receiver an epoch to ack; every real sender tracks
  // epochs in delta mode (epoch >= base_epoch > 0), so delta-without-epoch
  // only arises from corrupted flag bytes. Reject rather than hand the core
  // a message shape it never produces.
  if ((*flags & kQueryDelta) != 0 && (*flags & kQueryHasEpoch) == 0) {
    return std::nullopt;
  }
  m.seq = *seq;
  if ((*flags & kQueryHasEpoch) != 0) {
    const auto epoch = d.uvarint();
    if (!epoch || *epoch == 0) return std::nullopt;  // canonical: flag <=> nonzero
    m.epoch = *epoch;
  }
  if ((*flags & kQueryDelta) != 0) {
    m.set_delta(true);
    const auto base = d.uvarint();
    if (!base) return std::nullopt;
    m.base_epoch = *base;
  }
  const auto split = d.u32();
  if (!split) return std::nullopt;
  auto entries = d.entries();
  if (!entries) return std::nullopt;
  if (*split > entries->size()) return std::nullopt;  // lying split
  m.suspected_count = *split;
  m.entries = std::move(*entries);
  return m;
}

std::optional<core::ResponseMessage> decode_response(Decoder& d) {
  const auto seq = d.u64();
  const auto flags = d.u8();
  if (!seq || !flags) return std::nullopt;
  if ((*flags & ~(kRespNeedFull | kRespHasAck | kRespHasOrigin)) != 0) {
    return std::nullopt;
  }
  core::ResponseMessage m;
  m.seq = *seq;
  m.need_full = (*flags & kRespNeedFull) != 0;
  if ((*flags & kRespHasAck) != 0) {
    const auto ack = d.uvarint();
    if (!ack || *ack == 0) return std::nullopt;
    m.ack_epoch = *ack;
  }
  if ((*flags & kRespHasOrigin) != 0) {
    const auto origin = d.uvarint();
    if (!origin || *origin == 0) return std::nullopt;  // canonical: flag <=> nonzero
    m.origin_seq = *origin;
  }
  return m;
}

namespace {
constexpr std::size_t kEnvelopeHeader = 4 + 1;  // sender + type
}

std::size_t uvarint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

std::size_t wire_size(const core::QueryMessage& m) {
  std::size_t size = kEnvelopeHeader + 8 + 1;  // seq + flags
  if (m.epoch != 0) size += uvarint_size(m.epoch);
  if (m.is_delta()) size += uvarint_size(m.base_epoch);
  return size + 4 + 4 + 12 * m.entries.size();
}

std::size_t wire_size(const core::ResponseMessage& m) {
  return kEnvelopeHeader + 8 + 1 +
         (m.ack_epoch != 0 ? uvarint_size(m.ack_epoch) : 0) +
         (m.origin_seq != 0 ? uvarint_size(m.origin_seq) : 0);
}

std::vector<std::uint8_t> encode_envelope(ProcessId sender,
                                          const WireMessage& m) {
  Encoder e;
  e.u32(sender.value);
  if (const auto* q = std::get_if<core::QueryMessage>(&m)) {
    e.u8(kTypeQuery);
    encode(e, *q);
  } else {
    e.u8(kTypeResponse);
    encode(e, std::get<core::ResponseMessage>(m));
  }
  return e.take();
}

std::optional<DecodedEnvelope> decode_envelope(
    std::span<const std::uint8_t> datagram) {
  Decoder d(datagram);
  const auto sender = d.u32();
  const auto type = d.u8();
  if (!sender || !type) return std::nullopt;
  if (*type == kTypeQuery) {
    auto q = decode_query(d);
    if (!q || !d.exhausted()) return std::nullopt;
    return DecodedEnvelope{ProcessId{*sender}, std::move(*q)};
  }
  if (*type == kTypeResponse) {
    auto r = decode_response(d);
    if (!r || !d.exhausted()) return std::nullopt;
    return DecodedEnvelope{ProcessId{*sender}, *r};
  }
  return std::nullopt;
}

}  // namespace mmrfd::transport
