#include "transport/codec.h"

namespace mmrfd::transport {

namespace {
constexpr std::uint8_t kTypeQuery = 1;
constexpr std::uint8_t kTypeResponse = 2;
}  // namespace

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::entries(std::span<const TaggedEntry> es) {
  u32(static_cast<std::uint32_t>(es.size()));
  for (const auto& e : es) {
    u32(e.id.value);
    u64(e.tag);
  }
}

std::optional<std::uint8_t> Decoder::u8() {
  if (pos_ + 1 > data_.size()) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> Decoder::u32() {
  if (pos_ + 4 > data_.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> Decoder::u64() {
  if (pos_ + 8 > data_.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::optional<std::vector<TaggedEntry>> Decoder::entries() {
  const auto count = u32();
  if (!count) return std::nullopt;
  // Sanity bound: each entry takes 12 bytes; reject lying prefixes early.
  if (static_cast<std::size_t>(*count) * 12 > data_.size()) return std::nullopt;
  std::vector<TaggedEntry> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto id = u32();
    const auto tag = u64();
    if (!id || !tag) return std::nullopt;
    out.push_back(TaggedEntry{ProcessId{*id}, *tag});
  }
  return out;
}

void encode(Encoder& e, const core::QueryMessage& m) {
  e.u64(m.seq);
  e.entries(m.suspected);
  e.entries(m.mistakes);
}

void encode(Encoder& e, const core::ResponseMessage& m) { e.u64(m.seq); }

std::optional<core::QueryMessage> decode_query(Decoder& d) {
  core::QueryMessage m;
  const auto seq = d.u64();
  if (!seq) return std::nullopt;
  m.seq = *seq;
  auto susp = d.entries();
  if (!susp) return std::nullopt;
  m.suspected = std::move(*susp);
  auto mist = d.entries();
  if (!mist) return std::nullopt;
  m.mistakes = std::move(*mist);
  return m;
}

std::optional<core::ResponseMessage> decode_response(Decoder& d) {
  const auto seq = d.u64();
  if (!seq) return std::nullopt;
  return core::ResponseMessage{*seq};
}

namespace {
constexpr std::size_t kEnvelopeHeader = 4 + 1;  // sender + type
}

std::size_t wire_size(const core::QueryMessage& m) {
  return kEnvelopeHeader + 8 + 4 + 12 * m.suspected.size() + 4 +
         12 * m.mistakes.size();
}

std::size_t wire_size(const core::ResponseMessage&) {
  return kEnvelopeHeader + 8;
}

std::vector<std::uint8_t> encode_envelope(ProcessId sender,
                                          const WireMessage& m) {
  Encoder e;
  e.u32(sender.value);
  if (const auto* q = std::get_if<core::QueryMessage>(&m)) {
    e.u8(kTypeQuery);
    encode(e, *q);
  } else {
    e.u8(kTypeResponse);
    encode(e, std::get<core::ResponseMessage>(m));
  }
  return e.take();
}

std::optional<DecodedEnvelope> decode_envelope(
    std::span<const std::uint8_t> datagram) {
  Decoder d(datagram);
  const auto sender = d.u32();
  const auto type = d.u8();
  if (!sender || !type) return std::nullopt;
  if (*type == kTypeQuery) {
    auto q = decode_query(d);
    if (!q || !d.exhausted()) return std::nullopt;
    return DecodedEnvelope{ProcessId{*sender}, std::move(*q)};
  }
  if (*type == kTypeResponse) {
    auto r = decode_response(d);
    if (!r || !d.exhausted()) return std::nullopt;
    return DecodedEnvelope{ProcessId{*sender}, *r};
  }
  return std::nullopt;
}

}  // namespace mmrfd::transport
