#include "transport/inmemory_transport.h"

#include <cassert>

namespace mmrfd::transport {

struct InMemoryHub::Node {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::vector<std::uint8_t>> queue;
  DatagramTransport::DatagramHandler handler;
  bool running{false};
  bool stopping{false};
  std::thread thread;
};

class InMemoryHub::Endpoint final : public DatagramTransport {
 public:
  Endpoint(InMemoryHub& hub, ProcessId self) : hub_(hub), self_(self) {}

  void set_handler(DatagramHandler handler) override {
    auto& node = *hub_.nodes_[self_.value];
    std::lock_guard lock(node.mutex);
    node.handler = std::move(handler);
  }

  void start() override {
    auto& node = *hub_.nodes_[self_.value];
    std::lock_guard lock(node.mutex);
    assert(node.handler && "set_handler before start");
    if (node.running) return;
    node.running = true;
    node.stopping = false;
    node.thread = std::thread([this] { dispatch_loop(); });
  }

  void stop() override {
    auto& node = *hub_.nodes_[self_.value];
    {
      std::lock_guard lock(node.mutex);
      if (!node.running) return;
      node.stopping = true;
    }
    node.cv.notify_all();
    node.thread.join();
    std::lock_guard lock(node.mutex);
    node.running = false;
  }

  void send(ProcessId to, std::span<const std::uint8_t> datagram) override {
    hub_.enqueue(to,
                 std::vector<std::uint8_t>(datagram.begin(), datagram.end()));
  }

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] std::uint32_t cluster_size() const override {
    return hub_.size();
  }

 private:
  void dispatch_loop() {
    auto& node = *hub_.nodes_[self_.value];
    std::unique_lock lock(node.mutex);
    while (true) {
      node.cv.wait(lock,
                   [&] { return node.stopping || !node.queue.empty(); });
      if (node.stopping) return;
      auto datagram = std::move(node.queue.front());
      node.queue.pop_front();
      // Deliver without holding the lock: the handler may send().
      auto handler = node.handler;
      lock.unlock();
      handler(datagram);
      lock.lock();
    }
  }

  InMemoryHub& hub_;
  ProcessId self_;
};

InMemoryHub::InMemoryHub(std::uint32_t n) {
  assert(n > 0);
  nodes_.reserve(n);
  endpoints_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>());
    endpoints_.push_back(std::make_unique<Endpoint>(*this, ProcessId{i}));
  }
}

InMemoryHub::~InMemoryHub() {
  for (auto& ep : endpoints_) ep->stop();
}

DatagramTransport& InMemoryHub::endpoint(ProcessId id) {
  return *endpoints_.at(id.value);
}

void InMemoryHub::enqueue(ProcessId to, std::vector<std::uint8_t> datagram) {
  const auto k = loss_every_.load();
  if (k != 0 && send_counter_.fetch_add(1) % k == k - 1) {
    dropped_.fetch_add(1);
    return;  // deterministic drop
  }
  auto& node = *nodes_.at(to.value);
  {
    std::lock_guard lock(node.mutex);
    node.queue.push_back(std::move(datagram));
  }
  node.cv.notify_one();
}

}  // namespace mmrfd::transport
