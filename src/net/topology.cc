#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/rng.h"

namespace mmrfd::net {

void Topology::add_edge(std::uint32_t a, std::uint32_t b) {
  assert(a != b && a < adjacency_.size() && b < adjacency_.size());
  auto insert_sorted = [](std::vector<ProcessId>& v, ProcessId x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) v.insert(it, x);
  };
  insert_sorted(adjacency_[a], ProcessId{b});
  insert_sorted(adjacency_[b], ProcessId{a});
}

Topology Topology::full(std::size_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = static_cast<std::uint32_t>(i) + 1; j < n; ++j) {
      t.add_edge(i, static_cast<std::uint32_t>(j));
    }
  }
  return t;
}

Topology Topology::ring(std::size_t n) {
  Topology t(n);
  if (n < 2) return t;
  for (std::uint32_t i = 0; i < n; ++i) {
    t.add_edge(i, static_cast<std::uint32_t>((i + 1) % n));
  }
  return t;
}

Topology Topology::star(std::size_t n) {
  Topology t(n);
  for (std::uint32_t i = 1; i < n; ++i) t.add_edge(0, i);
  return t;
}

Topology Topology::random_connected(std::size_t n, double edge_prob,
                                    std::uint64_t seed) {
  Topology t = ring(n);
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(edge_prob)) t.add_edge(i, j);
    }
  }
  return t;
}

Topology Topology::from_edges(
    std::size_t n,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> edges) {
  Topology t(n);
  for (const auto& [a, b] : edges) t.add_edge(a, b);
  return t;
}

bool Topology::are_neighbors(ProcessId a, ProcessId b) const {
  if (a.value >= adjacency_.size()) return false;
  const auto& adj = adjacency_[a.value];
  return std::binary_search(adj.begin(), adj.end(), b);
}

std::span<const ProcessId> Topology::neighbors(ProcessId id) const {
  assert(id.value < adjacency_.size());
  return adjacency_[id.value];
}

std::size_t Topology::min_degree() const {
  std::size_t d = adjacency_.empty() ? 0 : adjacency_[0].size();
  for (const auto& adj : adjacency_) d = std::min(d, adj.size());
  return d;
}

bool Topology::connected_excluding(const std::vector<bool>& removed) const {
  const std::size_t n = adjacency_.size();
  std::size_t alive = 0;
  std::size_t start = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!removed[i]) {
      ++alive;
      if (start == n) start = i;
    }
  }
  if (alive <= 1) return true;
  std::vector<bool> seen(n, false);
  std::queue<std::size_t> q;
  q.push(start);
  seen[start] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (ProcessId v : adjacency_[u]) {
      if (!removed[v.value] && !seen[v.value]) {
        seen[v.value] = true;
        ++visited;
        q.push(v.value);
      }
    }
  }
  return visited == alive;
}

bool Topology::connected() const {
  return connected_excluding(std::vector<bool>(adjacency_.size(), false));
}

bool Topology::k_vertex_connected(std::size_t k) const {
  const std::size_t n = adjacency_.size();
  if (k == 0) return connected();
  if (n <= k + 1) return false;
  // Enumerate all subsets of size <= k to remove (tests use tiny k/n).
  std::vector<std::size_t> combo;
  std::vector<bool> removed(n, false);
  // Recursive lambda over combinations.
  auto rec = [&](auto&& self, std::size_t start, std::size_t left) -> bool {
    if (left == 0) return connected_excluding(removed);
    for (std::size_t i = start; i + left <= n; ++i) {
      removed[i] = true;
      if (!self(self, i + 1, left - 1)) {
        removed[i] = false;
        return false;
      }
      removed[i] = false;
    }
    return true;
  };
  for (std::size_t r = 1; r <= k; ++r) {
    if (!rec(rec, 0, r)) return false;
  }
  return true;
}

}  // namespace mmrfd::net
