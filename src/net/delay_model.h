// Link-delay models.
//
// The computation model is *asynchronous*: no upper bound on message transfer
// delays is assumed by the protocol. Delay models exist only to generate
// executions — including ones where the MP behavioral property holds (via
// FastSetDelay bias) and ones where it does not. Baseline timeout detectors
// are, by contrast, very sensitive to these distributions, which is exactly
// what experiments E3/E5 measure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mmrfd::net {

/// Samples a one-way delay for a message from `from` to `to` sent at `now`.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual Duration sample(ProcessId from, ProcessId to, TimePoint now,
                          Xoshiro256& rng) = 0;

  /// A true lower bound on every delay this model can ever return, for any
  /// (from, to, now). The sharded engine sizes its conservative time window
  /// off this value: a cross-shard message sent at t is only exchanged at
  /// the next window boundary, which is sound precisely because it cannot
  /// be delivered before t + min_delay(). A model returning a sample below
  /// its own bound silently breaks causality (the engine turns that into a
  /// hard error at hand-off), so implementations must be conservative and
  /// wrappers must take the minimum over every path through them.
  [[nodiscard]] virtual Duration min_delay() const = 0;
};

/// Fixed delay on every link.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Duration d) : delay_(d) {}
  Duration sample(ProcessId, ProcessId, TimePoint, Xoshiro256&) override {
    return delay_;
  }
  [[nodiscard]] Duration min_delay() const override { return delay_; }

 private:
  Duration delay_;
};

/// Uniform in [lo, hi).
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Duration lo, Duration hi) : lo_(lo), hi_(hi) {}
  Duration sample(ProcessId, ProcessId, TimePoint, Xoshiro256& rng) override;
  [[nodiscard]] Duration min_delay() const override { return lo_; }

 private:
  Duration lo_;
  Duration hi_;
};

/// base + Exp(mean): the classic M/M queueing-ish network delay.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(Duration base, Duration mean) : base_(base), mean_(mean) {}
  Duration sample(ProcessId, ProcessId, TimePoint, Xoshiro256& rng) override;
  [[nodiscard]] Duration min_delay() const override { return base_; }

 private:
  Duration base_;
  Duration mean_;
};

/// base + LogNormal(median, sigma): heavy-ish tail, common WAN model.
class LogNormalDelay final : public DelayModel {
 public:
  LogNormalDelay(Duration base, Duration median, double sigma)
      : base_(base), median_(median), sigma_(sigma) {}
  Duration sample(ProcessId, ProcessId, TimePoint, Xoshiro256& rng) override;
  [[nodiscard]] Duration min_delay() const override { return base_; }

 private:
  Duration base_;
  Duration median_;
  double sigma_;
};

/// base + BoundedPareto(x_min, alpha, cap): genuinely heavy tail; the
/// distribution under which fixed timeouts are hardest to pick.
class ParetoDelay final : public DelayModel {
 public:
  ParetoDelay(Duration base, Duration x_min, double alpha, Duration cap)
      : base_(base), x_min_(x_min), alpha_(alpha), cap_(cap) {}
  Duration sample(ProcessId, ProcessId, TimePoint, Xoshiro256& rng) override;
  /// bounded_pareto never draws below x_min, so the bound includes it.
  [[nodiscard]] Duration min_delay() const override { return base_ + x_min_; }

 private:
  Duration base_;
  Duration x_min_;
  double alpha_;
  Duration cap_;
};

/// Wraps an inner model and scales delays of messages involving processes in
/// `fast_set` by `factor` (< 1). Engineering the MP property: if p is in the
/// fast set, its responses tend to arrive among the first n - f, making p an
/// eventual "winning responder" for every querier.
///
/// Scope: kSenderOnly speeds only messages *sent by* fast processes (fast
/// transmit path). kBothDirections also speeds messages *to* them — the
/// "well-connected host" model. The strict MP property (winning for every
/// correct issuer's suffix) times a response from the moment the *query*
/// leaves the issuer, so reliably engineering it needs both legs fast.
class FastSetDelay final : public DelayModel {
 public:
  enum class Scope { kSenderOnly, kBothDirections };

  FastSetDelay(std::unique_ptr<DelayModel> inner,
               std::vector<ProcessId> fast_set, double factor,
               Scope scope = Scope::kSenderOnly);
  Duration sample(ProcessId from, ProcessId to, TimePoint now,
                  Xoshiro256& rng) override;
  /// Fast-set messages are scaled by `factor`, so the bound is the minimum
  /// over the scaled and unscaled paths (factor is usually < 1, but a
  /// slow-set wrapper with factor > 1 must not raise the bound).
  [[nodiscard]] Duration min_delay() const override;

 private:
  std::unique_ptr<DelayModel> inner_;
  std::vector<ProcessId> fast_set_;  // sorted
  double factor_;
  Scope scope_;
};

/// Wraps an inner model and multiplies delays by `factor` during the window
/// [start, end) for messages touching any process in `affected` (empty =
/// everyone). Models a transient network slowdown / congestion spike.
class SpikeDelay final : public DelayModel {
 public:
  SpikeDelay(std::unique_ptr<DelayModel> inner, TimePoint start, TimePoint end,
             double factor, std::vector<ProcessId> affected = {});
  Duration sample(ProcessId from, ProcessId to, TimePoint now,
                  Xoshiro256& rng) override;
  /// Minimum over the in-spike (scaled) and out-of-spike paths: spikes
  /// usually slow links down (factor > 1), but a factor < 1 "speed-up
  /// window" must lower the bound, not violate it.
  [[nodiscard]] Duration min_delay() const override;

 private:
  std::unique_ptr<DelayModel> inner_;
  TimePoint start_;
  TimePoint end_;
  double factor_;
  std::vector<ProcessId> affected_;  // sorted; empty = all
};

/// Named presets used across tests/benches so every experiment describes its
/// network the same way.
enum class DelayPreset { kConstant, kUniform, kExponential, kLogNormal, kPareto };

/// Builds a preset with the given mean one-way delay (roughly; the base is
/// mean/4 for the randomized presets).
std::unique_ptr<DelayModel> make_preset(DelayPreset preset, Duration mean);

/// Parses "constant" | "uniform" | "exponential" | "lognormal" | "pareto".
DelayPreset parse_preset(const std::string& name);
const char* preset_name(DelayPreset preset);

}  // namespace mmrfd::net
