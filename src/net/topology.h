// Communication topology.
//
// The DSN'03 model is a complete graph over a known membership; experiments
// use Topology::full(). Ring/star/random variants exist for unit tests and
// for stressing the gossip baseline, not for the core protocol's model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace mmrfd::net {

class Topology {
 public:
  /// Complete graph K_n.
  static Topology full(std::size_t n);
  /// Cycle p_0 - p_1 - ... - p_{n-1} - p_0.
  static Topology ring(std::size_t n);
  /// Star centred at p_0.
  static Topology star(std::size_t n);
  /// Erdos-Renyi G(n, p), forced connected by adding a ring first.
  static Topology random_connected(std::size_t n, double edge_prob,
                                   std::uint64_t seed);
  /// Build from an explicit undirected edge list.
  static Topology from_edges(std::size_t n,
                             std::span<const std::pair<std::uint32_t, std::uint32_t>> edges);

  [[nodiscard]] std::size_t size() const { return adjacency_.size(); }
  [[nodiscard]] bool are_neighbors(ProcessId a, ProcessId b) const;
  /// Sorted neighbor ids of `id` (excluding `id` itself).
  [[nodiscard]] std::span<const ProcessId> neighbors(ProcessId id) const;
  /// Minimum degree over all vertices.
  [[nodiscard]] std::size_t min_degree() const;
  /// True if the graph is connected (BFS).
  [[nodiscard]] bool connected() const;
  /// True if every pair of vertices remains connected after removing any
  /// set of `k` vertices — exact check, exponential in k; used in tests
  /// with small k only.
  [[nodiscard]] bool k_vertex_connected(std::size_t k) const;

 private:
  explicit Topology(std::size_t n) : adjacency_(n) {}
  void add_edge(std::uint32_t a, std::uint32_t b);
  [[nodiscard]] bool connected_excluding(const std::vector<bool>& removed) const;

  std::vector<std::vector<ProcessId>> adjacency_;  // sorted neighbor lists
};

}  // namespace mmrfd::net
