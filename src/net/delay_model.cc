#include "net/delay_model.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mmrfd::net {

namespace {
Duration scaled(Duration d, double factor) {
  return Duration(static_cast<Duration::rep>(
      static_cast<double>(d.count()) * factor));
}

bool in_sorted(const std::vector<ProcessId>& v, ProcessId id) {
  return std::binary_search(v.begin(), v.end(), id);
}
}  // namespace

Duration UniformDelay::sample(ProcessId, ProcessId, TimePoint,
                              Xoshiro256& rng) {
  const double ns = rng.uniform(static_cast<double>(lo_.count()),
                                static_cast<double>(hi_.count()));
  return Duration(static_cast<Duration::rep>(ns));
}

Duration ExponentialDelay::sample(ProcessId, ProcessId, TimePoint,
                                  Xoshiro256& rng) {
  const double extra = rng.exponential(static_cast<double>(mean_.count()));
  return base_ + Duration(static_cast<Duration::rep>(extra));
}

Duration LogNormalDelay::sample(ProcessId, ProcessId, TimePoint,
                                Xoshiro256& rng) {
  const double extra =
      rng.lognormal(static_cast<double>(median_.count()), sigma_);
  return base_ + Duration(static_cast<Duration::rep>(extra));
}

Duration ParetoDelay::sample(ProcessId, ProcessId, TimePoint,
                             Xoshiro256& rng) {
  const double extra =
      rng.bounded_pareto(static_cast<double>(x_min_.count()), alpha_,
                         static_cast<double>(cap_.count()));
  return base_ + Duration(static_cast<Duration::rep>(extra));
}

FastSetDelay::FastSetDelay(std::unique_ptr<DelayModel> inner,
                           std::vector<ProcessId> fast_set, double factor,
                           Scope scope)
    : inner_(std::move(inner)),
      fast_set_(std::move(fast_set)),
      factor_(factor),
      scope_(scope) {
  assert(inner_ != nullptr);
  assert(factor_ > 0.0);
  std::sort(fast_set_.begin(), fast_set_.end());
}

Duration FastSetDelay::sample(ProcessId from, ProcessId to, TimePoint now,
                              Xoshiro256& rng) {
  const Duration d = inner_->sample(from, to, now, rng);
  const bool fast = in_sorted(fast_set_, from) ||
                    (scope_ == Scope::kBothDirections &&
                     in_sorted(fast_set_, to));
  return fast ? scaled(d, factor_) : d;
}

Duration FastSetDelay::min_delay() const {
  const Duration inner = inner_->min_delay();
  if (fast_set_.empty()) return inner;
  return std::min(inner, scaled(inner, factor_));
}

SpikeDelay::SpikeDelay(std::unique_ptr<DelayModel> inner, TimePoint start,
                       TimePoint end, double factor,
                       std::vector<ProcessId> affected)
    : inner_(std::move(inner)),
      start_(start),
      end_(end),
      factor_(factor),
      affected_(std::move(affected)) {
  assert(inner_ != nullptr);
  std::sort(affected_.begin(), affected_.end());
}

Duration SpikeDelay::sample(ProcessId from, ProcessId to, TimePoint now,
                            Xoshiro256& rng) {
  const Duration d = inner_->sample(from, to, now, rng);
  if (now < start_ || now >= end_) return d;
  if (!affected_.empty() && !in_sorted(affected_, from) &&
      !in_sorted(affected_, to)) {
    return d;
  }
  return scaled(d, factor_);
}

Duration SpikeDelay::min_delay() const {
  const Duration inner = inner_->min_delay();
  if (start_ >= end_) return inner;  // empty window: never applied
  return std::min(inner, scaled(inner, factor_));
}

std::unique_ptr<DelayModel> make_preset(DelayPreset preset, Duration mean) {
  const Duration base = mean / 4;
  switch (preset) {
    case DelayPreset::kConstant:
      return std::make_unique<ConstantDelay>(mean);
    case DelayPreset::kUniform:
      return std::make_unique<UniformDelay>(base, 2 * mean - base);
    case DelayPreset::kExponential:
      return std::make_unique<ExponentialDelay>(base, mean - base);
    case DelayPreset::kLogNormal:
      // median chosen so the mean of base + LN is close to `mean`
      // (E[LN(median, sigma)] = median * exp(sigma^2 / 2), sigma = 0.8).
      return std::make_unique<LogNormalDelay>(
          base, scaled(mean - base, 1.0 / 1.3771), 0.8);
    case DelayPreset::kPareto:
      // alpha = 1.5 heavy tail capped at 100x the mean.
      return std::make_unique<ParetoDelay>(base, (mean - base) / 3, 1.5,
                                           100 * mean);
  }
  throw std::invalid_argument("unknown delay preset");
}

DelayPreset parse_preset(const std::string& name) {
  if (name == "constant") return DelayPreset::kConstant;
  if (name == "uniform") return DelayPreset::kUniform;
  if (name == "exponential") return DelayPreset::kExponential;
  if (name == "lognormal") return DelayPreset::kLogNormal;
  if (name == "pareto") return DelayPreset::kPareto;
  throw std::invalid_argument("unknown delay preset: " + name);
}

const char* preset_name(DelayPreset preset) {
  switch (preset) {
    case DelayPreset::kConstant:
      return "constant";
    case DelayPreset::kUniform:
      return "uniform";
    case DelayPreset::kExponential:
      return "exponential";
    case DelayPreset::kLogNormal:
      return "lognormal";
    case DelayPreset::kPareto:
      return "pareto";
  }
  return "?";
}

}  // namespace mmrfd::net
