// Simulated message-passing network.
//
// Semantics, matching the DSN'03 computation model:
//   * reliable channels — no creation, alteration or loss of messages
//     (an optional loss rate exists solely for stressing the timer-based
//     baselines; the core protocol's experiments keep it at 0);
//   * arbitrary, unbounded delays drawn from a DelayModel — the asynchrony;
//   * crash-stop failures — a crashed process neither sends nor receives
//     (deliveries to it are dropped silently);
//   * no FIFO guarantee between a pair of processes (delays are sampled
//     independently per message), which is strictly weaker than what the
//     protocol needs — it needs nothing.
//
// On top of the model sits an opt-in adversarial fault layer (loss,
// duplication, bounded reordering, directed-edge partitions, scheduled link
// flaps) for the self-stabilization sweeps. Every fault decision is made at
// send time on the sending shard from dedicated RNG streams, so serial and
// sharded runs agree per seed, and with every knob at its default the code
// draws nothing extra — fixed-seed golden schedules stay bit-identical.
//
// Network is a class template over the protocol's message type (typically a
// std::variant of the protocol's messages) so the layer stays protocol-
// agnostic while deliveries remain statically typed.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/delay_model.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace mmrfd::net {

struct NetworkStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t messages_dropped_crash{0};
  std::uint64_t messages_dropped_loss{0};
  std::uint64_t messages_dropped_partition{0};
  std::uint64_t messages_duplicated{0};
  std::uint64_t messages_reordered{0};
  std::uint64_t bytes_sent{0};
};

template <typename Msg>
class Network {
 public:
  using Handler = std::function<void(ProcessId from, const Msg&)>;
  using SizeFn = std::function<std::size_t(const Msg&)>;
  /// Shard hand-off hook: (dst_shard, when, from, to, payload). Installed by
  /// the sharded runtime; the network calls it instead of scheduling a local
  /// delivery event whenever the recipient lives on another shard.
  using RemoteSink = std::function<void(std::uint32_t dst_shard,
                                        TimePoint when, ProcessId from,
                                        ProcessId to,
                                        std::shared_ptr<const Msg> payload)>;

  /// Shares an existing topology — the sharded runtime hands every
  /// per-shard network one copy of the (potentially O(n^2)) adjacency.
  Network(sim::Simulation& simulation, std::shared_ptr<const Topology> topology,
          std::unique_ptr<DelayModel> delays, std::uint64_t seed)
      : sim_(simulation),
        topology_(std::move(topology)),
        delays_(std::move(delays)),
        rng_(derive_seed(seed, "net.delays")),
        loss_rng_(derive_seed(seed, "net.loss")),
        fault_rng_(derive_seed(seed, "net.faults")),
        handlers_(topology_->size()),
        crashed_(topology_->size(), false) {
    assert(delays_ != nullptr);
    assert(topology_ != nullptr);
  }

  Network(sim::Simulation& simulation, Topology topology,
          std::unique_ptr<DelayModel> delays, std::uint64_t seed)
      : Network(simulation,
                std::make_shared<const Topology>(std::move(topology)),
                std::move(delays), seed) {}

  [[nodiscard]] std::size_t size() const { return topology_->size(); }
  [[nodiscard]] const Topology& topology() const { return *topology_; }

  /// Turns this instance into one shard of a partitioned deployment:
  /// `shard_of[i]` names node i's owning shard, `self_shard` is this
  /// network's shard, and deliveries to nodes of other shards are handed to
  /// `sink` (with their absolute delivery time) instead of the local heap.
  /// Delay sampling, loss and duplication still happen here, on the sending
  /// shard, so a shard's random streams stay private to its thread.
  void enable_shard_routing(std::shared_ptr<const std::vector<std::uint32_t>> shard_of,
                            std::uint32_t self_shard, RemoteSink sink) {
    assert(shard_of != nullptr && shard_of->size() == size());
    assert(sink != nullptr);
    shard_of_ = std::move(shard_of);
    self_shard_ = self_shard;
    remote_sink_ = std::move(sink);
  }

  /// Executes a delivery handed over from another shard. Crash filtering
  /// and delivery stats run here, on the owning shard, where the
  /// recipient's state lives.
  void deliver_remote(ProcessId from, ProcessId to,
                      const std::shared_ptr<const Msg>& payload) {
    deliver(from, to, *payload);
  }

  void set_handler(ProcessId id, Handler h) {
    handlers_.at(id.value) = std::move(h);
  }

  /// Optional per-message wire-size estimator; enables bytes_sent stats.
  void set_size_fn(SizeFn fn) { size_fn_ = std::move(fn); }

  /// Fraction of messages silently dropped (baseline stress only; the model
  /// itself has reliable channels).
  void set_loss_rate(double p) {
    assert(p >= 0.0 && p < 1.0);
    loss_rate_ = p;
  }

  /// Fraction of messages delivered twice (independent delays). Like loss,
  /// duplication violates the paper's channel model; the protocols must
  /// nevertheless be idempotent against it (robustness tests).
  void set_duplicate_rate(double p) {
    assert(p >= 0.0 && p < 1.0);
    duplicate_rate_ = p;
  }

  /// Bounded out-of-order delivery: with probability `rate` a message's
  /// sampled delay is stretched by an extra uniform draw in (0, window], so
  /// messages sent later can overtake it — adversarial non-FIFO reordering
  /// beyond what independent delay sampling already produces. Draws come
  /// from a dedicated RNG stream on the sending shard, so serial and
  /// sharded runs stay deterministic per seed and rate 0 (the default)
  /// draws nothing, leaving fixed-seed golden schedules bit-identical.
  void set_reorder(double rate, Duration window) {
    assert(rate >= 0.0 && rate < 1.0);
    assert(rate == 0.0 || window > Duration::zero());
    reorder_rate_ = rate;
    reorder_window_ = window;
  }

  /// Asymmetric partition: every from->to message is dropped until
  /// heal_link(). Directed — block_link(a, b) leaves b->a untouched, which
  /// is exactly the half-open failure mode the paper's model excludes.
  void block_link(ProcessId from, ProcessId to) {
    blocked_links_.insert(edge_key(from, to));
  }

  void heal_link(ProcessId from, ProcessId to) {
    blocked_links_.erase(edge_key(from, to));
  }

  /// Scheduled link flap: from->to messages *sent* within [down, up) are
  /// dropped. The check runs against send time on the sending shard — no
  /// RNG draw, no cross-shard state — so flaps compose with shard routing.
  void add_link_flap(ProcessId from, ProcessId to, TimePoint down,
                     TimePoint up) {
    assert(down < up);
    flaps_[edge_key(from, to)].push_back(FlapInterval{down, up});
  }

  /// Marks a process crashed: it stops receiving immediately. (The caller is
  /// responsible for silencing the process's own sends — hosts check
  /// is_crashed() before acting.)
  void crash(ProcessId id) { crashed_.at(id.value) = true; }

  [[nodiscard]] bool is_crashed(ProcessId id) const {
    return crashed_.at(id.value);
  }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// Sends `msg` from `from` to `to`; delivery is scheduled after a sampled
  /// delay. Sending to a non-neighbor or from a crashed process asserts.
  ///
  /// Allocation profile: the common (no-duplication) path moves `msg`
  /// straight into the delivery event — no copy, no shared wrapper. Only
  /// when the duplication coin actually lands is the message promoted to a
  /// shared payload, and then both delivery events share that single copy.
  void send(ProcessId from, ProcessId to, Msg msg) {
    assert(!is_crashed(from));
    assert(from == to || topology_->are_neighbors(from, to));
    ++stats_.messages_sent;
    if (size_fn_) stats_.bytes_sent += size_fn_(msg);
    if (link_down(from, to)) {
      ++stats_.messages_dropped_partition;
      return;
    }
    if (loss_rate_ > 0.0 && loss_rng_.bernoulli(loss_rate_)) {
      ++stats_.messages_dropped_loss;
      return;
    }
    if (duplicate_rate_ > 0.0 && loss_rng_.bernoulli(duplicate_rate_)) {
      ++stats_.messages_duplicated;
      auto payload = std::make_shared<const Msg>(std::move(msg));
      // Keep the seed implementation's draw/schedule order bit-for-bit:
      // duplicate delay first, then the primary delay.
      schedule_delivery(from, to, payload);
      schedule_delivery(from, to, std::move(payload));
      return;
    }
    if (is_remote(to)) {
      // Crossing a shard boundary forces the one payload copy the serial
      // fast path avoids; the destination shard shares it with nothing.
      route_remote(from, to, std::make_shared<const Msg>(std::move(msg)));
      return;
    }
    const Duration delay =
        delays_->sample(from, to, sim_.now(), rng_) + reorder_extra();
    assert(delay >= Duration::zero());
    sim_.schedule(delay, [this, from, to, m = std::move(msg)]() {
      deliver(from, to, m);
    });
  }

  /// Sends an immutable shared payload from `from` to `to` — the unicast
  /// sibling of broadcast()'s fan-out: the delivery event references the
  /// caller's payload instead of owning a copy. Hosts use it to share one
  /// full-encoding query across every peer that needs the fallback.
  /// Loss/duplication/delay sampling order is identical to send(), so
  /// fixed-seed schedules are bit-for-bit the same whichever path a host
  /// picks.
  void send_shared(ProcessId from, ProcessId to,
                   std::shared_ptr<const Msg> payload) {
    assert(!is_crashed(from));
    assert(from == to || topology_->are_neighbors(from, to));
    assert(payload != nullptr);
    ++stats_.messages_sent;
    if (size_fn_) stats_.bytes_sent += size_fn_(*payload);
    if (link_down(from, to)) {
      ++stats_.messages_dropped_partition;
      return;
    }
    if (loss_rate_ > 0.0 && loss_rng_.bernoulli(loss_rate_)) {
      ++stats_.messages_dropped_loss;
      return;
    }
    if (duplicate_rate_ > 0.0 && loss_rng_.bernoulli(duplicate_rate_)) {
      ++stats_.messages_duplicated;
      schedule_delivery(from, to, payload);
    }
    schedule_delivery(from, to, std::move(payload));
  }

  /// Sends `msg` to every neighbor of `from` (excluding `from`: protocol
  /// cores account for their own copy locally, which also implements the
  /// paper's "its own response always arrives among the first" convention).
  ///
  /// The message is copied exactly once, into an immutable shared payload
  /// that every per-recipient delivery event references — O(1) message
  /// copies per broadcast instead of the O(n) a send() loop would make.
  /// Per-recipient loss/duplication/delay sampling is identical to a send()
  /// loop, so stats and fixed-seed schedules match the per-send path.
  void broadcast(ProcessId from, const Msg& msg) {
    broadcast_payload(from, std::make_shared<const Msg>(msg));
  }

  /// Rvalue overload: the broadcast consumes `msg` without any copy at all.
  void broadcast(ProcessId from, Msg&& msg) {
    broadcast_payload(from, std::make_shared<const Msg>(std::move(msg)));
  }

 private:
  void broadcast_payload(ProcessId from, std::shared_ptr<const Msg> payload) {
    assert(!is_crashed(from));
    const auto& neighbors = topology_->neighbors(from);
    for (ProcessId to : neighbors) {
      ++stats_.messages_sent;
      if (size_fn_) stats_.bytes_sent += size_fn_(*payload);
      if (link_down(from, to)) {
        ++stats_.messages_dropped_partition;
        continue;
      }
      if (loss_rate_ > 0.0 && loss_rng_.bernoulli(loss_rate_)) {
        ++stats_.messages_dropped_loss;
        continue;
      }
      if (duplicate_rate_ > 0.0 && loss_rng_.bernoulli(duplicate_rate_)) {
        ++stats_.messages_duplicated;
        schedule_delivery(from, to, payload);
      }
      schedule_delivery(from, to, payload);
    }
  }

  [[nodiscard]] bool is_remote(ProcessId to) const {
    return shard_of_ != nullptr && (*shard_of_)[to.value] != self_shard_;
  }

  /// Samples the delay and hands a cross-shard delivery to the remote sink
  /// with its absolute due time. The sample happens on this (the sending)
  /// shard — identical draw accounting to a local delivery.
  void route_remote(ProcessId from, ProcessId to,
                    std::shared_ptr<const Msg> payload) {
    // Reorder stretch only ever *adds* delay, so the min-delay bound below
    // (and with it conservative-window soundness) survives fault injection.
    const Duration delay =
        delays_->sample(from, to, sim_.now(), rng_) + reorder_extra();
    assert(delay >= Duration::zero());
    // The min-delay bound is what makes conservative windows sound; a model
    // sampling below its own bound is a bug worth dying loudly for (the
    // engine re-checks at drain time for release builds).
    assert(delay >= delays_->min_delay());
    remote_sink_((*shard_of_)[to.value], sim_.now() + delay, from, to,
                 std::move(payload));
  }

  /// Schedules one delivery of a shared payload after a sampled delay. The
  /// event captures only {this, from, to, payload} — 40 bytes, comfortably
  /// inside the simulator's inline-callable budget.
  void schedule_delivery(ProcessId from, ProcessId to,
                         std::shared_ptr<const Msg> payload) {
    if (is_remote(to)) {
      route_remote(from, to, std::move(payload));
      return;
    }
    const Duration delay =
        delays_->sample(from, to, sim_.now(), rng_) + reorder_extra();
    assert(delay >= Duration::zero());
    sim_.schedule(delay, [this, from, to, p = std::move(payload)]() {
      deliver(from, to, *p);
    });
  }

  /// Extra delay a reordered message accrues, (0, window]. Strictly
  /// positive so a "reordered" message genuinely lags its sampled slot.
  /// When the knob is off this draws nothing — fixed-seed schedules with
  /// faults disabled are bit-identical to pre-fault-layer builds.
  [[nodiscard]] Duration reorder_extra() {
    if (reorder_rate_ <= 0.0 || !fault_rng_.bernoulli(reorder_rate_)) {
      return Duration::zero();
    }
    ++stats_.messages_reordered;
    const double u = fault_rng_.next_double();
    return Duration(1) + Duration(static_cast<Duration::rep>(
                             u * static_cast<double>(reorder_window_.count())));
  }

  [[nodiscard]] static std::uint64_t edge_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  [[nodiscard]] bool link_down(ProcessId from, ProcessId to) const {
    if (blocked_links_.empty() && flaps_.empty()) return false;
    const std::uint64_t key = edge_key(from, to);
    if (blocked_links_.contains(key)) return true;
    if (const auto it = flaps_.find(key); it != flaps_.end()) {
      const TimePoint now = sim_.now();
      for (const auto& f : it->second) {
        if (now >= f.down && now < f.up) return true;
      }
    }
    return false;
  }

  void deliver(ProcessId from, ProcessId to, const Msg& msg) {
    if (crashed_[to.value]) {
      ++stats_.messages_dropped_crash;
      return;
    }
    ++stats_.messages_delivered;
    if (auto& h = handlers_[to.value]) h(from, msg);
  }

  struct FlapInterval {
    TimePoint down;
    TimePoint up;
  };

  sim::Simulation& sim_;
  std::shared_ptr<const Topology> topology_;
  std::unique_ptr<DelayModel> delays_;
  Xoshiro256 rng_;
  Xoshiro256 loss_rng_;
  Xoshiro256 fault_rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  double loss_rate_{0.0};
  double duplicate_rate_{0.0};
  double reorder_rate_{0.0};
  Duration reorder_window_{Duration::zero()};
  std::unordered_set<std::uint64_t> blocked_links_;
  std::unordered_map<std::uint64_t, std::vector<FlapInterval>> flaps_;
  SizeFn size_fn_;
  NetworkStats stats_;

  // Shard routing (disabled for the serial engine: null shard map keeps
  // every delivery on the exact code path the golden digests pin).
  std::shared_ptr<const std::vector<std::uint32_t>> shard_of_;
  std::uint32_t self_shard_{0};
  RemoteSink remote_sink_;
};

}  // namespace mmrfd::net
