#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace mmrfd {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a string, used to turn stream labels into seed material.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Xoshiro256::exponential(double mean) {
  assert(mean > 0);
  // Inverse CDF; 1 - u in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

double Xoshiro256::lognormal(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(sigma * normal(0.0, 1.0));
}

double Xoshiro256::bounded_pareto(double x_min, double alpha, double cap) {
  assert(x_min > 0 && alpha > 0 && cap > x_min);
  const double u = next_double();
  const double v = x_min / std::pow(1.0 - u, 1.0 / alpha);
  return v > cap ? cap : v;
}

double Xoshiro256::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u;
  double v;
  double s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

bool Xoshiro256::bernoulli(double p) { return next_double() < p; }

std::uint64_t derive_seed(std::uint64_t master, std::string_view stream_label,
                          std::uint64_t index) {
  SplitMix64 sm(master ^ fnv1a(stream_label) ^ (index * 0x9e3779b97f4a7c15ULL));
  sm.next();
  return sm.next();
}

}  // namespace mmrfd
