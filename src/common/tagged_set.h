// TaggedSet: the `suspected` / `mistake` sets of the DSN'03 protocol.
//
// Each entry is a pair <id, tag> — "process `id` is suspected (resp. was
// falsely suspected), and that piece of information was generated when the
// originator's round counter had value `tag`". At most one entry per id;
// Add() implements the paper's replacement semantics: inserting <id, tag>
// overwrites any existing <id, ->.
//
// Entries are kept sorted by id in a flat vector: sets are small (<= n), the
// protocol iterates them on every query, and flat storage keeps merge loops
// cache-friendly and the serialized wire form canonical.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace mmrfd {

/// One <id, tag> element of a suspicion or mistake set.
struct TaggedEntry {
  ProcessId id;
  Tag tag{0};

  friend constexpr bool operator==(const TaggedEntry&,
                                   const TaggedEntry&) = default;
};

class TaggedSet {
 public:
  TaggedSet() = default;

  /// Inserts <id, tag>, replacing any existing entry for `id`
  /// (the paper's Add(set, <id, counter>)).
  void add(ProcessId id, Tag tag);

  /// Removes the entry for `id` if present; returns true if removed.
  bool erase(ProcessId id);

  /// Tag of `id`'s entry, or nullopt if absent.
  [[nodiscard]] std::optional<Tag> tag_of(ProcessId id) const;

  [[nodiscard]] bool contains(ProcessId id) const {
    return tag_of(id).has_value();
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Sorted-by-id view of the entries.
  [[nodiscard]] std::span<const TaggedEntry> entries() const {
    return entries_;
  }

  [[nodiscard]] std::vector<ProcessId> ids() const;

  friend bool operator==(const TaggedSet&, const TaggedSet&) = default;

 private:
  std::vector<TaggedEntry> entries_;  // sorted by id, unique ids
};

/// Epoch — a monotone version of one process's (suspected, mistake) state.
/// Epoch 0 means "nothing": no change has ever happened (sender side) or no
/// state has ever been acknowledged (receiver side).
using Epoch = std::uint64_t;

/// ChangeJournal — the delta-extraction machinery behind the compact query
/// encoding.
///
/// Every mutation of the protocol sets is record()ed; the count of
/// mutations so far is the state's *epoch*. A peer that acknowledged epoch
/// `e` provably merged everything up to `e` (tags are monotone, so replayed
/// entries are no-ops), hence a query to that peer only needs the ids
/// changed in (e, epoch()] — changed_since(e) — instead of the whole O(f)
/// set. The epoch id *interns* the long-stable portion of the sets: it
/// travels as a single integer where the full encoding repeats every entry.
///
/// The journal keeps a bounded window of recent changes. When a peer's
/// acknowledged epoch falls behind the window (covers() is false — e.g. the
/// peer is crashed and stopped acking, or it restarted and asked for a
/// resync), the sender falls back to the full encoding for that peer.
class ChangeJournal {
 public:
  /// `capacity` bounds the replay window: once more than 2 * capacity
  /// changes are buffered, the oldest half is discarded (amortised O(1)).
  explicit ChangeJournal(std::size_t capacity = 1024);

  /// Current epoch: total number of record()ed changes.
  [[nodiscard]] Epoch epoch() const { return base_ + ids_.size(); }

  /// Oldest epoch the window can still produce a delta against.
  [[nodiscard]] Epoch base() const { return base_; }

  /// True iff changed_since(since) can be answered from the window.
  [[nodiscard]] bool covers(Epoch since) const {
    return since >= base_ && since <= epoch();
  }

  /// Records a change to `id`; returns the new epoch.
  Epoch record(ProcessId id);

  /// Ids changed in (since, epoch()], deduplicated and sorted by id.
  /// Requires covers(since).
  [[nodiscard]] std::vector<ProcessId> changed_since(Epoch since) const;

  /// Transient-corruption hook (self-stabilization sweeps): discards the
  /// whole replay window and restarts the epoch counter at `new_base`, as
  /// a memory fault clobbering the journal would. Injection use only.
  void corrupt_reset(Epoch new_base) {
    base_ = new_base;
    ids_.clear();
  }

 private:
  std::size_t capacity_;
  Epoch base_{0};  // number of discarded records
  std::vector<ProcessId> ids_;  // ids_[k] changed at epoch base_ + k + 1
};

/// DeltaState — the per-peer watermark contract of the delta wire encoding,
/// shared by both protocol cores (DetectorCore and SimpleDetectorCore) so
/// the soundness-critical rules live in exactly one place:
///
///   * sender side: `acked(peer)` is the highest of our epochs the peer has
///     acknowledged — a response to the current query certifies the peer
///     merged our state through the epoch it echoes, so entries unchanged
///     since then are provably no-op replays and can be omitted;
///   * receiver side: `seen(sender)` is the highest of the sender's epochs
///     we have merged; a delta built on a base we never acknowledged is an
///     *epoch miss* (we lost state, or the ack was not ours) and must be
///     answered with need_full.
///
/// All ids are bounds-checked against n: ids >= n (forged live-path
/// senders) never advance a watermark.
class DeltaState {
 public:
  /// `journal_capacity` as in ChangeJournal; 0 = auto (max(1024, 4n)).
  DeltaState(std::uint32_t n, std::size_t journal_capacity);

  [[nodiscard]] const ChangeJournal& journal() const { return journal_; }

  /// Records a state change; returns the new epoch.
  Epoch record(ProcessId id) { return journal_.record(id); }
  [[nodiscard]] Epoch epoch() const { return journal_.epoch(); }

  /// Snapshot the send epoch for a new query round.
  void begin_round() { sent_epoch_ = journal_.epoch(); }
  [[nodiscard]] Epoch sent_epoch() const { return sent_epoch_; }

  [[nodiscard]] Epoch acked(ProcessId peer) const {
    return acked_.at(peer.value);
  }
  [[nodiscard]] Epoch seen(ProcessId sender) const {
    return seen_.at(sender.value);
  }

  /// Applies a response's acknowledgement for the CURRENT round (callers
  /// have already matched the sequence number). The ack is clamped to
  /// sent_epoch(): no response can legitimately acknowledge more than the
  /// round sent, so a forged ack_epoch cannot push the watermark past the
  /// journal and wedge the peer onto the full fallback. need_full drops
  /// the watermark so the next query is self-contained.
  void on_ack(ProcessId from, Epoch ack_epoch, bool need_full);

  /// Sender-side fallback decision: full encoding on first contact (acked
  /// 0), journal overrun (ack no longer covered), or a lag so large the
  /// journal-suffix scan would cost more than the shared full payload —
  /// `set_size` is the full encoding's entry count (crashed peers stop
  /// acking, so their lag grows monotonically and they land here).
  [[nodiscard]] bool full_needed(ProcessId peer, std::size_t set_size) const;

  /// Receiver side: true iff `query_base` names an epoch of `sender` we
  /// never acknowledged (only meaningful for delta queries).
  [[nodiscard]] bool epoch_miss(ProcessId sender, bool is_delta,
                                Epoch query_base) const;

  /// Receiver side: advance seen(sender) after merging a query at `epoch`.
  void note_seen(ProcessId sender, Epoch epoch);

  /// Self-stabilization guard: discards every per-sender seen watermark.
  /// The watermarks are *assumptions* about state already merged; after a
  /// transient memory fault they can be wrong in the dangerous direction
  /// (too high — claiming knowledge that was lost), which silently
  /// suppresses the need_full repair forever. Periodically dropping them
  /// costs one full-encoding refresh per sender and bounds how long any
  /// fabricated watermark can survive.
  void reset_seen() { std::fill(seen_.begin(), seen_.end(), Epoch{0}); }

  /// Transient-corruption hooks (self-stabilization sweeps). These bypass
  /// every watermark invariant on purpose — a memory fault does not respect
  /// clamping — so the sweeps can prove the need_full/full-fallback resync
  /// path recovers from arbitrary damage. Injection use only.
  void corrupt_acked(ProcessId peer, Epoch value) {
    if (peer.value < acked_.size()) acked_[peer.value] = value;
  }
  void corrupt_seen(ProcessId sender, Epoch value) {
    if (sender.value < seen_.size()) seen_[sender.value] = value;
  }
  void corrupt_journal(Epoch new_base) {
    journal_.corrupt_reset(new_base);
    sent_epoch_ = journal_.epoch();
  }

 private:
  ChangeJournal journal_;
  std::vector<Epoch> acked_;  // per peer: our epochs they acked
  std::vector<Epoch> seen_;   // per sender: their epochs we merged
  Epoch sent_epoch_{0};
};

}  // namespace mmrfd
