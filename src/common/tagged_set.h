// TaggedSet: the `suspected` / `mistake` sets of the DSN'03 protocol.
//
// Each entry is a pair <id, tag> — "process `id` is suspected (resp. was
// falsely suspected), and that piece of information was generated when the
// originator's round counter had value `tag`". At most one entry per id;
// Add() implements the paper's replacement semantics: inserting <id, tag>
// overwrites any existing <id, ->.
//
// Entries are kept sorted by id in a flat vector: sets are small (<= n), the
// protocol iterates them on every query, and flat storage keeps merge loops
// cache-friendly and the serialized wire form canonical.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace mmrfd {

/// One <id, tag> element of a suspicion or mistake set.
struct TaggedEntry {
  ProcessId id;
  Tag tag{0};

  friend constexpr bool operator==(const TaggedEntry&,
                                   const TaggedEntry&) = default;
};

class TaggedSet {
 public:
  TaggedSet() = default;

  /// Inserts <id, tag>, replacing any existing entry for `id`
  /// (the paper's Add(set, <id, counter>)).
  void add(ProcessId id, Tag tag);

  /// Removes the entry for `id` if present; returns true if removed.
  bool erase(ProcessId id);

  /// Tag of `id`'s entry, or nullopt if absent.
  [[nodiscard]] std::optional<Tag> tag_of(ProcessId id) const;

  [[nodiscard]] bool contains(ProcessId id) const {
    return tag_of(id).has_value();
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Sorted-by-id view of the entries.
  [[nodiscard]] std::span<const TaggedEntry> entries() const {
    return entries_;
  }

  [[nodiscard]] std::vector<ProcessId> ids() const;

  friend bool operator==(const TaggedSet&, const TaggedSet&) = default;

 private:
  std::vector<TaggedEntry> entries_;  // sorted by id, unique ids
};

}  // namespace mmrfd
