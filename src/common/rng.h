// Deterministic random number generation.
//
// Experiments must be reproducible bit-for-bit from a single 64-bit seed, so
// we implement our own generators instead of relying on implementation-defined
// std::default_random_engine behaviour:
//   * SplitMix64 — seed expansion / stream derivation,
//   * xoshiro256** — the workhorse generator (one independent stream per
//     simulator component, derived from the master seed + a stream label).
// Distribution sampling (uniform, exponential, log-normal, bounded Pareto) is
// also hand-rolled: libstdc++'s std::*_distribution are not stable across
// versions.
#pragma once

#include <cstdint>
#include <string_view>

namespace mmrfd {

/// SplitMix64: tiny, fast, passes BigCrush; ideal for deriving seeds.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: public-domain generator by Blackman & Vigna.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 (recommended practice).
  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Log-normal parameterised by the *target* median and sigma of log-space.
  double lognormal(double median, double sigma);

  /// Pareto with shape alpha and scale x_min, truncated at cap.
  double bounded_pareto(double x_min, double alpha, double cap);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_{false};
  double spare_normal_{0.0};
};

/// Derives a child seed for a named stream, so that e.g. the link-delay
/// stream and the crash-schedule stream of one experiment never overlap.
std::uint64_t derive_seed(std::uint64_t master, std::string_view stream_label,
                          std::uint64_t index = 0);

}  // namespace mmrfd
