// Fundamental vocabulary types shared by every mmrfd module.
#pragma once

#include <chrono>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>

namespace mmrfd {

/// Identifier of a process (node) in the system.
///
/// The DSN'03 model is a *known* static membership Pi = {p_0, ..., p_{n-1}};
/// we use dense 32-bit indices so per-process state can live in flat arrays.
struct ProcessId {
  std::uint32_t value{0};

  constexpr ProcessId() = default;
  constexpr explicit ProcessId(std::uint32_t v) : value(v) {}

  friend constexpr auto operator<=>(ProcessId, ProcessId) = default;
};

/// An invalid sentinel (never a member of Pi).
inline constexpr ProcessId kNoProcess{std::numeric_limits<std::uint32_t>::max()};

std::ostream& operator<<(std::ostream& os, ProcessId id);

/// Virtual (simulated) or real time is always expressed in nanoseconds.
using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds;  // offset from the run's origin

inline constexpr TimePoint kTimeZero{0};
inline constexpr TimePoint kTimeMax{std::numeric_limits<std::int64_t>::max()};

constexpr double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

constexpr Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

constexpr Duration from_millis(double ms) { return from_seconds(ms / 1e3); }

/// Monotonically increasing tag ("counter" in the paper) used to order
/// suspicion/mistake information: a larger tag is more recent.
using Tag = std::uint64_t;

/// Sequence number of a query round at one process.
using QuerySeq = std::uint64_t;

}  // namespace mmrfd

template <>
struct std::hash<mmrfd::ProcessId> {
  std::size_t operator()(mmrfd::ProcessId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
