#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace mmrfd {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

constexpr const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {
void log_emit(LogLevel level, std::string_view module, std::string_view msg) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace internal

}  // namespace mmrfd
