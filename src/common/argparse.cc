#include "common/argparse.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mmrfd {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

ArgParser& ArgParser::flag(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  if (flags_.emplace(name, Flag{default_value, help, std::nullopt}).second) {
    order_.push_back(name);
  }
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // boolean flag form
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", arg.c_str(),
                   usage().c_str());
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not registered: " + name);
  }
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace mmrfd
