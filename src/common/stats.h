// Small statistics helpers used by the metrics module and the benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mmrfd {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel combine).
  void merge(const RunningStats& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Stores all samples; supports exact percentiles. Use for per-run
/// distributions (detection times, mistake durations) where sample counts
/// are modest.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by linear interpolation, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double stddev() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{false};
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi), with underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Multi-line ASCII rendering (one row per non-empty bucket).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

}  // namespace mmrfd
