// A tiny flag parser for bench/example binaries: --name=value / --name value
// / boolean --flag. Unknown flags are an error (typos in sweep scripts must
// not pass silently).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmrfd {

class ArgParser {
 public:
  ArgParser(std::string program_description);

  /// Registers a flag with a default; returns *this for chaining.
  ArgParser& flag(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
};

}  // namespace mmrfd
