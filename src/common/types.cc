#include "common/types.h"

#include <ostream>

namespace mmrfd {

std::ostream& operator<<(std::ostream& os, ProcessId id) {
  if (id == kNoProcess) return os << "p?";
  return os << 'p' << id.value;
}

}  // namespace mmrfd
