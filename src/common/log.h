// Minimal leveled logger.
//
// The simulator is single-threaded, but the transport runtime logs from
// worker threads, so emission is guarded by a mutex. Logging defaults to
// kWarn so tests and benches stay quiet; examples raise it to kInfo.
#pragma once

#include <mutex>
#include <sstream>
#include <string_view>

namespace mmrfd {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace internal {
void log_emit(LogLevel level, std::string_view module, std::string_view msg);

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view module)
      : level_(level), module_(module) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, module_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view module_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace mmrfd

#define MMRFD_LOG(level, module)                      \
  if (::mmrfd::log_level() <= (level))                \
  ::mmrfd::internal::LogLine((level), (module))

#define MMRFD_LOG_TRACE(module) MMRFD_LOG(::mmrfd::LogLevel::kTrace, module)
#define MMRFD_LOG_DEBUG(module) MMRFD_LOG(::mmrfd::LogLevel::kDebug, module)
#define MMRFD_LOG_INFO(module) MMRFD_LOG(::mmrfd::LogLevel::kInfo, module)
#define MMRFD_LOG_WARN(module) MMRFD_LOG(::mmrfd::LogLevel::kWarn, module)
#define MMRFD_LOG_ERROR(module) MMRFD_LOG(::mmrfd::LogLevel::kError, module)
