#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mmrfd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  const double bucket_width =
      (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i) + bucket_width << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace mmrfd
