#include "common/tagged_set.h"

#include <algorithm>

namespace mmrfd {

namespace {
auto lower_bound_for(std::vector<TaggedEntry>& v, ProcessId id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const TaggedEntry& e, ProcessId key) { return e.id < key; });
}

auto lower_bound_for(const std::vector<TaggedEntry>& v, ProcessId id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const TaggedEntry& e, ProcessId key) { return e.id < key; });
}
}  // namespace

void TaggedSet::add(ProcessId id, Tag tag) {
  auto it = lower_bound_for(entries_, id);
  if (it != entries_.end() && it->id == id) {
    it->tag = tag;
  } else {
    entries_.insert(it, TaggedEntry{id, tag});
  }
}

bool TaggedSet::erase(ProcessId id) {
  auto it = lower_bound_for(entries_, id);
  if (it != entries_.end() && it->id == id) {
    entries_.erase(it);
    return true;
  }
  return false;
}

std::optional<Tag> TaggedSet::tag_of(ProcessId id) const {
  auto it = lower_bound_for(entries_, id);
  if (it != entries_.end() && it->id == id) return it->tag;
  return std::nullopt;
}

std::vector<ProcessId> TaggedSet::ids() const {
  std::vector<ProcessId> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.id);
  return out;
}

}  // namespace mmrfd
