#include "common/tagged_set.h"

#include <algorithm>
#include <cassert>

namespace mmrfd {

namespace {
auto lower_bound_for(std::vector<TaggedEntry>& v, ProcessId id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const TaggedEntry& e, ProcessId key) { return e.id < key; });
}

auto lower_bound_for(const std::vector<TaggedEntry>& v, ProcessId id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const TaggedEntry& e, ProcessId key) { return e.id < key; });
}
}  // namespace

void TaggedSet::add(ProcessId id, Tag tag) {
  auto it = lower_bound_for(entries_, id);
  if (it != entries_.end() && it->id == id) {
    it->tag = tag;
  } else {
    entries_.insert(it, TaggedEntry{id, tag});
  }
}

bool TaggedSet::erase(ProcessId id) {
  auto it = lower_bound_for(entries_, id);
  if (it != entries_.end() && it->id == id) {
    entries_.erase(it);
    return true;
  }
  return false;
}

std::optional<Tag> TaggedSet::tag_of(ProcessId id) const {
  auto it = lower_bound_for(entries_, id);
  if (it != entries_.end() && it->id == id) return it->tag;
  return std::nullopt;
}

std::vector<ProcessId> TaggedSet::ids() const {
  std::vector<ProcessId> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.id);
  return out;
}

ChangeJournal::ChangeJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Epoch ChangeJournal::record(ProcessId id) {
  if (ids_.size() >= 2 * capacity_) {
    const std::size_t drop = ids_.size() - capacity_;
    ids_.erase(ids_.begin(), ids_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ += drop;
  }
  ids_.push_back(id);
  return epoch();
}

std::vector<ProcessId> ChangeJournal::changed_since(Epoch since) const {
  assert(covers(since));
  std::vector<ProcessId> out(ids_.begin() + static_cast<std::ptrdiff_t>(
                                 since - base_),
                             ids_.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

DeltaState::DeltaState(std::uint32_t n, std::size_t journal_capacity)
    : journal_(journal_capacity != 0
                   ? journal_capacity
                   : std::max<std::size_t>(1024, 4 * std::size_t{n})),
      acked_(n, 0),
      seen_(n, 0) {}

void DeltaState::on_ack(ProcessId from, Epoch ack_epoch, bool need_full) {
  if (from.value >= acked_.size()) return;
  auto& acked = acked_[from.value];
  if (need_full) {
    acked = 0;
  } else {
    acked = std::max(acked, std::min(ack_epoch, sent_epoch_));
  }
}

bool DeltaState::full_needed(ProcessId peer, std::size_t set_size) const {
  const Epoch acked = acked_.at(peer.value);
  if (acked == 0 || !journal_.covers(acked)) return true;
  // Cost guard: building a delta scans + sorts the journal suffix (one
  // record per change since the peer's ack), while the full fallback is
  // one O(set_size) construction *shared* by every such peer.
  const Epoch lag = journal_.epoch() - acked;
  return lag > 2 * set_size + 16;
}

bool DeltaState::epoch_miss(ProcessId sender, bool is_delta,
                            Epoch query_base) const {
  return is_delta && sender.value < seen_.size() &&
         query_base > seen_[sender.value];
}

void DeltaState::note_seen(ProcessId sender, Epoch epoch) {
  if (sender.value >= seen_.size()) return;
  seen_[sender.value] = std::max(seen_[sender.value], epoch);
}

}  // namespace mmrfd
