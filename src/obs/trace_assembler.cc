#include "obs/trace_assembler.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace mmrfd::obs {
namespace {

// One merged per-node event: record + which incarnation it came from.
struct NodeEvent {
  TraceRecord record;
  std::uint32_t incarnation{0};
};

// (peer, seq) -> first stamp + occurrence count, per causal role. Keys hit
// more than once (resent queries, duplicated responses) are excluded from
// skew matching: only clean first-try exchanges make trustworthy samples.
struct RoleSample {
  std::uint64_t t{0};
  std::uint32_t count{0};
};
using RoleMap = std::unordered_map<std::uint64_t, RoleSample>;

std::uint64_t role_key(std::uint32_t peer, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(peer) << 32) | seq;
}

void note(RoleMap& map, std::uint32_t peer, std::uint32_t seq,
          std::uint64_t t) {
  auto [it, inserted] = map.try_emplace(role_key(peer, seq), RoleSample{t, 1});
  if (!inserted) ++it->second.count;
}

const RoleSample* once(const RoleMap& map, std::uint64_t key) {
  const auto it = map.find(key);
  if (it == map.end() || it->second.count != 1) return nullptr;
  return &it->second;
}

struct PairEstimate {
  std::int64_t offset{0};  // clock(to) - clock(from), midpoint estimate
  std::uint64_t rtt{std::numeric_limits<std::uint64_t>::max()};
  std::size_t samples{0};
};

}  // namespace

TraceAssembler::TraceAssembler(AssemblerOptions options)
    : options_(options) {}

void TraceAssembler::add_node(TraceNodeInput input) {
  inputs_.push_back(std::move(input));
}

void TraceAssembler::add_crash(std::uint32_t victim, std::int64_t at_ns) {
  crashes_.emplace_back(victim, at_ns);
}

AssembledTrace TraceAssembler::assemble() const {
  AssembledTrace out;

  // --- merge incarnations per node, increasing (incarnation, seq) -----------
  std::map<std::uint32_t, std::vector<NodeEvent>> streams;
  for (const TraceNodeInput& in : inputs_) {
    auto& stream = streams[in.node];
    for (const TraceRecord& r : in.records) {
      stream.push_back(NodeEvent{r, in.incarnation});
    }
  }
  for (auto& [node, stream] : streams) {
    std::stable_sort(stream.begin(), stream.end(),
                     [](const NodeEvent& a, const NodeEvent& b) {
                       if (a.incarnation != b.incarnation) {
                         return a.incarnation < b.incarnation;
                       }
                       return a.record.seq < b.record.seq;
                     });
    out.records += stream.size();
  }

  // --- collect causal role maps ---------------------------------------------
  // Per node: qt = queries we sent (kQueryTxSeq), qr = queries we received,
  // rt = responses we sent, rr = responses we received.
  std::map<std::uint32_t, RoleMap> qt, qr, rt, rr;
  for (const auto& [node, stream] : streams) {
    for (const NodeEvent& e : stream) {
      const TraceRecord& r = e.record;
      switch (r.kind) {
        case TraceKind::kQueryTxSeq:
          note(qt[node], r.a, r.b, r.t_ns);
          break;
        case TraceKind::kQueryRx:
          note(qr[node], r.a, r.b, r.t_ns);
          break;
        case TraceKind::kResponseTxSeq:
          note(rt[node], r.a, r.b, r.t_ns);
          break;
        case TraceKind::kResponseRxSeq:
          note(rr[node], r.a, r.b, r.t_ns);
          break;
        default:
          break;
      }
    }
  }

  // --- match quadruples, estimate per-pair offsets --------------------------
  // For A's round s queried at B: t1 = A tx, t2 = B rx, t3 = B response tx,
  // t4 = A response rx. offset(B - A) = ((t2-t1) + (t3-t4)) / 2,
  // rtt = (t4-t1) - (t3-t2). Min-RTT sample per directed pair wins.
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairEstimate> pairs;
  std::map<std::uint32_t, std::size_t> node_samples;
  for (const auto& [a, a_qt] : qt) {
    for (const auto& [key, tx] : a_qt) {
      if (tx.count != 1) continue;
      const auto b = static_cast<std::uint32_t>(key >> 32);
      const auto b_it_qr = qr.find(b);
      const auto b_it_rt = rt.find(b);
      const auto a_it_rr = rr.find(a);
      if (b_it_qr == qr.end() || b_it_rt == rt.end() || a_it_rr == rr.end()) {
        continue;
      }
      const std::uint64_t seq = key & 0xffffffffu;
      const RoleSample* t2 = once(b_it_qr->second, role_key(a, seq));
      const RoleSample* t3 = once(b_it_rt->second, role_key(a, seq));
      const RoleSample* t4 = once(a_it_rr->second, role_key(b, seq));
      if (t2 == nullptr || t3 == nullptr || t4 == nullptr) continue;
      const auto t1s = static_cast<std::int64_t>(tx.t);
      const auto t2s = static_cast<std::int64_t>(t2->t);
      const auto t3s = static_cast<std::int64_t>(t3->t);
      const auto t4s = static_cast<std::int64_t>(t4->t);
      const std::int64_t rtt = (t4s - t1s) - (t3s - t2s);
      if (t4s < t1s || t3s < t2s || rtt < 0) continue;  // inconsistent
      const std::int64_t offset = ((t2s - t1s) + (t3s - t4s)) / 2;
      ++out.matched_pairs;
      ++node_samples[a];
      ++node_samples[b];
      auto& est = pairs[{a, b}];
      ++est.samples;
      if (static_cast<std::uint64_t>(rtt) < est.rtt) {
        est.rtt = static_cast<std::uint64_t>(rtt);
        est.offset = offset;
      }
    }
  }

  // --- anchor offsets via a min-RTT spanning tree (Prim) --------------------
  std::map<std::uint32_t, std::int64_t> offset;
  std::map<std::uint32_t, std::uint64_t> tree_rtt;
  if (!streams.empty()) {
    const std::uint32_t reference = streams.begin()->first;
    offset[reference] = 0;
    tree_rtt[reference] = 0;
    if (!options_.estimate_skew) {
      // One shared clock frame (the simulator): identity alignment.
      for (const auto& [node, stream] : streams) {
        offset[node] = 0;
        tree_rtt[node] = 0;
      }
    } else {
      while (true) {
        std::uint64_t best_rtt = std::numeric_limits<std::uint64_t>::max();
        std::uint32_t best_node = 0;
        std::int64_t best_offset = 0;
        bool found = false;
        for (const auto& [edge, est] : pairs) {
          const auto [u, v] = edge;
          // Edge usable in either direction: u settled extends to v, or v
          // settled extends to u (negated estimate).
          if (offset.contains(u) && !offset.contains(v) &&
              streams.contains(v) && est.rtt < best_rtt) {
            best_rtt = est.rtt;
            best_node = v;
            best_offset = offset.at(u) + est.offset;
            found = true;
          } else if (offset.contains(v) && !offset.contains(u) &&
                     streams.contains(u) && est.rtt < best_rtt) {
            best_rtt = est.rtt;
            best_node = u;
            best_offset = offset.at(v) - est.offset;
            found = true;
          }
        }
        if (!found) break;
        offset[best_node] = best_offset;
        tree_rtt[best_node] = best_rtt;
      }
    }
  }
  for (const auto& [node, stream] : streams) {
    SkewEstimate s;
    s.node = node;
    if (const auto it = offset.find(node); it != offset.end()) {
      s.offset_ns = it->second;
      s.min_rtt_ns = tree_rtt.at(node);
    } else {
      offset[node] = 0;  // unreachable: best effort, keep own clock
      s.reachable = false;
    }
    if (const auto it = node_samples.find(node); it != node_samples.end()) {
      s.samples = it->second;
    }
    out.skew.push_back(s);
  }

  const std::int64_t origin = static_cast<std::int64_t>(options_.origin_ns);
  const auto align = [&](std::uint32_t node, std::uint64_t t) {
    return static_cast<std::int64_t>(t) - origin - offset.at(node);
  };

  // --- causal sanity: alignment must never invert a matched tx -> rx pair ---
  for (const auto& [a, a_qt] : qt) {
    for (const auto& [key, tx] : a_qt) {
      if (tx.count != 1) continue;
      const auto b = static_cast<std::uint32_t>(key >> 32);
      const std::uint64_t seq = key & 0xffffffffu;
      if (const auto it = qr.find(b); it != qr.end()) {
        if (const RoleSample* rx = once(it->second, role_key(a, seq))) {
          if (align(b, rx->t) < align(a, tx.t)) ++out.causal_violations;
        }
      }
    }
  }
  for (const auto& [b, b_rt] : rt) {
    for (const auto& [key, tx] : b_rt) {
      if (tx.count != 1) continue;
      const auto a = static_cast<std::uint32_t>(key >> 32);
      const std::uint64_t seq = key & 0xffffffffu;
      if (const auto it = rr.find(a); it != rr.end()) {
        if (const RoleSample* rx = once(it->second, role_key(b, seq))) {
          if (align(a, rx->t) < align(b, tx.t)) ++out.causal_violations;
        }
      }
    }
  }

  // --- per-crash critical paths ---------------------------------------------
  std::vector<std::uint32_t> victims;
  for (const auto& [victim, at] : crashes_) victims.push_back(victim);
  for (const auto& [victim, crash_ns] : crashes_) {
    CrashTimeline timeline;
    timeline.victim = victim;
    timeline.crash_ns = crash_ns;
    for (const auto& [node, stream] : streams) {
      if (std::find(victims.begin(), victims.end(), node) != victims.end()) {
        continue;  // mirror Analysis::correct(): crashed nodes never observe
      }
      // Victim-related narrative instants.
      for (const NodeEvent& e : stream) {
        const TraceRecord& r = e.record;
        if (r.a != victim) continue;
        const std::int64_t t = align(node, r.t_ns);
        if (r.kind == TraceKind::kQueryRx ||
            r.kind == TraceKind::kResponseRx ||
            r.kind == TraceKind::kResponseRxSeq) {
          if (!timeline.last_heard_ns || t > *timeline.last_heard_ns) {
            timeline.last_heard_ns = t;
          }
        } else if (r.kind == TraceKind::kQueryTxSeq && t >= crash_ns) {
          if (!timeline.first_missed_ns || t < *timeline.first_missed_ns) {
            timeline.first_missed_ns = t;
          }
        }
      }
      // Final (permanent) suspicion of the victim — same definition as
      // metrics::Analysis: last kSuspectAdd with no later kSuspectDrop.
      std::ptrdiff_t suspect_idx = -1;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        const TraceRecord& r = stream[i].record;
        if (r.a != victim) continue;
        if (r.kind == TraceKind::kSuspectAdd) {
          suspect_idx = static_cast<std::ptrdiff_t>(i);
        } else if (r.kind == TraceKind::kSuspectDrop) {
          suspect_idx = -1;
        }
      }
      if (suspect_idx < 0) {
        ++timeline.undetected;
        continue;
      }
      ObserverBreakdown ob;
      ob.observer = node;
      ob.detect_ns = align(node, stream[suspect_idx].record.t_ns);
      ob.latency_ns = ob.detect_ns - crash_ns;
      // The detecting round: last kRoundOpen (same incarnation) before the
      // suspicion record.
      std::ptrdiff_t open_idx = -1;
      for (std::ptrdiff_t i = suspect_idx - 1; i >= 0; --i) {
        if (stream[i].incarnation != stream[suspect_idx].incarnation) break;
        if (stream[i].record.kind == TraceKind::kRoundOpen) {
          open_idx = i;
          break;
        }
      }
      if (ob.latency_ns < 0 || open_idx < 0) {
        // Pre-crash suspicion that stuck, or a ring too small to still hold
        // the round open: no meaningful split — fold it all into pacing so
        // the components still sum to the latency.
        ob.pacing_ns = ob.latency_ns;
        timeline.observers.push_back(ob);
        continue;
      }
      ob.round_seq = stream[open_idx].record.a;
      const std::int64_t t_open = align(node, stream[open_idx].record.t_ns);
      std::optional<std::int64_t> t_quorum;
      std::optional<std::int64_t> t_last_wave;
      for (std::ptrdiff_t i = open_idx + 1; i < suspect_idx; ++i) {
        const TraceRecord& r = stream[i].record;
        if (r.kind == TraceKind::kResendWave) {
          ++ob.resend_waves;
          t_last_wave = align(node, r.t_ns);
        } else if (r.kind == TraceKind::kQuorum && r.a == ob.round_seq &&
                   !t_quorum) {
          t_quorum = align(node, r.t_ns);
        }
      }
      // Exactly-summing split (see header). base..tq is the in-round span;
      // everything outside it is pacing. All clamps only move boundaries
      // within [base, detect], so pacing + resend_wait + wire == latency.
      const std::int64_t base = std::max(crash_ns, t_open);
      const std::int64_t tq =
          t_quorum ? std::clamp(*t_quorum, base, ob.detect_ns) : ob.detect_ns;
      const std::int64_t wave =
          t_last_wave ? std::clamp(*t_last_wave, base, tq) : base;
      ob.resend_wait_ns = wave - base;
      ob.wire_ns = tq - wave;
      ob.pacing_ns = std::max<std::int64_t>(0, t_open - crash_ns) +
                     (ob.detect_ns - tq);
      timeline.observers.push_back(ob);
    }
    if (timeline.undetected == 0 && !timeline.observers.empty()) {
      std::int64_t stable = timeline.observers.front().detect_ns;
      for (const ObserverBreakdown& ob : timeline.observers) {
        stable = std::max(stable, ob.detect_ns);
      }
      timeline.stable_ns = stable;
    }
    out.crashes.push_back(std::move(timeline));
  }

  // --- optional merged timeline ---------------------------------------------
  if (options_.keep_timeline) {
    for (const auto& [node, stream] : streams) {
      for (const NodeEvent& e : stream) {
        out.timeline.push_back(TimelineEvent{align(node, e.record.t_ns), node,
                                             e.incarnation, e.record});
      }
    }
    std::stable_sort(out.timeline.begin(), out.timeline.end(),
                     [](const TimelineEvent& a, const TimelineEvent& b) {
                       return a.t_ns < b.t_ns;
                     });
  }
  return out;
}

// --- dump loading ------------------------------------------------------------

namespace {

std::optional<std::vector<TraceRecord>> load_binary(const std::string& data) {
  constexpr std::size_t kHeader = 24;
  constexpr std::size_t kRecord = 29;
  if (data.size() < kHeader) return std::nullopt;
  const auto u64_at = [&](std::size_t pos) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    return v;
  };
  const auto u32_at = [&](std::size_t pos) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    return v;
  };
  const std::uint64_t total = u64_at(8);
  const std::uint64_t capacity = u64_at(16);
  // A fatal-signal dump may be truncated mid-stream — take every complete
  // record that made it out, but reject a capacity the header itself lies
  // about (bigger than the file could ever hold).
  const std::size_t stored = (data.size() - kHeader) / kRecord;
  if (capacity > (1u << 26) || stored > capacity) return std::nullopt;
  std::vector<TraceRecord> records;
  records.reserve(stored);
  for (std::size_t i = 0; i < stored; ++i) {
    const std::size_t pos = kHeader + i * kRecord;
    TraceRecord r;
    r.t_ns = u64_at(pos);
    r.seq = u64_at(pos + 8);
    r.a = u32_at(pos + 16);
    r.b = u32_at(pos + 20);
    const auto kind = static_cast<unsigned char>(data[pos + 28]);
    if (kind == 0 || kind > kMaxTraceKind) continue;  // unused or torn slot
    if (r.seq >= total) continue;                     // torn seq
    r.kind = static_cast<TraceKind>(kind);
    records.push_back(r);
  }
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq < b.seq;
            });
  records.erase(std::unique(records.begin(), records.end(),
                            [](const TraceRecord& a, const TraceRecord& b) {
                              return a.seq == b.seq;
                            }),
                records.end());
  return records;
}

std::optional<std::vector<TraceRecord>> load_text(const std::string& data) {
  std::vector<TraceRecord> records;
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) {
    // <t_ns> #<seq> <kind> a=<a> b=<b>
    std::istringstream ls(line);
    std::uint64_t t_ns = 0;
    std::string seq_tok, name, a_tok, b_tok;
    if (!(ls >> t_ns >> seq_tok >> name >> a_tok >> b_tok)) continue;
    if (seq_tok.size() < 2 || seq_tok[0] != '#') continue;
    if (a_tok.rfind("a=", 0) != 0 || b_tok.rfind("b=", 0) != 0) continue;
    const TraceKind kind = trace_kind_from_name(name);
    if (static_cast<std::uint8_t>(kind) == 0) continue;  // unknown kind
    TraceRecord r;
    r.t_ns = t_ns;
    r.kind = kind;
    try {
      r.seq = std::stoull(seq_tok.substr(1));
      r.a = static_cast<std::uint32_t>(std::stoul(a_tok.substr(2)));
      r.b = static_cast<std::uint32_t>(std::stoul(b_tok.substr(2)));
    } catch (...) {
      continue;
    }
    records.push_back(r);
  }
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq < b.seq;
            });
  return records;
}

}  // namespace

std::optional<std::vector<TraceRecord>> load_trace_records(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() >= sizeof(FlightRecorder::kBinaryMagic) &&
      data.compare(0, sizeof(FlightRecorder::kBinaryMagic),
                   FlightRecorder::kBinaryMagic,
                   sizeof(FlightRecorder::kBinaryMagic)) == 0) {
    return load_binary(data);
  }
  return load_text(data);
}

std::optional<std::pair<std::uint32_t, std::uint32_t>> parse_trace_filename(
    std::string_view filename) {
  // node<i>.g<g>[...], the supervisor's report naming.
  constexpr std::string_view kPrefix = "node";
  if (filename.rfind(kPrefix, 0) != 0) return std::nullopt;
  std::size_t pos = kPrefix.size();
  const auto digits = [&](std::uint32_t& out_value) {
    std::uint64_t v = 0;
    std::size_t len = 0;
    while (pos < filename.size() && filename[pos] >= '0' &&
           filename[pos] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(filename[pos] - '0');
      if (v > std::numeric_limits<std::uint32_t>::max()) return false;
      ++pos;
      ++len;
    }
    out_value = static_cast<std::uint32_t>(v);
    return len > 0;
  };
  std::uint32_t node = 0;
  std::uint32_t gen = 0;
  if (!digits(node)) return std::nullopt;
  if (filename.compare(pos, 2, ".g") != 0) return std::nullopt;
  pos += 2;
  if (!digits(gen)) return std::nullopt;
  return std::make_pair(node, gen);
}

// --- run manifest ------------------------------------------------------------

bool write_manifest(const std::string& path, const TraceManifest& manifest) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "mmrfd-trace-manifest v1\n";
  out << "n " << manifest.n << '\n';
  out << "origin_ns " << manifest.origin_ns << '\n';
  out << "pacing_ns " << manifest.pacing_ns << '\n';
  out << "resend_ns " << manifest.resend_ns << '\n';
  for (const auto& c : manifest.crashes) {
    out << "crash " << c.victim << ' ' << c.at_ns << ' '
        << (c.restarted ? 1 : 0) << '\n';
  }
  for (const auto& t : manifest.traces) {
    out << "trace " << t.node << ' ' << t.incarnation << ' ' << t.file
        << '\n';
  }
  out.flush();
  return static_cast<bool>(out);
}

std::optional<TraceManifest> load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "mmrfd-trace-manifest v1") {
    return std::nullopt;
  }
  TraceManifest m;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "n") {
      ls >> m.n;
    } else if (tag == "origin_ns") {
      ls >> m.origin_ns;
    } else if (tag == "pacing_ns") {
      ls >> m.pacing_ns;
    } else if (tag == "resend_ns") {
      ls >> m.resend_ns;
    } else if (tag == "crash") {
      TraceManifest::Crash c;
      int restarted = 0;
      if (ls >> c.victim >> c.at_ns >> restarted) {
        c.restarted = restarted != 0;
        m.crashes.push_back(c);
      }
    } else if (tag == "trace") {
      TraceManifest::Entry e;
      if (ls >> e.node >> e.incarnation >> e.file) {
        m.traces.push_back(std::move(e));
      }
    }
  }
  return m;
}

std::optional<AssembledTrace> assemble_from_dir(const std::string& dir,
                                                bool estimate_skew,
                                                bool keep_timeline) {
  const auto manifest =
      load_manifest(dir + "/" + std::string(kTraceManifestName));
  if (!manifest) return std::nullopt;
  AssemblerOptions options;
  options.n = manifest->n;
  options.origin_ns = manifest->origin_ns;
  options.estimate_skew = estimate_skew;
  options.keep_timeline = keep_timeline;
  TraceAssembler assembler(options);
  for (const auto& entry : manifest->traces) {
    auto records = load_trace_records(dir + "/" + entry.file);
    if (!records) continue;  // a missing dump degrades, not fails, assembly
    assembler.add_node(
        TraceNodeInput{entry.node, entry.incarnation, std::move(*records)});
  }
  for (const auto& crash : manifest->crashes) {
    assembler.add_crash(crash.victim, crash.at_ns);
  }
  return assembler.assemble();
}

// --- emitters ----------------------------------------------------------------

namespace {

void json_opt(std::ostringstream& out, std::string_view key,
              const std::optional<std::int64_t>& v) {
  out << '"' << key << "\": ";
  if (v) {
    out << *v;
  } else {
    out << "null";
  }
}

}  // namespace

std::string to_json(const AssembledTrace& trace) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"records\": " << trace.records << ",\n";
  out << "  \"matched_pairs\": " << trace.matched_pairs << ",\n";
  out << "  \"causal_violations\": " << trace.causal_violations << ",\n";
  out << "  \"skew\": [\n";
  for (std::size_t i = 0; i < trace.skew.size(); ++i) {
    const SkewEstimate& s = trace.skew[i];
    out << "    {\"node\": " << s.node << ", \"offset_ns\": " << s.offset_ns
        << ", \"min_rtt_ns\": " << s.min_rtt_ns
        << ", \"samples\": " << s.samples
        << ", \"reachable\": " << (s.reachable ? "true" : "false") << "}"
        << (i + 1 < trace.skew.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"crashes\": [\n";
  for (std::size_t i = 0; i < trace.crashes.size(); ++i) {
    const CrashTimeline& c = trace.crashes[i];
    out << "    {\"victim\": " << c.victim << ", \"crash_ns\": " << c.crash_ns
        << ", ";
    json_opt(out, "last_heard_ns", c.last_heard_ns);
    out << ", ";
    json_opt(out, "first_missed_ns", c.first_missed_ns);
    out << ", ";
    json_opt(out, "stable_ns", c.stable_ns);
    out << ", \"undetected\": " << c.undetected << ",\n";
    out << "     \"observers\": [\n";
    for (std::size_t j = 0; j < c.observers.size(); ++j) {
      const ObserverBreakdown& ob = c.observers[j];
      out << "       {\"observer\": " << ob.observer
          << ", \"detect_ns\": " << ob.detect_ns
          << ", \"latency_ns\": " << ob.latency_ns
          << ", \"pacing_ns\": " << ob.pacing_ns
          << ", \"resend_wait_ns\": " << ob.resend_wait_ns
          << ", \"wire_ns\": " << ob.wire_ns
          << ", \"round_seq\": " << ob.round_seq
          << ", \"resend_waves\": " << ob.resend_waves << "}"
          << (j + 1 < c.observers.size() ? "," : "") << '\n';
    }
    out << "     ]}" << (i + 1 < trace.crashes.size() ? "," : "") << '\n';
  }
  out << "  ]";
  if (!trace.timeline.empty()) {
    out << ",\n  \"timeline\": [\n";
    for (std::size_t i = 0; i < trace.timeline.size(); ++i) {
      const TimelineEvent& e = trace.timeline[i];
      out << "    {\"t_ns\": " << e.t_ns << ", \"node\": " << e.node
          << ", \"incarnation\": " << e.incarnation << ", \"kind\": \""
          << trace_kind_name(e.record.kind) << "\", \"a\": " << e.record.a
          << ", \"b\": " << e.record.b << "}"
          << (i + 1 < trace.timeline.size() ? "," : "") << '\n';
    }
    out << "  ]";
  }
  out << "\n}\n";
  return out.str();
}

namespace {

double ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

void write_text(std::ostream& out, const AssembledTrace& trace) {
  out << "assembled " << trace.records << " records, "
      << trace.matched_pairs << " matched query/response pairs, "
      << trace.causal_violations << " causal violations\n";
  out << "clock skew (vs lowest-id node):\n";
  for (const SkewEstimate& s : trace.skew) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  node %-4u offset %+10.3f ms  min-rtt %8.3f ms  "
                  "samples %zu%s\n",
                  s.node, ms(s.offset_ns),
                  ms(static_cast<std::int64_t>(s.min_rtt_ns)), s.samples,
                  s.reachable ? "" : "  (UNREACHABLE — offset unknown)");
    out << line;
  }
  for (const CrashTimeline& c : trace.crashes) {
    out << "crash of node " << c.victim << " at " << ms(c.crash_ns)
        << " ms:\n";
    if (c.last_heard_ns) {
      out << "  last heard from victim: " << ms(*c.last_heard_ns) << " ms\n";
    }
    if (c.first_missed_ns) {
      out << "  first missed query:     " << ms(*c.first_missed_ns)
          << " ms\n";
    }
    out << "  observer   detect_ms   latency_ms    pacing_ms  "
           "resend_wait_ms      wire_ms  round  waves\n";
    for (const ObserverBreakdown& ob : c.observers) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-8u %11.3f %12.3f %12.3f %15.3f %12.3f %6u %6u\n",
                    ob.observer, ms(ob.detect_ns), ms(ob.latency_ns),
                    ms(ob.pacing_ns), ms(ob.resend_wait_ns), ms(ob.wire_ns),
                    ob.round_seq, ob.resend_waves);
      out << line;
    }
    if (c.stable_ns) {
      out << "  cluster-stable at " << ms(*c.stable_ns) << " ms ("
          << ms(*c.stable_ns - c.crash_ns) << " ms after the crash)\n";
    } else {
      out << "  NOT cluster-stable: " << c.undetected
          << " observer(s) never permanently suspected the victim\n";
    }
  }
}

void write_timeline(std::ostream& out, const AssembledTrace& trace) {
  for (const TimelineEvent& e : trace.timeline) {
    char line[160];
    std::snprintf(line, sizeof(line), "%14.6f ms  node %-4u g%-2u  %-16s",
                  ms(e.t_ns), e.node, e.incarnation,
                  std::string(trace_kind_name(e.record.kind)).c_str());
    out << line << " a=" << e.record.a << " b=" << e.record.b << '\n';
  }
}

}  // namespace mmrfd::obs
