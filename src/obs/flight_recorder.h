// Flight recorder: a fixed-size ring of compact binary trace records for
// post-hoc "what did this node actually do" forensics.
//
// Each record is 24 bytes — timestamp, monotone sequence number, two
// 32-bit operands and a kind tag. The clock is pluggable so the same
// recorder works stamped by simulated time inside a deterministic run and
// by the wall clock inside a real process; recording never draws
// randomness, never schedules events, and never allocates (the ring is
// sized once at construction), so it is safe to wire through the
// fixed-seed golden-digest paths.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mmrfd::obs {

// Pluggable timestamp source: a plain function pointer plus context so the
// recorder can be stamped from a Simulation without obs depending on sim.
struct TraceClock {
  std::uint64_t (*now_ns)(const void* ctx) = nullptr;
  const void* ctx = nullptr;

  std::uint64_t now() const { return now_ns ? now_ns(ctx) : 0; }
};

// UNIX-epoch nanoseconds from the system clock — the live-path default.
TraceClock wall_trace_clock();

enum class TraceKind : std::uint8_t {
  kRoundOpen = 1,    // a = round seq
  kRoundClose = 2,   // a = round seq, b = |suspected|
  kQueryTx = 3,      // a = peer, b = encoded bytes
  kQueryRx = 4,      // a = peer, b = query seq
  kResponseTx = 5,   // a = peer, b = need_full (0/1)
  kResponseRx = 6,   // a = peer, b = need_full (0/1)
  kSuspectAdd = 7,   // a = subject, b = low 32 bits of tag
  kSuspectDrop = 8,  // a = subject, b = low 32 bits of tag
  kNeedFullTx = 9,   // a = peer (we could not decode their delta)
  kNeedFullRx = 10,  // a = peer (they could not decode ours)
  kResync = 11,      // a = journal epoch at reset
  kGiveUpSkip = 12,  // a = peer skipped this round
  kResendWave = 13,  // a = wave number, b = silent peer count

  // Causal-tracing kinds (PR 10): these name the *remote* event a local
  // record was caused by, so the TraceAssembler can stitch per-node rings
  // into one cross-node happened-before graph.
  kQuorum = 14,         // a = round seq (low 32), b = responders at quorum
  kQueryTxSeq = 15,     // a = peer, b = our round seq (low 32)
  kResponseTxSeq = 16,  // a = peer, b = echoed query seq (low 32)
  kResponseRxSeq = 17,  // a = peer, b = echoed query seq (low 32)
  kPeerRound = 18,      // a = peer, b = peer's own round seq off the wire
  kRelRetransmit = 19,  // a = peer, b = frame seq (low 32)
  kRelDuplicate = 20,   // a = peer, b = frame seq (low 32)
};

// Largest valid TraceKind value; anything outside [1, kMaxTraceKind] in a
// loaded dump is a torn or corrupt record and gets dropped.
inline constexpr std::uint8_t kMaxTraceKind = 20;

std::string_view trace_kind_name(TraceKind kind);

// Inverse of trace_kind_name, for parsing text dumps. Returns 0 (an
// invalid kind) when the name is unknown.
TraceKind trace_kind_from_name(std::string_view name);

struct TraceRecord {
  std::uint64_t t_ns{0};  // clock stamp
  std::uint64_t seq{0};   // monotone per-recorder sequence number
  std::uint32_t a{0};
  std::uint32_t b{0};
  TraceKind kind{};

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity,
                          TraceClock clock = wall_trace_clock());

  void set_clock(TraceClock clock);

  void record(TraceKind kind, std::uint32_t a = 0, std::uint32_t b = 0);

  // Surviving records, oldest first. At most capacity() entries; once the
  // ring wraps, the oldest records are the ones overwritten.
  std::vector<TraceRecord> snapshot() const;

  // Total records ever written (>= snapshot().size()).
  std::uint64_t recorded() const;
  std::size_t capacity() const { return ring_.size(); }

  // Human-readable dump, one record per line:
  //   <t_ns> #<seq> <kind> a=<a> b=<b>
  void dump_text(std::ostream& out) const;
  // dump_text to `path` (truncate); returns false on I/O failure.
  bool dump_to_file(const std::string& path) const;

  // Binary dump, ASYNC-SIGNAL-SAFE: no locks, no allocation, no iostream —
  // only write(2) on an already-open fd. Intended for fatal-signal
  // handlers, where a concurrently-writing recorder may leave one torn
  // record in the ring; the loader drops records whose kind falls outside
  // [1, kMaxTraceKind]. Layout (little-endian):
  //   8-byte magic "MMRTRCB1", u64 total, u64 capacity,
  //   capacity x { u64 t_ns, u64 seq, u32 a, u32 b, u8 kind }
  // Returns false if any write(2) fails.
  bool dump_binary_fd(int fd) const noexcept;
  // dump_binary_fd to `path` (truncate). Also lock-free — only call from
  // a quiescent recorder outside the signal path (tests, shutdown).
  bool dump_binary_to_file(const std::string& path) const;

  // First bytes of every binary dump, so loaders can sniff the format.
  static constexpr char kBinaryMagic[8] = {'M', 'M', 'R', 'T',
                                           'R', 'C', 'B', '1'};

 private:
  mutable std::mutex mutex_;
  TraceClock clock_;
  std::vector<TraceRecord> ring_;
  std::uint64_t total_{0};
};

}  // namespace mmrfd::obs
